(** The discrete-event engine: a clock and a priority queue of thunks.
    Everything in the simulated network — packet transmission, link
    propagation, controller latency, traffic generation, timeouts — is
    expressed as scheduled events.  Ties execute in scheduling order, so
    runs are deterministic.

    Two interchangeable queue engines back the clock:

    - [`Wheel] (the default): {!Util.Timing_wheel} — O(1) slot filing
      for the dense near-future events every packet hop schedules, with
      a heap fallback for far timers (retransmits, expiry sweeps).
    - [`Heap]: the original {!Util.Heap} binary heap.

    Both produce the exact same execution order (property-tested in
    [test/util.wheel]; the [e3-smoke] bench gate checks full simulation
    results are identical), so the engine is purely a performance
    choice.  Select per-instance with [create ?engine] or globally with
    [ZEN_SIM_ENGINE=heap|wheel]. *)

type engine = [ `Heap | `Wheel ]

type queue =
  | Wheel of (unit -> unit) Util.Timing_wheel.t
  | Heap of (unit -> unit) Util.Heap.t

type t = {
  mutable now : float;
  queue : queue;
  mutable executed : int;
  mutable running : bool;
}

let default_engine () : engine =
  match Sys.getenv_opt "ZEN_SIM_ENGINE" with
  | Some s ->
    (match String.lowercase_ascii (String.trim s) with
     | "heap" -> `Heap
     | _ -> `Wheel)
  | None -> `Wheel

let create ?engine () =
  let engine = match engine with Some e -> e | None -> default_engine () in
  let queue =
    match engine with
    | `Wheel -> Wheel (Util.Timing_wheel.create ())
    | `Heap -> Heap (Util.Heap.create ())
  in
  { now = 0.0; queue; executed = 0; running = false }

let engine t : engine =
  match t.queue with Wheel _ -> `Wheel | Heap _ -> `Heap

(** Current simulated time in seconds. *)
let now t = t.now

(** Number of events executed so far. *)
let executed t = t.executed

let push t time f =
  match t.queue with
  | Wheel w -> Util.Timing_wheel.push w time f
  | Heap h -> Util.Heap.push h time f

(** [schedule t ~delay f] runs [f] at [now + delay].
    @raise Invalid_argument on negative delay. *)
let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  push t (t.now +. delay) f

(** [schedule_at t ~time f] runs [f] at the absolute [time] (clamped to
    the present if already past). *)
let schedule_at t ~time f = push t (max time t.now) f

let pending t =
  match t.queue with
  | Wheel w -> Util.Timing_wheel.length w
  | Heap h -> Util.Heap.length h

let peek t =
  match t.queue with
  | Wheel w -> Util.Timing_wheel.peek w
  | Heap h -> Util.Heap.peek h

let pop t =
  match t.queue with
  | Wheel w -> Util.Timing_wheel.pop w
  | Heap h -> Util.Heap.pop h

let exec t time f =
  t.now <- (if time > t.now then time else t.now);
  t.executed <- t.executed + 1;
  f ()

(** Executes the next event; returns [false] when none remain. *)
let step t =
  match pop t with
  | exception Not_found -> false
  | time, f ->
    exec t time f;
    true

(* fused peek-and-pop against an absolute stop time; [strict] makes the
   bound exclusive (events at exactly [stop] stay queued) *)
let pop_until ?(strict = false) t ~stop =
  match t.queue with
  | Wheel w -> Util.Timing_wheel.pop_until ~strict w ~stop
  | Heap h ->
    (match Util.Heap.peek h with
     | None -> `Empty
     | Some (time, _) when (if strict then time >= stop else time > stop) ->
       `Beyond
     | Some _ ->
       let time, f = Util.Heap.pop h in
       `Event (time, f))

(** [run ?until ?strict ?max_events t] drains the event queue.  [until]
    stops the clock at an absolute time (events beyond it stay queued;
    with [~strict:true] events at exactly [until] stay queued too — the
    sharded simulator's conservative windows are half-open intervals);
    [max_events] bounds work as a runaway guard.  Returns the number of
    events executed by this call. *)
let run ?until ?(strict = false) ?max_events t =
  if t.running then invalid_arg "Sim.run: already running";
  t.running <- true;
  let start = t.executed in
  let budget = match max_events with None -> max_int | Some m -> m in
  let stop = match until with Some s -> s | None -> infinity in
  let rec loop n =
    if n < budget then begin
      match pop_until ~strict t ~stop with
      | `Empty -> ()
      | `Beyond -> (match until with Some s -> t.now <- max t.now s | None -> ())
      | `Event (time, f) ->
        exec t time f;
        loop (n + 1)
    end
  in
  loop 0;
  t.running <- false;
  t.executed - start

(** [run_batch t] executes the next pending event and then drains every
    event sharing its timestamp — including ones scheduled by the batch
    itself at that same instant — without re-peeking the full queue
    between events (same-tick drains stay inside the wheel's near heap).
    Returns the number of events executed; [0] means the queue was
    empty.  Equivalent to repeated {!step} while the head timestamp is
    unchanged. *)
let run_batch t =
  if t.running then invalid_arg "Sim.run_batch: already running";
  t.running <- true;
  let n =
    match pop t with
    | exception Not_found -> 0
    | time, f ->
      exec t time f;
      let rec drain n =
        match pop_until t ~stop:time with
        | `Event (time', f) ->
          exec t time' f;
          drain (n + 1)
        | `Empty | `Beyond -> n
      in
      drain 1
  in
  t.running <- false;
  n

(** Periodic task: runs [f] every [every] seconds starting after [every],
    until [f] returns [false] or the optional [stop] time passes. *)
let rec every t ~every:interval ?stop f =
  schedule t ~delay:interval (fun () ->
    let continue_ =
      match stop with Some s when t.now > s -> false | Some _ | None -> f ()
    in
    if continue_ then every t ~every:interval ?stop f)
