(** Deterministic fault injection for the control channel and the
    substrate.

    A [Fault.t] is a seeded source of adversity: every control-channel
    transmission consults it once and may be dropped, duplicated or
    delayed (latency jitter); scheduled {!incident}s flap links and
    crash/restart switches through the failure API of {!Network}.  All
    randomness flows from one {!Util.Prng} stream drawn in simulation
    order, so a given seed + configuration reproduces the exact same
    event trace — chaos runs are experiments, not flakes.

    The module itself is pure bookkeeping; {!Network} owns the hooks
    (see [Network.create ?fault], [Network.crash_switch],
    [Network.inject]). *)

type config = {
  seed : int;
  drop : float;    (** per-transmission drop probability, [0, 1] *)
  dup : float;     (** per-transmission duplicate probability, [0, 1] *)
  jitter : float;  (** max extra one-way latency, uniform in [0, jitter) s *)
  link_drop : float;     (** per-packet data-link drop probability, [0, 1] *)
  link_corrupt : float;  (** per-packet corruption (CRC-fail) probability *)
  link_reorder : float;  (** per-packet reorder probability, [0, 1] *)
  link_seed : int;
  (** seed of the per-link verdict streams.  Unlike [seed] it is NOT
      perturbed by {!shard_config}: each link's stream is keyed on
      [(link_seed, egress node, port)] and consumed only by the shard
      owning that egress, so sharded runs replay the single-domain
      verdicts byte-identically at any shard count. *)
}

(** A scheduled substrate incident (interpreted by [Network.inject]). *)
type incident =
  | Link_flap of {
      node : Topo.Topology.Node.t;
      port : int;
      at : float;        (** absolute sim time of the failure *)
      duration : float;  (** seconds until [restore_link] *)
    }
  | Switch_outage of {
      switch_id : int;
      at : float;
      duration : float;  (** seconds until restart (fresh handshake) *)
    }
  | Ctl_outage of {
      switch_id : int;
      at : float;
      duration : float;
      (** seconds of control-channel partition: the switch stays alive
          and keeps its (warm) table, but every control frame in either
          direction is dropped — the resilient runtime declares it down
          and must reconcile the surviving state on re-handshake. *)
    }
  | Controller_outage of {
      controller_id : int;
      at : float;
      duration : float;
      (** crash/restart of a controller {e replica} (see
          {!Controller.Replica}): the member stops sending and receiving
          at [at] and rejoins as a standby at [at + duration].  Routed
          through [Network.set_ctl_outage_handler]; a network without a
          replicated controller ignores it. *)
    }

type t = {
  config : config;
  prng : Util.Prng.t;
  mutable drops : int;
  mutable dups : int;
  mutable jitters : int;   (* transmissions that drew a non-zero delay *)
  mutable decisions : int; (* transmissions consulted *)
  mutable link_drops : int;
  mutable link_corrupts : int;
  mutable link_reorders : int;
  mutable link_decisions : int; (* data-packet transmissions consulted *)
  mutable trace_rev : string list;
  mutable trace_len : int;
}

let trace_cap = 50_000

let default_seed = 0xC4A05

let make_config ?(seed = default_seed) ?(drop = 0.0) ?(dup = 0.0)
    ?(jitter = 0.0) ?(link_drop = 0.0) ?(link_corrupt = 0.0)
    ?(link_reorder = 0.0) ?link_seed () =
  let check name p =
    if p < 0.0 || p > 1.0 then
      invalid_arg (Printf.sprintf "Fault.create: %s out of [0,1]" name)
  in
  check "drop" drop;
  check "dup" dup;
  check "link_drop" link_drop;
  check "link_corrupt" link_corrupt;
  check "link_reorder" link_reorder;
  if jitter < 0.0 then invalid_arg "Fault.create: negative jitter";
  let link_seed = match link_seed with Some s -> s | None -> seed in
  { seed; drop; dup; jitter; link_drop; link_corrupt; link_reorder; link_seed }

(** [shard_config c ~shard] derives shard [shard]'s chaos configuration
    in a sharded run: shard 0 keeps the base seed (so a 1-shard run is
    byte-identical to single-domain), other shards mix the shard index
    into the seed so their verdict streams are independent instead of
    accidentally correlated. *)
let shard_config c ~shard =
  if shard = 0 then c else { c with seed = c.seed + (0x9E3779B9 * shard) }

let of_config config =
  { config; prng = Util.Prng.create config.seed;
    drops = 0; dups = 0; jitters = 0; decisions = 0;
    link_drops = 0; link_corrupts = 0; link_reorders = 0; link_decisions = 0;
    trace_rev = []; trace_len = 0 }

let create ?seed ?drop ?dup ?jitter ?link_drop ?link_corrupt ?link_reorder
    ?link_seed () =
  of_config
    (make_config ?seed ?drop ?dup ?jitter ?link_drop ?link_corrupt
       ?link_reorder ?link_seed ())

let config t = t.config

(** An independent chaos PRNG derived from the fault's stream — use it
    for scenario generation (random flap targets, crash times) so the
    whole run stays a function of one seed. *)
let derive_prng t = Util.Prng.split t.prng

(* ------------------------------------------------------------------ *)
(* Event trace *)

let note t ~time fmt =
  Printf.ksprintf
    (fun s ->
      if t.trace_len < trace_cap then begin
        t.trace_rev <- Printf.sprintf "%.9f %s" time s :: t.trace_rev;
        t.trace_len <- t.trace_len + 1
      end)
    fmt

(** The chaos event trace, oldest first ("<time> <event>" lines; capped
    at an internal bound).  Byte-equal across runs with the same seed,
    configuration and workload — the determinism tests diff this. *)
let events t = List.rev t.trace_rev

(* ------------------------------------------------------------------ *)
(* Per-transmission verdicts *)

type verdict = {
  v_drop : bool;
  v_dup : bool;
  v_delay : float;       (** extra latency for the first copy *)
  v_dup_delay : float;   (** extra latency for the duplicate, if any *)
}

(** One verdict per control-channel transmission.  Draws a fixed number
    of samples per call (given the configuration), so the random stream
    — and therefore the trace — is a deterministic function of the
    sequence of transmissions. *)
let decide t =
  t.decisions <- t.decisions + 1;
  let c = t.config in
  let drop = c.drop > 0.0 && Util.Prng.float t.prng 1.0 < c.drop in
  let dup = c.dup > 0.0 && Util.Prng.float t.prng 1.0 < c.dup in
  let jit () = if c.jitter > 0.0 then Util.Prng.float t.prng c.jitter else 0.0 in
  let d1 = jit () in
  let d2 = jit () in
  if drop then begin
    t.drops <- t.drops + 1;
    { v_drop = true; v_dup = false; v_delay = 0.0; v_dup_delay = 0.0 }
  end
  else begin
    if dup then t.dups <- t.dups + 1;
    if d1 > 0.0 then t.jitters <- t.jitters + 1;
    { v_drop = false; v_dup = dup; v_delay = d1; v_dup_delay = d2 }
  end

(* ------------------------------------------------------------------ *)
(* Per-link data-packet verdicts *)

(** [has_link_chaos t] — does any link-level rate fire?  [Network]
    caches this so the zero-rate transmit path stays byte-identical to
    a run with no fault attached. *)
let has_link_chaos t =
  let c = t.config in
  c.link_drop > 0.0 || c.link_corrupt > 0.0 || c.link_reorder > 0.0

type link_verdict = {
  lv_drop : bool;     (** packet vanishes on the wire *)
  lv_corrupt : bool;  (** payload mangled: receiver fails the CRC *)
  lv_extra : float;   (** extra delivery latency (reorder), >= 0 *)
}

let clean_verdict = { lv_drop = false; lv_corrupt = false; lv_extra = 0.0 }

(* Per-link stream key: the egress (node, port) pair.  Hosts and
   switches share an id space, so spread them onto distinct odd-mixed
   residues before folding in the seed. *)
let link_stream_seed t ~(node : Topo.Topology.Node.t) ~port =
  let node_key =
    match node with
    | Topo.Topology.Node.Switch i -> (2 * i) + 1
    | Topo.Topology.Node.Host i -> 2 * i
  in
  (t.config.link_seed * 0x9E3779B9)
  lxor (node_key * 0x85EBCA6B)
  lxor (port * 0xC2B2AE3D)

(** A fresh verdict stream for the link leaving [node] via [port].
    Keyed on [link_seed] (not the shard-perturbed [seed]), so the same
    link replays the same stream at any shard count. *)
let link_prng t ~node ~port =
  Util.Prng.create (link_stream_seed t ~node ~port)

(** One verdict per data-packet transmission on a link, drawn from that
    link's own stream.  Fixed number of samples per call given the
    configuration; precedence drop > corrupt > reorder.  The reorder
    delay is uniform in [0, 4x the link's propagation [delay]) so a
    reordered packet genuinely lands behind its successors. *)
let decide_link t prng ~delay =
  t.link_decisions <- t.link_decisions + 1;
  let c = t.config in
  let drop = c.link_drop > 0.0 && Util.Prng.float prng 1.0 < c.link_drop in
  let corrupt =
    c.link_corrupt > 0.0 && Util.Prng.float prng 1.0 < c.link_corrupt
  in
  let reorder =
    c.link_reorder > 0.0 && Util.Prng.float prng 1.0 < c.link_reorder
  in
  let extra =
    if c.link_reorder > 0.0 then Util.Prng.float prng (4.0 *. delay) else 0.0
  in
  if drop then begin
    t.link_drops <- t.link_drops + 1;
    { clean_verdict with lv_drop = true }
  end
  else if corrupt then begin
    t.link_corrupts <- t.link_corrupts + 1;
    { clean_verdict with lv_corrupt = true }
  end
  else if reorder then begin
    t.link_reorders <- t.link_reorders + 1;
    { clean_verdict with lv_extra = extra }
  end
  else clean_verdict

(* ------------------------------------------------------------------ *)
(* Counters *)

let drops t = t.drops
let dups t = t.dups
let jitters t = t.jitters
let decisions t = t.decisions
let link_drops t = t.link_drops
let link_corrupts t = t.link_corrupts
let link_reorders t = t.link_reorders
let link_decisions t = t.link_decisions

let pp_stats fmt t =
  Format.fprintf fmt "chaos(seed=%#x drop=%d dup=%d jitter=%d of %d sends)"
    t.config.seed t.drops t.dups t.jitters t.decisions;
  if has_link_chaos t || t.link_decisions > 0 then
    Format.fprintf fmt
      " link(drop=%d corrupt=%d reorder=%d of %d packets)"
      t.link_drops t.link_corrupts t.link_reorders t.link_decisions

(* ------------------------------------------------------------------ *)
(* Environment knobs *)

let env_float name =
  match Sys.getenv_opt name with
  | None | Some "" -> None
  | Some s -> float_of_string_opt s

let env_int name =
  match Sys.getenv_opt name with
  | None | Some "" -> None
  | Some s -> int_of_string_opt s

(** Reads the [ZEN_CHAOS_*] family: [ZEN_CHAOS_DROP], [ZEN_CHAOS_DUP],
    [ZEN_CHAOS_JITTER], [ZEN_CHAOS_LINK_DROP], [ZEN_CHAOS_LINK_CORRUPT],
    [ZEN_CHAOS_LINK_REORDER] (floats) and [ZEN_CHAOS_SEED] (int).
    Returns [None] only when no knob at all is set.  A seed alone yields
    a zero-rate fault: per-transmission verdicts are all clean (and cost
    no PRNG draws), but scenario generation via {!derive_prng} and
    incident scheduling stay deterministic under that seed. *)
let from_env () =
  let drop = env_float "ZEN_CHAOS_DROP" in
  let dup = env_float "ZEN_CHAOS_DUP" in
  let jitter = env_float "ZEN_CHAOS_JITTER" in
  let link_drop = env_float "ZEN_CHAOS_LINK_DROP" in
  let link_corrupt = env_float "ZEN_CHAOS_LINK_CORRUPT" in
  let link_reorder = env_float "ZEN_CHAOS_LINK_REORDER" in
  let seed = env_int "ZEN_CHAOS_SEED" in
  match (drop, dup, jitter, link_drop, link_corrupt, link_reorder, seed) with
  | None, None, None, None, None, None, None -> None
  | _ ->
    let seed = match seed with Some s -> s | None -> default_seed in
    Some
      (create ~seed ?drop ?dup ?jitter ?link_drop ?link_corrupt ?link_reorder
         ())

(** Reads the [ZEN_CHAOS_CTL_*] family describing a scheduled controller
    crash: [ZEN_CHAOS_CTL_CRASH] (replica id to crash; the knob that
    enables the incident), [ZEN_CHAOS_CTL_AT] (absolute sim time,
    default 1.0) and [ZEN_CHAOS_CTL_DURATION] (seconds until the member
    rejoins as a standby, default 1.0). *)
let ctl_incidents_from_env () =
  match env_int "ZEN_CHAOS_CTL_CRASH" with
  | None -> []
  | Some controller_id ->
    let at = Option.value (env_float "ZEN_CHAOS_CTL_AT") ~default:1.0 in
    let duration =
      Option.value (env_float "ZEN_CHAOS_CTL_DURATION") ~default:1.0
    in
    [ Controller_outage { controller_id; at; duration } ]
