(** Deterministic fault injection for the control channel and the
    substrate.

    A [Fault.t] is a seeded source of adversity: every control-channel
    transmission consults it once and may be dropped, duplicated or
    delayed (latency jitter); scheduled {!incident}s flap links and
    crash/restart switches through the failure API of {!Network}.  All
    randomness flows from one {!Util.Prng} stream drawn in simulation
    order, so a given seed + configuration reproduces the exact same
    event trace — chaos runs are experiments, not flakes.

    The module itself is pure bookkeeping; {!Network} owns the hooks
    (see [Network.create ?fault], [Network.crash_switch],
    [Network.inject]). *)

type config = {
  seed : int;
  drop : float;    (** per-transmission drop probability, [0, 1] *)
  dup : float;     (** per-transmission duplicate probability, [0, 1] *)
  jitter : float;  (** max extra one-way latency, uniform in [0, jitter) s *)
}

(** A scheduled substrate incident (interpreted by [Network.inject]). *)
type incident =
  | Link_flap of {
      node : Topo.Topology.Node.t;
      port : int;
      at : float;        (** absolute sim time of the failure *)
      duration : float;  (** seconds until [restore_link] *)
    }
  | Switch_outage of {
      switch_id : int;
      at : float;
      duration : float;  (** seconds until restart (fresh handshake) *)
    }

type t = {
  config : config;
  prng : Util.Prng.t;
  mutable drops : int;
  mutable dups : int;
  mutable jitters : int;   (* transmissions that drew a non-zero delay *)
  mutable decisions : int; (* transmissions consulted *)
  mutable trace_rev : string list;
  mutable trace_len : int;
}

let trace_cap = 50_000

let default_seed = 0xC4A05

let make_config ?(seed = default_seed) ?(drop = 0.0) ?(dup = 0.0)
    ?(jitter = 0.0) () =
  let check name p =
    if p < 0.0 || p > 1.0 then
      invalid_arg (Printf.sprintf "Fault.create: %s out of [0,1]" name)
  in
  check "drop" drop;
  check "dup" dup;
  if jitter < 0.0 then invalid_arg "Fault.create: negative jitter";
  { seed; drop; dup; jitter }

(** [shard_config c ~shard] derives shard [shard]'s chaos configuration
    in a sharded run: shard 0 keeps the base seed (so a 1-shard run is
    byte-identical to single-domain), other shards mix the shard index
    into the seed so their verdict streams are independent instead of
    accidentally correlated. *)
let shard_config c ~shard =
  if shard = 0 then c else { c with seed = c.seed + (0x9E3779B9 * shard) }

let of_config config =
  { config; prng = Util.Prng.create config.seed;
    drops = 0; dups = 0; jitters = 0; decisions = 0;
    trace_rev = []; trace_len = 0 }

let create ?seed ?drop ?dup ?jitter () =
  of_config (make_config ?seed ?drop ?dup ?jitter ())

let config t = t.config

(** An independent chaos PRNG derived from the fault's stream — use it
    for scenario generation (random flap targets, crash times) so the
    whole run stays a function of one seed. *)
let derive_prng t = Util.Prng.split t.prng

(* ------------------------------------------------------------------ *)
(* Event trace *)

let note t ~time fmt =
  Printf.ksprintf
    (fun s ->
      if t.trace_len < trace_cap then begin
        t.trace_rev <- Printf.sprintf "%.9f %s" time s :: t.trace_rev;
        t.trace_len <- t.trace_len + 1
      end)
    fmt

(** The chaos event trace, oldest first ("<time> <event>" lines; capped
    at an internal bound).  Byte-equal across runs with the same seed,
    configuration and workload — the determinism tests diff this. *)
let events t = List.rev t.trace_rev

(* ------------------------------------------------------------------ *)
(* Per-transmission verdicts *)

type verdict = {
  v_drop : bool;
  v_dup : bool;
  v_delay : float;       (** extra latency for the first copy *)
  v_dup_delay : float;   (** extra latency for the duplicate, if any *)
}

(** One verdict per control-channel transmission.  Draws a fixed number
    of samples per call (given the configuration), so the random stream
    — and therefore the trace — is a deterministic function of the
    sequence of transmissions. *)
let decide t =
  t.decisions <- t.decisions + 1;
  let c = t.config in
  let drop = c.drop > 0.0 && Util.Prng.float t.prng 1.0 < c.drop in
  let dup = c.dup > 0.0 && Util.Prng.float t.prng 1.0 < c.dup in
  let jit () = if c.jitter > 0.0 then Util.Prng.float t.prng c.jitter else 0.0 in
  let d1 = jit () in
  let d2 = jit () in
  if drop then begin
    t.drops <- t.drops + 1;
    { v_drop = true; v_dup = false; v_delay = 0.0; v_dup_delay = 0.0 }
  end
  else begin
    if dup then t.dups <- t.dups + 1;
    if d1 > 0.0 then t.jitters <- t.jitters + 1;
    { v_drop = false; v_dup = dup; v_delay = d1; v_dup_delay = d2 }
  end

(* ------------------------------------------------------------------ *)
(* Counters *)

let drops t = t.drops
let dups t = t.dups
let jitters t = t.jitters
let decisions t = t.decisions

let pp_stats fmt t =
  Format.fprintf fmt "chaos(seed=%#x drop=%d dup=%d jitter=%d of %d sends)"
    t.config.seed t.drops t.dups t.jitters t.decisions

(* ------------------------------------------------------------------ *)
(* Environment knobs *)

let env_float name =
  match Sys.getenv_opt name with
  | None | Some "" -> None
  | Some s -> float_of_string_opt s

let env_int name =
  match Sys.getenv_opt name with
  | None | Some "" -> None
  | Some s -> int_of_string_opt s

(** Reads the [ZEN_CHAOS_*] family: [ZEN_CHAOS_DROP], [ZEN_CHAOS_DUP],
    [ZEN_CHAOS_JITTER] (floats) and [ZEN_CHAOS_SEED] (int).  Returns
    [None] unless at least one perturbation knob is set — a seed alone
    enables nothing. *)
let from_env () =
  let drop = env_float "ZEN_CHAOS_DROP" in
  let dup = env_float "ZEN_CHAOS_DUP" in
  let jitter = env_float "ZEN_CHAOS_JITTER" in
  match (drop, dup, jitter) with
  | None, None, None -> None
  | _ ->
    let seed =
      match env_int "ZEN_CHAOS_SEED" with Some s -> s | None -> default_seed
    in
    Some
      (create ~seed ?drop ?dup ?jitter ())
