(** Workload generators and simple host applications layered on the
    simulated network: constant-bit-rate and Poisson flows, ping-style
    request/response with RTT measurement, and random traffic mixes. *)

type flow_spec = {
  src : int;           (** source host id *)
  dst : int;           (** destination host id *)
  rate_pps : float;    (** packets per second *)
  pkt_size : int;      (** bytes *)
  start : float;
  stop : float;
  tp_dst : int;
  tp_src : int option; (** fixed source port, or [None] to vary per packet *)
}

let default_flow ~src ~dst =
  { src; dst; rate_pps = 100.0; pkt_size = 1000; start = 0.0; stop = 1.0;
    tp_dst = 80; tp_src = None }

(** [cbr net spec] schedules a constant-bit-rate packet train.  Returns a
    counter cell incremented per packet sent. *)
let cbr net (spec : flow_spec) =
  let sent = ref 0 in
  let interval = 1.0 /. spec.rate_pps in
  let sim = Network.sim net in
  let rec send_at time =
    if time <= spec.stop then
      Sim.schedule_at sim ~time (fun () ->
        let tp_src =
          match spec.tp_src with
          | Some p -> p
          | None -> 10000 + (!sent mod 50000)
        in
        let pkt =
          Network.make_pkt ~size:spec.pkt_size ~tp_dst:spec.tp_dst ~tp_src
            ~src:spec.src ~dst:spec.dst ()
        in
        incr sent;
        Network.send_from net ~host:spec.src pkt;
        send_at (time +. interval))
  in
  send_at spec.start;
  sent

(** [poisson net ~prng spec] — as {!cbr} with exponential inter-arrivals
    of mean [1 / rate_pps]. *)
let poisson net ~prng (spec : flow_spec) =
  let sent = ref 0 in
  let sim = Network.sim net in
  let rec send_at time =
    if time <= spec.stop then
      Sim.schedule_at sim ~time (fun () ->
        let tp_src =
          match spec.tp_src with
          | Some p -> p
          | None -> 10000 + (!sent mod 50000)
        in
        let pkt =
          Network.make_pkt ~size:spec.pkt_size ~tp_dst:spec.tp_dst ~tp_src
            ~src:spec.src ~dst:spec.dst ()
        in
        incr sent;
        Network.send_from net ~host:spec.src pkt;
        send_at (time +. Util.Prng.exponential prng ~mean:(1.0 /. spec.rate_pps)))
  in
  send_at spec.start;
  sent

(** Ping application: echo requests carry a tag; the destination host
    answers with the tag mirrored; RTTs are recorded at the source.

    [install_responders net] must be called once so that every host
    answers pings (it composes with an existing receive handler). *)

let ping_tag_bit = 0x100000  (* distinguishes requests from replies *)

let install_responders net =
  List.iter
    (fun (h : Network.host) ->
      let previous = h.on_receive in
      h.on_receive <-
        Some
          (fun pkt ->
            (match previous with Some f -> f pkt | None -> ());
            if pkt.tag land ping_tag_bit <> 0 then begin
              (* answer: swap src/dst, clear the request bit *)
              let hdr = pkt.hdr in
              let reply_hdr =
                { hdr with
                  eth_src = hdr.eth_dst; eth_dst = hdr.eth_src;
                  ip4_src = hdr.ip4_dst; ip4_dst = hdr.ip4_src;
                  tp_src = hdr.tp_dst; tp_dst = hdr.tp_src }
              in
              Network.send_from net ~host:h.host_id
                { pkt with hdr = reply_hdr; tag = pkt.tag land lnot ping_tag_bit }
            end))
    (Network.host_list net)

type ping_result = { rtts : (int * float) list ref; lost : unit -> int }

(** [ping net ~src ~dst ~count ~interval] sends [count] echo requests and
    records (sequence, RTT) pairs as replies arrive.  Call after
    {!install_responders}. *)
let ping net ~src ~dst ~count ~interval =
  let rtts = ref [] in
  let sent_at : (int, float) Hashtbl.t = Hashtbl.create 16 in
  let h = Network.host net src in
  let previous = h.on_receive in
  h.on_receive <-
    Some
      (fun pkt ->
        (match previous with Some f -> f pkt | None -> ());
        if pkt.tag land ping_tag_bit = 0 then begin
          match Hashtbl.find_opt sent_at pkt.tag with
          | Some t0 ->
            Hashtbl.remove sent_at pkt.tag;
            rtts := (pkt.tag, Network.now net -. t0) :: !rtts
          | None -> ()
        end);
  let sim = Network.sim net in
  for i = 0 to count - 1 do
    Sim.schedule sim ~delay:(float_of_int i *. interval) (fun () ->
      let tag = i lor ping_tag_bit in
      Hashtbl.replace sent_at i (Network.now net);
      let pkt = Network.make_pkt ~size:100 ~tag ~src ~dst () in
      Network.send_from net ~host:src pkt)
  done;
  { rtts; lost = (fun () -> Hashtbl.length sent_at) }

(** [random_pair_specs ~prng ~host_ids ...] draws [flows] CBR flow specs
    between uniformly chosen distinct host pairs — the spec-drawing half
    of {!random_pairs}, split out so a sharded run can draw the exact
    same PRNG stream and then install each flow on the shard owning its
    source host.

    [stagger] draws each flow's start uniformly from [0, stagger)
    instead of starting every flow at 0.  Synchronized starts make
    causally-independent packets contend for the same link at the {e same
    instant}; the sequential engine breaks such ties by global scheduling
    order, which a sharded run cannot reproduce (see {!Shard}).  A
    staggered workload has no cross-flow timestamp ties, so sharded and
    single-domain traces stay byte-equal. *)
let random_pair_specs ?(fixed_ports = false) ?stagger ~prng ~host_ids ~flows
    ~rate_pps ~pkt_size ~stop () =
  if Array.length host_ids < 2 then
    invalid_arg "Traffic.random_pair_specs: < 2 hosts";
  List.init flows (fun i ->
    let src = Util.Prng.pick prng host_ids in
    let rec pick_dst () =
      let d = Util.Prng.pick prng host_ids in
      if d = src then pick_dst () else d
    in
    let dst = pick_dst () in
    let tp_src = if fixed_ports then Some (20000 + i) else None in
    let start =
      match stagger with
      | Some s when s > 0.0 -> Util.Prng.float prng s
      | Some _ | None -> 0.0
    in
    { (default_flow ~src ~dst) with rate_pps; pkt_size; start; stop; tp_src })

(** [random_pairs net ~prng ~flows ~rate_pps ~stop] starts [flows] CBR
    flows between uniformly chosen distinct host pairs; returns the
    per-flow sent counters.  By default every packet carries a fresh
    [tp_src] (an adversarial workload for exact-match caches);
    [~fixed_ports:true] pins one [tp_src] per flow instead, modelling
    long-lived 5-tuple flows. *)
let random_pairs ?fixed_ports net ~prng ~flows ~rate_pps ~pkt_size ~stop =
  let ids = Array.of_list (List.map (fun (h : Network.host) -> h.host_id)
                             (Network.host_list net)) in
  if Array.length ids < 2 then invalid_arg "Traffic.random_pairs: < 2 hosts";
  random_pair_specs ?fixed_ports ~prng ~host_ids:ids ~flows ~rate_pps
    ~pkt_size ~stop ()
  |> List.map (cbr net)

(** Total packets received across all hosts. *)
let total_received net =
  List.fold_left
    (fun acc (h : Network.host) -> acc + h.received)
    0 (Network.host_list net)
