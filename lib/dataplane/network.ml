(** The simulated network: switches, hosts and links instantiated from a
    {!Topo.Topology.t} and driven by a {!Sim.t}.

    Switches forward with {!Flow.Table} match-action semantics; a table
    miss (or an explicit controller output) produces a packet-in on the
    control channel.  The control channel speaks wire-encoded
    {!Openflow} messages with a configurable one-way latency, so the
    protocol codec is on the hot path exactly as in a real deployment.

    Links model serialization (size / capacity), propagation delay and a
    drop-tail queue of configurable depth per direction.  A packet in
    flight is a flat header record plus size and an opaque tag.

    Per-hop forwarding is allocation- and lookup-light: the per-direction
    {!link_state} caches the resolved topology link, the egress port's
    tx counters and the {e destination} object (switch or host record),
    so a hop touches no hashtable — switch egress states live in a
    per-switch array indexed by port, hosts cache their access link.
    The topology's [up] flag is mutated in place by the failure API, so
    the cached link record always reflects live link status. *)

module Node = Topo.Topology.Node

type pkt = {
  hdr : Packet.Headers.t;  (** [switch]/[in_port] = current location *)
  size : int;              (** bytes *)
  tag : int;               (** correlation tag for host applications *)
  ttl : int;               (** hop budget; decremented per switch, packets
                               expire at zero (bounds transient loops) *)
}

type switch = {
  sw_id : int;
  table : Flow.Table.t;
  mutable flood_ports : int list option;
      (** spanning-tree restriction for [Flood]; [None] = all ports *)
  port_stats : (int, Openflow.Message.port_stat) Hashtbl.t;
  mutable packet_ins : int;
  mutable has_timeouts : bool;  (* whether an expiry sweep is scheduled *)
  mutable out_ports : link_state option array;
      (* lazily resolved egress state, indexed by port *)
  mutable alive : bool;
      (** false while crashed: drops packets and control messages *)
  mutable last_fm_xid : int;
      (* highest flow-mod xid applied; retransmitted batches replay with
         their original xids and are skipped here (reset on crash — a
         reboot is a fresh control connection) *)
  mutable ctl_down_arrival : float;
      (* latest controller→switch delivery time: chaos jitter must not
         reorder the (in reality TCP-ordered) control channel *)
  mutable ctl_up_arrival : float;  (* same, switch→controller *)
  mutable ctl_blocked : bool;
      (** control channel partitioned ({!cut_control}): the switch stays
          alive and keeps forwarding, but control frames in either
          direction are dropped *)
  mutable ctl_owner : (switch_id:int -> bytes -> unit) option;
      (* per-switch control-session owner (see {!ctl_channel}/{!adopt}):
         when set it overrides the network-wide [controller] handler for
         this switch's up-direction frames.  Resolved at {e delivery}
         time, so frames in flight when a session is adopted re-home to
         the new owner — exactly what a TCP connection handed to a new
         process would do. *)
  mutable fence_token : int;
      (* highest lease-fencing token seen on this control session
         (see {!Openflow.Message.Fence}); 0 = never fenced.  Survives a
         switch reboot: the token models the durable epoch a real switch
         learns from its connection manager, and forgetting it would
         re-open the split-brain window after every crash. *)
}

and host = {
  host_id : int;
  mac : Packet.Mac.t;
  ip : Packet.Ipv4.t;
  mutable received : int;
  mutable rx_bytes : int;
  mutable on_receive : (pkt -> unit) option;
  mutable uplink : link_state option;  (* cached access-link egress *)
}

and dest =
  | To_switch of switch
  | To_host of host
  | To_remote of { rem_src : Node.t; rem_src_port : int; rem_shard : int }
      (** the link's far end lives on another shard; [rem_src]/[rem_src_port]
          identify the link so the destination shard can resolve its own
          view of it at arrival *)

(* per-direction link state: queueing plus the resolved endpoints *)
and link_state = {
  ls_link : Topo.Topology.link;
      (* shares the topology's mutable [up] flag *)
  ls_tx : Openflow.Message.port_stat option;  (* switch-side tx counters *)
  ls_rx : Openflow.Message.port_stat option;  (* switch-side rx counters *)
  ls_dst : dest;
  ls_dst_port : int;
  mutable busy_until : float;
  mutable queued : int;     (* packets scheduled but not yet on the wire *)
  mutable tx_drops : int;
  mutable ls_chaos : Util.Prng.t option;
      (* this link's chaos verdict stream, created on first use; keyed
         on the fault's [link_seed] and the egress (node, port), so it
         replays identically at any shard count *)
}

(** How a shard-local network reaches the rest of a sharded simulation
    (see {!Shard}).  [ri_shard_of] is the partition function;
    [ri_post] hands a packet crossing a shard boundary to the
    destination shard as a timestamped envelope. *)
type remote_iface = {
  ri_self : int;  (** this network's shard index *)
  ri_shard_of : Node.t -> int;
  ri_post :
    rem_shard:int -> time:float -> src:Node.t -> src_port:int -> pkt -> unit;
}

type counters = {
  mutable delivered : int;       (* packets that reached a host app *)
  mutable dropped_policy : int;  (* explicit drop by a matching rule *)
  mutable dropped_miss : int;    (* table miss with no controller *)
  mutable dropped_queue : int;   (* drop-tail queue overflow *)
  mutable dropped_link : int;    (* transmission into a down/absent link *)
  mutable dropped_ttl : int;     (* hop budget exhausted (loops) *)
  mutable dropped_down : int;    (* packets / control frames arriving at a
                                    crashed switch (or dropped by a
                                    control-channel partition) *)
  mutable dropped_chaos : int;   (* data packets lost to link chaos *)
  mutable corrupted : int;       (* data packets mangled on the wire
                                    (modeled as a receiver CRC discard) *)
  mutable reordered : int;       (* data packets delivered late by chaos *)
  mutable forwarded : int;       (* switch forwarding operations *)
  mutable control_msgs : int;    (* messages on the control channel *)
  mutable control_bytes : int;
  mutable fenced_writes : int;   (* flow-mods rejected by the lease fence
                                    (a stale leader wrote after deposal) *)
}

type t = {
  sim : Sim.t;
  topo : Topo.Topology.t;
  switches : (int, switch) Hashtbl.t;
  host_tbl : (int, host) Hashtbl.t;
  queue_depth : int;  (** drop-tail queue depth, packets per direction *)
  stats : counters;
  mutable controller :
    (switch_id:int -> bytes -> unit) option;  (** switch → controller *)
  mutable control_latency : float;
  mutable tracer : (float -> string -> unit) option;
  expiry_period : float;
  fault : Fault.t option;  (** chaos injection on control channel + links *)
  link_chaos : bool;
      (* cached [Fault.has_link_chaos]: the data transmit path consults
         the fault only when a link-level rate is actually set, so the
         zero-chaos path is byte-identical to having no fault at all *)
  mutable remote : remote_iface option;  (** set when part of a sharded run *)
  mutable ctl_up_remote : (switch_id:int -> time:float -> bytes -> unit) option;
      (** sharded runs with a controller on another shard: posts a
          switch→controller frame as a timestamped envelope *)
  mutable ctl_down_remote :
    (switch_id:int -> time:float -> bytes -> unit) option;
      (** set on the controller's shard: posts a controller→switch frame
          toward the switch's owner shard *)
  mutable ctl_outage : (controller_id:int -> up:bool -> unit) option;
      (** interpreter for {!Fault.Controller_outage} incidents (set by
          {!Controller.Replica}); [up:false] crashes the member,
          [up:true] restarts it as a standby *)
  ctl_down_remote_arrival : (int, float ref) Hashtbl.t;
      (* controller-shard monotone delivery clamp for remote switches
         (the local clamp lives on the [switch] record) *)
  remote_ctl_blocked : (int, unit) Hashtbl.t;
      (* remote switches whose control channel is partitioned
         ({!cut_control} runs on the owner; the flag is broadcast so the
         controller shard drops down-frames at send time exactly as the
         single-domain engine does) *)
  mutable remote_reorders : int;
      (* reorder verdicts on cross-shard links: their late delivery is a
         distinct event in the single-domain run too, so (unlike a clean
         handoff) the envelope is not sharding overhead — the shard
         equivalence accounting subtracts these from the handoff count *)
  (* resolved ingress state for links whose source is on another shard,
     keyed by the remote (node, port) *)
  ingress_tbl : (Node.t * int, link_state) Hashtbl.t;
}

let default_queue_depth = 64

(** Default hop budget of injected packets. *)
let default_ttl = 64

(** [create ?only topo] instantiates the network.  [only] restricts which
    topology nodes get switch/host state — a shard populates just the
    nodes it owns and reaches the rest through its {!remote_iface}. *)
let create ?(queue_depth = default_queue_depth) ?(expiry_period = 1.0)
    ?sim_engine ?fault ?only topo =
  (* explicit [?fault] wins; otherwise the ZEN_CHAOS_* knobs apply *)
  let fault = match fault with Some _ -> fault | None -> Fault.from_env () in
  let t =
    { sim = Sim.create ?engine:sim_engine (); topo;
      switches = Hashtbl.create 16;
      host_tbl = Hashtbl.create 16;
      queue_depth;
      stats =
        { delivered = 0; dropped_policy = 0; dropped_miss = 0;
          dropped_queue = 0; dropped_link = 0; dropped_ttl = 0;
          dropped_down = 0; dropped_chaos = 0; corrupted = 0; reordered = 0;
          forwarded = 0; control_msgs = 0; control_bytes = 0;
          fenced_writes = 0 };
      controller = None; control_latency = 1e-3; tracer = None;
      expiry_period; fault;
      link_chaos =
        (match fault with Some f -> Fault.has_link_chaos f | None -> false);
      remote = None; ctl_up_remote = None; ctl_down_remote = None;
      ctl_outage = None;
      ctl_down_remote_arrival = Hashtbl.create 8;
      remote_ctl_blocked = Hashtbl.create 8;
      remote_reorders = 0; ingress_tbl = Hashtbl.create 8 }
  in
  let owned n = match only with Some f -> f n | None -> true in
  List.iter
    (fun n ->
      if owned n then
        match n with
        | Node.Switch id ->
          Hashtbl.replace t.switches id
            { sw_id = id; table = Flow.Table.create ();
              flood_ports = None; port_stats = Hashtbl.create 8;
              packet_ins = 0; has_timeouts = false; out_ports = [||];
              alive = true; last_fm_xid = 0;
              ctl_down_arrival = 0.0; ctl_up_arrival = 0.0;
              ctl_blocked = false; ctl_owner = None; fence_token = 0 }
        | Node.Host id ->
          Hashtbl.replace t.host_tbl id
            { host_id = id; mac = Packet.Mac.of_host_id id;
              ip = Packet.Ipv4.of_host_id id; received = 0; rx_bytes = 0;
              on_receive = None; uplink = None })
    (Topo.Topology.nodes topo);
  t

(** Attaches the cross-shard interface (before any traffic flows). *)
let set_remote t ri = t.remote <- Some ri

(** Wires the sharded control channel (see {!Shard.wire_controller}):
    [set_ctl_up_remote] on every shard that does {e not} host the
    controller, [set_ctl_down_remote] on the shard that does. *)
let set_ctl_up_remote t f = t.ctl_up_remote <- Some f

let set_ctl_down_remote t f = t.ctl_down_remote <- Some f

(** Replicates a remote switch's control-partition flag onto the
    controller's shard (see {!cut_control}; broadcast by [Shard.inject]
    at the same simulated instants as the owner-side flip). *)
let set_remote_ctl_blocked t ~switch_id blocked =
  if blocked then Hashtbl.replace t.remote_ctl_blocked switch_id ()
  else Hashtbl.remove t.remote_ctl_blocked switch_id

(** Whether a controller can receive this network's packet-ins — locally
    attached, or reachable through the sharded control channel. *)
let has_controller t = t.controller <> None || t.ctl_up_remote <> None

(** Aligns the control-channel latency across the shards of a sharded
    run (the attach on the controller's shard only sets its own). *)
let set_control_latency t latency = t.control_latency <- latency

let sim t = t.sim
let topology t = t.topo
let stats t = t.stats
let now t = Sim.now t.sim
let fault t = t.fault
let remote_reorders t = t.remote_reorders

let switch t id =
  match Hashtbl.find_opt t.switches id with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Network.switch: no switch %d" id)

let host t id =
  match Hashtbl.find_opt t.host_tbl id with
  | Some h -> h
  | None -> invalid_arg (Printf.sprintf "Network.host: no host %d" id)

let switch_list t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.switches []
  |> List.sort (fun a b -> compare a.sw_id b.sw_id)

let host_list t =
  Hashtbl.fold (fun _ h acc -> h :: acc) t.host_tbl []
  |> List.sort (fun a b -> compare a.host_id b.host_id)

(* formatting is skipped entirely when no tracer is attached — trace
   calls sit on the per-hop hot path *)
let trace t fmt =
  match t.tracer with
  | None -> Printf.ikfprintf ignore () fmt
  | Some f -> Printf.ksprintf (fun s -> f (now t) s) fmt

let set_tracer t f = t.tracer <- Some f

let port_stat sw port =
  match Hashtbl.find_opt sw.port_stats port with
  | Some ps -> ps
  | None ->
    let ps =
      { Openflow.Message.pstat_port = port; rx_packets = 0; tx_packets = 0;
        rx_bytes = 0; tx_bytes = 0; drops = 0 }
    in
    Hashtbl.replace sw.port_stats port ps;
    ps

(* ------------------------------------------------------------------ *)
(* Egress resolution *)

(* Build the cached egress state for [(node, port)].  Returns [None]
   when the topology has no link there (not cached, so links added to
   the topology later are still found). *)
let resolve_egress t node port =
  match Topo.Topology.link_via t.topo node port with
  | None -> None
  | Some l ->
    let ls_dst, ls_rx =
      match t.remote with
      | Some ri when ri.ri_shard_of l.dst <> ri.ri_self ->
        (* the far end is another shard's: rx counters and delivery
           happen over there (see [receive_remote]) *)
        ( To_remote
            { rem_src = node; rem_src_port = port;
              rem_shard = ri.ri_shard_of l.dst },
          None )
      | Some _ | None ->
        (match l.dst with
         | Node.Switch id ->
           let sw = switch t id in
           (To_switch sw, Some (port_stat sw l.dst_port))
         | Node.Host id -> (To_host (host t id), None))
    in
    let ls_tx =
      match node with
      | Node.Switch id -> Some (port_stat (switch t id) port)
      | Node.Host _ -> None
    in
    Some
      { ls_link = l; ls_tx; ls_rx; ls_dst; ls_dst_port = l.dst_port;
        busy_until = 0.0; queued = 0; tx_drops = 0; ls_chaos = None }

let switch_egress_slow t sw port =
  match resolve_egress t (Node.Switch sw.sw_id) port with
  | None -> None
  | Some ls as r ->
    let n = Array.length sw.out_ports in
    if port >= n then begin
      let arr = Array.make (max (port + 1) (max 8 (2 * n))) None in
      Array.blit sw.out_ports 0 arr 0 n;
      sw.out_ports <- arr
    end;
    sw.out_ports.(port) <- Some ls;
    r

let switch_egress t sw port =
  if port >= 0 && port < Array.length sw.out_ports then
    match Array.unsafe_get sw.out_ports port with
    | Some _ as r -> r
    | None -> switch_egress_slow t sw port
  else if port < 0 then None
  else switch_egress_slow t sw port

let host_egress t h port =
  if port = 1 then
    match h.uplink with
    | Some _ as r -> r
    | None ->
      let r = resolve_egress t (Node.Host h.host_id) 1 in
      h.uplink <- r;
      r
  else resolve_egress t (Node.Host h.host_id) port

(* ------------------------------------------------------------------ *)
(* Control-channel scheduling under chaos *)

(* Decides the delivery time(s) of one control-channel transmission and
   hands each to [emit] (local sends schedule on the shard's sim; in a
   sharded run a remote send posts an envelope at the same time).  With
   no fault attached this is exactly a [control_latency]-delayed
   delivery.  Under chaos the transmission may be dropped, duplicated or
   delayed — but never reordered: [clamp] must make delivery times
   monotone in send order for the (switch, direction) channel (the
   channel models an ordered transport; reordering would break the
   switch-side xid dedup). *)
let schedule_ctrl_gen t ~sw_id ~blocked ~to_switch ~clamp emit =
  if blocked then begin
    (* control-channel partition (see [cut_control]): the transmission
       vanishes in either direction; the switch keeps forwarding *)
    t.stats.dropped_down <- t.stats.dropped_down + 1;
    trace t "s%d drop(ctl-cut)" sw_id
  end
  else
  match t.fault with
  | None -> emit (now t +. t.control_latency)
  | Some f ->
    let v = Fault.decide f in
    let nowt = now t in
    let dir = if to_switch then "ctl->s" else "ctl<-s" in
    if v.v_drop then
      Fault.note f ~time:nowt "drop %s%d" dir sw_id
    else begin
      let sched extra = emit (clamp (nowt +. t.control_latency +. extra)) in
      if v.v_delay > 0.0 then
        Fault.note f ~time:nowt "jitter %s%d +%.6f" dir sw_id v.v_delay;
      sched v.v_delay;
      if v.v_dup then begin
        Fault.note f ~time:nowt "dup %s%d" dir sw_id;
        sched v.v_dup_delay
      end
    end

(* [schedule_ctrl_gen] against a locally-owned switch record *)
let schedule_ctrl t sw ~to_switch deliver =
  let clamp arr =
    if to_switch then begin
      let arr = if arr < sw.ctl_down_arrival then sw.ctl_down_arrival else arr in
      sw.ctl_down_arrival <- arr;
      arr
    end
    else begin
      let arr = if arr < sw.ctl_up_arrival then sw.ctl_up_arrival else arr in
      sw.ctl_up_arrival <- arr;
      arr
    end
  in
  schedule_ctrl_gen t ~sw_id:sw.sw_id ~blocked:sw.ctl_blocked ~to_switch ~clamp
    (fun time -> Sim.schedule_at t.sim ~time deliver)

(* ------------------------------------------------------------------ *)
(* Forwarding *)

(* schedule [pkt] onto a resolved, up egress link (queue check done) *)
let rec enqueue t ls pkt =
  let nowt = now t in
  let l = ls.ls_link in
  let ser = float_of_int (pkt.size * 8) /. l.capacity in
  let start = if nowt > ls.busy_until then nowt else ls.busy_until in
  ls.busy_until <- start +. ser;
  ls.queued <- ls.queued + 1;
  (match ls.ls_tx with
   | Some ps ->
     ps.tx_packets <- ps.tx_packets + 1;
     ps.tx_bytes <- ps.tx_bytes + pkt.size
   | None -> ());
  let arrival = start +. ser +. l.delay in
  (* link-level chaos verdict, drawn from this link's own seeded stream
     at egress (verdicts happen where the link is owned, so sharded runs
     replay them identically).  Serialization already happened: the
     queue slot and tx counters are spent whatever the verdict. *)
  let v =
    if not t.link_chaos then Fault.clean_verdict
    else begin
      let f = Option.get t.fault in
      let prng =
        match ls.ls_chaos with
        | Some p -> p
        | None ->
          let p = Fault.link_prng f ~node:l.src ~port:l.src_port in
          ls.ls_chaos <- Some p;
          p
      in
      let v = Fault.decide_link f prng ~delay:l.delay in
      if v.lv_drop then begin
        t.stats.dropped_chaos <- t.stats.dropped_chaos + 1;
        Fault.note f ~time:nowt "link-drop %s[%d]" (Node.to_string l.src)
          l.src_port
      end
      else if v.lv_corrupt then begin
        t.stats.corrupted <- t.stats.corrupted + 1;
        Fault.note f ~time:nowt "link-corrupt %s[%d]" (Node.to_string l.src)
          l.src_port
      end
      else if v.lv_extra > 0.0 then begin
        t.stats.reordered <- t.stats.reordered + 1;
        Fault.note f ~time:nowt "link-reorder %s[%d] +%.9f"
          (Node.to_string l.src) l.src_port v.lv_extra
      end;
      v
    end
  in
  if v.lv_drop || v.lv_corrupt then
    (* lost on the wire (or discarded by the receiver's CRC): the slot
       is released when the transmission would have arrived *)
    Sim.schedule_at t.sim ~time:arrival (fun () -> ls.queued <- ls.queued - 1)
  else
    match ls.ls_dst with
    | To_remote { rem_src; rem_src_port; rem_shard } ->
      (* cross-shard handoff, posted at {e enqueue} time so the envelope's
         timestamp is >= now + link delay >= now + lookahead — the local
         half only releases the queue slot at arrival; the destination
         shard checks its own clone's [up] flag (see [receive_remote]) *)
      Sim.schedule_at t.sim ~time:arrival (fun () ->
        ls.queued <- ls.queued - 1);
      if v.lv_extra > 0.0 then t.remote_reorders <- t.remote_reorders + 1;
      (match t.remote with
       | Some ri ->
         ri.ri_post ~rem_shard ~time:(arrival +. v.lv_extra) ~src:rem_src
           ~src_port:rem_src_port pkt
       | None -> assert false (* To_remote only resolved with an iface *))
    | To_switch _ | To_host _ ->
      let deliver () =
        (* the link may have failed while the packet was in flight *)
        if l.up then deliver_ls t ls pkt
        else begin
          t.stats.dropped_link <- t.stats.dropped_link + 1;
          trace t "drop(in-flight, link-down) -> %s"
            (match ls.ls_dst with
             | To_switch sw -> Printf.sprintf "s%d" sw.sw_id
             | To_host h -> Printf.sprintf "h%d" h.host_id
             | To_remote _ -> assert false)
        end
      in
      if v.lv_extra > 0.0 then begin
        (* reordered: the slot frees on time, delivery lands late *)
        Sim.schedule_at t.sim ~time:arrival (fun () ->
          ls.queued <- ls.queued - 1);
        Sim.schedule_at t.sim ~time:(arrival +. v.lv_extra) deliver
      end
      else
        Sim.schedule_at t.sim ~time:arrival (fun () ->
          ls.queued <- ls.queued - 1;
          deliver ())

and transmit_switch t sw port pkt =
  match switch_egress t sw port with
  | None ->
    t.stats.dropped_link <- t.stats.dropped_link + 1;
    trace t "drop(no-link) s%d port %d" sw.sw_id port
  | Some ls when not ls.ls_link.up ->
    t.stats.dropped_link <- t.stats.dropped_link + 1;
    (match ls.ls_tx with Some ps -> ps.drops <- ps.drops + 1 | None -> ());
    trace t "drop(link-down) s%d port %d" sw.sw_id port
  | Some ls ->
    if ls.queued >= t.queue_depth then begin
      t.stats.dropped_queue <- t.stats.dropped_queue + 1;
      ls.tx_drops <- ls.tx_drops + 1;
      trace t "drop(queue) s%d port %d" sw.sw_id port
    end
    else enqueue t ls pkt

and transmit_host t h port pkt =
  match host_egress t h port with
  | None ->
    t.stats.dropped_link <- t.stats.dropped_link + 1;
    trace t "drop(no-link) h%d port %d" h.host_id port
  | Some ls when not ls.ls_link.up ->
    t.stats.dropped_link <- t.stats.dropped_link + 1;
    trace t "drop(link-down) h%d port %d" h.host_id port
  | Some ls ->
    if ls.queued >= t.queue_depth then begin
      t.stats.dropped_queue <- t.stats.dropped_queue + 1;
      ls.tx_drops <- ls.tx_drops + 1;
      trace t "drop(queue) h%d port %d" h.host_id port
    end
    else enqueue t ls pkt

and transmit t node port pkt =
  match node with
  | Node.Switch id -> transmit_switch t (switch t id) port pkt
  | Node.Host id -> transmit_host t (host t id) port pkt

and deliver_ls t ls pkt =
  match ls.ls_dst with
  | To_host h ->
    h.received <- h.received + 1;
    h.rx_bytes <- h.rx_bytes + pkt.size;
    t.stats.delivered <- t.stats.delivered + 1;
    trace t "h%d rx tag=%d" h.host_id pkt.tag;
    (match h.on_receive with Some f -> f pkt | None -> ())
  | To_switch sw ->
    switch_process t sw ~in_port:ls.ls_dst_port ~rx:ls.ls_rx pkt
  | To_remote _ -> assert false (* remote hops never reach deliver_ls *)

and deliver t node port pkt =
  match node with
  | Node.Host id ->
    let h = host t id in
    h.received <- h.received + 1;
    h.rx_bytes <- h.rx_bytes + pkt.size;
    t.stats.delivered <- t.stats.delivered + 1;
    trace t "h%d rx tag=%d" id pkt.tag;
    (match h.on_receive with Some f -> f pkt | None -> ())
  | Node.Switch id ->
    switch_process t (switch t id) ~in_port:port ~rx:None pkt

and switch_process t sw ~in_port ~rx pkt =
  if not sw.alive then begin
    t.stats.dropped_down <- t.stats.dropped_down + 1;
    trace t "s%d drop(switch-down)" sw.sw_id
  end
  else if pkt.ttl <= 0 then begin
    t.stats.dropped_ttl <- t.stats.dropped_ttl + 1;
    trace t "s%d drop(ttl)" sw.sw_id
  end
  else switch_process_live t sw ~in_port ~rx pkt

and switch_process_live t sw ~in_port ~rx pkt =
  let hdr = { pkt.hdr with switch = sw.sw_id; in_port } in
  let pkt = { pkt with hdr; ttl = pkt.ttl - 1 } in
  let ps = match rx with Some ps -> ps | None -> port_stat sw in_port in
  ps.rx_packets <- ps.rx_packets + 1;
  ps.rx_bytes <- ps.rx_bytes + pkt.size;
  match Flow.Table.apply sw.table ~now:(now t) ~size:pkt.size hdr with
  | None -> packet_in t sw ~in_port ~reason:Openflow.Message.No_match pkt
  | Some group ->
    if group = Flow.Action.drop then begin
      t.stats.dropped_policy <- t.stats.dropped_policy + 1;
      trace t "s%d drop(policy)" sw.sw_id
    end
    else begin
      t.stats.forwarded <- t.stats.forwarded + 1;
      execute_outputs t sw ~in_port (Flow.Action.apply_group hdr group) pkt
    end

and execute_outputs t sw ~in_port outputs pkt =
  List.iter
    (fun ((hdr : Packet.Headers.t), (port : Flow.Action.port)) ->
      let out = { pkt with hdr } in
      match port with
      | Physical p -> transmit_switch t sw p out
      | In_port_out -> transmit_switch t sw in_port out
      | Controller ->
        packet_in t sw ~in_port ~reason:Openflow.Message.Explicit_send out
      | Flood ->
        let candidates =
          match sw.flood_ports with
          | Some ports -> ports
          | None -> Topo.Topology.ports t.topo (Node.Switch sw.sw_id)
        in
        List.iter
          (fun p -> if p <> in_port then transmit_switch t sw p out)
          candidates)
    outputs

(* ------------------------------------------------------------------ *)
(* Control channel *)

(* complete an up-direction delivery: the session owner is resolved
   {e here}, at delivery time, so frames in flight when the session is
   adopted ({!adopt}) land at the new owner — a re-homed connection
   keeps its receive queue *)
and deliver_up t sw data =
  let switch_id = sw.sw_id in
  match sw.ctl_owner with
  | Some handler -> handler ~switch_id data
  | None ->
    (match t.controller with
     | Some handler -> handler ~switch_id data
     | None -> ())  (* owner detached while the frame was in flight *)

and control_send t ?(xid = 0) sw msg =
  if sw.ctl_owner = None && t.controller = None && t.ctl_up_remote = None then
    ()
  else begin
    let data = Openflow.Wire.encode ~xid msg in
    t.stats.control_msgs <- t.stats.control_msgs + 1;
    t.stats.control_bytes <- t.stats.control_bytes + Bytes.length data;
    let switch_id = sw.sw_id in
    if sw.ctl_owner <> None || t.controller <> None then
      schedule_ctrl t sw ~to_switch:false (fun () -> deliver_up t sw data)
    else
      match t.ctl_up_remote with
      | Some post ->
        (* the controller lives on another shard: the frame becomes an
           envelope timestamped with its arrival (the chaos verdict and
           the monotone clamp are drawn here, where the switch and its
           per-shard fault stream live) *)
        let clamp arr =
          let arr =
            if arr < sw.ctl_up_arrival then sw.ctl_up_arrival else arr
          in
          sw.ctl_up_arrival <- arr;
          arr
        in
        schedule_ctrl_gen t ~sw_id:switch_id ~blocked:sw.ctl_blocked
          ~to_switch:false ~clamp (fun time -> post ~switch_id ~time data)
      | None -> assert false
  end

and packet_in t sw ~in_port ~reason pkt =
  if sw.ctl_owner = None && not (has_controller t) then begin
    t.stats.dropped_miss <- t.stats.dropped_miss + 1;
    trace t "s%d drop(miss)" sw.sw_id
  end
  else begin
    sw.packet_ins <- sw.packet_ins + 1;
    trace t "s%d packet-in port=%d" sw.sw_id in_port;
    control_send t sw
      (Openflow.Message.Packet_in
         { in_port; reason;
           packet = { headers = pkt.hdr; size = pkt.size; tag = pkt.tag } })
  end

(* Resolved ingress state for a link arriving from another shard: same
   shape as an egress [link_state], but tx counters live on the remote
   side ([ls_tx = None]) and only the local rx/destination half is
   populated.  Cached per remote (node, port). *)
let remote_ingress t src src_port =
  match Hashtbl.find_opt t.ingress_tbl (src, src_port) with
  | Some _ as r -> r
  | None ->
    (match Topo.Topology.link_via t.topo src src_port with
     | None -> None
     | Some l ->
       let ls_dst, ls_rx =
         match l.dst with
         | Node.Switch id ->
           let sw = switch t id in
           (To_switch sw, Some (port_stat sw l.dst_port))
         | Node.Host id -> (To_host (host t id), None)
       in
       let ls =
         { ls_link = l; ls_tx = None; ls_rx; ls_dst;
           ls_dst_port = l.dst_port; busy_until = 0.0; queued = 0;
           tx_drops = 0; ls_chaos = None }
       in
       Hashtbl.replace t.ingress_tbl (src, src_port) ls;
       Some ls)

(** [receive_remote t ~src ~src_port pkt] completes a cross-shard hop:
    the packet left the remote shard through link [(src, src_port)] and
    arrives here (simulated time must already be the arrival time).  The
    in-flight link-down check runs against {e this} shard's topology
    clone — incidents are broadcast to every shard's clone at identical
    times, so the verdict matches the single-domain run exactly. *)
let receive_remote t ~src ~src_port pkt =
  match remote_ingress t src src_port with
  | None ->
    t.stats.dropped_link <- t.stats.dropped_link + 1;
    trace t "drop(no-link) %s port %d" (Node.to_string src) src_port
  | Some ls ->
    if ls.ls_link.up then deliver_ls t ls pkt
    else begin
      t.stats.dropped_link <- t.stats.dropped_link + 1;
      trace t "drop(in-flight, link-down) -> %s"
        (match ls.ls_dst with
         | To_switch sw -> Printf.sprintf "s%d" sw.sw_id
         | To_host h -> Printf.sprintf "h%d" h.host_id
         | To_remote _ -> assert false)
    end

(** Registers the controller side of the control channel.  [handler]
    receives wire-encoded messages from switches; {!controller_send}
    carries messages the other way.  Both directions incur [latency]. *)
let attach_controller t ?(latency = 1e-3) handler =
  t.control_latency <- latency;
  t.controller <- Some handler

(* ------------------------------------------------------------------ *)
(* Adoptable control sessions *)

(** A switch's control session as a first-class handle.  The session is
    the per-switch half of the control channel: its in-flight frames,
    its per-direction FIFO clamps ([ctl_down_arrival]/[ctl_up_arrival]),
    its flow-mod xid dedup watermark and its fencing token all live on
    the switch record — {!adopt} re-homes {e ownership} of that state
    without disturbing any of it. *)
type ctl_channel = { ch_net : t; ch_sw : switch }

(** The control session of [switch_id] (a cheap handle; no state is
    created).  @raise Invalid_argument for switches this network does
    not own. *)
let ctl_channel t switch_id = { ch_net = t; ch_sw = switch t switch_id }

(** [adopt ch handler] re-homes the session: from now on {e this}
    switch's up-direction frames are delivered to [handler] instead of
    the network-wide {!attach_controller} handler.  Frames already in
    flight re-home too — the owner is resolved at delivery time, so
    adoption behaves like handing a connected socket to a new process:
    nothing is lost, nothing is reordered, and the switch-side dedup
    state keeps protecting against the previous owner's retransmits.
    Deliberately silent (no trace, no fault note): adoption by the same
    logical controller must be invisible to a chaos-free run. *)
let adopt ch handler = ch.ch_sw.ctl_owner <- Some handler

(** The session's current fencing token (0 = never fenced). *)
let channel_fence_token ch = ch.ch_sw.fence_token

(** Registers the interpreter for {!Fault.Controller_outage} incidents
    (see {!Controller.Replica}); without one they are ignored. *)
let set_ctl_outage_handler t h = t.ctl_outage <- Some h

(* Periodic sweep evicting timed-out rules; started lazily when the
   first rule with a timeout is installed. *)
let rec schedule_expiry t sw =
  Sim.schedule t.sim ~delay:t.expiry_period (fun () ->
    let gone = Flow.Table.expire sw.table ~now:(now t) in
    List.iter
      (fun (r : Flow.Table.rule) ->
        if r.cookie land 0x40000000 <> 0 (* notify bit, see below *) then
          control_send t sw
            (Openflow.Message.Flow_removed
               { fr_pattern = r.pattern; fr_priority = r.priority;
                 fr_cookie = r.cookie land (lnot 0x40000000);
                 fr_reason = Openflow.Message.Idle_timeout_expired;
                 fr_packets = r.packets; fr_bytes = r.bytes }))
      gone;
    if sw.has_timeouts then schedule_expiry t sw)

let apply_flow_mod t sw (fm : Openflow.Message.flow_mod) =
  match fm.command with
  | Add_flow | Modify_flow ->
    let cookie =
      if fm.notify_when_removed then fm.fm_cookie lor 0x40000000
      else fm.fm_cookie
    in
    Flow.Table.add sw.table
      (Flow.Table.make_rule ~priority:fm.fm_priority ~pattern:fm.fm_pattern
         ~actions:fm.fm_actions ~idle_timeout:fm.idle_timeout
         ~hard_timeout:fm.hard_timeout ~cookie ~now:(now t) ());
    if (fm.idle_timeout <> None || fm.hard_timeout <> None)
       && not sw.has_timeouts
    then begin
      sw.has_timeouts <- true;
      schedule_expiry t sw
    end
  | Delete_flow ->
    let cookie = if fm.fm_cookie = -1 then None else Some fm.fm_cookie in
    Flow.Table.remove ?cookie sw.table ~pattern:fm.fm_pattern
  | Delete_strict_flow ->
    let cookie = if fm.fm_cookie = -1 then None else Some fm.fm_cookie in
    Flow.Table.remove_strict ?cookie sw.table ~priority:fm.fm_priority
      ~pattern:fm.fm_pattern

let flow_stats_of_table table pattern =
  Flow.Table.rules table
  |> List.filter (fun (r : Flow.Table.rule) ->
    Flow.Pattern.subsumes ~general:pattern r.pattern)
  |> List.map (fun (r : Flow.Table.rule) ->
    { Openflow.Message.fs_pattern = r.pattern; fs_priority = r.priority;
      fs_cookie = r.cookie; fs_actions = r.actions;
      fs_packets = r.packets; fs_bytes = r.bytes })

let handle_at_switch t sw ~xid (msg : Openflow.Message.t) =
  match msg with
  | Hello ->
    (* No echo: the handshake is confirmed by [Features_reply], and the
       only switch-originated Hello is the spontaneous restart
       announcement ([restart_switch]).  Echoing here would let a
       duplicated echo masquerade as a restart at the controller — a
       positive feedback loop under chaos duplication. *)
    ()
  | Echo_request s -> control_send t ~xid sw (Openflow.Message.Echo_reply s)
  | Features_request ->
    control_send t sw
      (Openflow.Message.Features_reply
         { datapath_id = sw.sw_id;
           port_list = Topo.Topology.ports t.topo (Node.Switch sw.sw_id) })
  | Flow_mod fm ->
    (* last-seen-xid dedup: a retransmitted batch replays with its
       original xids, so re-applying is skipped — replays are idempotent
       even for delete/modify commands.  xid 0 (untracked senders)
       bypasses the check. *)
    if xid > 0 && xid <= sw.last_fm_xid then
      trace t "s%d dedup flow-mod xid=%d" sw.sw_id xid
    else begin
      if xid > 0 then sw.last_fm_xid <- xid;
      apply_flow_mod t sw fm
    end
  | Packet_out po ->
    let pkt =
      { hdr = po.out_packet.headers; size = po.out_packet.size;
        tag = po.out_packet.tag; ttl = default_ttl }
    in
    let hdr = { pkt.hdr with switch = sw.sw_id } in
    let outputs =
      Flow.Action.apply_group hdr [ po.out_actions ]
    in
    execute_outputs t sw ~in_port:po.out_in_port outputs pkt
  | Barrier_request ->
    (* the reply echoes the request xid so the controller can match the
       ack to the batch it terminates (retransmit tracking) *)
    control_send t ~xid sw Openflow.Message.Barrier_reply
  | Stats_request (Flow_stats_request pattern) ->
    control_send t sw
      (Openflow.Message.Stats_reply
         (Flow_stats_reply (flow_stats_of_table sw.table pattern)))
  | Stats_request (Port_stats_request which) ->
    let ports =
      match which with
      | Some p -> [ port_stat sw p ]
      | None ->
        Topo.Topology.ports t.topo (Node.Switch sw.sw_id)
        |> List.map (port_stat sw)
    in
    control_send t sw (Openflow.Message.Stats_reply (Port_stats_reply ports))
  | Stats_request Table_stats_request ->
    control_send t sw
      (Openflow.Message.Stats_reply
         (Table_stats_reply
            { active_rules = Flow.Table.size sw.table;
              table_hits = Flow.Table.hits sw.table;
              table_misses = Flow.Table.misses sw.table;
              cache_hits = Flow.Table.cache_hits sw.table;
              cache_misses = Flow.Table.cache_misses sw.table;
              cache_invalidations = Flow.Table.invalidations sw.table;
              classifier_probes = Flow.Table.classifier_probes sw.table;
              classifier_shapes = Flow.Table.shape_count sw.table }))
  | Fence _ ->
    ()  (* interpreted by [deliver_down], which gates the whole delivery *)
  | Echo_reply _ | Features_reply _ | Packet_in _ | Port_status _
  | Flow_removed _ | Stats_reply _ | Barrier_reply ->
    ()  (* controller-bound messages are meaningless at a switch *)

(* apply a delivered controller→switch transmission (possibly a batch)
   to the locally-owned switch record.  A leading [Fence] frame gates
   the delivery's flow-mods: a token below the highest ever seen marks
   the whole delivery stale (a deposed leader wrote after failover) and
   its flow-mods are rejected; a strictly higher token opens a new
   epoch and resets the flow-mod xid dedup — the new leader's xid
   sequence is unrelated to the old one's, while its own retransmits
   (same token) still dedup within the epoch.  Non-flow-mod frames are
   processed either way: reads and barriers are harmless, and a barrier
   reply acks {e delivery}, not rule acceptance — the stale leader's
   stream advances while its writes land nowhere. *)
let deliver_down t sw data =
  if sw.alive then begin
    let stale = ref false in
    List.iter
      (fun (xid, msg) ->
        match (msg : Openflow.Message.t) with
        | Fence token ->
          if token > sw.fence_token then begin
            sw.fence_token <- token;
            sw.last_fm_xid <- 0;
            stale := false;
            trace t "s%d fence epoch=%d" sw.sw_id token
          end
          else if token < sw.fence_token then begin
            stale := true;
            trace t "s%d stale fence %d < %d" sw.sw_id token sw.fence_token;
            match t.fault with
            | Some f ->
              Fault.note f ~time:(now t) "fence-reject s%d epoch=%d" sw.sw_id
                token
            | None -> ()
          end
          else stale := false
        | Flow_mod _ when !stale ->
          t.stats.fenced_writes <- t.stats.fenced_writes + 1;
          trace t "s%d drop(fenced) xid=%d" sw.sw_id xid
        | _ -> handle_at_switch t sw ~xid msg)
      (Openflow.Wire.decode_all data)
  end
  else begin
    let n = Openflow.Wire.frame_count data in
    t.stats.dropped_down <- t.stats.dropped_down + n;
    trace t "s%d drop(ctl, switch-down) %d frame(s)" sw.sw_id n
  end

(** Controller → switch: delivers wire-encoded [data] to [switch_id]
    after the control-channel latency.  [data] may carry one message or
    a whole batch (concatenated frames, see {!Openflow.Wire.encode_batch});
    stats count the logical messages, and a batch is decoded and applied
    in frame order as one delivery event.  In a sharded run a switch
    owned by another shard is reached through the [ctl_down_remote]
    envelope post; the arrival time (chaos verdict, monotone clamp,
    partition check) is decided here on the controller's shard.
    @raise Openflow.Wire.Wire_error on undecodable bytes (at delivery). *)
let controller_send t ~switch_id data =
  t.stats.control_msgs <-
    t.stats.control_msgs + Openflow.Wire.frame_count data;
  t.stats.control_bytes <- t.stats.control_bytes + Bytes.length data;
  match Hashtbl.find_opt t.switches switch_id with
  | Some sw ->
    schedule_ctrl t sw ~to_switch:true (fun () -> deliver_down t sw data)
  | None ->
    (match t.ctl_down_remote with
     | None ->
       invalid_arg (Printf.sprintf "Network.switch: no switch %d" switch_id)
     | Some post ->
       let blocked = Hashtbl.mem t.remote_ctl_blocked switch_id in
       let clamp arr =
         let r =
           match Hashtbl.find_opt t.ctl_down_remote_arrival switch_id with
           | Some r -> r
           | None ->
             let r = ref 0.0 in
             Hashtbl.replace t.ctl_down_remote_arrival switch_id r;
             r
         in
         let arr = if arr < !r then !r else arr in
         r := arr;
         arr
       in
       schedule_ctrl_gen t ~sw_id:switch_id ~blocked ~to_switch:true ~clamp
         (fun time -> post ~switch_id ~time data))

(** Completes a cross-shard controller→switch hop on the owner shard
    (simulated time must already be the arrival time). *)
let deliver_ctl_down t ~switch_id data = deliver_down t (switch t switch_id) data

(** Completes a cross-shard switch→controller hop on the controller's
    shard: hands the frame to the attached handler. *)
let deliver_ctl_up t ~switch_id data =
  match t.controller with
  | Some handler -> handler ~switch_id data
  | None -> ()

(** Emits a [Port_status] toward the controller from [switch_id] (used
    by {!Shard.inject} when a cross-shard link incident's far endpoint
    lives here; the owner endpoint notifies through {!fail_link}).
    No-op without a reachable controller or for unknown switches. *)
let notify_port_status t ~switch_id ~port ~up =
  match Hashtbl.find_opt t.switches switch_id with
  | None -> ()
  | Some sw ->
    control_send t sw
      (Openflow.Message.Port_status
         { ps_port = port;
           ps_reason =
             (if up then Openflow.Message.Port_up
              else Openflow.Message.Port_down) })

(* ------------------------------------------------------------------ *)
(* Failures *)

(** Fails the link at [(node, port)] and notifies the controller with
    port-status messages from both endpoints (switches only). *)
let fail_link t node port =
  (match Topo.Topology.link_via t.topo node port with
   | None -> ()
   | Some l ->
     Topo.Topology.set_link_up t.topo (node, port) false;
     trace t "link %s[%d] down" (Node.to_string node) port;
     (match t.fault with
      | Some f ->
        Fault.note f ~time:(now t) "link-down %s[%d]" (Node.to_string node) port
      | None -> ());
     (* find_opt: in a sharded run the far endpoint may belong to
        another shard (whose own clone flips at the same time) *)
     let notify n p =
       match n with
       | Node.Switch id ->
         (match Hashtbl.find_opt t.switches id with
          | Some sw ->
            control_send t sw
              (Openflow.Message.Port_status
                 { ps_port = p; ps_reason = Openflow.Message.Port_down })
          | None -> ())
       | Node.Host _ -> ()
     in
     notify node port;
     notify l.dst l.dst_port)

let restore_link t node port =
  match Topo.Topology.link_via t.topo node port with
  | None -> ()
  | Some l ->
    Topo.Topology.set_link_up t.topo (node, port) true;
    trace t "link %s[%d] up" (Node.to_string node) port;
    (match t.fault with
     | Some f ->
       Fault.note f ~time:(now t) "link-up %s[%d]" (Node.to_string node) port
     | None -> ());
    let notify n p =
      match n with
      | Node.Switch id ->
        (match Hashtbl.find_opt t.switches id with
         | Some sw ->
           control_send t sw
             (Openflow.Message.Port_status
                { ps_port = p; ps_reason = Openflow.Message.Port_up })
         | None -> ())
      | Node.Host _ -> ()
    in
    notify node port;
    notify l.dst l.dst_port

(** [crash_switch t id] models a switch reboot's first half: forwarding
    stops, the flow table and its caches are wiped (a restarted switch
    has an empty table), flood configuration and the control-connection
    xid memory are reset.  Packets and control frames addressed to the
    switch are counted in [dropped_down] until {!restart_switch}. *)
let crash_switch t id =
  let sw = switch t id in
  if sw.alive then begin
    sw.alive <- false;
    Flow.Table.clear sw.table;
    sw.flood_ports <- None;
    sw.has_timeouts <- false;  (* stops the expiry sweep from rescheduling *)
    sw.last_fm_xid <- 0;       (* a reboot is a fresh control connection *)
    trace t "s%d crash" id;
    match t.fault with
    | Some f -> Fault.note f ~time:(now t) "crash s%d" id
    | None -> ()
  end

(** [restart_switch t id] brings a crashed switch back with an empty
    table and announces it to the controller with a [Hello] — the
    runtime answers with a fresh feature handshake (and, with resilience
    enabled, resyncs the intended rules). *)
let restart_switch t id =
  let sw = switch t id in
  if not sw.alive then begin
    sw.alive <- true;
    trace t "s%d restart" id;
    (match t.fault with
     | Some f -> Fault.note f ~time:(now t) "restart s%d" id
     | None -> ());
    control_send t sw Openflow.Message.Hello
  end

let switch_alive t id = (switch t id).alive

(** [cut_control t id] partitions the control channel of a live switch:
    every control transmission in either direction is dropped (counted in
    [dropped_down]) until {!heal_control}.  The switch keeps forwarding
    with its current table — the scenario where re-handshake resync meets
    a {e warm} table instead of a rebooted empty one. *)
let cut_control t id =
  let sw = switch t id in
  if not sw.ctl_blocked then begin
    sw.ctl_blocked <- true;
    trace t "s%d ctl-cut" id;
    match t.fault with
    | Some f -> Fault.note f ~time:(now t) "ctl-cut s%d" id
    | None -> ()
  end

(** [heal_control t id] ends a control partition.  The switch reconnects
    with a spontaneous [Hello] (as after a restart) so the controller
    runs a fresh handshake — but unlike a restart the table survived. *)
let heal_control t id =
  let sw = switch t id in
  if sw.ctl_blocked then begin
    sw.ctl_blocked <- false;
    trace t "s%d ctl-heal" id;
    (match t.fault with
     | Some f -> Fault.note f ~time:(now t) "ctl-heal s%d" id
     | None -> ());
    control_send t sw Openflow.Message.Hello
  end

(** [inject t incidents] schedules a chaos scenario: each incident's
    failure and recovery ride the simulator at their configured absolute
    times, through {!fail_link}/{!restore_link}/{!crash_switch}/
    {!restart_switch} — so port-status notifications, controller
    reaction and the fault trace all happen exactly as for a manual
    failure. *)
let inject t incidents =
  List.iter
    (fun (i : Fault.incident) ->
      match i with
      | Fault.Link_flap { node; port; at; duration } ->
        Sim.schedule_at t.sim ~time:at (fun () -> fail_link t node port);
        Sim.schedule_at t.sim ~time:(at +. duration) (fun () ->
          restore_link t node port)
      | Fault.Switch_outage { switch_id; at; duration } ->
        Sim.schedule_at t.sim ~time:at (fun () -> crash_switch t switch_id);
        Sim.schedule_at t.sim ~time:(at +. duration) (fun () ->
          restart_switch t switch_id)
      | Fault.Ctl_outage { switch_id; at; duration } ->
        Sim.schedule_at t.sim ~time:at (fun () -> cut_control t switch_id);
        Sim.schedule_at t.sim ~time:(at +. duration) (fun () ->
          heal_control t switch_id)
      | Fault.Controller_outage { controller_id; at; duration } ->
        let fire up label =
          trace t "c%d %s" controller_id label;
          (match t.fault with
           | Some f -> Fault.note f ~time:(now t) "%s c%d" label controller_id
           | None -> ());
          match t.ctl_outage with
          | Some h -> h ~controller_id ~up
          | None -> ()
        in
        Sim.schedule_at t.sim ~time:at (fun () -> fire false "ctl-crash");
        Sim.schedule_at t.sim ~time:(at +. duration) (fun () ->
          fire true "ctl-restart"))
    incidents

(* ------------------------------------------------------------------ *)
(* Host sending *)

(** [send_from t ~host pkt] puts [pkt] on the host's access link at the
    current simulated time (headers should carry the intended addressing;
    location fields are set by the receiving switch). *)
let send_from t ~host:id pkt = transmit_host t (host t id) 1 pkt

(** Builds a TCP-shaped packet from one synthesized host to another. *)
let make_pkt ?(size = 1000) ?(tag = 0) ?(tp_src = 10000) ?(tp_dst = 80)
    ?(ttl = default_ttl) ~src ~dst () =
  { hdr =
      Packet.Headers.tcp ~switch:0 ~in_port:0 ~src_host:src ~dst_host:dst
        ~tp_src ~tp_dst;
    size; tag; ttl }

(** [run t ?until ()] advances the simulation (see {!Sim.run}). *)
let run ?until ?strict ?max_events t () =
  Sim.run ?until ?strict ?max_events t.sim

let pp_stats fmt (c : counters) =
  Format.fprintf fmt
    "delivered=%d forwarded=%d dropped(policy=%d miss=%d queue=%d link=%d ttl=%d down=%d chaos=%d corrupt=%d) reordered=%d control(msgs=%d bytes=%d)"
    c.delivered c.forwarded c.dropped_policy c.dropped_miss c.dropped_queue
    c.dropped_link c.dropped_ttl c.dropped_down c.dropped_chaos c.corrupted
    c.reordered c.control_msgs c.control_bytes;
  if c.fenced_writes > 0 then
    Format.fprintf fmt " fenced=%d" c.fenced_writes
