(** Sharded parallel simulation driver: one {!Network} per shard, run
    under conservative lookahead (see {!Util.Shard_sync}).

    The topology is partitioned by a pluggable function mapping every
    node to a shard.  Each shard owns the switch/host state of its
    nodes, a {e clone} of the topology (so the mutable link [up] flags
    are never shared across domains), its own {!Sim} clock + timing
    wheel, and — when chaos is configured — its own {!Fault} stream
    seeded per shard.  Packets crossing a shard boundary become
    timestamped envelopes posted through {!Util.Shard_sync}; the minimum
    delay over boundary-crossing links is the lookahead that makes the
    conservative window non-trivial.

    Determinism: a sharded run is a pure function of its inputs — shard
    count and {!Util.Pool} size never change results (envelopes carry a
    (time, source shard, sequence) total order).  Against the
    {e single-domain} engine the equivalence is exact whenever no two
    causally-independent events share a timestamp: the sequential engine
    breaks such ties by global scheduling order, which no partitioned
    execution can reproduce (the classic conservative-PDES caveat), so
    simultaneous packets contending for one queue may serialize in a
    different — still deterministic — order.  Tie-free workloads (e.g.
    {!Traffic.random_pair_specs} with [~stagger]) give byte-equal
    delivery traces, tables, counters and port stats for any shard
    count.  Raw executed-event counts always differ: a cross-shard hop
    costs one extra local event (the source-side queue release), so
    [logical events = executed - handoffs].

    Tables can be installed directly ([Zen.install_policy_sharded]), or
    a {!Controller.Runtime} can attach to shard 0's network after
    {!wire_controller}: control frames in both directions travel as
    {!Util.Shard_sync} envelopes timestamped with their arrival, with
    the lookahead lowered to [min link_lookahead control_latency].  With
    {e control-channel} chaos rates set the sharded trace diverges from
    single-domain (the control fault stream is split per shard); link
    chaos, link flaps and outages remain byte-equal. *)

module Node = Topo.Topology.Node

(* a cross-shard envelope payload: a data packet identified by the link
   (sending endpoint) it left through, or a control-channel frame in
   either direction (see [wire_controller]) *)
type load =
  | Ld_pkt of { ld_src : Node.t; ld_src_port : int; ld_pkt : Network.pkt }
  | Ld_ctl_up of { cu_switch : int; cu_data : bytes }
  | Ld_ctl_down of { cd_switch : int; cd_data : bytes }

type shard = {
  sh_index : int;
  sh_net : Network.t;
  mutable sh_executed : int;
}

type t = {
  topo : Topo.Topology.t;  (* the original; shards run on clones *)
  nshards : int;
  shard_of : Node.t -> int;
  shards : shard array;
  sync : load Util.Shard_sync.t;
  mutable lookahead : float;
      (* min delay over cross-shard links (+inf if none); lowered to the
         control latency when a controller attaches *)
  mutable dist : float array array;
      (* shard-quotient distance matrix for the adaptive window bound
         (see Shard_sync.drive); rebuilt when a controller attaches *)
  mutable ctl_shard : int;  (* controller's shard, -1 when none *)
}

(* ------------------------------------------------------------------ *)
(* Partition functions *)

(** A partition maps every topology node to a shard in [0, shards). *)
type partition = Topo.Topology.t -> shards:int -> Node.t -> int

(** Contiguous switch-id blocks; hosts follow their uplink switch.  The
    topology-agnostic default: id-adjacent switches are usually
    topologically adjacent for the generators in {!Topo.Gen}. *)
let block_partition : partition =
 fun topo ~shards ->
  let sw = Array.of_list (Topo.Topology.switch_ids topo) in
  Array.sort compare sw;
  let n = Array.length sw in
  let tbl = Hashtbl.create (2 * (n + 1)) in
  Array.iteri
    (fun i id -> Hashtbl.replace tbl (Node.Switch id) (i * shards / max n 1))
    sw;
  List.iter
    (fun h ->
      let s =
        match Topo.Topology.attachment topo h with
        | Some (sw_id, _) ->
          (match Hashtbl.find_opt tbl (Node.Switch sw_id) with
           | Some s -> s
           | None -> 0)
        | None -> 0
      in
      Hashtbl.replace tbl (Node.Host h) s)
    (Topo.Topology.host_ids topo);
  fun node -> match Hashtbl.find_opt tbl node with Some s -> s | None -> 0

(** Fat-tree pod partition (for topologies built by {!Topo.Gen.fat_tree}
    with the same [k]): pods map to contiguous shard blocks, the pod's
    hosts follow their edge switch, and the core layer is spread evenly.
    Pod-local traffic then never crosses a shard boundary. *)
let pod_partition ~k : partition =
 fun topo ~shards ->
  let half = k / 2 in
  let n_core = half * half in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun id ->
      let s =
        if id <= n_core then (id - 1) * shards / n_core
        else (id - n_core - 1) / k * shards / k
      in
      Hashtbl.replace tbl (Node.Switch id) s)
    (Topo.Topology.switch_ids topo);
  List.iter
    (fun h ->
      let s =
        match Topo.Topology.attachment topo h with
        | Some (sw_id, _) ->
          (match Hashtbl.find_opt tbl (Node.Switch sw_id) with
           | Some s -> s
           | None -> 0)
        | None -> 0
      in
      Hashtbl.replace tbl (Node.Host h) s)
    (Topo.Topology.host_ids topo);
  fun node -> match Hashtbl.find_opt tbl node with Some s -> s | None -> 0

(** Parses a partition name: ["block"], or ["pod:K"] for the fat-tree
    pod partition.  Returns [None] on anything else. *)
let partition_of_string s =
  match String.split_on_char ':' (String.lowercase_ascii (String.trim s)) with
  | [ "block" ] -> Some block_partition
  | [ "pod"; k ] ->
    (match int_of_string_opt k with
     | Some k when k >= 2 -> Some (pod_partition ~k)
     | Some _ | None -> None)
  | _ -> None

(** Shard count used when none is requested: [ZEN_SIM_SHARDS] if set to
    a positive integer, else 1. *)
let default_shards () =
  match Sys.getenv_opt "ZEN_SIM_SHARDS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | Some _ | None -> 1)
  | None -> 1

(* ------------------------------------------------------------------ *)
(* Construction *)

let lookahead_of topo shard_of =
  List.fold_left
    (fun acc (l : Topo.Topology.link) ->
      if shard_of l.src <> shard_of l.dst then Float.min acc l.delay else acc)
    infinity (Topo.Topology.links topo)

(* Shard-quotient distance matrix: d.(j).(i) lower-bounds the boundary
   delay any causal chain accumulates getting from shard [j] to shard
   [i] (edge weight = min delay over the pair's boundary links, plus a
   [latency]-weight star around the controller shard when one is
   wired); the diagonal holds the minimum return cycle.  Feeds the
   adaptive window bound in {!Util.Shard_sync.drive}. *)
let quotient_dist topo shard_of ~shards ?ctl () =
  let d =
    Array.init shards (fun j ->
      Array.init shards (fun i -> if i = j then 0.0 else infinity))
  in
  let edge a b w =
    if a <> b then begin
      if w < d.(a).(b) then d.(a).(b) <- w;
      if w < d.(b).(a) then d.(b).(a) <- w
    end
  in
  List.iter
    (fun (l : Topo.Topology.link) ->
      edge (shard_of l.src) (shard_of l.dst) l.delay)
    (Topo.Topology.links topo);
  (match ctl with
   | Some (ctl_shard, latency) ->
     for k = 0 to shards - 1 do
       edge ctl_shard k latency
     done
   | None -> ());
  (* Floyd–Warshall over the quotient graph (diagonal 0 while relaxing) *)
  for k = 0 to shards - 1 do
    for i = 0 to shards - 1 do
      for j = 0 to shards - 1 do
        let v = d.(i).(k) +. d.(k).(j) in
        if v < d.(i).(j) then d.(i).(j) <- v
      done
    done
  done;
  (* diagonal := min return cycle through any other shard (uses only
     off-diagonal entries, so order does not matter) *)
  for i = 0 to shards - 1 do
    let cyc = ref infinity in
    for j = 0 to shards - 1 do
      if j <> i then begin
        let v = d.(i).(j) +. d.(j).(i) in
        if v < !cyc then cyc := v
      end
    done;
    d.(i).(i) <- !cyc
  done;
  d

(** [create ~shards topo] partitions [topo] and instantiates one network
    per shard.  [partition] defaults to {!block_partition};
    [fault_config] attaches a chaos layer with per-shard derived seeds
    (see {!Fault.shard_config}; defaults to the [ZEN_CHAOS_*] knobs).
    @raise Invalid_argument when a cross-shard link has zero delay (the
    conservative lookahead would vanish). *)
let create ?queue_depth ?sim_engine ?fault_config
    ?(partition = block_partition) ~shards topo =
  if shards < 1 then invalid_arg "Shard.create: shards must be >= 1";
  let shard_of =
    let f = partition topo ~shards in
    fun node ->
      let s = f node in
      if s < 0 || s >= shards then
        invalid_arg "Shard.create: partition out of range"
      else s
  in
  let lookahead = lookahead_of topo shard_of in
  if lookahead <= 0.0 then
    invalid_arg "Shard.create: cross-shard links must have positive delay";
  let fault_config =
    match fault_config with
    | Some _ -> fault_config
    | None -> Option.map Fault.config (Fault.from_env ())
  in
  let sync = Util.Shard_sync.create ~shards () in
  let t =
    { topo; nshards = shards; shard_of;
      shards =
        Array.init shards (fun i ->
          let clone = Topo.Topology.copy topo in
          let fault =
            Option.map
              (fun c -> Fault.of_config (Fault.shard_config c ~shard:i))
              fault_config
          in
          let net =
            Network.create ?queue_depth ?sim_engine ?fault
              ~only:(fun n -> shard_of n = i)
              clone
          in
          { sh_index = i; sh_net = net; sh_executed = 0 });
      sync; lookahead;
      dist = quotient_dist topo shard_of ~shards ();
      ctl_shard = -1 }
  in
  Array.iter
    (fun sh ->
      Network.set_remote sh.sh_net
        { ri_self = sh.sh_index; ri_shard_of = shard_of;
          ri_post =
            (fun ~rem_shard ~time ~src ~src_port pkt ->
              Util.Shard_sync.post t.sync ~src:sh.sh_index ~dst:rem_shard
                ~time
                (Ld_pkt { ld_src = src; ld_src_port = src_port; ld_pkt = pkt })) })
    t.shards;
  t

let shards t = t.nshards
let topology t = t.topo
let lookahead t = t.lookahead
let shard_of t node = t.shard_of node

(** The shard-local networks, indexed by shard. *)
let nets t = Array.map (fun sh -> sh.sh_net) t.shards

let net t i = t.shards.(i).sh_net
let net_of_switch t id = t.shards.(t.shard_of (Node.Switch id)).sh_net
let net_of_host t id = t.shards.(t.shard_of (Node.Host id)).sh_net

(* ------------------------------------------------------------------ *)
(* Sharded control channel *)

(** [wire_controller t ~latency] prepares the sharded control channel
    before a {!Controller.Runtime} attaches to shard 0's network: every
    other shard posts switch→controller frames as timestamped envelopes,
    and shard 0 posts controller→switch frames back toward each
    switch's owner.  Arrival times (including chaos verdicts and the
    per-channel monotone clamps) are decided on the {e sending} shard,
    so a control transmission is an envelope at [>= now + latency] and
    the conservative invariant holds with the lookahead lowered to
    [min lookahead latency].

    The runtime's own timers (keepalives, retransmissions, stats polls)
    live on shard 0's simulator; apps must only touch switch state
    through the control channel ({!Controller.Api.ctx} sends —
    [Api.set_flood_ports], and thus the learning app, would race across
    domains and raises for remote switches). *)
let wire_controller t ~latency =
  if latency <= 0.0 then
    invalid_arg "Shard.wire_controller: latency must be positive";
  t.lookahead <- Float.min t.lookahead latency;
  t.ctl_shard <- 0;
  t.dist <-
    quotient_dist t.topo t.shard_of ~shards:t.nshards
      ~ctl:(t.ctl_shard, latency) ();
  Array.iter
    (fun sh ->
      Network.set_control_latency sh.sh_net latency;
      if sh.sh_index <> t.ctl_shard then
        Network.set_ctl_up_remote sh.sh_net (fun ~switch_id ~time data ->
          Util.Shard_sync.post t.sync ~src:sh.sh_index ~dst:t.ctl_shard ~time
            (Ld_ctl_up { cu_switch = switch_id; cu_data = data })))
    t.shards;
  Network.set_ctl_down_remote t.shards.(t.ctl_shard).sh_net
    (fun ~switch_id ~time data ->
      Util.Shard_sync.post t.sync ~src:t.ctl_shard
        ~dst:(t.shard_of (Node.Switch switch_id))
        ~time
        (Ld_ctl_down { cd_switch = switch_id; cd_data = data }))

(* ------------------------------------------------------------------ *)
(* Incidents *)

(** [inject t incidents] broadcasts a chaos scenario to every shard: the
    shard owning the incident's node runs the full failure path (trace,
    fault note, controller notification if any); every {e other} shard
    silently flips its own topology clone at the same instants, so the
    in-flight link-down verdicts every shard makes match the
    single-domain run exactly.  Switch outages only touch the owner.

    With a controller attached ({!wire_controller}) two incidents grow
    controller-visible far ends: a {e cross-shard} link flap's far
    endpoint emits its own [Port_status] from its owner shard (the
    owner-side {!Network.fail_link} can only notify locally), and a
    control partition's blocked flag is replicated to every shard so the
    controller shard drops down-frames at send time exactly as the
    single-domain engine does. *)
let inject t incidents =
  Array.iter
    (fun sh ->
      let sim = Network.sim sh.sh_net in
      let clone = Network.topology sh.sh_net in
      List.iter
        (fun (i : Fault.incident) ->
          match i with
          | Fault.Link_flap { node; port; at; duration } ->
            if t.shard_of node = sh.sh_index then
              Network.inject sh.sh_net [ i ]
            else begin
              (* does the link's far endpoint live here?  Then this
                 shard owns the far-end port-status notification. *)
              let far =
                match Topo.Topology.link_via clone node port with
                | Some l
                  when t.shard_of l.dst = sh.sh_index
                       && t.shard_of l.dst <> t.shard_of node ->
                  (match l.dst with
                   | Node.Switch id -> Some (id, l.dst_port)
                   | Node.Host _ -> None)
                | Some _ | None -> None
              in
              let notify up =
                match far with
                | Some (id, p) ->
                  Network.notify_port_status sh.sh_net ~switch_id:id ~port:p
                    ~up
                | None -> ()
              in
              Sim.schedule_at sim ~time:at (fun () ->
                Topo.Topology.set_link_up clone (node, port) false;
                notify false);
              Sim.schedule_at sim ~time:(at +. duration) (fun () ->
                Topo.Topology.set_link_up clone (node, port) true;
                notify true)
            end
          | Fault.Switch_outage { switch_id; _ } ->
            if t.shard_of (Node.Switch switch_id) = sh.sh_index then
              Network.inject sh.sh_net [ i ]
          | Fault.Controller_outage _ ->
            (* replicated controllers are a single-domain feature; the
               incident is interpreted (or ignored) by shard 0, where a
               controller would live *)
            if sh.sh_index = 0 then Network.inject sh.sh_net [ i ]
          | Fault.Ctl_outage { switch_id; at; duration } ->
            if t.shard_of (Node.Switch switch_id) = sh.sh_index then
              Network.inject sh.sh_net [ i ]
            else begin
              Sim.schedule_at sim ~time:at (fun () ->
                Network.set_remote_ctl_blocked sh.sh_net ~switch_id true);
              Sim.schedule_at sim ~time:(at +. duration) (fun () ->
                Network.set_remote_ctl_blocked sh.sh_net ~switch_id false)
            end)
        incidents)
    t.shards

(* ------------------------------------------------------------------ *)
(* Running *)

(** [run ?until ?pool t] advances every shard under the conservative
    window loop, fanning windows over [pool] (default: the process-wide
    {!Util.Pool}).  Returns the total number of events executed.  Safe
    to call repeatedly; like {!Sim.run}, [until] is inclusive.

    [window]/[steal] select the window-sizing and work-stealing policy
    (default: the [ZEN_SHARD_WINDOW]/[ZEN_SHARD_STEAL] knobs — see
    {!Util.Shard_sync.drive}; neither changes observable results). *)
let run ?until ?pool ?window ?steal t =
  let pool = match pool with Some p -> p | None -> Util.Pool.get_default () in
  let before = Array.fold_left (fun a sh -> a + sh.sh_executed) 0 t.shards in
  let next_time i =
    match Sim.peek (Network.sim t.shards.(i).sh_net) with
    | Some (time, _) -> time
    | None -> infinity
  in
  let load_hint i = Sim.pending (Network.sim t.shards.(i).sh_net) in
  let run_window i ~stop ~strict =
    let sh = t.shards.(i) in
    let sim = Network.sim sh.sh_net in
    List.iter
      (fun (e : load Util.Shard_sync.envelope) ->
        match e.env_load with
        | Ld_pkt { ld_src; ld_src_port; ld_pkt } ->
          Sim.schedule_at sim ~time:e.env_time (fun () ->
            Network.receive_remote sh.sh_net ~src:ld_src
              ~src_port:ld_src_port ld_pkt)
        | Ld_ctl_up { cu_switch; cu_data } ->
          Sim.schedule_at sim ~time:e.env_time (fun () ->
            Network.deliver_ctl_up sh.sh_net ~switch_id:cu_switch cu_data)
        | Ld_ctl_down { cd_switch; cd_data } ->
          Sim.schedule_at sim ~time:e.env_time (fun () ->
            Network.deliver_ctl_down sh.sh_net ~switch_id:cd_switch cd_data))
      (Util.Shard_sync.drain t.sync i);
    sh.sh_executed <-
      sh.sh_executed + Network.run ~until:stop ~strict sh.sh_net ()
  in
  Util.Shard_sync.drive t.sync ~pool ~lookahead:t.lookahead ?until ?window
    ?steal ~dist:t.dist ~load_hint ~next_time ~run_window ();
  Array.fold_left (fun a sh -> a + sh.sh_executed) 0 t.shards - before

(* ------------------------------------------------------------------ *)
(* Merged observables *)

let executed t = Array.fold_left (fun a sh -> a + sh.sh_executed) 0 t.shards
let executed_of t i = t.shards.(i).sh_executed
let rounds t = Util.Shard_sync.rounds t.sync
let handoffs t = Util.Shard_sync.handoffs t.sync
let handoffs_of t i = Util.Shard_sync.handoffs_of t.sync i
let stalls t = Util.Shard_sync.stalls t.sync
let stalls_of t i = Util.Shard_sync.stalls_of t.sync i
let steals t = Util.Shard_sync.steals t.sync
let steals_of t i = Util.Shard_sync.steals_of t.sync i
let windows_of t i = Util.Shard_sync.windows_of t.sync i
let avg_window_of t i = Util.Shard_sync.avg_window_of t.sync i
let backpressure t = Util.Shard_sync.backpressure t.sync
let high_water t = Util.Shard_sync.high_water t.sync

(** Merged counters, summed across shards (each packet event is counted
    by exactly one shard, so the sums match a single-domain run). *)
let stats t =
  let m =
    { Network.delivered = 0; dropped_policy = 0; dropped_miss = 0;
      dropped_queue = 0; dropped_link = 0; dropped_ttl = 0; dropped_down = 0;
      dropped_chaos = 0; corrupted = 0; reordered = 0;
      forwarded = 0; control_msgs = 0; control_bytes = 0;
      fenced_writes = 0 }
  in
  Array.iter
    (fun sh ->
      let c = Network.stats sh.sh_net in
      m.delivered <- m.delivered + c.delivered;
      m.dropped_policy <- m.dropped_policy + c.dropped_policy;
      m.dropped_miss <- m.dropped_miss + c.dropped_miss;
      m.dropped_queue <- m.dropped_queue + c.dropped_queue;
      m.dropped_link <- m.dropped_link + c.dropped_link;
      m.dropped_ttl <- m.dropped_ttl + c.dropped_ttl;
      m.dropped_down <- m.dropped_down + c.dropped_down;
      m.dropped_chaos <- m.dropped_chaos + c.dropped_chaos;
      m.corrupted <- m.corrupted + c.corrupted;
      m.reordered <- m.reordered + c.reordered;
      m.forwarded <- m.forwarded + c.forwarded;
      m.control_msgs <- m.control_msgs + c.control_msgs;
      m.control_bytes <- m.control_bytes + c.control_bytes;
      m.fenced_writes <- m.fenced_writes + c.fenced_writes)
    t.shards;
  m

(** Merged chaos event traces of all shards, sorted by (time, text). *)
let chaos_events t =
  let key line =
    match String.index_opt line ' ' with
    | Some i ->
      (Option.value ~default:0.0
         (float_of_string_opt (String.sub line 0 i)),
       line)
    | None -> (0.0, line)
  in
  Array.to_list t.shards
  |> List.concat_map (fun sh ->
    match Network.fault sh.sh_net with Some f -> Fault.events f | None -> [])
  |> List.map key |> List.sort compare |> List.map snd

(* ------------------------------------------------------------------ *)
(* Observable signature *)

(* The canonical rendering of everything a simulation is supposed to
   compute: merged counters, per-host delivery, per-switch tables with
   match counters, and per-port stats.  Ports are enumerated from the
   topology (not from lazily-materialized stat records) so zero-valued
   entries render identically however the run was sharded. *)
let net_signature topo nets =
  let buf = Buffer.create 4096 in
  let merged =
    { Network.delivered = 0; dropped_policy = 0; dropped_miss = 0;
      dropped_queue = 0; dropped_link = 0; dropped_ttl = 0; dropped_down = 0;
      dropped_chaos = 0; corrupted = 0; reordered = 0;
      forwarded = 0; control_msgs = 0; control_bytes = 0;
      fenced_writes = 0 }
  in
  List.iter
    (fun net ->
      let c = Network.stats net in
      merged.delivered <- merged.delivered + c.delivered;
      merged.dropped_policy <- merged.dropped_policy + c.dropped_policy;
      merged.dropped_miss <- merged.dropped_miss + c.dropped_miss;
      merged.dropped_queue <- merged.dropped_queue + c.dropped_queue;
      merged.dropped_link <- merged.dropped_link + c.dropped_link;
      merged.dropped_ttl <- merged.dropped_ttl + c.dropped_ttl;
      merged.dropped_down <- merged.dropped_down + c.dropped_down;
      merged.dropped_chaos <- merged.dropped_chaos + c.dropped_chaos;
      merged.corrupted <- merged.corrupted + c.corrupted;
      merged.reordered <- merged.reordered + c.reordered;
      merged.forwarded <- merged.forwarded + c.forwarded;
      merged.control_msgs <- merged.control_msgs + c.control_msgs;
      merged.control_bytes <- merged.control_bytes + c.control_bytes;
      merged.fenced_writes <- merged.fenced_writes + c.fenced_writes)
    nets;
  Buffer.add_string buf (Format.asprintf "%a@." Network.pp_stats merged);
  let hosts =
    List.concat_map Network.host_list nets
    |> List.sort (fun (a : Network.host) b -> compare a.host_id b.host_id)
  in
  List.iter
    (fun (h : Network.host) ->
      Buffer.add_string buf
        (Printf.sprintf "h%d received=%d rx_bytes=%d\n" h.host_id h.received
           h.rx_bytes))
    hosts;
  let switches =
    List.concat_map
      (fun net -> List.map (fun sw -> (net, sw)) (Network.switch_list net))
      nets
    |> List.sort (fun (_, (a : Network.switch)) (_, b) ->
      compare a.sw_id b.sw_id)
  in
  List.iter
    (fun ((_ : Network.t), (sw : Network.switch)) ->
      Buffer.add_string buf
        (Printf.sprintf "s%d rules=%d\n" sw.sw_id (Flow.Table.size sw.table));
      List.iter
        (fun (r : Flow.Table.rule) ->
          Buffer.add_string buf
            (Printf.sprintf "  %d %s => %s packets=%d bytes=%d\n" r.priority
               (Flow.Pattern.to_string r.pattern)
               (Flow.Action.group_to_string r.actions)
               r.packets r.bytes))
        (Flow.Table.rules sw.table);
      List.iter
        (fun port ->
          match Hashtbl.find_opt sw.port_stats port with
          | Some ps ->
            Buffer.add_string buf
              (Printf.sprintf
                 "  p%d rx=%d/%d tx=%d/%d drops=%d\n" port ps.rx_packets
                 ps.rx_bytes ps.tx_packets ps.tx_bytes ps.drops)
          | None ->
            Buffer.add_string buf
              (Printf.sprintf "  p%d rx=0/0 tx=0/0 drops=0\n" port))
        (Topo.Topology.ports topo (Node.Switch sw.sw_id)))
    switches;
  Buffer.contents buf

(** The sharded run's observable signature — byte-equal to
    [net_signature topo [single_domain_net]] on the same seed/workload
    for any shard count. *)
let signature t =
  net_signature t.topo (Array.to_list (nets t))
