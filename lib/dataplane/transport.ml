(** A reliable transport on top of the lossy dataplane: sliding-window
    ARQ with cumulative ACKs and timeout retransmission — the protocol
    stack run as a host application, in the x-kernel tradition of
    composing protocols above a bare forwarding substrate.

    Sequence numbers and ACKs ride in the packet's [tag] field (data:
    [seq], ACK: [ack_bit lor highest_in_order]).  The receiver delivers
    in order and acknowledges cumulatively; the sender keeps up to
    [window] packets in flight and retransmits on timeout, with capped
    exponential backoff: each expiry multiplies the RTO by [backoff] up
    to [max_rto], and any base-advancing ACK resets it to the initial
    value.  (A fixed RTO hammers a lossy or congested path with
    back-to-back window retransmissions — exactly the collapse the
    backoff avoids.)  Loss comes from the network itself (drop-tail
    queues, failures, link chaos), so the transfer exercises exactly the
    queueing behavior the simulator models.  Used by experiment E14
    (goodput vs window vs queue depth). *)

let ack_bit = 0x400000

type stats = {
  mutable sent : int;            (** data transmissions incl. retransmits *)
  mutable retransmissions : int;
  mutable acks_received : int;
  mutable completed_at : float;  (** simulated completion time; nan if not *)
}

type t = {
  net : Network.t;
  src : int;
  dst : int;
  total : int;        (** packets to deliver *)
  window : int;
  rto : float;        (** initial retransmission timeout *)
  backoff : float;    (** RTO multiplier per timer expiry *)
  max_rto : float;    (** RTO ceiling *)
  mutable cur_rto : float;  (* current (possibly backed-off) RTO *)
  max_retx : int;     (** per-packet retransmission budget before abort *)
  pkt_size : int;
  tp_dst : int;
  start_time : float;
  stats : stats;
  retx_count : (int, int) Hashtbl.t;
  mutable aborted : bool;
  mutable timer_gen : int;  (* invalidates stale timers on base advance *)
  (* sender state *)
  mutable base : int;        (* lowest unacked seq *)
  mutable next_seq : int;    (* next never-sent seq *)
  mutable done_ : bool;
  (* receiver state *)
  mutable expected : int;    (* next in-order seq the receiver wants *)
  out_of_order : (int, unit) Hashtbl.t;
  mutable delivered : int;
}

let stats t = t.stats
let is_complete t = t.done_
let is_aborted t = t.aborted
let delivered t = t.delivered

let send_data t seq ~retransmit =
  t.stats.sent <- t.stats.sent + 1;
  if retransmit then
    t.stats.retransmissions <- t.stats.retransmissions + 1;
  Network.send_from t.net ~host:t.src
    (Network.make_pkt ~size:t.pkt_size ~tag:seq ~tp_dst:t.tp_dst ~src:t.src
       ~dst:t.dst ())

let send_ack t upto =
  Network.send_from t.net ~host:t.dst
    (Network.make_pkt ~size:64 ~tag:(ack_bit lor upto) ~tp_dst:t.tp_dst
       ~src:t.dst ~dst:t.src ())

(* fill the window *)
let rec pump t =
  if (not t.done_) && t.next_seq < t.total
     && t.next_seq - t.base < t.window
  then begin
    let seq = t.next_seq in
    t.next_seq <- t.next_seq + 1;
    send_data t seq ~retransmit:false;
    pump t
  end

(* One timer per connection (go-back-N).  On expiry the whole
   outstanding window is retransmitted *starting at base*, so the packet
   that gates progress is first into any bottleneck queue — per-packet
   timers are prone to deterministic starvation of the base packet when
   their firing order drifts. *)
and arm_timer t =
  t.timer_gen <- t.timer_gen + 1;
  let gen = t.timer_gen in
  Sim.schedule (Network.sim t.net) ~delay:t.cur_rto (fun () ->
    if (not t.done_) && (not t.aborted) && gen = t.timer_gen
       && t.base < t.next_seq
    then begin
      let n =
        1 + Option.value ~default:0 (Hashtbl.find_opt t.retx_count t.base)
      in
      if n > t.max_retx then t.aborted <- true
      else begin
        Hashtbl.replace t.retx_count t.base n;
        for seq = t.base to t.next_seq - 1 do
          send_data t seq ~retransmit:true
        done;
        (* back off: the path just ate a whole window, don't re-offer it
           at the same rate *)
        t.cur_rto <- Float.min (t.cur_rto *. t.backoff) t.max_rto;
        arm_timer t
      end
    end
    else if (not t.done_) && (not t.aborted) && gen = t.timer_gen then
      arm_timer t)

let on_sender_receive t (pkt : Network.pkt) =
  if pkt.tag land ack_bit <> 0 then begin
    let upto = pkt.tag land lnot ack_bit in
    t.stats.acks_received <- t.stats.acks_received + 1;
    if upto + 1 > t.base then begin
      t.base <- upto + 1;
      if t.base >= t.total then begin
        if not t.done_ then begin
          t.done_ <- true;
          t.stats.completed_at <- Network.now t.net
        end
      end
      else begin
        pump t;
        (* the path is moving again: fresh RTT credit for the new base,
           back at the initial RTO *)
        t.cur_rto <- t.rto;
        arm_timer t
      end
    end
  end

let on_receiver_receive t (pkt : Network.pkt) =
  if pkt.tag land ack_bit = 0 && pkt.hdr.tp_dst = t.tp_dst then begin
    let seq = pkt.tag in
    if seq = t.expected then begin
      t.expected <- t.expected + 1;
      t.delivered <- t.delivered + 1;
      (* drain any buffered successors *)
      while Hashtbl.mem t.out_of_order t.expected do
        Hashtbl.remove t.out_of_order t.expected;
        t.expected <- t.expected + 1;
        t.delivered <- t.delivered + 1
      done
    end
    else if seq > t.expected && not (Hashtbl.mem t.out_of_order seq) then
      Hashtbl.replace t.out_of_order seq ();
    (* cumulative ACK (also re-ACKs duplicates, unblocking the sender) *)
    send_ack t (t.expected - 1)
  end

(** [start net ~src ~dst ~total ()] — begins a reliable transfer of
    [total] packets; composes with existing host receive handlers.  Run
    the simulation, then inspect {!stats} / {!is_complete}.  [backoff]
    multiplies the RTO on every timer expiry (capped at [max_rto],
    default [8 *. rto]; pass [~backoff:1.0] for the legacy fixed RTO);
    a loss-free path never fires the timer, so the defaults change
    nothing there. *)
let start net ~src ~dst ~total ?(window = 8) ?(rto = 0.05)
    ?(backoff = 2.0) ?max_rto ?(max_retx = 50) ?(pkt_size = 1000)
    ?(tp_dst = 9000) () =
  if total <= 0 then invalid_arg "Transport.start: total";
  if window <= 0 then invalid_arg "Transport.start: window";
  if backoff < 1.0 then invalid_arg "Transport.start: backoff";
  let max_rto = Option.value max_rto ~default:(8.0 *. rto) in
  let t =
    { net; src; dst; total; window; rto; backoff; max_rto; cur_rto = rto;
      max_retx; pkt_size; tp_dst;
      start_time = Network.now net;
      stats = { sent = 0; retransmissions = 0; acks_received = 0;
                completed_at = nan };
      retx_count = Hashtbl.create 32; aborted = false; timer_gen = 0;
      base = 0; next_seq = 0; done_ = false; expected = 0;
      out_of_order = Hashtbl.create 32; delivered = 0 }
  in
  let chain host f =
    let h = Network.host net host in
    let previous = h.on_receive in
    h.on_receive <-
      Some
        (fun pkt ->
          (match previous with Some g -> g pkt | None -> ());
          f pkt)
  in
  chain src (on_sender_receive t);
  chain dst (on_receiver_receive t);
  pump t;
  arm_timer t;
  t

(** Application-level goodput in bits/s (delivered payload over the
    completed transfer), or [nan] when incomplete. *)
let goodput t =
  if not t.done_ then nan
  else
    float_of_int (t.total * t.pkt_size * 8)
    /. (t.stats.completed_at -. t.start_time)
