(** Descriptive statistics used by the measurement apps and the benchmark
    harness: online mean/variance, percentiles, fixed-bucket histograms,
    EWMA smoothing and Jain's fairness index. *)

(** Online mean and variance via Welford's algorithm. *)
module Online = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable minv : float;
    mutable maxv : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; minv = infinity; maxv = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.minv then t.minv <- x;
    if x > t.maxv then t.maxv <- x

  let count t = t.n
  let mean t = if t.n = 0 then nan else t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min_value t = if t.n = 0 then nan else t.minv
  let max_value t = if t.n = 0 then nan else t.maxv
end

(** [percentile xs p] returns the [p]-th percentile (0..100) of [xs] using
    linear interpolation between closest ranks.  Sorting uses
    {!Float.compare}, so [-0.] and [0.] order deterministically; a nan
    sample has no defined rank and is rejected rather than silently
    landing wherever the sort left it.
    @raise Invalid_argument on an empty list, out-of-range [p], or a nan
    sample. *)
let percentile xs p =
  if xs = [] then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  if List.exists Float.is_nan xs then invalid_arg "Stats.percentile: nan";
  let arr = Array.of_list xs in
  Array.sort Float.compare arr;
  let n = Array.length arr in
  if n = 1 then arr.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))
  end

let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(** Jain's fairness index of an allocation vector: 1.0 is perfectly fair,
    1/n is maximally unfair.  Returns 1.0 for an all-zero vector. *)
let jain_fairness xs =
  match xs with
  | [] -> invalid_arg "Stats.jain_fairness: empty"
  | _ ->
    let s = List.fold_left ( +. ) 0.0 xs in
    let s2 = List.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
    if s2 = 0.0 then 1.0 else s *. s /. (float_of_int (List.length xs) *. s2)

(** Fixed-bucket histogram over [\[lo, hi)] with [buckets] equal cells;
    out-of-range samples are clamped into the first/last cell. *)
module Histogram = struct
  type t = { lo : float; hi : float; counts : int array; mutable total : int }

  let create ~lo ~hi ~buckets =
    if buckets <= 0 then invalid_arg "Histogram.create: buckets";
    if hi <= lo then invalid_arg "Histogram.create: bounds";
    { lo; hi; counts = Array.make buckets 0; total = 0 }

  let add t x =
    let n = Array.length t.counts in
    let idx =
      int_of_float (float_of_int n *. ((x -. t.lo) /. (t.hi -. t.lo)))
    in
    let idx = max 0 (min (n - 1) idx) in
    t.counts.(idx) <- t.counts.(idx) + 1;
    t.total <- t.total + 1

  let count t = t.total
  let bucket_count t i = t.counts.(i)

  (** Approximate quantile from bucket midpoints. *)
  let quantile t q =
    if t.total = 0 then nan
    else begin
      let target = q *. float_of_int t.total in
      let n = Array.length t.counts in
      let width = (t.hi -. t.lo) /. float_of_int n in
      let rec go i acc =
        if i >= n then t.hi
        else begin
          let acc' = acc + t.counts.(i) in
          if float_of_int acc' >= target then
            t.lo +. (width *. (float_of_int i +. 0.5))
          else go (i + 1) acc'
        end
      in
      go 0 0
    end
end

(** Exponentially-weighted moving average with smoothing factor [alpha]. *)
module Ewma = struct
  type t = { alpha : float; mutable value : float option }

  let create ~alpha =
    if alpha <= 0.0 || alpha > 1.0 then invalid_arg "Ewma.create: alpha";
    { alpha; value = None }

  let add t x =
    match t.value with
    | None -> t.value <- Some x
    | Some v -> t.value <- Some ((t.alpha *. x) +. ((1.0 -. t.alpha) *. v))

  let value t = t.value
end

(** A time series of (time, value) samples with simple aggregation,
    used by the monitoring app. *)
module Series = struct
  type t = { mutable samples : (float * float) list (* newest first *) }

  let create () = { samples = [] }
  let add t ~time ~value = t.samples <- (time, value) :: t.samples
  let length t = List.length t.samples
  let to_list t = List.rev t.samples

  (** Average rate of change between first and last sample, or 0 when
      fewer than two samples exist. *)
  let rate t =
    match (t.samples, List.rev t.samples) with
    | (tn, vn) :: _, (t0, v0) :: _ when tn > t0 -> (vn -. v0) /. (tn -. t0)
    | _ -> 0.0
end
