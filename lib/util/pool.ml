(** A reusable fixed-size pool of OCaml 5 domains.

    {!map} fans a list out over the pool's domains and returns the
    results in input order — the submitting domain participates in the
    work, so a pool of size [n] uses exactly [n] domains ([n - 1]
    spawned workers plus the caller).  A pool of size 1 runs everything
    inline with no spawning, no locking and no queueing: sequential
    callers pay nothing for the parallel capability.

    The default size is the [ZEN_DOMAINS] environment variable when set
    to a positive integer, otherwise [Domain.recommended_domain_count].
    {!get_default} returns a lazily-created process-wide pool of that
    size, so independent subsystems share one set of worker domains
    instead of oversubscribing the machine.

    Scheduling is a single mutex-protected FIFO of jobs; workers park on
    a condition variable when it is empty.  That is deliberately simple:
    the intended grain is per-switch compilation and similar
    millisecond-scale jobs, where queue overhead is noise.  Exceptions
    raised by [f] are caught on the worker, and the first one is
    re-raised (with its backtrace) on the caller after the whole batch
    has settled. *)

type t = {
  size : int;  (** total domains used by {!map}, including the caller *)
  mutex : Mutex.t;
  nonempty : Condition.t;     (* signaled when a job is enqueued *)
  settled : Condition.t;      (* broadcast when any batch completes *)
  jobs : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let size t = t.size

(** Pool size used when none is requested: [ZEN_DOMAINS] if set to a
    positive integer, else [Domain.recommended_domain_count]. *)
let default_size () =
  match Sys.getenv_opt "ZEN_DOMAINS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let rec worker t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.jobs && not t.stop do
    Condition.wait t.nonempty t.mutex
  done;
  match Queue.take_opt t.jobs with
  | Some job ->
    Mutex.unlock t.mutex;
    (* jobs are wrappers built by [map]; they never raise *)
    job ();
    worker t
  | None ->
    (* queue empty and stop set: drain complete, retire *)
    Mutex.unlock t.mutex

(** [create ?domains ()] builds a pool of [domains] total domains
    (default {!default_size}), spawning [domains - 1] workers.
    @raise Invalid_argument when [domains < 1]. *)
let create ?domains () =
  let size = match domains with Some d -> d | None -> default_size () in
  if size < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    { size; mutex = Mutex.create (); nonempty = Condition.create ();
      settled = Condition.create (); jobs = Queue.create (); stop = false;
      workers = [] }
  in
  t.workers <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

(** [shutdown t] retires the worker domains after the queued jobs drain.
    Idempotent; {!map} on a shut-down pool runs inline. *)
let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

(** [map t xs ~f] is [List.map f xs] with the applications distributed
    over the pool's domains.  Results keep input order.  The first
    exception raised by [f] (if any) is re-raised on the caller once
    every application has finished. *)
let map t xs ~f =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when t.size = 1 || t.workers = [] -> List.map f xs
  | _ ->
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let out = Array.make n None in
    let remaining = Atomic.make n in
    let error = Atomic.make None in
    let job i () =
      (match f arr.(i) with
       | r -> out.(i) <- Some r
       | exception e ->
         let bt = Printexc.get_raw_backtrace () in
         ignore (Atomic.compare_and_set error None (Some (e, bt))));
      (* the last job to settle wakes every batch waiting on the pool;
         [settled] waiters recheck their own counters *)
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock t.mutex;
        Condition.broadcast t.settled;
        Mutex.unlock t.mutex
      end
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do Queue.push (job i) t.jobs done;
    Condition.broadcast t.nonempty;
    (* the caller helps until the queue drains, then waits for the jobs
       still running on workers *)
    let rec drive () =
      if Atomic.get remaining > 0 then
        match Queue.take_opt t.jobs with
        | Some job ->
          Mutex.unlock t.mutex;
          job ();
          Mutex.lock t.mutex;
          drive ()
        | None ->
          if Atomic.get remaining > 0 then begin
            Condition.wait t.settled t.mutex;
            drive ()
          end
    in
    drive ();
    Mutex.unlock t.mutex;
    (match Atomic.get error with
     | Some (e, bt) -> Printexc.raise_with_backtrace e bt
     | None -> ());
    Array.to_list (Array.map Option.get out)

(* The process-wide shared pool.  Lazy so programs that never go
   parallel spawn nothing. *)
let default = lazy (create ())

(** The shared process-wide pool (created on first use, sized by
    {!default_size}).  Never shut this pool down. *)
let get_default () = Lazy.force default
