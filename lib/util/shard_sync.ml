(** Conservative synchronization for a sharded discrete-event simulator.

    A simulation partitioned over [n] shards (each with its own clock and
    event queue) stays correct as long as no shard executes an event
    before every event that could still be sent to it with an earlier
    timestamp has arrived.  With a positive {e lookahead} [L] — here, the
    minimum delay of any link crossing a shard boundary — an event
    executing at time [t] can only generate cross-shard work at
    [t + L] or later, so the classic conservative window holds:

    {v
      every shard may safely run all events with time <  min_pending + L
      where min_pending = min over shards of (local queue, inbound mail)
    v}

    This module owns the machinery around that invariant:

    - one {e mailbox} per shard: a mutex-protected buffer of timestamped
      envelopes posted by other shards while a window executes.  Posting
      is the {e horizon exchange}: because every envelope produced in a
      window lands at or beyond the next window boundary, draining the
      mailbox at a barrier is equivalent to a null-message protocol with
      one message per shard pair per window — without the deadlock risk
      of per-link channel blocking (no shard ever waits on a channel; the
      barrier is the only wait).
    - {!drive}: the windowed barrier loop.  Each round computes the
      global minimum pending timestamp, fans [run_window] out over a
      {!Pool}, and barriers (the [Pool.map] return).  Rounds where a
      shard has nothing below the window bound are counted as
      {e horizon stalls} — the per-shard idleness a too-small lookahead
      or an unbalanced partition produces.
    - determinism: envelopes carry [(time, source shard, per-source
      sequence)] and are filed in that order at every drain, so the
      result of a sharded run is a function of the inputs only, not of
      domain scheduling or pool size.

    Capacity is a soft bound: mailboxes grow past it (a hard bound would
    deadlock the barrier), but posts beyond capacity are counted in
    [backpressure] and the high-water mark is kept, so an undersized
    window shows up in the stats instead of in a hang. *)

type 'a envelope = {
  env_time : float;
  env_src : int;   (* posting shard *)
  env_seq : int;   (* per-source post counter: deterministic tie order *)
  env_load : 'a;
}

type 'a mailbox = {
  mb_mutex : Mutex.t;
  mutable mb_buf : 'a envelope list;  (* newest first *)
  mutable mb_count : int;
  mutable mb_min : float;             (* infinity when empty *)
  mutable mb_high_water : int;
}

type 'a t = {
  nshards : int;
  capacity : int;
  boxes : 'a mailbox array;
  seqs : int array;       (* next per-source sequence; owner-written only *)
  handoffs : int array;   (* envelopes posted by shard i *)
  stalls : int array;     (* windows where shard i had nothing to run *)
  mutable rounds : int;
  mutable backpressure : int;
}

let default_capacity = 65536

let create ?(capacity = default_capacity) ~shards () =
  if shards < 1 then invalid_arg "Shard_sync.create: shards must be >= 1";
  { nshards = shards; capacity;
    boxes =
      Array.init shards (fun _ ->
        { mb_mutex = Mutex.create (); mb_buf = []; mb_count = 0;
          mb_min = infinity; mb_high_water = 0 });
    seqs = Array.make shards 0;
    handoffs = Array.make shards 0;
    stalls = Array.make shards 0;
    rounds = 0; backpressure = 0 }

let shards t = t.nshards

(** [post t ~src ~dst ~time load] hands [load] to shard [dst] as an
    event at absolute [time].  Must be called from the domain currently
    running shard [src]'s window; the conservative invariant requires
    [time >= now_of_src + lookahead]. *)
let post t ~src ~dst ~time load =
  let seq = t.seqs.(src) in
  t.seqs.(src) <- seq + 1;
  t.handoffs.(src) <- t.handoffs.(src) + 1;
  let e = { env_time = time; env_src = src; env_seq = seq; env_load = load } in
  let box = t.boxes.(dst) in
  Mutex.lock box.mb_mutex;
  box.mb_buf <- e :: box.mb_buf;
  box.mb_count <- box.mb_count + 1;
  if time < box.mb_min then box.mb_min <- time;
  if box.mb_count > box.mb_high_water then box.mb_high_water <- box.mb_count;
  if box.mb_count > t.capacity then t.backpressure <- t.backpressure + 1;
  Mutex.unlock box.mb_mutex

let envelope_cmp a b =
  match Float.compare a.env_time b.env_time with
  | 0 ->
    (match compare a.env_src b.env_src with
     | 0 -> compare a.env_seq b.env_seq
     | c -> c)
  | c -> c

(** [drain t shard] empties [shard]'s mailbox, returning the envelopes
    sorted by (time, source shard, source sequence) — file them into the
    local queue in list order and tie-breaking stays deterministic. *)
let drain t shard =
  let box = t.boxes.(shard) in
  Mutex.lock box.mb_mutex;
  let buf = box.mb_buf in
  box.mb_buf <- [];
  box.mb_count <- 0;
  box.mb_min <- infinity;
  Mutex.unlock box.mb_mutex;
  List.sort envelope_cmp buf

let mailbox_min t shard =
  let box = t.boxes.(shard) in
  Mutex.lock box.mb_mutex;
  let m = box.mb_min in
  Mutex.unlock box.mb_mutex;
  m

(* ------------------------------------------------------------------ *)
(* Stats *)

let rounds t = t.rounds
let handoffs t = Array.fold_left ( + ) 0 t.handoffs
let handoffs_of t shard = t.handoffs.(shard)
let stalls_of t shard = t.stalls.(shard)
let backpressure t = t.backpressure
let high_water t =
  Array.fold_left (fun acc b -> max acc b.mb_high_water) 0 t.boxes

(* ------------------------------------------------------------------ *)
(* The windowed barrier loop *)

(** [drive t ~pool ~lookahead ?until ~next_time ~run_window ()] runs the
    conservative window loop to completion (or to [until], inclusive —
    matching the single-domain [Sim.run ?until] contract).

    [next_time i] must return shard [i]'s earliest queued local event
    time ([infinity] when idle); [run_window i ~stop ~strict] must drain
    [i]'s mailbox and execute its events up to [stop] ([strict] = stop
    is exclusive, the interior-window case; inclusive only for the final
    [until] window).  Both callbacks run between barriers, so they may
    touch shard state without locks; [run_window] is fanned over [pool]
    and must only touch shard [i]. *)
let drive t ~pool ~lookahead ?until ~next_time ~run_window () =
  if lookahead <= 0.0 then
    invalid_arg "Shard_sync.drive: lookahead must be positive";
  let idx = List.init t.nshards Fun.id in
  let pending i = Float.min (next_time i) (mailbox_min t i) in
  let rec round () =
    let m = List.fold_left (fun acc i -> Float.min acc (pending i)) infinity idx in
    let live = match until with Some u -> m <= u | None -> m < infinity in
    if live then begin
      (* the safe window is [m, m + lookahead); cap the last one at
         [until] and make it inclusive, as the single-domain run is *)
      let stop, strict =
        let s = m +. lookahead in
        match until with
        | Some u when s >= u -> (u, false)
        | _ -> (s, true)
      in
      List.iter
        (fun i ->
          let p = pending i in
          if (if strict then p >= stop else p > stop) then
            t.stalls.(i) <- t.stalls.(i) + 1)
        idx;
      ignore (Pool.map pool idx ~f:(fun i -> run_window i ~stop ~strict));
      t.rounds <- t.rounds + 1;
      round ()
    end
  in
  round ();
  (* final pass so shards whose remaining events all lie beyond [until]
     still advance their clocks to it, exactly as Sim.run does *)
  match until with
  | Some u ->
    ignore (Pool.map pool idx ~f:(fun i -> run_window i ~stop:u ~strict:false))
  | None -> ()
