(** Conservative synchronization for a sharded discrete-event simulator.

    A simulation partitioned over [n] shards (each with its own clock and
    event queue) stays correct as long as no shard executes an event
    before every event that could still be sent to it with an earlier
    timestamp has arrived.  With a positive {e lookahead} [L] — here, the
    minimum delay of any link crossing a shard boundary — an event
    executing at time [t] can only generate cross-shard work at
    [t + L] or later, so the classic conservative window holds:

    {v
      every shard may safely run all events with time <  min_pending + L
      where min_pending = min over shards of (local queue, inbound mail)
    v}

    This module owns the machinery around that invariant:

    - one {e mailbox} per shard: a mutex-protected buffer of timestamped
      envelopes posted by other shards while a window executes.  Posting
      is the {e horizon exchange}: because every envelope produced in a
      window lands at or beyond the next window boundary, draining the
      mailbox at a barrier is equivalent to a null-message protocol with
      one message per shard pair per window — without the deadlock risk
      of per-link channel blocking (no shard ever waits on a channel; the
      barrier is the only wait).
    - {!drive}: the windowed barrier loop.  Each round computes the
      global minimum pending timestamp, fans [run_window] out over a
      {!Pool}, and barriers (the [Pool.map] return).  Rounds where a
      shard has nothing below the window bound are counted as
      {e horizon stalls} — the per-shard idleness a too-small lookahead
      or an unbalanced partition produces — and such shards are
      {e skipped} outright (their window would only advance a clock, an
      unobservable effect), so a sparse fabric fast-forwards from event
      cluster to event cluster instead of barrier-stepping empty
      [L]-wide windows.
    - {b adaptive windows} ({!Adaptive}, the default): shard [i]'s
      window may end beyond the global [m + L] bound, at its
      {e distance-based} envelope bound

      {v  B_i = min over shards j of (pending_j + dist(j, i))  v}

      where [dist(j, i)] is the shortest-path weight from [j] to [i] in
      the {e shard quotient graph} (one node per shard, edge weight =
      minimum delay over the boundary links joining the pair), and the
      diagonal [dist(i, i)] is the minimum {e return cycle} — the
      cheapest way shard [i]'s own traffic can bounce off another shard
      and come back.  This is risk-free: any envelope that will ever
      reach [i] is caused by some event that is pending {e now} on some
      shard [j], and its causal chain must cross boundary links summing
      to at least [dist(j, i)] ([j = i] covers the echo of [i]'s own
      posts); barriers only delay it further.  So nothing can arrive
      inside [\[m, B_i)], and [B_i >= m + L] always (the fixed window is
      the uniform-distance special case).  A growth cap [m + g*L] keeps
      one shard from racing unboundedly ahead of its consumers: [g]
      doubles each round the mailboxes stay inside capacity and halves
      when backpressure grew, so sustained cross-shard pressure shrinks
      the window back toward the fixed [L] bound.  {!Fixed}
      ([ZEN_SHARD_WINDOW=fixed]) restores the uniform [m + L] window.
    - {b work stealing} ({!steal_enabled_of_env}, on by default): the
      per-round windows are dealt to the pool's workers by shard index
      (shard [i]'s {e home} is worker [i mod size]), each worker's deal
      sorted heaviest-first by a load hint; a worker whose own deal
      drains steals the {e lightest} window from a loaded neighbor's
      tail.  Stealing moves whole windows — each shard's window is still
      executed by exactly one domain between two barriers — so it
      changes which core runs a window, never the events' order, and
      results stay byte-equal with stealing on or off.
    - determinism: envelopes carry [(time, source shard, per-source
      sequence)] and are filed in that order at every drain, so the
      result of a sharded run is a function of the inputs only, not of
      domain scheduling or pool size.  (The [steals] counters are the
      one scheduling-dependent output: they describe where windows ran,
      not what they computed.)

    Capacity is a soft bound: mailboxes grow past it (a hard bound would
    deadlock the barrier), but posts beyond capacity are counted in
    [backpressure] and the high-water mark is kept, so an undersized
    window shows up in the stats instead of in a hang. *)

type 'a envelope = {
  env_time : float;
  env_src : int;   (* posting shard *)
  env_seq : int;   (* per-source post counter: deterministic tie order *)
  env_load : 'a;
}

type 'a mailbox = {
  mb_mutex : Mutex.t;
  mutable mb_buf : 'a envelope list;  (* newest first *)
  mutable mb_count : int;
  mutable mb_min : float;             (* infinity when empty *)
  mutable mb_high_water : int;
}

type 'a t = {
  nshards : int;
  capacity : int;
  boxes : 'a mailbox array;
  seqs : int array;       (* next per-source sequence; owner-written only *)
  handoffs : int array;   (* envelopes posted by shard i *)
  stalls : int array;     (* windows where shard i had nothing to run *)
  steals : int array;     (* windows of shard i run by a non-home worker *)
  windows : int array;    (* windows shard i actually executed *)
  win_sum : float array;  (* total width of those windows *)
  mutable rounds : int;
  mutable backpressure : int;
}

let default_capacity = 65536

let create ?(capacity = default_capacity) ~shards () =
  if shards < 1 then invalid_arg "Shard_sync.create: shards must be >= 1";
  { nshards = shards; capacity;
    boxes =
      Array.init shards (fun _ ->
        { mb_mutex = Mutex.create (); mb_buf = []; mb_count = 0;
          mb_min = infinity; mb_high_water = 0 });
    seqs = Array.make shards 0;
    handoffs = Array.make shards 0;
    stalls = Array.make shards 0;
    steals = Array.make shards 0;
    windows = Array.make shards 0;
    win_sum = Array.make shards 0.0;
    rounds = 0; backpressure = 0 }

let shards t = t.nshards

(** [post t ~src ~dst ~time load] hands [load] to shard [dst] as an
    event at absolute [time].  Must be called from the domain currently
    running shard [src]'s window; the conservative invariant requires
    [time >= now_of_src + lookahead]. *)
let post t ~src ~dst ~time load =
  let seq = t.seqs.(src) in
  t.seqs.(src) <- seq + 1;
  t.handoffs.(src) <- t.handoffs.(src) + 1;
  let e = { env_time = time; env_src = src; env_seq = seq; env_load = load } in
  let box = t.boxes.(dst) in
  Mutex.lock box.mb_mutex;
  box.mb_buf <- e :: box.mb_buf;
  box.mb_count <- box.mb_count + 1;
  if time < box.mb_min then box.mb_min <- time;
  if box.mb_count > box.mb_high_water then box.mb_high_water <- box.mb_count;
  if box.mb_count > t.capacity then t.backpressure <- t.backpressure + 1;
  Mutex.unlock box.mb_mutex

let envelope_cmp a b =
  match Float.compare a.env_time b.env_time with
  | 0 ->
    (match compare a.env_src b.env_src with
     | 0 -> compare a.env_seq b.env_seq
     | c -> c)
  | c -> c

(** [drain t shard] empties [shard]'s mailbox, returning the envelopes
    sorted by (time, source shard, source sequence) — file them into the
    local queue in list order and tie-breaking stays deterministic. *)
let drain t shard =
  let box = t.boxes.(shard) in
  Mutex.lock box.mb_mutex;
  let buf = box.mb_buf in
  box.mb_buf <- [];
  box.mb_count <- 0;
  box.mb_min <- infinity;
  Mutex.unlock box.mb_mutex;
  List.sort envelope_cmp buf

let mailbox_min t shard =
  let box = t.boxes.(shard) in
  Mutex.lock box.mb_mutex;
  let m = box.mb_min in
  Mutex.unlock box.mb_mutex;
  m

(* ------------------------------------------------------------------ *)
(* Window policy knobs *)

(** How each round's safe windows are sized (see the module header). *)
type window_mode = Fixed | Adaptive

let window_mode_to_string = function
  | Fixed -> "fixed"
  | Adaptive -> "adaptive"

(** [ZEN_SHARD_WINDOW]: ["fixed"] restores the uniform [m + L] window;
    anything else (and unset) selects {!Adaptive}. *)
let window_mode_of_env () =
  match Sys.getenv_opt "ZEN_SHARD_WINDOW" with
  | Some s when String.lowercase_ascii (String.trim s) = "fixed" -> Fixed
  | Some _ | None -> Adaptive

(** [ZEN_SHARD_STEAL]: ["0"/"off"/"false"/"no"] disables window
    stealing; anything else (and unset) enables it. *)
let steal_enabled_of_env () =
  match Sys.getenv_opt "ZEN_SHARD_STEAL" with
  | Some s ->
    (match String.lowercase_ascii (String.trim s) with
     | "0" | "off" | "false" | "no" -> false
     | _ -> true)
  | None -> true

(* ------------------------------------------------------------------ *)
(* Stats *)

let rounds t = t.rounds
let handoffs t = Array.fold_left ( + ) 0 t.handoffs
let handoffs_of t shard = t.handoffs.(shard)
let stalls t = Array.fold_left ( + ) 0 t.stalls
let stalls_of t shard = t.stalls.(shard)
let steals t = Array.fold_left ( + ) 0 t.steals
let steals_of t shard = t.steals.(shard)
let windows_of t shard = t.windows.(shard)

(** Mean executed-window width of [shard], in simulated seconds
    (0 when it never ran a window).  Under {!Adaptive} this grows past
    the lookahead whenever the other shards' pending bounds allow it. *)
let avg_window_of t shard =
  if t.windows.(shard) = 0 then 0.0
  else t.win_sum.(shard) /. float_of_int t.windows.(shard)

let backpressure t = t.backpressure
let high_water t =
  Array.fold_left (fun acc b -> max acc b.mb_high_water) 0 t.boxes

(* ------------------------------------------------------------------ *)
(* Per-round window execution, with optional stealing *)

(* Run this round's windows — [(shard, stop, strict)] tasks — over the
   pool.  Without stealing each task is one pool job (FIFO order).  With
   stealing, tasks are dealt to their home workers ([shard mod size]),
   each deal sorted heaviest-first by [load_hint]; a worker drains its
   own deal from the front, then steals the lightest task (the tail)
   from the first loaded neighbor.  Every task is popped exactly once
   under the queue mutex, so a shard's window still runs on exactly one
   domain and [steals] has one writer per cell per round. *)
let exec_round t ~pool ~steal ~load_hint ~run_window tasks =
  let run (i, stop, strict) = run_window i ~stop ~strict in
  match tasks with
  | [] -> ()
  | [ task ] -> run task
  | _ ->
    let w = Pool.size pool in
    if (not steal) || w <= 1 then
      ignore (Pool.map pool tasks ~f:run)
    else begin
      let deals = Array.make w [] in
      List.iter
        (fun ((i, _, _) as task) ->
          let home = i mod w in
          deals.(home) <- task :: deals.(home))
        tasks;
      Array.iteri
        (fun h deal ->
          deals.(h) <-
            List.stable_sort
              (fun (i, _, _) (j, _, _) ->
                match compare (load_hint j) (load_hint i) with
                | 0 -> compare i j
                | c -> c)
              deal)
        deals;
      let qm = Mutex.create () in
      (* pop the last element: thieves take the victim's lightest task *)
      let rec split_last acc = function
        | [] -> assert false
        | [ x ] -> (List.rev acc, x)
        | x :: rest -> split_last (x :: acc) rest
      in
      let take worker =
        Mutex.lock qm;
        let r =
          match deals.(worker) with
          | task :: rest ->
            deals.(worker) <- rest;
            Some (task, false)
          | [] ->
            let rec rob k =
              if k = w then None
              else
                let victim = (worker + k) mod w in
                match deals.(victim) with
                | [] -> rob (k + 1)
                | deal ->
                  let kept, task = split_last [] deal in
                  deals.(victim) <- kept;
                  Some (task, true)
            in
            rob 1
        in
        Mutex.unlock qm;
        r
      in
      let rec worker_loop worker =
        match take worker with
        | None -> ()
        | Some (((i, _, _) as task), stolen) ->
          if stolen then t.steals.(i) <- t.steals.(i) + 1;
          run task;
          worker_loop worker
      in
      ignore (Pool.map pool (List.init w Fun.id) ~f:worker_loop)
    end

(* ------------------------------------------------------------------ *)
(* The windowed barrier loop *)

(** [drive t ~pool ~lookahead ?until ~next_time ~run_window ()] runs the
    conservative window loop to completion (or to [until], inclusive —
    matching the single-domain [Sim.run ?until] contract).

    [next_time i] must return shard [i]'s earliest queued local event
    time ([infinity] when idle); [run_window i ~stop ~strict] must drain
    [i]'s mailbox and execute its events up to [stop] ([strict] = stop
    is exclusive, the interior-window case; inclusive only for the final
    [until] window).  Both callbacks run between barriers, so they may
    touch shard state without locks; [run_window] is fanned over [pool]
    and must only touch shard [i].

    [window] (default [ZEN_SHARD_WINDOW], else {!Adaptive}) sizes the
    per-shard windows; [steal] (default [ZEN_SHARD_STEAL], else on)
    lets idle pool workers steal queued windows, guided by [load_hint i]
    (any monotone proxy for shard [i]'s queued work; default constant).
    Neither knob changes observable simulation results.

    [dist] is the shard-quotient distance matrix for {!Adaptive} bounds:
    [dist.(j).(i)] lower-bounds the boundary-delay any causal chain
    accumulates getting from shard [j] to shard [i], with the diagonal
    [dist.(i).(i)] the minimum return cycle (how soon [i]'s own posts
    can echo back).  Every entry must be [>= lookahead] (the diagonal
    [>= 2 * lookahead]); [infinity] marks unreachable pairs.  Defaults
    to the uniform matrix ([lookahead] off-diagonal, twice that on the
    diagonal — no echo possible when there is a single shard). *)
let drive t ~pool ~lookahead ?until ?window ?steal ?dist
    ?(load_hint = fun (_ : int) -> 0) ~next_time ~run_window () =
  if lookahead <= 0.0 then
    invalid_arg "Shard_sync.drive: lookahead must be positive";
  let mode = match window with Some m -> m | None -> window_mode_of_env () in
  let steal =
    match steal with Some b -> b | None -> steal_enabled_of_env ()
  in
  let idx = List.init t.nshards Fun.id in
  let dist =
    match dist with
    | Some d -> d
    | None ->
      Array.init t.nshards (fun j ->
        Array.init t.nshards (fun i ->
          if i <> j then lookahead
          else if t.nshards > 1 then 2.0 *. lookahead
          else infinity))
  in
  let pending i = Float.min (next_time i) (mailbox_min t i) in
  let pend = Array.make t.nshards infinity in
  (* adaptive growth cap, in lookaheads: how far past [m + L] a shard may
     run before its consumers have caught up.  Doubles every round the
     mailboxes stayed inside capacity, halves when backpressure grew. *)
  let growth = ref 1.0 in
  let last_bp = ref t.backpressure in
  let rec round () =
    for i = 0 to t.nshards - 1 do pend.(i) <- pending i done;
    let m = Array.fold_left Float.min infinity pend in
    let live = match until with Some u -> m <= u | None -> m < infinity in
    if live then begin
      let cap = m +. (!growth *. lookahead) in
      let stop_of i =
        match mode with
        | Fixed -> m +. lookahead
        | Adaptive ->
          (* distance-based envelope bound: nothing can reach shard [i]
             before B_i = min_j (pending_j + dist(j, i)) — see the
             module header for the causal-chain argument *)
          let b = ref infinity in
          for j = 0 to t.nshards - 1 do
            let v = pend.(j) +. dist.(j).(i) in
            if v < !b then b := v
          done;
          Float.min !b cap
      in
      let tasks = ref [] in
      for i = t.nshards - 1 downto 0 do
        (* cap the last window at [until] and make it inclusive, as the
           single-domain run is *)
        let stop, strict =
          let s = stop_of i in
          match until with
          | Some u when s >= u -> (u, false)
          | _ -> (s, true)
        in
        let p = pend.(i) in
        if (if strict then p >= stop else p > stop) then
          (* nothing below the bound: a horizon stall.  The window is
             skipped — running it would only advance the local clock,
             which no observable depends on — so idle shards cost the
             round nothing. *)
          t.stalls.(i) <- t.stalls.(i) + 1
        else begin
          t.windows.(i) <- t.windows.(i) + 1;
          t.win_sum.(i) <- t.win_sum.(i) +. (stop -. m);
          tasks := (i, stop, strict) :: !tasks
        end
      done;
      exec_round t ~pool ~steal ~load_hint ~run_window !tasks;
      t.rounds <- t.rounds + 1;
      if mode = Adaptive then begin
        if t.backpressure > !last_bp then
          growth := Float.max 1.0 (!growth /. 2.0)
        else growth := Float.min 1024.0 (!growth *. 2.0);
        last_bp := t.backpressure
      end;
      round ()
    end
  in
  round ();
  (* final pass so shards whose remaining events all lie beyond [until]
     still advance their clocks to it, exactly as Sim.run does *)
  match until with
  | Some u ->
    ignore (Pool.map pool idx ~f:(fun i -> run_window i ~stop:u ~strict:false))
  | None -> ()
