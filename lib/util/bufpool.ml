(** Grow-on-demand byte-buffer pool for encode scratch space.

    Wire codecs need a working buffer whose final size is only known
    once the message is written; allocating one per encode puts the
    allocator on the hot path.  A pool keeps a small free list of
    previously-used buffers and hands back the first one large enough,
    so steady-state encoding reuses the same storage.

    Buffers come back {e dirty} — contents are whatever the previous
    user left — so writers must overwrite every byte they later read
    (the pooled codecs in {!Packet.Codec} and {!Openflow.Wire} write
    all fields explicitly, including checksum/reserved zeros).

    Pools are not thread-safe; share across domains via one pool per
    domain ([Domain.DLS]), as {!Openflow.Wire} does.  The free list
    keeps at most [retain] buffers ([ZEN_BUFPOOL_RETAIN] or the
    [create] argument, default 8); extra releases are dropped for the
    GC, bounding idle memory. *)

type t = {
  retain : int;             (* free-list capacity *)
  mutable free : bytes list;
  mutable free_count : int;
}

(** Free-list capacity used when none is requested: [ZEN_BUFPOOL_RETAIN]
    if set to a non-negative integer, else 8. *)
let default_retain () =
  match Sys.getenv_opt "ZEN_BUFPOOL_RETAIN" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 0 -> n
     | Some _ | None -> 8)
  | None -> 8

let create ?retain () =
  let retain = match retain with Some r -> r | None -> default_retain () in
  { retain; free = []; free_count = 0 }

let retained t = t.free_count

(* sizes are rounded up so a slightly-growing workload converges on one
   buffer instead of a ladder of near-duplicates *)
let round_up n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 64

(** [acquire t n] returns a buffer of length at least [n] with arbitrary
    contents: the first free buffer that fits, else a fresh allocation. *)
let acquire t n =
  let rec take acc = function
    | [] -> None
    | b :: rest when Bytes.length b >= n ->
      t.free <- List.rev_append acc rest;
      t.free_count <- t.free_count - 1;
      Some b
    | b :: rest -> take (b :: acc) rest
  in
  match take [] t.free with
  | Some b -> b
  | None -> Bytes.create (round_up n)

(** Returns [buf] to the free list (dropped if the list is full). *)
let release t buf =
  if t.free_count < t.retain then begin
    t.free <- buf :: t.free;
    t.free_count <- t.free_count + 1
  end

(** [grow t buf n] returns a buffer of length at least [n] holding
    [buf]'s contents as a prefix; [buf] itself goes back to the pool.
    No-op when [buf] is already big enough. *)
let grow t buf n =
  if Bytes.length buf >= n then buf
  else begin
    let nbuf = acquire t (max n (2 * Bytes.length buf)) in
    Bytes.blit buf 0 nbuf 0 (Bytes.length buf);
    release t buf;
    nbuf
  end

(** [with_buf t n f] runs [f] on an acquired buffer of length at least
    [n], releasing it afterwards (also on exception).  [f] must not
    retain the buffer. *)
let with_buf t n f =
  let buf = acquire t n in
  match f buf with
  | v -> release t buf; v
  | exception e -> release t buf; raise e
