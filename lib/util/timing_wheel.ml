(** Hierarchical timing wheel: the priority queue behind the
    discrete-event simulator's hot path.

    A binary heap pays O(log n) float-compare sifts on every push and
    pop; a simulator scheduling one closure per packet hop does both per
    event.  Most of those events are {e near-future} — link serialization
    and propagation, queue drains, control-channel latency — so this
    structure buckets them into fixed-width time slots ([tick] seconds,
    [slots] of them) and only pays heap costs within one slot:

    - events landing in the {e current} tick go to a small [near] heap
      (usually a handful of entries), which preserves the exact
      (key, insertion-order) execution order of the reference heap;
    - events within the wheel horizon ([slots * tick] seconds ahead) are
      consed onto their slot's list in O(1);
    - far timers (retransmission timeouts, expiry sweeps, periodic
      polls) overflow to a fallback {!Heap} and migrate into the wheel
      as its base advances.

    Execution order is {e identical} to {!Heap}'s: slot assignment is a
    monotone function of the key, entries carry their global insertion
    sequence through every migration, and each slot is drained through
    the [near] heap sorted by (key, seq).  The [test/util.wheel] suite
    pins this equivalence property, including ties; the [e3-smoke] bench
    gate pins it end-to-end against full simulations.

    Tick width and slot count trade memory against how much of the
    schedule stays O(1): the defaults (16 µs ticks, 1024 slots ≈ 16 ms
    horizon) cover link and control-channel delays of the simulated
    networks; override with [ZEN_WHEEL_TICK_US] / [ZEN_WHEEL_SLOTS] or
    the [create] arguments. *)

type 'a entry = { key : float; seq : int; value : 'a }

type 'a t = {
  tick : float;               (* slot width, seconds *)
  inv_tick : float;
  nslots : int;               (* power of two *)
  mask : int;
  slots : 'a entry list array;  (* unsorted; one pending tick per slot *)
  mutable wheel_count : int;  (* entries filed in [slots] *)
  mutable base : int;         (* tick number of the current slot *)
  near : 'a Heap.t;           (* entries with tick <= base, exact order *)
  overflow : 'a Heap.t;       (* entries beyond the wheel horizon *)
  mutable next_seq : int;     (* global tie-break counter *)
}

let default_tick () =
  match Sys.getenv_opt "ZEN_WHEEL_TICK_US" with
  | Some s ->
    (match float_of_string_opt (String.trim s) with
     | Some us when us > 0.0 -> us *. 1e-6
     | Some _ | None -> 16e-6)
  | None -> 16e-6

let default_slots () =
  match Sys.getenv_opt "ZEN_WHEEL_SLOTS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 2 -> n
     | Some _ | None -> 1024)
  | None -> 1024

(* round up to a power of two for mask indexing *)
let pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 2

let create ?tick ?slots () =
  let tick = match tick with Some t -> t | None -> default_tick () in
  if tick <= 0.0 then invalid_arg "Timing_wheel.create: tick must be positive";
  let nslots = pow2 (match slots with Some s -> s | None -> default_slots ()) in
  { tick; inv_tick = 1.0 /. tick; nslots; mask = nslots - 1;
    slots = Array.make nslots []; wheel_count = 0; base = 0;
    near = Heap.create (); overflow = Heap.create (); next_seq = 0 }

let length t = Heap.length t.near + t.wheel_count + Heap.length t.overflow
let is_empty t = length t = 0

(* floor(key / tick): monotone in key, so inter-tick order is key order
   and quantization can never reorder events *)
let tick_of t key = int_of_float (key *. t.inv_tick)

(* route an entry to the stage its tick calls for *)
let file t e =
  let tk = tick_of t e.key in
  if tk <= t.base then Heap.push_seq t.near e.key ~seq:e.seq e.value
  else if tk - t.base < t.nslots then begin
    let i = tk land t.mask in
    t.slots.(i) <- e :: t.slots.(i);
    t.wheel_count <- t.wheel_count + 1
  end
  else Heap.push_seq t.overflow e.key ~seq:e.seq e.value

(** [push t key value] schedules [value] at [key] (seconds, must be
    finite and non-negative); ties execute in insertion order. *)
let push t key value =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  file t { key; seq; value }

(* Pull every overflow entry that now fits under the horizon.

   Boundary audit (PR 6): an entry whose tick is {e exactly} at the
   horizon ([tick - base = nslots]) must stay in the overflow heap —
   its slot index aliases the current base slot ([tick land mask =
   base land mask]), so filing it would let the next drain of that slot
   surface it a full revolution early, ahead of every entry in the
   intervening slots.  Both guards agree on strict [<]: [file]
   sends [tick - base >= nslots] to the overflow, and this migration
   only pulls [tick - base < nslots], so the boundary entry migrates on
   the next base advance, never before.  Same-instant FIFO order across
   the migration is preserved because entries carry their global [seq]
   through [pop_seq]/[push_seq] and slot drains sort by [(key, seq)].
   Both properties are pinned by the [test/util.wheel] horizon-boundary
   regression tests. *)
let migrate_overflow t =
  let rec go () =
    match Heap.peek t.overflow with
    | Some (key, _) when tick_of t key - t.base < t.nslots ->
      let key, seq, value = Heap.pop_seq t.overflow in
      file t { key; seq; value };
      go ()
    | Some _ | None -> ()
  in
  go ()

(* entries of one slot share a tick; feed them to [near] in exact
   (key, seq) order *)
let entry_cmp a b =
  match Float.compare a.key b.key with 0 -> compare a.seq b.seq | c -> c

let drain_slot t i =
  match t.slots.(i) with
  | [] -> false
  | l ->
    t.slots.(i) <- [];
    t.wheel_count <- t.wheel_count - List.length l;
    List.iter (fun e -> Heap.push_seq t.near e.key ~seq:e.seq e.value)
      (List.sort entry_cmp l);
    true

(* Advance [base] until [near] holds the next pending entries (or the
   wheel is truly empty).  With entries in the wheel the next nonempty
   slot is at most [nslots - 1] ticks ahead; with only far timers left
   we jump straight to the overflow's first tick. *)
let rec ensure_near t =
  if Heap.is_empty t.near then begin
    if t.wheel_count > 0 then begin
      let rec scan () =
        t.base <- t.base + 1;
        migrate_overflow t;
        if not (drain_slot t (t.base land t.mask)) && t.wheel_count > 0 then
          scan ()
      in
      scan ()
    end
    else
      match Heap.peek t.overflow with
      | None -> ()
      | Some (key, _) ->
        t.base <- max t.base (tick_of t key);
        migrate_overflow t;
        ensure_near t
  end

(** [peek t] returns [Some (key, value)] for the earliest entry without
    removing it, or [None] when the wheel is empty.  (Advances internal
    cursors; the logical contents are unchanged.) *)
let peek t =
  ensure_near t;
  Heap.peek t.near

(** [pop t] removes and returns the earliest entry.
    @raise Not_found when the wheel is empty. *)
let pop t =
  ensure_near t;
  Heap.pop t.near

(** [pop_until t ~stop] is the simulator's fused peek-and-pop: [`Event]
    with the earliest entry when its key is <= [stop], [`Beyond] when
    entries remain but the earliest is past [stop], [`Empty] otherwise.
    With [~strict:true] the bound is exclusive (entries at exactly
    [stop] stay queued) — the sharded simulator's conservative windows
    are half-open intervals.  Same-tick drains stay inside the [near]
    heap — no wheel advance, no global re-peek per event. *)
let pop_until ?(strict = false) t ~stop =
  ensure_near t;
  match Heap.peek t.near with
  | None -> `Empty
  | Some (key, _) when (if strict then key >= stop else key > stop) -> `Beyond
  | Some _ ->
    let key, value = Heap.pop t.near in
    `Event (key, value)

let clear t =
  Heap.clear t.near;
  Heap.clear t.overflow;
  if t.wheel_count > 0 then Array.fill t.slots 0 t.nslots [];
  t.wheel_count <- 0

(** Drains a copy of the queue in execution order (the queue itself is
    consumed — diagnostic/test use). *)
let drain_to_list t =
  let rec go acc =
    match pop t with
    | exception Not_found -> List.rev acc
    | key, value -> go ((key, value) :: acc)
  in
  go []
