(** Big-endian byte-level codecs used by the packet and OpenFlow wire
    formats.  All offsets are in bytes; all multi-byte quantities are
    network (big-endian) order.  Functions raise [Invalid_argument] when
    the access falls outside the buffer, mirroring [Bytes] semantics. *)

(* The accessors lower to the stdlib's fixed-width big-endian
   primitives (one bounds check + one load/store each) rather than
   per-byte [Bytes.get]/[Bytes.set] chains — these sit on the packet
   and control-message encode hot paths.  Values wider than the field
   are truncated to the field width; wire formats that must reject
   oversized values range-check before writing (see {!Packet.Codec}). *)

let get_u8 b off = Bytes.get_uint8 b off
let set_u8 b off v = Bytes.set_uint8 b off (v land 0xff)
let get_u16 b off = Bytes.get_uint16_be b off
let set_u16 b off v = Bytes.set_uint16_be b off (v land 0xffff)
let get_u32 b off = Int32.to_int (Bytes.get_int32_be b off) land 0xffffffff
let set_u32 b off v = Bytes.set_int32_be b off (Int32.of_int v)

(** 48-bit quantity (an Ethernet MAC address) as an OCaml [int]. *)
let get_u48 b off = (get_u16 b off lsl 32) lor get_u32 b (off + 2)

let set_u48 b off v =
  set_u16 b off ((v lsr 32) land 0xffff);
  set_u32 b (off + 2) (v land 0xffffffff)

let get_u64 b off = Bytes.get_int64_be b off
let set_u64 b off v = Bytes.set_int64_be b off v

(** [hex_dump b] renders [b] as the conventional 16-bytes-per-line hex dump,
    for diagnostics and golden tests. *)
let hex_dump b =
  let n = Bytes.length b in
  let buf = Buffer.create (n * 4) in
  let rec line off =
    if off < n then begin
      Buffer.add_string buf (Printf.sprintf "%04x: " off);
      for i = off to min (off + 15) (n - 1) do
        Buffer.add_string buf (Printf.sprintf "%02x " (get_u8 b i))
      done;
      Buffer.add_char buf '\n';
      line (off + 16)
    end
  in
  line 0;
  Buffer.contents buf

(** One's-complement 16-bit checksum over [len] bytes starting at [off],
    as used by the IPv4 header checksum. *)
let ones_complement_sum b off len =
  let rec go i acc =
    if i + 1 < len then go (i + 2) (acc + get_u16 b (off + i))
    else if i < len then acc + (get_u8 b (off + i) lsl 8)
    else acc
  in
  let s = go 0 0 in
  let s = (s land 0xffff) + (s lsr 16) in
  let s = (s land 0xffff) + (s lsr 16) in
  lnot s land 0xffff
