(** Imperative binary min-heap, the priority queue behind both the
    discrete-event simulator and Dijkstra's algorithm.

    Elements are ordered by a float key supplied at insertion; ties are
    broken by insertion order so that the simulator is deterministic.

    Slots above [size] are kept at [None]: {!pop} and {!clear} null out
    vacated entries, so the heap never retains popped payloads (a
    long-running simulator would otherwise pin every executed event
    closure until the backing array happened to be overwritten). *)

type 'a entry = { key : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry option array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let length h = h.size
let is_empty h = h.size = 0

let entry_lt a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

(* slots below [size] are always [Some] *)
let get h i =
  match h.data.(i) with Some e -> e | None -> assert false

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt (get h i) (get h parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest =
    if l < h.size && entry_lt (get h l) (get h i) then l else i
  in
  let smallest =
    if r < h.size && entry_lt (get h r) (get h smallest) then r else smallest
  in
  if smallest <> i then begin
    swap h i smallest;
    sift_down h smallest
  end

(** [push_seq h key ~seq value] inserts with an explicit tie-break
    sequence number.  {!Timing_wheel} uses this to preserve the global
    insertion order of entries that migrate between its stages; the
    internal counter advances past [seq] so later plain {!push}es still
    sort after it. *)
let push_seq h key ~seq value =
  let e = Some { key; seq; value } in
  if seq >= h.next_seq then h.next_seq <- seq + 1;
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let ndata = Array.make ncap None in
    Array.blit h.data 0 ndata 0 h.size;
    h.data <- ndata
  end;
  h.data.(h.size) <- e;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let push h key value = push_seq h key ~seq:h.next_seq value

(** [peek h] returns [Some (key, value)] for the minimum element without
    removing it, or [None] when the heap is empty. *)
let peek h =
  if h.size = 0 then None
  else
    let e = get h 0 in
    Some (e.key, e.value)

(** [pop_seq h] removes the minimum element, returning its tie-break
    sequence number as well (see {!push_seq}).
    @raise Not_found when the heap is empty. *)
let pop_seq h =
  if h.size = 0 then raise Not_found;
  let top = get h 0 in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.data.(0) <- h.data.(h.size);
    h.data.(h.size) <- None;
    sift_down h 0
  end
  else h.data.(0) <- None;
  (top.key, top.seq, top.value)

(** [pop h] removes and returns the minimum element.
    @raise Not_found when the heap is empty. *)
let pop h =
  let key, _seq, value = pop_seq h in
  (key, value)

let clear h =
  Array.fill h.data 0 h.size None;
  h.size <- 0

(** [to_sorted_list h] drains a copy of the heap in key order (the heap
    itself is not modified). *)
let to_sorted_list h =
  let copy =
    { data = Array.sub h.data 0 h.size; size = h.size; next_seq = h.next_seq }
  in
  let rec drain acc =
    if is_empty copy then List.rev acc else drain (pop copy :: acc)
  in
  drain []
