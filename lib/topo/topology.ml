(** Network topology: a port-labelled multigraph of switches and hosts.

    Links are bidirectional and are stored as two directed half-links so
    that per-direction state (queues, failures) is natural.  Ports are
    integers local to each node, numbered from 1.  Hosts have exactly one
    port.  The graph is mutable: builders add nodes and links, and the
    failure API flips links up/down in place (routing recomputes from the
    surviving graph). *)

module Node = struct
  type t =
    | Switch of int
    | Host of int

  let compare (a : t) (b : t) = compare a b
  let equal (a : t) (b : t) = a = b
  let hash = Hashtbl.hash

  let is_switch = function Switch _ -> true | Host _ -> false
  let is_host = function Host _ -> true | Switch _ -> false

  let id = function Switch i -> i | Host i -> i

  let to_string = function
    | Switch i -> Printf.sprintf "s%d" i
    | Host i -> Printf.sprintf "h%d" i

  let pp fmt t = Format.pp_print_string fmt (to_string t)
end

(** Attributes of one direction of a link. *)
type link = {
  src : Node.t;
  src_port : int;
  dst : Node.t;
  dst_port : int;
  capacity : float;  (** bits per second *)
  delay : float;     (** propagation delay, seconds *)
  mutable up : bool;
}

type t = {
  node_tbl : (Node.t, unit) Hashtbl.t;
  (* (node, port) -> outgoing half-link *)
  port_tbl : (Node.t * int, link) Hashtbl.t;
  (* node -> ports in use, ascending *)
  mutable node_order : Node.t list;  (* reverse insertion order *)
}

let create () =
  { node_tbl = Hashtbl.create 64; port_tbl = Hashtbl.create 64;
    node_order = [] }

(** [copy t] is a structural clone: same nodes, ports and link
    attributes, but with {e fresh} link records so [set_link_up] on the
    copy never touches the original (and vice versa).  The sharded
    simulator gives each shard its own clone so the mutable [up] flags
    are never shared across domains. *)
let copy t =
  let c =
    { node_tbl = Hashtbl.copy t.node_tbl;
      port_tbl = Hashtbl.create (Hashtbl.length t.port_tbl);
      node_order = t.node_order }
  in
  (* clone each bidirectional link once so the two half-link records of
     the copy are rebuilt together (they don't share state, but cloning
     per half keeps the table exactly parallel to the original) *)
  Hashtbl.iter
    (fun key l -> Hashtbl.replace c.port_tbl key { l with up = l.up })
    t.port_tbl;
  c

let mem t n = Hashtbl.mem t.node_tbl n

let add_node t n =
  if not (mem t n) then begin
    Hashtbl.replace t.node_tbl n ();
    t.node_order <- n :: t.node_order
  end

let add_switch t id = add_node t (Node.Switch id)
let add_host t id = add_node t (Node.Host id)

(** All nodes in insertion order. *)
let nodes t = List.rev t.node_order

let switches t = List.filter Node.is_switch (nodes t)
let hosts t = List.filter Node.is_host (nodes t)

let switch_ids t = List.map Node.id (switches t)
let host_ids t = List.map Node.id (hosts t)

exception Port_in_use of Node.t * int

(** [add_link t (a, pa) (b, pb) ~capacity ~delay] connects port [pa] of
    [a] to port [pb] of [b] with symmetric attributes.  Both endpoints are
    added to the graph if missing.
    @raise Port_in_use if either port already carries a link. *)
let add_link t (a, pa) (b, pb) ~capacity ~delay =
  add_node t a;
  add_node t b;
  if Hashtbl.mem t.port_tbl (a, pa) then raise (Port_in_use (a, pa));
  if Hashtbl.mem t.port_tbl (b, pb) then raise (Port_in_use (b, pb));
  Hashtbl.replace t.port_tbl (a, pa)
    { src = a; src_port = pa; dst = b; dst_port = pb; capacity; delay;
      up = true };
  Hashtbl.replace t.port_tbl (b, pb)
    { src = b; src_port = pb; dst = a; dst_port = pa; capacity; delay;
      up = true }

(** The half-link leaving [node] through [port], if any (up or down). *)
let link_via t node port = Hashtbl.find_opt t.port_tbl (node, port)

(** [peer t node port] is [Some (peer, peer_port)] when an {e up} link
    leaves [node] through [port]. *)
let peer t node port =
  match link_via t node port with
  | Some l when l.up -> Some (l.dst, l.dst_port)
  | Some _ | None -> None

(** Ports of [node] that carry a link (up or down), ascending. *)
let ports t node =
  Hashtbl.fold
    (fun (n, p) _ acc -> if Node.equal n node then p :: acc else acc)
    t.port_tbl []
  |> List.sort compare

(** Outgoing up half-links of [node], in ascending port order. *)
let out_links t node =
  ports t node
  |> List.filter_map (fun p ->
    match link_via t node p with
    | Some l when l.up -> Some l
    | Some _ | None -> None)

(** All links as half-link pairs reported once per bidirectional link
    (the direction with the smaller [(node, port)] endpoint). *)
let links t =
  Hashtbl.fold
    (fun (n, p) l acc ->
      if compare (n, p) (l.dst, l.dst_port) <= 0 then l :: acc else acc)
    t.port_tbl []
  |> List.sort (fun a b -> compare (a.src, a.src_port) (b.src, b.src_port))

(** [set_link_up t (a, pa) up] marks both directions of the link through
    [(a, pa)] as up/down.  No-op if no such link exists. *)
let set_link_up t (a, pa) up =
  match link_via t a pa with
  | None -> ()
  | Some l ->
    l.up <- up;
    (match link_via t l.dst l.dst_port with
     | Some back -> back.up <- up
     | None -> ())

let fail_link t endpoint = set_link_up t endpoint false
let restore_link t endpoint = set_link_up t endpoint true

(** [fail_node t n] downs every link of [n]. *)
let fail_node t n = List.iter (fun p -> set_link_up t (n, p) false) (ports t n)

(** Lowest unused port number of [node] (ports start at 1). *)
let fresh_port t node =
  let used = ports t node in
  let rec go p = if List.mem p used then go (p + 1) else p in
  go 1

(** The switch a host attaches to, with the switch-side port. *)
let attachment t host_id =
  match peer t (Node.Host host_id) 1 with
  | Some (sw, sw_port) when Node.is_switch sw -> Some (Node.id sw, sw_port)
  | Some _ | None -> None

(** Host ids attached to switch [sw_id], with the switch-side port. *)
let hosts_of_switch t sw_id =
  out_links t (Node.Switch sw_id)
  |> List.filter_map (fun l ->
    match l.dst with
    | Node.Host h -> Some (h, l.src_port)
    | Node.Switch _ -> None)

let switch_count t = List.length (switches t)
let host_count t = List.length (hosts t)
let link_count t = List.length (links t)

let pp fmt t =
  Format.fprintf fmt "topology: %d switches, %d hosts, %d links@."
    (switch_count t) (host_count t) (link_count t);
  List.iter
    (fun l ->
      Format.fprintf fmt "  %a[%d] <-> %a[%d]%s@." Node.pp l.src l.src_port
        Node.pp l.dst l.dst_port
        (if l.up then "" else " (down)"))
    (links t)

let to_string t = Format.asprintf "%a" pp t

(** Graphviz rendering: switches as boxes, hosts as ellipses, one edge
    per bidirectional link labelled with its ports, dashed when down. *)
let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph topology {\n  overlap = false;\n";
  List.iter
    (fun n ->
      let shape =
        match n with Node.Switch _ -> "box" | Node.Host _ -> "ellipse"
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s [shape=%s];\n" (Node.to_string n) shape))
    (nodes t);
  List.iter
    (fun l ->
      Buffer.add_string buf
        (Printf.sprintf
           "  %s -- %s [taillabel=\"%d\", headlabel=\"%d\"%s];\n"
           (Node.to_string l.src) (Node.to_string l.dst) l.src_port l.dst_port
           (if l.up then "" else ", style=dashed")))
    (links t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
