(** Forwarding decision diagrams (FDDs) — the compiler's intermediate
    representation, after Smolka et al.'s "A fast compiler for NetKAT".

    An FDD is a binary decision diagram whose internal nodes test
    [field = value] and whose leaves are {e action sets}: sets of partial
    header updates, each update producing one output packet (the empty
    set is drop, the singleton empty update is the identity).

    Diagrams are ordered — along any root-to-leaf path, tests appear in
    nondecreasing field order, a field is never tested again after a
    true-branch, and equal fields appear with increasing values along
    false-branches — and hash-consed, so semantic construction is
    maximally shared and physical equality [==] coincides with diagram
    equality.  All construction goes through {!leaf} and {!branch}.

    {b Fast path.}  Actions are {e interned}: structurally equal updates
    share one record carrying a unique id, so action equality and
    hashing are O(1) and leaf hash-consing never re-traverses action
    structure.  Every node carries a precomputed hash.  The binary
    operations ({!union}, {!gate}, {!seq}, [act_seq], {!restrict})
    memoize through persistent global caches keyed on [(op, uid, uid)]
    that survive across calls — repeated compilation of overlapping
    policies (the common controller workload) hits warm entries —
    and are reset by {!clear_cache}.

    {b Domain safety.}  The intern, hash-cons and memo tables are global
    mutable state, so multi-domain use (the parallel per-switch compiler
    in {!Local}) must be wrapped in {!parallel_region}: inside a region
    every table access takes that table's mutex, with uids drawn from
    [Atomic] counters, so concurrent construction stays canonical
    (physical equality still coincides with diagram equality).  Outside
    any region the locks are skipped entirely — the single-domain fast
    path pays one atomic load per table access — which is sound because
    the region is entered {e before} worker domains touch the tables and
    left {e after} they are joined.  Memo-cache fills race benignly: two
    domains may compute the same entry, but hash-consing makes both
    results the same physical node.  {!clear_cache} must not run
    concurrently with a region. *)

open Packet

(* ------------------------------------------------------------------ *)
(* Domain safety: per-table mutexes, engaged only inside a region *)

module Shared = struct
  (* count of live parallel regions; 0 = single-domain, locks skipped *)
  let regions = Atomic.make 0

  let locking () = Atomic.get regions > 0

  (* [critical m f] runs [f] under [m] when a parallel region is open.
     The critical sections below never nest on one mutex: memo lookups
     and memo fills are separate sections, and recursive construction
     happens between them. *)
  let critical m f =
    if locking () then begin
      Mutex.lock m;
      match f () with
      | r -> Mutex.unlock m; r
      | exception e -> Mutex.unlock m; raise e
    end
    else f ()
end

(** [parallel_region f] runs [f] with the global tables in locked mode;
    any code that touches this module from more than one domain must do
    so inside [f].  Regions nest and may overlap across domains. *)
let parallel_region f =
  Atomic.incr Shared.regions;
  Fun.protect ~finally:(fun () -> Atomic.decr Shared.regions) f

(** A single action: a partial header update, sorted by field, at most
    one binding per field.  Applying it to a packet yields one packet.

    Values are interned: [of_list] (and every operation producing an
    action) returns the unique record for the update, so [equal] is an
    id comparison and [hash] a field read.  The intern table is never
    reset — ids stay canonical for the lifetime of the process. *)
module Act = struct
  type t = {
    aid : int;  (* unique id: structural equality <=> id equality *)
    binds : (Fields.t * int) list;
    ikey : (int * int) list;  (* (field index, value), the intern key *)
  }

  module Intern = Hashtbl.Make (struct
    type t = (int * int) list

    let equal (a : t) b = a = b
    let hash = Hashtbl.hash
  end)

  let intern_tbl : t Intern.t = Intern.create 256
  let intern_mutex = Mutex.create ()
  let next_aid = Atomic.make 0

  (* [binds] must be sorted by field with one binding per field.  The
     find-or-add is one critical section, so concurrent interning of the
     same update yields one record. *)
  let intern binds =
    let ikey = List.map (fun (f, v) -> (Fields.index f, v)) binds in
    Shared.critical intern_mutex (fun () ->
      match Intern.find_opt intern_tbl ikey with
      | Some t -> t
      | None ->
        let t = { aid = Atomic.fetch_and_add next_aid 1; binds; ikey } in
        Intern.add intern_tbl ikey t;
        t)

  (** The identity update. *)
  let id : t = intern []

  (** Unique id of the interned update. *)
  let uid (t : t) = t.aid

  (** The update as an association list, sorted by field. *)
  let bindings (t : t) = t.binds

  let field_cmp (f, _) (g, _) = Fields.compare f g

  let of_list l =
    let sorted = List.sort_uniq (fun a b ->
      match field_cmp a b with 0 -> compare (snd a) (snd b) | c -> c) l
    in
    (* reject two bindings for one field *)
    let rec check = function
      | (f, _) :: ((g, _) :: _ as rest) ->
        if Fields.equal f g then invalid_arg "Fdd.Act.of_list: duplicate field"
        else check rest
      | [ _ ] | [] -> ()
    in
    check sorted;
    intern sorted

  (** [single f v] is the one-binding update [f := v]. *)
  let single f v = intern [ (f, v) ]

  let get (t : t) f =
    List.find_map (fun (g, v) -> if Fields.equal f g then Some v else None)
      t.binds

  (** [compose a b] is the update "do [a], then [b]" ([b] wins). *)
  let compose (a : t) (b : t) : t =
    if a.aid = id.aid then b
    else if b.aid = id.aid then a
    else begin
      let keep_a = List.filter (fun (f, _) -> get b f = None) a.binds in
      intern (List.sort field_cmp (keep_a @ b.binds))
    end

  let apply (t : t) (h : Headers.t) =
    List.fold_left (fun h (f, v) -> Headers.set h f v) h t.binds

  (* Interning makes equal updates share an id; ordering stays
     structural (on the int-encoded key) so set iteration order is
     deterministic and independent of interning history. *)
  let compare (a : t) (b : t) =
    if a.aid = b.aid then 0 else compare a.ikey b.ikey

  let equal (a : t) (b : t) = a.aid = b.aid
  let hash (t : t) = t.aid

  let pp fmt (t : t) =
    match t.binds with
    | [] -> Format.pp_print_string fmt "id"
    | binds ->
      Format.pp_print_list
        ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
        (fun fmt (f, v) ->
          Format.fprintf fmt "%a:=%a" Fields.pp f Fields.pp_value (f, v))
        fmt binds
end

module ActSet = Set.Make (Act)

type test = Fields.t * int

type t = { uid : int; hash : int; node : node }

and node =
  | Leaf of ActSet.t
  | Branch of test * t * t  (** test, true-branch, false-branch *)

let uid t = t.uid

(** Precomputed structural hash (leaves hash their action-set ids,
    branches mix the test with the children's uids). *)
let hash t = t.hash

let test_compare (f, v) (g, u) =
  match Fields.compare f g with 0 -> compare v u | c -> c

(* ------------------------------------------------------------------ *)
(* Hash-consing *)

let hash_acts acts = Hashtbl.hash (List.map Act.uid (ActSet.elements acts))

module Leaf_key = struct
  type t = ActSet.t

  let equal = ActSet.equal
  let hash = hash_acts
end

module Leaf_tbl = Hashtbl.Make (Leaf_key)

let leaf_tbl : t Leaf_tbl.t = Leaf_tbl.create 256
let branch_tbl : (int * int * int * int, t) Hashtbl.t = Hashtbl.create 256
let leaf_mutex = Mutex.create ()
let branch_mutex = Mutex.create ()
let next_uid = Atomic.make 0

let fresh ~hash node =
  { uid = Atomic.fetch_and_add next_uid 1; hash; node }

(* Find-or-add under the table's mutex: hash-consing stays canonical
   when several domains build the same node. *)
let leaf acts =
  Shared.critical leaf_mutex (fun () ->
    match Leaf_tbl.find_opt leaf_tbl acts with
    | Some t -> t
    | None ->
      let t = fresh ~hash:(hash_acts acts) (Leaf acts) in
      Leaf_tbl.add leaf_tbl acts t;
      t)

(** [branch test tru fls] hash-conses, collapsing redundant tests. *)
let branch ((f, v) as test) tru fls =
  if tru == fls then tru
  else begin
    let key = (Fields.index f, v, tru.uid, fls.uid) in
    Shared.critical branch_mutex (fun () ->
      match Hashtbl.find_opt branch_tbl key with
      | Some t -> t
      | None ->
        let t = fresh ~hash:(Hashtbl.hash key) (Branch (test, tru, fls)) in
        Hashtbl.add branch_tbl key t;
        t)
  end

let drop = leaf ActSet.empty
let ident = leaf (ActSet.singleton Act.id)

(* ------------------------------------------------------------------ *)
(* Global operation caches.

   Binary operations memoize on (op tag, uid, uid) in one shared table
   that persists across calls; uids are never reused, so entries stay
   valid until explicitly cleared.  [restrict] keys on (field, value,
   uid) in its own table. *)

let op_union = 0
let op_gate = 1
let op_seq = 2
let op_act_seq = 3

let binop_cache : (int * int * int, t) Hashtbl.t = Hashtbl.create 4096
let restrict_cache : (int * int * int, t) Hashtbl.t = Hashtbl.create 256
(* Memo probe/fill.  Sequentially these hit the global tables directly
   (Shared.critical skips the mutex outside a region).  Inside a
   {!parallel_region} every probe/fill would contend on one mutex per
   operation — with the sharded simulator fanning per-switch
   compilations over a domain pool, that pair of locks serializes the
   whole compiler.  So in locked mode the {e memo} tables are per-domain
   instead, in domain-local storage: misses recompute (results are
   canonical via the hash-cons tables, which stay global — canonicity
   cannot be sharded), and no lock is taken at all.  [clear_cache]
   bumps a generation counter; stale domain tables are dropped lazily on
   first use. *)
let memo_generation = Atomic.make 0

type domain_memo = {
  dm_gen : int;
  dm_binop : (int * int * int, t) Hashtbl.t;
  dm_restrict : (int * int * int, t) Hashtbl.t;
}

let dls_memo : domain_memo option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let domain_memo () =
  let cell = Domain.DLS.get dls_memo in
  let gen = Atomic.get memo_generation in
  match !cell with
  | Some dm when dm.dm_gen = gen -> dm
  | Some _ | None ->
    let dm =
      { dm_gen = gen; dm_binop = Hashtbl.create 1024;
        dm_restrict = Hashtbl.create 64 }
    in
    cell := Some dm;
    dm

(* [sel] picks the per-domain counterpart of the global [tbl] *)
let memo_find tbl sel key =
  if Shared.locking () then Hashtbl.find_opt (sel (domain_memo ())) key
  else Hashtbl.find_opt tbl key

let memo_fill tbl sel key v =
  if Shared.locking () then Hashtbl.replace (sel (domain_memo ())) key v
  else Hashtbl.replace tbl key v

(** Hash-cons generation: bumped by every {!clear_cache}.  Within one
    generation, structurally equal diagrams are physically equal, so
    equal uids certify equal diagrams {e and} unequal uids certify the
    diagrams were not built from shared construction — the property the
    incremental recompiler ({!Delta}) uses for change detection.  Across
    a clear, sharing is lost: re-deriving the same policy yields fresh
    uids, so uid comparison stays {e sound} (uids are never reused) but
    loses its completeness — equal tables may carry different uids. *)
let generation () = Atomic.get memo_generation

(** Sizes of the internal tables:
    [(leaves, branches, binop cache, restrict cache)]. *)
let cache_stats () =
  (Leaf_tbl.length leaf_tbl, Hashtbl.length branch_tbl,
   Hashtbl.length binop_cache, Hashtbl.length restrict_cache)

(** Resets the hash-cons tables and the operation caches (used between
    benchmark runs to measure cold construction).  Existing diagrams
    remain usable but will no longer share with new ones; [drop] and
    [ident] stay canonical.  Interned actions are kept — their ids are
    canonical for the whole process.  Must not run concurrently with a
    {!parallel_region}. *)
let clear_cache () =
  Leaf_tbl.reset leaf_tbl;
  Hashtbl.reset branch_tbl;
  Hashtbl.reset binop_cache;
  Hashtbl.reset restrict_cache;
  Atomic.incr memo_generation;
  Leaf_tbl.add leaf_tbl ActSet.empty drop;
  Leaf_tbl.add leaf_tbl (ActSet.singleton Act.id) ident

let equal a b = a == b

(* ------------------------------------------------------------------ *)
(* Cofactors and generic binary apply *)

(* [pos test d]: specialize [d] under the assumption [test] holds.
   Precondition: [d]'s root test is >= [test] in diagram order. *)
let rec pos ((f, v) as t) d =
  match d.node with
  | Leaf _ -> d
  | Branch ((g, u), tru, fls) ->
    if Fields.equal g f then if u = v then tru else pos t fls else d

(* [neg test d]: specialize [d] under the assumption [test] fails. *)
let neg test d =
  match d.node with
  | Branch (root, _, fls) when test_compare root test = 0 -> fls
  | Leaf _ | Branch _ -> d

let min_root a b =
  match (a.node, b.node) with
  | Branch (ta, _, _), Branch (tb, _, _) ->
    if test_compare ta tb <= 0 then ta else tb
  | Branch (ta, _, _), Leaf _ -> ta
  | Leaf _, Branch (tb, _, _) -> tb
  | Leaf _, Leaf _ -> assert false

(* Shannon-expansion apply of a leaf-level binary operation.  [op] must
   be deterministic; results are memoized in the global cache under
   [tag], normalizing the operand order when [commutative]. *)
let apply ~tag ~commutative op =
  let rec go a b =
    match (a.node, b.node) with
    | Leaf x, Leaf y -> leaf (op x y)
    | _ ->
      let a, b = if commutative && a.uid > b.uid then (b, a) else (a, b) in
      let key = (tag, a.uid, b.uid) in
      (match memo_find binop_cache (fun dm -> dm.dm_binop) key with
       | Some r -> r
       | None ->
         let test = min_root a b in
         let r =
           branch test (go (pos test a) (pos test b))
             (go (neg test a) (neg test b))
         in
         memo_fill binop_cache (fun dm -> dm.dm_binop) key r;
         r)
  in
  go

let union_op = apply ~tag:op_union ~commutative:true ActSet.union

(** Pointwise union of the two diagrams' action sets. *)
let union a b =
  if a == b then a
  else if a == drop then b
  else if b == drop then a
  else union_op a b

let gate_op =
  apply ~tag:op_gate ~commutative:false (fun pass acts ->
    if ActSet.is_empty pass then ActSet.empty else acts)

(* Gate: where the predicate diagram [p] passes, behave as [d]. *)
let gate p d =
  if p == ident then d
  else if p == drop || d == drop then drop
  else gate_op p d

(** [cond test t e]: if [test] then [t] else [e], restoring diagram order
    regardless of the orders of [t] and [e]. *)
let cond test t e =
  if t == e then t
  else begin
    let p_pos = branch test ident drop in
    let p_neg = branch test drop ident in
    union (gate p_pos t) (gate p_neg e)
  end

(* ------------------------------------------------------------------ *)
(* Sequencing *)

(* [act_seq act d]: the diagram "apply [act], then run [d]", expressed
   over the *input* packet.  Tests in [d] on fields written by [act] are
   resolved; leaves are pre-composed with [act].  Memoized globally on
   (act id, node uid). *)
let rec act_seq act d =
  if Act.equal act Act.id then d
  else begin
    let key = (op_act_seq, Act.uid act, d.uid) in
    match memo_find binop_cache (fun dm -> dm.dm_binop) key with
    | Some r -> r
    | None ->
      let r =
        match d.node with
        | Leaf acts -> leaf (ActSet.map (fun a2 -> Act.compose act a2) acts)
        | Branch ((f, v), tru, fls) ->
          (match Act.get act f with
           | Some v' -> if v' = v then act_seq act tru else act_seq act fls
           | None -> cond (f, v) (act_seq act tru) (act_seq act fls))
      in
      memo_fill binop_cache (fun dm -> dm.dm_binop) key r;
      r
  end

(** Kleisli sequencing: run [a], feed every output packet to [b]. *)
let rec seq a b =
  if b == ident then a
  else if a == ident then b
  else if a == drop || b == drop then drop
  else begin
    let key = (op_seq, a.uid, b.uid) in
    match memo_find binop_cache (fun dm -> dm.dm_binop) key with
    | Some r -> r
    | None ->
      let r =
        match a.node with
        | Leaf acts ->
          if ActSet.is_empty acts then drop
          else
            ActSet.fold (fun act acc -> union acc (act_seq act b)) acts drop
        | Branch (test, tru, fls) -> cond test (seq tru b) (seq fls b)
      in
      memo_fill binop_cache (fun dm -> dm.dm_binop) key r;
      r
  end

(** Kleene star: least fixpoint of [x = ident ∪ seq d x].  Terminates
    because the value space reachable from the policy's tests and
    modifications is finite and hash-consing detects convergence. *)
let star d =
  let rec fix acc n =
    if n > 10_000 then failwith "Fdd.star: fixpoint did not converge";
    let next = union ident (seq d acc) in
    if next == acc then acc else fix next (n + 1)
  in
  if d == ident || d == drop then ident else fix ident 0

(** Map over leaves (e.g. predicate negation flips pass/drop leaves).
    Memoized per call — the mapped function has no global identity. *)
let map_leaves f =
  let memo : (int, t) Hashtbl.t = Hashtbl.create 64 in
  let rec go d =
    match Hashtbl.find_opt memo d.uid with
    | Some r -> r
    | None ->
      let r =
        match d.node with
        | Leaf acts -> leaf (f acts)
        | Branch (test, tru, fls) -> branch test (go tru) (go fls)
      in
      Hashtbl.add memo d.uid r;
      r
  in
  go

(* ------------------------------------------------------------------ *)
(* From policies *)

let rec of_pred (p : Syntax.pred) =
  match p with
  | True -> ident
  | False -> drop
  | Test (f, v) -> branch (f, v) ident drop
  | And (a, b) -> gate (of_pred a) (of_pred b)
  | Or (a, b) -> union (of_pred a) (of_pred b)
  | Not a ->
    map_leaves
      (fun acts ->
        if ActSet.is_empty acts then ActSet.singleton Act.id else ActSet.empty)
      (of_pred a)

let rec of_policy (p : Syntax.pol) =
  match p with
  | Filter pred -> of_pred pred
  | Mod (f, v) -> leaf (ActSet.singleton (Act.single f v))
  | Union (a, b) -> union (of_policy a) (of_policy b)
  | Seq (a, b) -> seq (of_policy a) (of_policy b)
  | Star a -> star (of_policy a)

(* ------------------------------------------------------------------ *)
(* Interpretation and inspection *)

(** [eval d h] runs the diagram on headers [h], returning the output
    packets (one per action in the reached leaf). *)
let rec eval d (h : Headers.t) =
  match d.node with
  | Leaf acts -> List.map (fun act -> Act.apply act h) (ActSet.elements acts)
  | Branch ((f, v), tru, fls) ->
    if Headers.get h f = v then eval tru h else eval fls h

(** [restrict (f, v) d] specializes the diagram to packets known to
    satisfy [f = v], removing every test on [f]. *)
let restrict (f, v) d =
  let fi = Fields.index f in
  let rec go d =
    match d.node with
    | Leaf _ -> d
    | Branch ((g, u), tru, fls) ->
      if Fields.compare g f > 0 then d
      else begin
        let key = (fi, v, d.uid) in
        match memo_find restrict_cache (fun dm -> dm.dm_restrict) key with
        | Some r -> r
        | None ->
          let r =
            if Fields.equal g f then if u = v then go tru else go fls
            else branch (g, u) (go tru) (go fls)
          in
          memo_fill restrict_cache (fun dm -> dm.dm_restrict) key r;
          r
      end
  in
  go d

(** Distinct nodes reachable from [d] — the diagram's size. *)
let node_count d =
  let seen = Hashtbl.create 64 in
  let rec go d =
    if not (Hashtbl.mem seen d.uid) then begin
      Hashtbl.add seen d.uid ();
      match d.node with
      | Leaf _ -> ()
      | Branch (_, tru, fls) -> go tru; go fls
    end
  in
  go d;
  Hashtbl.length seen

(** [switch_cases d] — the diagram's top-level [Switch] spine unzipped
    in one walk: [(cases, default)], where [cases] maps each
    spine-tested switch value to the subtree packets carrying that value
    reach, and [default] is the fall-through subtree for every value the
    spine never tests.  Because [Switch] is the first field in the
    diagram order, [restrict (Switch, sw) d] is a pure function of the
    reached subtree — so that subtree's uid is a per-switch change
    certificate costing O(spine) for {e all} switches, where a
    per-switch [restrict] walk would cost O(spine) {e each} (the
    incremental recompiler's fast path). *)
let switch_cases d =
  let cases = Hashtbl.create 64 in
  let rec go d =
    match d.node with
    | Branch ((f, v), tru, fls) when Fields.equal f Fields.Switch ->
      if not (Hashtbl.mem cases v) then Hashtbl.add cases v tru;
      go fls
    | Leaf _ | Branch _ -> d
  in
  let default = go d in
  (cases, default)

(** [fold_paths d ~init ~f] visits every root-to-leaf path, true-branches
    first (the order in which rules must be emitted for priorities to
    encode the false-branch constraints).  [f] receives the positive
    tests along the path, the leaf's action set, and the accumulator. *)
let fold_paths d ~init ~f =
  let rec go d tests acc =
    match d.node with
    | Leaf acts -> f (List.rev tests) acts acc
    | Branch (test, tru, fls) ->
      let acc = go tru (test :: tests) acc in
      go fls tests acc
  in
  go d [] init

(** Values appearing in tests of field [f] anywhere in the diagram. *)
let values_of_field d f =
  let seen = Hashtbl.create 16 in
  let vals = Hashtbl.create 16 in
  let rec go d =
    if not (Hashtbl.mem seen d.uid) then begin
      Hashtbl.add seen d.uid ();
      match d.node with
      | Leaf _ -> ()
      | Branch ((g, v), tru, fls) ->
        if Fields.equal g f then Hashtbl.replace vals v ();
        go tru;
        go fls
    end
  in
  go d;
  Hashtbl.fold (fun v () acc -> v :: acc) vals [] |> List.sort compare

let rec pp fmt d =
  match d.node with
  | Leaf acts ->
    if ActSet.is_empty acts then Format.pp_print_string fmt "drop"
    else
      Format.fprintf fmt "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " | ")
           Act.pp)
        (ActSet.elements acts)
  | Branch ((f, v), tru, fls) ->
    Format.fprintf fmt "@[<hv 2>(%a=%a ?@ %a :@ %a)@]" Fields.pp f
      Fields.pp_value (f, v) pp tru pp fls

let to_string d = Format.asprintf "%a" pp d
