(** Local compilation: policy → FDD → per-switch flow table.

    A policy is {e local} when it never moves packets between switches
    (no [link]s, no writes to the [Switch] meta-field); such a policy
    describes the behavior of every switch at once, and compiling it for
    switch [sw] means specializing to [Switch = sw] and reading rules off
    the diagram.

    Rules are emitted along the diagram's root-to-leaf paths in
    true-branch-first order with descending priorities; a path
    contributes the conjunction of its positive tests as the match
    pattern, and the shadowing of higher-priority rules encodes the
    false-branch (negative) constraints exactly. *)

open Packet

exception Not_local of string

type rule = {
  priority : int;
  pattern : Flow.Pattern.t;
  actions : Flow.Action.group;
}

(* Convert one FDD action (a partial header update) to a flow action
   sequence.  The final location of the packet is its [In_port] value:
   an update that writes [In_port] outputs there; one that leaves it
   alone sends the packet back where it came from. *)
let seq_of_act (act : Fdd.Act.t) : Flow.Action.seq =
  let mods, out =
    List.fold_left
      (fun (mods, out) (f, v) ->
        match (f : Fields.t) with
        | Switch -> raise (Not_local "policy modifies the switch field")
        | In_port -> (mods, Some v)
        | Eth_src | Eth_dst | Eth_type | Vlan | Ip_proto | Ip4_src | Ip4_dst
        | Tp_src | Tp_dst ->
          (Flow.Action.Set_field (f, v) :: mods, out))
      ([], None) (Fdd.Act.bindings act)
  in
  let output =
    match out with
    | Some p -> Flow.Action.Output (Physical p)
    | None -> Flow.Action.Output In_port_out
  in
  List.rev mods @ [ output ]

let group_of_actset (acts : Fdd.ActSet.t) : Flow.Action.group =
  List.map seq_of_act (Fdd.ActSet.elements acts)

let pattern_of_tests tests =
  List.fold_left
    (fun pat (f, v) ->
      match (f : Fields.t) with
      | Switch -> raise (Not_local "switch test survived specialization")
      | In_port | Eth_src | Eth_dst | Eth_type | Vlan | Ip_proto | Ip4_src
      | Ip4_dst | Tp_src | Tp_dst ->
        (match Flow.Pattern.conj pat (Flow.Pattern.of_field f v) with
         | Some p -> p
         | None ->
           (* ordered FDD paths carry at most one positive test per
              field, so a contradiction is impossible *)
           assert false))
    Flow.Pattern.any tests

(** [rules_of_restricted d] extracts the rule list from a diagram
    already specialized to one switch (no [Switch] tests left), highest
    priority first.  Priorities count paths from the bottom ([n - i]),
    so an edit that inserts or removes paths leaves every rule {e below}
    the edit point untouched — the property the incremental recompiler
    ({!Delta}) relies on for small diffs.
    @raise Not_local if the diagram moves packets between switches. *)
let rules_of_restricted d =
  let paths =
    Fdd.fold_paths d ~init:[] ~f:(fun tests acts acc ->
      (pattern_of_tests tests, group_of_actset acts) :: acc)
  in
  (* fold_paths accumulates in visit order, so [paths] is reversed:
     the head is the last-visited (lowest-priority) path. *)
  let n = List.length paths in
  List.rev paths
  |> List.mapi (fun i (pattern, actions) ->
    { priority = n - i; pattern; actions })

(** [rules_of_fdd ~switch d] specializes [d] to the switch and extracts
    the rule list, highest priority first.
    @raise Not_local if the diagram moves packets between switches. *)
let rules_of_fdd ~switch d =
  rules_of_restricted (Fdd.restrict (Fields.Switch, switch) d)

(** [compile ~switch pol] compiles a local policy to the flow table of
    one switch.
    @raise Not_local on link policies (switch tests are fine). *)
let compile ~switch pol =
  rules_of_fdd ~switch (Fdd.of_policy pol)

let table_of_rules ?capacity rules =
  let table = Flow.Table.create ?capacity () in
  List.iter
    (fun r ->
      Flow.Table.add table
        (Flow.Table.make_rule ~priority:r.priority ~pattern:r.pattern
           ~actions:r.actions ()))
    rules;
  table

(** As {!compile}, but loaded into a {!Flow.Table.t}. *)
let compile_table ?capacity ~switch pol =
  table_of_rules ?capacity (compile ~switch pol)

(* ------------------------------------------------------------------ *)
(* Parallel per-switch compilation.

   The FDD is built once (on the calling domain) and is immutable from
   then on; specializing it to each switch — [restrict] plus path
   extraction — is fully independent per switch, so it fans out over a
   {!Util.Pool} of domains inside an {!Fdd.parallel_region}.  The output
   is bit-for-bit the sequential result: same switches in the same
   order, same rules, same priorities (pinned by a property test). *)

(** [rules_of_fdd_all ~switches d] is
    [List.map (fun sw -> (sw, rules_of_fdd ~switch:sw d)) switches] with
    the per-switch work distributed over a domain pool: [?pool] if
    given, else a transient pool of [?domains] domains, else the shared
    {!Util.Pool.get_default} pool.  With one domain the work runs inline
    and the FDD tables stay lock-free. *)
let rules_of_fdd_all ?pool ?domains ~switches d =
  match switches with
  | [] -> []
  | _ ->
    let pool, owned =
      match (pool, domains) with
      | Some p, _ -> (p, false)
      | None, Some n -> (Util.Pool.create ~domains:n (), true)
      | None, None -> (Util.Pool.get_default (), false)
    in
    let per_switch sw = (sw, rules_of_fdd ~switch:sw d) in
    let compile () =
      if Util.Pool.size pool <= 1 then List.map per_switch switches
      else Fdd.parallel_region (fun () -> Util.Pool.map pool switches ~f:per_switch)
    in
    Fun.protect compile
      ~finally:(fun () -> if owned then Util.Pool.shutdown pool)

(** [compile_all ~switches pol] compiles a local policy for every switch
    at once: the FDD is built once and the per-switch specialization
    runs on a domain pool (see {!rules_of_fdd_all} for the pool knobs).
    @raise Not_local on link policies. *)
let compile_all ?pool ?domains ~switches pol =
  rules_of_fdd_all ?pool ?domains ~switches (Fdd.of_policy pol)

(** As {!compile_all}, but each switch's rules loaded into a fresh
    {!Flow.Table.t} (built on the pool alongside the rules). *)
let compile_all_tables ?capacity ?pool ?domains ~switches pol =
  let d = Fdd.of_policy pol in
  match switches with
  | [] -> []
  | _ ->
    let pool, owned =
      match (pool, domains) with
      | Some p, _ -> (p, false)
      | None, Some n -> (Util.Pool.create ~domains:n (), true)
      | None, None -> (Util.Pool.get_default (), false)
    in
    let per_switch sw =
      (sw, table_of_rules ?capacity (rules_of_fdd ~switch:sw d))
    in
    let compile () =
      if Util.Pool.size pool <= 1 then List.map per_switch switches
      else Fdd.parallel_region (fun () -> Util.Pool.map pool switches ~f:per_switch)
    in
    Fun.protect compile
      ~finally:(fun () -> if owned then Util.Pool.shutdown pool)

(** Total rules across all switches — the compiler's output size.
    Compiled via {!compile_all}, so it parallelizes with the pool. *)
let total_rules ?pool ?domains ~switches pol =
  compile_all ?pool ?domains ~switches pol
  |> List.fold_left (fun acc (_, rules) -> acc + List.length rules) 0

let pp_rule fmt r =
  Format.fprintf fmt "[%4d] %a -> %a" r.priority Flow.Pattern.pp r.pattern
    Flow.Action.pp_group r.actions
