(** Incremental delta recompilation: policy/topology churn without full
    recompiles.

    A full compile ({!Local.compile_all}) re-derives every switch's
    table and the installer re-pushes every rule, even when an edit
    touched one clause of a million-rule deployment.  At scale, churn is
    continuous — the headline cost is update latency, not one-shot
    compile time.

    This layer exploits the hash-consed {!Fdd}: within one hash-cons
    generation, structurally equal diagrams are physically equal, so the
    {e uid} of the subtree switch [sw] reaches through the diagram's
    top-level [Switch] spine ({!Fdd.switch_cases}) — which fully
    determines [restrict (Switch, sw) fdd] — is a certificate for switch
    [sw]'s entire table.  A {!snapshot} records, per switch, that uid
    and the derived rule list.  {!compile} then:

    {ol
    {- compares the whole-policy diagram against the snapshot's — a
       physically-equal diagram means {e no} switch changed (no per-
       switch work at all);}
    {- otherwise unzips the [Switch] spine once (O(spine) for all
       switches) and skips every switch whose case-subtree uid is
       unchanged — no restriction, no path extraction, no diffing, no
       flow-mods, warm flow caches stay warm;}
    {- re-derives only the changed switches (restrict + extract, fanned
       over the {!Util.Pool} domain pool inside an
       {!Fdd.parallel_region}) and diffs old-vs-new rule lists into
       minimal adds (new or modified [(priority, pattern)] keys) and
       strict deletes.}}

    {b Invalidation rules.}  Uids are drawn from a never-reset counter,
    so uid {e equality} is sound forever — across {!Fdd.clear_cache},
    across generations, across domains (the hash-cons tables are global
    even inside a parallel region, so worker-domain construction stays
    canonical; the per-domain DLS {e memo} caches of PR 6 only memoize,
    they never affect which node is returned).  What a cache clear
    destroys is {e completeness}: re-deriving an unchanged policy after
    [clear_cache] yields fresh uids, so step 2's fast path misses and
    the switch falls through to step 3 — where a structural rule-list
    comparison still recognizes the no-op and reports {!Unchanged}.
    Incremental results therefore stay exactly equal to a from-scratch
    compile no matter where a [clear_cache] lands (pinned by the
    [netkat.delta] property tests). *)

open Packet

type entry = {
  uid : int;  (** uid of the switch's spine-case subtree (its certificate) *)
  rules : Local.rule list;  (** the derived table, highest priority first *)
}

type snapshot = {
  gen : int;  (** {!Fdd.generation} at compile time *)
  fdd : Fdd.t;  (** whole-policy diagram (pre-restriction) *)
  entries : (int, entry) Hashtbl.t;  (** per-switch certificates *)
}

(** What happened to one switch's table. *)
type change =
  | Unchanged
      (** table proven identical (by uid, or by structural rule
          comparison after a cache clear) — nothing to push *)
  | Changed of {
      rules : Local.rule list;  (** the full new table *)
      adds : Local.rule list;
          (** rules to add or modify: new [(priority, pattern)] keys and
              keys whose actions changed *)
      deletes : Local.rule list;  (** keys that vanished *)
    }

type result = {
  snapshot : snapshot;  (** certificate set for the next compile *)
  changes : (int * change) list;  (** per switch, in input order *)
  skipped : int;  (** switches proven unchanged without re-derivation *)
  rederived : int;  (** switches whose table was re-derived *)
  n_adds : int;
  n_deletes : int;
}

(** [find snapshot switch] is the table recorded for [switch], if any
    (e.g. for re-pushing a crashed switch from the shadow). *)
let find snapshot switch =
  Option.map (fun e -> e.rules) (Hashtbl.find_opt snapshot.entries switch)

(** Rules across all recorded switches — the deployment's size. *)
let total_rules snapshot =
  Hashtbl.fold (fun _ e acc -> acc + List.length e.rules) snapshot.entries 0

(** [env_enabled ()] — the [ZEN_INCREMENTAL] environment knob (["1"] or
    ["true"]); the default for the installers' [?incremental] flags. *)
let env_enabled () =
  match Sys.getenv_opt "ZEN_INCREMENTAL" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

(** [diff_rules old_rules new_rules] — the flow-mods needed to turn
    [old_rules] into [new_rules]: adds/modifies for new or changed
    [(priority, pattern)] keys, strict deletes for vanished ones.
    Order-insensitive and purely structural, so it is correct even when
    uid-based detection is unavailable (after a cache clear). *)
let diff_rules old_rules new_rules =
  let key (r : Local.rule) = (r.priority, r.pattern) in
  let old_tbl = Hashtbl.create 32 in
  List.iter (fun r -> Hashtbl.replace old_tbl (key r) r) old_rules;
  let adds =
    List.filter
      (fun (r : Local.rule) ->
        match Hashtbl.find_opt old_tbl (key r) with
        | Some old -> old.actions <> r.actions
        | None -> true)
      new_rules
  in
  let new_keys = Hashtbl.create 32 in
  List.iter (fun r -> Hashtbl.replace new_keys (key r) ()) new_rules;
  let deletes =
    List.filter (fun r -> not (Hashtbl.mem new_keys (key r))) old_rules
  in
  (adds, deletes)

(* Per-switch work: certify by the spine-case subtree's uid, re-derive
   (restrict + extract) and diff only on a changed certificate.  Runs on
   pool domains inside a parallel region; everything it touches is the
   domain-safe Fdd layer plus pure list code.  [case] is the subtree
   packets with [Switch = sw] reach through the root spine (from
   {!Fdd.switch_cases}); it fully determines the restriction, so its uid
   is as sound a certificate as the restricted diagram's own — and free,
   where a restrict walk costs O(spine) per switch. *)
let per_switch ~previous ~transform ~keep fdd ~case sw =
  let uid = Fdd.uid case in
  let prev =
    match previous with
    | Some p -> Hashtbl.find_opt p.entries sw
    | None -> None
  in
  match prev with
  | Some e when e.uid = uid -> (sw, e, Unchanged)
  | prev ->
    let rules =
      Local.rules_of_restricted (Fdd.restrict (Fields.Switch, sw) fdd)
      |> List.filter keep |> List.map transform
    in
    let entry = { uid; rules } in
    (match prev with
     | Some e when e.rules = rules ->
       (* same table under a fresh uid (a cache clear intervened, or an
          equivalent policy written differently): record the new
          certificate, push nothing *)
       (sw, entry, Unchanged)
     | Some e ->
       let adds, deletes = diff_rules e.rules rules in
       (sw, entry, Changed { rules; adds; deletes })
     | None -> (sw, entry, Changed { rules; adds = rules; deletes = [] }))

(** [compile ?pool ?domains ?transform ?keep ~switches previous fdd] —
    one incremental recompilation step: certify every switch of
    [switches] against [previous] (if any), re-derive and diff only the
    changed ones, and return the new snapshot.

    [transform] rewrites each derived rule before diffing and recording
    (e.g. stamping a version tag or a priority base); it must be pure
    and stable across calls or the uid fast path would certify stale
    transforms.  [keep] filters derived rules first (e.g. dropping
    fall-through drop rules for global programs).  Per-switch work fans
    out over [?pool] / [?domains] / the shared default pool exactly like
    {!Local.rules_of_fdd_all}.  Switches absent from [switches] are
    dropped from the snapshot — the caller no longer owns them.
    @raise Local.Not_local if the diagram moves packets between
    switches. *)
let compile ?pool ?domains ?(transform = fun (r : Local.rule) -> r)
    ?(keep = fun (_ : Local.rule) -> true) ~switches previous fdd =
  let gen = Fdd.generation () in
  let results =
    match switches with
    | [] -> []
    | _ ->
      (* whole-policy fast path: a physically equal diagram certifies
         every previously-recorded switch at once *)
      let unchanged_fdd =
        match previous with Some p -> Fdd.equal p.fdd fdd | None -> false
      in
      (* one spine walk certifies every switch (read-only under the
         parallel fan-out below) *)
      let cases, default = Fdd.switch_cases fdd in
      let case_of sw =
        match Hashtbl.find_opt cases sw with Some t -> t | None -> default
      in
      let work sw =
        let case = case_of sw in
        match previous with
        | Some p when unchanged_fdd ->
          (match Hashtbl.find_opt p.entries sw with
           | Some e -> (sw, e, Unchanged)
           | None -> per_switch ~previous ~transform ~keep fdd ~case sw)
        | _ -> per_switch ~previous ~transform ~keep fdd ~case sw
      in
      let pool, owned =
        match (pool, domains) with
        | Some p, _ -> (p, false)
        | None, Some n -> (Util.Pool.create ~domains:n (), true)
        | None, None -> (Util.Pool.get_default (), false)
      in
      let run () =
        if Util.Pool.size pool <= 1 then List.map work switches
        else Fdd.parallel_region (fun () -> Util.Pool.map pool switches ~f:work)
      in
      Fun.protect run
        ~finally:(fun () -> if owned then Util.Pool.shutdown pool)
  in
  let entries = Hashtbl.create (List.length results) in
  List.iter (fun (sw, e, _) -> Hashtbl.replace entries sw e) results;
  let changes = List.map (fun (sw, _, c) -> (sw, c)) results in
  let skipped, rederived, n_adds, n_deletes =
    List.fold_left
      (fun (s, r, a, d) (_, c) ->
        match c with
        | Unchanged -> (s + 1, r, a, d)
        | Changed { adds; deletes; _ } ->
          (s, r + 1, a + List.length adds, d + List.length deletes))
      (0, 0, 0, 0) changes
  in
  { snapshot = { gen; fdd; entries }; changes; skipped; rederived; n_adds;
    n_deletes }

(** [compile_policy ~switches previous pol] — {!compile} from syntax.
    For edits over a large cached base, prefer composing diagrams
    directly (e.g. [Fdd.seq guard base_fdd]) and calling {!compile}:
    [of_policy] re-walks the whole syntax tree. *)
let compile_policy ?pool ?domains ?transform ?keep ~switches previous pol =
  compile ?pool ?domains ?transform ?keep ~switches previous
    (Fdd.of_policy pol)
