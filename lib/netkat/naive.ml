(** The baseline compiler: straightforward cross-product translation of
    policies to rules, with none of the FDD's sharing, factoring or
    shadow elimination.  It exists to quantify what the FDD buys (E1).

    Supported fragment: [Filter]/[Mod]/[Union]/[Seq] where predicates are
    built from tests with [And]/[Or] (no negation) — the fragment that
    hand-written rule generators typically cover.  [Union] branches are
    assumed pairwise disjoint (true of routing and ACL policies, where
    branches test distinct header values); overlapping branches would
    need multicast groups that a naive rule list cannot express.

    @raise Unsupported on negation, star, or switch modification. *)

open Packet

exception Unsupported of string

(* An atomic rule: a conjunction of exact tests and an update. *)
type arule = { tests : (Fields.t * int) list; update : Fdd.Act.t }

let test_get tests f =
  List.find_map (fun (g, v) -> if Fields.equal f g then Some v else None) tests

(* Add a test; None when contradictory. *)
let add_test tests (f, v) =
  match test_get tests f with
  | Some v' -> if v = v' then Some tests else None
  | None -> Some ((f, v) :: tests)

(* Disjunctive normal form of a predicate: a list of test conjunctions. *)
let rec dnf (p : Syntax.pred) : (Fields.t * int) list list =
  match p with
  | True -> [ [] ]
  | False -> []
  | Test (f, v) -> [ [ (f, v) ] ]
  | Or (a, b) -> dnf a @ dnf b
  | And (a, b) ->
    List.concat_map
      (fun ca ->
        List.filter_map
          (fun cb ->
            List.fold_left
              (fun acc t ->
                match acc with
                | None -> None
                | Some tests -> add_test tests t)
              (Some ca) cb)
          (dnf b))
      (dnf a)
  | Not _ -> raise (Unsupported "negation")

(* Sequential composition of two atomic rules: pull rule [b]'s tests
   back through rule [a]'s update. *)
let compose_arule a b =
  let pulled =
    List.fold_left
      (fun acc (f, v) ->
        match acc with
        | None -> None
        | Some tests ->
          (match Fdd.Act.get a.update f with
           | Some written -> if written = v then Some tests else None
           | None -> add_test tests (f, v)))
      (Some a.tests) b.tests
  in
  match pulled with
  | None -> None
  | Some tests -> Some { tests; update = Fdd.Act.compose a.update b.update }

let rec translate (p : Syntax.pol) : arule list =
  match p with
  | Filter pred -> List.map (fun tests -> { tests; update = Fdd.Act.id }) (dnf pred)
  | Mod (f, v) ->
    if Fields.equal f Fields.Switch then
      raise (Unsupported "switch modification");
    [ { tests = []; update = Fdd.Act.single f v } ]
  | Union (a, b) -> translate a @ translate b
  | Seq (a, b) ->
    let ra = translate a and rb = translate b in
    List.concat_map
      (fun a' -> List.filter_map (fun b' -> compose_arule a' b') rb)
      ra
  | Star _ -> raise (Unsupported "star")

(** [compile ~switch pol] produces the rule list for one switch:
    rules testing another switch are dropped, the switch test is erased,
    and the rest become flow rules in declaration order.  The result may
    contain redundant and duplicated entries — that is the point of the
    baseline. *)
let compile ~switch pol : Local.rule list =
  let keep r =
    match test_get r.tests Fields.Switch with
    | Some sw -> sw = switch
    | None -> true
  in
  let rules =
    translate pol
    |> List.filter keep
    |> List.map (fun r ->
      let tests =
        List.filter (fun (f, _) -> not (Fields.equal f Fields.Switch)) r.tests
      in
      let pattern =
        List.fold_left
          (fun pat (f, v) ->
            match Flow.Pattern.conj pat (Flow.Pattern.of_field f v) with
            | Some p -> p
            | None -> assert false)
          Flow.Pattern.any tests
      in
      (pattern, [ Local.seq_of_act r.update ]))
  in
  let n = List.length rules in
  List.mapi
    (fun i (pattern, actions) ->
      { Local.priority = n - i; pattern; actions })
    rules

let total_rules ~switches pol =
  List.fold_left
    (fun acc sw -> acc + List.length (compile ~switch:sw pol))
    0 switches
