(** Binary wire codec for {!Message.t}.

    Framing follows the OpenFlow convention: an 8-byte header
    [version(1) | type(1) | length(2) | xid(4)] followed by a
    type-specific body, all big-endian.  The controller runtime round-trips
    every control message through this codec so that the protocol layer is
    genuinely exercised, not just modeled. *)

open Util
open Message

exception Wire_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Wire_error s)) fmt

let version = 1

let type_code = function
  | Hello -> 0
  | Echo_request _ -> 2
  | Echo_reply _ -> 3
  | Features_request -> 5
  | Features_reply _ -> 6
  | Packet_in _ -> 10
  | Flow_removed _ -> 11
  | Port_status _ -> 12
  | Packet_out _ -> 13
  | Flow_mod _ -> 14
  | Stats_request _ -> 16
  | Stats_reply _ -> 17
  | Barrier_request -> 18
  | Barrier_reply -> 19

(* ------------------------------------------------------------------ *)
(* Encoding: append to a Buffer via fixed-size scratch bytes *)

let buf_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let buf_u16 b v =
  if v < 0 || v > 0xffff then fail "u16 out of range (%d)" v;
  buf_u8 b (v lsr 8);
  buf_u8 b v

let buf_u32 b v =
  buf_u16 b ((v lsr 16) land 0xffff);
  buf_u16 b (v land 0xffff)

let buf_u48 b v =
  buf_u16 b ((v lsr 32) land 0xffff);
  buf_u32 b (v land 0xffffffff)

let buf_u64 b (v : int64) =
  buf_u32 b Int64.(to_int (logand (shift_right_logical v 32) 0xffffffffL));
  buf_u32 b Int64.(to_int (logand v 0xffffffffL))

let buf_string b s =
  if String.length s > 0xffff then
    fail "string too long for u16 length prefix (%d bytes)" (String.length s);
  buf_u16 b (String.length s);
  Buffer.add_string b s

let no_timeout = 0xffffffff

let buf_timeout b = function
  | None -> buf_u32 b no_timeout
  | Some secs ->
    let ms = int_of_float (secs *. 1000.0) in
    if ms < 0 || ms >= no_timeout then fail "timeout out of range";
    buf_u32 b ms

let buf_pattern b (p : Flow.Pattern.t) =
  let bit i o = match o with None -> 0 | Some _ -> 1 lsl i in
  let mask =
    bit 0 p.in_port lor bit 1 p.eth_src lor bit 2 p.eth_dst
    lor bit 3 p.eth_type lor bit 4 p.vlan lor bit 5 p.ip_proto
    lor bit 6 p.ip4_src lor bit 7 p.ip4_dst lor bit 8 p.tp_src
    lor bit 9 p.tp_dst
  in
  let dflt o = Option.value o ~default:0 in
  buf_u16 b mask;
  buf_u16 b (dflt p.in_port);
  buf_u48 b (dflt p.eth_src);
  buf_u48 b (dflt p.eth_dst);
  buf_u16 b (dflt p.eth_type);
  buf_u16 b (dflt p.vlan);
  buf_u16 b (dflt p.ip_proto);
  let pfx o =
    match o with
    | None -> (0, 0)
    | Some p -> (Packet.Ipv4.Prefix.network p, Packet.Ipv4.Prefix.length p)
  in
  let src, src_len = pfx p.ip4_src and dst, dst_len = pfx p.ip4_dst in
  buf_u32 b src;
  buf_u8 b src_len;
  buf_u32 b dst;
  buf_u8 b dst_len;
  buf_u16 b (dflt p.tp_src);
  buf_u16 b (dflt p.tp_dst)

let buf_atom b : Flow.Action.atom -> unit = function
  | Output (Physical p) -> buf_u8 b 0; buf_u32 b p
  | Output In_port_out -> buf_u8 b 1
  | Output Flood -> buf_u8 b 2
  | Output Controller -> buf_u8 b 3
  | Set_field (f, v) ->
    buf_u8 b 4;
    buf_u8 b (Packet.Fields.index f);
    buf_u64 b (Int64.of_int v)

let buf_seq b (s : Flow.Action.seq) =
  buf_u16 b (List.length s);
  List.iter (buf_atom b) s

let buf_group b (g : Flow.Action.group) =
  buf_u16 b (List.length g);
  List.iter (buf_seq b) g

let buf_payload b (p : payload) =
  let h = p.headers in
  buf_u32 b h.switch;
  buf_u16 b h.in_port;
  buf_u48 b h.eth_src;
  buf_u48 b h.eth_dst;
  buf_u16 b h.eth_type;
  buf_u16 b h.vlan;
  buf_u8 b h.ip_proto;
  buf_u32 b h.ip4_src;
  buf_u32 b h.ip4_dst;
  buf_u16 b h.tp_src;
  buf_u16 b h.tp_dst;
  buf_u16 b p.size;
  buf_u32 b p.tag

let buf_i32 b v = buf_u32 b (v land 0xffffffff)

let buf_body b = function
  | Hello | Features_request | Barrier_request | Barrier_reply -> ()
  | Echo_request s | Echo_reply s -> buf_string b s
  | Features_reply f ->
    buf_u32 b f.datapath_id;
    buf_u16 b (List.length f.port_list);
    List.iter (buf_u16 b) f.port_list
  | Packet_in pi ->
    buf_u16 b pi.in_port;
    buf_u8 b (match pi.reason with No_match -> 0 | Explicit_send -> 1);
    buf_payload b pi.packet
  | Packet_out po ->
    buf_u16 b po.out_in_port;
    buf_seq b po.out_actions;
    buf_payload b po.out_packet
  | Flow_mod fm ->
    buf_u8 b
      (match fm.command with
       | Add_flow -> 0 | Modify_flow -> 1 | Delete_flow -> 2
       | Delete_strict_flow -> 3);
    buf_u32 b fm.fm_priority;
    buf_pattern b fm.fm_pattern;
    buf_i32 b fm.fm_cookie;
    buf_u8 b (if fm.notify_when_removed then 1 else 0);
    buf_timeout b fm.idle_timeout;
    buf_timeout b fm.hard_timeout;
    buf_group b fm.fm_actions
  | Port_status ps ->
    buf_u16 b ps.ps_port;
    buf_u8 b (match ps.ps_reason with Port_up -> 0 | Port_down -> 1)
  | Flow_removed fr ->
    buf_pattern b fr.fr_pattern;
    buf_u32 b fr.fr_priority;
    buf_i32 b fr.fr_cookie;
    buf_u8 b
      (match fr.fr_reason with
       | Idle_timeout_expired -> 0
       | Hard_timeout_expired -> 1
       | Deleted_by_controller -> 2);
    buf_u64 b (Int64.of_int fr.fr_packets);
    buf_u64 b (Int64.of_int fr.fr_bytes)
  | Stats_request (Flow_stats_request p) -> buf_u8 b 0; buf_pattern b p
  | Stats_request (Port_stats_request port) ->
    buf_u8 b 1;
    (match port with
     | None -> buf_u8 b 0
     | Some p -> buf_u8 b 1; buf_u16 b p)
  | Stats_request Table_stats_request -> buf_u8 b 2
  | Stats_reply (Flow_stats_reply stats) ->
    buf_u8 b 0;
    buf_u16 b (List.length stats);
    List.iter
      (fun fs ->
        buf_pattern b fs.fs_pattern;
        buf_u32 b fs.fs_priority;
        buf_i32 b fs.fs_cookie;
        buf_u64 b (Int64.of_int fs.fs_packets);
        buf_u64 b (Int64.of_int fs.fs_bytes))
      stats
  | Stats_reply (Port_stats_reply stats) ->
    buf_u8 b 1;
    buf_u16 b (List.length stats);
    List.iter
      (fun ps ->
        buf_u16 b ps.pstat_port;
        buf_u64 b (Int64.of_int ps.rx_packets);
        buf_u64 b (Int64.of_int ps.tx_packets);
        buf_u64 b (Int64.of_int ps.rx_bytes);
        buf_u64 b (Int64.of_int ps.tx_bytes);
        buf_u64 b (Int64.of_int ps.drops))
      stats
  | Stats_reply (Table_stats_reply ts) ->
    buf_u8 b 2;
    buf_u64 b (Int64.of_int ts.active_rules);
    buf_u64 b (Int64.of_int ts.table_hits);
    buf_u64 b (Int64.of_int ts.table_misses);
    buf_u64 b (Int64.of_int ts.cache_hits);
    buf_u64 b (Int64.of_int ts.cache_misses);
    buf_u64 b (Int64.of_int ts.cache_invalidations);
    buf_u64 b (Int64.of_int ts.classifier_probes);
    buf_u64 b (Int64.of_int ts.classifier_shapes)

(** [encode ~xid msg] frames [msg] into wire bytes. *)
let encode ~xid msg =
  let body = Buffer.create 64 in
  buf_body body msg;
  let len = 8 + Buffer.length body in
  if len > 0xffff then fail "message too long (%d bytes)" len;
  let b = Buffer.create len in
  buf_u8 b version;
  buf_u8 b (type_code msg);
  buf_u16 b len;
  buf_u32 b xid;
  Buffer.add_buffer b body;
  Buffer.to_bytes b

(* ------------------------------------------------------------------ *)
(* Decoding: cursor over bytes *)

type cursor = { data : bytes; mutable pos : int }

let need c n =
  if c.pos + n > Bytes.length c.data then
    fail "truncated message at offset %d (want %d bytes)" c.pos n

let r8 c = need c 1; let v = Bits.get_u8 c.data c.pos in c.pos <- c.pos + 1; v
let r16 c = need c 2; let v = Bits.get_u16 c.data c.pos in c.pos <- c.pos + 2; v
let r32 c = need c 4; let v = Bits.get_u32 c.data c.pos in c.pos <- c.pos + 4; v
let r48 c = need c 6; let v = Bits.get_u48 c.data c.pos in c.pos <- c.pos + 6; v
let r64 c = need c 8; let v = Bits.get_u64 c.data c.pos in c.pos <- c.pos + 8; v

let r64i c =
  let v = r64 c in
  if Int64.compare v (Int64.of_int max_int) > 0 then fail "u64 overflows int";
  Int64.to_int v

let ri32 c =
  let v = r32 c in
  if v land 0x80000000 <> 0 then v - (1 lsl 32) else v

let rstring c =
  let n = r16 c in
  need c n;
  let s = Bytes.sub_string c.data c.pos n in
  c.pos <- c.pos + n;
  s

let rtimeout c =
  let v = r32 c in
  if v = no_timeout then None else Some (float_of_int v /. 1000.0)

let rpattern c : Flow.Pattern.t =
  let mask = r16 c in
  let has i = mask land (1 lsl i) <> 0 in
  let opt i v = if has i then Some v else None in
  let in_port = r16 c in
  let eth_src = r48 c in
  let eth_dst = r48 c in
  let eth_type = r16 c in
  let vlan = r16 c in
  let ip_proto = r16 c in
  let src = r32 c in
  let src_len = r8 c in
  let dst = r32 c in
  let dst_len = r8 c in
  let tp_src = r16 c in
  let tp_dst = r16 c in
  { in_port = opt 0 in_port;
    eth_src = opt 1 eth_src;
    eth_dst = opt 2 eth_dst;
    eth_type = opt 3 eth_type;
    vlan = opt 4 vlan;
    ip_proto = opt 5 ip_proto;
    ip4_src = (if has 6 then Some (Packet.Ipv4.Prefix.make src src_len) else None);
    ip4_dst = (if has 7 then Some (Packet.Ipv4.Prefix.make dst dst_len) else None);
    tp_src = opt 8 tp_src;
    tp_dst = opt 9 tp_dst }

let field_of_index i =
  match List.find_opt (fun f -> Packet.Fields.index f = i) Packet.Fields.all with
  | Some f -> f
  | None -> fail "unknown field index %d" i

let ratom c : Flow.Action.atom =
  match r8 c with
  | 0 -> Output (Physical (r32 c))
  | 1 -> Output In_port_out
  | 2 -> Output Flood
  | 3 -> Output Controller
  | 4 ->
    let f = field_of_index (r8 c) in
    let v = r64i c in
    Set_field (f, v)
  | n -> fail "unknown action tag %d" n

let rseq c : Flow.Action.seq =
  let n = r16 c in
  List.init n (fun _ -> ratom c)

let rgroup c : Flow.Action.group =
  let n = r16 c in
  List.init n (fun _ -> rseq c)

let rpayload c : payload =
  let switch = r32 c in
  let in_port = r16 c in
  let eth_src = r48 c in
  let eth_dst = r48 c in
  let eth_type = r16 c in
  let vlan = r16 c in
  let ip_proto = r8 c in
  let ip4_src = r32 c in
  let ip4_dst = r32 c in
  let tp_src = r16 c in
  let tp_dst = r16 c in
  let size = r16 c in
  let tag = r32 c in
  { headers =
      { switch; in_port; eth_src; eth_dst; eth_type; vlan; ip_proto;
        ip4_src; ip4_dst; tp_src; tp_dst };
    size; tag }

let rbody code c =
  match code with
  | 0 -> Hello
  | 2 -> Echo_request (rstring c)
  | 3 -> Echo_reply (rstring c)
  | 5 -> Features_request
  | 6 ->
    let datapath_id = r32 c in
    let n = r16 c in
    Features_reply { datapath_id; port_list = List.init n (fun _ -> r16 c) }
  | 10 ->
    let in_port = r16 c in
    let reason = match r8 c with 0 -> No_match | _ -> Explicit_send in
    Packet_in { in_port; reason; packet = rpayload c }
  | 11 ->
    let fr_pattern = rpattern c in
    let fr_priority = r32 c in
    let fr_cookie = ri32 c in
    let fr_reason =
      match r8 c with
      | 0 -> Idle_timeout_expired
      | 1 -> Hard_timeout_expired
      | _ -> Deleted_by_controller
    in
    let fr_packets = r64i c in
    let fr_bytes = r64i c in
    Flow_removed
      { fr_pattern; fr_priority; fr_cookie; fr_reason; fr_packets; fr_bytes }
  | 12 ->
    let ps_port = r16 c in
    let ps_reason = match r8 c with 0 -> Port_up | _ -> Port_down in
    Port_status { ps_port; ps_reason }
  | 13 ->
    let out_in_port = r16 c in
    let out_actions = rseq c in
    Packet_out { out_in_port; out_actions; out_packet = rpayload c }
  | 14 ->
    let command =
      match r8 c with
      | 0 -> Add_flow
      | 1 -> Modify_flow
      | 2 -> Delete_flow
      | 3 -> Delete_strict_flow
      | n -> fail "unknown flow_mod command %d" n
    in
    let fm_priority = r32 c in
    let fm_pattern = rpattern c in
    let fm_cookie = ri32 c in
    let notify_when_removed = r8 c = 1 in
    let idle_timeout = rtimeout c in
    let hard_timeout = rtimeout c in
    let fm_actions = rgroup c in
    Flow_mod
      { command; fm_priority; fm_pattern; fm_actions; idle_timeout;
        hard_timeout; fm_cookie; notify_when_removed }
  | 16 ->
    (match r8 c with
     | 0 -> Stats_request (Flow_stats_request (rpattern c))
     | 1 ->
       let has = r8 c in
       Stats_request
         (Port_stats_request (if has = 1 then Some (r16 c) else None))
     | 2 -> Stats_request Table_stats_request
     | n -> fail "unknown stats_request subtype %d" n)
  | 17 ->
    (match r8 c with
     | 0 ->
       let n = r16 c in
       let stats =
         List.init n (fun _ ->
           let fs_pattern = rpattern c in
           let fs_priority = r32 c in
           let fs_cookie = ri32 c in
           let fs_packets = r64i c in
           let fs_bytes = r64i c in
           { fs_pattern; fs_priority; fs_cookie; fs_packets; fs_bytes })
       in
       Stats_reply (Flow_stats_reply stats)
     | 1 ->
       let n = r16 c in
       let stats =
         List.init n (fun _ ->
           let pstat_port = r16 c in
           let rx_packets = r64i c in
           let tx_packets = r64i c in
           let rx_bytes = r64i c in
           let tx_bytes = r64i c in
           let drops = r64i c in
           { pstat_port; rx_packets; tx_packets; rx_bytes; tx_bytes; drops })
       in
       Stats_reply (Port_stats_reply stats)
     | 2 ->
       let active_rules = r64i c in
       let table_hits = r64i c in
       let table_misses = r64i c in
       let cache_hits = r64i c in
       let cache_misses = r64i c in
       let cache_invalidations = r64i c in
       let classifier_probes = r64i c in
       let classifier_shapes = r64i c in
       Stats_reply
         (Table_stats_reply
            { active_rules; table_hits; table_misses; cache_hits;
              cache_misses; cache_invalidations; classifier_probes;
              classifier_shapes })
     | n -> fail "unknown stats_reply subtype %d" n)
  | 18 -> Barrier_request
  | 19 -> Barrier_reply
  | n -> fail "unknown message type %d" n

(** [decode bytes] parses one framed message, returning [(xid, msg)].
    @raise Wire_error on malformed input or trailing garbage. *)
let decode data =
  let c = { data; pos = 0 } in
  let v = r8 c in
  if v <> version then fail "bad version %d" v;
  let code = r8 c in
  let len = r16 c in
  if len <> Bytes.length data then
    fail "length field %d does not match buffer %d" len (Bytes.length data);
  let xid = r32 c in
  let msg = rbody code c in
  if c.pos <> Bytes.length data then fail "trailing bytes after message";
  (xid, msg)
