(** Binary wire codec for {!Message.t}.

    Framing follows the OpenFlow convention: an 8-byte header
    [version(1) | type(1) | length(2) | xid(4)] followed by a
    type-specific body, all big-endian.  The controller runtime round-trips
    every control message through this codec so that the protocol layer is
    genuinely exercised, not just modeled.

    Encoding writes single-pass into a pooled scratch buffer (one
    {!Util.Bufpool} writer per domain): the 8-byte header is reserved,
    the body written, the header patched with the measured length, and
    the exact frame copied out — no intermediate [Buffer], no per-field
    allocation.  {!encode_batch} extends this to several messages in one
    transmission: frames are simply concatenated, and {!decode_all}
    walks them back out by their length fields.  Every length that must
    fit a wire field is range-checked — a frame that cannot be encoded
    faithfully raises {!Wire_error} rather than truncating. *)

open Util
open Message

exception Wire_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Wire_error s)) fmt

let version = 1

let type_code = function
  | Hello -> 0
  | Echo_request _ -> 2
  | Echo_reply _ -> 3
  | Features_request -> 5
  | Features_reply _ -> 6
  | Packet_in _ -> 10
  | Flow_removed _ -> 11
  | Port_status _ -> 12
  | Packet_out _ -> 13
  | Flow_mod _ -> 14
  | Stats_request _ -> 16
  | Stats_reply _ -> 17
  | Barrier_request -> 18
  | Barrier_reply -> 19
  | Fence _ -> 20

(* ------------------------------------------------------------------ *)
(* Encoding: single-pass writes into a pooled scratch buffer *)

type writer = {
  pool : Bufpool.t;
  mutable buf : bytes;   (* pooled scratch; dirty on acquisition *)
  mutable pos : int;
}

(* one writer per domain: encode is not reentrant, so the scratch can
   persist across calls and steady-state encoding never allocates
   beyond the final exact-size copy *)
let writer_key =
  Domain.DLS.new_key (fun () ->
    let pool = Bufpool.create () in
    { pool; buf = Bufpool.acquire pool 256; pos = 0 })

let ensure w n =
  if w.pos + n > Bytes.length w.buf then
    w.buf <- Bufpool.grow w.pool w.buf (w.pos + n)

let w_u8 w v =
  ensure w 1;
  Bytes.unsafe_set w.buf w.pos (Char.unsafe_chr (v land 0xff));
  w.pos <- w.pos + 1

let w_u16 w v =
  if v < 0 || v > 0xffff then fail "u16 out of range (%d)" v;
  ensure w 2;
  let b = w.buf and p = w.pos in
  Bytes.unsafe_set b p (Char.unsafe_chr (v lsr 8));
  Bytes.unsafe_set b (p + 1) (Char.unsafe_chr (v land 0xff));
  w.pos <- p + 2

let w_u32 w v =
  ensure w 4;
  let b = w.buf and p = w.pos in
  Bytes.unsafe_set b p (Char.unsafe_chr ((v lsr 24) land 0xff));
  Bytes.unsafe_set b (p + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set b (p + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set b (p + 3) (Char.unsafe_chr (v land 0xff));
  w.pos <- p + 4

let w_u48 w v =
  w_u16 w ((v lsr 32) land 0xffff);
  w_u32 w (v land 0xffffffff)

let w_u64 w (v : int64) =
  w_u32 w Int64.(to_int (logand (shift_right_logical v 32) 0xffffffffL));
  w_u32 w Int64.(to_int (logand v 0xffffffffL))

let w_string w s =
  if String.length s > 0xffff then
    fail "string too long for u16 length prefix (%d bytes)" (String.length s);
  w_u16 w (String.length s);
  let n = String.length s in
  ensure w n;
  Bytes.blit_string s 0 w.buf w.pos n;
  w.pos <- w.pos + n

let no_timeout = 0xffffffff

let w_timeout w = function
  | None -> w_u32 w no_timeout
  | Some secs ->
    let ms = int_of_float (secs *. 1000.0) in
    if ms < 0 || ms >= no_timeout then fail "timeout out of range";
    w_u32 w ms

let w_pattern w (p : Flow.Pattern.t) =
  let bit i o = match o with None -> 0 | Some _ -> 1 lsl i in
  let mask =
    bit 0 p.in_port lor bit 1 p.eth_src lor bit 2 p.eth_dst
    lor bit 3 p.eth_type lor bit 4 p.vlan lor bit 5 p.ip_proto
    lor bit 6 p.ip4_src lor bit 7 p.ip4_dst lor bit 8 p.tp_src
    lor bit 9 p.tp_dst
  in
  let dflt o = Option.value o ~default:0 in
  w_u16 w mask;
  w_u16 w (dflt p.in_port);
  w_u48 w (dflt p.eth_src);
  w_u48 w (dflt p.eth_dst);
  w_u16 w (dflt p.eth_type);
  w_u16 w (dflt p.vlan);
  w_u16 w (dflt p.ip_proto);
  let pfx o =
    match o with
    | None -> (0, 0)
    | Some p -> (Packet.Ipv4.Prefix.network p, Packet.Ipv4.Prefix.length p)
  in
  let src, src_len = pfx p.ip4_src and dst, dst_len = pfx p.ip4_dst in
  w_u32 w src;
  w_u8 w src_len;
  w_u32 w dst;
  w_u8 w dst_len;
  w_u16 w (dflt p.tp_src);
  w_u16 w (dflt p.tp_dst)

let w_atom w : Flow.Action.atom -> unit = function
  | Output (Physical p) -> w_u8 w 0; w_u32 w p
  | Output In_port_out -> w_u8 w 1
  | Output Flood -> w_u8 w 2
  | Output Controller -> w_u8 w 3
  | Set_field (f, v) ->
    w_u8 w 4;
    w_u8 w (Packet.Fields.index f);
    w_u64 w (Int64.of_int v)

let w_seq w (s : Flow.Action.seq) =
  w_u16 w (List.length s);
  List.iter (w_atom w) s

let w_group w (g : Flow.Action.group) =
  w_u16 w (List.length g);
  List.iter (w_seq w) g

let w_payload w (p : payload) =
  let h = p.headers in
  w_u32 w h.switch;
  w_u16 w h.in_port;
  w_u48 w h.eth_src;
  w_u48 w h.eth_dst;
  w_u16 w h.eth_type;
  w_u16 w h.vlan;
  w_u8 w h.ip_proto;
  w_u32 w h.ip4_src;
  w_u32 w h.ip4_dst;
  w_u16 w h.tp_src;
  w_u16 w h.tp_dst;
  w_u16 w p.size;
  w_u32 w p.tag

let w_i32 w v = w_u32 w (v land 0xffffffff)

let w_body w = function
  | Hello | Features_request | Barrier_request | Barrier_reply -> ()
  | Fence token ->
    if token < 0 || token > 0xffffffff then
      fail "fence token out of range (%d)" token;
    w_u32 w token
  | Echo_request s | Echo_reply s -> w_string w s
  | Features_reply f ->
    w_u32 w f.datapath_id;
    w_u16 w (List.length f.port_list);
    List.iter (w_u16 w) f.port_list
  | Packet_in pi ->
    w_u16 w pi.in_port;
    w_u8 w (match pi.reason with No_match -> 0 | Explicit_send -> 1);
    w_payload w pi.packet
  | Packet_out po ->
    w_u16 w po.out_in_port;
    w_seq w po.out_actions;
    w_payload w po.out_packet
  | Flow_mod fm ->
    w_u8 w
      (match fm.command with
       | Add_flow -> 0 | Modify_flow -> 1 | Delete_flow -> 2
       | Delete_strict_flow -> 3);
    w_u32 w fm.fm_priority;
    w_pattern w fm.fm_pattern;
    w_i32 w fm.fm_cookie;
    w_u8 w (if fm.notify_when_removed then 1 else 0);
    w_timeout w fm.idle_timeout;
    w_timeout w fm.hard_timeout;
    w_group w fm.fm_actions
  | Port_status ps ->
    w_u16 w ps.ps_port;
    w_u8 w (match ps.ps_reason with Port_up -> 0 | Port_down -> 1)
  | Flow_removed fr ->
    w_pattern w fr.fr_pattern;
    w_u32 w fr.fr_priority;
    w_i32 w fr.fr_cookie;
    w_u8 w
      (match fr.fr_reason with
       | Idle_timeout_expired -> 0
       | Hard_timeout_expired -> 1
       | Deleted_by_controller -> 2);
    w_u64 w (Int64.of_int fr.fr_packets);
    w_u64 w (Int64.of_int fr.fr_bytes)
  | Stats_request (Flow_stats_request p) -> w_u8 w 0; w_pattern w p
  | Stats_request (Port_stats_request port) ->
    w_u8 w 1;
    (match port with
     | None -> w_u8 w 0
     | Some p -> w_u8 w 1; w_u16 w p)
  | Stats_request Table_stats_request -> w_u8 w 2
  | Stats_reply (Flow_stats_reply stats) ->
    w_u8 w 0;
    w_u16 w (List.length stats);
    List.iter
      (fun fs ->
        w_pattern w fs.fs_pattern;
        w_u32 w fs.fs_priority;
        w_i32 w fs.fs_cookie;
        w_group w fs.fs_actions;
        w_u64 w (Int64.of_int fs.fs_packets);
        w_u64 w (Int64.of_int fs.fs_bytes))
      stats
  | Stats_reply (Port_stats_reply stats) ->
    w_u8 w 1;
    w_u16 w (List.length stats);
    List.iter
      (fun ps ->
        w_u16 w ps.pstat_port;
        w_u64 w (Int64.of_int ps.rx_packets);
        w_u64 w (Int64.of_int ps.tx_packets);
        w_u64 w (Int64.of_int ps.rx_bytes);
        w_u64 w (Int64.of_int ps.tx_bytes);
        w_u64 w (Int64.of_int ps.drops))
      stats
  | Stats_reply (Table_stats_reply ts) ->
    w_u8 w 2;
    w_u64 w (Int64.of_int ts.active_rules);
    w_u64 w (Int64.of_int ts.table_hits);
    w_u64 w (Int64.of_int ts.table_misses);
    w_u64 w (Int64.of_int ts.cache_hits);
    w_u64 w (Int64.of_int ts.cache_misses);
    w_u64 w (Int64.of_int ts.cache_invalidations);
    w_u64 w (Int64.of_int ts.classifier_probes);
    w_u64 w (Int64.of_int ts.classifier_shapes)

(* reserve the 8-byte header, write the body, patch the header with the
   measured length *)
let write_frame w ~xid msg =
  let start = w.pos in
  ensure w 8;
  w.pos <- start + 8;
  w_body w msg;
  let len = w.pos - start in
  if len > 0xffff then fail "message too long (%d bytes)" len;
  let b = w.buf in
  Bytes.unsafe_set b start (Char.unsafe_chr version);
  Bytes.unsafe_set b (start + 1) (Char.unsafe_chr (type_code msg));
  Bytes.unsafe_set b (start + 2) (Char.unsafe_chr (len lsr 8));
  Bytes.unsafe_set b (start + 3) (Char.unsafe_chr (len land 0xff));
  Bytes.unsafe_set b (start + 4) (Char.unsafe_chr ((xid lsr 24) land 0xff));
  Bytes.unsafe_set b (start + 5) (Char.unsafe_chr ((xid lsr 16) land 0xff));
  Bytes.unsafe_set b (start + 6) (Char.unsafe_chr ((xid lsr 8) land 0xff));
  Bytes.unsafe_set b (start + 7) (Char.unsafe_chr (xid land 0xff))

(** [encode ~xid msg] frames [msg] into wire bytes. *)
let encode ~xid msg =
  let w = Domain.DLS.get writer_key in
  w.pos <- 0;
  write_frame w ~xid msg;
  Bytes.sub w.buf 0 w.pos

(** [encode_batch msgs] frames each [(xid, msg)] and concatenates the
    frames into one transmission; {!decode_all} is the inverse.  A batch
    of one is byte-identical to {!encode}. *)
let encode_batch msgs =
  let w = Domain.DLS.get writer_key in
  w.pos <- 0;
  List.iter (fun (xid, msg) -> write_frame w ~xid msg) msgs;
  Bytes.sub w.buf 0 w.pos

(** Number of framed messages in [data], by walking the length fields
    (malformed tails count as one frame; {!decode_all} reports them). *)
let frame_count data =
  let n = Bytes.length data in
  let rec go pos count =
    if pos + 8 > n then if pos < n then count + 1 else count
    else
      let len = Bits.get_u16 data (pos + 2) in
      if len < 8 then count + 1
      else go (pos + len) (count + 1)
  in
  go 0 0

(* ------------------------------------------------------------------ *)
(* Decoding: cursor over bytes; [limit] bounds the current frame *)

type cursor = { data : bytes; mutable pos : int; mutable limit : int }

let need c n =
  if c.pos + n > c.limit then
    fail "truncated message at offset %d (want %d bytes)" c.pos n

let r8 c = need c 1; let v = Bits.get_u8 c.data c.pos in c.pos <- c.pos + 1; v
let r16 c = need c 2; let v = Bits.get_u16 c.data c.pos in c.pos <- c.pos + 2; v
let r32 c = need c 4; let v = Bits.get_u32 c.data c.pos in c.pos <- c.pos + 4; v
let r48 c = need c 6; let v = Bits.get_u48 c.data c.pos in c.pos <- c.pos + 6; v
let r64 c = need c 8; let v = Bits.get_u64 c.data c.pos in c.pos <- c.pos + 8; v

let r64i c =
  let v = r64 c in
  if Int64.compare v (Int64.of_int max_int) > 0 then fail "u64 overflows int";
  Int64.to_int v

let ri32 c =
  let v = r32 c in
  if v land 0x80000000 <> 0 then v - (1 lsl 32) else v

let rstring c =
  let n = r16 c in
  need c n;
  let s = Bytes.sub_string c.data c.pos n in
  c.pos <- c.pos + n;
  s

let rtimeout c =
  let v = r32 c in
  if v = no_timeout then None else Some (float_of_int v /. 1000.0)

let rpattern c : Flow.Pattern.t =
  let mask = r16 c in
  let has i = mask land (1 lsl i) <> 0 in
  let opt i v = if has i then Some v else None in
  let in_port = r16 c in
  let eth_src = r48 c in
  let eth_dst = r48 c in
  let eth_type = r16 c in
  let vlan = r16 c in
  let ip_proto = r16 c in
  let src = r32 c in
  let src_len = r8 c in
  let dst = r32 c in
  let dst_len = r8 c in
  let tp_src = r16 c in
  let tp_dst = r16 c in
  { in_port = opt 0 in_port;
    eth_src = opt 1 eth_src;
    eth_dst = opt 2 eth_dst;
    eth_type = opt 3 eth_type;
    vlan = opt 4 vlan;
    ip_proto = opt 5 ip_proto;
    (* a corrupted frame must surface as [Wire_error], not as
       [Prefix.make]'s own [Invalid_argument] *)
    ip4_src =
      (if has 6 then
         if src_len > 32 then fail "ip4_src prefix length %d" src_len
         else Some (Packet.Ipv4.Prefix.make src src_len)
       else None);
    ip4_dst =
      (if has 7 then
         if dst_len > 32 then fail "ip4_dst prefix length %d" dst_len
         else Some (Packet.Ipv4.Prefix.make dst dst_len)
       else None);
    tp_src = opt 8 tp_src;
    tp_dst = opt 9 tp_dst }

let field_of_index i =
  match List.find_opt (fun f -> Packet.Fields.index f = i) Packet.Fields.all with
  | Some f -> f
  | None -> fail "unknown field index %d" i

let ratom c : Flow.Action.atom =
  match r8 c with
  | 0 -> Output (Physical (r32 c))
  | 1 -> Output In_port_out
  | 2 -> Output Flood
  | 3 -> Output Controller
  | 4 ->
    let f = field_of_index (r8 c) in
    let v = r64i c in
    Set_field (f, v)
  | n -> fail "unknown action tag %d" n

let rseq c : Flow.Action.seq =
  let n = r16 c in
  List.init n (fun _ -> ratom c)

let rgroup c : Flow.Action.group =
  let n = r16 c in
  List.init n (fun _ -> rseq c)

let rpayload c : payload =
  let switch = r32 c in
  let in_port = r16 c in
  let eth_src = r48 c in
  let eth_dst = r48 c in
  let eth_type = r16 c in
  let vlan = r16 c in
  let ip_proto = r8 c in
  let ip4_src = r32 c in
  let ip4_dst = r32 c in
  let tp_src = r16 c in
  let tp_dst = r16 c in
  let size = r16 c in
  let tag = r32 c in
  { headers =
      { switch; in_port; eth_src; eth_dst; eth_type; vlan; ip_proto;
        ip4_src; ip4_dst; tp_src; tp_dst };
    size; tag }

let rbody code c =
  match code with
  | 0 -> Hello
  | 2 -> Echo_request (rstring c)
  | 3 -> Echo_reply (rstring c)
  | 5 -> Features_request
  | 6 ->
    let datapath_id = r32 c in
    let n = r16 c in
    Features_reply { datapath_id; port_list = List.init n (fun _ -> r16 c) }
  | 10 ->
    let in_port = r16 c in
    let reason = match r8 c with 0 -> No_match | _ -> Explicit_send in
    Packet_in { in_port; reason; packet = rpayload c }
  | 11 ->
    let fr_pattern = rpattern c in
    let fr_priority = r32 c in
    let fr_cookie = ri32 c in
    let fr_reason =
      match r8 c with
      | 0 -> Idle_timeout_expired
      | 1 -> Hard_timeout_expired
      | _ -> Deleted_by_controller
    in
    let fr_packets = r64i c in
    let fr_bytes = r64i c in
    Flow_removed
      { fr_pattern; fr_priority; fr_cookie; fr_reason; fr_packets; fr_bytes }
  | 12 ->
    let ps_port = r16 c in
    let ps_reason = match r8 c with 0 -> Port_up | _ -> Port_down in
    Port_status { ps_port; ps_reason }
  | 13 ->
    let out_in_port = r16 c in
    let out_actions = rseq c in
    Packet_out { out_in_port; out_actions; out_packet = rpayload c }
  | 14 ->
    let command =
      match r8 c with
      | 0 -> Add_flow
      | 1 -> Modify_flow
      | 2 -> Delete_flow
      | 3 -> Delete_strict_flow
      | n -> fail "unknown flow_mod command %d" n
    in
    let fm_priority = r32 c in
    let fm_pattern = rpattern c in
    let fm_cookie = ri32 c in
    let notify_when_removed = r8 c = 1 in
    let idle_timeout = rtimeout c in
    let hard_timeout = rtimeout c in
    let fm_actions = rgroup c in
    Flow_mod
      { command; fm_priority; fm_pattern; fm_actions; idle_timeout;
        hard_timeout; fm_cookie; notify_when_removed }
  | 16 ->
    (match r8 c with
     | 0 -> Stats_request (Flow_stats_request (rpattern c))
     | 1 ->
       let has = r8 c in
       Stats_request
         (Port_stats_request (if has = 1 then Some (r16 c) else None))
     | 2 -> Stats_request Table_stats_request
     | n -> fail "unknown stats_request subtype %d" n)
  | 17 ->
    (match r8 c with
     | 0 ->
       let n = r16 c in
       let stats =
         List.init n (fun _ ->
           let fs_pattern = rpattern c in
           let fs_priority = r32 c in
           let fs_cookie = ri32 c in
           let fs_actions = rgroup c in
           let fs_packets = r64i c in
           let fs_bytes = r64i c in
           { fs_pattern; fs_priority; fs_cookie; fs_actions; fs_packets;
             fs_bytes })
       in
       Stats_reply (Flow_stats_reply stats)
     | 1 ->
       let n = r16 c in
       let stats =
         List.init n (fun _ ->
           let pstat_port = r16 c in
           let rx_packets = r64i c in
           let tx_packets = r64i c in
           let rx_bytes = r64i c in
           let tx_bytes = r64i c in
           let drops = r64i c in
           { pstat_port; rx_packets; tx_packets; rx_bytes; tx_bytes; drops })
       in
       Stats_reply (Port_stats_reply stats)
     | 2 ->
       let active_rules = r64i c in
       let table_hits = r64i c in
       let table_misses = r64i c in
       let cache_hits = r64i c in
       let cache_misses = r64i c in
       let cache_invalidations = r64i c in
       let classifier_probes = r64i c in
       let classifier_shapes = r64i c in
       Stats_reply
         (Table_stats_reply
            { active_rules; table_hits; table_misses; cache_hits;
              cache_misses; cache_invalidations; classifier_probes;
              classifier_shapes })
     | n -> fail "unknown stats_reply subtype %d" n)
  | 18 -> Barrier_request
  | 19 -> Barrier_reply
  | 20 -> Fence (r32 c)
  | n -> fail "unknown message type %d" n

(** [decode bytes] parses one framed message, returning [(xid, msg)].
    @raise Wire_error on malformed input or trailing garbage. *)
let decode data =
  let c = { data; pos = 0; limit = Bytes.length data } in
  let v = r8 c in
  if v <> version then fail "bad version %d" v;
  let code = r8 c in
  let len = r16 c in
  if len <> Bytes.length data then
    fail "length field %d does not match buffer %d" len (Bytes.length data);
  let xid = r32 c in
  let msg = rbody code c in
  if c.pos <> Bytes.length data then fail "trailing bytes after message";
  (xid, msg)

(** [decode_all bytes] parses a batch of concatenated frames (see
    {!encode_batch}) in order; a single frame decodes as a one-element
    list.  Each frame is bounded by its own length field, so a message
    body can never read into the next frame.
    @raise Wire_error on malformed input. *)
let decode_all data =
  let total = Bytes.length data in
  let c = { data; pos = 0; limit = total } in
  let rec go acc =
    if c.pos = total then List.rev acc
    else begin
      let start = c.pos in
      c.limit <- total;
      let v = r8 c in
      if v <> version then fail "bad version %d" v;
      let code = r8 c in
      let len = r16 c in
      if len < 8 || start + len > total then
        fail "length field %d does not match buffer %d" len (total - start);
      c.limit <- start + len;
      let xid = r32 c in
      let msg = rbody code c in
      if c.pos <> c.limit then fail "trailing bytes after message";
      go ((xid, msg) :: acc)
    end
  in
  go []
