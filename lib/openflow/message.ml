(** Control-channel messages between the controller and switches, modeled
    on OpenFlow 1.0.  Every message travels with a transaction id ([xid]);
    {!Wire} provides the binary framing.

    Packet payloads on the control channel (packet-in / packet-out) carry
    the flat {!Packet.Headers.t} view plus the original size and an opaque
    tag, which is exactly the state the simulated dataplane attaches to a
    packet in flight. *)

type payload = {
  headers : Packet.Headers.t;
  size : int;  (** original frame size in bytes *)
  tag : int;   (** opaque correlation tag (e.g. ping id) *)
}

type packet_in_reason =
  | No_match       (** table miss *)
  | Explicit_send  (** an [Output Controller] action fired *)

type packet_in = {
  in_port : int;
  reason : packet_in_reason;
  packet : payload;
}

type packet_out = {
  out_in_port : int;  (** ingress port context for [In_port_out]/[Flood] *)
  out_actions : Flow.Action.seq;
  out_packet : payload;
}

type flow_mod_command =
  | Add_flow
  | Modify_flow        (** replace actions of matching rules, add if absent *)
  | Delete_flow        (** remove rules subsumed by the pattern *)
  | Delete_strict_flow (** remove exactly the (priority, pattern) rule *)

type flow_mod = {
  command : flow_mod_command;
  fm_priority : int;
  fm_pattern : Flow.Pattern.t;
  fm_actions : Flow.Action.group;
  idle_timeout : float option;
  hard_timeout : float option;
  fm_cookie : int;
  notify_when_removed : bool;
}

let add_flow ?(priority = 0) ?(idle_timeout = None) ?(hard_timeout = None)
    ?(cookie = 0) ?(notify_when_removed = false) ~pattern ~actions () =
  { command = Add_flow; fm_priority = priority; fm_pattern = pattern;
    fm_actions = actions; idle_timeout; hard_timeout; fm_cookie = cookie;
    notify_when_removed }

let delete_flow ?(cookie = None) ~pattern () =
  { command = Delete_flow; fm_priority = 0; fm_pattern = pattern;
    fm_actions = []; idle_timeout = None; hard_timeout = None;
    fm_cookie = (match cookie with None -> -1 | Some c -> c);
    notify_when_removed = false }

let delete_strict_flow ?(cookie = None) ~priority ~pattern () =
  { command = Delete_strict_flow; fm_priority = priority;
    fm_pattern = pattern; fm_actions = []; idle_timeout = None;
    hard_timeout = None;
    fm_cookie = (match cookie with None -> -1 | Some c -> c);
    notify_when_removed = false }

type port_status_reason =
  | Port_up
  | Port_down

type port_status = { ps_port : int; ps_reason : port_status_reason }

type flow_removed_reason =
  | Idle_timeout_expired
  | Hard_timeout_expired
  | Deleted_by_controller

type flow_removed = {
  fr_pattern : Flow.Pattern.t;
  fr_priority : int;
  fr_cookie : int;
  fr_reason : flow_removed_reason;
  fr_packets : int;
  fr_bytes : int;
}

type features_reply = {
  datapath_id : int;
  port_list : int list;  (** ports that carry links *)
}

type stats_request =
  | Flow_stats_request of Flow.Pattern.t   (** stats of rules subsumed by the pattern *)
  | Port_stats_request of int option       (** one port, or all when [None] *)
  | Table_stats_request

type flow_stat = {
  fs_pattern : Flow.Pattern.t;
  fs_priority : int;
  fs_cookie : int;
  fs_actions : Flow.Action.group;
      (** the rule's installed actions — a stats snapshot must let the
          controller detect action drift, not just missing/extra rules
          (selective resync diffs on it) *)
  fs_packets : int;
  fs_bytes : int;
}

type port_stat = {
  pstat_port : int;
  mutable rx_packets : int;
  mutable tx_packets : int;
  mutable rx_bytes : int;
  mutable tx_bytes : int;
  mutable drops : int;
}

type table_stat = {
  active_rules : int;
  table_hits : int;
  table_misses : int;
  cache_hits : int;          (** exact-match flow-cache hits *)
  cache_misses : int;        (** flow-cache misses (fell to the classifier) *)
  cache_invalidations : int; (** generation bumps from table mutations *)
  classifier_probes : int;   (** tuple-space shape-table probes *)
  classifier_shapes : int;   (** distinct pattern shapes in the table *)
}

type stats_reply =
  | Flow_stats_reply of flow_stat list
  | Port_stats_reply of port_stat list
  | Table_stats_reply of table_stat

type t =
  | Hello
  | Echo_request of string
  | Echo_reply of string
  | Features_request
  | Features_reply of features_reply
  | Packet_in of packet_in
  | Packet_out of packet_out
  | Flow_mod of flow_mod
  | Port_status of port_status
  | Flow_removed of flow_removed
  | Stats_request of stats_request
  | Stats_reply of stats_reply
  | Barrier_request
  | Barrier_reply
  | Fence of int
      (** leader-lease fencing token (see {!Controller.Replica}): prefixes
          a flow-mod batch with the sender's lease epoch.  A switch
          remembers the highest token it has seen and rejects flow-mods
          in any delivery fenced with a lower one, so a deposed leader's
          writes cannot land after a failover.  A strictly higher token
          also resets the switch's flow-mod xid dedup — each epoch is a
          fresh reliable stream. *)

let type_name = function
  | Hello -> "hello"
  | Echo_request _ -> "echo_request"
  | Echo_reply _ -> "echo_reply"
  | Features_request -> "features_request"
  | Features_reply _ -> "features_reply"
  | Packet_in _ -> "packet_in"
  | Packet_out _ -> "packet_out"
  | Flow_mod _ -> "flow_mod"
  | Port_status _ -> "port_status"
  | Flow_removed _ -> "flow_removed"
  | Stats_request _ -> "stats_request"
  | Stats_reply _ -> "stats_reply"
  | Barrier_request -> "barrier_request"
  | Barrier_reply -> "barrier_reply"
  | Fence _ -> "fence"

let pp fmt t = Format.pp_print_string fmt (type_name t)
