(** Monitoring app: periodically polls port and table counters from
    every switch, maintaining per-port time series (from which link
    utilization and loss are derived) and the latest table statistics —
    including the dataplane flow-cache hit/miss/invalidation counters.
    The poll loop runs on simulated time via the controller context. *)

type port_key = { m_switch : int; m_port : int }

type t = {
  app : Api.app;
  period : float;
  (* (switch, port) -> cumulative tx-bytes series *)
  tx_series : (port_key, Util.Stats.Series.t) Hashtbl.t;
  drops : (port_key, int) Hashtbl.t;
  (* switch -> latest table stats (incl. flow-cache counters) *)
  tables : (int, Openflow.Message.table_stat) Hashtbl.t;
  mutable polls : int;
  (* liveness observations (populated when the runtime runs with
     resilience): switches currently believed down, and the recovery
     durations seen when they came back *)
  polling : (int, unit) Hashtbl.t;
  down_at : (int, float) Hashtbl.t;
  mutable down_events : int;
  mutable recoveries : float list;
}

let series t key =
  match Hashtbl.find_opt t.tx_series key with
  | Some s -> s
  | None ->
    let s = Util.Stats.Series.create () in
    Hashtbl.replace t.tx_series key s;
    s

let record t ~time (ps : Openflow.Message.port_stat) ~switch_id =
  let key = { m_switch = switch_id; m_port = ps.pstat_port } in
  Util.Stats.Series.add (series t key) ~time ~value:(float_of_int ps.tx_bytes);
  Hashtbl.replace t.drops key ps.drops

let create ?(period = 0.5) () =
  let t_ref = ref None in
  let get () = Option.get !t_ref in
  let rec poll ctx ~switch_id =
    let t = get () in
    Api.request_stats ctx ~switch_id
      (Openflow.Message.Port_stats_request None)
      (fun reply ->
        match reply with
        | Openflow.Message.Port_stats_reply stats ->
          t.polls <- t.polls + 1;
          List.iter (record t ~time:(Api.time ctx) ~switch_id) stats
        | Openflow.Message.Flow_stats_reply _
        | Openflow.Message.Table_stats_reply _ -> ());
    Api.request_stats ctx ~switch_id Openflow.Message.Table_stats_request
      (fun reply ->
        match reply with
        | Openflow.Message.Table_stats_reply ts ->
          Hashtbl.replace t.tables switch_id ts
        | Openflow.Message.Port_stats_reply _
        | Openflow.Message.Flow_stats_reply _ -> ());
    Api.schedule ctx ~delay:t.period (fun () -> poll ctx ~switch_id)
  in
  let switch_up ctx ~switch_id ~ports:_ =
    let t = get () in
    (match Hashtbl.find_opt t.down_at switch_id with
     | Some since ->
       (* the switch re-handshook: record how long it was out *)
       t.recoveries <- (Api.time ctx -. since) :: t.recoveries;
       Hashtbl.remove t.down_at switch_id
     | None -> ());
    (* one poll loop per switch, however many times it re-handshakes *)
    if not (Hashtbl.mem t.polling switch_id) then begin
      Hashtbl.replace t.polling switch_id ();
      Api.schedule ctx ~delay:t.period (fun () -> poll ctx ~switch_id)
    end
  in
  let switch_down ctx ~switch_id =
    let t = get () in
    t.down_events <- t.down_events + 1;
    if not (Hashtbl.mem t.down_at switch_id) then
      Hashtbl.replace t.down_at switch_id (Api.time ctx)
  in
  let app = { (Api.default_app "monitor") with switch_up; switch_down } in
  let t =
    { app; period; tx_series = Hashtbl.create 64; drops = Hashtbl.create 64;
      tables = Hashtbl.create 16; polls = 0;
      polling = Hashtbl.create 16; down_at = Hashtbl.create 16;
      down_events = 0; recoveries = [] }
  in
  t_ref := Some t;
  t

let app t = t.app
let polls t = t.polls

(** Switch-down declarations observed (via the runtime's keepalive
    loop; always 0 without resilience). *)
let down_events t = t.down_events

(** Observed down → re-handshake durations, newest first. *)
let recoveries t = t.recoveries

(** Recovery-time percentiles [(p50, p95, p99)] over every observed
    switch outage; [None] before the first recovery. *)
let recovery_percentiles t =
  match t.recoveries with
  | [] -> None
  | rs ->
    Some
      (Util.Stats.percentile rs 50.0, Util.Stats.percentile rs 95.0,
       Util.Stats.percentile rs 99.0)

(** Latest table statistics seen for [switch_id], if any poll completed. *)
let table_stat t ~switch_id = Hashtbl.find_opt t.tables switch_id

(** Network-wide flow-cache totals across every polled switch:
    [(cache hits, cache misses, invalidations)]. *)
let cache_summary t =
  Hashtbl.fold
    (fun _ (ts : Openflow.Message.table_stat) (h, m, i) ->
      (h + ts.cache_hits, m + ts.cache_misses, i + ts.cache_invalidations))
    t.tables (0, 0, 0)

(** Network-wide tuple-space classifier totals across every polled
    switch: [(shape-table probes, distinct shapes)].  Probes per cache
    miss ≈ probes / cache misses; shapes bound that cost per switch. *)
let classifier_summary t =
  Hashtbl.fold
    (fun _ (ts : Openflow.Message.table_stat) (p, s) ->
      (p + ts.classifier_probes, s + ts.classifier_shapes))
    t.tables (0, 0)

(** Average transmit rate (bytes/s) observed on a port over the whole
    monitoring window; 0 when unobserved. *)
let tx_rate t ~switch_id ~port =
  match Hashtbl.find_opt t.tx_series { m_switch = switch_id; m_port = port } with
  | None -> 0.0
  | Some s -> Util.Stats.Series.rate s

(** Utilization in [0, 1] of the link leaving [switch_id] via [port],
    relative to its capacity in the topology. *)
let utilization t net ~switch_id ~port =
  match
    Topo.Topology.link_via
      (Dataplane.Network.topology net)
      (Topo.Topology.Node.Switch switch_id) port
  with
  | None -> 0.0
  | Some l -> tx_rate t ~switch_id ~port *. 8.0 /. l.capacity

(** Most-utilized links first: [(switch, port, utilization)]. *)
let hot_links t net =
  Hashtbl.fold
    (fun key _ acc ->
      (key.m_switch, key.m_port,
       utilization t net ~switch_id:key.m_switch ~port:key.m_port)
      :: acc)
    t.tx_series []
  |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
