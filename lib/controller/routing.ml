(** Proactive shortest-path routing with failover — the canonical
    {e proactive} app.

    On startup the app compiles the network-wide destination-based
    routing policy ({!Netkat.Builder.routing_policy}) and pushes every
    switch's table.  On a port-status change it recomputes the policy
    over the surviving topology and replaces the tables, counting the
    rule churn (E5 measures convergence from these numbers). *)

type t = {
  app : Api.app;
  cookie : int;
  incremental : bool;            (* delta updates instead of full re-push *)
  mutable installs : int;        (* rules pushed over the lifetime *)
  mutable reinstalls : int;      (* recomputation rounds *)
  mutable last_churn : int;      (* flow-mods issued by the last round *)
  mutable last_recompute : float;
  mutable rules_per_switch : (int * int) list;
  (* what we believe each switch's table holds (for diffing) *)
  installed : (int, Netkat.Local.rule list) Hashtbl.t;
  use_ip : bool;
}

(* flow-mods needed to turn [old_rules] into [new_rules]: adds/modifies
   for new or changed (priority, pattern) keys, strict deletes for
   vanished ones *)
let diff_rules old_rules new_rules =
  let key (r : Netkat.Local.rule) = (r.priority, r.pattern) in
  let old_tbl = Hashtbl.create 32 in
  List.iter (fun r -> Hashtbl.replace old_tbl (key r) r) old_rules;
  let adds =
    List.filter
      (fun (r : Netkat.Local.rule) ->
        match Hashtbl.find_opt old_tbl (key r) with
        | Some old -> old.actions <> r.actions
        | None -> true)
      new_rules
  in
  let new_keys = Hashtbl.create 32 in
  List.iter (fun r -> Hashtbl.replace new_keys (key r) ()) new_rules;
  let deletes =
    List.filter (fun r -> not (Hashtbl.mem new_keys (key r))) old_rules
  in
  (adds, deletes)

let push_tables t ctx =
  let topo = Api.topology ctx in
  let pol =
    if t.use_ip then Netkat.Builder.ip_routing_policy topo
    else Netkat.Builder.routing_policy topo
  in
  let fdd = Netkat.Fdd.of_policy pol in
  let churn = ref 0 in
  let per_switch = ref [] in
  (* per-switch compilation fans out over the domain pool; the installs
     below stay on this domain (the control channel is not thread-safe) *)
  let compiled =
    Netkat.Local.rules_of_fdd_all ~switches:(Topo.Topology.switch_ids topo)
      fdd
  in
  List.iter
    (fun (switch_id, rules) ->
      let previous = Hashtbl.find_opt t.installed switch_id in
      (match (t.incremental, previous) with
       | true, Some old_rules ->
         (* the delta — adds then strict deletes — rides as one batch *)
         let adds, deletes = diff_rules old_rules rules in
         let msgs =
           List.map
             (fun (r : Netkat.Local.rule) ->
               incr churn;
               Openflow.Message.Flow_mod
                 (Openflow.Message.add_flow ~priority:r.priority
                    ~cookie:t.cookie ~pattern:r.pattern ~actions:r.actions ()))
             adds
           @ List.map
               (fun (r : Netkat.Local.rule) ->
                 incr churn;
                 Openflow.Message.Flow_mod
                   (Openflow.Message.delete_strict_flow
                      ~cookie:(Some t.cookie) ~priority:r.priority
                      ~pattern:r.pattern ()))
               deletes
         in
         if msgs <> [] then
           ctx.Api.send_batch ~switch_id
             (msgs @ [ Openflow.Message.Barrier_request ])
       | _ ->
         Api.install_rules ctx ~switch_id ~cookie:t.cookie ~replace:true
           (List.map
              (fun (r : Netkat.Local.rule) ->
                incr churn;
                (r.priority, r.pattern, r.actions))
              rules));
      Hashtbl.replace t.installed switch_id rules;
      per_switch := (switch_id, List.length rules) :: !per_switch)
    compiled;
  t.installs <- t.installs + !churn;
  t.last_churn <- !churn;
  t.reinstalls <- t.reinstalls + 1;
  t.last_recompute <- Api.time ctx;
  t.rules_per_switch <- List.rev !per_switch

let create ?(use_ip = false) ?(incremental = false) ?(cookie = 0x0e) () =
  let t_ref = ref None in
  let get () = Option.get !t_ref in
  let installed = ref false in
  let switch_up ctx ~switch_id:_ ~ports:_ =
    (* push all tables once, when the first switch comes up; later
       switch_up events see tables already present *)
    if not !installed then begin
      installed := true;
      push_tables (get ()) ctx
    end
  in
  let port_status ctx ~switch_id:_ ~port:_ ~up:_ =
    (* link state changed: recompute routes over the surviving graph.
       Both endpoints of a link report at the same instant — debounce so
       one failure triggers one recomputation. *)
    let t = get () in
    if t.reinstalls = 0 || Api.time ctx > t.last_recompute then
      push_tables t ctx
  in
  let app = { (Api.default_app "routing") with switch_up; port_status } in
  let t =
    { app; cookie; incremental; installs = 0; reinstalls = 0; last_churn = 0;
      last_recompute = 0.0; rules_per_switch = [];
      installed = Hashtbl.create 16; use_ip }
  in
  t_ref := Some t;
  t

let app t = t.app
let installs t = t.installs
let reinstalls t = t.reinstalls
let last_churn t = t.last_churn
let rules_per_switch t = t.rules_per_switch
