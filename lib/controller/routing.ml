(** Proactive shortest-path routing with failover — the canonical
    {e proactive} app.

    On startup the app compiles the network-wide destination-based
    routing policy ({!Netkat.Builder.routing_policy}) and pushes every
    switch's table.  On a port-status change it recomputes the policy
    over the surviving topology and replaces the tables, counting the
    rule churn (E5 measures convergence from these numbers).

    A [switch_down] report (the resilient runtime's keepalive verdict)
    is treated as a topology event too: the dead switch's links are
    excluded from the next compile, so traffic reroutes around the
    crash instead of blackholing until an unrelated link flap forces a
    recompute.  When the switch re-handshakes it rejoins the topology
    and a fresh recompute restores its table. *)

type t = {
  app : Api.app;
  cookie : int;
  incremental : bool;            (* delta updates instead of full re-push *)
  mutable installs : int;        (* rules pushed over the lifetime *)
  mutable reinstalls : int;      (* recomputation rounds *)
  mutable last_churn : int;      (* flow-mods issued by the last round *)
  mutable last_recompute : float;
  mutable recompute_pending : bool;  (* a coalesced recompute is scheduled *)
  mutable repushes : int;            (* single-switch re-pushes on repeat
                                        switch_up (post-crash re-handshake) *)
  mutable rules_per_switch : (int * int) list;
  (* what we believe each live switch's table holds: per-switch uid
     certificates + rule lists from the last compile (for uid-skipping,
     diffing, and crash re-pushes) *)
  mutable snap : Netkat.Delta.snapshot option;
  mutable skipped : int;  (* switches skipped as unchanged over the lifetime *)
  (* switches that have announced themselves at least once — a second
     announcement is a re-handshake *)
  seen : (int, unit) Hashtbl.t;
  (* switches reported down by the runtime's keepalive: compiled around
     (their links are failed on a topology copy) until they re-handshake *)
  dead : (int, unit) Hashtbl.t;
  mutable reroutes : int;  (* recomputes triggered by switch_down *)
  use_ip : bool;
}

let push_tables t ctx =
  let live_topo = Api.topology ctx in
  (* a dead switch is compiled around: fail its links on a copy so BFS
     routes avoid it (the live topology keeps ground truth — the switch
     may still be forwarding, e.g. under a control-channel partition) *)
  let topo =
    if Hashtbl.length t.dead = 0 then live_topo
    else begin
      let c = Topo.Topology.copy live_topo in
      Hashtbl.iter
        (fun id () -> Topo.Topology.fail_node c (Topo.Topology.Node.Switch id))
        t.dead;
      c
    end
  in
  let pol =
    if t.use_ip then Netkat.Builder.ip_routing_policy topo
    else Netkat.Builder.routing_policy topo
  in
  let fdd = Netkat.Fdd.of_policy pol in
  let churn = ref 0 in
  let per_switch = ref [] in
  (* per-switch compilation (uid-certification + rederivation of the
     changed switches) fans out over the domain pool inside
     Delta.compile; the installs below stay on this domain (the control
     channel is not thread-safe).  Dead switches get no push: they are
     excluded from the compile, so their snapshot entry is dropped —
     recovery re-enters them via a fresh recompute, which sees no entry
     and full-replaces their table. *)
  let switches =
    List.filter
      (fun id -> not (Hashtbl.mem t.dead id))
      (Topo.Topology.switch_ids topo)
  in
  let previous = if t.incremental then t.snap else None in
  let result = Netkat.Delta.compile ~switches previous fdd in
  t.snap <- Some result.snapshot;
  t.skipped <- t.skipped + result.skipped;
  List.iter
    (fun (switch_id, change) ->
      (match (change : Netkat.Delta.change) with
       | Netkat.Delta.Unchanged -> ()
       | Netkat.Delta.Changed { rules; adds; deletes } ->
         (match previous with
          | Some p when Netkat.Delta.find p switch_id <> None ->
            (* the delta — adds then strict deletes — rides as one batch *)
            churn := !churn + List.length adds + List.length deletes;
            Api.apply_delta ctx ~switch_id ~cookie:t.cookie ~adds ~deletes ()
          | _ ->
            (* full mode, or a switch we never programmed (first contact,
               or rejoining after a crash): full table replacement *)
            Api.install_rules ctx ~switch_id ~cookie:t.cookie ~replace:true
              (List.map
                 (fun (r : Netkat.Local.rule) ->
                   incr churn;
                   (r.priority, r.pattern, r.actions))
                 rules)));
      let n =
        match Netkat.Delta.find result.snapshot switch_id with
        | Some rules -> List.length rules
        | None -> 0
      in
      per_switch := (switch_id, n) :: !per_switch)
    result.changes;
  t.installs <- t.installs + !churn;
  t.last_churn <- !churn;
  t.reinstalls <- t.reinstalls + 1;
  t.last_recompute <- Api.time ctx;
  t.rules_per_switch <- List.rev !per_switch

let create ?(use_ip = false) ?(incremental = false) ?(cookie = 0x0e) () =
  let t_ref = ref None in
  let get () = Option.get !t_ref in
  let installed = ref false in
  (* coalesced per instant: schedule one zero-delay recompute that runs
     after the instant's remaining events and sees the final topology +
     dead set.  (Comparing times instead would drop a second distinct
     failure landing at the same instant and recompute over a stale
     graph.) *)
  let schedule_recompute t ctx =
    if not t.recompute_pending then begin
      t.recompute_pending <- true;
      Api.schedule ctx ~delay:0.0 (fun () ->
        t.recompute_pending <- false;
        push_tables t ctx)
    end
  in
  let switch_up ctx ~switch_id ~ports:_ =
    (* push all tables once, when the first switch comes up; a {e
       repeat} switch_up for a known switch is a re-handshake after a
       crash — its table is empty, so re-push that switch's rules as a
       full replacement *)
    let t = get () in
    let repeat = Hashtbl.mem t.seen switch_id in
    Hashtbl.replace t.seen switch_id ();
    let was_dead = Hashtbl.mem t.dead switch_id in
    if was_dead then begin
      (* the switch rejoins the topology: routes were computed around it,
         so its [installed] entry is stale — recompute everything (the
         runtime's resync already reconciled its table to the shadow; the
         recompute's mods ride the same ordered stream after it) *)
      Hashtbl.remove t.dead switch_id;
      schedule_recompute t ctx
    end;
    if not !installed then begin
      installed := true;
      push_tables t ctx
    end
    else if repeat && not was_dead then
      match Option.bind t.snap (fun s -> Netkat.Delta.find s switch_id) with
      | None -> ()  (* never compiled for it; the next recompute will *)
      | Some rules ->
        t.repushes <- t.repushes + 1;
        Api.install_rules ctx ~switch_id ~cookie:t.cookie ~replace:true
          (List.map
             (fun (r : Netkat.Local.rule) -> (r.priority, r.pattern, r.actions))
             rules)
  in
  let switch_down ctx ~switch_id =
    (* keepalive verdict from the resilient runtime: treat the switch as
       a failed node and reroute the surviving traffic around it *)
    let t = get () in
    if not (Hashtbl.mem t.dead switch_id) then begin
      Hashtbl.replace t.dead switch_id ();
      t.reroutes <- t.reroutes + 1;
      schedule_recompute t ctx
    end
  in
  let port_status ctx ~switch_id:_ ~port:_ ~up:_ =
    (* link state changed: recompute routes over the surviving graph *)
    let t = get () in
    schedule_recompute t ctx
  in
  let app =
    { (Api.default_app "routing") with switch_up; switch_down; port_status }
  in
  let t =
    { app; cookie; incremental; installs = 0; reinstalls = 0; last_churn = 0;
      last_recompute = 0.0; recompute_pending = false; repushes = 0;
      rules_per_switch = []; snap = None; skipped = 0;
      seen = Hashtbl.create 16; dead = Hashtbl.create 4; reroutes = 0;
      use_ip }
  in
  t_ref := Some t;
  t

let app t = t.app
let installs t = t.installs
let reinstalls t = t.reinstalls
let repushes t = t.repushes
let reroutes t = t.reroutes
let dead_switches t = Hashtbl.fold (fun id () acc -> id :: acc) t.dead []
let last_churn t = t.last_churn
let rules_per_switch t = t.rules_per_switch
let skipped_switches t = t.skipped
