(** Consistent network updates (Reitblatt et al.'s per-packet consistency,
    the mechanism behind congestion-free/loss-free update systems like
    zUpdate).

    The problem: replacing the rules of many switches is not atomic, so a
    packet in flight can be forwarded by a {e mix} of the old and new
    policy — transient loops, black holes or security violations that
    neither policy alone would produce.

    The classic fix implemented here is {e two-phase update with version
    stamping}: the VLAN id carries a configuration version.  Packets are
    stamped with the current version at their ingress switch, internal
    rules match only their own version, and the stamp is popped at the
    egress (host-facing) port.

    - {b phase 1}: install the new version's {e internal} rules everywhere
      (they match only the new tag, so live traffic is untouched);
    - {b phase 2}: after the installs have landed, flip the {e ingress}
      rules to stamp the new version — each packet is handled entirely by
      one version;
    - {b phase 3}: after a drain interval, delete the old version's rules.

    The cost is transient double table occupancy; {!peak_rules} reports it.
    {!naive} performs the inconsistent switch-by-switch replacement for
    comparison (experiment E9).

    Restriction: the managed policy must not itself use the [Vlan] field
    (it carries the version); {!Policy_uses_vlan} is raised otherwise. *)

open Netkat

exception Policy_uses_vlan

let rec pred_uses_vlan : Syntax.pred -> bool = function
  | True | False -> false
  | Test (f, _) -> Packet.Fields.equal f Packet.Fields.Vlan
  | And (a, b) | Or (a, b) -> pred_uses_vlan a || pred_uses_vlan b
  | Not a -> pred_uses_vlan a

let rec pol_uses_vlan : Syntax.pol -> bool = function
  | Filter p -> pred_uses_vlan p
  | Mod (f, _) -> Packet.Fields.equal f Packet.Fields.Vlan
  | Union (a, b) | Seq (a, b) -> pol_uses_vlan a || pol_uses_vlan b
  | Star a -> pol_uses_vlan a

(* predicate: the packet sits at a host-facing port (used both for
   ingress detection and for egress popping, since after forwarding the
   port field holds the output port) *)
let edge_pred topo =
  Topo.Topology.switches topo
  |> List.concat_map (fun sw ->
    let sw_id = Topo.Topology.Node.id sw in
    Topo.Topology.hosts_of_switch topo sw_id
    |> List.map (fun (_, port) ->
      Syntax.conj
        (Syntax.test Packet.Fields.Switch sw_id)
        (Syntax.test Packet.Fields.In_port port)))
  |> List.fold_left Syntax.disj Syntax.False

(** The version-[u] {e ingress} policy: packets entering from hosts are
    stamped [u], forwarded by [pol], and popped if they exit to a host on
    the same switch. *)
let ingress_part topo pol ~version =
  let edge = edge_pred topo in
  Syntax.big_seq
    [ Syntax.filter edge;
      Syntax.modify Packet.Fields.Vlan version;
      pol;
      Syntax.ite edge (Syntax.modify Packet.Fields.Vlan Packet.Fields.vlan_none)
        Syntax.id ]

(** The version-[u] {e internal} policy: packets already stamped [u]
    arriving from other switches.  No explicit edge exclusion is needed
    (or wanted): packets entering from hosts are untagged, so the version
    test alone excludes them — and an explicit [not edge] filter would
    compile to version-blind drop rules that shadow the other live
    version's ingress rules during a two-phase transition. *)
let internal_part topo pol ~version =
  let edge = edge_pred topo in
  Syntax.big_seq
    [ Syntax.filter (Syntax.test Packet.Fields.Vlan version);
      pol;
      Syntax.ite edge (Syntax.modify Packet.Fields.Vlan Packet.Fields.vlan_none)
        Syntax.id ]

type t = {
  drain : float;                 (** seconds before old rules are removed *)
  mutable version : int;
  mutable installs : int;        (** flow-mods issued over the lifetime *)
  mutable peak_rules : int;      (** max total rules observed installed *)
  mutable updates_done : int;
}

let create ?(drain = 0.5) () =
  { drain; version = 0; installs = 0; peak_rules = 0; updates_done = 0 }

let version t = t.version
let peak_rules t = t.peak_rules
let updates_done t = t.updates_done

let observe_occupancy t ctx =
  let total =
    List.fold_left
      (fun acc (sw : Dataplane.Network.switch) ->
        acc + Flow.Table.size sw.table)
      0
      (Dataplane.Network.switch_list ctx.Api.net)
  in
  if total > t.peak_rules then t.peak_rules <- total

(* Install the compiled rules of [part] on every switch.

   Correctness requirement: while two versions coexist, no rule of one
   version may catch the other version's packets.  The FDD encodes its
   negative constraints (e.g. "vlan <> u" fall-through drops) through
   intra-table shadowing, which breaks when two compiled tables are
   interleaved at different priority bases.  We therefore specialize the
   diagram to the vlan value its packets are known to carry ([only_vlan]:
   the version tag for internal parts, untagged for ingress parts) and
   stamp that value into every emitted pattern — making every single
   rule, including drops, version-specific. *)
let install_part t ctx part ~only_vlan ~cookie ~base =
  let topo = Api.topology ctx in
  let fdd = Fdd.restrict (Packet.Fields.Vlan, only_vlan) (Fdd.of_policy part) in
  (* compile every switch on the domain pool, then issue one batched
     transmission per switch (the control channel is not thread-safe) *)
  Local.rules_of_fdd_all ~switches:(Topo.Topology.switch_ids topo) fdd
  |> List.iter (fun (switch_id, rules) ->
    Api.install_rules ctx ~switch_id ~cookie
      (List.map
         (fun (r : Local.rule) ->
           t.installs <- t.installs + 1;
           (base + r.priority, { r.pattern with vlan = Some only_vlan },
            r.actions))
         rules))

let delete_version ctx ~cookie =
  List.iter
    (fun sw ->
      Api.uninstall ctx ~switch_id:(Topo.Topology.Node.id sw) ~cookie
        Flow.Pattern.any)
    (Topo.Topology.switches (Api.topology ctx))

(** [install t ctx pol] — initial installation of a versioned policy
    (version 1). @raise Policy_uses_vlan *)
let install t ctx pol =
  if pol_uses_vlan pol then raise Policy_uses_vlan;
  t.version <- t.version + 1;
  let topo = Api.topology ctx in
  let base = t.version * 10000 in
  install_part t ctx (internal_part topo pol ~version:t.version)
    ~only_vlan:t.version ~cookie:t.version ~base;
  install_part t ctx (ingress_part topo pol ~version:t.version)
    ~only_vlan:Packet.Fields.vlan_none ~cookie:t.version ~base:(base + 1000);
  Api.schedule ctx ~delay:0.05 (fun () -> observe_occupancy t ctx)

(** [two_phase t ctx pol] — per-packet-consistent transition to [pol].
    Phases are driven by simulated time; the transition completes (old
    rules gone) after roughly [2 * control latency + drain] seconds.
    @raise Policy_uses_vlan *)
let two_phase t ctx pol =
  if pol_uses_vlan pol then raise Policy_uses_vlan;
  let old_version = t.version in
  let new_version = t.version + 1 in
  t.version <- new_version;
  let topo = Api.topology ctx in
  let base = new_version * 10000 in
  (* phase 1: internal rules of the new version (invisible to old traffic) *)
  install_part t ctx (internal_part topo pol ~version:new_version)
    ~only_vlan:new_version ~cookie:new_version ~base;
  (* phase 2: once phase 1 has certainly landed (one control latency plus
     slack), flip ingress stamping; new ingress rules shadow the old ones
     by their higher priority base *)
  Api.schedule ctx ~delay:0.01 (fun () ->
    install_part t ctx (ingress_part topo pol ~version:new_version)
      ~only_vlan:Packet.Fields.vlan_none ~cookie:new_version
      ~base:(base + 1000);
    (* sample occupancy at its peak: both versions fully installed *)
    Api.schedule ctx ~delay:0.01 (fun () -> observe_occupancy t ctx);
    (* phase 3: drain, then garbage-collect the old version *)
    Api.schedule ctx ~delay:t.drain (fun () ->
      delete_version ctx ~cookie:old_version;
      t.updates_done <- t.updates_done + 1))

(** [naive t ctx ~prng ~max_jitter pol] — the inconsistent baseline:
    every switch's table is replaced independently (unversioned rules),
    each after a random delay in [0, max_jitter], emulating the
    asynchronous rollout of real deployments.  In-flight packets can see
    mixed old/new forwarding. *)
let naive t ctx ~prng ~max_jitter pol =
  let topo = Api.topology ctx in
  let fdd = Fdd.of_policy pol in
  t.updates_done <- t.updates_done + 1;
  Local.rules_of_fdd_all ~switches:(Topo.Topology.switch_ids topo) fdd
  |> List.iter (fun (switch_id, rules) ->
    let delay = Util.Prng.float prng max_jitter in
    Api.schedule ctx ~delay (fun () ->
      (* unscoped delete + replacement rules, one batch per switch *)
      let msgs =
        Openflow.Message.Flow_mod
          (Openflow.Message.delete_flow ~pattern:Flow.Pattern.any ())
        :: List.map
             (fun (r : Local.rule) ->
               t.installs <- t.installs + 1;
               Openflow.Message.Flow_mod
                 (Openflow.Message.add_flow ~priority:r.priority
                    ~pattern:r.pattern ~actions:r.actions ()))
             rules
        @ [ Openflow.Message.Barrier_request ]
      in
      ctx.Api.send_batch ~switch_id msgs))

(* ------------------------------------------------------------------ *)
(* Consistent updates of globally-compiled programs.

   Policies produced by {!Netkat.Global.compile} already discipline the
   VLAN field: every forwarding rule matches either the untagged ingress
   traffic or one of the program's own tags, and distinct compilations
   with distinct [base_tag]s occupy disjoint tag spaces.  Such programs
   are therefore self-versioning: installing the new program's tagged
   (internal) rules first cannot affect live traffic, flipping the
   untagged (ingress) rules by priority switches packets atomically to
   the new program, and the old rules can be drained afterwards.

   Contract: the caller passes pre-compiled local policies whose tag
   spaces are disjoint (e.g. [Global.compile ~base_tag:3000] vs [4000]).
   Fall-through drop rules are not installed (the switch default already
   drops), which is what makes interleaving the two programs' rule sets
   safe. *)

let split_global_rules rules =
  rules
  |> List.filter (fun (r : Local.rule) -> r.actions <> [])
  |> List.partition (fun (r : Local.rule) ->
    r.pattern.vlan = Some Packet.Fields.vlan_none)

(* (switch, (ingress, internal)) for every switch, compiled on the pool *)
let split_global_all ctx fdd =
  Local.rules_of_fdd_all
    ~switches:(Topo.Topology.switch_ids (Api.topology ctx)) fdd
  |> List.map (fun (switch_id, rules) -> (switch_id, split_global_rules rules))

let install_global_rules t ctx ~cookie ~base ~ingress_bump fdd =
  List.iter
    (fun (switch_id, (ingress, internal)) ->
      let rule bump (r : Local.rule) =
        t.installs <- t.installs + 1;
        (base + bump + r.priority, r.pattern, r.actions)
      in
      Api.install_rules ctx ~switch_id ~cookie
        (List.map (rule ingress_bump) ingress @ List.map (rule 0) internal))
    (split_global_all ctx fdd)

(** [global_install t ctx pol] — initial installation of a
    {!Netkat.Global.compile}d program (or any policy obeying the vlan
    discipline above). *)
let global_install t ctx pol =
  t.version <- t.version + 1;
  install_global_rules t ctx ~cookie:t.version ~base:(t.version * 10000)
    ~ingress_bump:1000 (Fdd.of_policy pol);
  Api.schedule ctx ~delay:0.05 (fun () -> observe_occupancy t ctx)

(** [global_two_phase t ctx pol] — per-packet-consistent transition to a
    new globally-compiled program whose tag space is disjoint from the
    currently installed one. *)
let global_two_phase t ctx pol =
  let old_version = t.version in
  let new_version = t.version + 1 in
  t.version <- new_version;
  let fdd = Fdd.of_policy pol in
  let base = new_version * 10000 in
  (* compile every switch once, up front; both phases install from it *)
  let per_switch = split_global_all ctx fdd in
  (* phase 1: tagged (internal) rules only — invisible to live traffic *)
  List.iter
    (fun (switch_id, (_, internal)) ->
      Api.install_rules ctx ~switch_id ~cookie:new_version
        (List.map
           (fun (r : Local.rule) ->
             t.installs <- t.installs + 1;
             (base + r.priority, r.pattern, r.actions))
           internal))
    per_switch;
  (* phase 2: flip ingress; phase 3: drain the old program *)
  Api.schedule ctx ~delay:0.01 (fun () ->
    List.iter
      (fun (switch_id, (ingress, _)) ->
        Api.install_rules ctx ~switch_id ~cookie:new_version
          (List.map
             (fun (r : Local.rule) ->
               t.installs <- t.installs + 1;
               (base + 1000 + r.priority, r.pattern, r.actions))
             ingress))
      per_switch;
    Api.schedule ctx ~delay:0.01 (fun () -> observe_occupancy t ctx);
    Api.schedule ctx ~delay:t.drain (fun () ->
      delete_version ctx ~cookie:old_version;
      t.updates_done <- t.updates_done + 1))

(** Plain (unversioned) initial install, for the naive baseline runs. *)
let install_plain t ctx pol =
  let fdd = Fdd.of_policy pol in
  Local.rules_of_fdd_all
    ~switches:(Topo.Topology.switch_ids (Api.topology ctx)) fdd
  |> List.iter (fun (switch_id, rules) ->
    Api.install_rules ctx ~switch_id
      (List.map
         (fun (r : Local.rule) ->
           t.installs <- t.installs + 1;
           (r.priority, r.pattern, r.actions))
         rules));
  Api.schedule ctx ~delay:0.05 (fun () -> observe_occupancy t ctx)
