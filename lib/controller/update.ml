(** Consistent network updates (Reitblatt et al.'s per-packet consistency,
    the mechanism behind congestion-free/loss-free update systems like
    zUpdate).

    The problem: replacing the rules of many switches is not atomic, so a
    packet in flight can be forwarded by a {e mix} of the old and new
    policy — transient loops, black holes or security violations that
    neither policy alone would produce.

    The classic fix implemented here is {e two-phase update with version
    stamping}: the VLAN id carries a configuration version.  Packets are
    stamped with the current version at their ingress switch, internal
    rules match only their own version, and the stamp is popped at the
    egress (host-facing) port.

    - {b phase 1}: install the new version's {e internal} rules everywhere
      (they match only the new tag, so live traffic is untouched);
    - {b phase 2}: after the installs have landed, flip the {e ingress}
      rules to stamp the new version — each packet is handled entirely by
      one version;
    - {b phase 3}: after a drain interval, delete the old version's rules.

    The cost is transient double table occupancy; {!peak_rules} reports it.
    {!naive} performs the inconsistent switch-by-switch replacement for
    comparison (experiment E9).

    Restriction: the managed policy must not itself use the [Vlan] field
    (it carries the version); {!Policy_uses_vlan} is raised otherwise. *)

open Netkat

exception Policy_uses_vlan

let rec pred_uses_vlan : Syntax.pred -> bool = function
  | True | False -> false
  | Test (f, _) -> Packet.Fields.equal f Packet.Fields.Vlan
  | And (a, b) | Or (a, b) -> pred_uses_vlan a || pred_uses_vlan b
  | Not a -> pred_uses_vlan a

let rec pol_uses_vlan : Syntax.pol -> bool = function
  | Filter p -> pred_uses_vlan p
  | Mod (f, _) -> Packet.Fields.equal f Packet.Fields.Vlan
  | Union (a, b) | Seq (a, b) -> pol_uses_vlan a || pol_uses_vlan b
  | Star a -> pol_uses_vlan a

(* predicate: the packet sits at a host-facing port (used both for
   ingress detection and for egress popping, since after forwarding the
   port field holds the output port) *)
let edge_pred topo =
  Topo.Topology.switches topo
  |> List.concat_map (fun sw ->
    let sw_id = Topo.Topology.Node.id sw in
    Topo.Topology.hosts_of_switch topo sw_id
    |> List.map (fun (_, port) ->
      Syntax.conj
        (Syntax.test Packet.Fields.Switch sw_id)
        (Syntax.test Packet.Fields.In_port port)))
  |> List.fold_left Syntax.disj Syntax.False

(** The version-[u] {e ingress} policy: packets entering from hosts are
    stamped [u], forwarded by [pol], and popped if they exit to a host on
    the same switch. *)
let ingress_part topo pol ~version =
  let edge = edge_pred topo in
  Syntax.big_seq
    [ Syntax.filter edge;
      Syntax.modify Packet.Fields.Vlan version;
      pol;
      Syntax.ite edge (Syntax.modify Packet.Fields.Vlan Packet.Fields.vlan_none)
        Syntax.id ]

(** The version-[u] {e internal} policy: packets already stamped [u]
    arriving from other switches.  No explicit edge exclusion is needed
    (or wanted): packets entering from hosts are untagged, so the version
    test alone excludes them — and an explicit [not edge] filter would
    compile to version-blind drop rules that shadow the other live
    version's ingress rules during a two-phase transition. *)
let internal_part topo pol ~version =
  let edge = edge_pred topo in
  Syntax.big_seq
    [ Syntax.filter (Syntax.test Packet.Fields.Vlan version);
      pol;
      Syntax.ite edge (Syntax.modify Packet.Fields.Vlan Packet.Fields.vlan_none)
        Syntax.id ]

type t = {
  drain : float;                 (** seconds before old rules are removed *)
  incremental : bool;            (** delta-push repeated installs in place *)
  streams : (string, Delta.snapshot) Hashtbl.t;
      (** per install-path snapshots, keyed ["<path>:<version>"] so a
          version bump (whose base/tag transform differs) never reuses a
          stale certificate *)
  pushed : (int, (int, unit) Hashtbl.t) Hashtbl.t;
      (** cookie → switches that actually received rules under it;
          {!delete_version} consults this to leave the rest alone *)
  mutable version : int;
  mutable installs : int;        (** add/modify flow-mods issued over the lifetime *)
  mutable peak_rules : int;      (** max total rules observed installed *)
  mutable updates_done : int;
  mutable skipped_switches : int;(** switches proven unchanged, never touched *)
  mutable delta_mods : int;      (** flow-mods (adds + strict deletes) on delta pushes *)
  mutable delete_msgs : int;     (** cookie-scoped deletes issued by {!delete_version} *)
}

(** [create ?drain ?incremental ()] — [incremental] (default: the
    [ZEN_INCREMENTAL] env knob) makes repeated {!install},
    {!global_install} and {!install_plain} calls delta-push against the
    previous snapshot instead of re-pushing whole tables; see each
    function for the consistency caveat. *)
let create ?(drain = 0.5) ?incremental () =
  let incremental =
    match incremental with Some b -> b | None -> Delta.env_enabled ()
  in
  { drain; incremental; streams = Hashtbl.create 8; pushed = Hashtbl.create 8;
    version = 0; installs = 0; peak_rules = 0; updates_done = 0;
    skipped_switches = 0; delta_mods = 0; delete_msgs = 0 }

let version t = t.version
let peak_rules t = t.peak_rules

(** Replication of the updater's durable state (see {!Api.app}'s
    [export_state]/[import_state] and {!Controller.Replica}).  Only the
    version counter is carried: version numbers become VLAN tags on
    in-flight packets and cookies on installed rules, so a new leader
    restarting from 0 could collide with tags the old leader's rules
    still match on.  Everything else in [t] (snapshots, pushed sets,
    lifetime counters) is per-process bookkeeping a successor safely
    rebuilds. *)
let export_state t = string_of_int t.version

(** Adopts a replicated version counter, never moving backwards (a late
    or duplicated blob must not rewind the sequence). *)
let import_state t blob =
  match int_of_string_opt (String.trim blob) with
  | Some v when v > t.version -> t.version <- v
  | Some _ | None -> ()
let updates_done t = t.updates_done
let incremental t = t.incremental
let skipped_switches t = t.skipped_switches
let delta_mods t = t.delta_mods
let delete_msgs t = t.delete_msgs

let observe_occupancy t ctx =
  let total =
    List.fold_left
      (fun acc (sw : Dataplane.Network.switch) ->
        acc + Flow.Table.size sw.table)
      0
      (Dataplane.Network.switch_list ctx.Api.net)
  in
  if total > t.peak_rules then t.peak_rules <- total

let note_pushed t ~cookie ~switch_id =
  let set =
    match Hashtbl.find_opt t.pushed cookie with
    | Some s -> s
    | None ->
      let s = Hashtbl.create 16 in
      Hashtbl.replace t.pushed cookie s;
      s
  in
  Hashtbl.replace set switch_id ()

(* Push one switch's delta under [cookie].  An unchanged switch gets no
   message at all — its flow cache stays warm. *)
let push_change t ctx ~cookie switch_id = function
  | Delta.Unchanged -> ()
  | Delta.Changed { adds; deletes; _ } ->
    if adds <> [] || deletes <> [] then begin
      t.installs <- t.installs + List.length adds;
      t.delta_mods <- t.delta_mods + List.length adds + List.length deletes;
      note_pushed t ~cookie ~switch_id;
      Api.apply_delta ctx ~switch_id ~cookie ~adds ~deletes ()
    end

(* Install the compiled rules of [part] on every switch.

   Correctness requirement: while two versions coexist, no rule of one
   version may catch the other version's packets.  The FDD encodes its
   negative constraints (e.g. "vlan <> u" fall-through drops) through
   intra-table shadowing, which breaks when two compiled tables are
   interleaved at different priority bases.  We therefore specialize the
   diagram to the vlan value its packets are known to carry ([only_vlan]:
   the version tag for internal parts, untagged for ingress parts) and
   stamp that value into every emitted pattern — making every single
   rule, including drops, version-specific.

   The compile runs through {!Delta.compile} against the [stream]'s
   previous snapshot (when [t.incremental]): switches whose restricted
   diagram is uid-unchanged are skipped entirely, changed switches get
   minimal add/strict-delete batches.  [base]/[only_vlan] feed the
   transform, so the stream key must pin the version — it does
   (["<path>:<version>"]). *)
let install_part t ctx ~stream part ~only_vlan ~cookie ~base =
  let topo = Api.topology ctx in
  let fdd = Fdd.restrict (Packet.Fields.Vlan, only_vlan) (Fdd.of_policy part) in
  let previous =
    if t.incremental then Hashtbl.find_opt t.streams stream else None
  in
  let transform (r : Local.rule) =
    { r with priority = base + r.priority;
      pattern = { r.pattern with vlan = Some only_vlan } }
  in
  let result =
    Delta.compile ~transform ~switches:(Topo.Topology.switch_ids topo)
      previous fdd
  in
  Hashtbl.replace t.streams stream result.snapshot;
  t.skipped_switches <- t.skipped_switches + result.skipped;
  List.iter
    (fun (switch_id, change) -> push_change t ctx ~cookie switch_id change)
    result.changes

let stream_keys version =
  [ Printf.sprintf "internal:%d" version;
    Printf.sprintf "ingress:%d" version;
    Printf.sprintf "global:%d" version ]

(* Garbage-collect one version: cookie-scoped delete to exactly the
   switches that received rules under that cookie (a switch that never
   did must not be touched — the delete would be a no-op on the wire but
   historically invalidated nothing anyway; skipping it keeps the
   control channel quiet and the accounting honest). *)
let delete_version t ctx ~cookie =
  (match Hashtbl.find_opt t.pushed cookie with
   | None -> ()
   | Some set ->
     List.iter
       (fun sw ->
         let switch_id = Topo.Topology.Node.id sw in
         if Hashtbl.mem set switch_id then begin
           t.delete_msgs <- t.delete_msgs + 1;
           Api.uninstall ctx ~switch_id ~cookie Flow.Pattern.any
         end)
       (Topo.Topology.switches (Api.topology ctx));
     Hashtbl.remove t.pushed cookie);
  List.iter (Hashtbl.remove t.streams) (stream_keys cookie)

(** [install t ctx pol] — installation of a versioned policy.  The first
    call installs version 1.  With [incremental] on, later calls keep
    the version (and its vlan tag, priority base and cookie) {e stable}
    and delta-push only the changed switches/rules — the fast path for
    small edits.  This in-place edit is {e not} per-packet consistent
    (a packet in flight can mix pre- and post-edit rules); use
    {!two_phase} when the edit needs the consistency guarantee.
    @raise Policy_uses_vlan *)
let install t ctx pol =
  if pol_uses_vlan pol then raise Policy_uses_vlan;
  if not (t.incremental && t.version > 0) then t.version <- t.version + 1;
  let topo = Api.topology ctx in
  let v = t.version in
  let base = v * 10000 in
  install_part t ctx ~stream:(Printf.sprintf "internal:%d" v)
    (internal_part topo pol ~version:v) ~only_vlan:v ~cookie:v ~base;
  install_part t ctx ~stream:(Printf.sprintf "ingress:%d" v)
    (ingress_part topo pol ~version:v) ~only_vlan:Packet.Fields.vlan_none
    ~cookie:v ~base:(base + 1000);
  Api.schedule ctx ~delay:0.05 (fun () -> observe_occupancy t ctx)

(** [two_phase t ctx pol] — per-packet-consistent transition to [pol].
    Phases are driven by simulated time; the transition completes (old
    rules gone) after roughly [2 * control latency + drain] seconds.
    @raise Policy_uses_vlan *)
let two_phase t ctx pol =
  if pol_uses_vlan pol then raise Policy_uses_vlan;
  let old_version = t.version in
  let new_version = t.version + 1 in
  t.version <- new_version;
  let topo = Api.topology ctx in
  let base = new_version * 10000 in
  (* phase 1: internal rules of the new version (invisible to old
     traffic); the fresh version in the stream key makes the compile
     start from a clean snapshot — cross-version rules are never
     byte-identical (the tag differs), so there is nothing to reuse *)
  install_part t ctx ~stream:(Printf.sprintf "internal:%d" new_version)
    (internal_part topo pol ~version:new_version)
    ~only_vlan:new_version ~cookie:new_version ~base;
  (* phase 2: once phase 1 has certainly landed (one control latency plus
     slack), flip ingress stamping; new ingress rules shadow the old ones
     by their higher priority base *)
  Api.schedule ctx ~delay:0.01 (fun () ->
    install_part t ctx ~stream:(Printf.sprintf "ingress:%d" new_version)
      (ingress_part topo pol ~version:new_version)
      ~only_vlan:Packet.Fields.vlan_none ~cookie:new_version
      ~base:(base + 1000);
    (* sample occupancy at its peak: both versions fully installed *)
    Api.schedule ctx ~delay:0.01 (fun () -> observe_occupancy t ctx);
    (* phase 3: drain, then garbage-collect the old version *)
    Api.schedule ctx ~delay:t.drain (fun () ->
      delete_version t ctx ~cookie:old_version;
      t.updates_done <- t.updates_done + 1))

(** [naive t ctx ~prng ~max_jitter pol] — the inconsistent baseline:
    every switch's table is replaced independently (unversioned rules),
    each after a random delay in [0, max_jitter], emulating the
    asynchronous rollout of real deployments.  In-flight packets can see
    mixed old/new forwarding. *)
let naive t ctx ~prng ~max_jitter pol =
  let topo = Api.topology ctx in
  let fdd = Fdd.of_policy pol in
  t.updates_done <- t.updates_done + 1;
  Local.rules_of_fdd_all ~switches:(Topo.Topology.switch_ids topo) fdd
  |> List.iter (fun (switch_id, rules) ->
    let delay = Util.Prng.float prng max_jitter in
    Api.schedule ctx ~delay (fun () ->
      (* unscoped delete + replacement rules, one batch per switch *)
      let msgs =
        Openflow.Message.Flow_mod
          (Openflow.Message.delete_flow ~pattern:Flow.Pattern.any ())
        :: List.map
             (fun (r : Local.rule) ->
               t.installs <- t.installs + 1;
               Openflow.Message.Flow_mod
                 (Openflow.Message.add_flow ~priority:r.priority
                    ~pattern:r.pattern ~actions:r.actions ()))
             rules
        @ [ Openflow.Message.Barrier_request ]
      in
      ctx.Api.send_batch ~switch_id msgs))

(* ------------------------------------------------------------------ *)
(* Consistent updates of globally-compiled programs.

   Policies produced by {!Netkat.Global.compile} already discipline the
   VLAN field: every forwarding rule matches either the untagged ingress
   traffic or one of the program's own tags, and distinct compilations
   with distinct [base_tag]s occupy disjoint tag spaces.  Such programs
   are therefore self-versioning: installing the new program's tagged
   (internal) rules first cannot affect live traffic, flipping the
   untagged (ingress) rules by priority switches packets atomically to
   the new program, and the old rules can be drained afterwards.

   Contract: the caller passes pre-compiled local policies whose tag
   spaces are disjoint (e.g. [Global.compile ~base_tag:3000] vs [4000]).
   Fall-through drop rules are not installed (the switch default already
   drops), which is what makes interleaving the two programs' rule sets
   safe. *)

let split_global_rules rules =
  rules
  |> List.filter (fun (r : Local.rule) -> r.actions <> [])
  |> List.partition (fun (r : Local.rule) ->
    r.pattern.vlan = Some Packet.Fields.vlan_none)

(* (switch, (ingress, internal)) for every switch, compiled on the pool *)
let split_global_all ctx fdd =
  Local.rules_of_fdd_all
    ~switches:(Topo.Topology.switch_ids (Api.topology ctx)) fdd
  |> List.map (fun (switch_id, rules) -> (switch_id, split_global_rules rules))

(* Same partition expressed as Delta transform/keep: drop fall-through
   drops, bump untagged (ingress) rules above the internal ones. *)
let install_global_rules t ctx ~stream ~cookie ~base ~ingress_bump fdd =
  let previous =
    if t.incremental then Hashtbl.find_opt t.streams stream else None
  in
  let transform (r : Local.rule) =
    let bump =
      if r.pattern.vlan = Some Packet.Fields.vlan_none then ingress_bump
      else 0
    in
    { r with priority = base + bump + r.priority }
  in
  let keep (r : Local.rule) = r.actions <> [] in
  let result =
    Delta.compile ~transform ~keep
      ~switches:(Topo.Topology.switch_ids (Api.topology ctx)) previous fdd
  in
  Hashtbl.replace t.streams stream result.snapshot;
  t.skipped_switches <- t.skipped_switches + result.skipped;
  List.iter
    (fun (switch_id, change) -> push_change t ctx ~cookie switch_id change)
    result.changes

(** [global_install t ctx pol] — installation of a
    {!Netkat.Global.compile}d program (or any policy obeying the vlan
    discipline above).  With [incremental] on, later calls with the same
    tag space keep the version stable and delta-push (not per-packet
    consistent; see {!global_two_phase} for the consistency path). *)
let global_install t ctx pol =
  if not (t.incremental && t.version > 0) then t.version <- t.version + 1;
  install_global_rules t ctx ~stream:(Printf.sprintf "global:%d" t.version)
    ~cookie:t.version ~base:(t.version * 10000) ~ingress_bump:1000
    (Fdd.of_policy pol);
  Api.schedule ctx ~delay:0.05 (fun () -> observe_occupancy t ctx)

(** [global_two_phase t ctx pol] — per-packet-consistent transition to a
    new globally-compiled program whose tag space is disjoint from the
    currently installed one. *)
let global_two_phase t ctx pol =
  let old_version = t.version in
  let new_version = t.version + 1 in
  t.version <- new_version;
  let fdd = Fdd.of_policy pol in
  let base = new_version * 10000 in
  (* compile every switch once, up front; both phases install from it *)
  let per_switch = split_global_all ctx fdd in
  (* phase 1: tagged (internal) rules only — invisible to live traffic *)
  List.iter
    (fun (switch_id, (_, internal)) ->
      if internal <> [] then note_pushed t ~cookie:new_version ~switch_id;
      Api.install_rules ctx ~switch_id ~cookie:new_version
        (List.map
           (fun (r : Local.rule) ->
             t.installs <- t.installs + 1;
             (base + r.priority, r.pattern, r.actions))
           internal))
    per_switch;
  (* phase 2: flip ingress; phase 3: drain the old program *)
  Api.schedule ctx ~delay:0.01 (fun () ->
    List.iter
      (fun (switch_id, (ingress, _)) ->
        if ingress <> [] then note_pushed t ~cookie:new_version ~switch_id;
        Api.install_rules ctx ~switch_id ~cookie:new_version
          (List.map
             (fun (r : Local.rule) ->
               t.installs <- t.installs + 1;
               (base + 1000 + r.priority, r.pattern, r.actions))
             ingress))
      per_switch;
    Api.schedule ctx ~delay:0.01 (fun () -> observe_occupancy t ctx);
    Api.schedule ctx ~delay:t.drain (fun () ->
      delete_version t ctx ~cookie:old_version;
      t.updates_done <- t.updates_done + 1))

(** Plain (unversioned) install, for the naive baseline runs.  The
    first call full-replaces each switch's cookie-0 rules; with
    [incremental] on, later calls delta-push only the changed
    switches/rules (unchanged switches get no message at all). *)
let install_plain t ctx pol =
  let fdd = Fdd.of_policy pol in
  let previous =
    if t.incremental then Hashtbl.find_opt t.streams "plain" else None
  in
  let result =
    Delta.compile ~switches:(Topo.Topology.switch_ids (Api.topology ctx))
      previous fdd
  in
  Hashtbl.replace t.streams "plain" result.snapshot;
  t.skipped_switches <- t.skipped_switches + result.skipped;
  List.iter
    (fun (switch_id, change) ->
      match (change : Delta.change) with
      | Delta.Unchanged -> ()
      | Delta.Changed { rules; adds; deletes } ->
        (match previous with
         | None ->
           t.installs <- t.installs + List.length rules;
           Api.install_rules ctx ~switch_id ~replace:true
             (List.map
                (fun (r : Local.rule) -> (r.priority, r.pattern, r.actions))
                rules)
         | Some _ ->
           t.installs <- t.installs + List.length adds;
           t.delta_mods <-
             t.delta_mods + List.length adds + List.length deletes;
           Api.apply_delta ctx ~switch_id ~adds ~deletes ()))
    result.changes;
  Api.schedule ctx ~delay:0.05 (fun () -> observe_occupancy t ctx)
