(** The controller runtime: owns the controller end of the control
    channel, performs the feature handshake with every switch, decodes
    incoming wire messages and dispatches them to the registered apps.

    Every outgoing operation is wire-encoded before entering the channel
    and decoded at the switch, so the protocol layer is exercised
    end-to-end in every simulation.

    The runtime also keeps a per-switch {e intended-state} shadow table:
    every flow-mod it sends is applied to the shadow as well, so the
    rules each switch {e should} hold are always known — introspection
    ({!intended_rules}) and crash resync both read it.

    With [?resilience] the runtime additionally survives a lossy control
    channel and switch crashes (see {!Dataplane.Fault}):

    - a per-switch Echo keepalive loop declares the switch down after a
      configurable number of consecutive misses and fires the apps'
      [switch_down] callback;
    - flow-mod batches become reliable: each batch is terminated by a
      [Barrier_request], tracked by the barrier's xid, and retransmitted
      with capped exponential backoff until the matching [Barrier_reply]
      arrives.  Batches to one switch go stop-and-wait (at most one
      unacked batch in flight), which together with the switch-side
      last-seen-xid dedup makes replays idempotent and order-safe;
    - a switch that re-handshakes after a crash (its restart [Hello], or
      the probe loop, triggers a fresh features exchange) is resynced:
      by default the runtime re-pushes the full intended table as one
      delete-all-plus-adds batch; with [selective_resync] it instead
      snapshots the switch's surviving table (a flow-stats request),
      diffs it against the intended-state shadow and pushes only the
      delta — a warm table (e.g. after a control-channel partition,
      {!Dataplane.Fault.Ctl_outage}) costs almost nothing to reconcile.
      A generation counter voids stale snapshots, and an unanswered
      snapshot falls back to the full re-push after a timeout.

    Resilience is off by default: without it the runtime's observable
    behavior (message sequence, timing, counters) is exactly the
    classic lossless-channel behavior, and simulations that drain the
    event queue terminate (the keepalive loop schedules forever — run
    resilient simulations with [~until], or call {!shutdown}). *)

(** Knobs for the keepalive / retransmission machinery. *)
type resilience = {
  echo_period : float;     (** seconds between keepalive ticks per switch *)
  echo_miss_limit : int;   (** consecutive unanswered echos ⇒ switch down *)
  retx_timeout : float;    (** initial retransmission timeout (RTO) *)
  retx_backoff : float;    (** RTO multiplier per retransmission *)
  retx_cap : float;        (** RTO ceiling *)
  selective_resync : bool;
      (** diff a table-stats snapshot against the shadow on re-handshake
          and push only the delta (default: delete-all + full re-push) *)
}

let default_resilience =
  { echo_period = 0.25; echo_miss_limit = 3;
    retx_timeout = 0.02; retx_backoff = 2.0; retx_cap = 0.5;
    selective_resync = false }

(* a reliable batch: pre-assigned xids so retransmissions are replays *)
type batch = {
  frames : (int * Openflow.Message.t) list;
  barrier_xid : int;
  mutable attempts : int;
}

type sw_status = Handshaking | Sw_up | Sw_down

type sw_state = {
  st_id : int;
  shadow : Flow.Table.t;  (* the rules this switch is intended to hold *)
  pending : batch Queue.t;
  mutable inflight : batch option;
  mutable rto : float;
  mutable status : sw_status;
  mutable echo_outstanding : int;  (* keepalives sent and not yet answered *)
  mutable down_since : float;
  mutable handshaked : bool;  (* completed at least one features exchange *)
  mutable resync_gen : int;
      (* voids in-flight selective-resync snapshots: bumped by every
         resync attempt and by mark_down, checked by the continuation *)
}

(** Resilience counters (all zero when resilience is off). *)
type resilience_stats = {
  mutable retransmits : int;      (** batch retransmissions *)
  mutable echo_misses : int;      (** keepalive ticks with an unanswered echo *)
  mutable switch_downs : int;     (** switch-down declarations *)
  mutable resyncs : int;          (** full-table re-pushes after re-handshake *)
  mutable selective_resyncs : int;
      (** snapshot-diff resyncs initiated (a timed-out one also counts a
          full resync when it falls back) *)
  mutable acked_batches : int;    (** reliable batches confirmed by barrier *)
  mutable dropped_batches : int;  (** un-acked batches discarded at switch-down *)
  mutable resync_bytes_selective : int;
      (** control bytes a selective resync actually cost: stats request +
          snapshot reply + delta batch (first transmission) *)
  mutable resync_bytes_full : int;
      (** what the same resyncs would have cost as delete-all + full
          re-push (encoded for length, not sent) — the savings baseline *)
  mutable recovery_samples : float list;
      (** down → re-handshake durations, newest first *)
}

type t = {
  ctx : Api.ctx;
  apps : Api.app list;
  mutable next_xid : int;
  stats_waiters : (int, (Openflow.Message.stats_reply -> unit) Queue.t) Hashtbl.t;
  mutable handshakes : int;  (* switches that completed features exchange *)
  resilience : resilience option;
  states : (int, sw_state) Hashtbl.t;
  rstats : resilience_stats;
  mutable stopped : bool;  (* shuts periodic loops down (see shutdown) *)
  mutable halted : bool;
      (* crashed (see halt): additionally refuses incoming frames and
         outgoing sends — a dead process neither reads nor writes *)
  fence : int;
      (* lease epoch stamped on every reliable batch as a leading
         {!Openflow.Message.Fence} frame; 0 = no fencing (single
         controller).  See {!Controller.Replica}. *)
  preset : (int, Flow.Table.rule list) Hashtbl.t;
      (* replicated shadow tables to seed per-switch state from (a new
         leader starts from its replica, not from empty); consumed by
         [state] on first touch *)
  on_shadow : (switch_id:int -> Openflow.Message.t -> unit) option;
      (* replication hook: observes every flow-mod as it is shadowed,
         i.e. exactly the intended-state delta stream *)
  mutable hfn : (switch_id:int -> bytes -> unit) option;
      (* the control-channel receive handler, exposed for session
         adoption (see {!handler}) *)
}

let send_raw net ~switch_id ~xid msg =
  Dataplane.Network.controller_send net ~switch_id
    (Openflow.Wire.encode ~xid msg)

let state t switch_id =
  match Hashtbl.find_opt t.states switch_id with
  | Some st -> st
  | None ->
    let st =
      { st_id = switch_id; shadow = Flow.Table.create ();
        pending = Queue.create (); inflight = None;
        rto =
          (match t.resilience with
           | Some r -> r.retx_timeout
           | None -> 0.0);
        status = Handshaking; echo_outstanding = 0; down_since = 0.0;
        handshaked = false; resync_gen = 0 }
    in
    (match Hashtbl.find_opt t.preset switch_id with
     | None -> ()
     | Some rules ->
       (* seed the intended-state shadow from the replicated copy, and
          mark the switch as previously handshaked so the first features
          reply triggers a resync against it — with selective resync a
          warm table receives only the delta *)
       List.iter
         (fun (ru : Flow.Table.rule) ->
           Flow.Table.add st.shadow
             (Flow.Table.make_rule ~priority:ru.priority ~pattern:ru.pattern
                ~actions:ru.actions ~idle_timeout:ru.idle_timeout
                ~hard_timeout:ru.hard_timeout ~cookie:ru.cookie ()))
         rules;
       st.handshaked <- true;
       Hashtbl.remove t.preset switch_id);
    Hashtbl.replace t.states switch_id st;
    st

(* ------------------------------------------------------------------ *)
(* Intended-state shadow *)

(** [shadow_apply table fm] mirrors one flow-mod into an intended-state
    table.  The notify bit rides in the cookie exactly as on the real
    switch so deletes scoped by cookie hit the same rules.  Exposed so a
    {!Controller.Replica} standby can maintain its replicated copy of the
    leader's shadow from the delta stream. *)
let shadow_apply table (fm : Openflow.Message.flow_mod) =
  match fm.command with
  | Add_flow | Modify_flow ->
    let cookie =
      if fm.notify_when_removed then fm.fm_cookie lor 0x40000000
      else fm.fm_cookie
    in
    Flow.Table.add table
      (Flow.Table.make_rule ~priority:fm.fm_priority ~pattern:fm.fm_pattern
         ~actions:fm.fm_actions ~idle_timeout:fm.idle_timeout
         ~hard_timeout:fm.hard_timeout ~cookie ())
  | Delete_flow ->
    let cookie = if fm.fm_cookie = -1 then None else Some fm.fm_cookie in
    Flow.Table.remove ?cookie table ~pattern:fm.fm_pattern
  | Delete_strict_flow ->
    let cookie = if fm.fm_cookie = -1 then None else Some fm.fm_cookie in
    Flow.Table.remove_strict ?cookie table ~priority:fm.fm_priority
      ~pattern:fm.fm_pattern

let shadow_flow_mod st fm = shadow_apply st.shadow fm

let shadow_msg st (msg : Openflow.Message.t) =
  match msg with Flow_mod fm -> shadow_flow_mod st fm | _ -> ()

(** The rules the runtime believes [switch_id] should hold (every
    flow-mod ever sent, applied to a shadow table). *)
let intended_rules t ~switch_id = Flow.Table.rules (state t switch_id).shadow

(* ------------------------------------------------------------------ *)
(* Reliable batches (resilience only) *)

let sim_of t = Dataplane.Network.sim t.ctx.Api.net

let transmit_batch t st b =
  b.attempts <- b.attempts + 1;
  Dataplane.Network.controller_send t.ctx.Api.net ~switch_id:st.st_id
    (Openflow.Wire.encode_batch b.frames)

(* arm the retransmission timer for the batch currently in flight; the
   timer is disarmed implicitly when the batch is acked or discarded
   (physical equality against [inflight]) *)
let rec arm_retx t st b r =
  Dataplane.Sim.schedule (sim_of t) ~delay:st.rto (fun () ->
    if not t.stopped then
      match st.inflight with
      | Some cur when cur == b ->
        t.rstats.retransmits <- t.rstats.retransmits + 1;
        st.rto <- Float.min (st.rto *. r.retx_backoff) r.retx_cap;
        transmit_batch t st b;
        arm_retx t st b r
      | _ -> ())

(* start the next queued batch if the line is idle and the switch is up *)
let pump t st r =
  match st.inflight with
  | Some _ -> ()
  | None ->
    if st.status = Sw_up && not (Queue.is_empty st.pending) then begin
      let b = Queue.pop st.pending in
      st.inflight <- Some b;
      transmit_batch t st b;
      arm_retx t st b r
    end

(* enqueue [msgs] as one reliable batch (trailing barrier appended when
   missing); xids are assigned now so any retransmission is a replay.
   A replicated leader opens every batch with its lease-epoch Fence —
   the switch rejects the whole delivery once a higher epoch has been
   seen, so a deposed leader's retransmits can never land. *)
let enqueue_reliable t st r msgs =
  let msgs =
    if t.fence > 0 then Openflow.Message.Fence t.fence :: msgs else msgs
  in
  let msgs =
    match List.rev msgs with
    | Openflow.Message.Barrier_request :: _ -> msgs
    | _ -> msgs @ [ Openflow.Message.Barrier_request ]
  in
  let frames =
    List.map
      (fun msg ->
        t.next_xid <- t.next_xid + 1;
        (t.next_xid, msg))
      msgs
  in
  let barrier_xid =
    (* the batch ends with the barrier by construction *)
    match List.rev frames with (xid, _) :: _ -> xid | [] -> assert false
  in
  Queue.push { frames; barrier_xid; attempts = 0 } st.pending;
  pump t st r

let contains_flow_mod msgs =
  List.exists
    (fun (m : Openflow.Message.t) ->
      match m with Flow_mod _ -> true | _ -> false)
    msgs

(* ------------------------------------------------------------------ *)
(* Liveness (resilience only) *)

let mark_down t st =
  if st.status = Sw_up then begin
    st.status <- Sw_down;
    st.down_since <- Api.time t.ctx;
    st.echo_outstanding <- 0;
    t.rstats.switch_downs <- t.rstats.switch_downs + 1;
    (* discard the reliable stream: the resync at re-handshake
       re-derives everything from the intended-state shadow *)
    let dropped =
      Queue.length st.pending
      + (match st.inflight with Some _ -> 1 | None -> 0)
    in
    t.rstats.dropped_batches <- t.rstats.dropped_batches + dropped;
    st.inflight <- None;
    Queue.clear st.pending;
    (* a table snapshot requested before this down is now meaningless:
       the table it described may be gone by the next re-handshake *)
    st.resync_gen <- st.resync_gen + 1;
    List.iter
      (fun (app : Api.app) -> app.switch_down t.ctx ~switch_id:st.st_id)
      t.apps
  end

let send_handshake t ~switch_id =
  t.ctx.Api.send_batch ~switch_id
    [ Openflow.Message.Hello; Openflow.Message.Features_request ]

(* per-switch keepalive / probe loop: echo while up, re-handshake probes
   while down or never handshaked *)
let rec keepalive_tick t st r =
  if not t.stopped then begin
    (match st.status with
     | Sw_up ->
       if st.echo_outstanding > 0 then
         t.rstats.echo_misses <- t.rstats.echo_misses + 1;
       if st.echo_outstanding >= r.echo_miss_limit then mark_down t st
       else begin
         st.echo_outstanding <- st.echo_outstanding + 1;
         t.ctx.Api.send ~switch_id:st.st_id
           (Openflow.Message.Echo_request "keepalive")
       end
     | Handshaking | Sw_down -> send_handshake t ~switch_id:st.st_id);
    Api.schedule t.ctx ~delay:r.echo_period (fun () -> keepalive_tick t st r)
  end

(* a flow-mod add reconstructing one intended (shadow) rule; the notify
   bit rides in the shadow cookie and must be split back out *)
let add_of_rule (ru : Flow.Table.rule) =
  Openflow.Message.Flow_mod
    (Openflow.Message.add_flow ~priority:ru.priority
       ~idle_timeout:ru.idle_timeout ~hard_timeout:ru.hard_timeout
       ~cookie:(ru.cookie land lnot 0x40000000)
       ~notify_when_removed:(ru.cookie land 0x40000000 <> 0)
       ~pattern:ru.pattern ~actions:ru.actions ())

(* the delete-all-plus-adds batch restoring the full intended table *)
let full_resync_msgs st =
  Openflow.Message.Flow_mod
    (Openflow.Message.delete_flow ~pattern:Flow.Pattern.any ())
  :: List.map add_of_rule (Flow.Table.rules st.shadow)

(* full-table re-push after a re-handshake, as a single reliable batch.
   The batch is NOT shadowed: it reconstructs the shadow, it does not
   extend it. *)
let full_resync t st r =
  t.rstats.resyncs <- t.rstats.resyncs + 1;
  enqueue_reliable t st r (full_resync_msgs st)

(* wire size of [msgs] as one batch — the unit both resync byte counters
   are measured in (xids do not affect encoded length) *)
let encoded_len msgs =
  Bytes.length
    (Openflow.Wire.encode_batch (List.map (fun m -> (0, m)) msgs))

(* diff the snapshot the switch just reported against the intended
   shadow and push only the delta: adds/modifies for missing or changed
   (priority, pattern) keys, strict deletes for rules the switch holds
   but the shadow does not.  Cookies are compared directly — the shadow
   and the switch both store the notify bit inside the cookie. *)
let apply_selective t st r snapshot =
  t.rstats.resync_bytes_selective <-
    t.rstats.resync_bytes_selective
    + encoded_len
        [ Openflow.Message.Stats_reply
            (Openflow.Message.Flow_stats_reply snapshot) ];
  let have = Hashtbl.create 32 in
  List.iter
    (fun (fs : Openflow.Message.flow_stat) ->
      Hashtbl.replace have (fs.fs_priority, fs.fs_pattern) fs)
    snapshot;
  let wanted = Flow.Table.rules st.shadow in
  let adds =
    List.filter_map
      (fun (ru : Flow.Table.rule) ->
        let intact =
          match Hashtbl.find_opt have (ru.priority, ru.pattern) with
          | Some fs -> fs.fs_actions = ru.actions && fs.fs_cookie = ru.cookie
          | None -> false
        in
        if intact then None else Some (add_of_rule ru))
      wanted
  in
  let want_keys = Hashtbl.create 32 in
  List.iter
    (fun (ru : Flow.Table.rule) ->
      Hashtbl.replace want_keys (ru.priority, ru.pattern) ())
    wanted;
  let deletes =
    List.filter_map
      (fun (fs : Openflow.Message.flow_stat) ->
        if Hashtbl.mem want_keys (fs.fs_priority, fs.fs_pattern) then None
        else
          Some
            (Openflow.Message.Flow_mod
               (Openflow.Message.delete_strict_flow ~priority:fs.fs_priority
                  ~pattern:fs.fs_pattern ())))
      snapshot
  in
  let delta = adds @ deletes in
  (* the savings baseline: what a delete-all + full re-push of this
     resync would have cost on the wire (encoded for length, not sent) *)
  t.rstats.resync_bytes_full <-
    t.rstats.resync_bytes_full
    + encoded_len (full_resync_msgs st @ [ Openflow.Message.Barrier_request ]);
  if delta <> [] then begin
    t.rstats.resync_bytes_selective <-
      t.rstats.resync_bytes_selective
      + encoded_len (delta @ [ Openflow.Message.Barrier_request ]);
    enqueue_reliable t st r delta
  end

(* selective resync: snapshot the surviving table, then diff.  The
   stats request rides unreliably — if it or its reply is lost, the
   timeout falls back to the full re-push (which is itself reliable).
   A generation check voids the continuation if the switch went down
   again (mark_down bumps the generation) or a newer resync started. *)
let selective_resync t st r =
  t.rstats.selective_resyncs <- t.rstats.selective_resyncs + 1;
  st.resync_gen <- st.resync_gen + 1;
  let gen = st.resync_gen in
  let req =
    Openflow.Message.Stats_request
      (Openflow.Message.Flow_stats_request Flow.Pattern.any)
  in
  t.rstats.resync_bytes_selective <-
    t.rstats.resync_bytes_selective + encoded_len [ req ];
  let done_ = ref false in
  let live () = (not !done_) && gen = st.resync_gen && not t.stopped in
  t.ctx.Api.await_stats ~switch_id:st.st_id (fun reply ->
    if live () then begin
      done_ := true;
      match reply with
      | Openflow.Message.Flow_stats_reply snapshot ->
        apply_selective t st r snapshot
      | _ ->
        (* a concurrent stats consumer stole our slot in the per-switch
           FIFO; reconcile conservatively *)
        full_resync t st r
    end);
  t.ctx.Api.send ~switch_id:st.st_id req;
  Api.schedule t.ctx ~delay:(Float.max r.retx_cap (4.0 *. r.retx_timeout))
    (fun () ->
      if live () && st.status = Sw_up then begin
        done_ := true;
        full_resync t st r
      end)

let resync_switch t st r =
  if r.selective_resync then selective_resync t st r else full_resync t st r

(** Resilience counters (zeros when resilience is off). *)
let resilience_stats t = t.rstats

(** Down → re-handshake durations observed so far, in seconds (newest
    first); feeds the recovery-time percentiles in E9. *)
let recovery_times t = t.rstats.recovery_samples

(** Stops the keepalive loops and disarms retransmission timers, so a
    resilient simulation can drain its event queue. *)
let shutdown t = t.stopped <- true

(** Crashes the runtime: {!shutdown}, plus incoming frames are ignored
    and outgoing sends refused — a dead controller process neither reads
    nor writes.  Used by {!Controller.Replica} for controller-outage
    incidents (a {e deposed} leader is NOT halted: it keeps writing, and
    only the fencing tokens protect the switches). *)
let halt t =
  t.stopped <- true;
  t.halted <- true

(** [create ?latency ?resilience net apps] attaches a controller
    speaking the wire protocol to [net] and registers [apps]
    (dispatched in list order).  The handshake (hello + features
    request) with every switch is scheduled immediately; apps receive
    [switch_up] once the features reply returns.

    [switch_ids] overrides the handshake set (default: the switches
    [net] owns).  A sharded run passes the whole topology's switch ids:
    the runtime attaches to the controller shard's network, which
    reaches the other shards' switches through the sharded control
    channel (see {!Dataplane.Shard.wire_controller}).

    The remaining knobs exist for {!Controller.Replica} and leave the
    single-controller behavior byte-identical at their defaults:
    [attach:false] skips {!Dataplane.Network.attach_controller} — the
    caller adopts individual switch sessions instead
    ({!Dataplane.Network.adopt} with {!handler}); [fence] stamps every
    reliable batch with a lease-epoch {!Openflow.Message.Fence};
    [xid_base] continues a replicated xid sequence; [shadows] seeds
    per-switch intended-state from a replica (those switches resync on
    their first features reply); [on_shadow] observes every shadowed
    flow-mod — the replication delta stream. *)
let create ?(latency = 1e-3) ?resilience ?switch_ids ?(attach = true)
    ?(fence = 0) ?(xid_base = 0) ?(shadows = []) ?on_shadow net apps =
  let t_ref = ref None in
  let rec handler ~switch_id data =
    match !t_ref with
    | None -> ()
    | Some t -> if not t.halted then handle t ~switch_id data
  and handle t ~switch_id data =
    (* switches send single frames today, but decode as a batch so the
       channel is symmetric *)
    List.iter
      (fun (xid, msg) -> dispatch t ~switch_id ~xid msg)
      (Openflow.Wire.decode_all data)
  and dispatch t ~switch_id ~xid (msg : Openflow.Message.t) =
    match msg with
    | Hello ->
      (* The only switch-originated Hello is the spontaneous restart
         announcement.  From a switch believed up, declare it down and
         open a fresh handshake; from one already marked down, just
         handshake (the probe loop would get there anyway, this
         shortens the outage).  During the initial handshake it is
         ignored — a features exchange is already in flight. *)
      (match t.resilience with
       | Some _ ->
         let st = state t switch_id in
         (match st.status with
          | Sw_up ->
            mark_down t st;
            send_handshake t ~switch_id
          | Sw_down -> send_handshake t ~switch_id
          | Handshaking -> ())
       | None -> ())
    | Echo_reply _ ->
      (match t.resilience with
       | Some _ ->
         let st = state t switch_id in
         if st.status = Sw_up then st.echo_outstanding <- 0
       | None -> ())
    | Barrier_reply ->
      (match t.resilience with
       | Some r ->
         let st = state t switch_id in
         (match st.inflight with
          | Some b when b.barrier_xid = xid ->
            st.inflight <- None;
            st.rto <- r.retx_timeout;
            t.rstats.acked_batches <- t.rstats.acked_batches + 1;
            pump t st r
          | _ -> ())  (* stale or duplicate ack *)
       | None -> ())
    | Features_reply f ->
      let fire_up () =
        List.iter
          (fun (app : Api.app) ->
            app.switch_up t.ctx ~switch_id:f.datapath_id ~ports:f.port_list)
          t.apps
      in
      (match t.resilience with
       | None ->
         t.handshakes <- t.handshakes + 1;
         fire_up ()
       | Some r ->
         let st = state t f.datapath_id in
         (match st.status with
          | Sw_up -> ()  (* duplicate features reply: already up *)
          | prev ->
            st.status <- Sw_up;
            st.echo_outstanding <- 0;
            st.rto <- r.retx_timeout;
            t.handshakes <- t.handshakes + 1;
            if prev = Sw_down then
              t.rstats.recovery_samples <-
                (Api.time t.ctx -. st.down_since) :: t.rstats.recovery_samples;
            let resync = st.handshaked in
            st.handshaked <- true;
            (* re-handshake after a crash: restore intended state before
               apps react, then let their switch_up pushes layer on top *)
            if resync then resync_switch t st r;
            fire_up ();
            pump t st r))
    | Packet_in pi ->
      List.iter
        (fun (app : Api.app) ->
          app.packet_in t.ctx ~switch_id ~port:pi.in_port ~reason:pi.reason
            pi.packet)
        t.apps
    | Port_status ps ->
      List.iter
        (fun (app : Api.app) ->
          app.port_status t.ctx ~switch_id ~port:ps.ps_port
            ~up:(ps.ps_reason = Openflow.Message.Port_up))
        t.apps
    | Flow_removed fr ->
      List.iter
        (fun (app : Api.app) -> app.flow_removed t.ctx ~switch_id fr)
        t.apps
    | Stats_reply reply ->
      (match Hashtbl.find_opt t.stats_waiters switch_id with
       | Some q when not (Queue.is_empty q) -> (Queue.pop q) reply
       | Some _ | None -> ())
    | Echo_request s ->
      send_raw t.ctx.net ~switch_id ~xid:0 (Openflow.Message.Echo_reply s)
    | Features_request | Packet_out _ | Flow_mod _ | Stats_request _
    | Barrier_request | Fence _ ->
      ()  (* switch-bound message types never arrive at the controller *)
  in
  (* tie the knot: the ctx closes over the runtime record *)
  let shadow_and_replicate t st msg =
    shadow_msg st msg;
    match (t.on_shadow, (msg : Openflow.Message.t)) with
    | Some f, Flow_mod _ -> f ~switch_id:st.st_id msg
    | _ -> ()
  in
  let rec t =
    { ctx =
        { net;
          send =
            (fun ~switch_id msg ->
              if not t.halted then begin
                shadow_and_replicate t (state t switch_id) msg;
                match (t.resilience, msg) with
                | Some r, Openflow.Message.Flow_mod _ ->
                  (* single flow-mods join the reliable stream so the
                     switch-side xid dedup sees one ordered sequence *)
                  enqueue_reliable t (state t switch_id) r [ msg ]
                | _ ->
                  t.next_xid <- t.next_xid + 1;
                  send_raw net ~switch_id ~xid:t.next_xid msg
              end);
          send_batch =
            (fun ~switch_id msgs ->
              if msgs <> [] && not t.halted then begin
                let st = state t switch_id in
                List.iter (shadow_and_replicate t st) msgs;
                match t.resilience with
                | Some r when contains_flow_mod msgs ->
                  enqueue_reliable t st r msgs
                | _ ->
                  let framed =
                    List.map
                      (fun msg ->
                        t.next_xid <- t.next_xid + 1;
                        (t.next_xid, msg))
                      msgs
                  in
                  Dataplane.Network.controller_send net ~switch_id
                    (Openflow.Wire.encode_batch framed)
              end);
          await_stats =
            (fun ~switch_id k ->
              let q =
                match Hashtbl.find_opt t.stats_waiters switch_id with
                | Some q -> q
                | None ->
                  let q = Queue.create () in
                  Hashtbl.replace t.stats_waiters switch_id q;
                  q
              in
              Queue.push k q) };
      apps;
      next_xid = xid_base;
      stats_waiters = Hashtbl.create 16;
      handshakes = 0;
      resilience;
      states = Hashtbl.create 16;
      rstats =
        { retransmits = 0; echo_misses = 0; switch_downs = 0; resyncs = 0;
          selective_resyncs = 0; acked_batches = 0; dropped_batches = 0;
          resync_bytes_selective = 0; resync_bytes_full = 0;
          recovery_samples = [] };
      stopped = false; halted = false;
      fence;
      preset =
        (let h = Hashtbl.create (List.length shadows) in
         List.iter (fun (sid, rules) -> Hashtbl.replace h sid rules) shadows;
         h);
      on_shadow; hfn = None }
  in
  t_ref := Some t;
  t.hfn <- Some handler;
  if attach then Dataplane.Network.attach_controller net ~latency handler;
  (* handshake with every switch: hello + features request ride in one
     batched transmission per switch *)
  let ids =
    match switch_ids with
    | Some ids -> List.sort_uniq compare ids
    | None ->
      List.map
        (fun (sw : Dataplane.Network.switch) -> sw.sw_id)
        (Dataplane.Network.switch_list net)
  in
  List.iter
    (fun switch_id ->
      ignore (state t switch_id);
      t.ctx.send_batch ~switch_id
        [ Openflow.Message.Hello; Openflow.Message.Features_request ];
      match t.resilience with
      | Some r ->
        Api.schedule t.ctx ~delay:r.echo_period (fun () ->
          keepalive_tick t (state t switch_id) r)
      | None -> ())
    ids;
  t

let ctx t = t.ctx

(** The control-channel receive handler — what
    {!Dataplane.Network.adopt} re-homes a switch session to. *)
let handler t =
  match t.hfn with Some h -> h | None -> assert false (* set in create *)

(** The next xid the runtime would assign (monotone); replicated so a
    successor can continue the sequence. *)
let next_xid t = t.next_xid

(** Switches that have completed the feature handshake (with resilience,
    re-handshakes after a crash count again). *)
let ready_switches t = t.handshakes

(** Whether [switch_id] is currently believed up (always true without
    resilience, where liveness is not tracked). *)
let switch_up t ~switch_id =
  match t.resilience with
  | None -> true
  | Some _ -> (state t switch_id).status = Sw_up

(** Convenience: create the runtime and run the simulation just long
    enough (10 control RTTs) for the handshake and any proactive rule
    pushes to land.  Apps with periodic loops (e.g. {!Monitor}) schedule
    beyond this horizon and are unaffected. *)
let create_and_handshake ?(latency = 1e-3) ?resilience ?switch_ids net apps =
  let t = create ~latency ?resilience ?switch_ids net apps in
  let horizon = Dataplane.Network.now net +. (20.0 *. latency) in
  ignore (Dataplane.Network.run ~until:horizon net ());
  t
