(** The controller runtime: owns the controller end of the control
    channel, performs the feature handshake with every switch, decodes
    incoming wire messages and dispatches them to the registered apps.

    Every outgoing operation is wire-encoded before entering the channel
    and decoded at the switch, so the protocol layer is exercised
    end-to-end in every simulation. *)

type t = {
  ctx : Api.ctx;
  apps : Api.app list;
  mutable next_xid : int;
  stats_waiters : (int, (Openflow.Message.stats_reply -> unit) Queue.t) Hashtbl.t;
  mutable handshakes : int;  (* switches that completed features exchange *)
}

let send_raw net ~switch_id ~xid msg =
  Dataplane.Network.controller_send net ~switch_id
    (Openflow.Wire.encode ~xid msg)

(** [create ?latency net apps] attaches a controller speaking the wire
    protocol to [net] and registers [apps] (dispatched in list order).
    The handshake (hello + features request) with every switch is
    scheduled immediately; apps receive [switch_up] once the features
    reply returns. *)
let create ?(latency = 1e-3) net apps =
  let t_ref = ref None in
  let rec handler ~switch_id data =
    match !t_ref with
    | None -> ()
    | Some t -> handle t ~switch_id data
  and handle t ~switch_id data =
    (* switches send single frames today, but decode as a batch so the
       channel is symmetric *)
    List.iter
      (fun (_xid, msg) -> dispatch t ~switch_id msg)
      (Openflow.Wire.decode_all data)
  and dispatch t ~switch_id (msg : Openflow.Message.t) =
    match msg with
    | Hello -> ()
    | Echo_reply _ | Barrier_reply -> ()
    | Features_reply f ->
      t.handshakes <- t.handshakes + 1;
      List.iter
        (fun (app : Api.app) ->
          app.switch_up t.ctx ~switch_id:f.datapath_id ~ports:f.port_list)
        t.apps
    | Packet_in pi ->
      List.iter
        (fun (app : Api.app) ->
          app.packet_in t.ctx ~switch_id ~port:pi.in_port ~reason:pi.reason
            pi.packet)
        t.apps
    | Port_status ps ->
      List.iter
        (fun (app : Api.app) ->
          app.port_status t.ctx ~switch_id ~port:ps.ps_port
            ~up:(ps.ps_reason = Openflow.Message.Port_up))
        t.apps
    | Flow_removed fr ->
      List.iter
        (fun (app : Api.app) -> app.flow_removed t.ctx ~switch_id fr)
        t.apps
    | Stats_reply reply ->
      (match Hashtbl.find_opt t.stats_waiters switch_id with
       | Some q when not (Queue.is_empty q) -> (Queue.pop q) reply
       | Some _ | None -> ())
    | Echo_request s ->
      send_raw t.ctx.net ~switch_id ~xid:0 (Openflow.Message.Echo_reply s)
    | Features_request | Packet_out _ | Flow_mod _ | Stats_request _
    | Barrier_request ->
      ()  (* switch-bound message types never arrive at the controller *)
  in
  (* tie the knot: the ctx closes over the runtime record *)
  let rec t =
    { ctx =
        { net;
          send =
            (fun ~switch_id msg ->
              t.next_xid <- t.next_xid + 1;
              send_raw net ~switch_id ~xid:t.next_xid msg);
          send_batch =
            (fun ~switch_id msgs ->
              if msgs <> [] then begin
                let framed =
                  List.map
                    (fun msg ->
                      t.next_xid <- t.next_xid + 1;
                      (t.next_xid, msg))
                    msgs
                in
                Dataplane.Network.controller_send net ~switch_id
                  (Openflow.Wire.encode_batch framed)
              end);
          await_stats =
            (fun ~switch_id k ->
              let q =
                match Hashtbl.find_opt t.stats_waiters switch_id with
                | Some q -> q
                | None ->
                  let q = Queue.create () in
                  Hashtbl.replace t.stats_waiters switch_id q;
                  q
              in
              Queue.push k q) };
      apps;
      next_xid = 0;
      stats_waiters = Hashtbl.create 16;
      handshakes = 0 }
  in
  t_ref := Some t;
  Dataplane.Network.attach_controller net ~latency handler;
  (* handshake with every switch: hello + features request ride in one
     batched transmission per switch *)
  List.iter
    (fun (sw : Dataplane.Network.switch) ->
      t.ctx.send_batch ~switch_id:sw.sw_id
        [ Openflow.Message.Hello; Openflow.Message.Features_request ])
    (Dataplane.Network.switch_list net);
  t

let ctx t = t.ctx

(** Switches that have completed the feature handshake. *)
let ready_switches t = t.handshakes

(** Convenience: create the runtime and run the simulation just long
    enough (10 control RTTs) for the handshake and any proactive rule
    pushes to land.  Apps with periodic loops (e.g. {!Monitor}) schedule
    beyond this horizon and are unaffected. *)
let create_and_handshake ?(latency = 1e-3) net apps =
  let t = create ~latency net apps in
  let horizon = Dataplane.Network.now net +. (20.0 *. latency) in
  ignore (Dataplane.Network.run ~until:horizon net ());
  t
