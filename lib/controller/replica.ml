(** Replicated controller: 2+ {!Runtime} instances over one
    {!Dataplane.Network} under a leader-lease protocol.

    One member holds the lease and owns every switch control session
    (adopted via {!Dataplane.Network.adopt}); it is the only writer.
    The leader streams its intended state to the standbys over a
    seeded-chaos-capable inter-controller channel: heartbeats every
    [lease/3] carry the lease epoch, the xid high-water mark and the
    apps' exported state blobs, and every flow-mod it shadows is
    forwarded as a delta, so each standby maintains a replica of
    {!Runtime.intended_rules} for every switch.

    {b Failover.}  A standby that misses heartbeats for a full lease
    (staggered per member so two standbys never take over in the same
    instant) declares the lease expired, bumps the epoch, creates a
    fresh runtime {e seeded from its replica} ([~shadows]), adopts every
    switch session — frames already in flight re-home with the session —
    and re-handshakes.  Because the seeded shadow marks every switch as
    previously handshaked, the first features reply triggers the PR 7
    selective-resync diff: warm tables receive only the delta between
    what the switch holds and what the replica says it should hold.

    {b Split brain.}  The lease alone is only a failure detector: a
    deposed leader that is merely partitioned from its peers still
    believes it holds the lease and keeps (re)transmitting.  Safety
    comes from fencing: every reliable batch opens with a
    {!Openflow.Message.Fence} carrying the sender's epoch, switches
    remember the highest epoch seen and reject flow-mods fenced with a
    lower one ([fenced_writes] counts them).  A strictly higher fence
    also resets the switch's flow-mod xid dedup, so the new leader's
    (replicated, possibly lagging) xid sequence is never wrongly deduped
    against the old leader's, while each leader's own retransmits still
    dedup within its epoch.  On heal, the deposed leader sees a
    higher-epoch heartbeat and steps down to standby.

    With [replicas = 1] no replication machinery is instantiated at all
    — no fencing, no heartbeats, plain {!Runtime.create} — so the
    single-controller path is byte-identical to a non-replicated run. *)

module Network = Dataplane.Network
module Sim = Dataplane.Sim
module Fault = Dataplane.Fault

type role = Leader | Standby | Down

type config = {
  replicas : int;
  lease : float;       (** lease duration, seconds *)
  hb_period : float;   (** heartbeat period, [lease / 3] *)
  repl_latency : float;(** one-way inter-controller latency *)
}

(* one inter-controller message; deltas carry the decoded message (the
   channel is in-process) but are accounted at wire size *)
type repl_msg =
  | Hb of { h_epoch : int; h_xid : int; h_states : (string * string) list }
  | Delta of { d_epoch : int; d_xid : int; d_sw : int;
               d_msg : Openflow.Message.t }
  | Sync_req of { sr_from : int }
  | Sync_full of { sf_epoch : int; sf_xid : int;
                   sf_tables : (int * Flow.Table.rule list) list;
                   sf_states : (string * string) list }

type member = {
  m_id : int;
  mutable role : role;
  mutable runtime : Runtime.t option;
  mutable apps : Api.app list;
  m_shadows : (int, Flow.Table.t) Hashtbl.t;
      (* standby: replicated copy of the leader's intended state *)
  mutable m_states : (string * string) list;  (* replicated app blobs *)
  mutable m_epoch : int;   (* highest lease epoch known *)
  mutable m_xid : int;     (* leader's replicated xid high-water mark *)
  mutable last_hb : float;
  mutable synced : bool;   (* false while a rejoined standby awaits Sync_full *)
  mutable partitioned : bool;  (* inter-controller channel cut (split brain) *)
  mutable term : int;
      (* local loop-invalidation counter: every role change bumps it, and
         every periodic loop captures it at start — a loop whose term is
         stale belongs to a previous life of this member and stops *)
}

type stats = {
  mutable failovers : int;        (** lease expiries acted on (takeovers begun) *)
  mutable takeovers_completed : int;
  mutable step_downs : int;       (** deposed leaders demoted on heal *)
  mutable hb_sent : int;
  mutable deltas_sent : int;
  mutable repl_msgs : int;        (** inter-controller messages sent *)
  mutable repl_bytes : int;       (** at modeled wire size *)
  mutable repl_drops : int;       (** lost to chaos or partition *)
  mutable syncs : int;            (** full-state transfers to rejoining standbys *)
  mutable failover_samples : float list;
      (** lease-expiry detection → every switch re-upped, newest first *)
}

type t = {
  net : Network.t;
  cfg : config;
  latency : float;
  resilience : Runtime.resilience;
  mk_apps : unit -> Api.app list;
      (* app factory: each leader incarnation runs fresh app instances
         (replicated state re-enters through [import_state]) *)
  switch_ids : int list;
  members : member array;
  repl_fault : Fault.t option;  (* chaos on the inter-controller channel *)
  repl_arrival : (int, float ref) Hashtbl.t;
      (* per (src, dst) monotone delivery clamp: the channel models an
         ordered transport, jitter must not reorder it *)
  rstats : stats;
  mutable stopped : bool;
}

let default_lease = 0.15

let env_replicas () =
  match Sys.getenv_opt "ZEN_REPLICAS" with
  | None | Some "" -> None
  | Some s -> int_of_string_opt s

let env_lease () =
  match Sys.getenv_opt "ZEN_LEASE_MS" with
  | None | Some "" -> None
  | Some s -> Option.map (fun ms -> ms /. 1000.0) (float_of_string_opt s)

let now t = Network.now t.net
let sim t = Network.sim t.net

let note t fmt =
  Printf.ksprintf
    (fun s ->
      match Network.fault t.net with
      | Some f -> Fault.note f ~time:(now t) "%s" s
      | None -> ())
    fmt

(* a member's lease-expiry threshold, staggered by id so two standbys
   never declare expiry in the same tick *)
let expiry t m = t.cfg.lease +. (float_of_int m.m_id *. t.cfg.hb_period)

(* ------------------------------------------------------------------ *)
(* Inter-controller channel *)

let repl_size (msg : repl_msg) =
  match msg with
  | Hb { h_states; _ } ->
    16 + List.fold_left (fun a (n, s) -> a + String.length n + String.length s)
           0 h_states
  | Delta { d_msg; _ } ->
    8 + Bytes.length (Openflow.Wire.encode ~xid:0 d_msg)
  | Sync_req _ -> 8
  | Sync_full { sf_tables; sf_states; _ } ->
    16
    + List.fold_left (fun a (_, rules) -> a + (40 * List.length rules)) 0
        sf_tables
    + List.fold_left (fun a (n, s) -> a + String.length n + String.length s)
        0 sf_states

let rec send_repl t ~src ~dst msg =
  if not t.stopped then begin
    let ms = t.members.(src) and md = t.members.(dst) in
    t.rstats.repl_msgs <- t.rstats.repl_msgs + 1;
    t.rstats.repl_bytes <- t.rstats.repl_bytes + repl_size msg;
    if ms.partitioned || md.partitioned then
      t.rstats.repl_drops <- t.rstats.repl_drops + 1
    else begin
      let deliver time =
        (* FIFO clamp per (src, dst) pair *)
        let key = (src * 64) + dst in
        let r =
          match Hashtbl.find_opt t.repl_arrival key with
          | Some r -> r
          | None ->
            let r = ref 0.0 in
            Hashtbl.replace t.repl_arrival key r;
            r
        in
        let time = if time < !r then !r else time in
        r := time;
        Sim.schedule_at (sim t) ~time (fun () -> recv_repl t md msg)
      in
      match t.repl_fault with
      | None -> deliver (now t +. t.cfg.repl_latency)
      | Some f ->
        let v = Fault.decide f in
        if v.v_drop then begin
          t.rstats.repl_drops <- t.rstats.repl_drops + 1;
          Fault.note f ~time:(now t) "repl-drop c%d->c%d" src dst
        end
        else begin
          deliver (now t +. t.cfg.repl_latency +. v.v_delay);
          if v.v_dup then
            deliver (now t +. t.cfg.repl_latency +. v.v_dup_delay)
        end
    end
  end

and broadcast t ~src msg =
  Array.iter
    (fun (m : member) ->
      if m.m_id <> src then send_repl t ~src ~dst:m.m_id msg)
    t.members

(* ------------------------------------------------------------------ *)
(* Standby state *)

and shadow_of m sw =
  match Hashtbl.find_opt m.m_shadows sw with
  | Some table -> table
  | None ->
    let table = Flow.Table.create () in
    Hashtbl.replace m.m_shadows sw table;
    table

and replicated_rules t m =
  List.map
    (fun sid ->
      ( sid,
        match Hashtbl.find_opt m.m_shadows sid with
        | Some table -> Flow.Table.rules table
        | None -> [] ))
    t.switch_ids

and load_tables m tables =
  Hashtbl.reset m.m_shadows;
  List.iter
    (fun (sid, rules) ->
      let table = shadow_of m sid in
      List.iter
        (fun (ru : Flow.Table.rule) ->
          Flow.Table.add table
            (Flow.Table.make_rule ~priority:ru.priority ~pattern:ru.pattern
               ~actions:ru.actions ~idle_timeout:ru.idle_timeout
               ~hard_timeout:ru.hard_timeout ~cookie:ru.cookie ()))
        rules)
    tables

(* ------------------------------------------------------------------ *)
(* Receive *)

and recv_repl t m msg =
  if (not t.stopped) && m.role <> Down && not m.partitioned then
    match msg with
    | Hb { h_epoch; h_xid; h_states } ->
      if h_epoch >= m.m_epoch then begin
        (match m.role with
         | Leader when h_epoch > m.m_epoch ->
           (* a higher lease epoch exists: this member was deposed while
              partitioned — stop writing and rejoin as a standby *)
           step_down t m h_epoch
         | _ -> ());
        if m.role = Standby then begin
          m.last_hb <- now t;
          m.m_epoch <- h_epoch;
          if h_xid > m.m_xid then m.m_xid <- h_xid;
          m.m_states <- h_states
        end
      end
    | Delta { d_epoch; d_xid; d_sw; d_msg } ->
      if m.role = Standby && d_epoch >= m.m_epoch then begin
        m.last_hb <- now t;
        m.m_epoch <- d_epoch;
        if d_xid > m.m_xid then m.m_xid <- d_xid;
        match d_msg with
        | Openflow.Message.Flow_mod fm ->
          Runtime.shadow_apply (shadow_of m d_sw) fm
        | _ -> ()
      end
    | Sync_req { sr_from } ->
      (match (m.role, m.runtime) with
       | Leader, Some rt ->
         t.rstats.syncs <- t.rstats.syncs + 1;
         let tables =
           List.map
             (fun sid -> (sid, Runtime.intended_rules rt ~switch_id:sid))
             t.switch_ids
         in
         send_repl t ~src:m.m_id ~dst:sr_from
           (Sync_full
              { sf_epoch = m.m_epoch; sf_xid = Runtime.next_xid rt;
                sf_tables = tables; sf_states = export_states t m })
       | _ -> ())
    | Sync_full { sf_epoch; sf_xid; sf_tables; sf_states } ->
      if m.role = Standby && (not m.synced) && sf_epoch >= m.m_epoch then begin
        load_tables m sf_tables;
        m.m_states <- sf_states;
        m.m_epoch <- sf_epoch;
        if sf_xid > m.m_xid then m.m_xid <- sf_xid;
        m.synced <- true;
        m.last_hb <- now t;
        note t "sync c%d epoch=%d" m.m_id sf_epoch
      end

(* ------------------------------------------------------------------ *)
(* Leader side *)

and export_states _t m =
  match m.runtime with
  | None -> []
  | Some rt ->
    List.filter_map
      (fun (app : Api.app) ->
        match app.export_state (Runtime.ctx rt) with
        | Some blob -> Some (app.name, blob)
        | None -> None)
      m.apps

and hb_loop t m term =
  if (not t.stopped) && m.term = term && m.role = Leader then begin
    (match m.runtime with
     | Some rt ->
       t.rstats.hb_sent <- t.rstats.hb_sent + 1;
       broadcast t ~src:m.m_id
         (Hb
            { h_epoch = m.m_epoch; h_xid = Runtime.next_xid rt;
              h_states = export_states t m })
     | None -> ());
    Sim.schedule (sim t) ~delay:t.cfg.hb_period (fun () -> hb_loop t m term)
  end

and mk_on_shadow t m ~switch_id msg =
  if m.role = Leader then begin
    t.rstats.deltas_sent <- t.rstats.deltas_sent + 1;
    let xid =
      match m.runtime with Some rt -> Runtime.next_xid rt | None -> m.m_xid
    in
    broadcast t ~src:m.m_id
      (Delta { d_epoch = m.m_epoch; d_xid = xid; d_sw = switch_id;
               d_msg = msg })
  end

(* hand every switch session to [rt] — in-flight frames re-home at
   delivery, dedup state and FIFO clamps stay on the switch.  The new
   epoch is asserted on each switch immediately: fencing tokens normally
   ride only on flow-mod batches, so after a {e clean} handoff (warm
   converged tables, selective resync sends nothing) the switch would
   otherwise still hold the old epoch — and a deposed leader's
   equal-fenced writes would land *)
and adopt_all t rt ~epoch =
  let h = Runtime.handler rt in
  List.iter
    (fun sid ->
      Network.adopt (Network.ctl_channel t.net sid) h;
      Network.controller_send t.net ~switch_id:sid
        (Openflow.Wire.encode_batch [ (0, Openflow.Message.Fence epoch) ]))
    t.switch_ids

and start_leader t m ~shadows =
  m.role <- Leader;
  m.term <- m.term + 1;
  let apps = t.mk_apps () in
  let rt =
    Runtime.create ~latency:t.latency ~resilience:t.resilience
      ~switch_ids:t.switch_ids ~attach:false ~fence:m.m_epoch
      ~xid_base:(m.m_xid + 1) ~shadows ~on_shadow:(mk_on_shadow t m) t.net
      apps
  in
  m.runtime <- Some rt;
  m.apps <- apps;
  adopt_all t rt ~epoch:m.m_epoch;
  (* replicated app state enters before any switch_up event fires (the
     features replies are still in flight) *)
  List.iter
    (fun (app : Api.app) ->
      match List.assoc_opt app.name m.m_states with
      | Some blob -> app.import_state (Runtime.ctx rt) blob
      | None -> ())
    apps;
  hb_loop t m m.term;
  rt

and step_down t m new_epoch =
  t.rstats.step_downs <- t.rstats.step_downs + 1;
  note t "step-down c%d epoch=%d" m.m_id new_epoch;
  (match m.runtime with Some rt -> Runtime.shutdown rt | None -> ());
  m.runtime <- None;
  m.apps <- [];
  m.role <- Standby;
  m.term <- m.term + 1;
  m.m_epoch <- new_epoch;
  m.synced <- false;
  Hashtbl.reset m.m_shadows;
  m.m_states <- [];
  m.last_hb <- now t;
  monitor_loop t m m.term

(* ------------------------------------------------------------------ *)
(* Standby side: lease monitoring and takeover *)

and takeover t m =
  t.rstats.failovers <- t.rstats.failovers + 1;
  let detect = now t in
  m.m_epoch <- m.m_epoch + 1;
  note t "takeover c%d epoch=%d" m.m_id m.m_epoch;
  let shadows = replicated_rules t m in
  let rt = start_leader t m ~shadows in
  let term = m.term in
  (* sample the failover: detection → every switch back up under the new
     leader (handshake + resync complete) *)
  let rec poll () =
    if (not t.stopped) && m.term = term && m.role = Leader then begin
      if
        List.for_all
          (fun sid -> Runtime.switch_up rt ~switch_id:sid)
          t.switch_ids
      then begin
        let d = now t -. detect in
        t.rstats.takeovers_completed <- t.rstats.takeovers_completed + 1;
        t.rstats.failover_samples <- d :: t.rstats.failover_samples;
        note t "failover-complete c%d %.6f" m.m_id d
      end
      else
        Sim.schedule (sim t) ~delay:t.cfg.hb_period poll
    end
  in
  Sim.schedule (sim t) ~delay:t.cfg.hb_period poll

and monitor_loop t m term =
  if (not t.stopped) && m.term = term && m.role = Standby then begin
    if not m.synced then begin
      (* rejoining: pull a full state transfer before becoming eligible
         for takeover (an unsynced standby must never lead) *)
      broadcast t ~src:m.m_id (Sync_req { sr_from = m.m_id });
      Sim.schedule (sim t) ~delay:t.cfg.hb_period (fun () ->
        monitor_loop t m term)
    end
    else if now t -. m.last_hb > expiry t m then begin
      note t "lease-expired c%d" m.m_id;
      takeover t m
    end
    else
      Sim.schedule (sim t) ~delay:t.cfg.hb_period (fun () ->
        monitor_loop t m term)
  end

(* ------------------------------------------------------------------ *)
(* Controller-outage incidents *)

let crash t ~controller_id =
  if controller_id >= 0 && controller_id < Array.length t.members then begin
    let m = t.members.(controller_id) in
    if m.role <> Down then begin
      (match m.runtime with Some rt -> Runtime.halt rt | None -> ());
      m.runtime <- None;
      m.apps <- [];
      m.role <- Down;
      m.term <- m.term + 1
    end
  end

let restart t ~controller_id =
  if controller_id >= 0 && controller_id < Array.length t.members then begin
    let m = t.members.(controller_id) in
    if m.role = Down then begin
      m.role <- Standby;
      m.term <- m.term + 1;
      m.synced <- false;
      Hashtbl.reset m.m_shadows;
      m.m_states <- [];
      m.last_hb <- now t;
      monitor_loop t m m.term
    end
  end

(** Cuts member [controller_id] off the inter-controller channel (its
    switch sessions are untouched): the canonical split-brain lever — a
    partitioned leader keeps writing while its standbys' leases expire. *)
let partition t ~controller_id =
  let m = t.members.(controller_id) in
  if not m.partitioned then begin
    m.partitioned <- true;
    note t "repl-partition c%d" controller_id
  end

let heal t ~controller_id =
  let m = t.members.(controller_id) in
  if m.partitioned then begin
    m.partitioned <- false;
    note t "repl-heal c%d" controller_id
  end

(* ------------------------------------------------------------------ *)
(* Introspection *)

let leader t =
  let r = ref None in
  Array.iter (fun m -> if m.role = Leader then r := Some m.m_id) t.members;
  !r

let epoch t =
  Array.fold_left (fun acc m -> max acc m.m_epoch) 0 t.members

let leader_runtime t =
  match leader t with
  | None -> None
  | Some id -> t.members.(id).runtime

let runtime_of t ~controller_id = t.members.(controller_id).runtime

let role_of t ~controller_id =
  t.members.(controller_id).role

let stats t = t.rstats

let failover_samples t = t.rstats.failover_samples

(** Switches whose installed table differs from the current leader's
    intended shadow (empty = zero divergence).  Rules are compared as
    (priority, pattern, actions, cookie) sets. *)
let diverged t =
  match leader_runtime t with
  | None -> t.switch_ids
  | Some rt ->
    List.filter
      (fun sid ->
        let key (r : Flow.Table.rule) =
          (r.priority, r.pattern, r.actions, r.cookie)
        in
        let installed =
          Flow.Table.rules (Network.switch t.net sid).table
          |> List.map key |> List.sort compare
        in
        let intended =
          Runtime.intended_rules rt ~switch_id:sid
          |> List.map key |> List.sort compare
        in
        installed <> intended)
      t.switch_ids

(** Stops every member's loops and runtimes so the simulation can drain
    its event queue. *)
let shutdown t =
  t.stopped <- true;
  Array.iter
    (fun m ->
      match m.runtime with Some rt -> Runtime.shutdown rt | None -> ())
    t.members

(* ------------------------------------------------------------------ *)
(* Creation *)

(** [create net mk_apps] starts [replicas] controller members over [net]
    (default: the [ZEN_REPLICAS] knob, else 2): member 0 as leader at
    epoch 1, the rest as synced standbys.  [mk_apps] is called once per
    leader incarnation — every promotion runs fresh app instances, with
    replicated state restored through [import_state].

    [lease] (default: [ZEN_LEASE_MS], else 0.15 s) bounds failover
    detection; heartbeats ride every [lease/3].  [repl_fault] attaches
    chaos to the inter-controller channel; [resilience] defaults to
    selective-resync-enabled {!Runtime.default_resilience} (replication
    requires a resilient runtime — with [replicas = 1] it is passed
    through unchanged, [None] meaning a classic non-resilient runtime).

    {!Fault.Controller_outage} incidents injected into [net] crash and
    restart members by id. *)
let create ?(latency = 1e-3) ?resilience ?replicas ?lease
    ?(repl_latency = 1e-3) ?repl_fault ?switch_ids net mk_apps =
  let replicas =
    match replicas with
    | Some n -> n
    | None -> (match env_replicas () with Some n -> n | None -> 2)
  in
  if replicas < 1 then invalid_arg "Replica.create: replicas < 1";
  let lease =
    match lease with
    | Some l -> l
    | None -> (match env_lease () with Some l -> l | None -> default_lease)
  in
  if lease <= 0.0 then invalid_arg "Replica.create: lease <= 0";
  let switch_ids =
    match switch_ids with
    | Some ids -> List.sort_uniq compare ids
    | None ->
      List.map
        (fun (sw : Network.switch) -> sw.sw_id)
        (Network.switch_list net)
  in
  let cfg = { replicas; lease; hb_period = lease /. 3.0; repl_latency } in
  let member id role =
    { m_id = id; role; runtime = None; apps = [];
      m_shadows = Hashtbl.create 16; m_states = [];
      m_epoch = 1; m_xid = 0; last_hb = Network.now net; synced = true;
      partitioned = false; term = 0 }
  in
  if replicas = 1 then begin
    (* degenerate case: plain single controller, byte-identical to
       [Runtime.create] — no fencing, no adoption, no heartbeats *)
    let m = member 0 Leader in
    let t =
      { net; cfg; latency;
        resilience =
          (match resilience with
           | Some r -> r
           | None -> Runtime.default_resilience);
        mk_apps; switch_ids; members = [| m |]; repl_fault;
        repl_arrival = Hashtbl.create 4;
        rstats =
          { failovers = 0; takeovers_completed = 0; step_downs = 0;
            hb_sent = 0; deltas_sent = 0; repl_msgs = 0; repl_bytes = 0;
            repl_drops = 0; syncs = 0; failover_samples = [] };
        stopped = false }
    in
    let apps = mk_apps () in
    let rt =
      Runtime.create ~latency ?resilience ~switch_ids:t.switch_ids net apps
    in
    m.runtime <- Some rt;
    m.apps <- apps;
    t
  end
  else begin
    let resilience =
      match resilience with
      | Some r -> r
      | None -> { Runtime.default_resilience with selective_resync = true }
    in
    let members =
      Array.init replicas (fun id ->
        member id (if id = 0 then Leader else Standby))
    in
    let t =
      { net; cfg; latency; resilience; mk_apps; switch_ids; members;
        repl_fault; repl_arrival = Hashtbl.create 8;
        rstats =
          { failovers = 0; takeovers_completed = 0; step_downs = 0;
            hb_sent = 0; deltas_sent = 0; repl_msgs = 0; repl_bytes = 0;
            repl_drops = 0; syncs = 0; failover_samples = [] };
        stopped = false }
    in
    Network.set_ctl_outage_handler net (fun ~controller_id ~up ->
      if up then restart t ~controller_id else crash t ~controller_id);
    ignore (start_leader t members.(0) ~shadows:[]);
    Array.iter
      (fun m -> if m.role = Standby then monitor_loop t m m.term)
      members;
    t
  end

let config t = t.cfg
