(** The controller programming interface.

    An {!app} is a record of event callbacks; the {!Runtime} dispatches
    control-channel events to every registered app and provides a
    {!ctx} whose operations (rule installation, packet-out, stats
    polling) are encoded as wire messages and sent down the control
    channel.  Several apps can run side by side (they see the same
    events); apps that install rules should use distinct cookie spaces
    if they need to delete selectively. *)

type ctx = {
  net : Dataplane.Network.t;
  send : switch_id:int -> Openflow.Message.t -> unit;
      (** low-level: send any message to a switch *)
  send_batch : switch_id:int -> Openflow.Message.t list -> unit;
      (** low-level: send several messages to a switch as one wire batch
          (one transmission, applied in order at delivery) *)
  await_stats :
    switch_id:int -> (Openflow.Message.stats_reply -> unit) -> unit;
      (** enqueue a one-shot continuation for the switch's next stats
          reply (replies arrive in request order on the ordered control
          channel) *)
}

(** The network topology as currently known (link state included). *)
let topology ctx = Dataplane.Network.topology ctx.net

(** Current simulated time. *)
let time ctx = Dataplane.Network.now ctx.net

(** [schedule ctx ~delay f] runs [f] after [delay] seconds of simulated
    time. *)
let schedule ctx ~delay f =
  Dataplane.Sim.schedule (Dataplane.Network.sim ctx.net) ~delay f

(** [install ctx ~switch_id ?priority ?idle_timeout ?hard_timeout ?cookie
    pattern actions] adds a flow rule. *)
let install ctx ~switch_id ?(priority = 0) ?idle_timeout ?hard_timeout
    ?(cookie = 0) ?(notify_when_removed = false) pattern actions =
  ctx.send ~switch_id
    (Openflow.Message.Flow_mod
       (Openflow.Message.add_flow ~priority ~idle_timeout ~hard_timeout
          ~cookie ~notify_when_removed ~pattern ~actions ()))

(** [install_rules ctx ~switch_id ?cookie rules] installs all of
    [rules] — [(priority, pattern, actions)] triples — as {e one}
    batched transmission (see {!Openflow.Wire.encode_batch}) terminated
    by a barrier request, so install cost on the control channel is
    per-batch, not per-rule.  [replace] prepends a delete of every rule
    the cookie owns, making the batch a full-table replacement.  A
    no-op on an empty rule list with [replace] off. *)
let install_rules ctx ~switch_id ?idle_timeout ?hard_timeout ?(cookie = 0)
    ?(notify_when_removed = false) ?(replace = false) rules =
  if rules <> [] || replace then begin
    let adds =
      List.map
        (fun (priority, pattern, actions) ->
          Openflow.Message.Flow_mod
            (Openflow.Message.add_flow ~priority ~idle_timeout ~hard_timeout
               ~cookie ~notify_when_removed ~pattern ~actions ()))
        rules
    in
    let msgs =
      if replace then
        Openflow.Message.Flow_mod
          (Openflow.Message.delete_flow ~cookie:(Some cookie)
             ~pattern:Flow.Pattern.any ())
        :: adds
      else adds
    in
    ctx.send_batch ~switch_id (msgs @ [ Openflow.Message.Barrier_request ])
  end

(** [delta_flow_mods ?cookie ~adds ~deletes ()] — the flow-mod messages
    for a minimal table edit: one add/modify per rule of [adds], one
    strict delete per rule of [deletes].  No barrier; see
    {!apply_delta}. *)
let delta_flow_mods ?idle_timeout ?hard_timeout ?(cookie = 0)
    ?(notify_when_removed = false) ~(adds : Netkat.Local.rule list)
    ~(deletes : Netkat.Local.rule list) () =
  let add_msgs =
    List.map
      (fun (r : Netkat.Local.rule) ->
        Openflow.Message.Flow_mod
          (Openflow.Message.add_flow ~priority:r.priority ~idle_timeout
             ~hard_timeout ~cookie ~notify_when_removed ~pattern:r.pattern
             ~actions:r.actions ()))
      adds
  in
  let delete_msgs =
    List.map
      (fun (r : Netkat.Local.rule) ->
        Openflow.Message.Flow_mod
          (Openflow.Message.delete_strict_flow ~cookie:(Some cookie)
             ~priority:r.priority ~pattern:r.pattern ()))
      deletes
  in
  add_msgs @ delete_msgs

(** [apply_delta ctx ~switch_id ?cookie ~adds ~deletes ()] pushes a
    minimal table edit as one batched transmission terminated by a
    barrier: adds/modifies first (an OpenFlow add with an existing
    [(priority, pattern)] is a modify), then strict deletes of vanished
    rules.  Sends nothing at all when both lists are empty — a no-op
    edit must not touch the switch (its flow cache stays warm). *)
let apply_delta ctx ~switch_id ?idle_timeout ?hard_timeout ?cookie
    ?notify_when_removed ~adds ~deletes () =
  match (adds, deletes) with
  | [], [] -> ()
  | _ ->
    let msgs =
      delta_flow_mods ?idle_timeout ?hard_timeout ?cookie
        ?notify_when_removed ~adds ~deletes ()
    in
    ctx.send_batch ~switch_id (msgs @ [ Openflow.Message.Barrier_request ])

(** [uninstall ctx ~switch_id ?cookie pattern] deletes all rules subsumed
    by [pattern] (restricted to [cookie] when given). *)
let uninstall ctx ~switch_id ?cookie pattern =
  ctx.send ~switch_id
    (Openflow.Message.Flow_mod (Openflow.Message.delete_flow ~cookie ~pattern ()))

(** [uninstall_strict ctx ~switch_id ~priority pattern] deletes exactly
    the rule with this priority and pattern. *)
let uninstall_strict ctx ~switch_id ?cookie ~priority pattern =
  ctx.send ~switch_id
    (Openflow.Message.Flow_mod
       (Openflow.Message.delete_strict_flow ~cookie ~priority ~pattern ()))

(** [clear ctx ~switch_id] empties the switch's table. *)
let clear ctx ~switch_id = uninstall ctx ~switch_id Flow.Pattern.any

(** [packet_out ctx ~switch_id ~in_port actions payload] re-injects a
    packet at the switch, applying [actions]. *)
let packet_out ctx ~switch_id ~in_port actions payload =
  ctx.send ~switch_id
    (Openflow.Message.Packet_out
       { out_in_port = in_port; out_actions = actions; out_packet = payload })

(** [flood ctx ~switch_id ~in_port payload] sends out all (spanning-tree)
    ports except the ingress. *)
let flood ctx ~switch_id ~in_port payload =
  packet_out ctx ~switch_id ~in_port [ Flow.Action.Output Flood ] payload

(** [request_stats ctx ~switch_id req k] polls statistics; [k] receives
    the matching {!Openflow.Message.stats_reply}. *)
let request_stats ctx ~switch_id req k =
  ctx.await_stats ~switch_id k;
  ctx.send ~switch_id (Openflow.Message.Stats_request req)

(** [set_flood_ports ctx ~switch_id ports] restricts the switch's [Flood]
    action to [ports] (plus never the ingress).  This models configuring
    the spanning-tree port set and takes effect immediately. *)
let set_flood_ports ctx ~switch_id ports =
  (Dataplane.Network.switch ctx.net switch_id).flood_ports <- Some ports

type app = {
  name : string;
  switch_up : ctx -> switch_id:int -> ports:int list -> unit;
  switch_down : ctx -> switch_id:int -> unit;
      (** fired by the runtime's keepalive loop when a switch misses the
          echo threshold (or greets mid-session, betraying a restart);
          a later re-handshake fires [switch_up] again *)
  packet_in :
    ctx -> switch_id:int -> port:int ->
    reason:Openflow.Message.packet_in_reason ->
    Openflow.Message.payload -> unit;
  port_status : ctx -> switch_id:int -> port:int -> up:bool -> unit;
  flow_removed : ctx -> switch_id:int -> Openflow.Message.flow_removed -> unit;
  export_state : ctx -> string option;
      (** replication hook (see {!Controller.Replica}): an opaque blob of
          the app's durable state, shipped to standby controllers with
          each heartbeat.  [None] (the default) = stateless — tables and
          topology reactions are rebuilt from events, nothing to carry.
          Export only what a fresh instance cannot re-derive (e.g. a
          version counter whose values are still live in the dataplane,
          see {!Update.export_state}). *)
  import_state : ctx -> string -> unit;
      (** replication hook: a newly-promoted leader's fresh app instance
          receives the latest blob the old leader exported (called once,
          before any [switch_up] events).  Default: ignore. *)
}

(** An app with every callback a no-op; override the fields you need. *)
let default_app name =
  { name;
    switch_up = (fun _ ~switch_id:_ ~ports:_ -> ());
    switch_down = (fun _ ~switch_id:_ -> ());
    packet_in = (fun _ ~switch_id:_ ~port:_ ~reason:_ _ -> ());
    port_status = (fun _ ~switch_id:_ ~port:_ ~up:_ -> ());
    flow_removed = (fun _ ~switch_id:_ _ -> ());
    export_state = (fun _ -> None);
    import_state = (fun _ _ -> ()) }
