(** Proactive ACL firewall: compiles an access-control list composed
    with shortest-path routing ({!Netkat.Builder.firewall}) and installs
    the result.  Separated from {!Routing} so experiments can measure the
    cost of policy composition.

    ACLs churn (entries added/removed at runtime via {!set_entries});
    with [incremental] on, each re-push runs through {!Netkat.Delta}:
    switches whose table is unaffected by the edit are skipped entirely
    and the rest get minimal add/strict-delete batches. *)

type t = {
  app : Api.app;
  cookie : int;
  incremental : bool;
  default_allow : bool;
  mutable entries : Netkat.Builder.acl_entry list;
  mutable rules_installed : int;
  mutable delta_mods : int;     (* flow-mods issued on incremental pushes *)
  mutable skipped : int;        (* switches skipped as unchanged *)
  mutable snap : Netkat.Delta.snapshot option;
}

let push t ctx =
  let topo = Api.topology ctx in
  let pol =
    Netkat.Builder.firewall ~default_allow:t.default_allow topo t.entries
  in
  let fdd = Netkat.Fdd.of_policy pol in
  let previous = if t.incremental then t.snap else None in
  (* compile on the domain pool (uid-skipping the unchanged switches),
     then one batch per switch: full replacement on first contact, the
     minimal delta afterwards *)
  let result =
    Netkat.Delta.compile ~switches:(Topo.Topology.switch_ids topo) previous
      fdd
  in
  t.snap <- Some result.snapshot;
  t.skipped <- t.skipped + result.skipped;
  List.iter
    (fun (switch_id, change) ->
      match (change : Netkat.Delta.change) with
      | Netkat.Delta.Unchanged -> ()
      | Netkat.Delta.Changed { rules; adds; deletes } ->
        (match previous with
         | Some p when Netkat.Delta.find p switch_id <> None ->
           t.delta_mods <- t.delta_mods + List.length adds + List.length deletes;
           Api.apply_delta ctx ~switch_id ~cookie:t.cookie ~adds ~deletes ()
         | _ ->
           Api.install_rules ctx ~switch_id ~cookie:t.cookie ~replace:true
             (List.map
                (fun (r : Netkat.Local.rule) ->
                  t.rules_installed <- t.rules_installed + 1;
                  (r.priority, r.pattern, r.actions))
                rules)))
    result.changes

(** [set_entries t ctx entries] replaces the ACL and re-pushes; with
    [incremental] on, only the switches whose compiled table actually
    changed are touched. *)
let set_entries t ctx entries =
  t.entries <- entries;
  push t ctx

let create ?(default_allow = true) ?incremental ?(cookie = 0x0f) entries =
  let incremental =
    match incremental with
    | Some b -> b
    | None -> Netkat.Delta.env_enabled ()
  in
  let t_ref = ref None in
  let installed = ref false in
  let switch_up ctx ~switch_id:_ ~ports:_ =
    if not !installed then begin
      installed := true;
      push (Option.get !t_ref) ctx
    end
  in
  let app = { (Api.default_app "firewall") with switch_up } in
  let t =
    { app; cookie; incremental; default_allow; entries; rules_installed = 0;
      delta_mods = 0; skipped = 0; snap = None }
  in
  t_ref := Some t;
  t

let app t = t.app
let rules_installed t = t.rules_installed
let delta_mods t = t.delta_mods
let skipped_switches t = t.skipped
