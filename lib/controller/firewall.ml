(** Proactive ACL firewall: compiles an access-control list composed
    with shortest-path routing ({!Netkat.Builder.firewall}) and installs
    the result.  Separated from {!Routing} so experiments can measure the
    cost of policy composition. *)

type t = {
  app : Api.app;
  cookie : int;
  entries : Netkat.Builder.acl_entry list;
  default_allow : bool;
  mutable rules_installed : int;
}

let push t ctx =
  let topo = Api.topology ctx in
  let pol =
    Netkat.Builder.firewall ~default_allow:t.default_allow topo t.entries
  in
  let fdd = Netkat.Fdd.of_policy pol in
  (* compile on the domain pool, then one batched replacement per switch *)
  Netkat.Local.rules_of_fdd_all ~switches:(Topo.Topology.switch_ids topo) fdd
  |> List.iter (fun (switch_id, rules) ->
    Api.install_rules ctx ~switch_id ~cookie:t.cookie ~replace:true
      (List.map
         (fun (r : Netkat.Local.rule) ->
           t.rules_installed <- t.rules_installed + 1;
           (r.priority, r.pattern, r.actions))
         rules))

let create ?(default_allow = true) ?(cookie = 0x0f) entries =
  let t_ref = ref None in
  let installed = ref false in
  let switch_up ctx ~switch_id:_ ~ports:_ =
    if not !installed then begin
      installed := true;
      push (Option.get !t_ref) ctx
    end
  in
  let app = { (Api.default_app "firewall") with switch_up } in
  let t = { app; cookie; entries; default_allow; rules_installed = 0 } in
  t_ref := Some t;
  t

let app t = t.app
let rules_installed t = t.rules_installed
