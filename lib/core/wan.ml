(** From TE allocation to forwarding state: realizes a {!Te.Alloc.t} as
    compilable policy and drives packet traffic along it, closing the
    loop between the analytic allocation and the simulated dataplane.

    A demand's allocation may split across several paths; since exact-match
    rules cannot express ratios, each demand is realized as [subflows]
    micro-flows (distinct [tp_src] ports) apportioned to paths by largest
    remainder — the standard flow-level approximation of weighted
    multipath (WCMP). *)

module Node = Topo.Topology.Node

type subflow = {
  demand : Te.Demand.t;
  src_host : int;
  dst_host : int;
  tp_src : int;
  rate : float;           (** bits per second assigned to this subflow *)
  path : Topo.Path.t;     (** switch-level path from the demand's source *)
}

let host_of_switch topo sw =
  match Topo.Topology.hosts_of_switch topo sw with
  | (h, _) :: _ -> h
  | [] ->
    invalid_arg
      (Printf.sprintf "Wan: switch %d has no attached host to source traffic"
         sw)

(* largest-remainder apportionment of [total] slots over weights *)
let apportion ~total weights =
  let sum = List.fold_left ( +. ) 0.0 weights in
  if sum <= 0.0 then List.map (fun _ -> 0) weights
  else begin
    let exact = List.map (fun w -> float_of_int total *. w /. sum) weights in
    let floors = List.map int_of_float exact in
    let assigned = List.fold_left ( + ) 0 floors in
    let remainders =
      List.mapi (fun i e -> (e -. Float.of_int (List.nth floors i), i)) exact
      |> List.sort compare |> List.rev
    in
    let extra = total - assigned in
    let bonus = List.filteri (fun rank _ -> rank < extra) remainders in
    List.mapi
      (fun i fl -> fl + if List.exists (fun (_, j) -> j = i) bonus then 1 else 0)
      floors
  end

(** [subflows_of_alloc topo alloc ~subflows] — the micro-flows realizing
    the allocation.  Demands with no usable share are skipped. *)
let subflows_of_alloc topo (alloc : Te.Alloc.t) ~subflows =
  List.concat
    (List.mapi
       (fun di (e : Te.Alloc.entry) ->
         let shares =
           List.filter (fun (s : Te.Alloc.path_share) -> s.rate > 1e-9 && s.path <> [])
             e.shares
         in
         match shares with
         | [] -> []
         | _ ->
           let counts =
             apportion ~total:subflows
               (List.map (fun (s : Te.Alloc.path_share) -> s.rate) shares)
           in
           let src_host = host_of_switch topo e.demand.src in
           let dst_host = host_of_switch topo e.demand.dst in
           let flows = ref [] in
           let flow_index = ref 0 in
           List.iteri
             (fun si (s : Te.Alloc.path_share) ->
               let n = List.nth counts si in
               for _ = 1 to n do
                 flows :=
                   { demand = e.demand; src_host; dst_host;
                     tp_src = 20000 + (di * 256) + !flow_index;
                     rate = s.rate /. float_of_int (max 1 n);
                     path = s.path }
                   :: !flows;
                 incr flow_index
               done)
             shares;
           List.rev !flows)
       alloc.entries)

(** Forwarding policy pinning every subflow to its allocated path
    (including delivery from/to the attached hosts). *)
let policy_of_subflows topo flows =
  let open Netkat in
  let rules = ref [] in
  List.iter
    (fun f ->
      let match_flow =
        Syntax.conj
          (Syntax.test Packet.Fields.Ip4_src (Packet.Ipv4.of_host_id f.src_host))
          (Syntax.conj
             (Syntax.test Packet.Fields.Ip4_dst (Packet.Ipv4.of_host_id f.dst_host))
             (Syntax.test Packet.Fields.Tp_src f.tp_src))
      in
      (* hops along the switch-level path *)
      List.iter
        (fun (h : Topo.Path.hop) ->
          match h.node with
          | Node.Host _ -> ()
          | Node.Switch sw ->
            rules :=
              Syntax.big_seq
                [ Syntax.at ~switch:sw; Syntax.filter match_flow;
                  Syntax.forward h.out_port ]
              :: !rules)
        f.path;
      (* final delivery: destination switch to its host *)
      let dst_sw =
        match List.rev f.path with
        | last :: _ -> Node.id last.next
        | [] -> f.demand.src
      in
      match Topo.Topology.hosts_of_switch topo dst_sw
            |> List.find_opt (fun (h, _) -> h = f.dst_host)
      with
      | Some (_, host_port) ->
        rules :=
          Syntax.big_seq
            [ Syntax.at ~switch:dst_sw; Syntax.filter match_flow;
              Syntax.forward host_port ]
          :: !rules
      | None -> ())
    flows;
  Netkat.Syntax.big_union (List.rev !rules)

type measurement = {
  m_demand : Te.Demand.t;
  allocated : float;  (** bits/s the TE scheme granted *)
  measured : float;   (** bits/s observed at the destination host *)
}

(** [drive network flows ~pkt_size ~duration] — sends CBR traffic for
    every subflow at its allocated rate (fixed [tp_src], so the installed
    policy pins it to its path), runs the simulation, and reports
    per-demand allocated vs measured throughput over the window. *)
let drive network flows ~pkt_size ~duration =
  let key (d : Te.Demand.t) = (d.src, d.dst, d.priority) in
  let received : (int * int * int, int ref) Hashtbl.t = Hashtbl.create 32 in
  let allocated : (int * int * int, float) Hashtbl.t = Hashtbl.create 32 in
  let demands : (int * int * int, Te.Demand.t) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun f ->
      let k = key f.demand in
      Hashtbl.replace demands k f.demand;
      Hashtbl.replace allocated k
        (f.rate +. Option.value ~default:0.0 (Hashtbl.find_opt allocated k));
      let cell =
        match Hashtbl.find_opt received k with
        | Some c -> c
        | None ->
          let c = ref 0 in
          Hashtbl.replace received k c;
          c
      in
      let host = Dataplane.Network.host network f.dst_host in
      let previous = host.on_receive in
      let src_ip = Packet.Ipv4.of_host_id f.src_host in
      let tp_src = f.tp_src in
      host.on_receive <-
        Some
          (fun pkt ->
            (match previous with Some g -> g pkt | None -> ());
            if pkt.hdr.tp_src = tp_src && pkt.hdr.ip4_src = src_ip then
              cell := !cell + pkt.size);
      let pps = f.rate /. (8.0 *. float_of_int pkt_size) in
      if pps > 0.01 then
        ignore
          (Dataplane.Traffic.cbr network
             { src = f.src_host; dst = f.dst_host; rate_pps = pps; pkt_size;
               start = 0.0; stop = duration; tp_dst = 80;
               tp_src = Some f.tp_src }))
    flows;
  ignore (Dataplane.Network.run ~until:(duration +. 1.0) network ());
  Hashtbl.fold
    (fun k bytes acc ->
      { m_demand = Hashtbl.find demands k;
        allocated = Hashtbl.find allocated k;
        measured = float_of_int !bytes *. 8.0 /. duration }
      :: acc)
    received []
  |> List.sort (fun a b -> compare (key a.m_demand) (key b.m_demand))

(** One call: realize [alloc] on a fresh network over [topo], drive it,
    and report.  [subflows] micro-flows per demand (default 8). *)
let validate ?(subflows = 8) ?(pkt_size = 1000) ?(duration = 2.0) topo alloc =
  let flows = subflows_of_alloc topo alloc ~subflows in
  let pol = policy_of_subflows topo flows in
  let network = Dataplane.Network.create topo in
  (* compile all switches on the domain pool, then load the tables *)
  Netkat.Local.compile_all ~switches:(Topo.Topology.switch_ids topo) pol
  |> List.iter (fun (switch_id, rules) ->
    let table = (Dataplane.Network.switch network switch_id).table in
    List.iter
      (fun (r : Netkat.Local.rule) ->
        Flow.Table.add table
          (Flow.Table.make_rule ~priority:r.priority ~pattern:r.pattern
             ~actions:r.actions ()))
      rules);
  drive network flows ~pkt_size ~duration

(** Aggregate deviation: total measured / total allocated. *)
let accuracy measurements =
  let alloc = List.fold_left (fun a m -> a +. m.allocated) 0.0 measurements in
  let meas = List.fold_left (fun a m -> a +. m.measured) 0.0 measurements in
  if alloc <= 0.0 then 1.0 else meas /. alloc
