(** The public facade of the toolkit — the four architectural pillars
    behind one small API.

    {ol
    {- {b Separated planes}: build a topology ({!Topo.Gen}), instantiate
       a simulated dataplane ({!create}), and either program it directly
       ({!install_policy}) or attach a controller with apps
       ({!with_controller}).}
    {- {b Declarative policy}: express intent in the policy language
       ({!Netkat.Syntax}, {!Netkat.Parser}) and let the FDD compiler
       produce the tables.}
    {- {b Slicing}: {!Slice} compiles coexisting tenants onto one
       substrate.}
    {- {b Verification}: {!snapshot} extracts the installed tables for
       header-space analysis ({!Verify.Reach}).}}

    See [examples/] for complete programs built on this module. *)

(** Network slicing (re-exported — this file is the library root). *)
module Slice = Slice

(** TE-allocation realization and validation (re-exported). *)
module Wan = Wan

type net = {
  network : Dataplane.Network.t;
  mutable runtime : Controller.Runtime.t option;
  mutable delta_snap : Netkat.Delta.snapshot option;
      (* last compile's per-switch certificates, for incremental installs *)
}

(** [create topo] instantiates the simulated network (empty tables).
    [sim_engine] selects the event-queue backend (see {!Dataplane.Sim});
    both engines produce identical simulations.  [fault] attaches a
    chaos layer to the control channel (see {!Dataplane.Fault}; defaults
    to the [ZEN_CHAOS_*] environment knobs, usually absent). *)
let create ?queue_depth ?sim_engine ?fault topo =
  { network = Dataplane.Network.create ?queue_depth ?sim_engine ?fault topo;
    runtime = None; delta_snap = None }

let topology t = Dataplane.Network.topology t.network
let network t = t.network
let now t = Dataplane.Network.now t.network

(** [install_fdd t fdd] compiles an already-built diagram and loads
    every switch's table directly (the "compiled, proactive, no
    controller" mode).  Returns total rules installed.

    With [incremental] (default: the [ZEN_INCREMENTAL] environment
    knob), the compile runs through {!Netkat.Delta} against the previous
    install's snapshot: switches whose restricted diagram is
    uid-unchanged are not touched at all (their flow caches stay warm),
    and changed switches get in-place modify/remove edits instead of
    clear + reload.
    @raise Netkat.Local.Not_local on policies with links. *)
let install_fdd ?incremental t fdd =
  let incremental =
    match incremental with
    | Some b -> b
    | None -> Netkat.Delta.env_enabled ()
  in
  (* per-switch compilation runs on the shared domain pool; the tables
     are loaded sequentially here (they belong to the simulator) *)
  let previous = if incremental then t.delta_snap else None in
  let result =
    Netkat.Delta.compile
      ~switches:(Topo.Topology.switch_ids (topology t)) previous fdd
  in
  t.delta_snap <- Some result.snapshot;
  List.iter
    (fun (switch_id, change) ->
      match (change : Netkat.Delta.change) with
      | Netkat.Delta.Unchanged -> ()
      | Netkat.Delta.Changed { rules; adds; deletes } ->
        let table = (Dataplane.Network.switch t.network switch_id).table in
        let add (r : Netkat.Local.rule) =
          Flow.Table.add table
            (Flow.Table.make_rule ~priority:r.priority ~pattern:r.pattern
               ~actions:r.actions ())
        in
        (match previous with
         | Some p when Netkat.Delta.find p switch_id <> None ->
           (* in-place edit: modify/insert the changed rules, then drop
              the vanished ones *)
           List.iter add adds;
           List.iter
             (fun (r : Netkat.Local.rule) ->
               Flow.Table.remove_strict table ~priority:r.priority
                 ~pattern:r.pattern)
             deletes
         | _ ->
           Flow.Table.clear table;
           List.iter add rules))
    result.changes;
  Netkat.Delta.total_rules result.snapshot

(** [install_policy t pol] — {!install_fdd} from policy syntax.
    Returns total rules installed.
    @raise Netkat.Local.Not_local on policies with links. *)
let install_policy ?incremental t pol =
  install_fdd ?incremental t (Netkat.Fdd.of_policy pol)

(** [install_policy_string t s] — as {!install_policy}, from concrete
    syntax.  @raise Netkat.Parser.Parse_error on bad syntax. *)
let install_policy_string t s =
  install_policy t (Netkat.Parser.pol_of_string s)

(** [with_controller t apps] attaches a controller running [apps] and
    completes the handshake (the "controller-driven" mode).
    [resilience] turns on keepalives, reliable flow-mod delivery and
    crash resync (see {!Controller.Runtime}). *)
let with_controller ?latency ?resilience t apps =
  let rt =
    Controller.Runtime.create_and_handshake ?latency ?resilience t.network apps
  in
  t.runtime <- Some rt;
  rt

(** [with_replicas t mk_apps] attaches a replicated controller:
    [replicas] members (default: the [ZEN_REPLICAS] knob, else 2) over
    one network under a leader lease of [lease] seconds (default: the
    [ZEN_LEASE_MS] knob, else 0.15) — see {!Controller.Replica}.
    [mk_apps] is called once per leader incarnation.  [repl_fault]
    attaches chaos to the inter-controller channel.  The leader's
    handshake is driven to completion before returning.  With
    [replicas = 1] the run is byte-identical to {!with_controller}. *)
let with_replicas ?(latency = 1e-3) ?resilience ?replicas ?lease
    ?repl_latency ?repl_fault t mk_apps =
  let r =
    Controller.Replica.create ~latency ?resilience ?replicas ?lease
      ?repl_latency ?repl_fault t.network mk_apps
  in
  t.runtime <- Controller.Replica.leader_runtime r;
  let horizon = now t +. (20.0 *. latency) in
  ignore (Dataplane.Network.run ~until:horizon t.network ());
  r

(** [run t ~until] advances simulated time. *)
let run ?until ?max_events t =
  Dataplane.Network.run ?until ?max_events t.network ()

(* ------------------------------------------------------------------ *)
(* Sharded simulation (see {!Dataplane.Shard}) *)

(** [create_sharded topo] partitions the network over [shards] OCaml
    domains (default: the [ZEN_SIM_SHARDS] environment knob, else 1)
    and runs them under conservative lookahead.  Install tables with
    {!install_policy_sharded} (or directly per shard), or attach a
    controller with {!with_controller_sharded}.  Observable results are
    pinned equal to {!create} + {!run} on the same seed and workload. *)
let create_sharded ?queue_depth ?sim_engine ?fault_config ?shards ?partition
    topo =
  let shards =
    match shards with Some n -> n | None -> Dataplane.Shard.default_shards ()
  in
  Dataplane.Shard.create ?queue_depth ?sim_engine ?fault_config ?partition
    ~shards topo

(** [install_policy_sharded t pol] — {!install_policy} for a sharded
    network: one FDD compilation over the whole policy, each switch's
    table loaded into the shard that owns it. *)
let install_policy_sharded t pol =
  Netkat.Local.compile_all
    ~switches:(Topo.Topology.switch_ids (Dataplane.Shard.topology t)) pol
  |> List.fold_left
       (fun acc (switch_id, rules) ->
         let net = Dataplane.Shard.net_of_switch t switch_id in
         let table = (Dataplane.Network.switch net switch_id).table in
         Flow.Table.clear table;
         List.iter
           (fun (r : Netkat.Local.rule) ->
             Flow.Table.add table
               (Flow.Table.make_rule ~priority:r.priority ~pattern:r.pattern
                  ~actions:r.actions ()))
           rules;
         acc + List.length rules)
       0

(** [with_controller_sharded t apps] attaches a controller to a sharded
    network — the sharded counterpart of {!with_controller}.  The
    runtime lives on shard 0's simulator and reaches every switch in the
    topology through the sharded control channel
    (see {!Dataplane.Shard.wire_controller}); the handshake is driven to
    completion before returning.  Observable results are pinned equal to
    the single-domain controller run, except that {e control-channel}
    chaos rates split the fault stream per shard (link chaos and
    incidents stay byte-equal).  The learning app is not supported
    sharded (it pokes switch state directly instead of using the
    control channel).  As in the single-domain case, resilient runtimes
    schedule keepalives forever — drive the simulation with
    [run_sharded ~until]. *)
let with_controller_sharded ?(latency = 1e-3) ?resilience ?pool t apps =
  Dataplane.Shard.wire_controller t ~latency;
  let net0 = Dataplane.Shard.net t 0 in
  let switch_ids =
    Topo.Topology.switch_ids (Dataplane.Shard.topology t)
  in
  let rt =
    Controller.Runtime.create ~latency ?resilience ~switch_ids net0 apps
  in
  let horizon = Dataplane.Network.now net0 +. (20.0 *. latency) in
  ignore (Dataplane.Shard.run ?pool ~until:horizon t);
  rt

(** [run_sharded t ~until] advances all shards in parallel; returns
    events executed (including cross-shard queue-release events). *)
let run_sharded ?until ?pool t = Dataplane.Shard.run ?until ?pool t

(** [snapshot t] captures topology + installed tables for verification. *)
let snapshot t : Verify.Reach.snapshot =
  { topo = topology t;
    tables =
      (fun switch_id ->
        Flow.Table.rules (Dataplane.Network.switch t.network switch_id).table) }

(** One-call check: with the current tables, can [src] reach [dst]? *)
let reachable t ~src ~dst = Verify.Reach.reachable (snapshot t) ~src ~dst

(** One-call end-to-end ping through the simulated dataplane: returns
    measured RTTs in seconds (empty = no connectivity). *)
let ping ?(count = 3) ?(interval = 0.01) t ~src ~dst =
  Dataplane.Traffic.install_responders t.network;
  let result = Dataplane.Traffic.ping t.network ~src ~dst ~count ~interval in
  let horizon = now t +. (float_of_int count *. interval) +. 1.0 in
  ignore (run ~until:horizon t);
  List.rev_map snd !(result.rtts)

(** Version of the toolkit. *)
let version = "1.0.0"
