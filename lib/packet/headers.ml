(** The flat header record: the view of a packet that policies and flow
    tables operate on.  It corresponds to a "located packet" in NetKAT
    terminology — the [switch] and [in_port] fields record where the
    packet currently is. *)

type t = {
  switch : int;
  in_port : int;
  eth_src : Mac.t;
  eth_dst : Mac.t;
  eth_type : int;
  vlan : int;  (** {!Fields.vlan_none} when untagged *)
  ip_proto : int;
  ip4_src : Ipv4.t;
  ip4_dst : Ipv4.t;
  tp_src : int;
  tp_dst : int;
}

(** All-zero headers on switch 0 port 0, untagged. *)
let default =
  { switch = 0; in_port = 0; eth_src = 0; eth_dst = 0; eth_type = 0;
    vlan = Fields.vlan_none; ip_proto = 0; ip4_src = 0; ip4_dst = 0;
    tp_src = 0; tp_dst = 0 }

let get t (f : Fields.t) =
  match f with
  | Switch -> t.switch | In_port -> t.in_port | Eth_src -> t.eth_src
  | Eth_dst -> t.eth_dst | Eth_type -> t.eth_type | Vlan -> t.vlan
  | Ip_proto -> t.ip_proto | Ip4_src -> t.ip4_src | Ip4_dst -> t.ip4_dst
  | Tp_src -> t.tp_src | Tp_dst -> t.tp_dst

let set t (f : Fields.t) v =
  match f with
  | Switch -> { t with switch = v }
  | In_port -> { t with in_port = v }
  | Eth_src -> { t with eth_src = v }
  | Eth_dst -> { t with eth_dst = v }
  | Eth_type -> { t with eth_type = v }
  | Vlan -> { t with vlan = v }
  | Ip_proto -> { t with ip_proto = v }
  | Ip4_src -> { t with ip4_src = v }
  | Ip4_dst -> { t with ip4_dst = v }
  | Tp_src -> { t with tp_src = v }
  | Tp_dst -> { t with tp_dst = v }

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = compare a b

(** Cheap deterministic hash over the full header tuple, suitable as an
    exact-match flow-cache key (avoids the generic [Hashtbl.hash]
    traversal). *)
let hash (t : t) =
  let mix h v = (h * 31) + v in
  mix
    (mix
       (mix
          (mix
             (mix
                (mix
                   (mix
                      (mix (mix (mix t.switch t.in_port) t.eth_src) t.eth_dst)
                      t.eth_type)
                   t.vlan)
                t.ip_proto)
             t.ip4_src)
          t.ip4_dst)
       t.tp_src)
    t.tp_dst
  land max_int

let pp fmt t =
  Format.fprintf fmt
    "{sw=%d port=%d %a->%a type=0x%04x vlan=%s proto=%d %a:%d->%a:%d}"
    t.switch t.in_port Mac.pp t.eth_src Mac.pp t.eth_dst t.eth_type
    (if t.vlan = Fields.vlan_none then "-" else string_of_int t.vlan)
    t.ip_proto Ipv4.pp t.ip4_src t.tp_src Ipv4.pp t.ip4_dst t.tp_dst

let to_string t = Format.asprintf "%a" pp t

(** A plausible TCP packet between two synthesized hosts, convenient for
    tests and workload generators. *)
let tcp ~switch ~in_port ~src_host ~dst_host ~tp_src ~tp_dst =
  { switch; in_port;
    eth_src = Mac.of_host_id src_host; eth_dst = Mac.of_host_id dst_host;
    eth_type = 0x0800; vlan = Fields.vlan_none; ip_proto = 6;
    ip4_src = Ipv4.of_host_id src_host; ip4_dst = Ipv4.of_host_id dst_host;
    tp_src; tp_dst }
