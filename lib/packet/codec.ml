(** Binary wire codec for {!Frame.t}: big-endian serialization following
    the standard header layouts (Ethernet II, 802.1Q, ARP over Ethernet,
    IPv4 without options, TCP without options, UDP, ICMP).  The IPv4
    header checksum is computed on encode and validated on decode.

    Encoding is single-pass: the total size is computed up front
    ({!Frame.size}) and every layer writes directly into its slice of
    one output buffer — no per-layer allocation or blitting.
    {!encode_into} exposes the same path for callers that reuse a
    buffer (e.g. one acquired from {!Util.Bufpool}); it writes every
    byte of the frame explicitly, checksum and reserved fields
    included, so dirty pooled buffers are safe.  Lengths that must fit
    a wire field (IPv4 total length, TCP/UDP payload sizes) are
    range-checked and raise {!Parse_error} instead of truncating. *)

open Util

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Encoding: each writer fills [b] starting at [off] and returns the
   number of bytes written *)

let write_tcp b off (t : Frame.tcp) =
  let plen = Bytes.length t.tcp_payload in
  (* no length field of its own, but the segment must fit an IPv4
     datagram's 16-bit total *)
  if 20 + plen > 0xffff then fail "tcp: payload too large";
  Bits.set_u16 b off t.tcp_src;
  Bits.set_u16 b (off + 2) t.tcp_dst;
  Bits.set_u32 b (off + 4) t.seq;
  Bits.set_u32 b (off + 8) t.ack;
  (* data offset 5 words, then flags *)
  Bits.set_u16 b (off + 12) ((5 lsl 12) lor (t.flags land 0x1ff));
  Bits.set_u16 b (off + 14) t.window;
  Bits.set_u16 b (off + 16) 0 (* checksum *);
  Bits.set_u16 b (off + 18) 0 (* urgent pointer *);
  Bytes.blit t.tcp_payload 0 b (off + 20) plen;
  20 + plen

let write_udp b off (u : Frame.udp) =
  let len = 8 + Bytes.length u.udp_payload in
  if len > 0xffff then fail "udp: payload too large";
  Bits.set_u16 b off u.udp_src;
  Bits.set_u16 b (off + 2) u.udp_dst;
  Bits.set_u16 b (off + 4) len;
  Bits.set_u16 b (off + 6) 0 (* checksum *);
  Bytes.blit u.udp_payload 0 b (off + 8) (len - 8);
  len

let write_icmp b off (i : Frame.icmp) =
  let plen = Bytes.length i.icmp_payload in
  Bits.set_u8 b off i.icmp_type;
  Bits.set_u8 b (off + 1) i.icmp_code;
  Bits.set_u16 b (off + 2) 0 (* checksum *);
  Bytes.blit i.icmp_payload 0 b (off + 4) plen;
  4 + plen

let ip_payload_size : Frame.ip_payload -> int = function
  | Tcp t -> 20 + Bytes.length t.tcp_payload
  | Udp u -> 8 + Bytes.length u.udp_payload
  | Icmp i -> 4 + Bytes.length i.icmp_payload
  | Ip_raw (_, raw) -> Bytes.length raw

let write_ipv4 b off (ip : Frame.ipv4) =
  let total = 20 + ip_payload_size ip.ip_payload in
  if total > 0xffff then fail "ipv4: payload too large";
  Bits.set_u8 b off 0x45 (* version 4, IHL 5 *);
  Bits.set_u8 b (off + 1) (ip.dscp lsl 2);
  Bits.set_u16 b (off + 2) total;
  Bits.set_u16 b (off + 4) ip.ident;
  Bits.set_u16 b (off + 6) 0 (* flags/fragment *);
  Bits.set_u8 b (off + 8) ip.ttl;
  Bits.set_u8 b (off + 9) (Frame.ip_proto_of_payload ip.ip_payload);
  Bits.set_u16 b (off + 10) 0 (* checksum, patched below *);
  Bits.set_u32 b (off + 12) (Ipv4.to_int ip.ip_src);
  Bits.set_u32 b (off + 16) (Ipv4.to_int ip.ip_dst);
  Bits.set_u16 b (off + 10) (Bits.ones_complement_sum b off 20);
  let body = off + 20 in
  (match ip.ip_payload with
   | Tcp t -> ignore (write_tcp b body t)
   | Udp u -> ignore (write_udp b body u)
   | Icmp i -> ignore (write_icmp b body i)
   | Ip_raw (_, raw) -> Bytes.blit raw 0 b body (Bytes.length raw));
  total

let write_arp b off (a : Frame.arp) =
  Bits.set_u16 b off 1 (* htype ethernet *);
  Bits.set_u16 b (off + 2) Frame.ethertype_ip;
  Bits.set_u8 b (off + 4) 6 (* hlen *);
  Bits.set_u8 b (off + 5) 4 (* plen *);
  Bits.set_u16 b (off + 6) (match a.op with Arp_request -> 1 | Arp_reply -> 2);
  Bits.set_u48 b (off + 8) (Mac.to_int a.sha);
  Bits.set_u32 b (off + 14) (Ipv4.to_int a.spa);
  Bits.set_u48 b (off + 18) (Mac.to_int a.tha);
  Bits.set_u32 b (off + 24) (Ipv4.to_int a.tpa);
  28

(** [encode_into frame buf off] serializes [frame] into [buf] at [off]
    in one pass, returning the number of bytes written
    (= [Frame.size frame]).  Every byte of the frame is written, so
    [buf] may hold arbitrary prior contents (e.g. a pooled buffer).
    @raise Invalid_argument when [buf] is too small.
    @raise Parse_error when a length exceeds its wire field. *)
let encode_into (t : Frame.t) b off =
  let size = Frame.size t in
  if off < 0 || off + size > Bytes.length b then
    invalid_arg "Codec.encode_into: buffer too small";
  Bits.set_u48 b off (Mac.to_int t.eth_dst);
  Bits.set_u48 b (off + 6) (Mac.to_int t.eth_src);
  let ethertype = Frame.ethertype_of_payload t.eth_payload in
  let body =
    match t.vlan with
    | None ->
      Bits.set_u16 b (off + 12) ethertype;
      off + 14
    | Some vid ->
      Bits.set_u16 b (off + 12) Frame.ethertype_vlan;
      Bits.set_u16 b (off + 14) (vid land 0xfff);
      Bits.set_u16 b (off + 16) ethertype;
      off + 18
  in
  (match t.eth_payload with
   | Ip ip -> ignore (write_ipv4 b body ip)
   | Arp a -> ignore (write_arp b body a)
   | Eth_raw (_, raw) -> Bytes.blit raw 0 b body (Bytes.length raw));
  size

(** [encode frame] serializes to freshly-allocated bytes of exactly
    [Frame.size frame] bytes. *)
let encode (t : Frame.t) =
  let b = Bytes.create (Frame.size t) in
  ignore (encode_into t b 0);
  b

(* ------------------------------------------------------------------ *)
(* Decoding *)

let sub b off len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    fail "truncated packet (want %d bytes at %d, have %d)" len off
      (Bytes.length b)
  else Bytes.sub b off len

let decode_tcp b : Frame.tcp =
  if Bytes.length b < 20 then fail "tcp: truncated header";
  let data_off = (Bits.get_u16 b 12 lsr 12) * 4 in
  if data_off < 20 || data_off > Bytes.length b then fail "tcp: bad offset";
  { tcp_src = Bits.get_u16 b 0; tcp_dst = Bits.get_u16 b 2;
    seq = Bits.get_u32 b 4; ack = Bits.get_u32 b 8;
    flags = Bits.get_u16 b 12 land 0x1ff; window = Bits.get_u16 b 14;
    tcp_payload = sub b data_off (Bytes.length b - data_off) }

let decode_udp b : Frame.udp =
  if Bytes.length b < 8 then fail "udp: truncated header";
  let len = Bits.get_u16 b 4 in
  if len < 8 || len > Bytes.length b then fail "udp: bad length %d" len;
  { udp_src = Bits.get_u16 b 0; udp_dst = Bits.get_u16 b 2;
    udp_payload = sub b 8 (len - 8) }

let decode_icmp b : Frame.icmp =
  if Bytes.length b < 4 then fail "icmp: truncated header";
  { icmp_type = Bits.get_u8 b 0; icmp_code = Bits.get_u8 b 1;
    icmp_payload = sub b 4 (Bytes.length b - 4) }

let decode_ipv4 b : Frame.ipv4 =
  if Bytes.length b < 20 then fail "ipv4: truncated header";
  let vi = Bits.get_u8 b 0 in
  if vi lsr 4 <> 4 then fail "ipv4: version %d" (vi lsr 4);
  let ihl = (vi land 0xf) * 4 in
  if ihl < 20 || ihl > Bytes.length b then fail "ipv4: bad IHL";
  if Bits.ones_complement_sum b 0 ihl <> 0 then fail "ipv4: bad checksum";
  let total = Bits.get_u16 b 2 in
  if total < ihl || total > Bytes.length b then fail "ipv4: bad total length";
  let proto = Bits.get_u8 b 9 in
  let body = sub b ihl (total - ihl) in
  let payload : Frame.ip_payload =
    if proto = Frame.proto_tcp then Tcp (decode_tcp body)
    else if proto = Frame.proto_udp then Udp (decode_udp body)
    else if proto = Frame.proto_icmp then Icmp (decode_icmp body)
    else Ip_raw (proto, body)
  in
  { ip_src = Bits.get_u32 b 12; ip_dst = Bits.get_u32 b 16;
    ttl = Bits.get_u8 b 8; ident = Bits.get_u16 b 4;
    dscp = Bits.get_u8 b 1 lsr 2; ip_payload = payload }

let decode_arp b : Frame.arp =
  if Bytes.length b < 28 then fail "arp: truncated";
  if Bits.get_u16 b 0 <> 1 || Bits.get_u16 b 2 <> Frame.ethertype_ip then
    fail "arp: not ethernet/ipv4";
  let op =
    match Bits.get_u16 b 6 with
    | 1 -> Frame.Arp_request
    | 2 -> Frame.Arp_reply
    | n -> fail "arp: op %d" n
  in
  { op; sha = Bits.get_u48 b 8; spa = Bits.get_u32 b 14;
    tha = Bits.get_u48 b 18; tpa = Bits.get_u32 b 24 }

(** [decode bytes] parses a frame.
    @raise Parse_error on malformed or truncated input. *)
let decode b : Frame.t =
  if Bytes.length b < 14 then fail "ethernet: truncated header";
  let eth_dst = Bits.get_u48 b 0 and eth_src = Bits.get_u48 b 6 in
  let ty = Bits.get_u16 b 12 in
  let vlan, ty, off =
    if ty = Frame.ethertype_vlan then begin
      if Bytes.length b < 18 then fail "vlan: truncated tag";
      (Some (Bits.get_u16 b 14 land 0xfff), Bits.get_u16 b 16, 18)
    end
    else (None, ty, 14)
  in
  let body = sub b off (Bytes.length b - off) in
  let payload : Frame.eth_payload =
    if ty = Frame.ethertype_ip then Ip (decode_ipv4 body)
    else if ty = Frame.ethertype_arp then Arp (decode_arp body)
    else Eth_raw (ty, body)
  in
  { eth_src; eth_dst; vlan; eth_payload = payload }
