(** Priority flow tables: the forwarding state of one switch.

    Lookup returns the action group of the highest-priority matching
    rule; among equal priorities the earliest-installed rule wins (as in
    OpenFlow, equal-priority overlaps are discouraged — {!overlaps}
    detects them).  Rules carry packet/byte counters and optional idle
    and hard timeouts evicted by {!expire}.

    {b Fast path.}  In front of the linear rule scan sits an OVS-style
    exact-match flow cache: a hashtable keyed on the full header tuple
    that remembers the winning rule (or the absence of one) for every
    header value seen since the last table mutation.  Mutations —
    {!add}, {!remove}, {!remove_strict}, {!clear} and any eviction by
    {!expire} — invalidate the cache in O(1) by bumping a generation
    counter; stale entries are skipped on probe and overwritten.  Cache
    hit/miss/invalidation counters are exposed for monitoring. *)

open Packet

type rule = {
  priority : int;
  pattern : Pattern.t;
  actions : Action.group;
  mutable packets : int;
  mutable bytes : int;
  installed_at : float;
  mutable last_hit : float;
  idle_timeout : float option;  (** seconds of inactivity before eviction *)
  hard_timeout : float option;  (** absolute lifetime in seconds *)
  cookie : int;                 (** opaque tag chosen by the controller *)
}

module Cache = Hashtbl.Make (struct
  type t = Headers.t

  let equal = Headers.equal
  let hash = Headers.hash
end)

(* Bound on resident cache entries (live + stale); reaching it resets
   the whole cache rather than evicting per-entry. *)
let max_cache_entries = 8192

type t = {
  mutable rules : rule list;  (* descending priority, stable within ties *)
  mutable n_rules : int;
  mutable capacity : int option;  (* max rules, None = unbounded *)
  mutable misses : int;
  mutable hits : int;
  (* exact-match fast path: header tuple -> (generation, winning rule) *)
  cache : (int * rule option) Cache.t;
  mutable generation : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable invalidations : int;
}

let create ?capacity () =
  { rules = []; n_rules = 0; capacity; misses = 0; hits = 0;
    cache = Cache.create 256; generation = 0; cache_hits = 0;
    cache_misses = 0; invalidations = 0 }

let size t = t.n_rules
let rules t = t.rules
let hits t = t.hits
let misses t = t.misses
let cache_hits t = t.cache_hits
let cache_misses t = t.cache_misses
let invalidations t = t.invalidations
let generation t = t.generation
let cache_size t = Cache.length t.cache

(* O(1) invalidation: entries stamped with an older generation are dead. *)
let invalidate t =
  t.generation <- t.generation + 1;
  t.invalidations <- t.invalidations + 1

exception Table_full

let make_rule ?(priority = 0) ?(idle_timeout = None) ?(hard_timeout = None)
    ?(cookie = 0) ?(now = 0.0) ~pattern ~actions () =
  { priority; pattern; actions; packets = 0; bytes = 0; installed_at = now;
    last_hit = now; idle_timeout; hard_timeout; cookie }

(** [add t rule] inserts keeping the descending-priority order; a rule
    with the same priority and pattern as an existing one replaces it
    (OpenFlow modify semantics).
    @raise Table_full when the table is at capacity. *)
let add t rule =
  let replaced = ref false in
  let rules =
    List.map
      (fun r ->
        if r.priority = rule.priority && r.pattern = rule.pattern then begin
          replaced := true;
          rule
        end
        else r)
      t.rules
  in
  if !replaced then t.rules <- rules
  else begin
    (match t.capacity with
     | Some cap when t.n_rules >= cap -> raise Table_full
     | Some _ | None -> ());
    let rec insert = function
      | [] -> [ rule ]
      | r :: rest when r.priority < rule.priority -> rule :: r :: rest
      | r :: rest -> r :: insert rest
    in
    t.rules <- insert t.rules;
    t.n_rules <- t.n_rules + 1
  end;
  invalidate t

(** Removes every rule whose pattern is subsumed by [pattern] (OpenFlow
    delete semantics); [cookie] restricts deletion to matching cookies. *)
let remove ?cookie t ~pattern =
  t.rules <-
    List.filter
      (fun r ->
        let cookie_match =
          match cookie with None -> true | Some c -> r.cookie = c
        in
        not (cookie_match && Pattern.subsumes ~general:pattern r.pattern))
      t.rules;
  t.n_rules <- List.length t.rules;
  invalidate t

(** [remove_strict t ~priority ~pattern] removes exactly the rule with
    this priority and pattern, if present (OpenFlow strict-delete). *)
let remove_strict ?cookie t ~priority ~pattern =
  t.rules <-
    List.filter
      (fun r ->
        let cookie_match =
          match cookie with None -> true | Some c -> r.cookie = c
        in
        not (cookie_match && r.priority = priority && r.pattern = pattern))
      t.rules;
  t.n_rules <- List.length t.rules;
  invalidate t

let clear t =
  t.rules <- [];
  t.n_rules <- 0;
  invalidate t

(** [lookup_linear t h] is the slow path: a linear scan over the rule
    list, bypassing (and not populating) the flow cache. *)
let lookup_linear t (h : Headers.t) =
  List.find_opt (fun r -> Pattern.matches r.pattern h) t.rules

(** [lookup t h] returns the winning rule for headers [h], if any,
    without touching hit/miss or per-rule counters.  Consults the
    exact-match cache first and falls back to the linear scan, caching
    the verdict (including "no match"). *)
let lookup t (h : Headers.t) =
  match Cache.find_opt t.cache h with
  | Some (gen, res) when gen = t.generation ->
    t.cache_hits <- t.cache_hits + 1;
    res
  | Some _ | None ->
    t.cache_misses <- t.cache_misses + 1;
    let res = lookup_linear t h in
    if Cache.length t.cache >= max_cache_entries then Cache.reset t.cache;
    Cache.replace t.cache h (t.generation, res);
    res

(** [apply t ~now ~size h] performs a dataplane lookup: updates hit/miss
    and per-rule counters and returns the winning rule's action group, or
    [None] on a table miss. *)
let apply t ~now ~size (h : Headers.t) =
  match lookup t h with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some r ->
    t.hits <- t.hits + 1;
    r.packets <- r.packets + 1;
    r.bytes <- r.bytes + size;
    r.last_hit <- now;
    Some r.actions

(** [expire t ~now] evicts rules whose idle or hard timeout has passed,
    returning the evicted rules (for flow-removed notifications). *)
let expire t ~now =
  let expired r =
    let idle =
      match r.idle_timeout with
      | Some dt -> now -. r.last_hit >= dt
      | None -> false
    in
    let hard =
      match r.hard_timeout with
      | Some dt -> now -. r.installed_at >= dt
      | None -> false
    in
    idle || hard
  in
  let gone, kept = List.partition expired t.rules in
  if gone <> [] then begin
    t.rules <- kept;
    t.n_rules <- List.length kept;
    invalidate t
  end;
  gone

(** Pairs of distinct same-priority rules whose patterns overlap — the
    situations where lookup results depend on insertion order. *)
let overlaps t =
  let rec go acc = function
    | [] -> List.rev acc
    | r :: rest ->
      let acc =
        List.fold_left
          (fun acc r' ->
            if r'.priority = r.priority && Pattern.overlap r.pattern r'.pattern
            then (r, r') :: acc
            else acc)
          acc rest
      in
      go acc rest
  in
  go [] t.rules

(** Rules that can never match because a higher-priority rule subsumes
    them — dead table entries. *)
let shadowed t =
  let rec go seen acc = function
    | [] -> List.rev acc
    | r :: rest ->
      let dead =
        List.exists
          (fun earlier ->
            earlier.priority >= r.priority
            && Pattern.subsumes ~general:earlier.pattern r.pattern)
          seen
      in
      go (r :: seen) (if dead then r :: acc else acc) rest
  in
  go [] [] t.rules

let pp fmt t =
  Format.fprintf fmt
    "flow table (%d rules, %d hits, %d misses; cache %d hits, %d misses, %d invalidations)@."
    (size t) t.hits t.misses t.cache_hits t.cache_misses t.invalidations;
  List.iter
    (fun r ->
      Format.fprintf fmt "  [%4d] %a -> %a (pkts=%d)@." r.priority Pattern.pp
        r.pattern Action.pp_group r.actions r.packets)
    t.rules

let to_string t = Format.asprintf "%a" pp t
