(** Priority flow tables: the forwarding state of one switch.

    Lookup returns the action group of the highest-priority matching
    rule; among equal priorities the earliest-installed rule wins (as in
    OpenFlow, equal-priority overlaps are discouraged — {!overlaps}
    detects them).  Rules carry packet/byte counters and optional idle
    and hard timeouts evicted by {!expire}.  Re-adding a rule with the
    same priority and pattern replaces its actions and timeouts but
    preserves its counters and install time (OpenFlow modify semantics).

    {b Fast path.}  Lookup is staged.  In front sits an OVS-style
    exact-match flow cache: a hashtable keyed on the full header tuple
    that remembers the winning rule (or the absence of one) for every
    header value seen since the last table mutation.  Mutations that
    actually change the rule list — {!add}, a deleting {!remove} /
    {!remove_strict} / {!clear}, and any eviction by {!expire} —
    invalidate the cache in O(1) by bumping a generation counter; stale
    entries are skipped on probe and overwritten.  No-op deletes leave
    the cache warm.  The cache is bounded ([cache_entries], default
    {!max_cache_entries}); at capacity the default [Clock] policy evicts
    one cold entry per insert (second-chance, see {!Clock_cache}) while
    the legacy [Reset] policy drops the whole cache — kept selectable
    for the E2 overflow comparison.

    {b Cold path.}  A cache miss does not scan the rule list; it runs a
    tuple-space-search classifier: rules are grouped by pattern
    {!Pattern.shape} (the set of constrained fields, CIDR prefixes
    bucketed per length), one hashtable per shape keyed on the masked
    header tuple.  Shapes are probed in descending max-priority order,
    and probing stops early once the best match so far strictly beats
    the next shape's ceiling, so a lookup costs at most one probe per
    distinct shape and often just one probe total.  The shape tables and
    their probe order are maintained incrementally on add/remove/expire,
    never rebuilt.  Cache hit/miss/invalidation and classifier
    probe/shape counters are exposed for monitoring. *)

open Packet

type rule = {
  priority : int;
  pattern : Pattern.t;
  actions : Action.group;
  mutable packets : int;
  mutable bytes : int;
  installed_at : float;
  mutable last_hit : float;
  idle_timeout : float option;  (** seconds of inactivity before eviction *)
  hard_timeout : float option;  (** absolute lifetime in seconds *)
  cookie : int;                 (** opaque tag chosen by the controller *)
  mutable seq : int;
      (** installation order, the equal-priority tie-breaker; assigned by
          {!add} (a modify keeps the replaced rule's slot) *)
}

module Header_key = struct
  type t = Headers.t

  let equal = Headers.equal
  let hash = Headers.hash
end

module Cache = Hashtbl.Make (Header_key)
module Hcache = Clock_cache.Make (Header_key)

(* One tuple-space stage: every rule whose pattern has this shape, in a
   hashtable keyed on the pattern's masked field tuple.  Rules in a
   bucket (same priority-relevant key) stay sorted like the main list:
   descending priority, ascending seq. *)
type shape_entry = {
  se_shape : Pattern.shape;
  buckets : rule list Cache.t;
  mutable se_rules : int;  (* rules currently filed under this shape *)
  mutable se_max_prio : int;
      (* ceiling: the highest priority filed under this shape.  The
         classifier probes shapes in descending ceiling order and stops
         as soon as the best match so far strictly beats the next
         ceiling. *)
}

(* Default bound on resident cache entries (live + stale). *)
let max_cache_entries = 8192

(** What to do when the exact-match cache is full: [Clock] evicts one
    cold entry per insert (second-chance); [Reset] drops the whole
    cache, OVS-wholesale style. *)
type cache_policy = Clock | Reset

type flow_cache =
  | Clock_c of (int * rule option) Hcache.t
  | Reset_c of int * (int * rule option) Cache.t  (* capacity, table *)

type t = {
  mutable rules : rule list;  (* descending priority, stable within ties *)
  mutable n_rules : int;
  mutable capacity : int option;  (* max rules, None = unbounded *)
  mutable misses : int;
  mutable hits : int;
  (* exact-match fast path: header tuple -> (generation, winning rule) *)
  cache : flow_cache;
  mutable generation : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable invalidations : int;
  mutable cache_resets : int;  (* whole-cache drops (Reset policy only) *)
  (* tuple-space classifier: pattern shape -> per-shape hashtable *)
  shapes : (Pattern.shape, shape_entry) Hashtbl.t;
  (* the same entries sorted by descending [se_max_prio] — the probe
     order; maintained incrementally on add/remove/expire *)
  mutable shape_order : shape_entry list;
  mutable probes : int;  (* shape-table probes performed by the classifier *)
  mutable next_seq : int;
}

let create ?capacity ?(cache_policy = Clock)
    ?(cache_entries = max_cache_entries) () =
  let cache =
    match cache_policy with
    | Clock -> Clock_c (Hcache.create ~cap:cache_entries)
    | Reset -> Reset_c (cache_entries, Cache.create 256)
  in
  { rules = []; n_rules = 0; capacity; misses = 0; hits = 0; cache;
    generation = 0; cache_hits = 0; cache_misses = 0; invalidations = 0;
    cache_resets = 0; shapes = Hashtbl.create 16; shape_order = [];
    probes = 0; next_seq = 0 }

let size t = t.n_rules
let rules t = t.rules
let hits t = t.hits
let misses t = t.misses
let cache_hits t = t.cache_hits
let cache_misses t = t.cache_misses
let invalidations t = t.invalidations
let generation t = t.generation

let cache_size t =
  match t.cache with
  | Clock_c c -> Hcache.length c
  | Reset_c (_, c) -> Cache.length c

(** Entries displaced one at a time by the CLOCK hand (0 under [Reset]). *)
let cache_evictions t =
  match t.cache with Clock_c c -> Hcache.evictions c | Reset_c _ -> 0

(** Whole-cache drops on overflow (0 under [Clock]). *)
let cache_resets t = t.cache_resets

(** Number of distinct pattern shapes in the table — the probe count a
    single cold lookup pays. *)
let shape_count t = Hashtbl.length t.shapes

(** Cumulative shape-table probes performed by the classifier. *)
let classifier_probes t = t.probes

(* O(1) invalidation: entries stamped with an older generation are dead. *)
let invalidate t =
  t.generation <- t.generation + 1;
  t.invalidations <- t.invalidations + 1

(* ------------------------------------------------------------------ *)
(* Tuple-space maintenance: every rule in [t.rules] is also filed in
   its shape's hashtable, under the key [Pattern.shape_key r.pattern]. *)

(* higher priority first; earlier installation first within a tie *)
let rule_before a b =
  a.priority > b.priority || (a.priority = b.priority && a.seq < b.seq)

(* Probe-order maintenance: [t.shape_order] holds every live entry in
   descending [se_max_prio] order.  Shapes are few (E2: single digits on
   realistic tables), so remove-and-reinsert on a ceiling change is
   cheap. *)
let order_remove t se = t.shape_order <- List.filter (fun e -> e != se) t.shape_order

let order_insert t se =
  let rec ins = function
    | [] -> [ se ]
    | e :: rest when se.se_max_prio > e.se_max_prio -> se :: e :: rest
    | e :: rest -> e :: ins rest
  in
  t.shape_order <- ins t.shape_order

let classifier_insert t r =
  let shape = Pattern.shape_of r.pattern in
  let se =
    match Hashtbl.find_opt t.shapes shape with
    | Some se -> se
    | None ->
      (* filed into [shape_order] by the ceiling update below *)
      let se =
        { se_shape = shape; buckets = Cache.create 16; se_rules = 0;
          se_max_prio = min_int }
      in
      Hashtbl.replace t.shapes shape se;
      se
  in
  let key = Pattern.shape_key r.pattern in
  let bucket =
    match Cache.find_opt se.buckets key with Some l -> l | None -> []
  in
  let rec ins = function
    | [] -> [ r ]
    | x :: rest when rule_before r x -> r :: x :: rest
    | x :: rest -> x :: ins rest
  in
  Cache.replace se.buckets key (ins bucket);
  se.se_rules <- se.se_rules + 1;
  if r.priority > se.se_max_prio then begin
    order_remove t se;
    se.se_max_prio <- r.priority;
    order_insert t se
  end

let classifier_remove t r =
  let shape = Pattern.shape_of r.pattern in
  match Hashtbl.find_opt t.shapes shape with
  | None -> ()
  | Some se ->
    let key = Pattern.shape_key r.pattern in
    (match Cache.find_opt se.buckets key with
     | None -> ()
     | Some bucket ->
       (match List.filter (fun x -> x != r) bucket with
        | [] -> Cache.remove se.buckets key
        | rest -> Cache.replace se.buckets key rest);
       se.se_rules <- se.se_rules - 1;
       if se.se_rules = 0 then begin
         Hashtbl.remove t.shapes shape;
         order_remove t se
       end
       else if r.priority = se.se_max_prio then begin
         (* the ceiling may have dropped: every bucket is sorted with
            its highest priority first, so the new ceiling is the max
            over bucket heads *)
         let m =
           Cache.fold
             (fun _ bucket acc ->
               match bucket with
               | x :: _ when x.priority > acc -> x.priority
               | _ -> acc)
             se.buckets min_int
         in
         if m <> se.se_max_prio then begin
           order_remove t se;
           se.se_max_prio <- m;
           order_insert t se
         end
       end)

(** [lookup_tuple t h] is the cold path: shapes are probed in descending
    max-priority (ceiling) order, and probing stops as soon as the best
    match so far strictly beats the next shape's ceiling — equal
    ceilings are still probed, because an equal-priority rule installed
    earlier wins the tie.  At most one probe per distinct pattern shape;
    agrees with {!lookup_linear} on every header; bypasses (and does not
    populate) the flow cache. *)
let lookup_tuple t (h : Headers.t) =
  let rec go best = function
    | [] -> best
    | se :: rest ->
      (match best with
       | Some (b : rule) when b.priority > se.se_max_prio ->
         (* every remaining shape has a ceiling <= this one: done *)
         best
       | _ ->
         t.probes <- t.probes + 1;
         let best =
           match
             Cache.find_opt se.buckets (Pattern.shape_project se.se_shape h)
           with
           | Some (r :: _) ->
             (match best with
              | Some b when rule_before b r -> best
              | Some _ | None -> Some r)
           | Some [] | None -> best
         in
         go best rest)
  in
  go None t.shape_order

exception Table_full

let make_rule ?(priority = 0) ?(idle_timeout = None) ?(hard_timeout = None)
    ?(cookie = 0) ?(now = 0.0) ~pattern ~actions () =
  { priority; pattern; actions; packets = 0; bytes = 0; installed_at = now;
    last_hit = now; idle_timeout; hard_timeout; cookie; seq = 0 }

(** [add t rule] inserts keeping the descending-priority order; a rule
    with the same priority and pattern as an existing one replaces it
    (OpenFlow modify semantics: new actions, timeouts and cookie, but
    the old rule's counters and timestamps are preserved).
    @raise Table_full when the table is at capacity. *)
let add t rule =
  let replaced = ref None in
  let rules =
    List.map
      (fun r ->
        if r.priority = rule.priority && r.pattern = rule.pattern then begin
          let fresh = { rule with installed_at = r.installed_at } in
          fresh.packets <- r.packets;
          fresh.bytes <- r.bytes;
          fresh.last_hit <- r.last_hit;
          fresh.seq <- r.seq;
          replaced := Some (r, fresh);
          fresh
        end
        else r)
      t.rules
  in
  (match !replaced with
   | Some (old_rule, fresh) ->
     t.rules <- rules;
     classifier_remove t old_rule;
     classifier_insert t fresh
   | None ->
     (match t.capacity with
      | Some cap when t.n_rules >= cap -> raise Table_full
      | Some _ | None -> ());
     rule.seq <- t.next_seq;
     t.next_seq <- t.next_seq + 1;
     let rec insert = function
       | [] -> [ rule ]
       | r :: rest when r.priority < rule.priority -> rule :: r :: rest
       | r :: rest -> r :: insert rest
     in
     t.rules <- insert t.rules;
     t.n_rules <- t.n_rules + 1;
     classifier_insert t rule);
  invalidate t

(* Shared delete plumbing: filter [t.rules] with [victim], unfile the
   removed rules, and only invalidate when something was actually
   deleted — a no-op delete must keep the flow cache warm. *)
let delete_matching t victim =
  let gone = ref [] in
  let kept =
    List.filter
      (fun r ->
        if victim r then begin
          gone := r :: !gone;
          false
        end
        else true)
      t.rules
  in
  match !gone with
  | [] -> ()
  | gone ->
    t.rules <- kept;
    t.n_rules <- t.n_rules - List.length gone;
    List.iter (classifier_remove t) gone;
    invalidate t

(** Removes every rule whose pattern is subsumed by [pattern] (OpenFlow
    delete semantics); [cookie] restricts deletion to matching cookies. *)
let remove ?cookie t ~pattern =
  delete_matching t (fun r ->
    let cookie_match =
      match cookie with None -> true | Some c -> r.cookie = c
    in
    cookie_match && Pattern.subsumes ~general:pattern r.pattern)

(** [remove_strict t ~priority ~pattern] removes exactly the rule with
    this priority and pattern, if present (OpenFlow strict-delete). *)
let remove_strict ?cookie t ~priority ~pattern =
  delete_matching t (fun r ->
    let cookie_match =
      match cookie with None -> true | Some c -> r.cookie = c
    in
    cookie_match && r.priority = priority && r.pattern = pattern)

let clear t =
  if t.rules <> [] then begin
    t.rules <- [];
    t.n_rules <- 0;
    Hashtbl.reset t.shapes;
    t.shape_order <- [];
    invalidate t
  end

(** [lookup_linear t h] is the reference path: a linear scan over the
    rule list, bypassing (and not populating) both fast paths. *)
let lookup_linear t (h : Headers.t) =
  List.find_opt (fun r -> Pattern.matches r.pattern h) t.rules

(** [lookup t h] returns the winning rule for headers [h], if any,
    without touching hit/miss or per-rule counters.  Consults the
    exact-match cache first and falls back to the tuple-space
    classifier, caching the verdict (including "no match"). *)
let lookup t (h : Headers.t) =
  let cached =
    match t.cache with
    | Clock_c c -> Hcache.find_opt c h
    | Reset_c (_, c) -> Cache.find_opt c h
  in
  match cached with
  | Some (gen, res) when gen = t.generation ->
    t.cache_hits <- t.cache_hits + 1;
    res
  | Some _ | None ->
    t.cache_misses <- t.cache_misses + 1;
    let res = lookup_tuple t h in
    (match t.cache with
     | Clock_c c -> Hcache.replace c h (t.generation, res)
     | Reset_c (cap, c) ->
       if Cache.length c >= cap then begin
         Cache.reset c;
         t.cache_resets <- t.cache_resets + 1
       end;
       Cache.replace c h (t.generation, res));
    res

(** [apply t ~now ~size h] performs a dataplane lookup: updates hit/miss
    and per-rule counters and returns the winning rule's action group, or
    [None] on a table miss. *)
let apply t ~now ~size (h : Headers.t) =
  match lookup t h with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some r ->
    t.hits <- t.hits + 1;
    r.packets <- r.packets + 1;
    r.bytes <- r.bytes + size;
    r.last_hit <- now;
    Some r.actions

(** [expire t ~now] evicts rules whose idle or hard timeout has passed,
    returning the evicted rules (for flow-removed notifications). *)
let expire t ~now =
  let expired r =
    let idle =
      match r.idle_timeout with
      | Some dt -> now -. r.last_hit >= dt
      | None -> false
    in
    let hard =
      match r.hard_timeout with
      | Some dt -> now -. r.installed_at >= dt
      | None -> false
    in
    idle || hard
  in
  let gone, kept = List.partition expired t.rules in
  if gone <> [] then begin
    t.rules <- kept;
    t.n_rules <- List.length kept;
    List.iter (classifier_remove t) gone;
    invalidate t
  end;
  gone

(** Pairs of distinct same-priority rules whose patterns overlap — the
    situations where lookup results depend on insertion order. *)
let overlaps t =
  let rec go acc = function
    | [] -> List.rev acc
    | r :: rest ->
      let acc =
        List.fold_left
          (fun acc r' ->
            if r'.priority = r.priority && Pattern.overlap r.pattern r'.pattern
            then (r, r') :: acc
            else acc)
          acc rest
      in
      go acc rest
  in
  go [] t.rules

(** Rules that can never match because a higher-priority rule subsumes
    them — dead table entries. *)
let shadowed t =
  let rec go seen acc = function
    | [] -> List.rev acc
    | r :: rest ->
      let dead =
        List.exists
          (fun earlier ->
            earlier.priority >= r.priority
            && Pattern.subsumes ~general:earlier.pattern r.pattern)
          seen
      in
      go (r :: seen) (if dead then r :: acc else acc) rest
  in
  go [] [] t.rules

let pp fmt t =
  Format.fprintf fmt
    "flow table (%d rules, %d hits, %d misses; cache %d hits, %d misses, %d invalidations; %d shapes, %d probes)@."
    (size t) t.hits t.misses t.cache_hits t.cache_misses t.invalidations
    (shape_count t) t.probes;
  List.iter
    (fun r ->
      Format.fprintf fmt "  [%4d] %a -> %a (pkts=%d)@." r.priority Pattern.pp
        r.pattern Action.pp_group r.actions r.packets)
    t.rules

let to_string t = Format.asprintf "%a" pp t
