(** Wildcard match patterns: the left-hand side of a flow-table rule.
    A pattern constrains a subset of header fields; unconstrained fields
    match anything.  IPv4 source/destination support CIDR prefixes
    (longest-prefix matching emerges from rule priorities). *)

open Packet

type t = {
  in_port : int option;
  eth_src : Mac.t option;
  eth_dst : Mac.t option;
  eth_type : int option;
  vlan : int option;
  ip_proto : int option;
  ip4_src : Ipv4.Prefix.t option;
  ip4_dst : Ipv4.Prefix.t option;
  tp_src : int option;
  tp_dst : int option;
}

(** Matches every packet. *)
let any =
  { in_port = None; eth_src = None; eth_dst = None; eth_type = None;
    vlan = None; ip_proto = None; ip4_src = None; ip4_dst = None;
    tp_src = None; tp_dst = None }

let is_any t = t = any

(** [of_field f v] constrains exactly field [f] to [v] (addresses become
    host prefixes).  @raise Invalid_argument for [Fields.Switch], which is
    a policy-level meta-field that never appears in a table. *)
let of_field (f : Fields.t) v =
  match f with
  | Switch -> invalid_arg "Pattern.of_field: Switch is not matchable"
  | In_port -> { any with in_port = Some v }
  | Eth_src -> { any with eth_src = Some v }
  | Eth_dst -> { any with eth_dst = Some v }
  | Eth_type -> { any with eth_type = Some v }
  | Vlan -> { any with vlan = Some v }
  | Ip_proto -> { any with ip_proto = Some v }
  | Ip4_src -> { any with ip4_src = Some (Ipv4.Prefix.host v) }
  | Ip4_dst -> { any with ip4_dst = Some (Ipv4.Prefix.host v) }
  | Tp_src -> { any with tp_src = Some v }
  | Tp_dst -> { any with tp_dst = Some v }

(** [matches t h] tests headers [h] against the pattern. *)
let matches t (h : Headers.t) =
  let exact field value =
    match field with None -> true | Some v -> v = value
  in
  let prefix field value =
    match field with None -> true | Some p -> Ipv4.Prefix.matches p value
  in
  exact t.in_port h.in_port
  && exact t.eth_src h.eth_src
  && exact t.eth_dst h.eth_dst
  && exact t.eth_type h.eth_type
  && exact t.vlan h.vlan
  && exact t.ip_proto h.ip_proto
  && prefix t.ip4_src h.ip4_src
  && prefix t.ip4_dst h.ip4_dst
  && exact t.tp_src h.tp_src
  && exact t.tp_dst h.tp_dst

exception Contradiction

(* Meet of two per-field constraints; raises if unsatisfiable. *)
let meet_exact a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some x, Some y -> if x = y then Some x else raise Contradiction

let meet_prefix a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some p, Some q ->
    if Ipv4.Prefix.subset ~of_:p q then Some q
    else if Ipv4.Prefix.subset ~of_:q p then Some p
    else raise Contradiction

(** [conj a b] is the pattern matching exactly the packets matched by
    both, or [None] when the conjunction is unsatisfiable. *)
let conj a b =
  match
    { in_port = meet_exact a.in_port b.in_port;
      eth_src = meet_exact a.eth_src b.eth_src;
      eth_dst = meet_exact a.eth_dst b.eth_dst;
      eth_type = meet_exact a.eth_type b.eth_type;
      vlan = meet_exact a.vlan b.vlan;
      ip_proto = meet_exact a.ip_proto b.ip_proto;
      ip4_src = meet_prefix a.ip4_src b.ip4_src;
      ip4_dst = meet_prefix a.ip4_dst b.ip4_dst;
      tp_src = meet_exact a.tp_src b.tp_src;
      tp_dst = meet_exact a.tp_dst b.tp_dst }
  with
  | p -> Some p
  | exception Contradiction -> None

(** [subsumes ~general t] holds when every packet matching [t] also
    matches [general]. *)
let subsumes ~general t =
  let exact g s =
    match (g, s) with
    | None, _ -> true
    | Some _, None -> false
    | Some a, Some b -> a = b
  in
  let prefix g s =
    match (g, s) with
    | None, _ -> true
    | Some _, None -> false
    | Some gp, Some sp -> Ipv4.Prefix.subset ~of_:gp sp
  in
  exact general.in_port t.in_port
  && exact general.eth_src t.eth_src
  && exact general.eth_dst t.eth_dst
  && exact general.eth_type t.eth_type
  && exact general.vlan t.vlan
  && exact general.ip_proto t.ip_proto
  && prefix general.ip4_src t.ip4_src
  && prefix general.ip4_dst t.ip4_dst
  && exact general.tp_src t.tp_src
  && exact general.tp_dst t.tp_dst

(** Two patterns overlap when some packet matches both. *)
let overlap a b = conj a b <> None

(* ------------------------------------------------------------------ *)
(* Pattern shapes: the basis of tuple-space search.

   The {i shape} of a pattern is the set of fields it constrains, with
   CIDR prefixes bucketed by length.  Every pattern of a given shape
   matches headers by comparing the same masked field tuple, so a flow
   table can keep one exact-match hashtable per shape and answer a
   lookup with one probe per distinct shape instead of one comparison
   per rule (tuple-space search, as in Open vSwitch). *)

(** A shape packed into an int: bits 0-7 flag the exact-match fields
    (in_port, eth_src, eth_dst, eth_type, vlan, ip_proto, tp_src,
    tp_dst); bits 8-13 and 14-19 hold [prefix length + 1] for ip4_src
    and ip4_dst, or 0 when the field is unconstrained. *)
type shape = int

let shape_src_shift = 8
let shape_dst_shift = 14

let shape_of t : shape =
  let flag b o = match o with None -> 0 | Some _ -> 1 lsl b in
  let plen shift o =
    match o with
    | None -> 0
    | Some p -> (Ipv4.Prefix.length p + 1) lsl shift
  in
  flag 0 t.in_port lor flag 1 t.eth_src lor flag 2 t.eth_dst
  lor flag 3 t.eth_type lor flag 4 t.vlan lor flag 5 t.ip_proto
  lor flag 6 t.tp_src lor flag 7 t.tp_dst
  lor plen shape_src_shift t.ip4_src
  lor plen shape_dst_shift t.ip4_dst

(* The per-shape prefix masks (0 when the field is unconstrained, so
   unconstrained addresses project to 0 like every other field). *)
let shape_prefix_mask shape shift =
  match (shape lsr shift) land 0x3f with
  | 0 -> 0
  | n -> Ipv4.Prefix.mask_of_length (n - 1)

(** [shape_project shape h] masks headers down to the fields [shape]
    constrains (everything else, including [switch], becomes 0).  A
    pattern [p] matches [h] iff
    [shape_project (shape_of p) h = shape_key p]. *)
let shape_project (shape : shape) (h : Headers.t) : Headers.t =
  let f b v = if shape land (1 lsl b) <> 0 then v else 0 in
  { switch = 0;
    in_port = f 0 h.in_port;
    eth_src = f 1 h.eth_src;
    eth_dst = f 2 h.eth_dst;
    eth_type = f 3 h.eth_type;
    vlan = f 4 h.vlan;
    ip_proto = f 5 h.ip_proto;
    ip4_src = h.ip4_src land shape_prefix_mask shape shape_src_shift;
    ip4_dst = h.ip4_dst land shape_prefix_mask shape shape_dst_shift;
    tp_src = f 6 h.tp_src;
    tp_dst = f 7 h.tp_dst }

(** [shape_key t] is the masked-tuple key under which a rule with this
    pattern lives in its shape's hashtable. *)
let shape_key t : Headers.t =
  let v o = Option.value o ~default:0 in
  let net o = match o with None -> 0 | Some p -> Ipv4.Prefix.network p in
  { switch = 0;
    in_port = v t.in_port;
    eth_src = v t.eth_src;
    eth_dst = v t.eth_dst;
    eth_type = v t.eth_type;
    vlan = v t.vlan;
    ip_proto = v t.ip_proto;
    ip4_src = net t.ip4_src;
    ip4_dst = net t.ip4_dst;
    tp_src = v t.tp_src;
    tp_dst = v t.tp_dst }

(** Number of constrained fields — a rough specificity measure. *)
let weight t =
  let count o = match o with None -> 0 | Some _ -> 1 in
  count t.in_port + count t.eth_src + count t.eth_dst + count t.eth_type
  + count t.vlan + count t.ip_proto + count t.ip4_src + count t.ip4_dst
  + count t.tp_src + count t.tp_dst

let pp fmt t =
  if is_any t then Format.pp_print_string fmt "*"
  else begin
    let parts = ref [] in
    let add name s = parts := Printf.sprintf "%s=%s" name s :: !parts in
    let addi name o = Option.iter (fun v -> add name (string_of_int v)) o in
    addi "tpDst" t.tp_dst;
    addi "tpSrc" t.tp_src;
    Option.iter (fun p -> add "ip4Dst" (Ipv4.Prefix.to_string p)) t.ip4_dst;
    Option.iter (fun p -> add "ip4Src" (Ipv4.Prefix.to_string p)) t.ip4_src;
    addi "ipProto" t.ip_proto;
    addi "vlan" t.vlan;
    Option.iter (fun v -> add "ethType" (Printf.sprintf "0x%04x" v)) t.eth_type;
    Option.iter (fun m -> add "ethDst" (Mac.to_string m)) t.eth_dst;
    Option.iter (fun m -> add "ethSrc" (Mac.to_string m)) t.eth_src;
    addi "port" t.in_port;
    Format.pp_print_string fmt (String.concat "," !parts)
  end

let to_string t = Format.asprintf "%a" pp t
