(** Bounded hash cache with CLOCK (second-chance) eviction.

    A fixed-capacity key/value cache: every entry occupies one slot with
    a reference bit that {!Make.find_opt} sets on a hit.  When an insert
    finds the cache full, a clock hand sweeps the slots, clearing set
    bits and evicting the first entry whose bit is already clear — so
    recently-probed entries survive one full lap and cold ones make room.
    One lap clears every bit, so an eviction inspects at most [2 * cap]
    slots; in steady state it is a short scan past the recently-hit
    prefix.

    Compared to dropping the whole table on overflow (the policy this
    replaces in {!Table}), a full cache keeps its hot entries instead of
    relearning the entire working set after every reset — E2 measures
    the hit-rate difference under overflow.

    Entries are never removed individually; consumers that need
    invalidation stamp values with a generation (as {!Table} does) or
    call {!Make.reset}. *)

module Make (H : Hashtbl.HashedType) = struct
  module Tbl = Hashtbl.Make (H)

  type 'a t = {
    cap : int;
    index : int Tbl.t;  (* key -> slot *)
    keys : H.t option array;
    vals : 'a option array;
    refs : Bytes.t;     (* second-chance bits, one per slot *)
    mutable hand : int;
    mutable len : int;
    mutable evictions : int;
  }

  let create ~cap =
    let cap = max 1 cap in
    { cap; index = Tbl.create (2 * cap); keys = Array.make cap None;
      vals = Array.make cap None; refs = Bytes.make cap '\000'; hand = 0;
      len = 0; evictions = 0 }

  let length t = t.len
  let capacity t = t.cap
  let evictions t = t.evictions

  let find_opt t k =
    match Tbl.find_opt t.index k with
    | None -> None
    | Some slot ->
      Bytes.unsafe_set t.refs slot '\001';
      t.vals.(slot)

  (* sweep to the first slot with a clear bit, clearing bits as we go,
     and vacate it *)
  let evict_slot t =
    let rec sweep () =
      let slot = t.hand in
      t.hand <- (if t.hand + 1 = t.cap then 0 else t.hand + 1);
      if Bytes.unsafe_get t.refs slot = '\000' then slot
      else begin
        Bytes.unsafe_set t.refs slot '\000';
        sweep ()
      end
    in
    let slot = sweep () in
    (match t.keys.(slot) with
     | Some k -> Tbl.remove t.index k
     | None -> ());
    t.evictions <- t.evictions + 1;
    t.len <- t.len - 1;
    slot

  (** [replace t k v] binds [k] to [v], updating in place when [k] is
      resident and otherwise filling a free slot — evicting one via the
      clock hand when the cache is at capacity. *)
  let replace t k v =
    match Tbl.find_opt t.index k with
    | Some slot ->
      t.vals.(slot) <- Some v;
      Bytes.unsafe_set t.refs slot '\001'
    | None ->
      (* slots fill densely and only eviction vacates one, so below
         capacity the next free slot is [t.len] *)
      let slot = if t.len < t.cap then t.len else evict_slot t in
      t.keys.(slot) <- Some k;
      t.vals.(slot) <- Some v;
      Bytes.unsafe_set t.refs slot '\001';
      Tbl.replace t.index k slot;
      t.len <- t.len + 1

  let reset t =
    Tbl.reset t.index;
    Array.fill t.keys 0 t.cap None;
    Array.fill t.vals 0 t.cap None;
    Bytes.fill t.refs 0 t.cap '\000';
    t.hand <- 0;
    t.len <- 0
end
