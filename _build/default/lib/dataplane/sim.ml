(** The discrete-event engine: a clock and a priority queue of thunks.
    Everything in the simulated network — packet transmission, link
    propagation, controller latency, traffic generation, timeouts — is
    expressed as scheduled events.  Ties execute in scheduling order, so
    runs are deterministic. *)

type t = {
  mutable now : float;
  events : (unit -> unit) Util.Heap.t;
  mutable executed : int;
  mutable running : bool;
}

let create () =
  { now = 0.0; events = Util.Heap.create (); executed = 0; running = false }

(** Current simulated time in seconds. *)
let now t = t.now

(** Number of events executed so far. *)
let executed t = t.executed

(** [schedule t ~delay f] runs [f] at [now + delay].
    @raise Invalid_argument on negative delay. *)
let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  Util.Heap.push t.events (t.now +. delay) f

(** [schedule_at t ~time f] runs [f] at the absolute [time] (clamped to
    the present if already past). *)
let schedule_at t ~time f = Util.Heap.push t.events (max time t.now) f

let pending t = Util.Heap.length t.events

(** Executes the next event; returns [false] when none remain. *)
let step t =
  match Util.Heap.pop t.events with
  | exception Not_found -> false
  | time, f ->
    t.now <- max t.now time;
    t.executed <- t.executed + 1;
    f ();
    true

(** [run ?until ?max_events t] drains the event queue.  [until] stops the
    clock at an absolute time (events beyond it stay queued); [max_events]
    bounds work as a runaway guard.  Returns the number of events
    executed by this call. *)
let run ?until ?max_events t =
  if t.running then invalid_arg "Sim.run: already running";
  t.running <- true;
  let start = t.executed in
  let budget = match max_events with None -> max_int | Some m -> m in
  let rec loop n =
    if n >= budget then ()
    else begin
      match Util.Heap.peek t.events with
      | None -> ()
      | Some (time, _) ->
        (match until with
         | Some stop when time > stop -> t.now <- stop
         | Some _ | None ->
           if step t then loop (n + 1))
    end
  in
  loop 0;
  t.running <- false;
  t.executed - start

(** Periodic task: runs [f] every [every] seconds starting after [every],
    until [f] returns [false] or the optional [stop] time passes. *)
let rec every t ~every:interval ?stop f =
  schedule t ~delay:interval (fun () ->
    let continue_ =
      match stop with Some s when t.now > s -> false | Some _ | None -> f ()
    in
    if continue_ then every t ~every:interval ?stop f)
