lib/dataplane/sim.ml: Util
