lib/dataplane/traffic.ml: Array Hashtbl List Network Sim Util
