lib/dataplane/network.ml: Bytes Flow Format Hashtbl List Openflow Packet Printf Sim Topo
