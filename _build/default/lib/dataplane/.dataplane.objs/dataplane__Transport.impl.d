lib/dataplane/transport.ml: Hashtbl Network Option Sim
