(** B4-style greedy multipath allocation.

    Demands are served in priority order (group 0 first, as B4 serves
    interactive before elastic before copy traffic).  Within a group,
    flows are filled in small quanta, round-robin, each flow placing its
    quantum on the first of its [k] precomputed shortest paths with
    residual capacity — so when a shortest path fills up, traffic spills
    to the next path instead of being lost.  This is the property that
    lets multipath TE carry substantially more traffic than ECMP at high
    load. *)

module Node = Topo.Topology.Node

let solve ?(k = 4) ?(quantum_divisor = 50.0) topo demands : Alloc.t =
  let weight (l : Topo.Topology.link) = l.delay in
  (* precompute k shortest paths per demand *)
  let flows =
    List.map
      (fun (d : Demand.t) ->
        let paths =
          Topo.Path.k_shortest topo ~weight ~src:(Node.Switch d.src)
            ~dst:(Node.Switch d.dst) k
          |> List.filter (fun p -> p <> [])
        in
        (d, paths))
      demands
  in
  let residual : (Node.t * int, float) Hashtbl.t = Hashtbl.create 64 in
  let get_residual key =
    match Hashtbl.find_opt residual key with
    | Some r -> r
    | None ->
      let r =
        match Topo.Topology.link_via topo (fst key) (snd key) with
        | Some l -> l.capacity
        | None -> 0.0
      in
      Hashtbl.replace residual key r;
      r
  in
  let path_keys p =
    List.map (fun (h : Topo.Path.hop) -> (h.node, h.out_port)) p
  in
  let bottleneck p =
    List.fold_left (fun acc key -> min acc (get_residual key)) infinity
      (path_keys p)
  in
  let place p amount =
    List.iter
      (fun key -> Hashtbl.replace residual key (get_residual key -. amount))
      (path_keys p)
  in
  (* per-flow allocated rate per path *)
  let shares : (Demand.t * (Topo.Path.t, float) Hashtbl.t) list =
    List.map (fun (d, _) -> (d, Hashtbl.create 4)) flows
  in
  let share_tbl d = List.assq d shares in
  let groups =
    List.sort_uniq compare (List.map (fun (d : Demand.t) -> d.priority) demands)
  in
  List.iter
    (fun prio ->
      let group =
        List.filter (fun ((d : Demand.t), _) -> d.priority = prio) flows
      in
      let remaining =
        List.map (fun (d, paths) -> (d, paths, ref d.Demand.rate)) group
      in
      let max_rate =
        List.fold_left
          (fun acc ((d : Demand.t), _, _) -> max acc d.rate)
          0.0 remaining
      in
      let quantum = max (max_rate /. quantum_divisor) 1.0 in
      let progress = ref true in
      while !progress do
        progress := false;
        List.iter
          (fun ((d : Demand.t), paths, rem) ->
            if !rem > 1e-9 then begin
              (* first path with residual capacity *)
              match
                List.find_opt (fun p -> bottleneck p > 1e-9) paths
              with
              | None -> ()
              | Some p ->
                let amount = min (min !rem quantum) (bottleneck p) in
                if amount > 1e-9 then begin
                  place p amount;
                  rem := !rem -. amount;
                  let tbl = share_tbl d in
                  Hashtbl.replace tbl p
                    (amount
                    +. Option.value ~default:0.0 (Hashtbl.find_opt tbl p));
                  progress := true
                end
            end)
          remaining
      done)
    groups;
  { Alloc.topo;
    entries =
      List.map
        (fun (d, tbl) ->
          { Alloc.demand = d;
            shares =
              Hashtbl.fold
                (fun path rate acc -> { Alloc.path; rate } :: acc)
                tbl [] })
        shares }
