(** Allocation results and the metrics shared by every TE scheme: an
    allocation assigns each demand a set of (path, rate) pairs; from it
    we derive link loads, utilization, carried traffic and fairness. *)

module Node = Topo.Topology.Node

type path_share = { path : Topo.Path.t; rate : float }

type entry = { demand : Demand.t; shares : path_share list }

type t = { topo : Topo.Topology.t; entries : entry list }

let allocated_rate e =
  List.fold_left (fun acc s -> acc +. s.rate) 0.0 e.shares

(** Fraction of the demand satisfied, in [0, 1]. *)
let satisfaction e =
  if e.demand.rate <= 0.0 then 1.0
  else min 1.0 (allocated_rate e /. e.demand.rate)

(** Total traffic carried (sum of allocations, capped by demand). *)
let carried t =
  List.fold_left
    (fun acc e -> acc +. min (allocated_rate e) e.demand.rate)
    0.0 t.entries

(** Load placed on each directed link: [(node, port) -> bits/s]. *)
let link_loads t =
  let loads : (Node.t * int, float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun e ->
      List.iter
        (fun s ->
          List.iter
            (fun (h : Topo.Path.hop) ->
              let key = (h.node, h.out_port) in
              let cur = Option.value ~default:0.0 (Hashtbl.find_opt loads key) in
              Hashtbl.replace loads key (cur +. s.rate))
            s.path)
        e.shares)
    t.entries;
  loads

(** (max, mean) link utilization over links that carry load. *)
let utilization t =
  let loads = link_loads t in
  let stats = Util.Stats.Online.create () in
  Hashtbl.iter
    (fun (node, port) load ->
      match Topo.Topology.link_via t.topo node port with
      | Some l when l.capacity > 0.0 ->
        Util.Stats.Online.add stats (load /. l.capacity)
      | Some _ | None -> ())
    loads;
  if Util.Stats.Online.count stats = 0 then (0.0, 0.0)
  else (Util.Stats.Online.max_value stats, Util.Stats.Online.mean stats)

(** Jain fairness of demand-satisfaction ratios. *)
let fairness t =
  match t.entries with
  | [] -> 1.0
  | es -> Util.Stats.jain_fairness (List.map satisfaction es)

(** Demands receiving less than [threshold] of what they asked. *)
let starved ?(threshold = 0.999) t =
  List.filter (fun e -> satisfaction e < threshold) t.entries

(** True when no directed link carries more than its capacity (within a
    relative tolerance). *)
let feasible ?(tolerance = 1e-6) t =
  let loads = link_loads t in
  Hashtbl.fold
    (fun (node, port) load ok ->
      ok
      &&
      match Topo.Topology.link_via t.topo node port with
      | Some l -> load <= l.capacity *. (1.0 +. tolerance)
      | None -> false)
    loads true

let summary t =
  let max_u, mean_u = utilization t in
  Printf.sprintf
    "carried=%.1f/%.1f Mb/s, max-util=%.2f, mean-util=%.2f, fairness=%.3f"
    (carried t /. 1e6)
    (Demand.total (List.map (fun e -> e.demand) t.entries) /. 1e6)
    max_u mean_u (fairness t)
