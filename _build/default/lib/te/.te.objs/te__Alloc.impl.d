lib/te/alloc.ml: Demand Hashtbl List Option Printf Topo Util
