lib/te/ecmp.ml: Alloc Demand Hashtbl List Option Topo
