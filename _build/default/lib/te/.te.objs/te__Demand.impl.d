lib/te/demand.ml: Array Format List Util
