lib/te/maxmin.ml: Alloc Demand Hashtbl List Option Topo
