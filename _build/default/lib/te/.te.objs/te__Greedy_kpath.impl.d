lib/te/greedy_kpath.ml: Alloc Demand Hashtbl List Option Topo
