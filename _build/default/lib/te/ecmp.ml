(** Baseline: capacity-oblivious ECMP over shortest paths.

    Every demand is split evenly across all fewest-hops paths, ignoring
    capacity (what plain OSPF/ECMP does).  Overloaded links then shed
    traffic: each path share is scaled by its bottleneck factor
    [min (1, capacity / load)], which models per-flow fair drops and
    keeps the reported allocation feasible. *)

module Node = Topo.Topology.Node

let solve topo demands : Alloc.t =
  (* 1. oblivious split *)
  let raw =
    List.map
      (fun (d : Demand.t) ->
        let paths =
          Topo.Path.all_shortest_paths topo ~src:(Node.Switch d.src)
            ~dst:(Node.Switch d.dst)
          |> List.filter (fun p -> p <> [])
        in
        let n = List.length paths in
        let shares =
          if n = 0 then []
          else
            List.map
              (fun path ->
                { Alloc.path; rate = d.rate /. float_of_int n })
              paths
        in
        { Alloc.demand = d; shares })
      demands
  in
  (* 2. loads of the oblivious assignment *)
  let oblivious = { Alloc.topo; entries = raw } in
  let loads = Alloc.link_loads oblivious in
  let factor_of_link (h : Topo.Path.hop) =
    match Topo.Topology.link_via topo h.node h.out_port with
    | None -> 0.0
    | Some l ->
      let load =
        Option.value ~default:0.0 (Hashtbl.find_opt loads (h.node, h.out_port))
      in
      if load <= l.capacity then 1.0 else l.capacity /. load
  in
  (* 3. scale each share by its path's bottleneck factor *)
  let entries =
    List.map
      (fun (e : Alloc.entry) ->
        let shares =
          List.map
            (fun (s : Alloc.path_share) ->
              let factor =
                List.fold_left
                  (fun acc h -> min acc (factor_of_link h))
                  1.0 s.path
              in
              { s with rate = s.rate *. factor })
            e.shares
        in
        { e with shares })
      raw
  in
  { Alloc.topo; entries }
