(** Traffic demands for the WAN experiments: a demand asks for [rate]
    bits/s from one switch (site) to another, with a priority class as in
    inter-datacenter TE systems (B4's copy/elastic/interactive split). *)

type t = {
  src : int;       (** source switch id *)
  dst : int;       (** destination switch id *)
  rate : float;    (** requested bits per second *)
  priority : int;  (** lower = more important; 0 is highest *)
}

let make ?(priority = 0) ~src ~dst ~rate () =
  if rate < 0.0 then invalid_arg "Demand.make: negative rate";
  if src = dst then invalid_arg "Demand.make: src = dst";
  { src; dst; rate; priority }

let total demands = List.fold_left (fun acc d -> acc +. d.rate) 0.0 demands

let scale factor demands =
  List.map (fun d -> { d with rate = d.rate *. factor }) demands

(** All-pairs uniform matrix at [rate] per pair. *)
let uniform ~switches ~rate =
  List.concat_map
    (fun src ->
      List.filter_map
        (fun dst -> if src = dst then None else Some (make ~src ~dst ~rate ()))
        switches)
    switches

(** Gravity model: demand between two sites is proportional to the
    product of their (random) masses, scaled so the matrix totals
    [total_rate].  Priorities are drawn uniformly from [0, priorities). *)
let gravity ~prng ~switches ~total_rate ?(priorities = 1) () =
  let sw = Array.of_list switches in
  let n = Array.length sw in
  if n < 2 then invalid_arg "Demand.gravity: need >= 2 switches";
  let mass = Array.init n (fun _ -> 0.25 +. Util.Prng.float prng 1.0) in
  let raw = ref [] in
  let sum = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let w = mass.(i) *. mass.(j) in
        sum := !sum +. w;
        raw := (sw.(i), sw.(j), w) :: !raw
      end
    done
  done;
  List.rev_map
    (fun (src, dst, w) ->
      make
        ~priority:(Util.Prng.int prng priorities)
        ~src ~dst
        ~rate:(total_rate *. w /. !sum)
        ())
    !raw

let pp fmt d =
  Format.fprintf fmt "%d->%d @ %.1f Mb/s (p%d)" d.src d.dst (d.rate /. 1e6)
    d.priority
