(** Max-min fair allocation by progressive water-filling.

    Each demand is pinned to one least-delay path; all unfrozen demands'
    rates rise together until either a link saturates (its demands
    freeze) or a demand is fully satisfied (it freezes).  The result is
    the classic max-min fair allocation with demand caps — maximally
    fair, but single-path, so it cannot use residual capacity off the
    shortest paths. *)

module Node = Topo.Topology.Node

type flow_state = {
  demand : Demand.t;
  path : Topo.Path.t;
  mutable rate : float;
  mutable frozen : bool;
}

let solve topo demands : Alloc.t =
  let weight (l : Topo.Topology.link) = l.delay in
  let flows =
    List.filter_map
      (fun (d : Demand.t) ->
        match
          Topo.Path.cheapest_path topo ~weight ~src:(Node.Switch d.src)
            ~dst:(Node.Switch d.dst)
        with
        | None | Some ([], _) -> None
        | Some (path, _) -> Some { demand = d; path; rate = 0.0; frozen = false })
      demands
  in
  (* residual capacity per directed link *)
  let residual : (Node.t * int, float) Hashtbl.t = Hashtbl.create 64 in
  let links_of f = List.map (fun (h : Topo.Path.hop) -> (h.node, h.out_port)) f.path in
  List.iter
    (fun f ->
      List.iter
        (fun key ->
          if not (Hashtbl.mem residual key) then begin
            match Topo.Topology.link_via topo (fst key) (snd key) with
            | Some l -> Hashtbl.replace residual key l.capacity
            | None -> ()
          end)
        (links_of f))
    flows;
  let active () = List.filter (fun f -> not f.frozen) flows in
  let rec fill iter =
    if iter > 10 * List.length flows + 10 then ()
    else begin
      match active () with
      | [] -> ()
      | act ->
        (* count active flows per link *)
        let counts : (Node.t * int, int) Hashtbl.t = Hashtbl.create 64 in
        List.iter
          (fun f ->
            List.iter
              (fun key ->
                Hashtbl.replace counts key
                  (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
              (links_of f))
          act;
        (* smallest uniform increment until a link or a demand binds *)
        let link_bound =
          Hashtbl.fold
            (fun key n acc ->
              let r = Option.value ~default:0.0 (Hashtbl.find_opt residual key) in
              min acc (r /. float_of_int n))
            counts infinity
        in
        let demand_bound =
          List.fold_left
            (fun acc f -> min acc (f.demand.rate -. f.rate))
            infinity act
        in
        let inc = min link_bound demand_bound in
        if inc <= 1e-9 then
          (* freeze flows on saturated links *)
          List.iter
            (fun f ->
              let saturated =
                List.exists
                  (fun key ->
                    Option.value ~default:0.0 (Hashtbl.find_opt residual key)
                    <= 1e-6)
                  (links_of f)
              in
              if saturated then f.frozen <- true)
            act
        else begin
          List.iter
            (fun f ->
              f.rate <- f.rate +. inc;
              List.iter
                (fun key ->
                  let r =
                    Option.value ~default:0.0 (Hashtbl.find_opt residual key)
                  in
                  Hashtbl.replace residual key (r -. inc))
                (links_of f);
              if f.demand.rate -. f.rate <= 1e-9 then f.frozen <- true)
            act
        end;
        (* also freeze flows whose links just saturated *)
        List.iter
          (fun f ->
            if
              (not f.frozen)
              && List.exists
                   (fun key ->
                     Option.value ~default:0.0 (Hashtbl.find_opt residual key)
                     <= 1e-6)
                   (links_of f)
            then f.frozen <- true)
          (active ());
        fill (iter + 1)
    end
  in
  fill 0;
  { Alloc.topo;
    entries =
      List.map
        (fun f ->
          { Alloc.demand = f.demand;
            shares = [ { Alloc.path = f.path; rate = f.rate } ] })
        flows }
