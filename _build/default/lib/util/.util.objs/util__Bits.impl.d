lib/util/bits.ml: Buffer Bytes Char Int64 Printf
