(** Deterministic splitmix64 pseudo-random generator.

    Every stochastic component of the toolkit (workload generators, random
    topologies, benchmark inputs) draws from an explicit [Prng.t] so that
    simulations and experiments are exactly reproducible from a seed,
    independent of the global [Random] state. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 step (Steele, Lea & Flood 2014). *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [int t bound] draws uniformly from [0, bound). [bound] must be positive. *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* keep 62 bits so the value fits OCaml's 63-bit int non-negatively *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

(** [float t bound] draws uniformly from [0, bound). *)
let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** Exponentially distributed sample with the given [mean] (inter-arrival
    times of Poisson processes). *)
let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

(** [pick t arr] draws an element of [arr] uniformly. *)
let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

(** In-place Fisher-Yates shuffle. *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(** [split t] derives an independent generator; the parent advances. *)
let split t = { state = next_int64 t }
