(** Source NAT at a gateway switch.

    Traffic from the configured {e inside} hosts is rewritten at the
    gateway to come from a single public IP with an allocated source
    port; replies to the public address are translated back.  Both
    directions are installed reactively on the first packet of each flow
    (with idle timeouts), exactly like consumer NAT boxes — and like
    them, it is the canonical example of per-flow state in the network.

    Deployment assumption: both directions of a flow traverse the
    gateway switch (compose with {!Routing} on topologies where the
    gateway is a cut vertex, e.g. a star hub or the border of a chain). *)

open Packet

type binding = {
  private_ip : Ipv4.t;
  private_port : int;
  public_port : int;
  dst_ip : Ipv4.t;
}

type t = {
  app : Api.app;
  gateway : int;            (** switch id performing translation *)
  public_ip : Ipv4.t;
  public_mac : Mac.t;
  inside : int list;        (** host ids behind the NAT *)
  mutable next_port : int;
  mutable bindings : binding list;
  mutable translations : int;
  idle_timeout : float;
}

let inside_pred t ip = List.exists (fun h -> Ipv4.of_host_id h = ip) t.inside

let allocate_port t =
  let p = t.next_port in
  t.next_port <- t.next_port + 1;
  if t.next_port > 65000 then t.next_port <- 30000;
  p

let next_hop_port ctx ~from_switch ~to_host =
  match
    Topo.Path.shortest_path (Api.topology ctx)
      ~src:(Topo.Topology.Node.Switch from_switch)
      ~dst:(Topo.Topology.Node.Host to_host)
  with
  | Some (hop :: _) -> Some hop.Topo.Path.out_port
  | Some [] | None -> None

let host_of_ip ctx ip =
  Topo.Topology.host_ids (Api.topology ctx)
  |> List.find_opt (fun h -> Ipv4.of_host_id h = ip)

let create ~gateway ~public_ip ?(public_mac = Mac.of_string "02:0a:0a:0a:0a:01")
    ?(idle_timeout = 120.0) ~inside () =
  let t_ref = ref None in
  let get () = Option.get !t_ref in
  let switch_up ctx ~switch_id ~ports:_ =
    let t = get () in
    if switch_id <> t.gateway then begin
      (* the public address is routed toward the gateway everywhere *)
      match
        Topo.Path.shortest_path (Api.topology ctx)
          ~src:(Topo.Topology.Node.Switch switch_id)
          ~dst:(Topo.Topology.Node.Switch t.gateway)
      with
      | Some (hop :: _) ->
        Api.install ctx ~switch_id ~priority:20000 ~cookie:0x4a
          { Flow.Pattern.any with
            ip4_dst = Some (Ipv4.Prefix.host t.public_ip);
            eth_type = Some 0x0800 }
          (Flow.Action.forward hop.Topo.Path.out_port)
      | Some [] | None -> ()
    end;
    if switch_id = t.gateway then begin
      (* punt: outbound flows from inside hosts, and returns to the
         public address; sit above routing, below installed translations *)
      List.iter
        (fun h ->
          Api.install ctx ~switch_id ~priority:20000 ~cookie:0x4a
            { Flow.Pattern.any with
              ip4_src = Some (Ipv4.Prefix.host (Ipv4.of_host_id h));
              eth_type = Some 0x0800 }
            Flow.Action.to_controller)
        t.inside;
      Api.install ctx ~switch_id ~priority:20000 ~cookie:0x4a
        { Flow.Pattern.any with
          ip4_dst = Some (Ipv4.Prefix.host t.public_ip);
          eth_type = Some 0x0800 }
        Flow.Action.to_controller
    end
  in
  let packet_in ctx ~switch_id ~port:_ ~reason:_
      (payload : Openflow.Message.payload) =
    let t = get () in
    if switch_id <> t.gateway then ()
    else begin
      let h = payload.headers in
      if inside_pred t h.ip4_src && h.ip4_dst <> t.public_ip then begin
        (* outbound: allocate a binding and install both directions *)
        match host_of_ip ctx h.ip4_dst with
        | None -> ()
        | Some dst_host ->
          (match next_hop_port ctx ~from_switch:t.gateway ~to_host:dst_host with
           | None -> ()
           | Some out_port ->
             let public_port = allocate_port t in
             t.translations <- t.translations + 1;
             t.bindings <-
               { private_ip = h.ip4_src; private_port = h.tp_src;
                 public_port; dst_ip = h.ip4_dst }
               :: t.bindings;
             (* outbound translation *)
             Api.install ctx ~switch_id ~priority:20100 ~cookie:0x4a
               ~idle_timeout:t.idle_timeout
               { Flow.Pattern.any with
                 ip4_src = Some (Ipv4.Prefix.host h.ip4_src);
                 tp_src = Some h.tp_src; eth_type = Some 0x0800 }
               [ [ Flow.Action.Set_field (Fields.Ip4_src, t.public_ip);
                   Flow.Action.Set_field (Fields.Eth_src, t.public_mac);
                   Flow.Action.Set_field (Fields.Tp_src, public_port);
                   Flow.Action.Output (Physical out_port) ] ];
             (* inbound translation *)
             (match host_of_ip ctx h.ip4_src with
              | None -> ()
              | Some inside_host ->
                (match
                   next_hop_port ctx ~from_switch:t.gateway ~to_host:inside_host
                 with
                 | None -> ()
                 | Some back_port ->
                   Api.install ctx ~switch_id ~priority:20100 ~cookie:0x4a
                     ~idle_timeout:t.idle_timeout
                     { Flow.Pattern.any with
                       ip4_dst = Some (Ipv4.Prefix.host t.public_ip);
                       tp_dst = Some public_port; eth_type = Some 0x0800 }
                     [ [ Flow.Action.Set_field (Fields.Ip4_dst, h.ip4_src);
                         Flow.Action.Set_field
                           (Fields.Eth_dst, Mac.of_host_id inside_host);
                         Flow.Action.Set_field (Fields.Tp_dst, h.tp_src);
                         Flow.Action.Output (Physical back_port) ] ]));
             (* re-inject the first packet, translated *)
             Api.packet_out ctx ~switch_id ~in_port:payload.headers.in_port
               [ Flow.Action.Set_field (Fields.Ip4_src, t.public_ip);
                 Flow.Action.Set_field (Fields.Eth_src, t.public_mac);
                 Flow.Action.Set_field (Fields.Tp_src, public_port);
                 Flow.Action.Output (Physical out_port) ]
               payload)
      end
    end
  in
  let app = { (Api.default_app "nat") with switch_up; packet_in } in
  let t =
    { app; gateway; public_ip; public_mac; inside; next_port = 30000;
      bindings = []; translations = 0; idle_timeout }
  in
  t_ref := Some t;
  t

let app t = t.app
let translations t = t.translations
let bindings t = t.bindings
