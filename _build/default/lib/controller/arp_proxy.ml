(** ARP proxy: the controller answers every ARP request from its global
    knowledge of host addresses, so broadcasts never flood the fabric —
    a standard SDN win over conventional L2 learning.

    ARP packets appear on the control channel via a punt rule on
    [ethType = 0x806]; requests (the ARP opcode rides in [ip_proto] in
    the flat header projection, see {!Packet.Frame.to_headers}) whose
    target address belongs to a known host are answered directly with a
    packet-out through the ingress port. *)

open Packet

type t = {
  app : Api.app;
  mutable answered : int;
  mutable unknown : int;
}

let arp_ethertype = 0x0806
let op_request = 1
let op_reply = 2

let create () =
  let t_ref = ref None in
  let get () = Option.get !t_ref in
  let switch_up ctx ~switch_id ~ports:_ =
    Api.install ctx ~switch_id ~priority:30000 ~cookie:0xa9
      { Flow.Pattern.any with eth_type = Some arp_ethertype }
      Flow.Action.to_controller
  in
  let packet_in ctx ~switch_id ~port ~reason:_
      (payload : Openflow.Message.payload) =
    let t = get () in
    let h = payload.headers in
    if h.eth_type = arp_ethertype && h.ip_proto = op_request then begin
      let target = h.ip4_dst in
      match
        Topo.Topology.host_ids (Api.topology ctx)
        |> List.find_opt (fun id -> Ipv4.of_host_id id = target)
      with
      | None -> t.unknown <- t.unknown + 1
      | Some owner ->
        t.answered <- t.answered + 1;
        let owner_mac = Mac.of_host_id owner in
        let reply =
          { payload with
            headers =
              { h with
                eth_src = owner_mac; eth_dst = h.eth_src;
                ip4_src = target; ip4_dst = h.ip4_src;
                ip_proto = op_reply } }
        in
        (* answer out the port the request came in on *)
        Api.packet_out ctx ~switch_id ~in_port:port
          [ Flow.Action.Output In_port_out ]
          reply
    end
  in
  let app = { (Api.default_app "arp-proxy") with switch_up; packet_in } in
  let t = { app; answered = 0; unknown = 0 } in
  t_ref := Some t;
  t

let app t = t.app
let answered t = t.answered
let unknown t = t.unknown
