(** Reactive L4 load balancer.

    A virtual IP (VIP) fronts a pool of destination hosts (DIPs).  The
    first packet of each client flow to the VIP reaches the controller,
    which picks a backend by hashing the client 5-tuple, installs a
    forward rule (rewrite [ip4_dst]/[eth_dst] to the DIP and forward
    toward it) and a reverse rule (rewrite the DIP's replies back to the
    VIP) at the same switch, then re-injects the packet.

    Assumption (documented): replies traverse the switch that rewrote
    the forward direction — true when the LB app is deployed on the
    backends' common edge/hub switch, as in the examples. *)

open Packet

type t = {
  app : Api.app;
  vip : Ipv4.t;
  vip_mac : Mac.t;
  backends : int array;  (** host ids *)
  mutable flows : int;   (** distinct flows load-balanced *)
  picks : (int, int) Hashtbl.t;  (** backend host id -> flows assigned *)
  idle_timeout : float;
}

let pick_backend t (h : Headers.t) =
  (* deterministic hash of the client flow identity *)
  let key = Hashtbl.hash (h.ip4_src, h.tp_src, h.ip4_dst, h.tp_dst) in
  t.backends.(key mod Array.length t.backends)

let create ~vip ?(vip_mac = Mac.of_string "02:de:ad:be:ef:01")
    ?(idle_timeout = 60.0) ~backends () =
  if backends = [] then invalid_arg "Lb.create: no backends";
  let t_ref = ref None in
  let get () = Option.get !t_ref in
  (* punt first-packets of VIP flows to the controller, above any
     routing rules (which would otherwise drop or misroute VIP traffic) *)
  let switch_up ctx ~switch_id ~ports:_ =
    let t = get () in
    Api.install ctx ~switch_id ~priority:10000 ~cookie:0x1b
      { Flow.Pattern.any with ip4_dst = Some (Ipv4.Prefix.host t.vip) }
      Flow.Action.to_controller
  in
  let packet_in ctx ~switch_id ~port ~reason:_
      (payload : Openflow.Message.payload) =
    let t = get () in
    let h = payload.headers in
    if h.ip4_dst = t.vip then begin
      let backend = pick_backend t h in
      let dip = Ipv4.of_host_id backend in
      let dmac = Mac.of_host_id backend in
      (* next hop toward the backend from this switch *)
      match
        Topo.Path.shortest_path (Api.topology ctx)
          ~src:(Topo.Topology.Node.Switch switch_id)
          ~dst:(Topo.Topology.Node.Host backend)
      with
      | None | Some [] -> ()  (* backend unreachable: drop *)
      | Some (hop :: _) ->
        t.flows <- t.flows + 1;
        Hashtbl.replace t.picks backend
          (1 + Option.value ~default:0 (Hashtbl.find_opt t.picks backend));
        let fwd_pattern =
          { Flow.Pattern.any with
            ip4_dst = Some (Ipv4.Prefix.host t.vip);
            ip4_src = Some (Ipv4.Prefix.host h.ip4_src);
            tp_src = Some h.tp_src; eth_type = Some 0x0800 }
        in
        let fwd_actions : Flow.Action.group =
          [ [ Set_field (Fields.Ip4_dst, dip);
              Set_field (Fields.Eth_dst, dmac);
              Output (Physical hop.Topo.Path.out_port) ] ]
        in
        Api.install ctx ~switch_id ~priority:10100
          ~idle_timeout:t.idle_timeout ~cookie:0x1b fwd_pattern fwd_actions;
        (* reverse: rewrite backend -> vip for this client *)
        let rev_pattern =
          { Flow.Pattern.any with
            ip4_src = Some (Ipv4.Prefix.host dip);
            ip4_dst = Some (Ipv4.Prefix.host h.ip4_src);
            tp_dst = Some h.tp_src; eth_type = Some 0x0800 }
        in
        (* the client's location: forward along the shortest path *)
        let client_fwd =
          match
            (* the reverse rule forwards toward the client's source MAC
               by shortest path if the client is a known host *)
            Topo.Topology.host_ids (Api.topology ctx)
            |> List.find_opt (fun id -> Ipv4.of_host_id id = h.ip4_src)
          with
          | None -> None
          | Some client ->
            (match
               Topo.Path.shortest_path (Api.topology ctx)
                 ~src:(Topo.Topology.Node.Switch switch_id)
                 ~dst:(Topo.Topology.Node.Host client)
             with
             | None | Some [] -> None
             | Some (chop :: _) -> Some chop.Topo.Path.out_port)
        in
        (match client_fwd with
         | None -> ()
         | Some client_port ->
           let rev_actions : Flow.Action.group =
             [ [ Set_field (Fields.Ip4_src, t.vip);
                 Set_field (Fields.Eth_src, t.vip_mac);
                 Output (Physical client_port) ] ]
           in
           Api.install ctx ~switch_id ~priority:10100
             ~idle_timeout:t.idle_timeout ~cookie:0x1b rev_pattern
             rev_actions);
        (* re-inject the trigger packet along the installed path *)
        Api.packet_out ctx ~switch_id ~in_port:port
          [ Set_field (Fields.Ip4_dst, dip);
            Set_field (Fields.Eth_dst, dmac);
            Output (Physical hop.Topo.Path.out_port) ]
          payload
    end
  in
  let app = { (Api.default_app "load-balancer") with switch_up; packet_in } in
  let t =
    { app; vip; vip_mac; backends = Array.of_list backends; flows = 0;
      picks = Hashtbl.create 8; idle_timeout }
  in
  t_ref := Some t;
  t

let app t = t.app
let flows t = t.flows

(** Flows assigned per backend host id. *)
let distribution t =
  Array.to_list t.backends
  |> List.map (fun b -> (b, Option.value ~default:0 (Hashtbl.find_opt t.picks b)))
