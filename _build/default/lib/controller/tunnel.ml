(** Label-switched edge-to-edge tunnels (MPLS/segment-routing flavor,
    label carried in the VLAN field).

    Destination-based routing installs one rule {e per destination host}
    at {e every} switch on a path.  Label switching aggregates: an
    ingress edge switch classifies packets by destination onto the tunnel
    toward that destination's edge switch and pushes the tunnel label;
    {e core} switches forward on the label alone (one rule per tunnel
    through them, independent of host count); the egress edge pops the
    label and delivers.  Experiment E13 measures the resulting core-table
    compression.

    Tunnels are provisioned proactively between every pair of
    host-bearing switches along current shortest paths. *)

open Packet

type lsp = {
  label : int;
  src_sw : int;
  dst_sw : int;
  path : Topo.Path.t;  (** switch-level path, [src_sw] to [dst_sw] *)
}

type t = {
  app : Api.app;
  mutable lsps : lsp list;
  mutable rules_installed : int;
  per_switch_rules : (int, int) Hashtbl.t;
}

let bump t sw =
  Hashtbl.replace t.per_switch_rules sw
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.per_switch_rules sw))

let install t ctx ~switch_id pattern actions =
  t.rules_installed <- t.rules_installed + 1;
  bump t switch_id;
  Api.install ctx ~switch_id ~priority:50 ~cookie:0x70 pattern actions

(* local delivery: each edge switch forwards its own hosts' traffic *)
let install_local_delivery t ctx topo sw =
  List.iter
    (fun (h, port) ->
      install t ctx ~switch_id:sw
        { Flow.Pattern.any with
          vlan = Some Fields.vlan_none;
          eth_dst = Some (Mac.of_host_id h) }
        (Flow.Action.forward port))
    (Topo.Topology.hosts_of_switch topo sw)

let install_lsp t ctx topo (l : lsp) =
  let dst_hosts = Topo.Topology.hosts_of_switch topo l.dst_sw in
  match l.path with
  | [] -> ()
  | first :: _ ->
    (* ingress: classify per destination host, push the tunnel label *)
    List.iter
      (fun (h, _) ->
        install t ctx ~switch_id:l.src_sw
          { Flow.Pattern.any with
            vlan = Some Fields.vlan_none;
            eth_dst = Some (Mac.of_host_id h) }
          [ [ Flow.Action.Set_field (Fields.Vlan, l.label);
              Flow.Action.Output (Physical first.Topo.Path.out_port) ] ])
      dst_hosts;
    (* core: label switching only *)
    List.iteri
      (fun i (h : Topo.Path.hop) ->
        if i > 0 then
          install t ctx
            ~switch_id:(Topo.Topology.Node.id h.node)
            { Flow.Pattern.any with vlan = Some l.label }
            (Flow.Action.forward h.out_port))
      l.path;
    (* egress: pop and deliver per host *)
    List.iter
      (fun (h, port) ->
        install t ctx ~switch_id:l.dst_sw
          { Flow.Pattern.any with
            vlan = Some l.label;
            eth_dst = Some (Mac.of_host_id h) }
          [ [ Flow.Action.Set_field (Fields.Vlan, Fields.vlan_none);
              Flow.Action.Output (Physical port) ] ])
      dst_hosts

let provision t ctx =
  let topo = Api.topology ctx in
  let edges =
    Topo.Topology.switch_ids topo
    |> List.filter (fun sw -> Topo.Topology.hosts_of_switch topo sw <> [])
  in
  let next_label = ref 100 in
  List.iter (install_local_delivery t ctx topo) edges;
  t.lsps <-
    List.concat_map
      (fun src_sw ->
        List.filter_map
          (fun dst_sw ->
            if src_sw = dst_sw then None
            else begin
              match
                Topo.Path.shortest_path topo
                  ~src:(Topo.Topology.Node.Switch src_sw)
                  ~dst:(Topo.Topology.Node.Switch dst_sw)
              with
              | None | Some [] -> None
              | Some path ->
                let label = !next_label in
                incr next_label;
                Some { label; src_sw; dst_sw; path }
            end)
          edges)
      edges;
  List.iter (install_lsp t ctx topo) t.lsps

let create () =
  let t_ref = ref None in
  let installed = ref false in
  let switch_up ctx ~switch_id:_ ~ports:_ =
    if not !installed then begin
      installed := true;
      provision (Option.get !t_ref) ctx
    end
  in
  let app = { (Api.default_app "tunnels") with switch_up } in
  let t =
    { app; lsps = []; rules_installed = 0;
      per_switch_rules = Hashtbl.create 16 }
  in
  t_ref := Some t;
  t

let app t = t.app
let lsps t = t.lsps
let rules_installed t = t.rules_installed

(** Rules this app installed on [sw]. *)
let rules_on t sw =
  Option.value ~default:0 (Hashtbl.find_opt t.per_switch_rules sw)
