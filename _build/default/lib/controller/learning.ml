(** The classic L2 learning switch — the canonical {e reactive} app.

    Every switch floods along spanning-tree ports until it has learned
    where a MAC lives (from the source address of a packet-in); known
    destinations get an exact-match rule with an idle timeout, so the
    table adapts to workload and forgets stale entries. *)

open Packet

type t = {
  app : Api.app;
  (* (switch, mac) -> port *)
  locations : (int * Mac.t, int) Hashtbl.t;
  mutable floods : int;
  mutable installs : int;
  idle_timeout : float option;
}

let lookup t ~switch_id mac = Hashtbl.find_opt t.locations (switch_id, mac)

let create ?(idle_timeout = Some 60.0) () =
  let t_ref = ref None in
  let get () = Option.get !t_ref in
  let switch_up ctx ~switch_id ~ports:_ =
    (* restrict flooding to spanning-tree ports so cyclic topologies do
       not melt down *)
    let tree = Topo.Path.spanning_tree (Api.topology ctx) in
    match Hashtbl.find_opt tree switch_id with
    | Some ports -> Api.set_flood_ports ctx ~switch_id ports
    | None -> ()
  in
  let packet_in ctx ~switch_id ~port ~reason:_
      (payload : Openflow.Message.payload) =
    let t = get () in
    let h = payload.headers in
    (* learn the source *)
    if not (Mac.is_multicast h.eth_src) then
      Hashtbl.replace t.locations (switch_id, h.eth_src) port;
    (* forward or flood *)
    match
      if Mac.is_broadcast h.eth_dst || Mac.is_multicast h.eth_dst then None
      else Hashtbl.find_opt t.locations (switch_id, h.eth_dst)
    with
    | Some out_port ->
      t.installs <- t.installs + 1;
      Api.install ctx ~switch_id ~priority:10 ?idle_timeout:t.idle_timeout
        { Flow.Pattern.any with eth_dst = Some h.eth_dst }
        (Flow.Action.forward out_port);
      Api.packet_out ctx ~switch_id ~in_port:port
        [ Flow.Action.Output (Physical out_port) ]
        payload
    | None ->
      t.floods <- t.floods + 1;
      Api.flood ctx ~switch_id ~in_port:port payload
  in
  let app =
    { (Api.default_app "learning") with switch_up; packet_in }
  in
  let t =
    { app; locations = Hashtbl.create 64; floods = 0; installs = 0;
      idle_timeout }
  in
  t_ref := Some t;
  t

let app t = t.app
let floods t = t.floods
let installs t = t.installs
