lib/controller/monitor.ml: Api Dataplane Hashtbl List Openflow Option Topo Util
