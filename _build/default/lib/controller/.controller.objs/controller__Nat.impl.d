lib/controller/nat.ml: Api Fields Flow Ipv4 List Mac Openflow Option Packet Topo
