lib/controller/arp_proxy.ml: Api Flow Ipv4 List Mac Openflow Option Packet Topo
