lib/controller/routing.ml: Api Flow Hashtbl List Netkat Option Topo
