lib/controller/runtime.ml: Api Dataplane Hashtbl List Openflow Queue
