lib/controller/learning.ml: Api Flow Hashtbl Mac Openflow Option Packet Topo
