lib/controller/tunnel.ml: Api Fields Flow Hashtbl List Mac Option Packet Topo
