lib/controller/lb.ml: Api Array Fields Flow Hashtbl Headers Ipv4 List Mac Openflow Option Packet Topo
