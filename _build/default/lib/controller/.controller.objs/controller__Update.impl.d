lib/controller/update.ml: Api Dataplane Fdd Flow List Local Netkat Packet Syntax Topo Util
