lib/controller/api.ml: Dataplane Flow Openflow
