lib/controller/firewall.ml: Api Flow List Netkat Option Topo
