(** Structured packet representation: a conventional protocol tree of
    Ethernet / VLAN / ARP / IPv4 / TCP / UDP / ICMP.  {!Codec} maps values
    of this type to and from wire bytes; {!to_headers} projects them onto
    the flat {!Headers.t} view used by tables and policies. *)

type tcp = {
  tcp_src : int;
  tcp_dst : int;
  seq : int;
  ack : int;
  flags : int;  (** low 9 bits: NS CWR ECE URG ACK PSH RST SYN FIN *)
  window : int;
  tcp_payload : bytes;
}

type udp = { udp_src : int; udp_dst : int; udp_payload : bytes }

type icmp = { icmp_type : int; icmp_code : int; icmp_payload : bytes }

type ip_payload =
  | Tcp of tcp
  | Udp of udp
  | Icmp of icmp
  | Ip_raw of int * bytes  (** unknown protocol number, raw body *)

type ipv4 = {
  ip_src : Ipv4.t;
  ip_dst : Ipv4.t;
  ttl : int;
  ident : int;
  dscp : int;
  ip_payload : ip_payload;
}

type arp_op = Arp_request | Arp_reply

type arp = {
  op : arp_op;
  sha : Mac.t;   (** sender hardware address *)
  spa : Ipv4.t;  (** sender protocol address *)
  tha : Mac.t;   (** target hardware address *)
  tpa : Ipv4.t;  (** target protocol address *)
}

type eth_payload =
  | Ip of ipv4
  | Arp of arp
  | Eth_raw of int * bytes  (** unknown ethertype, raw body *)

type t = {
  eth_src : Mac.t;
  eth_dst : Mac.t;
  vlan : int option;
  eth_payload : eth_payload;
}

let ethertype_ip = 0x0800
let ethertype_arp = 0x0806
let ethertype_vlan = 0x8100
let proto_icmp = 1
let proto_tcp = 6
let proto_udp = 17

let ip_proto_of_payload = function
  | Tcp _ -> proto_tcp
  | Udp _ -> proto_udp
  | Icmp _ -> proto_icmp
  | Ip_raw (p, _) -> p

let ethertype_of_payload = function
  | Ip _ -> ethertype_ip
  | Arp _ -> ethertype_arp
  | Eth_raw (ty, _) -> ty

(** Projects a frame onto the flat header record, locating it at
    [switch]/[in_port].  Non-IP frames carry zeros in the IP/transport
    fields; ARP frames expose their protocol addresses as IP fields, as
    OpenFlow 1.0 does. *)
let to_headers ~switch ~in_port t =
  let base =
    { Headers.default with
      switch; in_port;
      eth_src = t.eth_src; eth_dst = t.eth_dst;
      eth_type = ethertype_of_payload t.eth_payload;
      vlan = (match t.vlan with None -> Fields.vlan_none | Some v -> v) }
  in
  match t.eth_payload with
  | Arp a ->
    { base with
      ip4_src = a.spa; ip4_dst = a.tpa;
      ip_proto = (match a.op with Arp_request -> 1 | Arp_reply -> 2) }
  | Eth_raw _ -> base
  | Ip ip ->
    let base =
      { base with
        ip4_src = ip.ip_src; ip4_dst = ip.ip_dst;
        ip_proto = ip_proto_of_payload ip.ip_payload }
    in
    (match ip.ip_payload with
     | Tcp tcp -> { base with tp_src = tcp.tcp_src; tp_dst = tcp.tcp_dst }
     | Udp udp -> { base with tp_src = udp.udp_src; tp_dst = udp.udp_dst }
     | Icmp ic -> { base with tp_src = ic.icmp_type; tp_dst = ic.icmp_code }
     | Ip_raw _ -> base)

(** Total on-wire size in bytes (without FCS), as {!Codec.encode} emits. *)
let size t =
  let ip_payload_size = function
    | Tcp tcp -> 20 + Bytes.length tcp.tcp_payload
    | Udp udp -> 8 + Bytes.length udp.udp_payload
    | Icmp ic -> 4 + Bytes.length ic.icmp_payload
    | Ip_raw (_, b) -> Bytes.length b
  in
  let payload_size =
    match t.eth_payload with
    | Ip ip -> 20 + ip_payload_size ip.ip_payload
    | Arp _ -> 28
    | Eth_raw (_, b) -> Bytes.length b
  in
  14 + (match t.vlan with None -> 0 | Some _ -> 4) + payload_size

(** Convenience constructors used throughout tests and examples. *)

let tcp_packet ?(vlan = None) ?(ttl = 64) ?(flags = 0x02 (* SYN *))
    ?(payload = Bytes.empty) ~eth_src ~eth_dst ~ip_src ~ip_dst ~tp_src ~tp_dst
    () =
  { eth_src; eth_dst; vlan;
    eth_payload =
      Ip { ip_src; ip_dst; ttl; ident = 0; dscp = 0;
           ip_payload =
             Tcp { tcp_src = tp_src; tcp_dst = tp_dst; seq = 0; ack = 0;
                   flags; window = 65535; tcp_payload = payload } } }

let udp_packet ?(vlan = None) ?(ttl = 64) ?(payload = Bytes.empty)
    ~eth_src ~eth_dst ~ip_src ~ip_dst ~tp_src ~tp_dst () =
  { eth_src; eth_dst; vlan;
    eth_payload =
      Ip { ip_src; ip_dst; ttl; ident = 0; dscp = 0;
           ip_payload =
             Udp { udp_src = tp_src; udp_dst = tp_dst; udp_payload = payload } } }

let icmp_echo ?(reply = false) ?(payload = Bytes.empty)
    ~eth_src ~eth_dst ~ip_src ~ip_dst () =
  { eth_src; eth_dst; vlan = None;
    eth_payload =
      Ip { ip_src; ip_dst; ttl = 64; ident = 0; dscp = 0;
           ip_payload =
             Icmp { icmp_type = (if reply then 0 else 8); icmp_code = 0;
                    icmp_payload = payload } } }

let arp_query ~sha ~spa ~tpa =
  { eth_src = sha; eth_dst = Mac.broadcast; vlan = None;
    eth_payload = Arp { op = Arp_request; sha; spa; tha = 0; tpa } }

let arp_answer ~sha ~spa ~tha ~tpa =
  { eth_src = sha; eth_dst = tha; vlan = None;
    eth_payload = Arp { op = Arp_reply; sha; spa; tha; tpa } }
