(** The header fields visible to the policy language and to match-action
    tables.  The declaration order of [t] fixes the variable order of the
    forwarding decision diagrams built by the compiler: fields tested
    earlier in the order appear nearer the root. *)

type t =
  | Switch      (** datapath identifier (meta-field; never in a table pattern) *)
  | In_port     (** ingress port *)
  | Eth_src
  | Eth_dst
  | Eth_type
  | Vlan        (** VLAN id; [vlan_none] when untagged *)
  | Ip_proto
  | Ip4_src
  | Ip4_dst
  | Tp_src      (** transport source port (TCP/UDP) *)
  | Tp_dst      (** transport destination port *)

(** Value carried by an untagged frame in the [Vlan] field. *)
let vlan_none = 0xffff

let all =
  [ Switch; In_port; Eth_src; Eth_dst; Eth_type; Vlan; Ip_proto;
    Ip4_src; Ip4_dst; Tp_src; Tp_dst ]

let index = function
  | Switch -> 0 | In_port -> 1 | Eth_src -> 2 | Eth_dst -> 3 | Eth_type -> 4
  | Vlan -> 5 | Ip_proto -> 6 | Ip4_src -> 7 | Ip4_dst -> 8 | Tp_src -> 9
  | Tp_dst -> 10

(** Total order used by the FDD: compares declaration positions. *)
let compare a b = compare (index a) (index b)

let equal a b = index a = index b

let to_string = function
  | Switch -> "switch" | In_port -> "port" | Eth_src -> "ethSrc"
  | Eth_dst -> "ethDst" | Eth_type -> "ethType" | Vlan -> "vlan"
  | Ip_proto -> "ipProto" | Ip4_src -> "ip4Src" | Ip4_dst -> "ip4Dst"
  | Tp_src -> "tpSrc" | Tp_dst -> "tpDst"

(** Inverse of {!to_string}; recognized names follow the NetKAT surface
    syntax. @raise Invalid_argument on an unknown name. *)
let of_string = function
  | "switch" -> Switch | "port" -> In_port | "ethSrc" -> Eth_src
  | "ethDst" -> Eth_dst | "ethType" -> Eth_type | "vlan" -> Vlan
  | "ipProto" -> Ip_proto | "ip4Src" -> Ip4_src | "ip4Dst" -> Ip4_dst
  | "tpSrc" -> Tp_src | "tpDst" -> Tp_dst
  | s -> invalid_arg ("Fields.of_string: " ^ s)

let pp fmt t = Format.pp_print_string fmt (to_string t)

(** Renders a field value using the natural notation for the field
    (dotted quads for addresses, colon hex for MACs, decimal otherwise). *)
let pp_value fmt (f, v) =
  match f with
  | Eth_src | Eth_dst -> Mac.pp fmt v
  | Ip4_src | Ip4_dst -> Ipv4.pp fmt v
  | Switch | In_port | Eth_type | Vlan | Ip_proto | Tp_src | Tp_dst ->
    Format.pp_print_int fmt v
