lib/packet/frame.ml: Bytes Fields Headers Ipv4 Mac
