lib/packet/mac.ml: Format List Printf String
