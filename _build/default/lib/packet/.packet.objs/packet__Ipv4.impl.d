lib/packet/ipv4.ml: Format List Printf String
