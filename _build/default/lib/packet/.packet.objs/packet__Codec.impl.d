lib/packet/codec.ml: Bits Bytes Frame Ipv4 Mac Printf Util
