lib/packet/headers.ml: Fields Format Ipv4 Mac
