lib/packet/fields.ml: Format Ipv4 Mac
