(** IPv4 addresses and CIDR prefixes, represented as 32-bit values in an
    OCaml [int]. *)

type t = int

let max_addr = 0xffffffff

let of_octets a b c d =
  List.iter
    (fun o -> if o < 0 || o > 0xff then invalid_arg "Ipv4.of_octets")
    [ a; b; c; d ];
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let of_int v =
  if v < 0 || v > max_addr then invalid_arg "Ipv4.of_int";
  v

let to_int t = t

let to_string t =
  Printf.sprintf "%d.%d.%d.%d"
    ((t lsr 24) land 0xff) ((t lsr 16) land 0xff)
    ((t lsr 8) land 0xff) (t land 0xff)

(** Parses dotted-quad notation. @raise Invalid_argument on bad syntax. *)
let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
    let oct x =
      match int_of_string_opt x with
      | Some v when v >= 0 && v <= 0xff -> v
      | Some _ | None -> invalid_arg ("Ipv4.of_string: " ^ s)
    in
    of_octets (oct a) (oct b) (oct c) (oct d)
  | _ -> invalid_arg ("Ipv4.of_string: " ^ s)

let pp fmt t = Format.pp_print_string fmt (to_string t)
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = compare a b

(** CIDR prefixes, e.g. [10.0.0.0/8]. *)
module Prefix = struct
  (** [network] is stored with host bits already zeroed. *)
  type nonrec prefix = { network : t; length : int }

  type t = prefix

  let mask_of_length len =
    if len = 0 then 0 else max_addr lxor ((1 lsl (32 - len)) - 1)

  (** [make addr len] normalizes [addr] by masking host bits away.
      @raise Invalid_argument when [len] is outside [0, 32]. *)
  let make addr len =
    if len < 0 || len > 32 then invalid_arg "Ipv4.Prefix.make";
    { network = addr land mask_of_length len; length = len }

  let host addr = make addr 32
  let any = make 0 0
  let network p = p.network
  let length p = p.length
  let mask p = mask_of_length p.length

  (** [matches p addr] tests whether [addr] falls inside [p]. *)
  let matches p addr = addr land mask_of_length p.length = p.network

  (** [subset ~of_ p] is true when every address in [p] is also in [of_]. *)
  let subset ~of_ p = p.length >= of_.length && matches of_ p.network

  (** Prefixes overlap iff one contains the other. *)
  let overlap a b = subset ~of_:a b || subset ~of_:b a

  let to_string p = Printf.sprintf "%s/%d" (to_string p.network) p.length

  (** Parses ["10.0.0.0/8"]; a bare address means a /32. *)
  let of_string s =
    match String.index_opt s '/' with
    | None -> host (of_string s)
    | Some i ->
      let addr = of_string (String.sub s 0 i) in
      let len =
        match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
        | Some l -> l
        | None -> invalid_arg ("Ipv4.Prefix.of_string: " ^ s)
      in
      make addr len

  let pp fmt p = Format.pp_print_string fmt (to_string p)
  let equal a b = a.network = b.network && a.length = b.length

  (** Longer (more specific) prefixes sort first; used for
      longest-prefix-match rule generation. *)
  let compare_specificity a b =
    match compare b.length a.length with
    | 0 -> compare a.network b.network
    | c -> c
end

(** Deterministic address for a synthesized host id, inside 10.0.0.0/8. *)
let of_host_id id =
  if id < 0 || id > 0xffffff then invalid_arg "Ipv4.of_host_id";
  of_octets 10 ((id lsr 16) land 0xff) ((id lsr 8) land 0xff) (id land 0xff)
