(** Ethernet MAC addresses, represented as 48-bit values in an OCaml [int]. *)

type t = int

let broadcast = 0xffffffffffff

(** [of_octets a b c d e f] builds [a:b:c:d:e:f]; each octet must be in
    [0, 255]. *)
let of_octets a b c d e f =
  List.iter
    (fun o -> if o < 0 || o > 0xff then invalid_arg "Mac.of_octets")
    [ a; b; c; d; e; f ];
  (a lsl 40) lor (b lsl 32) lor (c lsl 24) lor (d lsl 16) lor (e lsl 8) lor f

(** [of_int v] validates that [v] fits in 48 bits. *)
let of_int v =
  if v < 0 || v > broadcast then invalid_arg "Mac.of_int";
  v

let to_int t = t

(** Conventional colon-separated lowercase hex rendering. *)
let to_string t =
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x"
    ((t lsr 40) land 0xff) ((t lsr 32) land 0xff) ((t lsr 24) land 0xff)
    ((t lsr 16) land 0xff) ((t lsr 8) land 0xff) (t land 0xff)

(** Parses ["aa:bb:cc:dd:ee:ff"]. @raise Invalid_argument on bad syntax. *)
let of_string s =
  match String.split_on_char ':' s with
  | [ a; b; c; d; e; f ] ->
    let oct x =
      match int_of_string_opt ("0x" ^ x) with
      | Some v when v >= 0 && v <= 0xff -> v
      | Some _ | None -> invalid_arg ("Mac.of_string: " ^ s)
    in
    of_octets (oct a) (oct b) (oct c) (oct d) (oct e) (oct f)
  | _ -> invalid_arg ("Mac.of_string: " ^ s)

let is_broadcast t = t = broadcast

(** Multicast bit: least-significant bit of the first octet. *)
let is_multicast t = (t lsr 40) land 1 = 1

let pp fmt t = Format.pp_print_string fmt (to_string t)
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = compare a b

(** A deterministic locally-administered unicast address derived from a
    small integer id, used when synthesizing hosts. *)
let of_host_id id =
  if id < 0 || id > 0xffffffff then invalid_arg "Mac.of_host_id";
  0x020000000000 lor id
