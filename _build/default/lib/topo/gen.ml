(** Topology generators: the standard shapes used by the examples, tests
    and experiments.  Switch ids start at 1; host ids start at 1 and are
    attached to edge switches in ascending order, one link each.

    Unless stated otherwise links default to 1 Gb/s capacity and 10 us
    propagation delay (datacenter scale); the WAN topologies carry
    realistic millisecond delays. *)

module Node = Topology.Node

let default_capacity = 1e9
let default_delay = 10e-6

let connect ?(capacity = default_capacity) ?(delay = default_delay) topo a b =
  let pa = Topology.fresh_port topo a in
  (* reserve pa before computing pb in case a == b is rejected below *)
  if Node.equal a b then invalid_arg "Gen.connect: self-loop";
  let pb = Topology.fresh_port topo b in
  Topology.add_link topo (a, pa) (b, pb) ~capacity ~delay

let attach_hosts ?(capacity = default_capacity) ?(delay = default_delay) topo
    ~per_switch sw_ids =
  let next = ref 1 in
  List.iter
    (fun sw ->
      for _ = 1 to per_switch do
        let h = Node.Host !next in
        incr next;
        Topology.add_node topo h;
        connect ~capacity ~delay topo (Node.Switch sw) h
      done)
    sw_ids

(** [linear ~switches ~hosts_per_switch ()] is the chain
    s1 - s2 - ... - sn with hosts on every switch. *)
let linear ?(hosts_per_switch = 1) ~switches () =
  if switches < 1 then invalid_arg "Gen.linear";
  let topo = Topology.create () in
  for i = 1 to switches do
    Topology.add_switch topo i
  done;
  for i = 1 to switches - 1 do
    connect topo (Node.Switch i) (Node.Switch (i + 1))
  done;
  attach_hosts topo ~per_switch:hosts_per_switch
    (List.init switches (fun i -> i + 1));
  topo

(** [ring ~switches ~hosts_per_switch ()] closes the chain into a cycle. *)
let ring ?(hosts_per_switch = 1) ~switches () =
  if switches < 3 then invalid_arg "Gen.ring: need >= 3 switches";
  let topo = linear ~hosts_per_switch:0 ~switches () in
  connect topo (Node.Switch switches) (Node.Switch 1);
  attach_hosts topo ~per_switch:hosts_per_switch
    (List.init switches (fun i -> i + 1));
  topo

(** [star ~leaves ~hosts_per_leaf ()]: switch 1 is the hub; switches
    2..leaves+1 are leaves carrying the hosts. *)
let star ?(hosts_per_leaf = 1) ~leaves () =
  if leaves < 1 then invalid_arg "Gen.star";
  let topo = Topology.create () in
  Topology.add_switch topo 1;
  for i = 2 to leaves + 1 do
    Topology.add_switch topo i;
    connect topo (Node.Switch 1) (Node.Switch i)
  done;
  attach_hosts topo ~per_switch:hosts_per_leaf
    (List.init leaves (fun i -> i + 2));
  topo

(** Complete [fanout]-ary tree of switch levels of the given [depth]
    (depth 1 = a single switch); hosts hang off the leaves. *)
let tree ?(hosts_per_leaf = 1) ~depth ~fanout () =
  if depth < 1 || fanout < 1 then invalid_arg "Gen.tree";
  let topo = Topology.create () in
  let next = ref 0 in
  let fresh () = incr next; !next in
  let leaves = ref [] in
  let rec build level =
    let id = fresh () in
    Topology.add_switch topo id;
    if level = depth then leaves := id :: !leaves
    else
      for _ = 1 to fanout do
        let child = build (level + 1) in
        connect topo (Node.Switch id) (Node.Switch child)
      done;
    id
  in
  ignore (build 1);
  attach_hosts topo ~per_switch:hosts_per_leaf (List.rev !leaves);
  topo

(** [grid ~rows ~cols ()]: rows x cols mesh; switch id of cell (r, c)
    (0-based) is [r * cols + c + 1]; one host per switch. *)
let grid ?(hosts_per_switch = 1) ?(wrap = false) ~rows ~cols () =
  if rows < 1 || cols < 1 then invalid_arg "Gen.grid";
  let topo = Topology.create () in
  let id r c = (r * cols) + c + 1 in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      Topology.add_switch topo (id r c)
    done
  done;
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then
        connect topo (Node.Switch (id r c)) (Node.Switch (id r (c + 1)));
      if r + 1 < rows then
        connect topo (Node.Switch (id r c)) (Node.Switch (id (r + 1) c))
    done
  done;
  if wrap && cols > 2 then
    for r = 0 to rows - 1 do
      connect topo (Node.Switch (id r (cols - 1))) (Node.Switch (id r 0))
    done;
  if wrap && rows > 2 then
    for c = 0 to cols - 1 do
      connect topo (Node.Switch (id (rows - 1) c)) (Node.Switch (id 0 c))
    done;
  attach_hosts topo ~per_switch:hosts_per_switch
    (List.init (rows * cols) (fun i -> i + 1));
  topo

let torus ?(hosts_per_switch = 1) ~rows ~cols () =
  grid ~hosts_per_switch ~wrap:true ~rows ~cols ()

(** Description of a fat-tree built by {!fat_tree}, exposing the id
    ranges of each switch layer. *)
type fat_tree_info = {
  k : int;
  core : int list;
  aggregation : int list;
  edge : int list;
  host_ids : int list;
}

(** The standard k-ary fat-tree (Al-Fares et al.): [(k/2)^2] core
    switches, [k] pods of [k/2] aggregation and [k/2] edge switches, and
    [k/2] hosts per edge switch — [k^3/4] hosts total.  [k] must be even
    and >= 2.  Core links get 10x the edge capacity, matching common
    oversubscription setups. *)
let fat_tree ~k () =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Gen.fat_tree: k must be even";
  let topo = Topology.create () in
  let half = k / 2 in
  let n_core = half * half in
  let core = List.init n_core (fun i -> i + 1) in
  let next = ref n_core in
  let fresh () = incr next; !next in
  List.iter (Topology.add_switch topo) core;
  let aggregation = ref [] and edge = ref [] in
  for pod = 0 to k - 1 do
    let aggs = List.init half (fun _ -> fresh ()) in
    let edges = List.init half (fun _ -> fresh ()) in
    List.iter (Topology.add_switch topo) aggs;
    List.iter (Topology.add_switch topo) edges;
    aggregation := !aggregation @ aggs;
    edge := !edge @ edges;
    (* full bipartite agg <-> edge inside the pod *)
    List.iter
      (fun a ->
        List.iter (fun e -> connect topo (Node.Switch a) (Node.Switch e)) edges)
      aggs;
    (* agg i of every pod connects to core switches [i*half, (i+1)*half) *)
    List.iteri
      (fun i a ->
        for j = 0 to half - 1 do
          let c = (i * half) + j + 1 in
          connect ~capacity:(default_capacity *. 10.0) topo (Node.Switch c)
            (Node.Switch a)
        done)
      aggs;
    ignore pod
  done;
  attach_hosts topo ~per_switch:half !edge;
  let host_ids = Topology.host_ids topo in
  ( topo,
    { k; core; aggregation = !aggregation; edge = !edge; host_ids } )

(** Two-tier leaf-spine fabric: every leaf connects to every spine;
    hosts hang off the leaves.  Spine ids are 1..spines, leaf ids
    follow.  Spine links carry 4x the edge capacity. *)
let leaf_spine ?(hosts_per_leaf = 4) ~leaves ~spines () =
  if leaves < 1 || spines < 1 then invalid_arg "Gen.leaf_spine";
  let topo = Topology.create () in
  for s = 1 to spines do
    Topology.add_switch topo s
  done;
  let leaf_ids = List.init leaves (fun i -> spines + i + 1) in
  List.iter
    (fun leaf ->
      Topology.add_switch topo leaf;
      for s = 1 to spines do
        connect ~capacity:(default_capacity *. 4.0) topo (Node.Switch s)
          (Node.Switch leaf)
      done)
    leaf_ids;
  attach_hosts topo ~per_switch:hosts_per_leaf leaf_ids;
  topo

(** Jellyfish (random regular graph of switches, Singla et al.): each of
    [switches] switches gets [degree] inter-switch links wired by random
    matching (with patching passes so the graph ends up connected);
    [hosts_per_switch] hosts per switch. *)
let jellyfish ?(hosts_per_switch = 1) ~switches ~degree ~prng () =
  if switches < degree + 1 then invalid_arg "Gen.jellyfish: too few switches";
  let topo = Topology.create () in
  for i = 1 to switches do
    Topology.add_switch topo i
  done;
  let free = Array.make (switches + 1) degree in
  let linked a b =
    Topology.out_links topo (Node.Switch a)
    |> List.exists (fun (l : Topology.link) -> l.dst = Node.Switch b)
  in
  (* random matching over remaining stubs *)
  let attempts = ref 0 in
  let candidates () =
    List.filter (fun i -> free.(i) > 0) (List.init switches (fun i -> i + 1))
  in
  let rec wire () =
    incr attempts;
    if !attempts > 50 * switches * degree then ()
    else begin
      match candidates () with
      | [] | [ _ ] -> ()
      | cs ->
        let arr = Array.of_list cs in
        let a = Util.Prng.pick prng arr in
        let b = Util.Prng.pick prng arr in
        if a <> b && not (linked a b) then begin
          connect topo (Node.Switch a) (Node.Switch b);
          free.(a) <- free.(a) - 1;
          free.(b) <- free.(b) - 1
        end;
        wire ()
    end
  in
  wire ();
  (* patch connectivity like waxman *)
  let rec ensure_connected () =
    let pred = Path.bfs topo ~src:(Node.Switch 1) in
    let reached n = Node.equal n (Node.Switch 1) || Hashtbl.mem pred n in
    match List.find_opt (fun n -> not (reached n)) (Topology.switches topo) with
    | None -> ()
    | Some orphan ->
      connect topo (Node.Switch 1) orphan;
      ensure_connected ()
  in
  ensure_connected ();
  attach_hosts topo ~per_switch:hosts_per_switch
    (List.init switches (fun i -> i + 1));
  topo

(** Waxman random graph over [n] switches placed uniformly in the unit
    square; edge probability [alpha * exp (-d / (beta * L))].  The result
    is forced connected by chaining any leftover components.  Link delays
    are proportional to Euclidean distance (1 ms per unit). *)
let waxman ?(hosts_per_switch = 1) ?(alpha = 0.4) ?(beta = 0.4) ~switches ~prng
    () =
  if switches < 1 then invalid_arg "Gen.waxman";
  let topo = Topology.create () in
  let xs = Array.init switches (fun _ -> Util.Prng.float prng 1.0) in
  let ys = Array.init switches (fun _ -> Util.Prng.float prng 1.0) in
  for i = 1 to switches do
    Topology.add_switch topo i
  done;
  let dist i j = Float.hypot (xs.(i) -. xs.(j)) (ys.(i) -. ys.(j)) in
  let l = sqrt 2.0 in
  for i = 0 to switches - 1 do
    for j = i + 1 to switches - 1 do
      let p = alpha *. exp (-.dist i j /. (beta *. l)) in
      if Util.Prng.float prng 1.0 < p then
        connect ~delay:(dist i j *. 1e-3) topo (Node.Switch (i + 1))
          (Node.Switch (j + 1))
    done
  done;
  (* force connectivity: BFS from switch 1, chain unreached components *)
  let rec ensure_connected () =
    let pred = Path.bfs topo ~src:(Node.Switch 1) in
    let reached n = Node.equal n (Node.Switch 1) || Hashtbl.mem pred n in
    match List.find_opt (fun n -> not (reached n)) (Topology.switches topo) with
    | None -> ()
    | Some orphan ->
      connect ~delay:1e-3 topo (Node.Switch 1) orphan;
      ensure_connected ()
  in
  ensure_connected ();
  attach_hosts topo ~per_switch:hosts_per_switch
    (List.init switches (fun i -> i + 1));
  topo

(* ------------------------------------------------------------------ *)
(* Reference WAN topologies *)

let wan_of_edges ~hosts_per_switch ~capacity edges ~n =
  let topo = Topology.create () in
  for i = 1 to n do
    Topology.add_switch topo i
  done;
  List.iter
    (fun (a, b, delay_ms) ->
      connect ~capacity ~delay:(delay_ms *. 1e-3) topo (Node.Switch a)
        (Node.Switch b))
    edges;
  attach_hosts topo ~per_switch:hosts_per_switch
    (List.init n (fun i -> i + 1));
  topo

(** The classic 11-node Abilene research backbone (delays approximate
    great-circle latency in ms). *)
let abilene ?(hosts_per_switch = 1) ?(capacity = 10e9) () =
  (* 1 Seattle, 2 Sunnyvale, 3 Los Angeles, 4 Denver, 5 Kansas City,
     6 Houston, 7 Chicago, 8 Indianapolis, 9 Atlanta, 10 Washington,
     11 New York *)
  wan_of_edges ~hosts_per_switch ~capacity ~n:11
    [ (1, 2, 7.0); (1, 4, 11.0); (2, 3, 3.0); (2, 4, 10.0); (3, 6, 14.0);
      (4, 5, 6.0); (5, 6, 7.0); (5, 8, 5.0); (6, 9, 10.0); (7, 8, 2.0);
      (7, 11, 8.0); (8, 9, 5.0); (9, 10, 6.0); (10, 11, 2.0) ]

(** A 12-site inter-datacenter WAN in the shape of Google's B4 as
    published at SIGCOMM'13: three geographic clusters (North America,
    Europe, Asia) with rich intra-cluster meshing and a few long
    inter-continental links. *)
let b4 ?(hosts_per_switch = 1) ?(capacity = 10e9) () =
  wan_of_edges ~hosts_per_switch ~capacity ~n:12
    [ (* North America: 1-6 *)
      (1, 2, 5.0); (1, 3, 12.0); (2, 3, 10.0); (2, 4, 12.0); (3, 4, 8.0);
      (4, 5, 10.0); (5, 6, 6.0); (3, 5, 14.0);
      (* trans-Atlantic *)
      (6, 7, 35.0); (5, 7, 40.0);
      (* Europe: 7-9 *)
      (7, 8, 5.0); (8, 9, 8.0); (7, 9, 10.0);
      (* Europe-Asia and trans-Pacific *)
      (9, 10, 60.0); (1, 12, 50.0);
      (* Asia: 10-12 *)
      (10, 11, 15.0); (11, 12, 12.0); (10, 12, 20.0) ]

(** Named lookup used by the CLI: one of "linear:N", "ring:N", "star:N",
    "fattree:K", "grid:RxC", "abilene", "b4", "waxman:N:SEED". *)
let of_spec spec =
  let parse_int s =
    match int_of_string_opt s with
    | Some n -> n
    | None -> invalid_arg ("Gen.of_spec: bad integer " ^ s)
  in
  match String.split_on_char ':' spec with
  | [ "linear"; n ] -> linear ~switches:(parse_int n) ()
  | [ "ring"; n ] -> ring ~switches:(parse_int n) ()
  | [ "star"; n ] -> star ~leaves:(parse_int n) ()
  | [ "fattree"; k ] -> fst (fat_tree ~k:(parse_int k) ())
  | [ "grid"; rc ] ->
    (match String.split_on_char 'x' rc with
     | [ r; c ] -> grid ~rows:(parse_int r) ~cols:(parse_int c) ()
     | _ -> invalid_arg ("Gen.of_spec: " ^ spec))
  | [ "abilene" ] -> abilene ()
  | [ "b4" ] -> b4 ()
  | [ "leafspine"; l; s ] ->
    leaf_spine ~leaves:(parse_int l) ~spines:(parse_int s) ()
  | [ "jellyfish"; n; d; seed ] ->
    jellyfish ~switches:(parse_int n) ~degree:(parse_int d)
      ~prng:(Util.Prng.create (parse_int seed)) ()
  | [ "waxman"; n; seed ] ->
    waxman ~switches:(parse_int n) ~prng:(Util.Prng.create (parse_int seed)) ()
  | _ -> invalid_arg ("Gen.of_spec: unknown topology " ^ spec)
