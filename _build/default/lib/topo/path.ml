(** Path computation over a {!Topology.t}.

    All algorithms respect two network realities: links that are down are
    invisible, and hosts never transit traffic (a path may start or end at
    a host but never pass through one).

    A path is a list of hops; each hop records the node left, the egress
    port used, and the link taken. *)

module Node = Topology.Node

type hop = { node : Node.t; out_port : int; next : Node.t; in_port : int }

type t = hop list
(** in travel order; empty for the trivial path from a node to itself *)

let length (p : t) = List.length p

let nodes ~src (p : t) = src :: List.map (fun h -> h.next) p

let pp fmt (p : t) =
  match p with
  | [] -> Format.pp_print_string fmt "<empty>"
  | first :: _ ->
    Format.fprintf fmt "%a" Node.pp first.node;
    List.iter (fun h -> Format.fprintf fmt " -[%d]-> %a" h.out_port Node.pp h.next) p

let to_string p = Format.asprintf "%a" pp p

(* Expand the neighbors of [node]: traffic may leave a host only when the
   host is the path source. *)
let successors topo ~src node =
  if Node.is_host node && not (Node.equal node src) then []
  else
    Topology.out_links topo node
    |> List.map (fun (l : Topology.link) ->
      { node; out_port = l.src_port; next = l.dst; in_port = l.dst_port })

(* ------------------------------------------------------------------ *)
(* BFS (unit weights) *)

(** [bfs topo ~src] returns the predecessor-hop table of a breadth-first
    search from [src]: for each reached node, the hop by which it was first
    reached.  [src] itself is not in the table. *)
let bfs topo ~src =
  let pred : (Node.t, hop) Hashtbl.t = Hashtbl.create 64 in
  let visited : (Node.t, unit) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace visited src ();
  let q = Queue.create () in
  Queue.push src q;
  while not (Queue.is_empty q) do
    let n = Queue.pop q in
    let hops = successors topo ~src n in
    List.iter
      (fun h ->
        if not (Hashtbl.mem visited h.next) then begin
          Hashtbl.replace visited h.next ();
          Hashtbl.replace pred h.next h;
          Queue.push h.next q
        end)
      hops
  done;
  pred

let walk_back pred ~src ~dst =
  if Node.equal src dst then Some []
  else begin
    let rec go node acc =
      match Hashtbl.find_opt pred node with
      | None -> None
      | Some h ->
        if Node.equal h.node src then Some (h :: acc) else go h.node (h :: acc)
    in
    go dst []
  end

(** Fewest-hops path, or [None] when [dst] is unreachable. *)
let shortest_path topo ~src ~dst = walk_back (bfs topo ~src) ~src ~dst

(* ------------------------------------------------------------------ *)
(* Dijkstra (arbitrary non-negative weights) *)

(** [dijkstra topo ~weight ~src] computes least-cost distances and
    predecessor hops from [src].  [weight] maps each half-link to a
    non-negative cost (e.g. [fun l -> l.delay], or [fun _ -> 1.] for hop
    count). *)
let dijkstra topo ~weight ~src =
  let dist : (Node.t, float) Hashtbl.t = Hashtbl.create 64 in
  let pred : (Node.t, hop) Hashtbl.t = Hashtbl.create 64 in
  let heap = Util.Heap.create () in
  Hashtbl.replace dist src 0.0;
  Util.Heap.push heap 0.0 src;
  let settled : (Node.t, unit) Hashtbl.t = Hashtbl.create 64 in
  while not (Util.Heap.is_empty heap) do
    let d, n = Util.Heap.pop heap in
    if not (Hashtbl.mem settled n) then begin
      Hashtbl.replace settled n ();
      let hops = successors topo ~src n in
      List.iter
        (fun h ->
          match Topology.link_via topo h.node h.out_port with
          | None -> ()
          | Some l ->
            let w = weight l in
            assert (w >= 0.0);
            let nd = d +. w in
            let better =
              match Hashtbl.find_opt dist h.next with
              | None -> true
              | Some old -> nd < old
            in
            if better then begin
              Hashtbl.replace dist h.next nd;
              Hashtbl.replace pred h.next h;
              Util.Heap.push heap nd h.next
            end)
        hops
    end
  done;
  (dist, pred)

(** Least-[weight] path with its total cost, or [None] if unreachable. *)
let cheapest_path topo ~weight ~src ~dst =
  let dist, pred = dijkstra topo ~weight ~src in
  match Hashtbl.find_opt dist dst with
  | None -> None
  | Some d ->
    (match walk_back pred ~src ~dst with
     | Some p -> Some (p, d)
     | None -> if Node.equal src dst then Some ([], 0.0) else None)

(* ------------------------------------------------------------------ *)
(* Bellman-Ford — used as an independent oracle in property tests *)

(** Same contract as the distance table of {!dijkstra}, computed by
    Bellman-Ford relaxation. *)
let bellman_ford topo ~weight ~src =
  let dist : (Node.t, float) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace dist src 0.0;
  let all = Topology.nodes topo in
  let n = List.length all in
  let changed = ref true in
  let round = ref 0 in
  while !changed && !round < n do
    changed := false;
    incr round;
    List.iter
      (fun node ->
        match Hashtbl.find_opt dist node with
        | None -> ()
        | Some d ->
          successors topo ~src node
          |> List.iter (fun h ->
            match Topology.link_via topo h.node h.out_port with
            | None -> ()
            | Some l ->
              let nd = d +. weight l in
              let better =
                match Hashtbl.find_opt dist h.next with
                | None -> true
                | Some old -> nd < old
              in
              if better then begin
                Hashtbl.replace dist h.next nd;
                changed := true
              end))
      all
  done;
  dist

(* ------------------------------------------------------------------ *)
(* All shortest paths (ECMP sets) *)

(** [all_shortest_paths topo ~src ~dst] enumerates every fewest-hops path
    (the ECMP set).  The result is empty when [dst] is unreachable and
    [[[]]] when [src = dst]. *)
let all_shortest_paths topo ~src ~dst =
  (* hop-count distances from every node to dst would need a reverse
     graph; instead compute distances from src and walk the BFS DAG. *)
  let dist : (Node.t, int) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace dist src 0;
  let q = Queue.create () in
  Queue.push src q;
  while not (Queue.is_empty q) do
    let n = Queue.pop q in
    let d = Hashtbl.find dist n in
    successors topo ~src n
    |> List.iter (fun h ->
      if not (Hashtbl.mem dist h.next) then begin
        Hashtbl.replace dist h.next (d + 1);
        Queue.push h.next q
      end)
  done;
  match Hashtbl.find_opt dist dst with
  | None -> []
  | Some _ ->
    (* enumerate forward along edges that advance distance by one *)
    let rec extend node =
      if Node.equal node dst then [ [] ]
      else begin
        let d = Hashtbl.find dist node in
        successors topo ~src node
        |> List.concat_map (fun h ->
          match Hashtbl.find_opt dist h.next with
          | Some d' when d' = d + 1 ->
            List.map (fun rest -> h :: rest) (extend h.next)
          | Some _ | None -> [])
      end
    in
    extend src

(* ------------------------------------------------------------------ *)
(* Yen's algorithm: k loop-free shortest paths *)

let path_cost topo ~weight (p : t) =
  List.fold_left
    (fun acc h ->
      match Topology.link_via topo h.node h.out_port with
      | Some l -> acc +. weight l
      | None -> acc)
    0.0 p

(** [k_shortest topo ~weight ~src ~dst k] returns up to [k] loop-free
    paths in nondecreasing cost order (Yen's algorithm). *)
let k_shortest topo ~weight ~src ~dst k =
  if k <= 0 then []
  else begin
    match cheapest_path topo ~weight ~src ~dst with
    | None -> []
    | Some (first, first_cost) ->
      let accepted = ref [ (first, first_cost) ] in
      let candidates : (float * t) list ref = ref [] in
      let hop_eq a b =
        Node.equal a.node b.node && a.out_port = b.out_port
      in
      let same_prefix a b n =
        let rec go a b n =
          n = 0
          || match (a, b) with
             | ha :: ta, hb :: tb -> hop_eq ha hb && go ta tb (n - 1)
             | _ -> false
        in
        go a b n
      in
      (try
         for _ = 2 to k do
           let prev, _ = List.hd !accepted in
           (* deviate at each position of the most recent accepted path *)
           List.iteri
             (fun i _ ->
               let root = List.filteri (fun j _ -> j < i) prev in
               let spur =
                 match root with
                 | [] -> src
                 | _ -> (List.nth root (i - 1)).next
               in
               (* remove edges used by accepted paths sharing this root *)
               let removed = ref [] in
               List.iter
                 (fun (p, _) ->
                   if same_prefix p prev i && List.length p > i then begin
                     let h = List.nth p i in
                     match Topology.link_via topo h.node h.out_port with
                     | Some l when l.up ->
                       Topology.set_link_up topo (h.node, h.out_port) false;
                       removed := (h.node, h.out_port) :: !removed
                     | Some _ | None -> ()
                   end)
                 !accepted;
               (* also remove root nodes from the graph by downing their
                  links, except the spur node *)
               let root_nodes =
                 List.filteri
                   (fun j _ -> j < i)
                   (List.map (fun h -> h.node) prev)
               in
               let downed_nodes = ref [] in
               List.iter
                 (fun n ->
                   if not (Node.equal n spur) then begin
                     Topology.ports topo n
                     |> List.iter (fun p ->
                       match Topology.link_via topo n p with
                       | Some l when l.up ->
                         Topology.set_link_up topo (n, p) false;
                         downed_nodes := (n, p) :: !downed_nodes
                       | Some _ | None -> ())
                   end)
                 root_nodes;
               (match cheapest_path topo ~weight ~src:spur ~dst with
                | Some (spur_path, _) when spur_path <> [] || Node.equal spur dst ->
                  let total = root @ spur_path in
                  let cost = path_cost topo ~weight total in
                  let known =
                    List.exists (fun (p, _) -> p = total) !accepted
                    || List.exists (fun (_, p) -> p = total) !candidates
                  in
                  if not known then
                    candidates := (cost, total) :: !candidates
                | Some _ | None -> ());
               List.iter
                 (fun ep -> Topology.set_link_up topo ep true)
                 (!removed @ !downed_nodes))
             prev;
           match List.sort compare !candidates with
           | [] -> raise Exit
           | (cost, best) :: rest ->
             candidates := rest;
             accepted := (best, cost) :: !accepted
         done
       with Exit -> ());
      List.rev !accepted |> List.map fst
  end

(* ------------------------------------------------------------------ *)
(* Spanning tree (for flooding) *)

(** [spanning_tree topo] returns, for each switch, the set of ports that
    belong to a BFS spanning tree of the switch-and-host graph rooted at
    the lowest-id switch.  Flooding along exactly these ports reaches
    every node once with no loops.  Host-facing ports are always
    included. *)
let spanning_tree topo =
  let result : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  (match Topology.switches topo with
   | [] -> ()
   | root :: _ ->
     let pred = bfs topo ~src:root in
     let tree_ports : (Node.t * int, unit) Hashtbl.t = Hashtbl.create 64 in
     Hashtbl.iter
       (fun _ h ->
         Hashtbl.replace tree_ports (h.node, h.out_port) ();
         Hashtbl.replace tree_ports (h.next, h.in_port) ())
       pred;
     List.iter
       (fun sw ->
         let ports =
           Topology.out_links topo sw
           |> List.filter_map (fun (l : Topology.link) ->
             let included =
               Node.is_host l.dst
               || Hashtbl.mem tree_ports (sw, l.src_port)
             in
             if included then Some l.src_port else None)
         in
         Hashtbl.replace result (Node.id sw) ports)
       (Topology.switches topo));
  result
