lib/topo/path.ml: Format Hashtbl List Queue Topology Util
