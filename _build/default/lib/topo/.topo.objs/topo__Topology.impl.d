lib/topo/topology.ml: Buffer Format Hashtbl List Printf
