lib/topo/gen.ml: Array Float Hashtbl List Path String Topology Util
