lib/openflow/message.ml: Flow Format Packet
