lib/openflow/wire.ml: Bits Buffer Bytes Char Flow Int64 List Message Option Packet Printf String Util
