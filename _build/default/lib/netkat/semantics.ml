(** Denotational semantics of the policy language: a policy maps one
    header record to a set of header records.  This interpreter is the
    specification against which the flow-table compiler is tested — it is
    deliberately simple rather than fast. *)

open Packet

module HSet = Set.Make (struct
  type t = Headers.t

  let compare = Headers.compare
end)

let rec eval_pred (p : Syntax.pred) (h : Headers.t) =
  match p with
  | True -> true
  | False -> false
  | Test (f, v) -> Headers.get h f = v
  | And (a, b) -> eval_pred a h && eval_pred b h
  | Or (a, b) -> eval_pred a h || eval_pred b h
  | Not a -> not (eval_pred a h)

(** [eval pol h] is the set of packets [pol] produces from [h].  [Star]
    iterates to a fixpoint, which exists because every reachable header
    assigns each field either its original value or one written by some
    [Mod] in the policy — a finite space. *)
let rec eval (p : Syntax.pol) (h : Headers.t) : HSet.t =
  match p with
  | Filter pred -> if eval_pred pred h then HSet.singleton h else HSet.empty
  | Mod (f, v) -> HSet.singleton (Headers.set h f v)
  | Union (a, b) -> HSet.union (eval a h) (eval b h)
  | Seq (a, b) ->
    HSet.fold (fun h' acc -> HSet.union (eval b h') acc) (eval a h) HSet.empty
  | Star a ->
    (* least fixpoint of X = {h} ∪ a(X) *)
    let rec grow frontier acc =
      if HSet.is_empty frontier then acc
      else begin
        let next =
          HSet.fold
            (fun h' acc' -> HSet.union (eval a h') acc')
            frontier HSet.empty
        in
        let fresh = HSet.diff next acc in
        grow fresh (HSet.union acc fresh)
      end
    in
    grow (HSet.singleton h) (HSet.singleton h)

(** [eval_set pol hs] maps {!eval} over a set and unions the results. *)
let eval_set (p : Syntax.pol) (hs : HSet.t) =
  HSet.fold (fun h acc -> HSet.union (eval p h) acc) hs HSet.empty

(** Packet-level equivalence of two policies on a given input. *)
let equiv_on (p : Syntax.pol) (q : Syntax.pol) (h : Headers.t) =
  HSet.equal (eval p h) (eval q h)
