(** Abstract syntax of the policy language — a NetKAT-style algebra of
    predicates and policies over the header fields of {!Packet.Fields}.

    A policy denotes a function from one packet to a {e set} of packets:
    [Filter] keeps or drops, [Mod] rewrites one field, [Union] copies the
    packet through both branches, [Seq] pipes, and [Star] iterates [Seq]
    to a fixpoint.  Forwarding is expressed by modifying the [In_port]
    field (the packet's location); network links are the derived form
    {!link}, which teleports packets between switch locations. *)

open Packet

type pred =
  | True
  | False
  | Test of Fields.t * int
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type pol =
  | Filter of pred
  | Mod of Fields.t * int
  | Union of pol * pol
  | Seq of pol * pol
  | Star of pol

(** The always-pass policy. *)
let id = Filter True

(** The drop-everything policy. *)
let drop = Filter False

(* Smart constructors perform the cheap algebraic simplifications so
   that mechanically-assembled policies stay small. *)

let test f v = Test (f, v)

let conj a b =
  match (a, b) with
  | True, p | p, True -> p
  | False, _ | _, False -> False
  | _ -> And (a, b)

let disj a b =
  match (a, b) with
  | False, p | p, False -> p
  | True, _ | _, True -> True
  | _ -> Or (a, b)

let neg = function
  | True -> False
  | False -> True
  | Not p -> p
  | p -> Not p

let filter p = Filter p

let modify f v = Mod (f, v)

let union a b =
  match (a, b) with
  | Filter False, p | p, Filter False -> p
  | _ -> Union (a, b)

let seq a b =
  match (a, b) with
  | Filter True, p | p, Filter True -> p
  | Filter False, _ | _, Filter False -> drop
  | _ -> Seq (a, b)

let star = function
  | Filter True | Filter False -> id
  | p -> Star p

(** n-ary unions/sequences (right-nested); empty union is [drop], empty
    sequence is [id]. *)
let big_union ps = List.fold_right union ps drop

let big_seq ps = List.fold_right seq ps id

(** [ite pred p q] — if [pred] then [p] else [q]. *)
let ite pred p q =
  union (seq (filter pred) p) (seq (filter (neg pred)) q)

(** [at ~switch] restricts to packets located at the given switch. *)
let at ~switch = filter (test Fields.Switch switch)

(** [forward port] emits through [port] (a location modification). *)
let forward port = modify Fields.In_port port

(** [link (s1, p1) (s2, p2)] is the derived NetKAT link policy: packets
    sitting at port [p1] of switch [s1] move to port [p2] of switch [s2].
    Local (single-switch) compilation rejects policies containing links;
    the verifier interprets them via the topology instead. *)
let link (s1, p1) (s2, p2) =
  big_seq
    [ filter (conj (test Fields.Switch s1) (test Fields.In_port p1));
      modify Fields.Switch s2;
      forward p2 ]

(* ------------------------------------------------------------------ *)
(* Structural measures *)

let rec pred_size = function
  | True | False | Test _ -> 1
  | And (a, b) | Or (a, b) -> 1 + pred_size a + pred_size b
  | Not p -> 1 + pred_size p

let rec size = function
  | Filter p -> pred_size p
  | Mod _ -> 1
  | Union (a, b) | Seq (a, b) -> 1 + size a + size b
  | Star p -> 1 + size p

let rec uses_links = function
  | Filter _ -> false
  | Mod (f, _) -> Fields.equal f Fields.Switch
  | Union (a, b) | Seq (a, b) -> uses_links a || uses_links b
  | Star p -> uses_links p

(* ------------------------------------------------------------------ *)
(* Pretty printing (round-trips through Parser.pol_of_string) *)

(* precedence: Or < And < Not for predicates; Union < Seq < Star *)

let rec pp_pred_prec prec fmt p =
  let paren lvl body =
    if prec > lvl then Format.fprintf fmt "(%t)" body else body fmt
  in
  match p with
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Test (f, v) ->
    Format.fprintf fmt "%a = %a" Fields.pp f Fields.pp_value (f, v)
  | Or (a, b) ->
    paren 0 (fun fmt ->
      Format.fprintf fmt "%a or %a" (pp_pred_prec 0) a (pp_pred_prec 1) b)
  | And (a, b) ->
    paren 1 (fun fmt ->
      Format.fprintf fmt "%a and %a" (pp_pred_prec 1) a (pp_pred_prec 2) b)
  | Not a -> paren 2 (fun fmt -> Format.fprintf fmt "not %a" (pp_pred_prec 3) a)

let pp_pred fmt p = pp_pred_prec 0 fmt p

let rec pp_pol_prec prec fmt p =
  let paren lvl body =
    if prec > lvl then Format.fprintf fmt "(%t)" body else body fmt
  in
  match p with
  | Filter True -> Format.pp_print_string fmt "id"
  | Filter False -> Format.pp_print_string fmt "drop"
  | Filter pred ->
    paren 2 (fun fmt -> Format.fprintf fmt "filter %a" (pp_pred_prec 3) pred)
  | Mod (f, v) ->
    Format.fprintf fmt "%a := %a" Fields.pp f Fields.pp_value (f, v)
  | Union (a, b) ->
    paren 0 (fun fmt ->
      Format.fprintf fmt "%a + %a" (pp_pol_prec 0) a (pp_pol_prec 1) b)
  | Seq (a, b) ->
    paren 1 (fun fmt ->
      Format.fprintf fmt "%a; %a" (pp_pol_prec 1) a (pp_pol_prec 2) b)
  | Star a -> paren 2 (fun fmt -> Format.fprintf fmt "%a*" (pp_pol_prec 3) a)

let pp_pol fmt p = pp_pol_prec 0 fmt p

let pred_to_string p = Format.asprintf "%a" pp_pred p
let pol_to_string p = Format.asprintf "%a" pp_pol p
