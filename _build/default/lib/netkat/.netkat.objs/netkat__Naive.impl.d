lib/netkat/naive.ml: Fdd Fields Flow List Local Packet Syntax
