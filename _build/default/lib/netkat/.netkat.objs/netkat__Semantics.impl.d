lib/netkat/semantics.ml: Headers Packet Set Syntax
