lib/netkat/syntax.ml: Fields Format List Packet
