lib/netkat/fdd.ml: Fields Format Hashtbl Headers List Packet Set Syntax
