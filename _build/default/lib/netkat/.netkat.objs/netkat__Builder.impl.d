lib/netkat/builder.ml: Fields Ipv4 List Mac Option Packet Syntax Topo Util
