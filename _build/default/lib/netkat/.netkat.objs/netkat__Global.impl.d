lib/netkat/global.ml: Fields List Packet Printf Syntax Topo
