lib/netkat/analysis.ml: Fdd Fields Headers List Local Packet Syntax
