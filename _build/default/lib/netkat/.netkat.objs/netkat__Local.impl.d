lib/netkat/local.ml: Fdd Fields Flow Format List Packet
