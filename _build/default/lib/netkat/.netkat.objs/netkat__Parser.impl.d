lib/netkat/parser.ml: List Packet Printf String Syntax
