(** Policy analysis built on the FDD representation.

    Physical equality of hash-consed diagrams is a {e sound} equivalence
    check (equal pointers ⇒ equal policies) but not complete: a write
    that re-stores a value guaranteed by an enclosing positive test (as
    in [filter tpDst = 80; tpDst := 80]) leaves a structural difference
    with no semantic one.  {!counterexample} therefore walks the two
    diagrams in lockstep and, at structurally different leaves, decides
    {e semantic} difference on the path's packet cube by evaluating both
    action sets on a carefully chosen witness (fresh field values that no
    action writes, so distinct updates give distinct outputs, and updates
    that differ only by writes of path-forced values coincide — exactly
    the semantic quotient).  This makes {!equivalent} sound {e and}
    complete. *)

open Packet

(** Fast, sound, incomplete check: equal compiled diagrams.  Useful as a
    cheap pre-test; [true] is definitive, [false] is not. *)
let equal_fast p q = Fdd.equal (Fdd.of_policy p) (Fdd.of_policy q)

(* per-field knowledge along a product-walk path *)
type constraint_ = Forced of int | Excluded of int list

let env_get env f =
  match List.assoc_opt f env with
  | Some c -> c
  | None -> Excluded []

let env_set env f c = (f, c) :: List.remove_assoc f env

(* values written to [f] by any action of either leaf *)
let written_values f (l1 : Fdd.ActSet.t) (l2 : Fdd.ActSet.t) =
  let of_set s =
    Fdd.ActSet.fold
      (fun act acc ->
        match Fdd.Act.get act f with Some v -> v :: acc | None -> acc)
      s []
  in
  of_set l1 @ of_set l2

(* a packet in the path cube whose unconstrained fields hold fresh
   values: not excluded on the path and not written by either leaf *)
let witness env l1 l2 =
  List.fold_left
    (fun h f ->
      match env_get env f with
      | Forced v -> Headers.set h f v
      | Excluded vs ->
        let avoid = vs @ written_values f l1 l2 in
        let rec pick v = if List.mem v avoid then pick (v + 1) else v in
        let d = Headers.get h f in
        Headers.set h f (if List.mem d avoid then pick 0 else d))
    Headers.default Fields.all

let outputs_of_leaf (s : Fdd.ActSet.t) h =
  Fdd.ActSet.elements s
  |> List.map (fun act -> Fdd.Act.apply act h)
  |> List.sort_uniq Headers.compare

(** [counterexample p q] — [None] iff the policies are equivalent;
    otherwise a packet on which their output sets differ. *)
let counterexample p q =
  let dp = Fdd.of_policy p and dq = Fdd.of_policy q in
  let exception Found of Headers.t in
  let rec go a b env =
    if Fdd.equal a b then ()
    else begin
      match (a.Fdd.node, b.Fdd.node) with
      | Fdd.Leaf l1, Fdd.Leaf l2 ->
        let h = witness env l1 l2 in
        if outputs_of_leaf l1 h <> outputs_of_leaf l2 h then raise (Found h)
        (* otherwise the leaves differ only by writes of path-forced
           values: semantically equal on this cube *)
      | _ ->
        let ((f, v) as test) = Fdd.min_root a b in
        (match env_get env f with
         | Forced w ->
           if w = v then go (Fdd.pos test a) (Fdd.pos test b) env
           else go (Fdd.neg test a) (Fdd.neg test b) env
         | Excluded vs ->
           if not (List.mem v vs) then
             go (Fdd.pos test a) (Fdd.pos test b) (env_set env f (Forced v));
           go (Fdd.neg test a) (Fdd.neg test b)
             (env_set env f (Excluded (v :: vs))))
    end
  in
  match go dp dq [] with
  | () -> None
  | exception Found h -> Some h

(** [equivalent p q] — do [p] and [q] denote the same packet function?
    Sound and complete. *)
let equivalent p q = counterexample p q = None

(** [is_drop p] — does [p] drop every packet? *)
let is_drop p = equivalent p Syntax.drop

(** [is_id p] — does [p] pass every packet through unchanged (and only
    that)? *)
let is_id p = equivalent p Syntax.id

(** [deciding_fields p] — the header fields the policy's behavior
    actually depends on (tested somewhere in its diagram). *)
let deciding_fields p =
  let d = Fdd.of_policy p in
  List.filter (fun f -> Fdd.values_of_field d f <> []) Fields.all

(** [table_size ~switch p] — rules the policy compiles to at a switch,
    without materializing the table. *)
let table_size ~switch p =
  List.length (Local.rules_of_fdd ~switch (Fdd.of_policy p))
