(** Policy builders: canonical network-wide policies synthesized from a
    topology.  These are the workloads of the compiler experiments and
    the proactive controller app. *)

open Packet
module Node = Topo.Topology.Node

(** [routing_policy topo] — destination-based shortest-path L2/L3
    forwarding: for every host [h] and every switch [sw] that can reach
    it, match [Eth_dst = mac h] at [sw] and forward out the next-hop port
    of a shortest path.  The union over all pairs is the network-wide
    policy. *)
let routing_policy topo =
  let pols = ref [] in
  List.iter
    (fun dst ->
      let dst_node = Node.Host dst in
      let mac = Mac.of_host_id dst in
      (* one BFS per destination gives every switch's next hop: run BFS
         from the destination and follow predecessor hops backwards. *)
      List.iter
        (fun sw_node ->
          match Topo.Path.shortest_path topo ~src:sw_node ~dst:dst_node with
          | None | Some [] -> ()
          | Some (first_hop :: _) ->
            let sw = Node.id sw_node in
            pols :=
              Syntax.big_seq
                [ Syntax.at ~switch:sw;
                  Syntax.filter (Syntax.test Fields.Eth_dst mac);
                  Syntax.forward first_hop.Topo.Path.out_port ]
              :: !pols)
        (Topo.Topology.switches topo))
    (Topo.Topology.host_ids topo);
  Syntax.big_union (List.rev !pols)

(** IP-destination variant of {!routing_policy} (matches [Ip4_dst]). *)
let ip_routing_policy topo =
  let pols = ref [] in
  List.iter
    (fun dst ->
      let dst_node = Node.Host dst in
      let ip = Ipv4.of_host_id dst in
      List.iter
        (fun sw_node ->
          match Topo.Path.shortest_path topo ~src:sw_node ~dst:dst_node with
          | None | Some [] -> ()
          | Some (first_hop :: _) ->
            pols :=
              Syntax.big_seq
                [ Syntax.at ~switch:(Node.id sw_node);
                  Syntax.filter (Syntax.test Fields.Ip4_dst ip);
                  Syntax.forward first_hop.Topo.Path.out_port ]
              :: !pols)
        (Topo.Topology.switches topo))
    (Topo.Topology.host_ids topo);
  Syntax.big_union (List.rev !pols)

(** One entry of an access-control list. *)
type acl_entry = {
  allow : bool;
  src_ip : Ipv4.t option;
  dst_ip : Ipv4.t option;
  proto : int option;
  dst_port : int option;
}

let acl_pred (e : acl_entry) =
  let tests =
    List.filter_map
      (fun x -> x)
      [ Option.map (Syntax.test Fields.Ip4_src) e.src_ip;
        Option.map (Syntax.test Fields.Ip4_dst) e.dst_ip;
        Option.map (Syntax.test Fields.Ip_proto) e.proto;
        Option.map (Syntax.test Fields.Tp_dst) e.dst_port ]
  in
  List.fold_left Syntax.conj Syntax.True tests

(** [acl_policy entries ~default_allow] — first-match-wins access
    control, expressed as nested if-then-else over the entry predicates.
    Composed in sequence with a forwarding policy it yields a firewall. *)
let acl_policy entries ~default_allow =
  let rec build = function
    | [] -> if default_allow then Syntax.id else Syntax.drop
    | e :: rest ->
      Syntax.ite (acl_pred e)
        (if e.allow then Syntax.id else Syntax.drop)
        (build rest)
  in
  build entries

(** [firewall topo entries] — routing restricted by the ACL. *)
let firewall ?(default_allow = true) topo entries =
  Syntax.seq (acl_policy entries ~default_allow) (ip_routing_policy topo)

(** [isolation_policy topo ~groups] — slices hosts into groups and only
    routes traffic whose source and destination IP belong to the same
    group (a PlanetLab-style coexistence policy). *)
let isolation_policy topo ~groups =
  let same_group =
    List.map
      (fun group ->
        let members src =
          Syntax.big_union
            (List.map
               (fun h -> Syntax.filter
                  (Syntax.test
                     (if src then Fields.Ip4_src else Fields.Ip4_dst)
                     (Ipv4.of_host_id h)))
               group)
        in
        Syntax.seq (members true) (members false))
      groups
  in
  Syntax.seq (Syntax.big_union same_group) (ip_routing_policy topo)

(** Random exact-match ACL entries for benchmarks: [n] entries over the
    given host-id universe. *)
let random_acl prng ~n ~hosts =
  List.init n (fun _ ->
    { allow = Util.Prng.bool prng;
      src_ip =
        (if Util.Prng.bool prng then
           Some (Ipv4.of_host_id (1 + Util.Prng.int prng hosts))
         else None);
      dst_ip = Some (Ipv4.of_host_id (1 + Util.Prng.int prng hosts));
      proto = Some (if Util.Prng.bool prng then 6 else 17);
      dst_port = (if Util.Prng.bool prng then Some (Util.Prng.int prng 1024) else None) })
