(** Forwarding decision diagrams (FDDs) — the compiler's intermediate
    representation, after Smolka et al.'s "A fast compiler for NetKAT".

    An FDD is a binary decision diagram whose internal nodes test
    [field = value] and whose leaves are {e action sets}: sets of partial
    header updates, each update producing one output packet (the empty
    set is drop, the singleton empty update is the identity).

    Diagrams are ordered — along any root-to-leaf path, tests appear in
    nondecreasing field order, a field is never tested again after a
    true-branch, and equal fields appear with increasing values along
    false-branches — and hash-consed, so semantic construction is
    maximally shared and physical equality [==] coincides with diagram
    equality.  All construction goes through {!leaf} and {!branch}. *)

open Packet

(** A single action: a partial header update, sorted by field, at most
    one binding per field.  Applying it to a packet yields one packet. *)
module Act = struct
  type t = (Fields.t * int) list

  (** The identity update. *)
  let id : t = []

  let field_cmp (f, _) (g, _) = Fields.compare f g

  let of_list l =
    let sorted = List.sort_uniq (fun a b ->
      match field_cmp a b with 0 -> compare (snd a) (snd b) | c -> c) l
    in
    (* reject two bindings for one field *)
    let rec check = function
      | (f, _) :: ((g, _) :: _ as rest) ->
        if Fields.equal f g then invalid_arg "Fdd.Act.of_list: duplicate field"
        else check rest
      | [ _ ] | [] -> ()
    in
    check sorted;
    sorted

  let get (t : t) f =
    List.find_map (fun (g, v) -> if Fields.equal f g then Some v else None) t

  (** [compose a b] is the update "do [a], then [b]" ([b] wins). *)
  let compose (a : t) (b : t) : t =
    let keep_a = List.filter (fun (f, _) -> get b f = None) a in
    List.sort field_cmp (keep_a @ b)

  let apply (t : t) (h : Headers.t) =
    List.fold_left (fun h (f, v) -> Headers.set h f v) h t

  let compare (a : t) (b : t) =
    compare
      (List.map (fun (f, v) -> (Fields.index f, v)) a)
      (List.map (fun (f, v) -> (Fields.index f, v)) b)

  let pp fmt (t : t) =
    match t with
    | [] -> Format.pp_print_string fmt "id"
    | _ ->
      Format.pp_print_list
        ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
        (fun fmt (f, v) ->
          Format.fprintf fmt "%a:=%a" Fields.pp f Fields.pp_value (f, v))
        fmt t
end

module ActSet = Set.Make (Act)

type test = Fields.t * int

type t = { uid : int; node : node }

and node =
  | Leaf of ActSet.t
  | Branch of test * t * t  (** test, true-branch, false-branch *)

let uid t = t.uid

let test_compare (f, v) (g, u) =
  match Fields.compare f g with 0 -> compare v u | c -> c

(* ------------------------------------------------------------------ *)
(* Hash-consing *)

module Leaf_key = struct
  type t = ActSet.t

  let equal = ActSet.equal
  let hash s = Hashtbl.hash (List.map (List.map (fun (f, v) -> (Fields.index f, v))) (ActSet.elements s))
end

module Leaf_tbl = Hashtbl.Make (Leaf_key)

let leaf_tbl : t Leaf_tbl.t = Leaf_tbl.create 256
let branch_tbl : (int * int * int * int, t) Hashtbl.t = Hashtbl.create 256
let next_uid = ref 0

let fresh node =
  let t = { uid = !next_uid; node } in
  incr next_uid;
  t

let leaf acts =
  match Leaf_tbl.find_opt leaf_tbl acts with
  | Some t -> t
  | None ->
    let t = fresh (Leaf acts) in
    Leaf_tbl.add leaf_tbl acts t;
    t

(** [branch test tru fls] hash-conses, collapsing redundant tests. *)
let branch ((f, v) as test) tru fls =
  if tru == fls then tru
  else begin
    let key = (Fields.index f, v, tru.uid, fls.uid) in
    match Hashtbl.find_opt branch_tbl key with
    | Some t -> t
    | None ->
      let t = fresh (Branch (test, tru, fls)) in
      Hashtbl.add branch_tbl key t;
      t
  end

let drop = leaf ActSet.empty
let ident = leaf (ActSet.singleton Act.id)

(** Resets the hash-cons tables (used between benchmark runs to measure
    cold construction).  Existing diagrams remain usable but will no
    longer share with new ones. *)
let clear_cache () =
  Leaf_tbl.reset leaf_tbl;
  Hashtbl.reset branch_tbl;
  ignore (leaf ActSet.empty);
  ignore (leaf (ActSet.singleton Act.id))

let equal a b = a == b

(* ------------------------------------------------------------------ *)
(* Cofactors and generic binary apply *)

(* [pos test d]: specialize [d] under the assumption [test] holds.
   Precondition: [d]'s root test is >= [test] in diagram order. *)
let rec pos ((f, v) as t) d =
  match d.node with
  | Leaf _ -> d
  | Branch ((g, u), tru, fls) ->
    if Fields.equal g f then if u = v then tru else pos t fls else d

(* [neg test d]: specialize [d] under the assumption [test] fails. *)
let neg test d =
  match d.node with
  | Branch (root, _, fls) when test_compare root test = 0 -> fls
  | Leaf _ | Branch _ -> d

let min_root a b =
  match (a.node, b.node) with
  | Branch (ta, _, _), Branch (tb, _, _) ->
    if test_compare ta tb <= 0 then ta else tb
  | Branch (ta, _, _), Leaf _ -> ta
  | Leaf _, Branch (tb, _, _) -> tb
  | Leaf _, Leaf _ -> assert false

(* Shannon-expansion apply of a leaf-level binary operation.  [op] must
   be deterministic; results are memoized per call on (uid, uid). *)
let apply op =
  let memo : (int * int, t) Hashtbl.t = Hashtbl.create 64 in
  let rec go a b =
    match (a.node, b.node) with
    | Leaf x, Leaf y -> leaf (op x y)
    | _ ->
      let key = (a.uid, b.uid) in
      (match Hashtbl.find_opt memo key with
       | Some r -> r
       | None ->
         let test = min_root a b in
         let r =
           branch test (go (pos test a) (pos test b))
             (go (neg test a) (neg test b))
         in
         Hashtbl.add memo key r;
         r)
  in
  go

(** Pointwise union of the two diagrams' action sets. *)
let union a b = if a == b then a else apply ActSet.union a b

(* Gate: where the predicate diagram [p] passes, behave as [d]. *)
let gate p d =
  apply (fun pass acts -> if ActSet.is_empty pass then ActSet.empty else acts)
    p d

(** [cond test t e]: if [test] then [t] else [e], restoring diagram order
    regardless of the orders of [t] and [e]. *)
let cond test t e =
  if t == e then t
  else begin
    let p_pos = branch test ident drop in
    let p_neg = branch test drop ident in
    union (gate p_pos t) (gate p_neg e)
  end

(* ------------------------------------------------------------------ *)
(* Sequencing *)

(* [act_seq act d]: the diagram "apply [act], then run [d]", expressed
   over the *input* packet.  Tests in [d] on fields written by [act] are
   resolved; leaves are pre-composed with [act]. *)
let act_seq =
  let memo : (Act.t * int, t) Hashtbl.t = Hashtbl.create 64 in
  let rec go act d =
    match d.node with
    | Leaf acts -> leaf (ActSet.map (fun a2 -> Act.compose act a2) acts)
    | Branch ((f, v), tru, fls) ->
      let key = (act, d.uid) in
      (match Hashtbl.find_opt memo key with
       | Some r -> r
       | None ->
         let r =
           match Act.get act f with
           | Some v' -> if v' = v then go act tru else go act fls
           | None -> cond (f, v) (go act tru) (go act fls)
         in
         Hashtbl.add memo key r;
         r)
  in
  go

(** Kleisli sequencing: run [a], feed every output packet to [b]. *)
let seq a b =
  let memo : (int, t) Hashtbl.t = Hashtbl.create 64 in
  let rec go a =
    match Hashtbl.find_opt memo a.uid with
    | Some r -> r
    | None ->
      let r =
        match a.node with
        | Leaf acts ->
          if ActSet.is_empty acts then drop
          else
            ActSet.fold (fun act acc -> union acc (act_seq act b)) acts drop
        | Branch (test, tru, fls) -> cond test (go tru) (go fls)
      in
      Hashtbl.add memo a.uid r;
      r
  in
  if b == ident then a else if a == drop || b == drop then drop else go a

(** Kleene star: least fixpoint of [x = ident ∪ seq d x].  Terminates
    because the value space reachable from the policy's tests and
    modifications is finite and hash-consing detects convergence. *)
let star d =
  let rec fix acc n =
    if n > 10_000 then failwith "Fdd.star: fixpoint did not converge";
    let next = union ident (seq d acc) in
    if next == acc then acc else fix next (n + 1)
  in
  if d == ident || d == drop then ident else fix ident 0

(** Map over leaves (e.g. predicate negation flips pass/drop leaves). *)
let map_leaves f =
  let memo : (int, t) Hashtbl.t = Hashtbl.create 64 in
  let rec go d =
    match Hashtbl.find_opt memo d.uid with
    | Some r -> r
    | None ->
      let r =
        match d.node with
        | Leaf acts -> leaf (f acts)
        | Branch (test, tru, fls) -> branch test (go tru) (go fls)
      in
      Hashtbl.add memo d.uid r;
      r
  in
  go

(* ------------------------------------------------------------------ *)
(* From policies *)

let rec of_pred (p : Syntax.pred) =
  match p with
  | True -> ident
  | False -> drop
  | Test (f, v) -> branch (f, v) ident drop
  | And (a, b) -> gate (of_pred a) (of_pred b)
  | Or (a, b) -> union (of_pred a) (of_pred b)
  | Not a ->
    map_leaves
      (fun acts ->
        if ActSet.is_empty acts then ActSet.singleton Act.id else ActSet.empty)
      (of_pred a)

let rec of_policy (p : Syntax.pol) =
  match p with
  | Filter pred -> of_pred pred
  | Mod (f, v) -> leaf (ActSet.singleton [ (f, v) ])
  | Union (a, b) -> union (of_policy a) (of_policy b)
  | Seq (a, b) -> seq (of_policy a) (of_policy b)
  | Star a -> star (of_policy a)

(* ------------------------------------------------------------------ *)
(* Interpretation and inspection *)

(** [eval d h] runs the diagram on headers [h], returning the output
    packets (one per action in the reached leaf). *)
let rec eval d (h : Headers.t) =
  match d.node with
  | Leaf acts -> List.map (fun act -> Act.apply act h) (ActSet.elements acts)
  | Branch ((f, v), tru, fls) ->
    if Headers.get h f = v then eval tru h else eval fls h

(** [restrict (f, v) d] specializes the diagram to packets known to
    satisfy [f = v], removing every test on [f]. *)
let restrict (f, v) d =
  let memo : (int, t) Hashtbl.t = Hashtbl.create 16 in
  let rec go d =
    match Hashtbl.find_opt memo d.uid with
    | Some r -> r
    | None ->
      let r =
        match d.node with
        | Leaf _ -> d
        | Branch ((g, u), tru, fls) ->
          if Fields.compare g f < 0 then branch (g, u) (go tru) (go fls)
          else if Fields.equal g f then if u = v then go tru else go fls
          else d
      in
      Hashtbl.add memo d.uid r;
      r
  in
  go d

(** Distinct nodes reachable from [d] — the diagram's size. *)
let node_count d =
  let seen = Hashtbl.create 64 in
  let rec go d =
    if not (Hashtbl.mem seen d.uid) then begin
      Hashtbl.add seen d.uid ();
      match d.node with
      | Leaf _ -> ()
      | Branch (_, tru, fls) -> go tru; go fls
    end
  in
  go d;
  Hashtbl.length seen

(** [fold_paths d ~init ~f] visits every root-to-leaf path, true-branches
    first (the order in which rules must be emitted for priorities to
    encode the false-branch constraints).  [f] receives the positive
    tests along the path, the leaf's action set, and the accumulator. *)
let fold_paths d ~init ~f =
  let rec go d tests acc =
    match d.node with
    | Leaf acts -> f (List.rev tests) acts acc
    | Branch (test, tru, fls) ->
      let acc = go tru (test :: tests) acc in
      go fls tests acc
  in
  go d [] init

(** Values appearing in tests of field [f] anywhere in the diagram. *)
let values_of_field d f =
  let seen = Hashtbl.create 16 in
  let vals = Hashtbl.create 16 in
  let rec go d =
    if not (Hashtbl.mem seen d.uid) then begin
      Hashtbl.add seen d.uid ();
      match d.node with
      | Leaf _ -> ()
      | Branch ((g, v), tru, fls) ->
        if Fields.equal g f then Hashtbl.replace vals v ();
        go tru;
        go fls
    end
  in
  go d;
  Hashtbl.fold (fun v () acc -> v :: acc) vals [] |> List.sort compare

let rec pp fmt d =
  match d.node with
  | Leaf acts ->
    if ActSet.is_empty acts then Format.pp_print_string fmt "drop"
    else
      Format.fprintf fmt "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " | ")
           Act.pp)
        (ActSet.elements acts)
  | Branch ((f, v), tru, fls) ->
    Format.fprintf fmt "@[<hv 2>(%a=%a ?@ %a :@ %a)@]" Fields.pp f
      Fields.pp_value (f, v) pp tru pp fls

let to_string d = Format.asprintf "%a" pp d
