(** The global compiler: network-wide programs with explicit link hops,
    compiled to ordinary (single-switch) local policies by threading a
    {e program counter} through the VLAN field.

    A {!gpol} alternates {e processing stages} (ordinary local policies,
    each denoting one match-action step at whatever switch the packet
    occupies) with {e link hops} (the packet physically crossing a named
    topology link).  This is the NetKAT "in; (p·t)*; out" world made
    finite: unions and sequences freely, iteration only over link-free
    fragments — which covers source routing, waypoint chaining and
    service-function chains, the global programs one actually writes.

    Compilation normalizes the program into {e traces} (stage, link,
    stage, ..., stage), gives every position in every trace a VLAN tag,
    and emits one local policy in which: stage 0 runs on untagged packets
    and must end at its trace's first link source, where the next tag is
    pushed; stage [j] runs only on packets carrying tag [j] arriving at
    link [j]'s destination; the final stage pops the tag.  Installing the
    result with the ordinary local compiler realizes the global program
    exactly (the correspondence is property-tested against the
    teleporting denotational semantics).

    Restrictions (checked, {!Unsupported} otherwise): no [Star] over
    links, no [Switch]/[Vlan] modification inside stages (the VLAN is the
    program counter), at most {!max_segments} stages per trace. *)

open Packet

exception Unsupported of string

(** A location: switch id and port. *)
type loc = int * int

type gpol =
  | Local of Syntax.pol            (** one processing stage *)
  | GLink of loc * loc             (** cross the link [src -> dst] *)
  | GSeq of gpol * gpol
  | GUnion of gpol * gpol
  | GStar of gpol                  (** link-free bodies only *)

let max_segments = 15

(* ------------------------------------------------------------------ *)
(* Sugar *)

let local p = Local p
let glink ~from ~to_ = GLink (from, to_)
let gseq a b = GSeq (a, b)
let gunion a b = GUnion (a, b)
let big_gseq = function
  | [] -> Local Syntax.id
  | x :: xs -> List.fold_left gseq x xs
let big_gunion = function
  | [] -> Local Syntax.drop
  | x :: xs -> List.fold_left gunion x xs

(** The teleporting denotational reading: links move packets without a
    physical network.  The specification compiled code must meet. *)
let rec desugar = function
  | Local p -> p
  | GLink ((s1, p1), (s2, p2)) -> Syntax.link (s1, p1) (s2, p2)
  | GSeq (a, b) -> Syntax.seq (desugar a) (desugar b)
  | GUnion (a, b) -> Syntax.union (desugar a) (desugar b)
  | GStar a -> Syntax.star (desugar a)

(* ------------------------------------------------------------------ *)
(* Normalization into traces *)

(** stage 0, then (link crossed, following stage) pairs in order *)
type trace = {
  first : Syntax.pol;
  rest : ((loc * loc) * Syntax.pol) list;
}

let check_stage p =
  let rec bad : Syntax.pol -> bool = function
    | Filter pred ->
      let rec bad_pred : Syntax.pred -> bool = function
        | True | False -> false
        | Test (f, _) -> Fields.equal f Fields.Vlan
        | And (a, b) | Or (a, b) -> bad_pred a || bad_pred b
        | Not a -> bad_pred a
      in
      bad_pred pred
    | Mod (f, _) ->
      Fields.equal f Fields.Switch || Fields.equal f Fields.Vlan
    | Union (a, b) | Seq (a, b) -> bad a || bad b
    | Star a -> bad a
  in
  if bad p then
    raise (Unsupported "stages may not touch the Switch or Vlan fields")

let seq_trace ta tb =
  match ta.rest with
  | [] -> { first = Syntax.seq ta.first tb.first; rest = tb.rest }
  | rest ->
    let rec splice = function
      | [ (l, s) ] -> (l, Syntax.seq s tb.first) :: tb.rest
      | x :: xs -> x :: splice xs
      | [] -> assert false
    in
    { ta with rest = splice rest }

let rec normalize = function
  | Local p ->
    check_stage p;
    [ { first = p; rest = [] } ]
  | GLink (src, dst) ->
    (* entering the link requires being at its source; the move itself
       is the physical hop *)
    let s1, p1 = src in
    [ { first =
          Syntax.filter
            (Syntax.conj (Syntax.test Fields.Switch s1)
               (Syntax.test Fields.In_port p1));
        rest = [ ((src, dst), Syntax.id) ] } ]
  | GUnion (a, b) -> normalize a @ normalize b
  | GSeq (a, b) ->
    let ta = normalize a and tb = normalize b in
    List.concat_map (fun x -> List.map (seq_trace x) tb) ta
  | GStar a ->
    let traces = normalize a in
    if List.exists (fun t -> t.rest <> []) traces then
      raise (Unsupported "Star over link hops")
    else begin
      let p = desugar a in
      check_stage p;
      [ { first = Syntax.star p; rest = [] } ]
    end

(* ------------------------------------------------------------------ *)
(* Tagging *)

let at_loc (sw, pt) =
  Syntax.conj (Syntax.test Fields.Switch sw) (Syntax.test Fields.In_port pt)

(** [compile ?base_tag g] — the local policy realizing [g] over the
    physical network (install it with {!Local} / {!Zen.install_policy}).
    Tags are drawn from [base_tag] upward, [max_segments + 1] per trace.
    @raise Unsupported on programs outside the compilable fragment. *)
let compile ?(base_tag = 2000) g =
  let traces = normalize g in
  let pols =
    List.mapi
      (fun i t ->
        let n = List.length t.rest in
        if n > max_segments then
          raise (Unsupported "trace exceeds max_segments link hops");
        let tag j = base_tag + (i * (max_segments + 1)) + j in
        let untagged = Syntax.test Fields.Vlan Fields.vlan_none in
        if n = 0 then Syntax.seq (Syntax.filter untagged) t.first
        else begin
          (* stage 0: untagged, run, must sit at link 1's source, push tag 1 *)
          let (src1, _), _ = List.nth t.rest 0 in
          let stage0 =
            Syntax.big_seq
              [ Syntax.filter untagged; t.first;
                Syntax.filter (at_loc src1);
                Syntax.modify Fields.Vlan (tag 1) ]
          in
          let stages =
            List.mapi
              (fun j ((_, dst), body) ->
                let j = j + 1 in
                let guard =
                  Syntax.conj (Syntax.test Fields.Vlan (tag j)) (at_loc dst)
                in
                let tail =
                  if j = n then
                    [ Syntax.modify Fields.Vlan Fields.vlan_none ]
                  else begin
                    let (next_src, _), _ = List.nth t.rest j in
                    [ Syntax.filter (at_loc next_src);
                      Syntax.modify Fields.Vlan (tag (j + 1)) ]
                  end
                in
                Syntax.big_seq
                  ((Syntax.filter guard :: [ body ]) @ tail))
              t.rest
          in
          Syntax.big_union (stage0 :: stages)
        end)
      traces
  in
  Syntax.big_union pols

(** [links_of g] — every link hop the program names (for validation
    against a topology). *)
let links_of g =
  let rec go = function
    | Local _ -> []
    | GLink (a, b) -> [ (a, b) ]
    | GSeq (a, b) | GUnion (a, b) -> go a @ go b
    | GStar a -> go a
  in
  List.sort_uniq compare (go g)

(** [validate topo g] — check every named link exists (and is up) in the
    topology; returns the offending links. *)
let validate topo g =
  List.filter
    (fun (((s1, p1), (s2, p2)) : loc * loc) ->
      match Topo.Topology.peer topo (Topo.Topology.Node.Switch s1) p1 with
      | Some (Topo.Topology.Node.Switch s2', p2') ->
        not (s2 = s2' && p2 = p2')
      | Some (Topo.Topology.Node.Host _, _) | None -> true)
    (links_of g)

(* ------------------------------------------------------------------ *)
(* Convenience builders *)

(** [path_program topo ~vias ~stage ~final] — a source route: at each
    switch of [vias] in order, apply [stage] and forward toward the next
    via over the direct link (which must exist); at the last via apply
    [stage] then [final] (typically delivery to a host port).  The
    canonical way to express waypoint/service chains. *)
let path_program topo ~vias ~stage ~final =
  let link_between a b =
    Topo.Topology.out_links topo (Topo.Topology.Node.Switch a)
    |> List.find_opt (fun (l : Topo.Topology.link) ->
      l.dst = Topo.Topology.Node.Switch b)
  in
  let rec build = function
    | [] -> []
    | [ last ] ->
      [ Local (Syntax.big_seq [ Syntax.at ~switch:last; stage; final ]) ]
    | a :: (b :: _ as rest) ->
      (match link_between a b with
       | None ->
         raise
           (Unsupported (Printf.sprintf "path_program: no link s%d -> s%d" a b))
       | Some l ->
         Local
           (Syntax.big_seq
              [ Syntax.at ~switch:a; stage; Syntax.forward l.src_port ])
         :: GLink ((a, l.src_port), (Topo.Topology.Node.id l.dst, l.dst_port))
         :: build rest)
  in
  match vias with
  | [] -> Local Syntax.drop
  | _ -> big_gseq (build vias)
