(** Concrete syntax for policies and predicates.

    Grammar (precedence low to high; [+] and [;] associate left):
    {v
      pol   ::= pol "+" pol | pol ";" pol | pol "*"
              | "id" | "drop" | "filter" apred
              | field ":=" value
              | "if" pred "then" pol "else" pol
              | "(" pol ")"
      pred  ::= pred "or" pred | pred "and" pred | "not" pred | apred
      apred ::= "true" | "false" | field "=" value | "(" pred ")"
      field ::= switch | port | ethSrc | ethDst | ethType | vlan
              | ipProto | ip4Src | ip4Dst | tpSrc | tpDst
      value ::= integer | 0xHEX | a.b.c.d | aa:bb:cc:dd:ee:ff
    v}

    {!Syntax.pol_to_string} output parses back to an equal policy. *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Lexer *)

type token =
  | Word of string     (* identifier, keyword or literal *)
  | Plus
  | Semi
  | Star_tok
  | Lparen
  | Rparen
  | Assign
  | Equals
  | Eof

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = ':'

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '+' then (toks := Plus :: !toks; incr i)
    else if c = ';' then (toks := Semi :: !toks; incr i)
    else if c = '*' then (toks := Star_tok :: !toks; incr i)
    else if c = '(' then (toks := Lparen :: !toks; incr i)
    else if c = ')' then (toks := Rparen :: !toks; incr i)
    else if c = '=' then (toks := Equals :: !toks; incr i)
    else if c = ':' && !i + 1 < n && s.[!i + 1] = '=' then begin
      toks := Assign :: !toks;
      i := !i + 2
    end
    else if is_word_char c then begin
      (* a word: stop before ":=" so "port:=1" lexes as three tokens *)
      let start = !i in
      while
        !i < n && is_word_char s.[!i]
        && not (s.[!i] = ':' && !i + 1 < n && s.[!i + 1] = '=')
      do
        incr i
      done;
      toks := Word (String.sub s start (!i - start)) :: !toks
    end
    else fail "unexpected character %C at offset %d" c !i
  done;
  List.rev (Eof :: !toks)

(* ------------------------------------------------------------------ *)
(* Values and fields *)

let contains s c = String.contains s c

let value_of_word w =
  if contains w ':' then Some (Packet.Mac.of_string w)
  else if contains w '.' then Some (Packet.Ipv4.of_string w)
  else
    match int_of_string_opt w (* handles 0x.. too *) with
    | Some v -> Some v
    | None -> None

let keywords =
  [ "id"; "drop"; "filter"; "if"; "then"; "else"; "true"; "false"; "and";
    "or"; "not" ]

let field_of_word w =
  if List.mem w keywords then None
  else match Packet.Fields.of_string w with
    | f -> Some f
    | exception Invalid_argument _ -> None

(* ------------------------------------------------------------------ *)
(* Recursive-descent parser over a mutable token stream *)

type stream = { mutable toks : token list }

let peek st = match st.toks with [] -> Eof | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok what =
  if peek st = tok then advance st else fail "expected %s" what

let parse_value st =
  match peek st with
  | Word w ->
    (match value_of_word w with
     | Some v -> advance st; v
     | None -> fail "expected a value, got %S" w)
  | _ -> fail "expected a value"

let rec parse_pred st = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while peek st = Word "or" do
    advance st;
    lhs := Syntax.disj !lhs (parse_and st)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_not st) in
  while peek st = Word "and" do
    advance st;
    lhs := Syntax.conj !lhs (parse_not st)
  done;
  !lhs

and parse_not st =
  match peek st with
  | Word "not" ->
    advance st;
    Syntax.neg (parse_not st)
  | _ -> parse_apred st

and parse_apred st =
  match peek st with
  | Word "true" -> advance st; Syntax.True
  | Word "false" -> advance st; Syntax.False
  | Lparen ->
    advance st;
    let p = parse_pred st in
    expect st Rparen "')'";
    p
  | Word w ->
    (match field_of_word w with
     | Some f ->
       advance st;
       expect st Equals "'='";
       Syntax.test f (parse_value st)
     | None -> fail "expected a predicate, got %S" w)
  | _ -> fail "expected a predicate"

let rec parse_pol st = parse_union st

and parse_union st =
  let lhs = ref (parse_seq st) in
  while peek st = Plus do
    advance st;
    lhs := Syntax.union !lhs (parse_seq st)
  done;
  !lhs

and parse_seq st =
  let lhs = ref (parse_star st) in
  while peek st = Semi do
    advance st;
    lhs := Syntax.seq !lhs (parse_star st)
  done;
  !lhs

and parse_star st =
  let p = ref (parse_apol st) in
  while peek st = Star_tok do
    advance st;
    p := Syntax.star !p
  done;
  !p

and parse_apol st =
  match peek st with
  | Word "id" -> advance st; Syntax.id
  | Word "drop" -> advance st; Syntax.drop
  | Word "filter" ->
    advance st;
    Syntax.filter (parse_not st)
  | Word "if" ->
    advance st;
    let pred = parse_pred st in
    expect st (Word "then") "'then'";
    let p = parse_pol st in
    expect st (Word "else") "'else'";
    let q = parse_pol st in
    Syntax.ite pred p q
  | Lparen ->
    advance st;
    let p = parse_pol st in
    expect st Rparen "')'";
    p
  | Word w ->
    (match field_of_word w with
     | Some f ->
       advance st;
       expect st Assign "':='";
       Syntax.modify f (parse_value st)
     | None -> fail "expected a policy, got %S" w)
  | _ -> fail "expected a policy"

(** Parses a policy. @raise Parse_error with a diagnostic on bad input. *)
let pol_of_string s =
  let st = { toks = tokenize s } in
  let p = parse_pol st in
  if peek st <> Eof then fail "trailing input after policy";
  p

(** Parses a predicate. @raise Parse_error on bad input. *)
let pred_of_string s =
  let st = { toks = tokenize s } in
  let p = parse_pred st in
  if peek st <> Eof then fail "trailing input after predicate";
  p
