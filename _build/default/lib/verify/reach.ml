(** Symbolic reachability over installed flow tables: the header-space
    transfer function of each switch, composed along topology links.

    The input is a {e snapshot}: the topology plus every switch's rule
    list (priority-descending, as {!Flow.Table.rules} returns them).
    Analyses: per-host reachability, loop detection, black-hole
    enumeration, and pairwise isolation of host groups. *)

module Node = Topo.Topology.Node

type snapshot = {
  topo : Topo.Topology.t;
  tables : int -> Flow.Table.rule list;
      (** rules of a switch, highest priority first *)
}

(** A symbolic packet set at a location. *)
type located = { switch : int; in_port : int; cube : Hsa.cube }

type transfer_result = {
  out_sets : (int * Hsa.cube) list;  (** (egress port, rewritten cube) *)
  missed : Hsa.cube list;            (** slices hitting no rule *)
  dropped : Hsa.cube list;           (** slices matching a drop rule *)
}

(* Apply one action sequence to a cube; the output port is the final
   In_port value (In_port_out uses the concrete ingress port). *)
let apply_seq ~in_port cube (s : Flow.Action.seq) =
  let cube, out =
    List.fold_left
      (fun (cube, out) atom ->
        match (atom : Flow.Action.atom) with
        | Set_field (f, v) -> (Hsa.rewrite cube f v, out)
        | Output (Physical p) -> (cube, Some p)
        | Output In_port_out -> (cube, Some in_port)
        | Output Flood | Output Controller ->
          (cube, out (* flood/punt are not forwarding state; ignored *)))
      (cube, None) s
  in
  match out with Some p -> Some (p, cube) | None -> None

(** Transfer function of one switch: split the incoming cube across the
    table's rules in priority order. *)
let transfer snapshot ~switch ~in_port cube =
  let in_cube =
    match Hsa.inter cube (Hsa.eq Packet.Fields.In_port in_port) with
    | Some c -> c
    | None -> cube  (* contradictory port constraint: caller error *)
  in
  let rules = snapshot.tables switch in
  let rec go remaining rules acc =
    match (remaining, rules) with
    | [], _ -> acc
    | _, [] -> { acc with missed = remaining @ acc.missed }
    | _, (r : Flow.Table.rule) :: rest ->
      let pat = Hsa.of_pattern r.pattern in
      let hits = List.filter_map (fun c -> Hsa.inter c pat) remaining in
      let rest_cubes =
        List.concat_map (fun c -> Hsa.subtract c pat) remaining
      in
      let acc =
        if hits = [] then acc
        else if r.actions = [] then { acc with dropped = hits @ acc.dropped }
        else begin
          let outs =
            List.concat_map
              (fun c ->
                List.filter_map (apply_seq ~in_port c) r.actions)
              hits
          in
          { acc with out_sets = outs @ acc.out_sets }
        end
      in
      go rest_cubes rest acc
  in
  go [ in_cube ] rules { out_sets = []; missed = []; dropped = [] }

(* ------------------------------------------------------------------ *)
(* Reachability walk *)

type delivery = {
  host : int;
  cube : Hsa.cube;
  hops : int;
  via : int list;  (** switches traversed, in order *)
}

type walk_result = {
  deliveries : delivery list;
  loops : located list;        (** locations where a looping slice was cut *)
  black_holes : located list;  (** locations where a slice hit no rule *)
  explored : int;              (** symbolic states expanded *)
}

(** [walk snapshot ~src ~cube ?max_hops ()] pushes the symbolic packet
    set [cube], injected on the access link of host [src], through the
    network.  A slice arriving at a (switch, port) it has already
    visited along its own path — with a cube subsumed by the earlier
    one — is reported as a loop and cut. *)
let walk snapshot ~src ~cube ?(max_hops = 64) () =
  let deliveries = ref [] in
  let loops = ref [] in
  let black_holes = ref [] in
  let explored = ref 0 in
  (* history: (switch, port, cube) triples along the current path *)
  let rec step ~(loc : located) ~history ~hops c =
    explored := !explored + 1;
    if hops > max_hops then loops := { loc with cube = c } :: !loops
    else begin
      let looping =
        List.exists
          (fun (sw, pt, seen) ->
            sw = loc.switch && pt = loc.in_port && Hsa.subsumes ~general:seen c)
          history
      in
      if looping then loops := { loc with cube = c } :: !loops
      else begin
        let r = transfer snapshot ~switch:loc.switch ~in_port:loc.in_port c in
        List.iter
          (fun miss ->
            black_holes := { loc with cube = miss } :: !black_holes)
          r.missed;
        List.iter
          (fun (out_port, c') ->
            match
              Topo.Topology.peer snapshot.topo (Node.Switch loc.switch) out_port
            with
            | None -> ()  (* egress into a down link: traffic dies *)
            | Some (Node.Host h, _) ->
              let via =
                List.rev (loc.switch :: List.map (fun (sw, _, _) -> sw) history)
              in
              deliveries := { host = h; cube = c'; hops; via } :: !deliveries
            | Some (Node.Switch sw, in_port) ->
              (* the cube's In_port constraint is stale after moving *)
              let c' = Hsa.set_constr c' Packet.Fields.In_port Hsa.Any in
              step
                ~loc:{ switch = sw; in_port; cube = c' }
                ~history:((loc.switch, loc.in_port, c) :: history)
                ~hops:(hops + 1) c')
          r.out_sets
      end
    end
  in
  (match Topo.Topology.attachment snapshot.topo src with
   | None -> ()
   | Some (sw, sw_port) ->
     step ~loc:{ switch = sw; in_port = sw_port; cube } ~history:[] ~hops:1 cube);
  { deliveries = !deliveries; loops = !loops; black_holes = !black_holes;
    explored = !explored }

(* The cube of packets host [src] would address to host [dst] (matching
   the synthesized addressing scheme). *)
let flow_cube ~src ~dst =
  let open Packet in
  Hsa.top
  |> fun c -> Hsa.set_constr c Fields.Eth_src
                (Hsa.In (Hsa.IntSet.singleton (Mac.of_host_id src)))
  |> fun c -> Hsa.set_constr c Fields.Eth_dst
                (Hsa.In (Hsa.IntSet.singleton (Mac.of_host_id dst)))
  |> fun c -> Hsa.set_constr c Fields.Ip4_src
                (Hsa.In (Hsa.IntSet.singleton (Ipv4.of_host_id src)))
  |> fun c -> Hsa.set_constr c Fields.Ip4_dst
                (Hsa.In (Hsa.IntSet.singleton (Ipv4.of_host_id dst)))
  |> fun c -> Hsa.set_constr c Fields.Eth_type
                (Hsa.In (Hsa.IntSet.singleton 0x0800))

(** [reachable snapshot ~src ~dst] — does some packet addressed from
    [src] to [dst] actually arrive at [dst]? *)
let reachable snapshot ~src ~dst =
  let r = walk snapshot ~src ~cube:(flow_cube ~src ~dst) () in
  List.exists (fun d -> d.host = dst) r.deliveries

(** All-pairs reachability matrix over host ids. *)
let reachability_matrix snapshot =
  let hosts = Topo.Topology.host_ids snapshot.topo in
  List.concat_map
    (fun src ->
      List.filter_map
        (fun dst ->
          if src = dst then None
          else Some ((src, dst), reachable snapshot ~src ~dst))
        hosts)
    hosts

(** [loop_free snapshot] — walks the full header space from every host;
    returns the looping locations found (empty means loop-free for all
    host-injected traffic). *)
let loop_free snapshot =
  let hosts = Topo.Topology.host_ids snapshot.topo in
  List.concat_map
    (fun src ->
      let r = walk snapshot ~src ~cube:Hsa.top () in
      List.map (fun l -> (src, l)) r.loops)
    hosts

(** [isolated snapshot ~group_a ~group_b] — no packet injected by a host
    of [group_a] and addressed (by IP) to a host of [group_b] is
    delivered to [group_b], and vice versa.  Returns the offending
    (src, dst) witness pairs. *)
let isolated snapshot ~group_a ~group_b =
  let leaks one_way =
    List.concat_map
      (fun src ->
        List.filter_map
          (fun dst -> if reachable snapshot ~src ~dst then Some (src, dst) else None)
          (snd one_way))
      (fst one_way)
  in
  leaks (group_a, group_b) @ leaks (group_b, group_a)

(** Slices of the full header space from [src] that hit no rule
    anywhere — candidate black holes (expected to be non-empty in
    default-drop networks; useful to check {e which} traffic dies). *)
let black_holes snapshot ~src =
  (walk snapshot ~src ~cube:Hsa.top ()).black_holes

(** Waypoint enforcement: does {e every} delivered packet from [src] to
    [dst] traverse switch [waypoint]?  Returns
    [`No_traffic] when nothing is delivered at all,
    [`Enforced] when all deliveries pass the waypoint, and
    [`Violated witnesses] with the offending deliveries otherwise.
    The classic use: "all cross-zone traffic goes through the firewall
    switch". *)
let waypoint snapshot ~src ~dst ~waypoint =
  let r = walk snapshot ~src ~cube:(flow_cube ~src ~dst) () in
  let delivered = List.filter (fun d -> d.host = dst) r.deliveries in
  match delivered with
  | [] -> `No_traffic
  | _ ->
    (match
       List.filter (fun d -> not (List.mem waypoint d.via)) delivered
     with
     | [] -> `Enforced
     | bad -> `Violated bad)
