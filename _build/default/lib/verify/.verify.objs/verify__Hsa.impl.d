lib/verify/hsa.ml: Fields Flow Format Headers Int Ipv4 List Packet Printf Set String
