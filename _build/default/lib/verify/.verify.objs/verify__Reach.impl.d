lib/verify/reach.ml: Fields Flow Hsa Ipv4 List Mac Packet Topo
