(** Header-space algebra: symbolic sets of packet headers represented as
    {e cubes} — per-field constraints that are either unconstrained, a
    finite value set, or the complement of a finite value set.  Cubes are
    closed under intersection; subtraction yields a union of cubes.

    The algebra covers exactly the patterns the local compiler emits
    (exact values or wildcards per field).  CIDR prefixes other than /0
    and /32 raise {!Unsupported}; verifying prefix-rich tables would need
    ternary bit-vector cubes, which this toolkit does not require. *)

open Packet

exception Unsupported of string

module IntSet = Set.Make (Int)

type constr =
  | Any
  | In of IntSet.t      (** invariant: non-empty *)
  | Excl of IntSet.t    (** complement; invariant: non-empty *)

(** A cube maps each field to a constraint; absent fields are [Any].
    The [Switch] field is never constrained (location is tracked
    explicitly by the reachability walk). *)
type cube = (Fields.t * constr) list  (* sorted by field index *)

let top : cube = []

let field_cmp (f, _) (g, _) = Fields.compare f g

let constr_of_field (c : cube) f =
  match List.find_opt (fun (g, _) -> Fields.equal f g) c with
  | Some (_, k) -> k
  | None -> Any

(* Smart update: dropping Any constraints keeps cubes canonical. *)
let set_constr (c : cube) f k =
  let without = List.filter (fun (g, _) -> not (Fields.equal f g)) c in
  match k with
  | Any -> without
  | In _ | Excl _ -> List.sort field_cmp ((f, k) :: without)

(* intersection of two per-field constraints; None = empty *)
let inter_constr a b =
  match (a, b) with
  | Any, k | k, Any -> Some k
  | In x, In y ->
    let i = IntSet.inter x y in
    if IntSet.is_empty i then None else Some (In i)
  | In x, Excl y | Excl y, In x ->
    let d = IntSet.diff x y in
    if IntSet.is_empty d then None else Some (In d)
  | Excl x, Excl y -> Some (Excl (IntSet.union x y))

(* complement of a constraint as a constraint (always representable) *)
let neg_constr = function
  | Any -> None  (* empty set: complement of Any is nothing *)
  | In s -> Some (Excl s)
  | Excl s -> Some (In s)

(** [inter a b] — cube intersection, [None] when empty. *)
let inter (a : cube) (b : cube) : cube option =
  let fields =
    List.sort_uniq Fields.compare (List.map fst a @ List.map fst b)
  in
  List.fold_left
    (fun acc f ->
      match acc with
      | None -> None
      | Some c ->
        (match inter_constr (constr_of_field a f) (constr_of_field b f) with
         | None -> None
         | Some k -> Some (set_constr c f k)))
    (Some top) fields

(** [subtract a b] — the set [a \ b] as a union of disjoint cubes. *)
let subtract (a : cube) (b : cube) : cube list =
  (* classic decomposition: for each constrained field f_i of b, emit
     a ∩ b_{<i} ∩ ¬b_i, accumulating positive constraints as we go *)
  let rec go prefix fields acc =
    match fields with
    | [] -> List.rev acc
    | (f, bk) :: rest ->
      let negged =
        match neg_constr bk with
        | None -> None
        | Some nk ->
          (match inter_constr (constr_of_field prefix f) nk with
           | None -> None
           | Some k -> Some (set_constr prefix f k))
      in
      let acc = match negged with None -> acc | Some c -> c :: acc in
      (match inter_constr (constr_of_field prefix f) bk with
       | None -> List.rev acc  (* a ∩ b_{<=i} already empty: done *)
       | Some k -> go (set_constr prefix f k) rest acc)
  in
  match inter a b with
  | None -> [ a ]  (* disjoint: nothing to remove *)
  | Some _ -> go a b []

(** [subsumes ~general c] — every header in [c] is in [general]. *)
let subsumes ~general (c : cube) =
  List.for_all
    (fun (f, gk) ->
      match (gk, constr_of_field c f) with
      | Any, _ -> true
      | In g, In s -> IntSet.subset s g
      | In _, (Any | Excl _) -> false
      | Excl g, In s -> IntSet.is_empty (IntSet.inter s g)
      | Excl g, Excl s -> IntSet.subset g s
      | Excl _, Any -> false)
    general

let is_top (c : cube) = c = []

(** Singleton-value test constraint. *)
let eq f v : cube = [ (f, In (IntSet.singleton v)) ]

(** Cube of all headers matching a flow-table pattern.
    @raise Unsupported on CIDR prefixes other than /0 and /32. *)
let of_pattern (p : Flow.Pattern.t) : cube =
  let add c f o =
    match o with
    | None -> c
    | Some v -> set_constr c f (In (IntSet.singleton v))
  in
  let add_prefix c f o =
    match o with
    | None -> c
    | Some pfx ->
      (match Ipv4.Prefix.length pfx with
       | 0 -> c
       | 32 -> set_constr c f (In (IntSet.singleton (Ipv4.Prefix.network pfx)))
       | n ->
         raise
           (Unsupported (Printf.sprintf "/%d prefix in verified table" n)))
  in
  top
  |> fun c -> add c Fields.In_port p.in_port
  |> fun c -> add c Fields.Eth_src p.eth_src
  |> fun c -> add c Fields.Eth_dst p.eth_dst
  |> fun c -> add c Fields.Eth_type p.eth_type
  |> fun c -> add c Fields.Vlan p.vlan
  |> fun c -> add c Fields.Ip_proto p.ip_proto
  |> fun c -> add_prefix c Fields.Ip4_src p.ip4_src
  |> fun c -> add_prefix c Fields.Ip4_dst p.ip4_dst
  |> fun c -> add c Fields.Tp_src p.tp_src
  |> fun c -> add c Fields.Tp_dst p.tp_dst

(** [rewrite c f v] — the image of [c] under the assignment [f := v]. *)
let rewrite (c : cube) f v = set_constr c f (In (IntSet.singleton v))

(** [contains c h] — membership of concrete headers. *)
let contains (c : cube) (h : Headers.t) =
  List.for_all
    (fun (f, k) ->
      let v = Headers.get h f in
      match k with
      | Any -> true
      | In s -> IntSet.mem v s
      | Excl s -> not (IntSet.mem v s))
    c

(** A concrete witness header inside the cube (fields left [Any] take
    defaults; [Excl] fields take the smallest non-excluded value). *)
let witness (c : cube) : Headers.t =
  List.fold_left
    (fun h (f, k) ->
      match k with
      | Any -> h
      | In s -> Headers.set h f (IntSet.min_elt s)
      | Excl s ->
        let rec pick v = if IntSet.mem v s then pick (v + 1) else v in
        Headers.set h f (pick 0))
    Packet.Headers.default c

let pp_constr fmt = function
  | Any -> Format.pp_print_string fmt "*"
  | In s ->
    Format.fprintf fmt "{%s}"
      (String.concat "," (List.map string_of_int (IntSet.elements s)))
  | Excl s ->
    Format.fprintf fmt "!{%s}"
      (String.concat "," (List.map string_of_int (IntSet.elements s)))

let pp fmt (c : cube) =
  if is_top c then Format.pp_print_string fmt "top"
  else
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " & ")
      (fun fmt (f, k) -> Format.fprintf fmt "%a%a" Fields.pp f pp_constr k)
      fmt c

let to_string c = Format.asprintf "%a" pp c
