(** Network slices: named groups of hosts that share the substrate but
    must not exchange traffic — the PlanetLab lesson ("many architectures
    on one substrate") expressed as policy.

    A slice compiles to the routing policy restricted to packets whose
    source {e and} destination IP belong to the slice; the network policy
    is the union over slices.  Isolation is then a checkable property of
    the compiled tables ({!verify_isolation}). *)

type t = {
  name : string;
  hosts : int list;  (** member host ids *)
}

let make ~name ~hosts =
  if hosts = [] then invalid_arg "Slice.make: empty slice";
  { name; hosts }

(** Membership predicate on one direction (source or destination IP). *)
let member_pred ~src slice =
  Netkat.Syntax.big_union
    (List.map
       (fun h ->
         Netkat.Syntax.filter
           (Netkat.Syntax.test
              (if src then Packet.Fields.Ip4_src else Packet.Fields.Ip4_dst)
              (Packet.Ipv4.of_host_id h)))
       slice.hosts)
  |> fun pol -> pol

(** [policy topo slices] — the sliced network policy: traffic is routed
    iff both endpoints are in the same slice. *)
let policy topo slices =
  Netkat.Builder.isolation_policy topo
    ~groups:(List.map (fun s -> s.hosts) slices)

(** [verify_isolation snapshot a b] — leaks between two slices as
    (src, dst) witness pairs (empty = isolated). *)
let verify_isolation snapshot a b =
  Verify.Reach.isolated snapshot ~group_a:a.hosts ~group_b:b.hosts

(** [verify_all snapshot slices] — checks every slice pair; returns
    [(slice_a, slice_b, leaks)] for pairs with leaks. *)
let verify_all snapshot slices =
  let rec pairs = function
    | [] -> []
    | s :: rest -> List.map (fun s' -> (s, s')) rest @ pairs rest
  in
  pairs slices
  |> List.filter_map (fun (a, b) ->
    match verify_isolation snapshot a b with
    | [] -> None
    | leaks -> Some (a.name, b.name, leaks))

(** Intra-slice connectivity: pairs of same-slice hosts that cannot
    reach each other (empty = fully connected inside the slice). *)
let verify_connectivity snapshot slice =
  List.concat_map
    (fun src ->
      List.filter_map
        (fun dst ->
          if src = dst then None
          else if Verify.Reach.reachable snapshot ~src ~dst then None
          else Some (src, dst))
        slice.hosts)
    slice.hosts
