lib/core/zen.ml: Controller Dataplane Flow List Netkat Slice Topo Verify Wan
