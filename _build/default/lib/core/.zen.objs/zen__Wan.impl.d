lib/core/wan.ml: Dataplane Float Flow Hashtbl List Netkat Option Packet Printf Syntax Te Topo
