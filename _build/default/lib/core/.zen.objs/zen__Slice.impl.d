lib/core/slice.ml: List Netkat Packet Verify
