(** Flow-rule actions.

    An {!atom} is a single primitive; a {!seq} applies atoms left to
    right to one copy of the packet; a {!group} is a multiset of
    sequences, each applied to its own copy (multicast).  The empty group
    drops the packet; the group containing one empty sequence would
    forward nowhere — sequences are only meaningful when they end in an
    [Output]. *)

open Packet

type port =
  | Physical of int      (** a concrete port number *)
  | In_port_out          (** send back through the ingress port *)
  | Flood                (** all ports except ingress (spanning-tree filtered by the switch) *)
  | Controller           (** punt to the controller as a packet-in *)

type atom =
  | Set_field of Fields.t * int
  | Output of port

type seq = atom list
type group = seq list

let drop : group = []

(** Forward unchanged through one physical port. *)
let forward p : group = [ [ Output (Physical p) ] ]

let to_controller : group = [ [ Output Controller ] ]
let flood : group = [ [ Output Flood ] ]

(** [apply_seq h seq] threads headers through the sequence, returning the
    final headers and the output ports hit along the way (in order). *)
let apply_seq (h : Headers.t) (s : seq) =
  let rec go h outs = function
    | [] -> (h, List.rev outs)
    | Set_field (f, v) :: rest -> go (Headers.set h f v) outs rest
    | Output p :: rest -> go h (p :: outs) rest
  in
  go h [] s

(** [apply_group h g] yields one [(headers, port)] pair per copy emitted
    by the group (a sequence with several outputs emits several copies,
    each carrying the header state at its output point). *)
let apply_group (h : Headers.t) (g : group) =
  List.concat_map
    (fun s ->
      (* replay the sequence, recording headers at each output *)
      let rec go h acc = function
        | [] -> List.rev acc
        | Set_field (f, v) :: rest -> go (Headers.set h f v) acc rest
        | Output p :: rest -> go h ((h, p) :: acc) rest
      in
      go h [] s)
    g

let pp_port fmt = function
  | Physical p -> Format.fprintf fmt "%d" p
  | In_port_out -> Format.pp_print_string fmt "in_port"
  | Flood -> Format.pp_print_string fmt "flood"
  | Controller -> Format.pp_print_string fmt "ctrl"

let pp_atom fmt = function
  | Set_field (f, v) ->
    Format.fprintf fmt "%a:=%a" Fields.pp f Fields.pp_value (f, v)
  | Output p -> Format.fprintf fmt "out(%a)" pp_port p

let pp_seq fmt s =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
    pp_atom fmt s

let pp_group fmt = function
  | [] -> Format.pp_print_string fmt "drop"
  | g ->
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " + ")
      (fun fmt s -> Format.fprintf fmt "[%a]" pp_seq s)
      fmt g

let group_to_string g = Format.asprintf "%a" pp_group g
