(** Priority flow tables: the forwarding state of one switch.

    Lookup returns the action group of the highest-priority matching
    rule; among equal priorities the earliest-installed rule wins (as in
    OpenFlow, equal-priority overlaps are discouraged — {!overlaps}
    detects them).  Rules carry packet/byte counters and optional idle
    and hard timeouts evicted by {!expire}. *)

open Packet

type rule = {
  priority : int;
  pattern : Pattern.t;
  actions : Action.group;
  mutable packets : int;
  mutable bytes : int;
  installed_at : float;
  mutable last_hit : float;
  idle_timeout : float option;  (** seconds of inactivity before eviction *)
  hard_timeout : float option;  (** absolute lifetime in seconds *)
  cookie : int;                 (** opaque tag chosen by the controller *)
}

type t = {
  mutable rules : rule list;  (* descending priority, stable within ties *)
  mutable capacity : int option;  (* max rules, None = unbounded *)
  mutable misses : int;
  mutable hits : int;
}

let create ?capacity () = { rules = []; capacity; misses = 0; hits = 0 }

let size t = List.length t.rules
let rules t = t.rules
let hits t = t.hits
let misses t = t.misses

exception Table_full

let make_rule ?(priority = 0) ?(idle_timeout = None) ?(hard_timeout = None)
    ?(cookie = 0) ?(now = 0.0) ~pattern ~actions () =
  { priority; pattern; actions; packets = 0; bytes = 0; installed_at = now;
    last_hit = now; idle_timeout; hard_timeout; cookie }

(** [add t rule] inserts keeping the descending-priority order; a rule
    with the same priority and pattern as an existing one replaces it
    (OpenFlow modify semantics).
    @raise Table_full when the table is at capacity. *)
let add t rule =
  let replaced = ref false in
  let rules =
    List.map
      (fun r ->
        if r.priority = rule.priority && r.pattern = rule.pattern then begin
          replaced := true;
          rule
        end
        else r)
      t.rules
  in
  if !replaced then t.rules <- rules
  else begin
    (match t.capacity with
     | Some cap when List.length t.rules >= cap -> raise Table_full
     | Some _ | None -> ());
    let rec insert = function
      | [] -> [ rule ]
      | r :: rest when r.priority < rule.priority -> rule :: r :: rest
      | r :: rest -> r :: insert rest
    in
    t.rules <- insert t.rules
  end

(** Removes every rule whose pattern is subsumed by [pattern] (OpenFlow
    delete semantics); [cookie] restricts deletion to matching cookies. *)
let remove ?cookie t ~pattern =
  t.rules <-
    List.filter
      (fun r ->
        let cookie_match =
          match cookie with None -> true | Some c -> r.cookie = c
        in
        not (cookie_match && Pattern.subsumes ~general:pattern r.pattern))
      t.rules

(** [remove_strict t ~priority ~pattern] removes exactly the rule with
    this priority and pattern, if present (OpenFlow strict-delete). *)
let remove_strict ?cookie t ~priority ~pattern =
  t.rules <-
    List.filter
      (fun r ->
        let cookie_match =
          match cookie with None -> true | Some c -> r.cookie = c
        in
        not (cookie_match && r.priority = priority && r.pattern = pattern))
      t.rules

let clear t = t.rules <- []

(** [lookup t h] returns the winning rule for headers [h], if any,
    without touching counters. *)
let lookup t (h : Headers.t) =
  List.find_opt (fun r -> Pattern.matches r.pattern h) t.rules

(** [apply t ~now ~size h] performs a dataplane lookup: updates hit/miss
    and per-rule counters and returns the winning rule's action group, or
    [None] on a table miss. *)
let apply t ~now ~size (h : Headers.t) =
  match lookup t h with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some r ->
    t.hits <- t.hits + 1;
    r.packets <- r.packets + 1;
    r.bytes <- r.bytes + size;
    r.last_hit <- now;
    Some r.actions

(** [expire t ~now] evicts rules whose idle or hard timeout has passed,
    returning the evicted rules (for flow-removed notifications). *)
let expire t ~now =
  let expired r =
    let idle =
      match r.idle_timeout with
      | Some dt -> now -. r.last_hit >= dt
      | None -> false
    in
    let hard =
      match r.hard_timeout with
      | Some dt -> now -. r.installed_at >= dt
      | None -> false
    in
    idle || hard
  in
  let gone, kept = List.partition expired t.rules in
  t.rules <- kept;
  gone

(** Pairs of distinct same-priority rules whose patterns overlap — the
    situations where lookup results depend on insertion order. *)
let overlaps t =
  let rec go acc = function
    | [] -> List.rev acc
    | r :: rest ->
      let acc =
        List.fold_left
          (fun acc r' ->
            if r'.priority = r.priority && Pattern.overlap r.pattern r'.pattern
            then (r, r') :: acc
            else acc)
          acc rest
      in
      go acc rest
  in
  go [] t.rules

(** Rules that can never match because a higher-priority rule subsumes
    them — dead table entries. *)
let shadowed t =
  let rec go seen acc = function
    | [] -> List.rev acc
    | r :: rest ->
      let dead =
        List.exists
          (fun earlier ->
            earlier.priority >= r.priority
            && Pattern.subsumes ~general:earlier.pattern r.pattern)
          seen
      in
      go (r :: seen) (if dead then r :: acc else acc) rest
  in
  go [] [] t.rules

let pp fmt t =
  Format.fprintf fmt "flow table (%d rules, %d hits, %d misses)@." (size t)
    t.hits t.misses;
  List.iter
    (fun r ->
      Format.fprintf fmt "  [%4d] %a -> %a (pkts=%d)@." r.priority Pattern.pp
        r.pattern Action.pp_group r.actions r.packets)
    t.rules

let to_string t = Format.asprintf "%a" pp t
