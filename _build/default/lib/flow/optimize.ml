(** Flow-table minimization: semantics-preserving shrinking of a rule
    list, applied after compilation and before installation (switch TCAM
    is the scarce resource).

    Two passes, both conservative (they only remove a rule when a purely
    syntactic argument shows lookups cannot change):

    - {b shadow elimination}: a rule is dead when an earlier
      (higher-precedence) rule's pattern subsumes its own;
    - {b redundancy elimination}: a rule is redundant when some later rule
      with {e identical actions} subsumes its pattern and no rule between
      them overlaps it with different actions — every packet the rule
      would catch falls through to the same treatment.

    Passes iterate to a fixpoint (removing one rule can expose another). *)

type rule = {
  priority : int;
  pattern : Pattern.t;
  actions : Action.group;
}

(* rules are processed in match-precedence order: descending priority,
   earlier-installed first among ties *)
let sort_rules rules =
  List.stable_sort (fun a b -> compare b.priority a.priority) rules

let shadow_pass rules =
  let rec go kept = function
    | [] -> List.rev kept
    | r :: rest ->
      let dead =
        List.exists
          (fun earlier -> Pattern.subsumes ~general:earlier.pattern r.pattern)
          kept
      in
      go (if dead then kept else r :: kept) rest
  in
  go [] rules

let redundancy_pass rules =
  (* for each rule, look for a later same-action rule subsuming it with
     no conflicting rule in between *)
  let arr = Array.of_list rules in
  let n = Array.length arr in
  let redundant = Array.make n false in
  for i = 0 to n - 1 do
    let r = arr.(i) in
    let rec scan j blocked =
      if j >= n || blocked then ()
      else begin
        let r' = arr.(j) in
        if (not (redundant.(j)))
           && r'.actions = r.actions
           && Pattern.subsumes ~general:r'.pattern r.pattern
        then redundant.(i) <- true
        else begin
          let blocks =
            (not redundant.(j))
            && r'.actions <> r.actions
            && Pattern.overlap r'.pattern r.pattern
          in
          scan (j + 1) blocks
        end
      end
    in
    scan (i + 1) false
  done;
  List.filteri (fun i _ -> not redundant.(i)) (Array.to_list arr)

(** [minimize rules] returns an equivalent, usually smaller rule list
    (same relative order among survivors; priorities unchanged). *)
let minimize rules =
  let rec fix rules =
    let next = redundancy_pass (shadow_pass rules) in
    if List.length next = List.length rules then rules else fix next
  in
  fix (sort_rules rules)

(** Lookup semantics of a rule list (the reference the optimizer must
    preserve): action group of the first matching rule in precedence
    order, [None] on miss. *)
let lookup rules (h : Packet.Headers.t) =
  List.find_map
    (fun r -> if Pattern.matches r.pattern h then Some r.actions else None)
    (sort_rules rules)

(** Convenience: minimize the contents of a {!Table.t} in place,
    returning (before, after) sizes. *)
let minimize_table (table : Table.t) =
  let before = Table.rules table in
  let shrunk =
    minimize
      (List.map
         (fun (r : Table.rule) ->
           { priority = r.priority; pattern = r.pattern; actions = r.actions })
         before)
  in
  Table.clear table;
  List.iter
    (fun r ->
      Table.add table
        (Table.make_rule ~priority:r.priority ~pattern:r.pattern
           ~actions:r.actions ()))
    shrunk;
  (List.length before, List.length shrunk)
