lib/flow/action.ml: Fields Format Headers List Packet
