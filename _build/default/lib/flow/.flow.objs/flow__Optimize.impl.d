lib/flow/optimize.ml: Action Array List Packet Pattern Table
