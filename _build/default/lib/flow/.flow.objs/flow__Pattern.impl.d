lib/flow/pattern.ml: Fields Format Headers Ipv4 Mac Option Packet Printf String
