lib/flow/table.ml: Action Format Headers List Packet Pattern
