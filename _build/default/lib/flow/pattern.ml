(** Wildcard match patterns: the left-hand side of a flow-table rule.
    A pattern constrains a subset of header fields; unconstrained fields
    match anything.  IPv4 source/destination support CIDR prefixes
    (longest-prefix matching emerges from rule priorities). *)

open Packet

type t = {
  in_port : int option;
  eth_src : Mac.t option;
  eth_dst : Mac.t option;
  eth_type : int option;
  vlan : int option;
  ip_proto : int option;
  ip4_src : Ipv4.Prefix.t option;
  ip4_dst : Ipv4.Prefix.t option;
  tp_src : int option;
  tp_dst : int option;
}

(** Matches every packet. *)
let any =
  { in_port = None; eth_src = None; eth_dst = None; eth_type = None;
    vlan = None; ip_proto = None; ip4_src = None; ip4_dst = None;
    tp_src = None; tp_dst = None }

let is_any t = t = any

(** [of_field f v] constrains exactly field [f] to [v] (addresses become
    host prefixes).  @raise Invalid_argument for [Fields.Switch], which is
    a policy-level meta-field that never appears in a table. *)
let of_field (f : Fields.t) v =
  match f with
  | Switch -> invalid_arg "Pattern.of_field: Switch is not matchable"
  | In_port -> { any with in_port = Some v }
  | Eth_src -> { any with eth_src = Some v }
  | Eth_dst -> { any with eth_dst = Some v }
  | Eth_type -> { any with eth_type = Some v }
  | Vlan -> { any with vlan = Some v }
  | Ip_proto -> { any with ip_proto = Some v }
  | Ip4_src -> { any with ip4_src = Some (Ipv4.Prefix.host v) }
  | Ip4_dst -> { any with ip4_dst = Some (Ipv4.Prefix.host v) }
  | Tp_src -> { any with tp_src = Some v }
  | Tp_dst -> { any with tp_dst = Some v }

(** [matches t h] tests headers [h] against the pattern. *)
let matches t (h : Headers.t) =
  let exact field value =
    match field with None -> true | Some v -> v = value
  in
  let prefix field value =
    match field with None -> true | Some p -> Ipv4.Prefix.matches p value
  in
  exact t.in_port h.in_port
  && exact t.eth_src h.eth_src
  && exact t.eth_dst h.eth_dst
  && exact t.eth_type h.eth_type
  && exact t.vlan h.vlan
  && exact t.ip_proto h.ip_proto
  && prefix t.ip4_src h.ip4_src
  && prefix t.ip4_dst h.ip4_dst
  && exact t.tp_src h.tp_src
  && exact t.tp_dst h.tp_dst

exception Contradiction

(* Meet of two per-field constraints; raises if unsatisfiable. *)
let meet_exact a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some x, Some y -> if x = y then Some x else raise Contradiction

let meet_prefix a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some p, Some q ->
    if Ipv4.Prefix.subset ~of_:p q then Some q
    else if Ipv4.Prefix.subset ~of_:q p then Some p
    else raise Contradiction

(** [conj a b] is the pattern matching exactly the packets matched by
    both, or [None] when the conjunction is unsatisfiable. *)
let conj a b =
  match
    { in_port = meet_exact a.in_port b.in_port;
      eth_src = meet_exact a.eth_src b.eth_src;
      eth_dst = meet_exact a.eth_dst b.eth_dst;
      eth_type = meet_exact a.eth_type b.eth_type;
      vlan = meet_exact a.vlan b.vlan;
      ip_proto = meet_exact a.ip_proto b.ip_proto;
      ip4_src = meet_prefix a.ip4_src b.ip4_src;
      ip4_dst = meet_prefix a.ip4_dst b.ip4_dst;
      tp_src = meet_exact a.tp_src b.tp_src;
      tp_dst = meet_exact a.tp_dst b.tp_dst }
  with
  | p -> Some p
  | exception Contradiction -> None

(** [subsumes ~general t] holds when every packet matching [t] also
    matches [general]. *)
let subsumes ~general t =
  let exact g s =
    match (g, s) with
    | None, _ -> true
    | Some _, None -> false
    | Some a, Some b -> a = b
  in
  let prefix g s =
    match (g, s) with
    | None, _ -> true
    | Some _, None -> false
    | Some gp, Some sp -> Ipv4.Prefix.subset ~of_:gp sp
  in
  exact general.in_port t.in_port
  && exact general.eth_src t.eth_src
  && exact general.eth_dst t.eth_dst
  && exact general.eth_type t.eth_type
  && exact general.vlan t.vlan
  && exact general.ip_proto t.ip_proto
  && prefix general.ip4_src t.ip4_src
  && prefix general.ip4_dst t.ip4_dst
  && exact general.tp_src t.tp_src
  && exact general.tp_dst t.tp_dst

(** Two patterns overlap when some packet matches both. *)
let overlap a b = conj a b <> None

(** Number of constrained fields — a rough specificity measure. *)
let weight t =
  let count o = match o with None -> 0 | Some _ -> 1 in
  count t.in_port + count t.eth_src + count t.eth_dst + count t.eth_type
  + count t.vlan + count t.ip_proto + count t.ip4_src + count t.ip4_dst
  + count t.tp_src + count t.tp_dst

let pp fmt t =
  if is_any t then Format.pp_print_string fmt "*"
  else begin
    let parts = ref [] in
    let add name s = parts := Printf.sprintf "%s=%s" name s :: !parts in
    let addi name o = Option.iter (fun v -> add name (string_of_int v)) o in
    addi "tpDst" t.tp_dst;
    addi "tpSrc" t.tp_src;
    Option.iter (fun p -> add "ip4Dst" (Ipv4.Prefix.to_string p)) t.ip4_dst;
    Option.iter (fun p -> add "ip4Src" (Ipv4.Prefix.to_string p)) t.ip4_src;
    addi "ipProto" t.ip_proto;
    addi "vlan" t.vlan;
    Option.iter (fun v -> add "ethType" (Printf.sprintf "0x%04x" v)) t.eth_type;
    Option.iter (fun m -> add "ethDst" (Mac.to_string m)) t.eth_dst;
    Option.iter (fun m -> add "ethSrc" (Mac.to_string m)) t.eth_src;
    addi "port" t.in_port;
    Format.pp_print_string fmt (String.concat "," !parts)
  end

let to_string t = Format.asprintf "%a" pp t
