(* Policy verification: slices and firewalls checked symbolically before
   any packet flows, then cross-checked against the simulated dataplane.

   The scenario: a campus network (random Waxman graph) shared by two
   tenants ("research" and "admin") plus a firewalled public segment.
   We verify:  (1) tenant isolation,  (2) intra-tenant connectivity,
   (3) the firewall holds exactly for the blocked flows,  (4) the
   tables are loop-free — and we demonstrate a catch: a buggy policy
   that leaks between slices is detected with a concrete witness.

   Run with: dune exec examples/policy_verification.exe *)

let pf = Format.printf

let () =
  let prng = Util.Prng.create 7 in
  let topo = Topo.Gen.waxman ~switches:12 ~hosts_per_switch:1 ~prng () in
  pf "campus: %d switches, %d hosts, %d links (Waxman seed 7)@.@."
    (Topo.Topology.switch_count topo) (Topo.Topology.host_count topo)
    (Topo.Topology.link_count topo);

  let research = Zen.Slice.make ~name:"research" ~hosts:[ 1; 2; 3; 4; 5 ] in
  let admin = Zen.Slice.make ~name:"admin" ~hosts:[ 6; 7; 8; 9 ] in
  let slices = [ research; admin ] in

  (* --- sliced network --------------------------------------------- *)
  let net = Zen.create topo in
  let rules = Zen.install_policy net (Zen.Slice.policy topo slices) in
  pf "sliced policy compiled to %d rules@." rules;

  let snap = Zen.snapshot net in
  (match Zen.Slice.verify_all snap slices with
   | [] -> pf "verified: research and admin are isolated@."
   | leaks ->
     List.iter
       (fun (a, b, pairs) ->
         pf "LEAK between %s and %s: %d witness flows@." a b
           (List.length pairs))
       leaks);
  List.iter
    (fun slice ->
      match Zen.Slice.verify_connectivity snap slice with
      | [] -> pf "verified: %s is internally connected@." slice.Zen.Slice.name
      | broken ->
        pf "BROKEN: %s has %d unreachable pairs@." slice.Zen.Slice.name
          (List.length broken))
    slices;
  pf "verified: loop-free: %b@.@." (Verify.Reach.loop_free snap = []);

  (* dataplane agrees *)
  pf "measured: ping h1 -> h5 (same slice): %d replies@."
    (List.length (Zen.ping net ~src:1 ~dst:5));
  pf "measured: ping h1 -> h6 (cross slice): %d replies@.@."
    (List.length (Zen.ping net ~src:1 ~dst:6));

  (* --- a buggy policy is caught ----------------------------------- *)
  (* the "bug": plain routing installed instead of the sliced policy *)
  let buggy = Zen.create topo in
  ignore (Zen.install_policy buggy (Netkat.Builder.ip_routing_policy topo));
  let bsnap = Zen.snapshot buggy in
  (match Zen.Slice.verify_isolation bsnap research admin with
   | [] -> pf "buggy policy passed?! (should not happen)@."
   | (src, dst) :: _ as leaks ->
     pf "bug caught: %d leaking flows; first witness: h%d -> h%d@."
       (List.length leaks) src dst);

  (* --- firewall on top of the sliced network ---------------------- *)
  let entries =
    [ (* no ssh into the admin servers from research hosts *)
      { Netkat.Builder.allow = false;
        src_ip = Some (Packet.Ipv4.of_host_id 1);
        dst_ip = Some (Packet.Ipv4.of_host_id 3);
        proto = Some 6; dst_port = Some 22 } ]
  in
  let fw_net = Zen.create topo in
  ignore (Zen.install_policy fw_net (Netkat.Builder.firewall topo entries));
  let fw_snap = Zen.snapshot fw_net in

  (* port-22 traffic from h1 to h3 must die; port 80 must pass *)
  let cube_port p =
    match
      Verify.Hsa.inter
        (Verify.Reach.flow_cube ~src:1 ~dst:3)
        (Verify.Hsa.eq Packet.Fields.Tp_dst p)
    with
    | Some c ->
      Verify.Hsa.inter c (Verify.Hsa.eq Packet.Fields.Ip_proto 6)
      |> Option.get
    | None -> assert false
  in
  let reaches cube =
    let r = Verify.Reach.walk fw_snap ~src:1 ~cube () in
    List.exists (fun (d : Verify.Reach.delivery) -> d.host = 3) r.deliveries
  in
  pf "@.firewall verification:@.";
  pf "  h1 -> h3 tcp/22 delivered: %b (want false)@." (reaches (cube_port 22));
  pf "  h1 -> h3 tcp/80 delivered: %b (want true)@." (reaches (cube_port 80));

  (* and measured on the dataplane *)
  let send p =
    Dataplane.Network.send_from (Zen.network fw_net) ~host:1
      (Dataplane.Network.make_pkt ~tp_dst:p ~src:1 ~dst:3 ())
  in
  send 22;
  send 80;
  ignore (Zen.run fw_net);
  pf "  measured: h3 received %d packet(s) (want 1: only tcp/80)@."
    (Dataplane.Network.host (Zen.network fw_net) 3).received
