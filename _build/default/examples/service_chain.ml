(* Service chaining with the global compiler: a network-wide program
   with explicit link hops — "h1's web traffic to h3 must pass through
   the scrubber switch s4, getting remarked on the way" — compiled to
   ordinary per-switch flow tables via VLAN program counters, then
   verified (waypoint enforcement) and exercised (packets).

   Also demonstrates a live, per-packet-consistent policy change: the
   chain is rerouted through s2 with a two-phase update under traffic,
   losing nothing.

   Run with: dune exec examples/service_chain.exe *)

let pf = Format.printf

let match_web =
  Netkat.Syntax.conj
    (Netkat.Syntax.test Packet.Fields.Eth_dst (Packet.Mac.of_host_id 3))
    (Netkat.Syntax.test Packet.Fields.Tp_dst 80)

(* remark the traffic class as the "scrubber" action *)
let scrub = Netkat.Syntax.modify Packet.Fields.Ip_proto 99

let chain_via topo via =
  Netkat.Global.path_program topo ~vias:[ 1; via; 3 ]
    ~stage:(Netkat.Syntax.filter match_web)
    ~final:(Netkat.Syntax.seq scrub (Netkat.Syntax.forward 3))

let () =
  (* ring of 4: two ways from s1 to s3 — via s2 or via s4 *)
  let topo = Topo.Gen.ring ~switches:4 ~hosts_per_switch:1 () in
  pf "topology: 4-switch ring, host per switch@.";

  let program = chain_via topo 4 in
  (match Netkat.Global.validate topo program with
   | [] -> pf "global program names only real links@."
   | bad -> pf "BAD LINKS: %d@." (List.length bad));

  let local_policy = Netkat.Global.compile program in
  pf "compiled global program: %d AST nodes of local policy@."
    (Netkat.Syntax.size local_policy);

  let net = Zen.create topo in
  let rules = Zen.install_policy net local_policy in
  pf "installed %d rules@.@." rules;

  (* verify the chain before sending anything *)
  let snap = Zen.snapshot net in
  (match Verify.Reach.waypoint snap ~src:1 ~dst:3 ~waypoint:4 with
   | `Enforced -> pf "verified: all h1 -> h3 web traffic passes s4@."
   | `No_traffic -> pf "verified: NO TRAFFIC?!@."
   | `Violated w -> pf "VIOLATED: %d paths skip s4@." (List.length w));

  (* exercise it *)
  let seen = ref None in
  (Dataplane.Network.host (Zen.network net) 3).on_receive <-
    Some (fun pkt -> seen := Some pkt.hdr);
  Dataplane.Network.send_from (Zen.network net) ~host:1
    (Dataplane.Network.make_pkt ~tp_dst:80 ~src:1 ~dst:3 ());
  (* port-22 traffic is outside the chain: must die *)
  Dataplane.Network.send_from (Zen.network net) ~host:1
    (Dataplane.Network.make_pkt ~tp_dst:22 ~src:1 ~dst:3 ());
  ignore (Zen.run net);
  (match !seen with
   | Some h ->
     pf "measured: web packet delivered, scrubbed (proto=%d), untagged (vlan=%s)@."
       h.ip_proto
       (if h.vlan = Packet.Fields.vlan_none then "none" else string_of_int h.vlan)
   | None -> pf "measured: NOTHING DELIVERED?!@.");
  pf "measured: h3 received %d packet(s) total (port-22 probe dropped)@.@."
    (Dataplane.Network.host (Zen.network net) 3).received;

  (* ---- live re-chaining with a two-phase consistent update ---- *)
  pf "re-chaining through s2 under 2000 pps of live traffic...@.";
  let net2 = Zen.create (Topo.Gen.ring ~switches:4 ~hosts_per_switch:1 ()) in
  let topo2 = Zen.topology net2 in
  let rt = Zen.with_controller net2 [] in
  let ctx = Controller.Runtime.ctx rt in
  let updater = Controller.Update.create ~drain:0.3 () in
  Controller.Update.global_install updater ctx
    (Netkat.Global.compile ~base_tag:3000 (chain_via topo2 4));
  ignore (Zen.run ~until:(Zen.now net2 +. 0.2) net2);
  let sent =
    Dataplane.Traffic.cbr (Zen.network net2)
      { (Dataplane.Traffic.default_flow ~src:1 ~dst:3) with
        rate_pps = 2000.0; start = Zen.now net2; stop = Zen.now net2 +. 2.0 }
  in
  Dataplane.Sim.schedule
    (Dataplane.Network.sim (Zen.network net2))
    ~delay:1.0
    (fun () ->
      Controller.Update.global_two_phase updater ctx
        (Netkat.Global.compile ~base_tag:4000 (chain_via topo2 2)));
  ignore (Zen.run ~until:(Zen.now net2 +. 3.0) net2);
  let received = (Dataplane.Network.host (Zen.network net2) 3).received in
  pf "sent %d, delivered %d, lost %d during the consistent re-chain@." !sent
    received (!sent - received);
  match
    Verify.Reach.waypoint (Zen.snapshot net2) ~src:1 ~dst:3 ~waypoint:2
  with
  | `Enforced -> pf "verified: chain now passes s2@."
  | `No_traffic -> pf "verified: no traffic?!@."
  | `Violated _ -> pf "verified: VIOLATION@."