(* Inter-datacenter WAN traffic engineering on the B4-shaped topology:
   a gravity demand matrix swept from light to heavy load, allocated by
   three schemes — capacity-oblivious ECMP, single-path max-min fair,
   and B4-style greedy k-path with priorities — and compared on carried
   traffic, utilization and fairness.

   Run with: dune exec examples/wan_te.exe *)

let pf = Format.printf

let () =
  let topo = Topo.Gen.b4 ~hosts_per_switch:0 () in
  pf "B4-like WAN: %d sites, %d links, 10 Gb/s each@.@."
    (Topo.Topology.switch_count topo) (Topo.Topology.link_count topo);

  let prng = Util.Prng.create 4242 in
  let base =
    Te.Demand.gravity ~prng ~switches:(Topo.Topology.switch_ids topo)
      ~total_rate:100e9 ~priorities:3 ()
  in

  pf "%-8s %-9s | %-22s | %-22s | %-22s@." "load" "offered"
    "ECMP (carried/util/J)" "MaxMin (single path)" "Greedy k-path (B4)";
  pf "%s@." (String.make 88 '-');
  List.iter
    (fun scale ->
      let demands = Te.Demand.scale scale base in
      let offered = Te.Demand.total demands /. 1e9 in
      let cell (a : Te.Alloc.t) =
        let max_u, _ = Te.Alloc.utilization a in
        Printf.sprintf "%6.1fG %4.0f%% %.2f"
          (Te.Alloc.carried a /. 1e9)
          (max_u *. 100.0) (Te.Alloc.fairness a)
      in
      pf "%-8.2f %7.1fG | %-22s | %-22s | %-22s@." scale offered
        (cell (Te.Ecmp.solve topo demands))
        (cell (Te.Maxmin.solve topo demands))
        (cell (Te.Greedy_kpath.solve topo demands)))
    [ 0.25; 0.5; 1.0; 1.5; 2.0; 3.0; 4.0 ];

  (* dig into one heavy-load allocation *)
  let demands = Te.Demand.scale 3.0 base in
  let g = Te.Greedy_kpath.solve topo demands in
  let e = Te.Ecmp.solve topo demands in
  pf "@.at 3x load, greedy k-path carries %.0f%% more than ECMP@."
    ((Te.Alloc.carried g /. Te.Alloc.carried e -. 1.0) *. 100.0);

  let starved = Te.Alloc.starved g in
  pf "greedy: %d/%d demands not fully satisfied@." (List.length starved)
    (List.length g.entries);
  (* priority classes: satisfaction by class *)
  List.iter
    (fun prio ->
      let of_class =
        List.filter (fun (en : Te.Alloc.entry) -> en.demand.priority = prio)
          g.entries
      in
      let sat = List.map Te.Alloc.satisfaction of_class in
      pf "  priority %d: mean satisfaction %.2f (n=%d)@." prio
        (Util.Stats.mean sat) (List.length of_class))
    [ 0; 1; 2 ];

  (* the multipath spill: how many demands use >1 path under greedy *)
  let multi =
    List.length
      (List.filter
         (fun (en : Te.Alloc.entry) ->
           List.length (List.filter (fun (s : Te.Alloc.path_share) -> s.rate > 1e3) en.shares) > 1)
         g.entries)
  in
  pf "@.%d/%d demands split across multiple paths under greedy@." multi
    (List.length g.entries)
