(* Quickstart: the whole architecture in ~40 effective lines.

   1. build a topology          (three switches in a line, two hosts each)
   2. write a declarative policy (shortest-path routing, synthesized)
   3. compile + install it      (FDD compiler -> per-switch flow tables)
   4. verify it                 (symbolic reachability, before any packet)
   5. simulate it               (real pings through the dataplane)

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. topology *)
  let topo = Topo.Gen.linear ~switches:3 ~hosts_per_switch:2 () in
  Format.printf "%a@." Topo.Topology.pp topo;

  (* 2. policy: destination-based shortest-path forwarding *)
  let policy = Netkat.Builder.routing_policy topo in
  Format.printf "policy size: %d AST nodes@." (Netkat.Syntax.size policy);

  (* 3. compile and install *)
  let net = Zen.create topo in
  let rules = Zen.install_policy net policy in
  Format.printf "installed %d rules across %d switches@.@." rules
    (Topo.Topology.switch_count topo);

  (* peek at one switch's table *)
  Format.printf "switch 2 flow table:@.%a" Flow.Table.pp
    (Dataplane.Network.switch (Zen.network net) 2).table;
  Format.printf "@.";

  (* 4. verify before running any traffic *)
  let snap = Zen.snapshot net in
  Format.printf "verified: h1 can reach h6: %b@."
    (Verify.Reach.reachable snap ~src:1 ~dst:6);
  Format.printf "verified: no forwarding loops: %b@.@."
    (Verify.Reach.loop_free snap = []);

  (* 5. measure: ping across the network *)
  let rtts = Zen.ping net ~src:1 ~dst:6 in
  List.iteri
    (fun i rtt -> Format.printf "ping h1 -> h6 seq=%d rtt=%.1f us@." i (rtt *. 1e6))
    rtts;
  Format.printf "@.dataplane stats: %a@." Dataplane.Network.pp_stats
    (Dataplane.Network.stats (Zen.network net))
