examples/datacenter_fabric.ml: Controller Dataplane Format List Packet Topo Util Verify Zen
