examples/policy_verification.mli:
