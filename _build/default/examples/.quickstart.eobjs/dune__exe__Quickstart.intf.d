examples/quickstart.mli:
