examples/wan_te.mli:
