examples/policy_verification.ml: Dataplane Format List Netkat Option Packet Topo Util Verify Zen
