examples/datacenter_fabric.mli:
