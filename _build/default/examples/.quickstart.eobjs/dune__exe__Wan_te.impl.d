examples/wan_te.ml: Format List Printf String Te Topo Util
