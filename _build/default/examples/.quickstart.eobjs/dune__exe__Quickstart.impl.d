examples/quickstart.ml: Dataplane Flow Format List Netkat Topo Verify Zen
