examples/service_chain.ml: Controller Dataplane Format List Netkat Packet Topo Verify Zen
