(* Datacenter fabric: a k=4 fat-tree run by the proactive routing app
   over the (wire-encoded) control channel, with a load balancer fronting
   three backend servers, background traffic, live monitoring, and a
   core-link failure that the controller routes around.

   Run with: dune exec examples/datacenter_fabric.exe *)

let pf = Format.printf

let () =
  let topo, info = Topo.Gen.fat_tree ~k:4 () in
  pf "fat-tree k=4: %d core / %d aggregation / %d edge switches, %d hosts@."
    (List.length info.core) (List.length info.aggregation)
    (List.length info.edge) (List.length info.host_ids);

  let net = Zen.create topo in

  (* controller apps: proactive IP routing + LB + monitoring *)
  let routing = Controller.Routing.create ~use_ip:true () in
  let vip = Packet.Ipv4.of_string "10.99.0.1" in
  let backends = [ 2; 3; 4 ] in
  let lb = Controller.Lb.create ~vip ~backends () in
  let monitor = Controller.Monitor.create ~period:0.25 () in
  let _rt =
    Zen.with_controller net
      [ Controller.Routing.app routing; Controller.Lb.app lb;
        Controller.Monitor.app monitor ]
  in
  pf "routing app pushed %d rules (%d per switch on average)@."
    (Controller.Routing.installs routing)
    (Controller.Routing.installs routing / Topo.Topology.switch_count topo);

  (* cross-pod background traffic *)
  let prng = Util.Prng.create 2013 in
  let _senders =
    Dataplane.Traffic.random_pairs (Zen.network net) ~prng ~flows:24
      ~rate_pps:200.0 ~pkt_size:1000 ~stop:2.0
  in

  (* clients in the last pod hammer the VIP *)
  let clients =
    List.filteri (fun i _ -> i >= 12) info.host_ids |> fun l ->
    List.filteri (fun i _ -> i < 4) l
  in
  List.iteri
    (fun i client ->
      for flow = 0 to 9 do
        let pkt =
          Dataplane.Network.make_pkt ~tp_src:(30000 + (i * 100) + flow)
            ~src:client ~dst:client ()
        in
        let pkt =
          { pkt with
            hdr = { pkt.hdr with ip4_dst = vip; eth_dst = 0x02deadbeef01 } }
        in
        Dataplane.Sim.schedule
          (Dataplane.Network.sim (Zen.network net))
          ~delay:(0.05 +. (0.01 *. float_of_int ((i * 10) + flow)))
          (fun () -> Dataplane.Network.send_from (Zen.network net) ~host:client pkt)
      done)
    clients;

  ignore (Zen.run ~until:1.0 net);
  pf "@.t=1.0s  VIP flows balanced: %d@." (Controller.Lb.flows lb);
  List.iter
    (fun (b, n) -> pf "  backend h%d: %d flows@." b n)
    (Controller.Lb.distribution lb);

  (* fail a core->aggregation link under traffic *)
  let core = List.hd info.core in
  pf "@.t=1.0s  failing core switch s%d port 1...@." core;
  Dataplane.Network.fail_link (Zen.network net)
    (Topo.Topology.Node.Switch core) 1;
  ignore (Zen.run ~until:2.5 net);
  pf "controller recomputed %d time(s); last churn %d rules@."
    (Controller.Routing.reinstalls routing - 1)
    (Controller.Routing.last_churn routing);

  (* verified connectivity after failover *)
  let snap = Zen.snapshot net in
  let h1 = List.hd info.host_ids
  and h_last = List.hd (List.rev info.host_ids) in
  pf "verified reachability h%d -> h%d after failover: %b@." h1 h_last
    (Verify.Reach.reachable snap ~src:h1 ~dst:h_last);
  pf "verified loop-free: %b@." (Verify.Reach.loop_free snap = []);

  (* measured connectivity *)
  let rtts = Zen.ping net ~src:h1 ~dst:h_last in
  pf "measured: %d/3 pings answered (median rtt %.1f us)@."
    (List.length rtts)
    (match rtts with
     | [] -> nan
     | _ -> Util.Stats.percentile rtts 50.0 *. 1e6);

  (* hottest links as seen by the monitoring app *)
  pf "@.hottest links (monitor app):@.";
  Controller.Monitor.hot_links monitor (Zen.network net)
  |> List.filteri (fun i _ -> i < 5)
  |> List.iter (fun (sw, port, u) ->
    pf "  s%d port %d: %.2f%% utilized@." sw port (u *. 100.0));

  pf "@.final stats: %a@." Dataplane.Network.pp_stats
    (Dataplane.Network.stats (Zen.network net))
