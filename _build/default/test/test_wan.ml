(* Tests for Zen.Wan: realizing TE allocations as forwarding state and
   validating them with packet-level traffic. *)

module Node = Topo.Topology.Node

(* a small WAN with scaled-down capacities so a 2-second simulation at
   packet granularity covers the rates: 1 Mb/s links *)
let small_wan () =
  let topo = Topo.Topology.create () in
  let cap = 1e6 and delay = 1e-3 in
  (* two disjoint 2-hop paths 1 -> 4 (via 2 and via 3) *)
  Topo.Topology.add_link topo (Node.Switch 1, 1) (Node.Switch 2, 1) ~capacity:cap ~delay;
  Topo.Topology.add_link topo (Node.Switch 2, 2) (Node.Switch 4, 1) ~capacity:cap ~delay;
  Topo.Topology.add_link topo (Node.Switch 1, 2) (Node.Switch 3, 1) ~capacity:cap ~delay:(2.0 *. delay);
  Topo.Topology.add_link topo (Node.Switch 3, 2) (Node.Switch 4, 2) ~capacity:cap ~delay:(2.0 *. delay);
  (* hosts (access links are fat so they never bottleneck) *)
  List.iter
    (fun sw ->
      Topo.Topology.add_link topo (Node.Switch sw, 5) (Node.Host sw, 1)
        ~capacity:1e8 ~delay:1e-5)
    [ 1; 2; 3; 4 ];
  topo

let test_apportion () =
  Alcotest.(check (list int)) "even" [ 4; 4 ]
    (Zen.Wan.apportion ~total:8 [ 1.0; 1.0 ]);
  Alcotest.(check (list int)) "weighted" [ 6; 2 ]
    (Zen.Wan.apportion ~total:8 [ 3.0; 1.0 ]);
  Alcotest.(check (list int)) "rounding" [ 3; 3; 2 ]
    (Zen.Wan.apportion ~total:8 [ 1.0; 1.0; 0.9 ]);
  Alcotest.(check int) "conserves total" 7
    (List.fold_left ( + ) 0 (Zen.Wan.apportion ~total:7 [ 0.2; 0.5; 0.1 ]));
  Alcotest.(check (list int)) "zero weights" [ 0; 0 ]
    (Zen.Wan.apportion ~total:5 [ 0.0; 0.0 ])

let test_subflows_cover_allocation () =
  let topo = small_wan () in
  let demands = [ Te.Demand.make ~src:1 ~dst:4 ~rate:1.6e6 () ] in
  let alloc = Te.Greedy_kpath.solve topo demands in
  let flows = Zen.Wan.subflows_of_alloc topo alloc ~subflows:8 in
  Alcotest.(check int) "eight subflows" 8 (List.length flows);
  let total = List.fold_left (fun a (f : Zen.Wan.subflow) -> a +. f.rate) 0.0 flows in
  Alcotest.(check bool) "rates sum to the allocation" true
    (abs_float (total -. Te.Alloc.carried alloc) < 1.0);
  (* distinct tp_src per subflow *)
  let ports = List.map (fun (f : Zen.Wan.subflow) -> f.tp_src) flows in
  Alcotest.(check int) "distinct ports" 8
    (List.length (List.sort_uniq compare ports))

let test_validate_multipath_demand () =
  (* a 1.6 Mb/s demand over two 1 Mb/s paths: single-path TE can deliver
     only 1 Mb/s; greedy k-path delivers ~1.6 — and the packet-level
     simulation must confirm both *)
  let topo = small_wan () in
  let demands = [ Te.Demand.make ~src:1 ~dst:4 ~rate:1.6e6 () ] in
  let greedy = Te.Greedy_kpath.solve topo demands in
  Alcotest.(check bool) "greedy allocates > one path" true
    (Te.Alloc.carried greedy > 1.05e6);
  let m = Zen.Wan.validate ~subflows:8 ~pkt_size:500 ~duration:2.0 topo greedy in
  let acc = Zen.Wan.accuracy m in
  Alcotest.(check bool)
    (Printf.sprintf "simulated matches allocated (accuracy %.2f)" acc)
    true
    (acc > 0.85 && acc < 1.1);
  let maxmin = Te.Maxmin.solve topo demands in
  let m2 = Zen.Wan.validate ~subflows:8 ~pkt_size:500 ~duration:2.0 topo maxmin in
  (match m2 with
   | [ single ] ->
     Alcotest.(check bool) "single path capped at link rate" true
       (single.measured < 1.1e6)
   | _ -> Alcotest.fail "one demand expected");
  (* and the multipath realization really beats the single-path one *)
  match m with
  | [ multi ] ->
    Alcotest.(check bool) "multipath measured > single measured" true
      (multi.measured > 1.3e6)
  | _ -> Alcotest.fail "one demand expected"

let test_validate_respects_contention () =
  (* two demands share one path under maxmin: each gets ~half, and the
     dataplane shows it *)
  let topo = small_wan () in
  let demands =
    [ Te.Demand.make ~src:1 ~dst:2 ~rate:2e6 ();
      Te.Demand.make ~src:1 ~dst:2 ~rate:2e6 ~priority:1 () ]
  in
  let alloc = Te.Maxmin.solve topo demands in
  let m = Zen.Wan.validate ~subflows:4 ~pkt_size:500 ~duration:2.0 topo alloc in
  Alcotest.(check int) "two measurements" 2 (List.length m);
  List.iter
    (fun (r : Zen.Wan.measurement) ->
      Alcotest.(check bool)
        (Printf.sprintf "allocated %.0f measured %.0f" r.allocated r.measured)
        true
        (abs_float (r.measured -. r.allocated) < 0.2 *. r.allocated))
    m

let test_validate_b4_smoke () =
  (* the full B4 shape at miniature capacities *)
  let topo = Topo.Gen.b4 ~capacity:1e6 () in
  let prng = Util.Prng.create 12 in
  let demands =
    Te.Demand.gravity ~prng
      ~switches:(Topo.Topology.switch_ids topo)
      ~total_rate:6e6 ()
  in
  let alloc = Te.Greedy_kpath.solve topo demands in
  let m = Zen.Wan.validate ~subflows:4 ~pkt_size:250 ~duration:2.0 topo alloc in
  let acc = Zen.Wan.accuracy m in
  (* per-subflow rates here are a handful of packets per second, so CBR
     quantization dominates: allow ~15% *)
  Alcotest.(check bool)
    (Printf.sprintf "aggregate accuracy %.2f" acc)
    true
    (acc > 0.85 && acc < 1.15)

let suites =
  [ ( "zen.wan",
      [ Alcotest.test_case "apportionment" `Quick test_apportion;
        Alcotest.test_case "subflows cover allocation" `Quick
          test_subflows_cover_allocation;
        Alcotest.test_case "multipath validated in dataplane" `Slow
          test_validate_multipath_demand;
        Alcotest.test_case "contention validated" `Slow
          test_validate_respects_contention;
        Alcotest.test_case "B4 smoke" `Slow test_validate_b4_smoke ] ) ]
