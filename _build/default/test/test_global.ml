(* Tests for the global compiler: programs with explicit link hops
   compiled to local policies via VLAN program counters, validated
   end-to-end in the simulated dataplane. *)

open Netkat
open Packet

(* linear:3 port map (Gen conventions):
   s1: 1->s2 2->h1 | s2: 1->s1 2->s3 3->h2 | s3: 1->s2 2->h3 *)

let match_h3 = Syntax.filter (Syntax.test Fields.Eth_dst (Mac.of_host_id 3))

let route_1_to_3 =
  Global.big_gseq
    [ Global.local
        (Syntax.big_seq [ Syntax.at ~switch:1; match_h3; Syntax.forward 1 ]);
      Global.glink ~from:(1, 1) ~to_:(2, 1);
      Global.local (Syntax.big_seq [ match_h3; Syntax.forward 2 ]);
      Global.glink ~from:(2, 2) ~to_:(3, 1);
      Global.local (Syntax.big_seq [ match_h3; Syntax.forward 2 ]) ]

let test_normalize_traces () =
  let traces = Global.normalize route_1_to_3 in
  Alcotest.(check int) "one trace" 1 (List.length traces);
  Alcotest.(check int) "two link hops" 2
    (List.length (List.hd traces).Global.rest);
  (* unions multiply traces *)
  let two = Global.gunion route_1_to_3 route_1_to_3 in
  Alcotest.(check int) "union doubles" 2 (List.length (Global.normalize two))

let test_links_of_and_validate () =
  let topo = Topo.Gen.linear ~switches:3 ~hosts_per_switch:1 () in
  Alcotest.(check int) "two links named" 2
    (List.length (Global.links_of route_1_to_3));
  Alcotest.(check int) "all valid" 0
    (List.length (Global.validate topo route_1_to_3));
  let bogus =
    Global.gseq route_1_to_3 (Global.glink ~from:(3, 9) ~to_:(1, 9))
  in
  Alcotest.(check int) "bogus link flagged" 1
    (List.length (Global.validate topo bogus))

let test_unsupported () =
  Alcotest.(check bool) "star over links" true
    (match Global.compile (Global.GStar (Global.glink ~from:(1, 1) ~to_:(2, 1))) with
     | exception Global.Unsupported _ -> true
     | _ -> false);
  Alcotest.(check bool) "vlan mod in stage" true
    (match Global.compile (Global.local (Syntax.modify Fields.Vlan 5)) with
     | exception Global.Unsupported _ -> true
     | _ -> false);
  Alcotest.(check bool) "switch mod in stage" true
    (match Global.compile (Global.local (Syntax.modify Fields.Switch 5)) with
     | exception Global.Unsupported _ -> true
     | _ -> false)

let test_end_to_end_source_route () =
  let topo = Topo.Gen.linear ~switches:3 ~hosts_per_switch:1 () in
  let net = Zen.create topo in
  ignore (Zen.install_policy net (Global.compile route_1_to_3));
  let seen = ref None in
  (Dataplane.Network.host (Zen.network net) 3).on_receive <-
    Some (fun pkt -> seen := Some pkt.hdr);
  Dataplane.Network.send_from (Zen.network net) ~host:1
    (Dataplane.Network.make_pkt ~src:1 ~dst:3 ());
  ignore (Zen.run net);
  (match !seen with
   | None -> Alcotest.fail "not delivered"
   | Some h ->
     Alcotest.(check int) "tag popped" Fields.vlan_none h.vlan);
  (* traffic for other destinations is dropped, not misrouted *)
  Dataplane.Network.send_from (Zen.network net) ~host:1
    (Dataplane.Network.make_pkt ~src:1 ~dst:2 ());
  ignore (Zen.run net);
  Alcotest.(check int) "h2 got nothing" 0
    (Dataplane.Network.host (Zen.network net) 2).received

let test_union_duplicates () =
  (* NetKAT union semantics: a union of two routes delivers two copies *)
  let topo = Topo.Gen.ring ~switches:4 ~hosts_per_switch:1 () in
  (* ring ports: s1: 1->s2 2->s4 3->h1; s2: 1->s1 2->s3 3->h2;
     s3: 1->s2 2->s4 3->h3; s4: 1->s3 2->s1 3->h4 *)
  let stage fwd = Syntax.seq match_h3 (Syntax.forward fwd) in
  let via_s2 =
    Global.big_gseq
      [ Global.local (Syntax.seq (Syntax.at ~switch:1) (stage 1));
        Global.glink ~from:(1, 1) ~to_:(2, 1);
        Global.local (stage 2);
        Global.glink ~from:(2, 2) ~to_:(3, 1);
        Global.local (stage 3) ]
  in
  let via_s4 =
    Global.big_gseq
      [ Global.local (Syntax.seq (Syntax.at ~switch:1) (stage 2));
        Global.glink ~from:(1, 2) ~to_:(4, 2);
        Global.local (stage 1);
        Global.glink ~from:(4, 1) ~to_:(3, 2);
        Global.local (stage 3) ]
  in
  let net = Zen.create topo in
  ignore (Zen.install_policy net (Global.compile (Global.gunion via_s2 via_s4)));
  Dataplane.Network.send_from (Zen.network net) ~host:1
    (Dataplane.Network.make_pkt ~src:1 ~dst:3 ());
  ignore (Zen.run net);
  Alcotest.(check int) "two copies via both paths" 2
    (Dataplane.Network.host (Zen.network net) 3).received

let test_path_program_waypoint () =
  (* ring: force h1 -> h3 the long way round (via s4) even though the
     via-s2 path is equally short; check with the dataplane AND the
     symbolic waypoint verifier *)
  let topo = Topo.Gen.ring ~switches:4 ~hosts_per_switch:1 () in
  let g =
    Global.path_program topo ~vias:[ 1; 4; 3 ] ~stage:match_h3
      ~final:(Syntax.forward 3)
  in
  let net = Zen.create topo in
  ignore (Zen.install_policy net (Global.compile g));
  Dataplane.Network.send_from (Zen.network net) ~host:1
    (Dataplane.Network.make_pkt ~src:1 ~dst:3 ());
  ignore (Zen.run net);
  Alcotest.(check int) "delivered" 1
    (Dataplane.Network.host (Zen.network net) 3).received;
  let snap = Zen.snapshot net in
  (match Verify.Reach.waypoint snap ~src:1 ~dst:3 ~waypoint:4 with
   | `Enforced -> ()
   | `No_traffic -> Alcotest.fail "verifier sees no traffic"
   | `Violated _ -> Alcotest.fail "waypoint s4 not enforced");
  match Verify.Reach.waypoint snap ~src:1 ~dst:3 ~waypoint:2 with
  | `Violated _ -> ()
  | `Enforced -> Alcotest.fail "s2 must not be on the path"
  | `No_traffic -> Alcotest.fail "verifier sees no traffic"

let test_service_chain_stage_applied () =
  (* the stage rewrites tp_dst at every via; two vias = the rewrite is
     observed (last writer wins, value proves stages executed) *)
  let topo = Topo.Gen.linear ~switches:3 ~hosts_per_switch:1 () in
  let chain =
    Global.big_gseq
      [ Global.local
          (Syntax.big_seq
             [ Syntax.at ~switch:1; match_h3;
               Syntax.modify Fields.Tp_dst 1111; Syntax.forward 1 ]);
        Global.glink ~from:(1, 1) ~to_:(2, 1);
        Global.local
          (Syntax.big_seq
             [ Syntax.modify Fields.Tp_dst 2222; Syntax.forward 2 ]);
        Global.glink ~from:(2, 2) ~to_:(3, 1);
        Global.local (Syntax.forward 2) ]
  in
  let net = Zen.create topo in
  ignore (Zen.install_policy net (Global.compile chain));
  let seen = ref None in
  (Dataplane.Network.host (Zen.network net) 3).on_receive <-
    Some (fun pkt -> seen := Some pkt.hdr);
  Dataplane.Network.send_from (Zen.network net) ~host:1
    (Dataplane.Network.make_pkt ~tp_dst:80 ~src:1 ~dst:3 ());
  ignore (Zen.run net);
  match !seen with
  | None -> Alcotest.fail "not delivered"
  | Some h -> Alcotest.(check int) "both stages ran in order" 2222 h.tp_dst

let test_global_two_phase_no_loss () =
  (* re-chain a live flow between the two sides of a ring with the
     global-program two-phase installer: zero loss, waypoint flips *)
  let topo = Topo.Gen.ring ~switches:4 ~hosts_per_switch:1 () in
  let chain via =
    Global.path_program topo ~vias:[ 1; via; 3 ] ~stage:match_h3
      ~final:(Syntax.forward 3)
  in
  let net = Zen.create topo in
  let rt = Zen.with_controller net [] in
  let ctx = Controller.Runtime.ctx rt in
  let updater = Controller.Update.create ~drain:0.2 () in
  Controller.Update.global_install updater ctx
    (Global.compile ~base_tag:3000 (chain 4));
  ignore (Zen.run ~until:(Zen.now net +. 0.2) net);
  let sent =
    Dataplane.Traffic.cbr (Zen.network net)
      { (Dataplane.Traffic.default_flow ~src:1 ~dst:3) with
        rate_pps = 1000.0; start = Zen.now net; stop = Zen.now net +. 1.5 }
  in
  Dataplane.Sim.schedule (Dataplane.Network.sim (Zen.network net)) ~delay:0.7
    (fun () ->
      Controller.Update.global_two_phase updater ctx
        (Global.compile ~base_tag:4000 (chain 2)));
  ignore (Zen.run ~until:(Zen.now net +. 3.0) net);
  Alcotest.(check int) "zero loss" !sent
    (Dataplane.Network.host (Zen.network net) 3).received;
  match Verify.Reach.waypoint (Zen.snapshot net) ~src:1 ~dst:3 ~waypoint:2 with
  | `Enforced -> ()
  | `No_traffic | `Violated _ -> Alcotest.fail "chain did not flip to s2"

let test_desugar_agrees_on_teleport_semantics () =
  (* the desugared policy, interpreted denotationally, produces the same
     final located packet the simulation delivers *)
  let h0 =
    Headers.tcp ~switch:1 ~in_port:2 ~src_host:1 ~dst_host:3 ~tp_src:9
      ~tp_dst:80
  in
  let out = Semantics.eval (Global.desugar route_1_to_3) h0 in
  match Semantics.HSet.elements out with
  | [ h ] ->
    Alcotest.(check int) "ends at s3" 3 h.switch;
    Alcotest.(check int) "out the host port" 2 h.in_port
  | _ -> Alcotest.fail "expected exactly one output packet"

let suites =
  [ ( "netkat.global",
      [ Alcotest.test_case "normalize traces" `Quick test_normalize_traces;
        Alcotest.test_case "links_of / validate" `Quick
          test_links_of_and_validate;
        Alcotest.test_case "unsupported fragments" `Quick test_unsupported;
        Alcotest.test_case "source route end to end" `Quick
          test_end_to_end_source_route;
        Alcotest.test_case "union delivers both copies" `Quick
          test_union_duplicates;
        Alcotest.test_case "path program waypoint" `Quick
          test_path_program_waypoint;
        Alcotest.test_case "service chain stages" `Quick
          test_service_chain_stage_applied;
        Alcotest.test_case "global two-phase: zero loss" `Quick
          test_global_two_phase_no_loss;
        Alcotest.test_case "desugared teleport semantics" `Quick
          test_desugar_agrees_on_teleport_semantics ] ) ]
