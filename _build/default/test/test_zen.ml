(* End-to-end integration tests through the public Zen facade: compile,
   install, simulate, verify — the four pillars together. *)

let test_install_and_ping () =
  let topo = Topo.Gen.linear ~switches:3 ~hosts_per_switch:2 () in
  let net = Zen.create topo in
  let rules = Zen.install_policy net (Netkat.Builder.routing_policy topo) in
  Alcotest.(check bool) "rules installed" true (rules > 0);
  let rtts = Zen.ping net ~src:1 ~dst:6 in
  Alcotest.(check int) "three replies" 3 (List.length rtts);
  List.iter
    (fun r -> Alcotest.(check bool) "sane rtt" true (r > 0.0 && r < 0.01))
    rtts

let test_install_policy_string () =
  let topo = Topo.Gen.linear ~switches:1 ~hosts_per_switch:2 () in
  let net = Zen.create topo in
  (* forward everything for h2's MAC out port 2 and vice versa *)
  let n =
    Zen.install_policy_string net
      "filter (switch = 1 and ethDst = 02:00:00:00:00:02); port := 2 + \
       filter (switch = 1 and ethDst = 02:00:00:00:00:01); port := 1"
  in
  Alcotest.(check bool) "rules" true (n > 0);
  let rtts = Zen.ping net ~src:1 ~dst:2 in
  Alcotest.(check int) "pings work" 3 (List.length rtts)

let test_verification_matches_dataplane () =
  let topo = Topo.Gen.linear ~switches:2 ~hosts_per_switch:1 () in
  let net = Zen.create topo in
  ignore (Zen.install_policy net (Netkat.Builder.routing_policy topo));
  Alcotest.(check bool) "verifier says reachable" true
    (Zen.reachable net ~src:1 ~dst:2);
  let rtts = Zen.ping net ~src:1 ~dst:2 in
  Alcotest.(check bool) "dataplane agrees" true (rtts <> [])

let test_empty_network_unreachable () =
  let topo = Topo.Gen.linear ~switches:2 ~hosts_per_switch:1 () in
  let net = Zen.create topo in
  Alcotest.(check bool) "no rules, no reachability" false
    (Zen.reachable net ~src:1 ~dst:2);
  Alcotest.(check (list (float 1.0))) "no pings" [] (Zen.ping net ~src:1 ~dst:2)

let test_slices_end_to_end () =
  let topo = Topo.Gen.linear ~switches:3 ~hosts_per_switch:2 () in
  let net = Zen.create topo in
  let red = Zen.Slice.make ~name:"red" ~hosts:[ 1; 3; 5 ] in
  let blue = Zen.Slice.make ~name:"blue" ~hosts:[ 2; 4; 6 ] in
  ignore (Zen.install_policy net (Zen.Slice.policy topo [ red; blue ]));
  let snap = Zen.snapshot net in
  (* verified isolated, verified internally connected *)
  Alcotest.(check (list (triple string string (list (pair int int)))))
    "no violations" []
    (Zen.Slice.verify_all snap [ red; blue ]);
  Alcotest.(check (list (pair int int))) "red connected" []
    (Zen.Slice.verify_connectivity snap red);
  (* and the dataplane agrees: intra-slice ping works, cross-slice fails *)
  Alcotest.(check bool) "intra-slice ping" true
    (Zen.ping net ~src:1 ~dst:5 <> []);
  Alcotest.(check (list (float 1.0))) "cross-slice silent" []
    (Zen.ping net ~src:1 ~dst:2)

let test_slice_validation () =
  Alcotest.(check bool) "empty slice rejected" true
    (match Zen.Slice.make ~name:"x" ~hosts:[] with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_controller_mode_and_failover_timing () =
  (* fat-tree k=4 has redundant core links: failover must restore
     connectivity and the verifier must agree before/after *)
  let topo, info = Topo.Gen.fat_tree ~k:4 () in
  let net = Zen.create topo in
  let routing = Controller.Routing.create () in
  let _rt = Zen.with_controller net [ Controller.Routing.app routing ] in
  (* hosts in different pods so the path crosses the core *)
  let h1 = List.nth info.host_ids 0
  and h2 = List.hd (List.rev info.host_ids) in
  Alcotest.(check bool) "verified reachable" true (Zen.reachable net ~src:h1 ~dst:h2);
  (* kill one core-agg link *)
  let core = List.hd info.core in
  Dataplane.Network.fail_link (Zen.network net)
    (Topo.Topology.Node.Switch core) 1;
  ignore (Zen.run ~until:(Zen.now net +. 1.0) net);
  Alcotest.(check bool) "recomputed" true (Controller.Routing.reinstalls routing >= 2);
  Alcotest.(check bool) "still reachable (verified)" true
    (Zen.reachable net ~src:h1 ~dst:h2);
  Alcotest.(check bool) "still reachable (measured)" true
    (Zen.ping net ~src:h1 ~dst:h2 <> [])

let test_firewall_policy_and_verify () =
  let topo = Topo.Gen.linear ~switches:2 ~hosts_per_switch:2 () in
  let net = Zen.create topo in
  let entries =
    [ { Netkat.Builder.allow = false;
        src_ip = Some (Packet.Ipv4.of_host_id 1);
        dst_ip = Some (Packet.Ipv4.of_host_id 4);
        proto = None; dst_port = None } ]
  in
  ignore (Zen.install_policy net (Netkat.Builder.firewall topo entries));
  let snap = Zen.snapshot net in
  Alcotest.(check bool) "1->4 blocked" false (Verify.Reach.reachable snap ~src:1 ~dst:4);
  Alcotest.(check bool) "1->3 open" true (Verify.Reach.reachable snap ~src:1 ~dst:3);
  Alcotest.(check bool) "4->1 open" true (Verify.Reach.reachable snap ~src:4 ~dst:1)

let test_reinstall_replaces () =
  let topo = Topo.Gen.linear ~switches:2 ~hosts_per_switch:1 () in
  let net = Zen.create topo in
  ignore (Zen.install_policy net (Netkat.Builder.routing_policy topo));
  let n1 = Flow.Table.size (Dataplane.Network.switch (Zen.network net) 1).table in
  ignore (Zen.install_policy net (Netkat.Builder.routing_policy topo));
  let n2 = Flow.Table.size (Dataplane.Network.switch (Zen.network net) 1).table in
  Alcotest.(check int) "idempotent reinstall" n1 n2

let suites =
  [ ( "zen.integration",
      [ Alcotest.test_case "install and ping" `Quick test_install_and_ping;
        Alcotest.test_case "policy from string" `Quick
          test_install_policy_string;
        Alcotest.test_case "verify matches dataplane" `Quick
          test_verification_matches_dataplane;
        Alcotest.test_case "empty network" `Quick
          test_empty_network_unreachable;
        Alcotest.test_case "slices end to end" `Quick test_slices_end_to_end;
        Alcotest.test_case "slice validation" `Quick test_slice_validation;
        Alcotest.test_case "controller mode failover" `Quick
          test_controller_mode_and_failover_timing;
        Alcotest.test_case "firewall verified" `Quick
          test_firewall_policy_and_verify;
        Alcotest.test_case "reinstall idempotent" `Quick test_reinstall_replaces ] ) ]
