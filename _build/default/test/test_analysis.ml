(* Tests for policy analysis: equivalence, counterexamples, and the
   NetKAT algebraic laws (checked semantically through the FDD). *)

open Netkat
open Packet

let t80 = Syntax.test Fields.Tp_dst 80
let p1 = Syntax.forward 1
let p2 = Syntax.forward 2

let test_equivalence_basic () =
  Alcotest.(check bool) "id != drop" false
    (Analysis.equivalent Syntax.id Syntax.drop);
  Alcotest.(check bool) "self" true (Analysis.equivalent p1 p1);
  Alcotest.(check bool) "union comm" true
    (Analysis.equivalent (Syntax.union p1 p2) (Syntax.union p2 p1));
  Alcotest.(check bool) "union idem" true
    (Analysis.equivalent (Syntax.union p1 p1) p1);
  Alcotest.(check bool) "filter;filter = filter-and" true
    (Analysis.equivalent
       (Syntax.seq (Syntax.filter t80) (Syntax.filter (Syntax.test Fields.In_port 2)))
       (Syntax.filter (Syntax.conj t80 (Syntax.test Fields.In_port 2))))

let test_kat_laws () =
  let a = Syntax.filter t80 in
  let checks =
    [ ( "seq assoc",
        Syntax.seq (Syntax.seq a p1) p2, Syntax.seq a (Syntax.seq p1 p2) );
      ( "union assoc",
        Syntax.union (Syntax.union a p1) p2, Syntax.union a (Syntax.union p1 p2) );
      ( "distributivity",
        Syntax.seq a (Syntax.union p1 p2),
        Syntax.union (Syntax.seq a p1) (Syntax.seq a p2) );
      ("star unfold", Syntax.star p1,
       Syntax.union Syntax.id (Syntax.seq p1 (Syntax.star p1)));
      ("mod-then-test", Syntax.seq (Syntax.modify Fields.Tp_dst 80) (Syntax.filter t80),
       Syntax.modify Fields.Tp_dst 80);
      ("test-then-mod", Syntax.seq (Syntax.filter t80) (Syntax.modify Fields.Tp_dst 80),
       Syntax.filter t80) ]
  in
  List.iter
    (fun (name, l, r) ->
      Alcotest.(check bool) name true (Analysis.equivalent l r))
    checks

let test_is_drop_id () =
  Alcotest.(check bool) "drop" true
    (Analysis.is_drop (Syntax.seq (Syntax.filter t80) (Syntax.filter (Syntax.neg t80))));
  Alcotest.(check bool) "id" true
    (Analysis.is_id (Syntax.union Syntax.id (Syntax.filter t80)));
  Alcotest.(check bool) "not id" false (Analysis.is_id p1)

let test_counterexample_none_when_equal () =
  Alcotest.(check bool) "none" true
    (Analysis.counterexample (Syntax.union p1 p2) (Syntax.union p2 p1) = None)

let test_counterexample_witness () =
  (* differ exactly on tp_dst = 80 *)
  let p = Syntax.ite t80 p1 p2 in
  let q = p2 in
  match Analysis.counterexample p q with
  | None -> Alcotest.fail "should differ"
  | Some h ->
    Alcotest.(check int) "witness hits the difference" 80 h.tp_dst;
    Alcotest.(check bool) "semantics differ on witness" false
      (Semantics.equiv_on p q h)

let test_counterexample_negative_constraints () =
  (* policies equal on tp_dst=80 but differing elsewhere: witness must
     avoid 80 *)
  let p = Syntax.ite t80 p1 p2 in
  let q = Syntax.ite t80 p1 (Syntax.forward 3) in
  match Analysis.counterexample p q with
  | None -> Alcotest.fail "should differ"
  | Some h ->
    Alcotest.(check bool) "avoids the agreeing region" true (h.tp_dst <> 80);
    Alcotest.(check bool) "differs" false (Semantics.equiv_on p q h)

let test_deciding_fields () =
  let p = Syntax.ite t80 p1 p2 in
  Alcotest.(check bool) "tp_dst decides" true
    (List.exists (Fields.equal Fields.Tp_dst) (Analysis.deciding_fields p));
  Alcotest.(check bool) "vlan does not" false
    (List.exists (Fields.equal Fields.Vlan) (Analysis.deciding_fields p))

let test_table_size () =
  Alcotest.(check int) "two rules" 2
    (Analysis.table_size ~switch:1 (Syntax.seq (Syntax.filter t80) p1))

(* property: counterexample is sound (the witness truly distinguishes)
   and complete w.r.t. equivalence on random policies *)
let gen_small_pol =
  let open QCheck.Gen in
  let fields = [| Fields.In_port; Fields.Tp_dst; Fields.Vlan |] in
  sized (fun n ->
    fix
      (fun self n ->
        let leaf =
          oneof
            [ return Syntax.id; return Syntax.drop;
              map2 (fun f v -> Syntax.filter (Syntax.test f v))
                (oneofa fields) (int_bound 2);
              map2 (fun f v -> Syntax.modify f v) (oneofa fields) (int_bound 2) ]
        in
        if n <= 1 then leaf
        else
          frequency
            [ (2, leaf);
              (2, map2 Syntax.union (self (n / 2)) (self (n / 2)));
              (2, map2 Syntax.seq (self (n / 2)) (self (n / 2))) ])
      (min n 10))

let prop_counterexample_sound_complete =
  QCheck.Test.make ~name:"counterexample iff inequivalent, witness valid"
    ~count:500
    (QCheck.make
       ~print:(fun (p, q) ->
         Syntax.pol_to_string p ^ "  VS  " ^ Syntax.pol_to_string q)
       (QCheck.Gen.pair gen_small_pol gen_small_pol))
    (fun (p, q) ->
      match Analysis.counterexample p q with
      | None -> Analysis.equivalent p q
      | Some h ->
        (not (Analysis.equivalent p q)) && not (Semantics.equiv_on p q h))

let suites =
  [ ( "netkat.analysis",
      [ Alcotest.test_case "equivalence basics" `Quick test_equivalence_basic;
        Alcotest.test_case "KAT laws" `Quick test_kat_laws;
        Alcotest.test_case "is_drop / is_id" `Quick test_is_drop_id;
        Alcotest.test_case "no counterexample when equal" `Quick
          test_counterexample_none_when_equal;
        Alcotest.test_case "witness at the difference" `Quick
          test_counterexample_witness;
        Alcotest.test_case "witness avoids agreeing region" `Quick
          test_counterexample_negative_constraints;
        Alcotest.test_case "deciding fields" `Quick test_deciding_fields;
        Alcotest.test_case "table size" `Quick test_table_size;
        QCheck_alcotest.to_alcotest prop_counterexample_sound_complete ] ) ]
