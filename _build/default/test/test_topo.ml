(* Tests for the topology graph, generators and path algorithms. *)

open Topo
module Node = Topology.Node

let sw i = Node.Switch i
let host i = Node.Host i

(* ------------------------------------------------------------------ *)
(* Graph basics *)

let test_add_and_query () =
  let t = Topology.create () in
  Topology.add_switch t 1;
  Topology.add_switch t 2;
  Topology.add_host t 1;
  Topology.add_link t (sw 1, 1) (sw 2, 1) ~capacity:1e9 ~delay:1e-6;
  Topology.add_link t (sw 1, 2) (host 1, 1) ~capacity:1e9 ~delay:1e-6;
  Alcotest.(check int) "switches" 2 (Topology.switch_count t);
  Alcotest.(check int) "hosts" 1 (Topology.host_count t);
  Alcotest.(check int) "links" 2 (Topology.link_count t);
  Alcotest.(check bool) "peer" true
    (Topology.peer t (sw 1) 1 = Some (sw 2, 1));
  Alcotest.(check bool) "reverse peer" true
    (Topology.peer t (sw 2) 1 = Some (sw 1, 1));
  Alcotest.(check (list int)) "ports of s1" [ 1; 2 ] (Topology.ports t (sw 1))

let test_port_in_use () =
  let t = Topology.create () in
  Topology.add_link t (sw 1, 1) (sw 2, 1) ~capacity:1.0 ~delay:0.0;
  Alcotest.(check bool) "port reuse rejected" true
    (match Topology.add_link t (sw 1, 1) (sw 3, 1) ~capacity:1.0 ~delay:0.0 with
     | exception Topology.Port_in_use (n, p) -> n = sw 1 && p = 1
     | () -> false)

let test_link_failure () =
  let t = Gen.linear ~switches:2 ~hosts_per_switch:0 () in
  Alcotest.(check bool) "up" true (Topology.peer t (sw 1) 1 <> None);
  Topology.fail_link t (sw 1, 1);
  Alcotest.(check bool) "down from s1" true (Topology.peer t (sw 1) 1 = None);
  Alcotest.(check bool) "down from s2" true (Topology.peer t (sw 2) 1 = None);
  Topology.restore_link t (sw 2, 1);
  Alcotest.(check bool) "restored" true (Topology.peer t (sw 1) 1 <> None)

let test_fail_node () =
  let t = Gen.star ~leaves:3 ~hosts_per_leaf:0 () in
  Topology.fail_node t (sw 1);
  List.iter
    (fun leaf ->
      Alcotest.(check bool) "leaf cut" true (Topology.peer t (sw leaf) 1 = None))
    [ 2; 3; 4 ]

let test_attachment () =
  let t = Gen.linear ~switches:2 ~hosts_per_switch:1 () in
  Alcotest.(check bool) "h1 on s1" true
    (match Topology.attachment t 1 with Some (1, _) -> true | _ -> false);
  Alcotest.(check bool) "h2 on s2" true
    (match Topology.attachment t 2 with Some (2, _) -> true | _ -> false);
  Alcotest.(check (list int)) "hosts of s1" [ 1 ]
    (List.map fst (Topology.hosts_of_switch t 1))

(* ------------------------------------------------------------------ *)
(* Generators *)

let test_gen_linear () =
  let t = Gen.linear ~switches:5 ~hosts_per_switch:2 () in
  Alcotest.(check int) "switches" 5 (Topology.switch_count t);
  Alcotest.(check int) "hosts" 10 (Topology.host_count t);
  Alcotest.(check int) "links" (4 + 10) (Topology.link_count t)

let test_gen_ring () =
  let t = Gen.ring ~switches:4 ~hosts_per_switch:1 () in
  Alcotest.(check int) "links" (4 + 4) (Topology.link_count t);
  (* every switch has degree 3: two ring + one host *)
  List.iter
    (fun s ->
      Alcotest.(check int)
        (Node.to_string s)
        3
        (List.length (Topology.ports t s)))
    (Topology.switches t)

let test_gen_fat_tree () =
  let t, info = Gen.fat_tree ~k:4 () in
  Alcotest.(check int) "core" 4 (List.length info.core);
  Alcotest.(check int) "aggregation" 8 (List.length info.aggregation);
  Alcotest.(check int) "edge" 8 (List.length info.edge);
  Alcotest.(check int) "switches" 20 (Topology.switch_count t);
  Alcotest.(check int) "hosts" 16 (Topology.host_count t);
  (* links: core-agg k^2/... each agg connects to k/2 cores: 8*2=16;
     agg-edge per pod (k/2)^2 * k pods = 16; host links 16 *)
  Alcotest.(check int) "links" 48 (Topology.link_count t)

let test_gen_fat_tree_rejects_odd () =
  Alcotest.(check bool) "odd k rejected" true
    (match Gen.fat_tree ~k:3 () with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_gen_grid_torus () =
  let g = Gen.grid ~rows:3 ~cols:4 ~hosts_per_switch:0 () in
  (* 3*3 horizontal + 2*4 vertical = 17 *)
  Alcotest.(check int) "grid links" 17 (Topology.link_count g);
  let t = Gen.torus ~rows:3 ~cols:4 ~hosts_per_switch:0 () in
  Alcotest.(check int) "torus links" 24 (Topology.link_count t)

let test_gen_waxman_connected () =
  List.iter
    (fun seed ->
      let prng = Util.Prng.create seed in
      let t = Gen.waxman ~switches:20 ~hosts_per_switch:0 ~prng () in
      let pred = Path.bfs t ~src:(sw 1) in
      List.iter
        (fun n ->
          if not (Node.equal n (sw 1)) then
            Alcotest.(check bool)
              (Printf.sprintf "seed %d reaches %s" seed (Node.to_string n))
              true (Hashtbl.mem pred n))
        (Topology.switches t))
    [ 1; 2; 3; 42 ]

let test_gen_wans () =
  let a = Gen.abilene () in
  Alcotest.(check int) "abilene switches" 11 (Topology.switch_count a);
  Alcotest.(check int) "abilene links" (14 + 11) (Topology.link_count a);
  let b = Gen.b4 () in
  Alcotest.(check int) "b4 switches" 12 (Topology.switch_count b)

let test_gen_of_spec () =
  Alcotest.(check int) "linear:4" 4
    (Topology.switch_count (Gen.of_spec "linear:4"));
  Alcotest.(check int) "fattree:4" 20
    (Topology.switch_count (Gen.of_spec "fattree:4"));
  Alcotest.(check int) "grid:2x3" 6
    (Topology.switch_count (Gen.of_spec "grid:2x3"));
  Alcotest.(check bool) "bad spec" true
    (match Gen.of_spec "nope" with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* ------------------------------------------------------------------ *)
(* Paths *)

let test_shortest_path_linear () =
  let t = Gen.linear ~switches:4 ~hosts_per_switch:1 () in
  match Path.shortest_path t ~src:(host 1) ~dst:(host 4) with
  | None -> Alcotest.fail "no path"
  | Some p ->
    (* h1 -> s1 -> s2 -> s3 -> s4 -> h4 *)
    Alcotest.(check int) "hops" 5 (Path.length p);
    let nodes = Path.nodes ~src:(host 1) p in
    Alcotest.(check bool) "ends at h4" true
      (List.nth nodes 5 = host 4)

let test_no_transit_through_hosts () =
  (* s1 - h9 - nothing else: hosts never forward, so s1 !-> s2 via h9 *)
  let t = Topology.create () in
  Topology.add_link t (sw 1, 1) (host 9, 1) ~capacity:1.0 ~delay:0.0;
  (* h9 has only one port anyway; build the sneaky case with two hosts
     on a chain instead: s1 - h9; s2 - h9 is impossible (1 port). Use a
     host with two links to be explicit. *)
  Topology.add_link t (sw 2, 1) (host 9, 2) ~capacity:1.0 ~delay:0.0;
  Alcotest.(check bool) "host does not transit" true
    (Path.shortest_path t ~src:(sw 1) ~dst:(sw 2) = None);
  (* but paths may start at the host *)
  Alcotest.(check bool) "host can originate" true
    (Path.shortest_path t ~src:(host 9) ~dst:(sw 2) <> None)

let test_path_respects_failures () =
  let t = Gen.ring ~switches:4 ~hosts_per_switch:0 () in
  (* ring 1-2-3-4-1; fail 1-2: path 1->2 must go the long way *)
  let p_before = Option.get (Path.shortest_path t ~src:(sw 1) ~dst:(sw 2)) in
  Alcotest.(check int) "direct" 1 (Path.length p_before);
  Topology.fail_link t (sw 1, 1);
  (* port 1 of s1 connects to s2 in Gen.linear construction *)
  let p_after = Option.get (Path.shortest_path t ~src:(sw 1) ~dst:(sw 2)) in
  Alcotest.(check int) "detour" 3 (Path.length p_after)

let test_dijkstra_weights () =
  (* triangle with a heavy direct edge: cheapest path is the detour *)
  let t = Topology.create () in
  Topology.add_link t (sw 1, 1) (sw 2, 1) ~capacity:1.0 ~delay:10.0;
  Topology.add_link t (sw 1, 2) (sw 3, 1) ~capacity:1.0 ~delay:1.0;
  Topology.add_link t (sw 3, 2) (sw 2, 2) ~capacity:1.0 ~delay:1.0;
  match Path.cheapest_path t ~weight:(fun l -> l.delay) ~src:(sw 1) ~dst:(sw 2) with
  | None -> Alcotest.fail "no path"
  | Some (p, cost) ->
    Alcotest.(check int) "two hops" 2 (Path.length p);
    Alcotest.(check (float 1e-9)) "cost" 2.0 cost

let test_dijkstra_unreachable () =
  let t = Topology.create () in
  Topology.add_switch t 1;
  Topology.add_switch t 2;
  Alcotest.(check bool) "unreachable" true
    (Path.cheapest_path t ~weight:(fun _ -> 1.0) ~src:(sw 1) ~dst:(sw 2) = None);
  Alcotest.(check bool) "self" true
    (Path.cheapest_path t ~weight:(fun _ -> 1.0) ~src:(sw 1) ~dst:(sw 1)
     = Some ([], 0.0))

let test_all_shortest_paths_ecmp () =
  (* 2x2 torus gives two equal paths between opposite corners of a row *)
  let t = Gen.grid ~rows:2 ~cols:2 ~hosts_per_switch:0 () in
  let paths = Path.all_shortest_paths t ~src:(sw 1) ~dst:(sw 4) in
  Alcotest.(check int) "two ECMP paths" 2 (List.length paths);
  List.iter
    (fun p -> Alcotest.(check int) "both 2 hops" 2 (Path.length p))
    paths

let test_k_shortest () =
  let t = Gen.ring ~switches:5 ~hosts_per_switch:0 () in
  let paths =
    Path.k_shortest t ~weight:(fun _ -> 1.0) ~src:(sw 1) ~dst:(sw 3) 3
  in
  Alcotest.(check int) "two distinct paths in a ring" 2 (List.length paths);
  Alcotest.(check (list int)) "lengths ordered" [ 2; 3 ]
    (List.map Path.length paths)

let test_k_shortest_diverse () =
  let t = Gen.grid ~rows:3 ~cols:3 ~hosts_per_switch:0 () in
  let paths =
    Path.k_shortest t ~weight:(fun _ -> 1.0) ~src:(sw 1) ~dst:(sw 9) 4
  in
  Alcotest.(check int) "four paths" 4 (List.length paths);
  (* all loop-free *)
  List.iter
    (fun p ->
      let nodes = Path.nodes ~src:(sw 1) p in
      Alcotest.(check int) "loop free" (List.length nodes)
        (List.length (List.sort_uniq compare nodes)))
    paths;
  (* costs nondecreasing *)
  let costs = List.map Path.length paths in
  Alcotest.(check (list int)) "sorted" (List.sort compare costs) costs

let test_k_shortest_restores_topology () =
  let t = Gen.grid ~rows:3 ~cols:3 ~hosts_per_switch:0 () in
  let links_before = Topology.link_count t in
  let up_before =
    List.length (List.filter (fun (l : Topology.link) -> l.up) (Topology.links t))
  in
  ignore (Path.k_shortest t ~weight:(fun _ -> 1.0) ~src:(sw 1) ~dst:(sw 9) 5);
  let up_after =
    List.length (List.filter (fun (l : Topology.link) -> l.up) (Topology.links t))
  in
  Alcotest.(check int) "links intact" links_before (Topology.link_count t);
  Alcotest.(check int) "all links restored up" up_before up_after

let test_spanning_tree () =
  let t = Gen.ring ~switches:4 ~hosts_per_switch:1 () in
  let tree = Path.spanning_tree t in
  (* tree edges among switches = 3 (4 switches), each contributing a port
     at both ends; plus 4 host ports *)
  let total_ports =
    Hashtbl.fold (fun _ ports acc -> acc + List.length ports) tree 0
  in
  Alcotest.(check int) "port count" ((3 * 2) + 4) total_ports

let test_bellman_ford_agrees_dijkstra () =
  let prng = Util.Prng.create 99 in
  let t = Gen.waxman ~switches:15 ~hosts_per_switch:1 ~prng () in
  let weight (l : Topology.link) = l.delay in
  let dist_d, _ = Path.dijkstra t ~weight ~src:(host 1) in
  let dist_b = Path.bellman_ford t ~weight ~src:(host 1) in
  List.iter
    (fun n ->
      let d = Hashtbl.find_opt dist_d n and b = Hashtbl.find_opt dist_b n in
      match (d, b) with
      | None, None -> ()
      | Some d, Some b ->
        Alcotest.(check (float 1e-9)) (Node.to_string n) d b
      | _ -> Alcotest.fail ("reachability disagrees at " ^ Node.to_string n))
    (Topology.nodes t)

(* property: on random connected graphs, dijkstra = bellman-ford *)
let prop_dijkstra_bellman =
  QCheck.Test.make ~name:"dijkstra agrees with bellman-ford" ~count:25
    QCheck.(pair (int_range 1 10000) (int_range 5 25))
    (fun (seed, n) ->
      let prng = Util.Prng.create seed in
      let t = Gen.waxman ~switches:n ~hosts_per_switch:0 ~prng () in
      let weight (l : Topology.link) = l.delay in
      let dist_d, _ = Path.dijkstra t ~weight ~src:(sw 1) in
      let dist_b = Path.bellman_ford t ~weight ~src:(sw 1) in
      List.for_all
        (fun node ->
          match (Hashtbl.find_opt dist_d node, Hashtbl.find_opt dist_b node) with
          | Some d, Some b -> abs_float (d -. b) < 1e-9
          | None, None -> true
          | _ -> false)
        (Topology.nodes t))

(* property: BFS shortest path length <= any dijkstra hop path length *)
let prop_bfs_minimal =
  QCheck.Test.make ~name:"bfs path is minimal in hops" ~count:25
    QCheck.(int_range 1 10000)
    (fun seed ->
      let prng = Util.Prng.create seed in
      let t = Gen.waxman ~switches:12 ~hosts_per_switch:0 ~prng () in
      let weight _ = 1.0 in
      List.for_all
        (fun dst ->
          match
            ( Path.shortest_path t ~src:(sw 1) ~dst,
              Path.cheapest_path t ~weight ~src:(sw 1) ~dst )
          with
          | Some p, Some (_, cost) ->
            float_of_int (Path.length p) <= cost +. 1e-9
          | None, None -> true
          | _ -> false)
        (Topology.switches t))

let suites =
  [ ( "topo.graph",
      [ Alcotest.test_case "add and query" `Quick test_add_and_query;
        Alcotest.test_case "port in use" `Quick test_port_in_use;
        Alcotest.test_case "link failure" `Quick test_link_failure;
        Alcotest.test_case "node failure" `Quick test_fail_node;
        Alcotest.test_case "host attachment" `Quick test_attachment ] );
    ( "topo.gen",
      [ Alcotest.test_case "linear" `Quick test_gen_linear;
        Alcotest.test_case "ring" `Quick test_gen_ring;
        Alcotest.test_case "fat tree" `Quick test_gen_fat_tree;
        Alcotest.test_case "fat tree odd k" `Quick test_gen_fat_tree_rejects_odd;
        Alcotest.test_case "grid and torus" `Quick test_gen_grid_torus;
        Alcotest.test_case "waxman connected" `Quick test_gen_waxman_connected;
        Alcotest.test_case "reference WANs" `Quick test_gen_wans;
        Alcotest.test_case "of_spec" `Quick test_gen_of_spec ] );
    ( "topo.path",
      [ Alcotest.test_case "shortest path linear" `Quick
          test_shortest_path_linear;
        Alcotest.test_case "no transit through hosts" `Quick
          test_no_transit_through_hosts;
        Alcotest.test_case "respects failures" `Quick
          test_path_respects_failures;
        Alcotest.test_case "dijkstra weights" `Quick test_dijkstra_weights;
        Alcotest.test_case "dijkstra unreachable/self" `Quick
          test_dijkstra_unreachable;
        Alcotest.test_case "ECMP enumeration" `Quick
          test_all_shortest_paths_ecmp;
        Alcotest.test_case "k-shortest ring" `Quick test_k_shortest;
        Alcotest.test_case "k-shortest diverse" `Quick test_k_shortest_diverse;
        Alcotest.test_case "k-shortest restores links" `Quick
          test_k_shortest_restores_topology;
        Alcotest.test_case "spanning tree" `Quick test_spanning_tree;
        Alcotest.test_case "bellman-ford agrees" `Quick
          test_bellman_ford_agrees_dijkstra;
        QCheck_alcotest.to_alcotest prop_dijkstra_bellman;
        QCheck_alcotest.to_alcotest prop_bfs_minimal ] ) ]
