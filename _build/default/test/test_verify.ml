(* Tests for the header-space algebra and symbolic reachability. *)

open Verify
open Packet

let iset xs = Hsa.IntSet.of_list xs

let cube_of tests : Hsa.cube =
  List.fold_left (fun c (f, k) -> Hsa.set_constr c f k) Hsa.top tests

(* ------------------------------------------------------------------ *)
(* Cube algebra *)

let test_inter_basic () =
  let a = Hsa.eq Fields.Tp_dst 80 in
  let b = Hsa.eq Fields.In_port 2 in
  (match Hsa.inter a b with
   | None -> Alcotest.fail "should intersect"
   | Some c ->
     Alcotest.(check bool) "contains the conj witness" true
       (Hsa.contains c
          (Headers.set (Headers.set Headers.default Fields.Tp_dst 80)
             Fields.In_port 2)));
  Alcotest.(check bool) "same field, different value: empty" true
    (Hsa.inter a (Hsa.eq Fields.Tp_dst 81) = None)

let test_inter_excl () =
  let not80 = cube_of [ (Fields.Tp_dst, Hsa.Excl (iset [ 80 ])) ] in
  (match Hsa.inter not80 (Hsa.eq Fields.Tp_dst 80) with
   | None -> ()
   | Some _ -> Alcotest.fail "80 ∩ ¬80 should be empty");
  match Hsa.inter not80 (Hsa.eq Fields.Tp_dst 81) with
  | Some c ->
    Alcotest.(check bool) "81 survives" true
      (Hsa.contains c (Headers.set Headers.default Fields.Tp_dst 81))
  | None -> Alcotest.fail "81 ∩ ¬80 nonempty"

let test_inter_excl_excl () =
  let a = cube_of [ (Fields.Vlan, Hsa.Excl (iset [ 1 ])) ] in
  let b = cube_of [ (Fields.Vlan, Hsa.Excl (iset [ 2 ])) ] in
  match Hsa.inter a b with
  | Some c ->
    let h v = Headers.set Headers.default Fields.Vlan v in
    Alcotest.(check bool) "1 excluded" false (Hsa.contains c (h 1));
    Alcotest.(check bool) "2 excluded" false (Hsa.contains c (h 2));
    Alcotest.(check bool) "3 inside" true (Hsa.contains c (h 3))
  | None -> Alcotest.fail "should be nonempty"

let test_subtract_partition () =
  (* (a \ b) ∪ (a ∩ b) = a, and the parts are disjoint — check by
     membership on a grid of concrete headers *)
  let a = cube_of [ (Fields.Tp_dst, Hsa.In (iset [ 1; 2; 3 ])) ] in
  let b = cube_of [ (Fields.Tp_dst, Hsa.In (iset [ 2; 3; 4 ]));
                    (Fields.Vlan, Hsa.In (iset [ 7 ])) ] in
  let parts = Hsa.subtract a b in
  let headers =
    List.concat_map
      (fun tp ->
        List.map
          (fun vl ->
            Headers.set (Headers.set Headers.default Fields.Tp_dst tp)
              Fields.Vlan vl)
          [ 6; 7 ])
      [ 1; 2; 3; 4 ]
  in
  List.iter
    (fun h ->
      let in_a = Hsa.contains a h and in_b = Hsa.contains b h in
      let in_parts = List.exists (fun c -> Hsa.contains c h) parts in
      Alcotest.(check bool)
        (Format.asprintf "%a" Headers.pp h)
        (in_a && not in_b) in_parts)
    headers

let test_subtract_disjoint_returns_whole () =
  let a = Hsa.eq Fields.Tp_dst 80 in
  let b = Hsa.eq Fields.Tp_dst 81 in
  Alcotest.(check bool) "disjoint" true (Hsa.subtract a b = [ a ])

let test_subsumes () =
  let any = Hsa.top in
  let narrow = Hsa.eq Fields.Tp_dst 80 in
  Alcotest.(check bool) "top subsumes" true (Hsa.subsumes ~general:any narrow);
  Alcotest.(check bool) "narrow does not subsume top" false
    (Hsa.subsumes ~general:narrow any);
  let not80 = cube_of [ (Fields.Tp_dst, Hsa.Excl (iset [ 80 ])) ] in
  Alcotest.(check bool) "¬80 subsumes {81}" true
    (Hsa.subsumes ~general:not80 (Hsa.eq Fields.Tp_dst 81));
  Alcotest.(check bool) "¬80 does not subsume {80}" false
    (Hsa.subsumes ~general:not80 (Hsa.eq Fields.Tp_dst 80))

let test_of_pattern () =
  let p =
    { Flow.Pattern.any with
      tp_dst = Some 80; in_port = Some 2;
      ip4_dst = Some (Ipv4.Prefix.host (Ipv4.of_host_id 9)) }
  in
  let c = Hsa.of_pattern p in
  let h =
    { Headers.default with tp_dst = 80; in_port = 2;
      ip4_dst = Ipv4.of_host_id 9 }
  in
  Alcotest.(check bool) "matching headers inside" true (Hsa.contains c h);
  Alcotest.(check bool) "others outside" false
    (Hsa.contains c { h with tp_dst = 81 });
  (* wide prefixes are rejected, /0 is fine *)
  Alcotest.(check bool) "wildcard prefix ok" true
    (Hsa.of_pattern
       { Flow.Pattern.any with ip4_src = Some (Ipv4.Prefix.of_string "0.0.0.0/0") }
     = Hsa.top);
  Alcotest.(check bool) "/8 rejected" true
    (match
       Hsa.of_pattern
         { Flow.Pattern.any with ip4_src = Some (Ipv4.Prefix.of_string "10.0.0.0/8") }
     with
     | exception Hsa.Unsupported _ -> true
     | _ -> false)

let test_witness () =
  let c =
    cube_of
      [ (Fields.Tp_dst, Hsa.In (iset [ 42 ]));
        (Fields.Vlan, Hsa.Excl (iset [ 0; 1; 2 ])) ]
  in
  Alcotest.(check bool) "witness is a member" true (Hsa.contains c (Hsa.witness c));
  Alcotest.(check int) "picked 42" 42 (Hsa.witness c).tp_dst;
  Alcotest.(check int) "smallest non-excluded" 3 (Hsa.witness c).vlan

(* property: subtraction really is set difference (tested pointwise) *)
let gen_constr =
  let open QCheck.Gen in
  oneof
    [ return Hsa.Any;
      map (fun l -> Hsa.In (iset (List.map (fun v -> v mod 4) (1 :: l))))
        (list_size (0 -- 3) (int_bound 3));
      map (fun l -> Hsa.Excl (iset (List.map (fun v -> v mod 4) (1 :: l))))
        (list_size (0 -- 3) (int_bound 3)) ]

let gen_cube =
  let open QCheck.Gen in
  let f = oneofl [ Fields.In_port; Fields.Vlan; Fields.Tp_dst ] in
  map (fun l -> cube_of l) (list_size (0 -- 3) (pair f gen_constr))

let grid_headers =
  List.concat_map
    (fun p ->
      List.concat_map
        (fun v ->
          List.map
            (fun t ->
              { Headers.default with in_port = p; vlan = v; tp_dst = t })
            [ 0; 1; 2; 3; 4 ])
        [ 0; 1; 2; 3; 4 ])
    [ 0; 1; 2; 3; 4 ]

let prop_cube_algebra =
  QCheck.Test.make ~name:"cube inter/subtract agree with set semantics"
    ~count:300
    (QCheck.make (QCheck.Gen.pair gen_cube gen_cube))
    (fun (a, b) ->
      let inter_ok =
        List.for_all
          (fun h ->
            let got =
              match Hsa.inter a b with
              | None -> false
              | Some c -> Hsa.contains c h
            in
            got = (Hsa.contains a h && Hsa.contains b h))
          grid_headers
      in
      let sub = Hsa.subtract a b in
      let sub_ok =
        List.for_all
          (fun h ->
            List.exists (fun c -> Hsa.contains c h) sub
            = (Hsa.contains a h && not (Hsa.contains b h)))
          grid_headers
      in
      inter_ok && sub_ok)

(* ------------------------------------------------------------------ *)
(* Reachability over compiled tables *)

let snapshot_of topo pol : Reach.snapshot =
  let fdd = Netkat.Fdd.of_policy pol in
  let tables = Hashtbl.create 8 in
  List.iter
    (fun sw ->
      let id = Topo.Topology.Node.id sw in
      let t = Flow.Table.create () in
      List.iter
        (fun (r : Netkat.Local.rule) ->
          Flow.Table.add t
            (Flow.Table.make_rule ~priority:r.priority ~pattern:r.pattern
               ~actions:r.actions ()))
        (Netkat.Local.rules_of_fdd ~switch:id fdd);
      Hashtbl.replace tables id t)
    (Topo.Topology.switches topo);
  { topo; tables = (fun id -> Flow.Table.rules (Hashtbl.find tables id)) }

let test_reachability_routing () =
  let topo = Topo.Gen.linear ~switches:3 ~hosts_per_switch:1 () in
  let snap = snapshot_of topo (Netkat.Builder.routing_policy topo) in
  List.iter
    (fun (src, dst) ->
      Alcotest.(check bool)
        (Printf.sprintf "%d->%d" src dst)
        true
        (Reach.reachable snap ~src ~dst))
    [ (1, 2); (1, 3); (3, 1); (2, 3) ]

let test_reachability_matrix_full () =
  let topo, info = Topo.Gen.fat_tree ~k:2 () in
  let snap = snapshot_of topo (Netkat.Builder.routing_policy topo) in
  let m = Reach.reachability_matrix snap in
  Alcotest.(check int) "pairs" (List.length info.host_ids * (List.length info.host_ids - 1))
    (List.length m);
  Alcotest.(check bool) "all reachable" true (List.for_all snd m)

let test_reachability_respects_acl () =
  let topo = Topo.Gen.linear ~switches:2 ~hosts_per_switch:1 () in
  let entries =
    [ { Netkat.Builder.allow = false;
        src_ip = Some (Ipv4.of_host_id 1);
        dst_ip = Some (Ipv4.of_host_id 2);
        proto = None; dst_port = None } ]
  in
  let snap = snapshot_of topo (Netkat.Builder.firewall topo entries) in
  Alcotest.(check bool) "blocked direction" false (Reach.reachable snap ~src:1 ~dst:2);
  Alcotest.(check bool) "reverse allowed" true (Reach.reachable snap ~src:2 ~dst:1)

let test_loop_detection () =
  (* hand-build a two-switch forwarding loop *)
  let topo = Topo.Gen.linear ~switches:2 ~hosts_per_switch:1 () in
  (* s1 port1 <-> s2 port1; hosts on port 2 *)
  let t1 = Flow.Table.create () and t2 = Flow.Table.create () in
  Flow.Table.add t1
    (Flow.Table.make_rule ~pattern:Flow.Pattern.any
       ~actions:(Flow.Action.forward 1) ());
  Flow.Table.add t2
    (Flow.Table.make_rule ~pattern:Flow.Pattern.any
       ~actions:(Flow.Action.forward 1) ());
  let snap : Reach.snapshot =
    { topo;
      tables = (fun id -> Flow.Table.rules (if id = 1 then t1 else t2)) }
  in
  let loops = Reach.loop_free snap in
  Alcotest.(check bool) "loop found" true (loops <> []);
  (* and the routing policy is loop-free *)
  let good = snapshot_of topo (Netkat.Builder.routing_policy topo) in
  Alcotest.(check int) "routing loop-free" 0 (List.length (Reach.loop_free good))

let test_black_holes () =
  let topo = Topo.Gen.linear ~switches:2 ~hosts_per_switch:1 () in
  let snap = snapshot_of topo (Netkat.Builder.routing_policy topo) in
  (* routing drops unknown destinations at the first switch: the
     black-hole report for host 1 includes slices (drop rule = policy
     drop, not a miss -> NOT a black hole; tables have explicit drop) *)
  let holes = Reach.black_holes snap ~src:1 in
  Alcotest.(check int) "explicit-drop tables have no misses" 0
    (List.length holes);
  (* an empty table is all miss *)
  let empty : Reach.snapshot = { topo; tables = (fun _ -> []) } in
  Alcotest.(check bool) "empty tables black-hole everything" true
    (Reach.black_holes empty ~src:1 <> [])

let test_isolation_check () =
  let topo = Topo.Gen.linear ~switches:3 ~hosts_per_switch:2 () in
  let slices = [ [ 1; 3; 5 ]; [ 2; 4; 6 ] ] in
  let pol = Netkat.Builder.isolation_policy topo ~groups:slices in
  let snap = snapshot_of topo pol in
  Alcotest.(check (list (pair int int))) "isolated" []
    (Reach.isolated snap ~group_a:[ 1; 3; 5 ] ~group_b:[ 2; 4; 6 ]);
  (* members of the same slice still connected *)
  Alcotest.(check bool) "intra-slice ok" true (Reach.reachable snap ~src:1 ~dst:5);
  (* plain routing is NOT isolated *)
  let open_snap = snapshot_of topo (Netkat.Builder.ip_routing_policy topo) in
  Alcotest.(check bool) "plain routing leaks" true
    (Reach.isolated open_snap ~group_a:[ 1 ] ~group_b:[ 2 ] <> [])

let test_reachability_after_failure () =
  let topo = Topo.Gen.ring ~switches:4 ~hosts_per_switch:1 () in
  let pol = Netkat.Builder.routing_policy topo in
  let snap = snapshot_of topo pol in
  Alcotest.(check bool) "before" true (Reach.reachable snap ~src:1 ~dst:2);
  (* fail the direct link but keep the stale tables: verification sees
     the traffic die at the dead link *)
  Topo.Topology.fail_link topo (Topo.Topology.Node.Switch 1, 1);
  Alcotest.(check bool) "stale tables, dead link" false
    (Reach.reachable snap ~src:1 ~dst:2);
  (* recompile over the surviving topology: reachability is restored *)
  let snap2 = snapshot_of topo (Netkat.Builder.routing_policy topo) in
  Alcotest.(check bool) "after recompute" true
    (Reach.reachable snap2 ~src:1 ~dst:2)

let test_transfer_rewrites () =
  (* a rule that rewrites vlan must show in the delivered cube *)
  let topo = Topo.Gen.linear ~switches:1 ~hosts_per_switch:2 () in
  let open Netkat.Syntax in
  let pol =
    seq (modify Fields.Vlan 42)
      (seq (filter (test Fields.Eth_dst (Mac.of_host_id 2))) (forward 2))
  in
  let snap = snapshot_of topo pol in
  let r =
    Reach.walk snap ~src:1 ~cube:(Reach.flow_cube ~src:1 ~dst:2) ()
  in
  match r.deliveries with
  | [ d ] ->
    Alcotest.(check int) "delivered to h2" 2 d.host;
    Alcotest.(check bool) "vlan rewritten in cube" true
      (Hsa.subsumes ~general:(Hsa.eq Fields.Vlan 42) d.cube
       || (Hsa.witness d.cube).vlan = 42)
  | _ -> Alcotest.fail "expected exactly one delivery"

(* property: symbolic reachability agrees with concrete simulation *)
let prop_verify_agrees_with_simulation =
  QCheck.Test.make
    ~name:"symbolic reachability agrees with simulated delivery" ~count:30
    (QCheck.make QCheck.Gen.(pair (int_range 2 5) (int_bound 10000)))
    (fun (nsw, seed) ->
      let prng = Util.Prng.create seed in
      let topo = Topo.Gen.linear ~switches:nsw ~hosts_per_switch:1 () in
      (* random ACL + routing *)
      let entries = Netkat.Builder.random_acl prng ~n:3 ~hosts:nsw in
      let entries =
        List.map (fun (e : Netkat.Builder.acl_entry) -> { e with dst_port = None; proto = None }) entries
      in
      let pol = Netkat.Builder.firewall topo entries in
      let snap = snapshot_of topo pol in
      let net = Dataplane.Network.create topo in
      List.iter
        (fun sw ->
          let id = Topo.Topology.Node.id sw in
          let table = (Dataplane.Network.switch net id).table in
          List.iter (Flow.Table.add table) (snap.tables id |> List.map (fun r -> r)))
        (Topo.Topology.switches topo);
      List.for_all
        (fun (src, dst) ->
          if src = dst then true
          else begin
            let symbolic = Reach.reachable snap ~src ~dst in
            let before = (Dataplane.Network.host net dst).received in
            Dataplane.Network.send_from net ~host:src
              (Dataplane.Network.make_pkt ~src ~dst ());
            ignore (Dataplane.Network.run net ());
            let got = (Dataplane.Network.host net dst).received > before in
            got = symbolic
          end)
        (List.concat_map
           (fun s -> List.map (fun d -> (s, d)) (List.init nsw (fun i -> i + 1)))
           (List.init nsw (fun i -> i + 1))))

let suites =
  [ ( "verify.hsa",
      [ Alcotest.test_case "intersection" `Quick test_inter_basic;
        Alcotest.test_case "exclusion constraints" `Quick test_inter_excl;
        Alcotest.test_case "excl ∩ excl" `Quick test_inter_excl_excl;
        Alcotest.test_case "subtraction partitions" `Quick
          test_subtract_partition;
        Alcotest.test_case "disjoint subtraction" `Quick
          test_subtract_disjoint_returns_whole;
        Alcotest.test_case "subsumption" `Quick test_subsumes;
        Alcotest.test_case "of_pattern" `Quick test_of_pattern;
        Alcotest.test_case "witness" `Quick test_witness;
        QCheck_alcotest.to_alcotest prop_cube_algebra ] );
    ( "verify.reach",
      [ Alcotest.test_case "routing reachability" `Quick
          test_reachability_routing;
        Alcotest.test_case "full matrix on fat-tree" `Quick
          test_reachability_matrix_full;
        Alcotest.test_case "respects ACLs" `Quick test_reachability_respects_acl;
        Alcotest.test_case "loop detection" `Quick test_loop_detection;
        Alcotest.test_case "black holes" `Quick test_black_holes;
        Alcotest.test_case "slice isolation" `Quick test_isolation_check;
        Alcotest.test_case "failure staleness" `Quick
          test_reachability_after_failure;
        Alcotest.test_case "rewrites visible" `Quick test_transfer_rewrites;
        QCheck_alcotest.to_alcotest prop_verify_agrees_with_simulation ] ) ]
