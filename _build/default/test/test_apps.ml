(* Tests for the extended app suite (tunnels, NAT, ARP proxy), waypoint
   verification, and the leaf-spine / jellyfish generators. *)

open Packet

(* ------------------------------------------------------------------ *)
(* Generators *)

let test_leaf_spine_shape () =
  let topo = Topo.Gen.leaf_spine ~leaves:4 ~spines:3 ~hosts_per_leaf:5 () in
  Alcotest.(check int) "switches" 7 (Topo.Topology.switch_count topo);
  Alcotest.(check int) "hosts" 20 (Topo.Topology.host_count topo);
  (* links: 4*3 fabric + 20 host *)
  Alcotest.(check int) "links" 32 (Topo.Topology.link_count topo);
  (* every spine connects to every leaf *)
  List.iter
    (fun s ->
      Alcotest.(check int)
        (Printf.sprintf "spine %d degree" s)
        4
        (List.length (Topo.Topology.ports topo (Topo.Topology.Node.Switch s))))
    [ 1; 2; 3 ]

let test_leaf_spine_paths () =
  let topo = Topo.Gen.leaf_spine ~leaves:3 ~spines:2 ~hosts_per_leaf:1 () in
  (* leaf-to-leaf is always 2 switch hops; ECMP width = #spines *)
  let paths =
    Topo.Path.all_shortest_paths topo ~src:(Topo.Topology.Node.Switch 3)
      ~dst:(Topo.Topology.Node.Switch 4)
  in
  Alcotest.(check int) "ECMP over both spines" 2 (List.length paths)

let test_jellyfish_connected_regular () =
  List.iter
    (fun seed ->
      let prng = Util.Prng.create seed in
      let topo = Topo.Gen.jellyfish ~switches:16 ~degree:3 ~prng () in
      (* connected *)
      let pred = Topo.Path.bfs topo ~src:(Topo.Topology.Node.Switch 1) in
      List.iter
        (fun n ->
          if not (Topo.Topology.Node.equal n (Topo.Topology.Node.Switch 1)) then
            Alcotest.(check bool)
              (Printf.sprintf "seed %d reaches %s" seed
                 (Topo.Topology.Node.to_string n))
              true (Hashtbl.mem pred n))
        (Topo.Topology.switches topo);
      (* near-regular: inter-switch degree close to the target *)
      List.iter
        (fun sw ->
          let inter =
            Topo.Topology.out_links topo sw
            |> List.filter (fun (l : Topo.Topology.link) ->
              Topo.Topology.Node.is_switch l.dst)
            |> List.length
          in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d degree %d" seed inter)
            true
            (inter >= 1 && inter <= 5))
        (Topo.Topology.switches topo))
    [ 1; 7; 42 ]

let test_of_spec_new () =
  Alcotest.(check int) "leafspine:4:2" 6
    (Topo.Topology.switch_count (Topo.Gen.of_spec "leafspine:4:2"));
  Alcotest.(check int) "jellyfish:10:3:5" 10
    (Topo.Topology.switch_count (Topo.Gen.of_spec "jellyfish:10:3:5"))

(* ------------------------------------------------------------------ *)
(* Tunnels *)

let test_tunnels_connectivity () =
  let topo = Topo.Gen.leaf_spine ~leaves:3 ~spines:2 ~hosts_per_leaf:2 () in
  let net = Zen.create topo in
  let tunnels = Controller.Tunnel.create () in
  let _rt = Zen.with_controller net [ Controller.Tunnel.app tunnels ] in
  Alcotest.(check int) "lsps = leaf pairs" 6
    (List.length (Controller.Tunnel.lsps tunnels));
  (* all pairs reachable through the label fabric *)
  Dataplane.Traffic.install_responders (Zen.network net);
  List.iter
    (fun (src, dst) ->
      let r =
        Dataplane.Traffic.ping (Zen.network net) ~src ~dst ~count:1
          ~interval:0.01
      in
      ignore (Zen.run ~until:(Zen.now net +. 0.5) net);
      Alcotest.(check int)
        (Printf.sprintf "ping %d->%d" src dst)
        1
        (List.length !(r.rtts)))
    [ (1, 2) (* same leaf *); (1, 3); (1, 6); (4, 2) ]

let test_tunnels_pop_label () =
  let topo = Topo.Gen.leaf_spine ~leaves:2 ~spines:1 ~hosts_per_leaf:1 () in
  let net = Zen.create topo in
  let tunnels = Controller.Tunnel.create () in
  let _rt = Zen.with_controller net [ Controller.Tunnel.app tunnels ] in
  let seen = ref (-1) in
  (Dataplane.Network.host (Zen.network net) 2).on_receive <-
    Some (fun pkt -> seen := pkt.hdr.vlan);
  Dataplane.Network.send_from (Zen.network net) ~host:1
    (Dataplane.Network.make_pkt ~src:1 ~dst:2 ());
  ignore (Zen.run ~until:(Zen.now net +. 0.5) net);
  Alcotest.(check int) "label popped at egress" Fields.vlan_none !seen

let test_tunnels_compress_core () =
  (* many hosts per leaf: the spine holds per-tunnel rules under the
     tunnel app but per-host rules under destination routing *)
  let leaves = 4 and spines = 2 and hosts_per_leaf = 8 in
  let topo = Topo.Gen.leaf_spine ~leaves ~spines ~hosts_per_leaf () in
  let net = Zen.create topo in
  let tunnels = Controller.Tunnel.create () in
  let _rt = Zen.with_controller net [ Controller.Tunnel.app tunnels ] in
  let spine_rules_tunnel =
    Flow.Table.size (Dataplane.Network.switch (Zen.network net) 1).table
  in
  let net2 = Zen.create (Topo.Gen.leaf_spine ~leaves ~spines ~hosts_per_leaf ()) in
  ignore
    (Zen.install_policy net2
       (Netkat.Builder.routing_policy (Zen.topology net2)));
  let spine_rules_routing =
    Flow.Table.size (Dataplane.Network.switch (Zen.network net2) 1).table
  in
  Alcotest.(check bool)
    (Printf.sprintf "spine: %d tunnel rules < %d routing rules"
       spine_rules_tunnel spine_rules_routing)
    true
    (spine_rules_tunnel < spine_rules_routing)

(* ------------------------------------------------------------------ *)
(* NAT *)

let nat_setup () =
  (* star: s1 hub/gateway; h1 inside (on s2), h2 outside (on s3) *)
  let topo = Topo.Gen.star ~leaves:2 ~hosts_per_leaf:1 () in
  let net = Zen.create topo in
  let public_ip = Ipv4.of_string "10.200.0.1" in
  let nat =
    Controller.Nat.create ~gateway:1 ~public_ip ~inside:[ 1 ] ()
  in
  let routing = Controller.Routing.create ~use_ip:true () in
  let _rt =
    Zen.with_controller net [ Controller.Nat.app nat; Controller.Routing.app routing ]
  in
  (net, nat, public_ip)

let test_nat_outbound_translation () =
  let net, nat, public_ip = nat_setup () in
  let seen = ref None in
  (Dataplane.Network.host (Zen.network net) 2).on_receive <-
    Some (fun pkt -> seen := Some pkt.hdr);
  Dataplane.Network.send_from (Zen.network net) ~host:1
    (Dataplane.Network.make_pkt ~tp_src:5555 ~src:1 ~dst:2 ());
  ignore (Zen.run ~until:(Zen.now net +. 1.0) net);
  (match !seen with
   | None -> Alcotest.fail "outside host got nothing"
   | Some h ->
     Alcotest.(check int) "source rewritten to public ip" public_ip h.ip4_src;
     Alcotest.(check bool) "source port allocated" true (h.tp_src >= 30000));
  Alcotest.(check int) "one translation" 1 (Controller.Nat.translations nat)

let test_nat_reply_translated_back () =
  let net, _nat, public_ip = nat_setup () in
  let inside_got = ref None in
  (Dataplane.Network.host (Zen.network net) 1).on_receive <-
    Some (fun pkt -> inside_got := Some pkt.hdr);
  let outside_saw = ref None in
  (Dataplane.Network.host (Zen.network net) 2).on_receive <-
    Some (fun pkt -> outside_saw := Some pkt.hdr);
  (* outbound first *)
  Dataplane.Network.send_from (Zen.network net) ~host:1
    (Dataplane.Network.make_pkt ~tp_src:5555 ~tp_dst:80 ~src:1 ~dst:2 ());
  ignore (Zen.run ~until:(Zen.now net +. 1.0) net);
  (* craft the reply from what the outside host actually saw *)
  (match !outside_saw with
   | None -> Alcotest.fail "no outbound delivery"
   | Some h ->
     let reply = Dataplane.Network.make_pkt ~src:2 ~dst:2 () in
     let reply_hdr =
       { reply.hdr with
         ip4_src = h.ip4_dst; ip4_dst = h.ip4_src;
         eth_src = Mac.of_host_id 2; eth_dst = h.eth_src;
         tp_src = h.tp_dst; tp_dst = h.tp_src }
     in
     Dataplane.Network.send_from (Zen.network net) ~host:2
       { reply with hdr = reply_hdr });
  ignore (Zen.run ~until:(Zen.now net +. 1.0) net);
  match !inside_got with
  | None -> Alcotest.fail "reply did not come back through the NAT"
  | Some h ->
    Alcotest.(check int) "destination restored" (Ipv4.of_host_id 1) h.ip4_dst;
    Alcotest.(check int) "port restored" 5555 h.tp_dst;
    Alcotest.(check bool) "reply appears to come from public ip" true
      (h.ip4_src = public_ip || h.ip4_src = Ipv4.of_host_id 2)

let test_nat_distinct_flows_distinct_ports () =
  let net, nat, _ = nat_setup () in
  List.iter
    (fun tp_src ->
      Dataplane.Network.send_from (Zen.network net) ~host:1
        (Dataplane.Network.make_pkt ~tp_src ~src:1 ~dst:2 ()))
    [ 1001; 1002; 1003 ];
  ignore (Zen.run ~until:(Zen.now net +. 1.0) net);
  Alcotest.(check int) "three bindings" 3
    (List.length (Controller.Nat.bindings nat));
  let ports =
    List.map (fun (b : Controller.Nat.binding) -> b.public_port)
      (Controller.Nat.bindings nat)
  in
  Alcotest.(check int) "distinct public ports" 3
    (List.length (List.sort_uniq compare ports))

(* ------------------------------------------------------------------ *)
(* ARP proxy *)

let test_arp_proxy_answers () =
  let topo = Topo.Gen.linear ~switches:2 ~hosts_per_switch:1 () in
  let net = Zen.create topo in
  let proxy = Controller.Arp_proxy.create () in
  let _rt = Zen.with_controller net [ Controller.Arp_proxy.app proxy ] in
  let reply = ref None in
  (Dataplane.Network.host (Zen.network net) 1).on_receive <-
    Some (fun pkt -> reply := Some pkt.hdr);
  (* ARP request from h1 for h2's IP, as the flat-header projection *)
  let query = Dataplane.Network.make_pkt ~src:1 ~dst:1 () in
  let query_hdr =
    { query.hdr with
      eth_type = 0x0806; eth_dst = Mac.broadcast; ip_proto = 1;
      ip4_src = Ipv4.of_host_id 1; ip4_dst = Ipv4.of_host_id 2 }
  in
  Dataplane.Network.send_from (Zen.network net) ~host:1
    { query with hdr = query_hdr };
  ignore (Zen.run ~until:(Zen.now net +. 1.0) net);
  Alcotest.(check int) "answered" 1 (Controller.Arp_proxy.answered proxy);
  match !reply with
  | None -> Alcotest.fail "no ARP reply delivered"
  | Some h ->
    Alcotest.(check int) "reply opcode" 2 h.ip_proto;
    Alcotest.(check int) "owner mac advertised" (Mac.of_host_id 2) h.eth_src;
    Alcotest.(check int) "target ip echoed" (Ipv4.of_host_id 2) h.ip4_src

let test_arp_proxy_unknown () =
  let topo = Topo.Gen.linear ~switches:1 ~hosts_per_switch:1 () in
  let net = Zen.create topo in
  let proxy = Controller.Arp_proxy.create () in
  let _rt = Zen.with_controller net [ Controller.Arp_proxy.app proxy ] in
  let query = Dataplane.Network.make_pkt ~src:1 ~dst:1 () in
  let query_hdr =
    { query.hdr with
      eth_type = 0x0806; ip_proto = 1;
      ip4_dst = Ipv4.of_string "10.250.0.9" }
  in
  Dataplane.Network.send_from (Zen.network net) ~host:1
    { query with hdr = query_hdr };
  ignore (Zen.run ~until:(Zen.now net +. 1.0) net);
  Alcotest.(check int) "unknown counted" 1 (Controller.Arp_proxy.unknown proxy);
  Alcotest.(check int) "nothing answered" 0 (Controller.Arp_proxy.answered proxy)

(* ------------------------------------------------------------------ *)
(* Waypoint verification *)

let test_waypoint () =
  (* linear chain: all h1 -> h3 traffic must traverse the middle switch *)
  let topo = Topo.Gen.linear ~switches:3 ~hosts_per_switch:1 () in
  let net = Zen.create topo in
  ignore (Zen.install_policy net (Netkat.Builder.routing_policy topo));
  let snap = Zen.snapshot net in
  (match Verify.Reach.waypoint snap ~src:1 ~dst:3 ~waypoint:2 with
   | `Enforced -> ()
   | `No_traffic -> Alcotest.fail "expected traffic"
   | `Violated _ -> Alcotest.fail "chain must pass s2");
  (* s1 is not on the h2 -> h3 path *)
  (match Verify.Reach.waypoint snap ~src:2 ~dst:3 ~waypoint:1 with
   | `Violated _ -> ()
   | `Enforced -> Alcotest.fail "s1 cannot be on the path"
   | `No_traffic -> Alcotest.fail "expected traffic");
  (* unreachable flow *)
  let empty_net = Zen.create (Topo.Gen.linear ~switches:3 ~hosts_per_switch:1 ()) in
  match Verify.Reach.waypoint (Zen.snapshot empty_net) ~src:1 ~dst:3 ~waypoint:2 with
  | `No_traffic -> ()
  | `Enforced | `Violated _ -> Alcotest.fail "no rules, no traffic"

let test_waypoint_ring_violation () =
  (* ring: two paths exist; pin routing to one side and check the other
     side's switch is NOT a waypoint *)
  let topo = Topo.Gen.ring ~switches:4 ~hosts_per_switch:1 () in
  let net = Zen.create topo in
  ignore (Zen.install_policy net (Netkat.Builder.routing_policy topo));
  let snap = Zen.snapshot net in
  (* h1 -> h3 goes via s2 or s4 depending on BFS; exactly one of the two
     waypoint checks must be enforced and the other violated *)
  let via_s2 = Verify.Reach.waypoint snap ~src:1 ~dst:3 ~waypoint:2 in
  let via_s4 = Verify.Reach.waypoint snap ~src:1 ~dst:3 ~waypoint:4 in
  let enforced x = x = `Enforced in
  Alcotest.(check bool) "exactly one side" true
    (enforced via_s2 <> enforced via_s4)

let suites =
  [ ( "topo.gen2",
      [ Alcotest.test_case "leaf-spine shape" `Quick test_leaf_spine_shape;
        Alcotest.test_case "leaf-spine ECMP" `Quick test_leaf_spine_paths;
        Alcotest.test_case "jellyfish connected" `Quick
          test_jellyfish_connected_regular;
        Alcotest.test_case "of_spec new" `Quick test_of_spec_new ] );
    ( "controller.tunnel",
      [ Alcotest.test_case "connectivity" `Quick test_tunnels_connectivity;
        Alcotest.test_case "label popped" `Quick test_tunnels_pop_label;
        Alcotest.test_case "core compression" `Quick
          test_tunnels_compress_core ] );
    ( "controller.nat",
      [ Alcotest.test_case "outbound translation" `Quick
          test_nat_outbound_translation;
        Alcotest.test_case "reply translated back" `Quick
          test_nat_reply_translated_back;
        Alcotest.test_case "distinct ports per flow" `Quick
          test_nat_distinct_flows_distinct_ports ] );
    ( "controller.arp",
      [ Alcotest.test_case "answers known" `Quick test_arp_proxy_answers;
        Alcotest.test_case "ignores unknown" `Quick test_arp_proxy_unknown ] );
    ( "verify.waypoint",
      [ Alcotest.test_case "chain waypoint" `Quick test_waypoint;
        Alcotest.test_case "ring violation" `Quick
          test_waypoint_ring_violation ] ) ]
