test/test_te.ml: Alcotest List Node QCheck QCheck_alcotest Te Topo Util
