test/test_verify.ml: Alcotest Dataplane Fields Flow Format Hashtbl Headers Hsa Ipv4 List Mac Netkat Packet Printf QCheck QCheck_alcotest Reach Topo Util Verify
