test/test_openflow.ml: Alcotest Bytes Flow List Message Openflow Packet QCheck QCheck_alcotest Util Wire
