test/test_controller.ml: Alcotest Controller Dataplane Flow List Netkat Network Openflow Packet Printf Topo Traffic
