test/test_update.ml: Alcotest Controller Dataplane Fields Flow Headers List Mac Netkat Openflow Option Packet Printf QCheck QCheck_alcotest Topo Util Zen
