test/test_topo.ml: Alcotest Gen Hashtbl List Option Path Printf QCheck QCheck_alcotest Topo Topology Util
