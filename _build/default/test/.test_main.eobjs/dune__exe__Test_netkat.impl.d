test/test_netkat.ml: Alcotest Builder Fdd Fields Flow Fmt Headers Ipv4 List Local Mac Naive Netkat Packet Parser Printf QCheck QCheck_alcotest Semantics Syntax Topo
