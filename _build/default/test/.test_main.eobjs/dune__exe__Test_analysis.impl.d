test/test_analysis.ml: Alcotest Analysis Fields List Netkat Packet QCheck QCheck_alcotest Semantics Syntax
