test/test_util.ml: Alcotest Array Bits Bytes Gen Heap List Prng QCheck QCheck_alcotest Stats Util
