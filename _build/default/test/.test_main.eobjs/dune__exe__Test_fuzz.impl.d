test/test_fuzz.ml: Alcotest Bytes Char Flow List Netkat Openflow Packet QCheck QCheck_alcotest String Test_netkat Topo
