test/test_transport.ml: Alcotest Dataplane Flow List Netkat Printf Topo
