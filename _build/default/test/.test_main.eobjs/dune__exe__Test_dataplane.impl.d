test/test_dataplane.ml: Alcotest Dataplane Flow List Network Packet Sim Topo Traffic Util
