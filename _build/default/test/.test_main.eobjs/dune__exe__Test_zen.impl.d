test/test_zen.ml: Alcotest Controller Dataplane Flow List Netkat Packet Topo Verify Zen
