test/test_apps.ml: Alcotest Controller Dataplane Fields Flow Hashtbl Ipv4 List Mac Netkat Packet Printf Topo Util Verify Zen
