test/test_global.ml: Alcotest Controller Dataplane Fields Global Headers List Mac Netkat Packet Semantics Syntax Topo Verify Zen
