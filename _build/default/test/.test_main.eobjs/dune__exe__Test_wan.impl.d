test/test_wan.ml: Alcotest List Printf Te Topo Util Zen
