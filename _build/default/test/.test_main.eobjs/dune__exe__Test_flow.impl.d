test/test_flow.ml: Action Alcotest Fields Flow Headers Ipv4 List Option Packet Pattern QCheck QCheck_alcotest Table
