test/test_packet.ml: Alcotest Bytes Char Codec Fields Format Frame Headers Ipv4 List Mac Packet Printf QCheck QCheck_alcotest
