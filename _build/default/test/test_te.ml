(* Tests for traffic engineering: demands, metrics and the three
   allocation schemes (feasibility, fairness, and the ordering claims
   that E6 sweeps). *)

let switches topo = Topo.Topology.switch_ids topo

(* ------------------------------------------------------------------ *)
(* Demands *)

let test_demand_validation () =
  Alcotest.(check bool) "self demand rejected" true
    (match Te.Demand.make ~src:1 ~dst:1 ~rate:1.0 () with
     | exception Invalid_argument _ -> true
     | _ -> false);
  Alcotest.(check bool) "negative rate rejected" true
    (match Te.Demand.make ~src:1 ~dst:2 ~rate:(-1.0) () with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_uniform_matrix () =
  let d = Te.Demand.uniform ~switches:[ 1; 2; 3 ] ~rate:5.0 in
  Alcotest.(check int) "pairs" 6 (List.length d);
  Alcotest.(check (float 1e-9)) "total" 30.0 (Te.Demand.total d)

let test_gravity_properties () =
  let prng = Util.Prng.create 11 in
  let d =
    Te.Demand.gravity ~prng ~switches:[ 1; 2; 3; 4 ] ~total_rate:100.0
      ~priorities:3 ()
  in
  Alcotest.(check int) "pairs" 12 (List.length d);
  Alcotest.(check (float 1e-6)) "mass conserved" 100.0 (Te.Demand.total d);
  List.iter
    (fun (x : Te.Demand.t) ->
      Alcotest.(check bool) "positive" true (x.rate > 0.0);
      Alcotest.(check bool) "priority in range" true
        (x.priority >= 0 && x.priority < 3))
    d

let test_scale () =
  let d = Te.Demand.uniform ~switches:[ 1; 2 ] ~rate:10.0 in
  Alcotest.(check (float 1e-9)) "scaled" 40.0
    (Te.Demand.total (Te.Demand.scale 2.0 d))

(* ------------------------------------------------------------------ *)
(* Schemes: basic sanity on a trivial topology *)

let two_switches_capacity cap =
  let topo = Topo.Topology.create () in
  Topo.Topology.add_link topo
    (Topo.Topology.Node.Switch 1, 1) (Topo.Topology.Node.Switch 2, 1)
    ~capacity:cap ~delay:1e-3;
  topo

let test_single_link_allocation () =
  let topo = two_switches_capacity 10.0 in
  let demands = [ Te.Demand.make ~src:1 ~dst:2 ~rate:4.0 () ] in
  List.iter
    (fun (name, solve) ->
      let a = solve topo demands in
      Alcotest.(check (float 1e-6)) (name ^ " carried") 4.0 (Te.Alloc.carried a);
      Alcotest.(check bool) (name ^ " feasible") true (Te.Alloc.feasible a))
    [ ("ecmp", Te.Ecmp.solve); ("maxmin", Te.Maxmin.solve);
      ("greedy", fun t d -> Te.Greedy_kpath.solve t d) ]

let test_single_link_saturation () =
  let topo = two_switches_capacity 10.0 in
  let demands =
    [ Te.Demand.make ~src:1 ~dst:2 ~rate:8.0 ();
      Te.Demand.make ~src:1 ~dst:2 ~rate:8.0 () ]
  in
  (* max-min: both get 5 *)
  let a = Te.Maxmin.solve topo demands in
  List.iter
    (fun e ->
      Alcotest.(check (float 1e-6)) "fair share" 5.0 (Te.Alloc.allocated_rate e))
    a.entries;
  Alcotest.(check (float 1e-6)) "fairness 1" 1.0 (Te.Alloc.fairness a);
  Alcotest.(check bool) "feasible" true (Te.Alloc.feasible a)

let test_maxmin_respects_demand_caps () =
  let topo = two_switches_capacity 10.0 in
  let demands =
    [ Te.Demand.make ~src:1 ~dst:2 ~rate:2.0 ();
      Te.Demand.make ~src:1 ~dst:2 ~rate:100.0 () ]
  in
  let a = Te.Maxmin.solve topo demands in
  (match a.entries with
   | [ small; big ] ->
     Alcotest.(check (float 1e-6)) "small fully served" 2.0
       (Te.Alloc.allocated_rate small);
     Alcotest.(check (float 1e-6)) "big gets the rest" 8.0
       (Te.Alloc.allocated_rate big)
   | _ -> Alcotest.fail "two entries");
  Alcotest.(check bool) "feasible" true (Te.Alloc.feasible a)

let test_greedy_priorities () =
  (* capacity 10; priority-0 demand of 8 and priority-1 demand of 8:
     the important one is fully served, the other gets the remainder *)
  let topo = two_switches_capacity 10.0 in
  let demands =
    [ Te.Demand.make ~priority:1 ~src:1 ~dst:2 ~rate:8.0 ();
      Te.Demand.make ~priority:0 ~src:1 ~dst:2 ~rate:8.0 () ]
  in
  let a = Te.Greedy_kpath.solve topo demands in
  let by_prio p =
    List.find (fun (e : Te.Alloc.entry) -> e.demand.priority = p) a.entries
  in
  Alcotest.(check (float 1e-6)) "p0 full" 8.0 (Te.Alloc.allocated_rate (by_prio 0));
  Alcotest.(check bool) "p1 remainder" true
    (abs_float (Te.Alloc.allocated_rate (by_prio 1) -. 2.0) < 0.2);
  Alcotest.(check bool) "feasible" true (Te.Alloc.feasible a)

let test_greedy_uses_alternate_paths () =
  (* two disjoint 2-hop paths of capacity 10 between 1 and 4; a single
     demand of 16 needs both *)
  let topo = Topo.Topology.create () in
  let open Topo.Topology in
  let c = 10.0 in
  add_link topo (Node.Switch 1, 1) (Node.Switch 2, 1) ~capacity:c ~delay:1e-3;
  add_link topo (Node.Switch 2, 2) (Node.Switch 4, 1) ~capacity:c ~delay:1e-3;
  add_link topo (Node.Switch 1, 2) (Node.Switch 3, 1) ~capacity:c ~delay:2e-3;
  add_link topo (Node.Switch 3, 2) (Node.Switch 4, 2) ~capacity:c ~delay:2e-3;
  let demands = [ Te.Demand.make ~src:1 ~dst:4 ~rate:16.0 () ] in
  let g = Te.Greedy_kpath.solve topo demands in
  Alcotest.(check bool) "multipath carries > one path" true
    (Te.Alloc.carried g > 10.0 +. 1e-6);
  Alcotest.(check bool) "feasible" true (Te.Alloc.feasible g);
  (* single-path max-min is stuck at one path's capacity *)
  let m = Te.Maxmin.solve topo demands in
  Alcotest.(check (float 1e-6)) "maxmin single path" 10.0 (Te.Alloc.carried m)

let test_ecmp_sheds_overload () =
  let topo = two_switches_capacity 10.0 in
  let demands = [ Te.Demand.make ~src:1 ~dst:2 ~rate:25.0 () ] in
  let a = Te.Ecmp.solve topo demands in
  Alcotest.(check bool) "feasible after shedding" true (Te.Alloc.feasible a);
  Alcotest.(check (float 1e-6)) "carried = capacity" 10.0 (Te.Alloc.carried a)

(* ------------------------------------------------------------------ *)
(* The E6 ordering claims on the B4-like WAN *)

let test_wan_ordering () =
  let topo = Topo.Gen.b4 ~hosts_per_switch:0 () in
  let prng = Util.Prng.create 42 in
  let demands =
    Te.Demand.gravity ~prng ~switches:(switches topo) ~total_rate:300e9
      ~priorities:2 ()
  in
  let e = Te.Ecmp.solve topo demands in
  let m = Te.Maxmin.solve topo demands in
  let g = Te.Greedy_kpath.solve topo demands in
  List.iter
    (fun (name, (a : Te.Alloc.t)) ->
      Alcotest.(check bool) (name ^ " feasible") true (Te.Alloc.feasible a))
    [ ("ecmp", e); ("maxmin", m); ("greedy", g) ];
  (* at heavy load: multipath > single-path shortest > oblivious ECMP *)
  Alcotest.(check bool) "greedy > ecmp" true
    (Te.Alloc.carried g > Te.Alloc.carried e);
  Alcotest.(check bool) "maxmin > ecmp" true
    (Te.Alloc.carried m > Te.Alloc.carried e)

let test_light_load_all_equal () =
  (* far below capacity every scheme satisfies all demands *)
  let topo = Topo.Gen.b4 ~hosts_per_switch:0 () in
  let prng = Util.Prng.create 7 in
  let demands =
    Te.Demand.gravity ~prng ~switches:(switches topo) ~total_rate:1e9 ()
  in
  let total = Te.Demand.total demands in
  List.iter
    (fun (name, solve) ->
      let a = solve topo demands in
      Alcotest.(check bool)
        (name ^ " carries everything")
        true
        (abs_float (Te.Alloc.carried a -. total) < total *. 0.01))
    [ ("ecmp", Te.Ecmp.solve); ("maxmin", Te.Maxmin.solve);
      ("greedy", fun t d -> Te.Greedy_kpath.solve t d) ]

(* properties *)

let prop_feasibility =
  QCheck.Test.make ~name:"all schemes produce feasible allocations" ~count:30
    (QCheck.make QCheck.Gen.(pair (int_bound 10000) (float_range 1e9 500e9)))
    (fun (seed, total_rate) ->
      let topo = Topo.Gen.abilene ~hosts_per_switch:0 () in
      let prng = Util.Prng.create seed in
      let demands =
        Te.Demand.gravity ~prng ~switches:(switches topo) ~total_rate
          ~priorities:3 ()
      in
      Te.Alloc.feasible (Te.Ecmp.solve topo demands)
      && Te.Alloc.feasible (Te.Maxmin.solve topo demands)
      && Te.Alloc.feasible (Te.Greedy_kpath.solve topo demands))

let prop_no_overservice =
  QCheck.Test.make ~name:"no demand receives more than it asked" ~count:20
    (QCheck.make (QCheck.Gen.int_bound 10000))
    (fun seed ->
      let topo = Topo.Gen.abilene ~hosts_per_switch:0 () in
      let prng = Util.Prng.create seed in
      let demands =
        Te.Demand.gravity ~prng ~switches:(switches topo) ~total_rate:200e9 ()
      in
      List.for_all
        (fun (a : Te.Alloc.t) ->
          List.for_all
            (fun (e : Te.Alloc.entry) ->
              Te.Alloc.allocated_rate e <= e.demand.rate +. 1.0 (* 1 bit/s slack *))
            a.entries)
        [ Te.Maxmin.solve topo demands; Te.Greedy_kpath.solve topo demands ])

let suites =
  [ ( "te.demand",
      [ Alcotest.test_case "validation" `Quick test_demand_validation;
        Alcotest.test_case "uniform matrix" `Quick test_uniform_matrix;
        Alcotest.test_case "gravity model" `Quick test_gravity_properties;
        Alcotest.test_case "scaling" `Quick test_scale ] );
    ( "te.schemes",
      [ Alcotest.test_case "single link" `Quick test_single_link_allocation;
        Alcotest.test_case "saturation fair share" `Quick
          test_single_link_saturation;
        Alcotest.test_case "maxmin demand caps" `Quick
          test_maxmin_respects_demand_caps;
        Alcotest.test_case "greedy priorities" `Quick test_greedy_priorities;
        Alcotest.test_case "greedy multipath" `Quick
          test_greedy_uses_alternate_paths;
        Alcotest.test_case "ecmp sheds overload" `Quick test_ecmp_sheds_overload;
        Alcotest.test_case "WAN ordering at load" `Quick test_wan_ordering;
        Alcotest.test_case "light load ties" `Quick test_light_load_all_equal;
        QCheck_alcotest.to_alcotest prop_feasibility;
        QCheck_alcotest.to_alcotest prop_no_overservice ] ) ]
