(* Tests for addresses, header records, frames and the binary codec. *)

open Packet

(* ------------------------------------------------------------------ *)
(* Mac *)

let test_mac_string_roundtrip () =
  let s = "0a:1b:2c:3d:4e:5f" in
  Alcotest.(check string) "roundtrip" s (Mac.to_string (Mac.of_string s))

let test_mac_octets () =
  Alcotest.(check int) "value" 0x0102030405ff
    (Mac.of_octets 1 2 3 4 5 0xff)

let test_mac_classes () =
  Alcotest.(check bool) "broadcast" true (Mac.is_broadcast Mac.broadcast);
  Alcotest.(check bool) "multicast bit" true
    (Mac.is_multicast (Mac.of_string "01:00:5e:00:00:01"));
  Alcotest.(check bool) "unicast" false
    (Mac.is_multicast (Mac.of_string "02:00:00:00:00:01"))

let test_mac_invalid () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "reject %S" s)
        true
        (match Mac.of_string s with
         | exception Invalid_argument _ -> true
         | _ -> false))
    [ "a:b"; "gg:00:00:00:00:00"; "1:2:3:4:5"; "01:02:03:04:05:06:07"; "" ]

let test_mac_host_id () =
  Alcotest.(check string) "derived" "02:00:00:00:01:00"
    (Mac.to_string (Mac.of_host_id 256));
  Alcotest.(check bool) "locally administered, unicast" false
    (Mac.is_multicast (Mac.of_host_id 77))

(* ------------------------------------------------------------------ *)
(* Ipv4 *)

let test_ip_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Ipv4.to_string (Ipv4.of_string s)))
    [ "0.0.0.0"; "255.255.255.255"; "10.1.2.3"; "192.168.0.1" ]

let test_ip_invalid () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "reject %S" s)
        true
        (match Ipv4.of_string s with
         | exception Invalid_argument _ -> true
         | _ -> false))
    [ "1.2.3"; "256.0.0.1"; "a.b.c.d"; "1.2.3.4.5"; "" ]

let test_prefix_matching () =
  let p = Ipv4.Prefix.of_string "10.0.0.0/8" in
  Alcotest.(check bool) "inside" true
    (Ipv4.Prefix.matches p (Ipv4.of_string "10.255.1.2"));
  Alcotest.(check bool) "outside" false
    (Ipv4.Prefix.matches p (Ipv4.of_string "11.0.0.1"));
  let host = Ipv4.Prefix.of_string "10.0.0.1" in
  Alcotest.(check int) "bare address is /32" 32 (Ipv4.Prefix.length host)

let test_prefix_normalization () =
  let p = Ipv4.Prefix.make (Ipv4.of_string "10.1.2.3") 8 in
  Alcotest.(check string) "host bits cleared" "10.0.0.0/8"
    (Ipv4.Prefix.to_string p)

let test_prefix_subset_overlap () =
  let p8 = Ipv4.Prefix.of_string "10.0.0.0/8" in
  let p16 = Ipv4.Prefix.of_string "10.1.0.0/16" in
  let other = Ipv4.Prefix.of_string "192.168.0.0/16" in
  Alcotest.(check bool) "subset" true (Ipv4.Prefix.subset ~of_:p8 p16);
  Alcotest.(check bool) "not subset" false (Ipv4.Prefix.subset ~of_:p16 p8);
  Alcotest.(check bool) "overlap nested" true (Ipv4.Prefix.overlap p8 p16);
  Alcotest.(check bool) "no overlap" false (Ipv4.Prefix.overlap p8 other)

let test_prefix_zero_length () =
  Alcotest.(check bool) "matches everything" true
    (Ipv4.Prefix.matches Ipv4.Prefix.any (Ipv4.of_string "1.2.3.4"))

(* ------------------------------------------------------------------ *)
(* Headers and fields *)

let test_fields_get_set () =
  let h = Headers.default in
  List.iter
    (fun f ->
      let h' = Headers.set h f 42 in
      Alcotest.(check int) (Fields.to_string f) 42 (Headers.get h' f))
    Fields.all

let test_fields_order_stable () =
  (* the FDD variable order depends on this order: lock it down *)
  Alcotest.(check (list int)) "indices" (List.init 11 (fun i -> i))
    (List.map Fields.index Fields.all)

let test_fields_string_roundtrip () =
  List.iter
    (fun f ->
      Alcotest.(check bool) (Fields.to_string f) true
        (Fields.equal f (Fields.of_string (Fields.to_string f))))
    Fields.all

let test_headers_set_does_not_leak () =
  let h = Headers.tcp ~switch:1 ~in_port:2 ~src_host:3 ~dst_host:4
            ~tp_src:5 ~tp_dst:6 in
  let h' = Headers.set h Fields.Tp_dst 99 in
  Alcotest.(check int) "other fields intact" h.tp_src h'.tp_src;
  Alcotest.(check int) "original unchanged" 6 h.tp_dst

(* ------------------------------------------------------------------ *)
(* Frames and codec *)

let mac1 = Mac.of_string "02:00:00:00:00:01"
let mac2 = Mac.of_string "02:00:00:00:00:02"
let ip1 = Ipv4.of_string "10.0.0.1"
let ip2 = Ipv4.of_string "10.0.0.2"

let frame_eq = Alcotest.testable (fun fmt (_ : Frame.t) ->
  Format.pp_print_string fmt "<frame>") ( = )

let roundtrip name frame =
  Alcotest.check frame_eq name frame (Codec.decode (Codec.encode frame))

let test_codec_tcp () =
  roundtrip "tcp"
    (Frame.tcp_packet ~eth_src:mac1 ~eth_dst:mac2 ~ip_src:ip1 ~ip_dst:ip2
       ~tp_src:1234 ~tp_dst:80 ~payload:(Bytes.of_string "hello") ())

let test_codec_udp () =
  roundtrip "udp"
    (Frame.udp_packet ~eth_src:mac1 ~eth_dst:mac2 ~ip_src:ip1 ~ip_dst:ip2
       ~tp_src:53 ~tp_dst:5353 ~payload:(Bytes.of_string "dns?") ())

let test_codec_icmp () =
  roundtrip "icmp echo"
    (Frame.icmp_echo ~eth_src:mac1 ~eth_dst:mac2 ~ip_src:ip1 ~ip_dst:ip2 ());
  roundtrip "icmp reply"
    (Frame.icmp_echo ~reply:true ~eth_src:mac1 ~eth_dst:mac2 ~ip_src:ip1
       ~ip_dst:ip2 ())

let test_codec_arp () =
  roundtrip "arp request" (Frame.arp_query ~sha:mac1 ~spa:ip1 ~tpa:ip2);
  roundtrip "arp reply"
    (Frame.arp_answer ~sha:mac2 ~spa:ip2 ~tha:mac1 ~tpa:ip1)

let test_codec_vlan () =
  roundtrip "vlan tagged"
    (Frame.tcp_packet ~vlan:(Some 42) ~eth_src:mac1 ~eth_dst:mac2 ~ip_src:ip1
       ~ip_dst:ip2 ~tp_src:1 ~tp_dst:2 ())

let test_codec_raw () =
  roundtrip "unknown ethertype"
    { Frame.eth_src = mac1; eth_dst = mac2; vlan = None;
      eth_payload = Frame.Eth_raw (0x88cc, Bytes.of_string "lldp-ish") };
  roundtrip "unknown ip proto"
    { Frame.eth_src = mac1; eth_dst = mac2; vlan = None;
      eth_payload =
        Frame.Ip
          { ip_src = ip1; ip_dst = ip2; ttl = 3; ident = 9; dscp = 1;
            ip_payload = Frame.Ip_raw (89, Bytes.of_string "ospf") } }

let test_codec_size_agrees () =
  let f =
    Frame.tcp_packet ~eth_src:mac1 ~eth_dst:mac2 ~ip_src:ip1 ~ip_dst:ip2
      ~tp_src:1 ~tp_dst:2 ~payload:(Bytes.make 37 'x') ()
  in
  Alcotest.(check int) "size" (Bytes.length (Codec.encode f)) (Frame.size f);
  let v =
    Frame.tcp_packet ~vlan:(Some 7) ~eth_src:mac1 ~eth_dst:mac2 ~ip_src:ip1
      ~ip_dst:ip2 ~tp_src:1 ~tp_dst:2 ()
  in
  Alcotest.(check int) "vlan size" (Bytes.length (Codec.encode v)) (Frame.size v)

let test_codec_rejects_corrupt () =
  let f =
    Frame.tcp_packet ~eth_src:mac1 ~eth_dst:mac2 ~ip_src:ip1 ~ip_dst:ip2
      ~tp_src:1 ~tp_dst:2 ()
  in
  let b = Codec.encode f in
  (* corrupt the IP checksum *)
  Bytes.set b 24 (Char.chr (Char.code (Bytes.get b 24) lxor 0xff));
  Alcotest.(check bool) "bad checksum rejected" true
    (match Codec.decode b with
     | exception Codec.Parse_error _ -> true
     | _ -> false);
  Alcotest.(check bool) "truncated rejected" true
    (match Codec.decode (Bytes.sub (Codec.encode f) 0 20) with
     | exception Codec.Parse_error _ -> true
     | _ -> false)

let test_to_headers () =
  let f =
    Frame.tcp_packet ~eth_src:mac1 ~eth_dst:mac2 ~ip_src:ip1 ~ip_dst:ip2
      ~tp_src:1234 ~tp_dst:80 ()
  in
  let h = Frame.to_headers ~switch:7 ~in_port:3 f in
  Alcotest.(check int) "switch" 7 h.switch;
  Alcotest.(check int) "port" 3 h.in_port;
  Alcotest.(check int) "ethtype" 0x0800 h.eth_type;
  Alcotest.(check int) "proto" 6 h.ip_proto;
  Alcotest.(check int) "tp_dst" 80 h.tp_dst;
  Alcotest.(check int) "vlan none" Fields.vlan_none h.vlan

let test_to_headers_arp () =
  let f = Frame.arp_query ~sha:mac1 ~spa:ip1 ~tpa:ip2 in
  let h = Frame.to_headers ~switch:1 ~in_port:1 f in
  Alcotest.(check int) "ethtype arp" 0x0806 h.eth_type;
  Alcotest.(check int) "spa as ip4src" ip1 h.ip4_src;
  Alcotest.(check int) "tpa as ip4dst" ip2 h.ip4_dst

(* property: random frames roundtrip *)

let gen_frame =
  let open QCheck.Gen in
  let mac = map (fun i -> 0x020000000000 lor i) (int_bound 0xffffff) in
  let ip = int_bound 0xffffff in
  let small_payload = map Bytes.of_string (string_size (0 -- 32)) in
  let vlan = opt (int_range 1 4094) in
  let tcp =
    map2
      (fun (src, dst) ((a, b), payload) ->
        Frame.tcp_packet ~eth_src:src ~eth_dst:dst ~ip_src:a ~ip_dst:b
          ~tp_src:1 ~tp_dst:2 ~payload ())
      (pair mac mac)
      (pair (pair ip ip) small_payload)
  in
  let udp =
    map2
      (fun (src, dst) ((a, b), payload) ->
        Frame.udp_packet ~eth_src:src ~eth_dst:dst ~ip_src:a ~ip_dst:b
          ~tp_src:7 ~tp_dst:9 ~payload ())
      (pair mac mac)
      (pair (pair ip ip) small_payload)
  in
  let arp =
    map2
      (fun (src, dst) (a, b) ->
        if a mod 2 = 0 then Frame.arp_query ~sha:src ~spa:a ~tpa:b
        else Frame.arp_answer ~sha:src ~spa:a ~tha:dst ~tpa:b)
      (pair mac mac) (pair ip ip)
  in
  let with_vlan g = map2 (fun v (f : Frame.t) -> { f with vlan = v }) vlan g in
  oneof [ with_vlan tcp; with_vlan udp; arp ]

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"codec roundtrips random frames" ~count:500
    (QCheck.make gen_frame)
    (fun f -> Codec.decode (Codec.encode f) = f)

(* the same property through the pooled single-pass path: encode_into a
   dirty reused buffer, decode the exact slice back *)
let prop_codec_roundtrip_pooled =
  QCheck.Test.make ~name:"pooled encode_into roundtrips random frames"
    ~count:500 (QCheck.make gen_frame)
    (fun f ->
      let pool = Util.Bufpool.create () in
      Util.Bufpool.with_buf pool (Frame.size f + 7) (fun buf ->
        (* poison so any byte encode_into fails to write is caught *)
        Bytes.fill buf 0 (Bytes.length buf) '\xff';
        let n = Codec.encode_into f buf 7 in
        n = Frame.size f
        && Bytes.equal (Bytes.sub buf 7 n) (Codec.encode f)
        && Codec.decode (Bytes.sub buf 7 n) = f))

(* regression: payloads that overflow a 16-bit wire length must raise
   instead of truncating silently (corrupt frames used to decode as a
   different packet) *)
let test_encode_rejects_oversize () =
  let rejects name f =
    Alcotest.(check bool) name true
      (match Codec.encode f with
       | exception Codec.Parse_error _ -> true
       | _ -> false)
  in
  let huge = Bytes.create 0x10000 in
  rejects "tcp payload over ipv4 total"
    (Frame.tcp_packet ~eth_src:mac1 ~eth_dst:mac2 ~ip_src:ip1 ~ip_dst:ip2
       ~tp_src:1 ~tp_dst:2 ~payload:(Bytes.create (0x10000 - 20)) ());
  rejects "udp length over u16"
    (Frame.udp_packet ~eth_src:mac1 ~eth_dst:mac2 ~ip_src:ip1 ~ip_dst:ip2
       ~tp_src:1 ~tp_dst:2 ~payload:(Bytes.create (0x10000 - 8)) ());
  rejects "raw ip payload over ipv4 total"
    { eth_src = mac1; eth_dst = mac2; vlan = None;
      eth_payload =
        Ip
          { ip_src = ip1; ip_dst = ip2; ttl = 64; ident = 0; dscp = 0;
            ip_payload = Ip_raw (99, huge) } };
  (* the largest encodable payloads still encode *)
  let fits =
    Frame.udp_packet ~eth_src:mac1 ~eth_dst:mac2 ~ip_src:ip1 ~ip_dst:ip2
      ~tp_src:1 ~tp_dst:2 ~payload:(Bytes.create (0xffff - 20 - 8)) ()
  in
  Alcotest.(check bool) "max udp payload encodes" true
    (Codec.decode (Codec.encode fits) = fits)

let test_encode_into_bounds () =
  let f =
    Frame.udp_packet ~eth_src:mac1 ~eth_dst:mac2 ~ip_src:ip1 ~ip_dst:ip2
      ~tp_src:1 ~tp_dst:2 ()
  in
  let small = Bytes.create (Frame.size f - 1) in
  Alcotest.(check bool) "short buffer rejected" true
    (match Codec.encode_into f small 0 with
     | exception Invalid_argument _ -> true
     | _ -> false);
  let exact = Bytes.create (Frame.size f) in
  Alcotest.(check bool) "negative offset rejected" true
    (match Codec.encode_into f exact (-1) with
     | exception Invalid_argument _ -> true
     | _ -> false);
  Alcotest.(check int) "exact fit writes size" (Frame.size f)
    (Codec.encode_into f exact 0)

let suites =
  [ ( "packet.mac",
      [ Alcotest.test_case "string roundtrip" `Quick test_mac_string_roundtrip;
        Alcotest.test_case "octets" `Quick test_mac_octets;
        Alcotest.test_case "broadcast/multicast" `Quick test_mac_classes;
        Alcotest.test_case "invalid strings" `Quick test_mac_invalid;
        Alcotest.test_case "host-id addresses" `Quick test_mac_host_id ] );
    ( "packet.ipv4",
      [ Alcotest.test_case "string roundtrip" `Quick test_ip_string_roundtrip;
        Alcotest.test_case "invalid strings" `Quick test_ip_invalid;
        Alcotest.test_case "prefix matching" `Quick test_prefix_matching;
        Alcotest.test_case "prefix normalization" `Quick
          test_prefix_normalization;
        Alcotest.test_case "prefix subset/overlap" `Quick
          test_prefix_subset_overlap;
        Alcotest.test_case "zero-length prefix" `Quick test_prefix_zero_length ] );
    ( "packet.headers",
      [ Alcotest.test_case "get/set all fields" `Quick test_fields_get_set;
        Alcotest.test_case "field order locked" `Quick test_fields_order_stable;
        Alcotest.test_case "field name roundtrip" `Quick
          test_fields_string_roundtrip;
        Alcotest.test_case "set is functional" `Quick
          test_headers_set_does_not_leak ] );
    ( "packet.codec",
      [ Alcotest.test_case "tcp roundtrip" `Quick test_codec_tcp;
        Alcotest.test_case "udp roundtrip" `Quick test_codec_udp;
        Alcotest.test_case "icmp roundtrip" `Quick test_codec_icmp;
        Alcotest.test_case "arp roundtrip" `Quick test_codec_arp;
        Alcotest.test_case "vlan roundtrip" `Quick test_codec_vlan;
        Alcotest.test_case "raw payloads" `Quick test_codec_raw;
        Alcotest.test_case "size agrees with encode" `Quick
          test_codec_size_agrees;
        Alcotest.test_case "rejects corrupt input" `Quick
          test_codec_rejects_corrupt;
        Alcotest.test_case "to_headers projection" `Quick test_to_headers;
        Alcotest.test_case "to_headers for arp" `Quick test_to_headers_arp;
        Alcotest.test_case "rejects oversize payloads" `Quick
          test_encode_rejects_oversize;
        Alcotest.test_case "encode_into bounds" `Quick test_encode_into_bounds;
        QCheck_alcotest.to_alcotest prop_codec_roundtrip;
        QCheck_alcotest.to_alcotest prop_codec_roundtrip_pooled ] ) ]
