(* Incremental delta recompilation ({!Netkat.Delta}): uid certificates
   skip untouched switches, structural fallback survives cache clears,
   and delta-maintained tables stay byte-equal to a from-scratch compile
   at every step of a churn sequence. *)

open Packet
module Syntax = Netkat.Syntax
module Fdd = Netkat.Fdd
module Local = Netkat.Local
module Delta = Netkat.Delta

let triples rules =
  List.map (fun (r : Local.rule) -> (r.priority, r.pattern, r.actions)) rules

(* ------------------------------------------------------------------ *)
(* Directed *)

let test_edit_skips_other_switches () =
  let topo = Topo.Gen.linear ~switches:4 ~hosts_per_switch:2 () in
  let switches = Topo.Topology.switch_ids topo in
  let base = Fdd.of_policy (Netkat.Builder.routing_policy topo) in
  let r0 = Delta.compile ~switches None base in
  Alcotest.(check int) "first compile re-derives everything"
    (List.length switches) r0.rederived;
  (* drop one destination at switch 2 only *)
  let guard =
    Syntax.filter
      (Syntax.neg
         (Syntax.conj
            (Syntax.test Fields.Switch 2)
            (Syntax.test Fields.Eth_dst (Mac.of_host_id 1))))
  in
  let edited = Fdd.seq (Fdd.of_policy guard) base in
  let r1 = Delta.compile ~switches (Some r0.snapshot) edited in
  Alcotest.(check int) "all other switches skipped"
    (List.length switches - 1) r1.skipped;
  Alcotest.(check int) "one switch re-derived" 1 r1.rederived;
  List.iter
    (fun (sw, change) ->
      match (change : Delta.change) with
      | Delta.Unchanged ->
        Alcotest.(check bool) "switch 2 must not be Unchanged" false (sw = 2)
      | Delta.Changed _ -> Alcotest.(check int) "only switch 2 changed" 2 sw)
    r1.changes;
  (* the new snapshot's tables are byte-equal to a from-scratch compile *)
  List.iter
    (fun (sw, rules) ->
      Alcotest.(check bool)
        (Printf.sprintf "switch %d equals scratch" sw)
        true
        (Delta.find r1.snapshot sw = Some rules))
    (Local.rules_of_fdd_all ~switches edited)

let test_clear_cache_structural_fallback () =
  let topo = Topo.Gen.linear ~switches:3 ~hosts_per_switch:1 () in
  let switches = Topo.Topology.switch_ids topo in
  let pol = Netkat.Builder.routing_policy topo in
  let r0 = Delta.compile ~switches None (Fdd.of_policy pol) in
  (* a cache clear wipes the hash-cons tables: re-deriving the same
     policy yields fresh uids, so the uid fast path misses — the
     structural rule comparison must still report every switch
     unchanged and push nothing *)
  Fdd.clear_cache ();
  let r1 = Delta.compile ~switches (Some r0.snapshot) (Fdd.of_policy pol) in
  Alcotest.(check int) "no switch re-reported as changed" 0 r1.rederived;
  Alcotest.(check int) "no adds" 0 r1.n_adds;
  Alcotest.(check int) "no deletes" 0 r1.n_deletes;
  (* the refreshed certificates work again: same diagram, all-skip *)
  let fdd = Fdd.of_policy pol in
  let r2 = Delta.compile ~switches (Some r1.snapshot) fdd in
  Alcotest.(check int) "refreshed uids certify" 0 r2.rederived

let test_new_switch_appears_and_leaves () =
  let topo = Topo.Gen.linear ~switches:3 ~hosts_per_switch:1 () in
  let pol = Netkat.Builder.routing_policy topo in
  let fdd = Fdd.of_policy pol in
  let r0 = Delta.compile ~switches:[ 1; 2 ] None fdd in
  let r1 = Delta.compile ~switches:[ 1; 2; 3 ] (Some r0.snapshot) fdd in
  Alcotest.(check int) "known switches skipped" 2 r1.skipped;
  (match List.assoc 3 r1.changes with
   | Delta.Changed { rules; adds; deletes } ->
     Alcotest.(check bool) "new switch: full table as adds" true (adds = rules);
     Alcotest.(check int) "new switch: no deletes" 0 (List.length deletes)
   | Delta.Unchanged -> Alcotest.fail "new switch reported Unchanged");
  (* a switch dropped from the set leaves the snapshot *)
  let r2 = Delta.compile ~switches:[ 1; 2 ] (Some r1.snapshot) fdd in
  Alcotest.(check bool) "departed switch forgotten" true
    (Delta.find r2.snapshot 3 = None)

let test_diff_rules () =
  let mk priority tp actions =
    { Local.priority; pattern = { Flow.Pattern.any with tp_dst = Some tp };
      actions }
  in
  let old_rules =
    [ mk 3 1 (Flow.Action.forward 1); mk 2 2 (Flow.Action.forward 2);
      mk 1 3 [] ]
  in
  let new_rules =
    [ mk 3 1 (Flow.Action.forward 9) (* actions changed -> modify *);
      mk 2 2 (Flow.Action.forward 2) (* identical -> nothing *);
      mk 1 4 [] (* new key -> add; old (1, tp=3) -> strict delete *) ]
  in
  let adds, deletes = Delta.diff_rules old_rules new_rules in
  Alcotest.(check bool) "adds = changed + new" true
    (triples adds
     = triples [ mk 3 1 (Flow.Action.forward 9); mk 1 4 [] ]);
  Alcotest.(check bool) "deletes = vanished keys" true
    (triples deletes = triples [ mk 1 3 [] ])

(* ------------------------------------------------------------------ *)
(* Property: a churn sequence maintained by deltas is byte-equal to a
   from-scratch compile at every step — at 1 and 4 domains, with and
   without interleaved cache clears *)

let apply_change old_rules = function
  | Delta.Unchanged -> old_rules
  | Delta.Changed { adds; deletes; _ } ->
    let key (r : Local.rule) = (r.priority, r.pattern) in
    let dead = List.map key deletes @ List.map key adds in
    adds @ List.filter (fun r -> not (List.mem (key r) dead)) old_rules

let prop_churn ~domains ~clears name =
  QCheck.Test.make ~name ~count:25
    (QCheck.make
       ~print:(fun pols ->
         String.concat " ;; " (List.map Syntax.pol_to_string pols))
       (QCheck.Gen.list_size (QCheck.Gen.int_range 2 5)
          Test_netkat.local_pol_gen))
    (fun pols ->
      let switches = [ 0; 1; 2; 3 ] in
      let pool =
        if domains <= 1 then None
        else Some (Util.Pool.create ~domains ())
      in
      Fun.protect
        ~finally:(fun () -> Option.iter Util.Pool.shutdown pool)
        (fun () ->
          (* cumulative edits: step i's diagram shares structure with
             step i-1's, like a real churn stream *)
          let steps =
            List.fold_left
              (fun acc p ->
                match acc with
                | [] -> [ p ]
                | prev :: _ -> Syntax.union prev p :: acc)
              [] pols
            |> List.rev
          in
          let tables = Hashtbl.create 8 in
          let snap = ref None in
          List.iteri
            (fun i pol ->
              if clears && i mod 2 = 1 then Fdd.clear_cache ();
              let fdd = Fdd.of_policy pol in
              let result = Delta.compile ?pool ~switches !snap fdd in
              snap := Some result.snapshot;
              List.iter
                (fun (sw, change) ->
                  let old_rules =
                    Option.value ~default:[] (Hashtbl.find_opt tables sw)
                  in
                  (match (change : Delta.change) with
                   | Delta.Unchanged -> ()
                   | Delta.Changed { rules; _ } ->
                     (* the emitted delta must reconstruct the full table *)
                     let applied = apply_change old_rules change in
                     if
                       List.sort compare (triples applied)
                       <> List.sort compare (triples rules)
                     then
                       QCheck.Test.fail_reportf
                         "delta does not reconstruct table (step %d, switch %d)"
                         i sw;
                     Hashtbl.replace tables sw rules))
                result.changes;
              (* ...and every switch (including skipped ones) must equal
                 a from-scratch compile of this step's policy *)
              List.iter
                (fun (sw, rules) ->
                  let got =
                    Option.value ~default:[] (Hashtbl.find_opt tables sw)
                  in
                  if got <> rules then
                    QCheck.Test.fail_reportf
                      "incremental <> scratch (step %d, switch %d)" i sw)
                (Local.rules_of_fdd_all ~switches fdd))
            steps;
          true))

let suites =
  [ ( "netkat.delta",
      [ Alcotest.test_case "edit skips other switches" `Quick
          test_edit_skips_other_switches;
        Alcotest.test_case "clear_cache structural fallback" `Quick
          test_clear_cache_structural_fallback;
        Alcotest.test_case "new switch appears and leaves" `Quick
          test_new_switch_appears_and_leaves;
        Alcotest.test_case "diff_rules" `Quick test_diff_rules;
        QCheck_alcotest.to_alcotest
          (prop_churn ~domains:1 ~clears:false
             "churn ≡ scratch at every step (1 domain)");
        QCheck_alcotest.to_alcotest
          (prop_churn ~domains:4 ~clears:false
             "churn ≡ scratch at every step (4 domains)");
        QCheck_alcotest.to_alcotest
          (prop_churn ~domains:1 ~clears:true
             "churn ≡ scratch across cache clears (1 domain)");
        QCheck_alcotest.to_alcotest
          (prop_churn ~domains:4 ~clears:true
             "churn ≡ scratch across cache clears (4 domains)") ] ) ]
