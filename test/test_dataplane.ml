(* Tests for the discrete-event engine and the simulated network. *)

open Dataplane

(* ------------------------------------------------------------------ *)
(* Sim engine *)

let test_sim_order () =
  let s = Sim.create () in
  let log = ref [] in
  Sim.schedule s ~delay:0.3 (fun () -> log := 3 :: !log);
  Sim.schedule s ~delay:0.1 (fun () -> log := 1 :: !log);
  Sim.schedule s ~delay:0.2 (fun () -> log := 2 :: !log);
  ignore (Sim.run s);
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last event" 0.3 (Sim.now s)

let test_sim_ties_fifo () =
  let s = Sim.create () in
  let log = ref [] in
  List.iter
    (fun i -> Sim.schedule s ~delay:1.0 (fun () -> log := i :: !log))
    [ 1; 2; 3 ];
  ignore (Sim.run s);
  Alcotest.(check (list int)) "fifo ties" [ 1; 2; 3 ] (List.rev !log)

let test_sim_until () =
  let s = Sim.create () in
  let fired = ref 0 in
  Sim.schedule s ~delay:1.0 (fun () -> incr fired);
  Sim.schedule s ~delay:2.0 (fun () -> incr fired);
  ignore (Sim.run ~until:1.5 s);
  Alcotest.(check int) "only first" 1 !fired;
  Alcotest.(check (float 1e-9)) "clock clamped" 1.5 (Sim.now s);
  Alcotest.(check int) "second still queued" 1 (Sim.pending s);
  ignore (Sim.run s);
  Alcotest.(check int) "resumable" 2 !fired

let test_sim_nested_scheduling () =
  let s = Sim.create () in
  let times = ref [] in
  Sim.schedule s ~delay:1.0 (fun () ->
    times := Sim.now s :: !times;
    Sim.schedule s ~delay:0.5 (fun () -> times := Sim.now s :: !times));
  ignore (Sim.run s);
  Alcotest.(check (list (float 1e-9))) "nested" [ 1.0; 1.5 ] (List.rev !times)

let test_sim_negative_delay_rejected () =
  let s = Sim.create () in
  Alcotest.(check bool) "rejected" true
    (match Sim.schedule s ~delay:(-1.0) (fun () -> ()) with
     | exception Invalid_argument _ -> true
     | () -> false)

let test_sim_every () =
  let s = Sim.create () in
  let n = ref 0 in
  Sim.every s ~every:1.0 (fun () ->
    incr n;
    !n < 5);
  ignore (Sim.run s);
  Alcotest.(check int) "five ticks" 5 !n

let test_sim_max_events () =
  let s = Sim.create () in
  let rec forever () = Sim.schedule s ~delay:1.0 forever in
  forever ();
  let executed = Sim.run ~max_events:10 s in
  Alcotest.(check int) "bounded" 10 executed

(* wheel and heap engines must produce identical execution traces —
   same handlers, same clock readings, ties in the same order — for a
   schedule mixing near events, exact duplicates, and nested
   rescheduling *)
let test_sim_engine_equivalence () =
  let trace engine =
    let s = Sim.create ~engine () in
    let log = ref [] in
    let prng = Util.Prng.create 42 in
    let delays = List.init 150 (fun _ -> Util.Prng.float prng 0.03) in
    List.iteri
      (fun i d ->
        Sim.schedule s ~delay:d (fun () ->
          log := (i, Sim.now s) :: !log;
          if i mod 7 = 0 then
            Sim.schedule s ~delay:(d /. 3.0) (fun () ->
              log := (1000 + i, Sim.now s) :: !log)))
      (delays @ delays) (* duplicates force key ties *);
    ignore (Sim.run s);
    List.rev !log
  in
  let w = trace `Wheel and h = trace `Heap in
  Alcotest.(check int) "same event count" (List.length h) (List.length w);
  Alcotest.(check bool) "identical execution traces" true (w = h)

let test_sim_run_batch () =
  let s = Sim.create () in
  let log = ref [] in
  Sim.schedule s ~delay:1.0 (fun () ->
    log := "a" :: !log;
    (* same-instant event scheduled from inside the batch joins it *)
    Sim.schedule s ~delay:0.0 (fun () -> log := "a2" :: !log));
  Sim.schedule s ~delay:1.0 (fun () -> log := "b" :: !log);
  Sim.schedule s ~delay:2.0 (fun () -> log := "c" :: !log);
  Alcotest.(check int) "first batch drains t=1" 3 (Sim.run_batch s);
  Alcotest.(check (float 1e-9)) "clock at batch time" 1.0 (Sim.now s);
  Alcotest.(check (list string)) "ties in schedule order, nested last"
    [ "a"; "b"; "a2" ] (List.rev !log);
  Alcotest.(check int) "later event stays queued" 1 (Sim.pending s);
  Alcotest.(check int) "second batch" 1 (Sim.run_batch s);
  Alcotest.(check int) "empty queue" 0 (Sim.run_batch s)

(* ------------------------------------------------------------------ *)
(* Network forwarding *)

let wildcard_forward net sw_id port =
  let sw = Network.switch net sw_id in
  Flow.Table.add sw.table
    (Flow.Table.make_rule ~pattern:Flow.Pattern.any
       ~actions:(Flow.Action.forward port) ())

let test_direct_delivery () =
  (* h1 - s1 - h2: static rule forwards everything to h2's port *)
  let topo = Topo.Gen.linear ~switches:1 ~hosts_per_switch:2 () in
  let net = Network.create topo in
  (* s1 ports: 1 -> h1, 2 -> h2 *)
  wildcard_forward net 1 2;
  let received = ref 0 in
  (Network.host net 2).on_receive <- Some (fun _ -> incr received);
  Network.send_from net ~host:1 (Network.make_pkt ~src:1 ~dst:2 ());
  ignore (Network.run net ());
  Alcotest.(check int) "delivered" 1 !received;
  Alcotest.(check int) "stats delivered" 1 (Network.stats net).delivered;
  Alcotest.(check int) "forwarded" 1 (Network.stats net).forwarded

let test_latency_model () =
  (* two hops of 10us propagation + serialization 1000B at 1Gb/s = 8us *)
  let topo = Topo.Gen.linear ~switches:2 ~hosts_per_switch:1 () in
  let net = Network.create topo in
  (* s1: port1->s2, port2->h1; s2: port1->s1, port2->h2 *)
  wildcard_forward net 1 1;
  wildcard_forward net 2 2;
  let arrival = ref 0.0 in
  (Network.host net 2).on_receive <- Some (fun _ -> arrival := Network.now net);
  Network.send_from net ~host:1 (Network.make_pkt ~size:1000 ~src:1 ~dst:2 ());
  ignore (Network.run net ());
  (* 3 links, each 8us ser + 10us prop *)
  Alcotest.(check (float 1e-9)) "latency" (3.0 *. (8e-6 +. 10e-6)) !arrival

let test_serialization_queueing () =
  (* two packets sent at the same instant share one link: the second is
     delayed by one serialization time *)
  let topo = Topo.Gen.linear ~switches:1 ~hosts_per_switch:2 () in
  let net = Network.create topo in
  wildcard_forward net 1 2;
  let arrivals = ref [] in
  (Network.host net 2).on_receive <-
    Some (fun _ -> arrivals := Network.now net :: !arrivals);
  Network.send_from net ~host:1 (Network.make_pkt ~size:1250 ~src:1 ~dst:2 ());
  Network.send_from net ~host:1 (Network.make_pkt ~size:1250 ~src:1 ~dst:2 ());
  ignore (Network.run net ());
  match List.rev !arrivals with
  | [ t1; t2 ] ->
    (* 1250B at 1Gb/s = 10us serialization *)
    Alcotest.(check (float 1e-9)) "spacing = serialization" 10e-6 (t2 -. t1)
  | _ -> Alcotest.fail "expected two arrivals"

let test_queue_overflow_drops () =
  let topo = Topo.Gen.linear ~switches:1 ~hosts_per_switch:2 () in
  let net = Network.create ~queue_depth:4 topo in
  wildcard_forward net 1 2;
  for _ = 1 to 10 do
    Network.send_from net ~host:1 (Network.make_pkt ~size:1000 ~src:1 ~dst:2 ())
  done;
  ignore (Network.run net ());
  (* host's own access link also queues: depth 4 forgives 4 in flight *)
  Alcotest.(check bool) "drops happened" true
    ((Network.stats net).dropped_queue > 0);
  Alcotest.(check int) "conservation" 10
    ((Network.stats net).delivered + (Network.stats net).dropped_queue)

let test_policy_drop () =
  let topo = Topo.Gen.linear ~switches:1 ~hosts_per_switch:2 () in
  let net = Network.create topo in
  let sw = Network.switch net 1 in
  Flow.Table.add sw.table
    (Flow.Table.make_rule ~pattern:Flow.Pattern.any ~actions:Flow.Action.drop ());
  Network.send_from net ~host:1 (Network.make_pkt ~src:1 ~dst:2 ());
  ignore (Network.run net ());
  Alcotest.(check int) "policy drop" 1 (Network.stats net).dropped_policy

let test_miss_without_controller () =
  let topo = Topo.Gen.linear ~switches:1 ~hosts_per_switch:2 () in
  let net = Network.create topo in
  Network.send_from net ~host:1 (Network.make_pkt ~src:1 ~dst:2 ());
  ignore (Network.run net ());
  Alcotest.(check int) "miss drop" 1 (Network.stats net).dropped_miss

let test_link_failure_drops () =
  let topo = Topo.Gen.linear ~switches:2 ~hosts_per_switch:1 () in
  let net = Network.create topo in
  wildcard_forward net 1 1;
  Network.fail_link net (Topo.Topology.Node.Switch 1) 1;
  Network.send_from net ~host:1 (Network.make_pkt ~src:1 ~dst:2 ());
  ignore (Network.run net ());
  Alcotest.(check int) "link drop" 1 (Network.stats net).dropped_link

let test_in_flight_lost_on_failure () =
  (* a packet on the wire when the link dies is lost — and accounted
     for as a link drop, not silently vanished; delivery resumes once
     the link is restored *)
  let topo = Topo.Gen.linear ~switches:2 ~hosts_per_switch:1 () in
  let net = Network.create topo in
  wildcard_forward net 1 1;
  wildcard_forward net 2 2;
  Network.send_from net ~host:1 (Network.make_pkt ~src:1 ~dst:2 ());
  (* the packet reaches the s1->s2 link around t=18us; kill it then *)
  Dataplane.Sim.schedule (Network.sim net) ~delay:20e-6 (fun () ->
    Network.fail_link net (Topo.Topology.Node.Switch 1) 1);
  ignore (Network.run net ());
  Alcotest.(check int) "nothing delivered" 0 (Network.stats net).delivered;
  Alcotest.(check int) "in-flight loss counted as link drop" 1
    (Network.stats net).dropped_link;
  (* nothing leaks through while the link stays down *)
  Network.send_from net ~host:1 (Network.make_pkt ~src:1 ~dst:2 ());
  ignore (Network.run net ());
  Alcotest.(check int) "still nothing delivered" 0 (Network.stats net).delivered;
  Alcotest.(check int) "second drop counted" 2 (Network.stats net).dropped_link;
  (* restore and retransmit: the path works again *)
  Network.restore_link net (Topo.Topology.Node.Switch 1) 1;
  Network.send_from net ~host:1 (Network.make_pkt ~src:1 ~dst:2 ());
  ignore (Network.run net ());
  Alcotest.(check int) "delivered after restore" 1 (Network.stats net).delivered;
  Alcotest.(check int) "no further drops" 2 (Network.stats net).dropped_link

let test_flood_respects_ingress () =
  let topo = Topo.Gen.star ~leaves:3 ~hosts_per_leaf:1 () in
  let net = Network.create topo in
  (* hub floods; leaves forward to their host *)
  let hub = Network.switch net 1 in
  Flow.Table.add hub.table
    (Flow.Table.make_rule ~pattern:Flow.Pattern.any ~actions:Flow.Action.flood ());
  List.iter (fun leaf -> wildcard_forward net leaf 2) [ 2; 3; 4 ];
  (* leaf ports: port1 -> hub, port2 -> host. Host sends through leaf 2;
     leaf 2 has a forward-to-host rule so the packet bounces... install
     a flood rule on the source leaf instead. *)
  Flow.Table.clear (Network.switch net 2).table;
  Flow.Table.add (Network.switch net 2).table
    (Flow.Table.make_rule ~pattern:Flow.Pattern.any ~actions:Flow.Action.flood ());
  Network.send_from net ~host:1 (Network.make_pkt ~src:1 ~dst:2 ());
  ignore (Network.run ~max_events:10000 net ());
  (* host 1 (ingress leaf) must NOT get a copy; hosts 2 and 3 must *)
  Alcotest.(check int) "h1 no echo" 0 (Network.host net 1).received;
  Alcotest.(check int) "h2 got it" 1 (Network.host net 2).received;
  Alcotest.(check int) "h3 got it" 1 (Network.host net 3).received

let test_header_rewrite_applied () =
  let topo = Topo.Gen.linear ~switches:1 ~hosts_per_switch:2 () in
  let net = Network.create topo in
  let sw = Network.switch net 1 in
  Flow.Table.add sw.table
    (Flow.Table.make_rule ~pattern:Flow.Pattern.any
       ~actions:[ [ Set_field (Packet.Fields.Vlan, 77); Output (Physical 2) ] ]
       ());
  let seen_vlan = ref (-1) in
  (Network.host net 2).on_receive <-
    Some (fun pkt -> seen_vlan := pkt.hdr.vlan);
  Network.send_from net ~host:1 (Network.make_pkt ~src:1 ~dst:2 ());
  ignore (Network.run net ());
  Alcotest.(check int) "rewritten" 77 !seen_vlan

let test_port_counters () =
  let topo = Topo.Gen.linear ~switches:1 ~hosts_per_switch:2 () in
  let net = Network.create topo in
  wildcard_forward net 1 2;
  for _ = 1 to 3 do
    Network.send_from net ~host:1 (Network.make_pkt ~size:500 ~src:1 ~dst:2 ())
  done;
  ignore (Network.run net ());
  let sw = Network.switch net 1 in
  let rx = Network.port_stat sw 1 and tx = Network.port_stat sw 2 in
  Alcotest.(check int) "rx pkts" 3 rx.rx_packets;
  Alcotest.(check int) "rx bytes" 1500 rx.rx_bytes;
  Alcotest.(check int) "tx pkts" 3 tx.tx_packets

(* ------------------------------------------------------------------ *)
(* Traffic *)

let setup_pair () =
  let topo = Topo.Gen.linear ~switches:1 ~hosts_per_switch:2 () in
  let net = Network.create topo in
  wildcard_forward net 1 2;
  net

let test_cbr_packet_count () =
  let net = setup_pair () in
  let sent =
    Traffic.cbr net
      { (Traffic.default_flow ~src:1 ~dst:2) with rate_pps = 100.0; stop = 0.5 }
  in
  ignore (Network.run net ());
  (* t=0.0 .. t=0.5 at 10ms spacing: 50 or 51 depending on fp rounding
     of the last tick landing exactly on the stop time *)
  Alcotest.(check bool) "sent" true (!sent = 50 || !sent = 51);
  Alcotest.(check int) "all delivered" !sent (Network.host net 2).received

let test_poisson_reproducible () =
  let run seed =
    let net = setup_pair () in
    let prng = Util.Prng.create seed in
    let sent =
      Traffic.poisson net ~prng
        { (Traffic.default_flow ~src:1 ~dst:2) with rate_pps = 200.0; stop = 1.0 }
    in
    ignore (Network.run net ());
    !sent
  in
  Alcotest.(check int) "same seed same count" (run 7) (run 7);
  let a = run 7 in
  Alcotest.(check bool) "roughly poisson volume" true (a > 120 && a < 300)

let test_ping_rtt () =
  let topo = Topo.Gen.linear ~switches:2 ~hosts_per_switch:1 () in
  let net = Network.create topo in
  (* symmetric routing by dst mac *)
  List.iter
    (fun (sw, dst, port) ->
      Flow.Table.add (Network.switch net sw).table
        (Flow.Table.make_rule
           ~pattern:{ Flow.Pattern.any with eth_dst = Some (Packet.Mac.of_host_id dst) }
           ~actions:(Flow.Action.forward port) ()))
    [ (1, 1, 2); (1, 2, 1); (2, 2, 2); (2, 1, 1) ];
  Traffic.install_responders net;
  let result = Traffic.ping net ~src:1 ~dst:2 ~count:5 ~interval:0.01 in
  ignore (Network.run net ());
  Alcotest.(check int) "all answered" 5 (List.length !(result.rtts));
  Alcotest.(check int) "none lost" 0 (result.lost ());
  List.iter
    (fun (_, rtt) ->
      Alcotest.(check bool) "plausible rtt" true (rtt > 0.0 && rtt < 1e-3))
    !(result.rtts)

let suites =
  [ ( "dataplane.sim",
      [ Alcotest.test_case "time order" `Quick test_sim_order;
        Alcotest.test_case "fifo ties" `Quick test_sim_ties_fifo;
        Alcotest.test_case "run until" `Quick test_sim_until;
        Alcotest.test_case "nested scheduling" `Quick test_sim_nested_scheduling;
        Alcotest.test_case "negative delay" `Quick
          test_sim_negative_delay_rejected;
        Alcotest.test_case "periodic" `Quick test_sim_every;
        Alcotest.test_case "max events" `Quick test_sim_max_events;
        Alcotest.test_case "wheel == heap traces" `Quick
          test_sim_engine_equivalence;
        Alcotest.test_case "run_batch drains one instant" `Quick
          test_sim_run_batch ] );
    ( "dataplane.network",
      [ Alcotest.test_case "direct delivery" `Quick test_direct_delivery;
        Alcotest.test_case "latency model" `Quick test_latency_model;
        Alcotest.test_case "serialization queueing" `Quick
          test_serialization_queueing;
        Alcotest.test_case "queue overflow" `Quick test_queue_overflow_drops;
        Alcotest.test_case "policy drop" `Quick test_policy_drop;
        Alcotest.test_case "miss without controller" `Quick
          test_miss_without_controller;
        Alcotest.test_case "link failure" `Quick test_link_failure_drops;
        Alcotest.test_case "in-flight loss" `Quick
          test_in_flight_lost_on_failure;
        Alcotest.test_case "flood excludes ingress" `Quick
          test_flood_respects_ingress;
        Alcotest.test_case "header rewrite" `Quick test_header_rewrite_applied;
        Alcotest.test_case "port counters" `Quick test_port_counters ] );
    ( "dataplane.traffic",
      [ Alcotest.test_case "cbr count" `Quick test_cbr_packet_count;
        Alcotest.test_case "poisson reproducible" `Quick
          test_poisson_reproducible;
        Alcotest.test_case "ping rtt" `Quick test_ping_rtt ] ) ]
