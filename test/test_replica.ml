(* Replicated controller (ISSUE 10): adoptable switch sessions,
   leader-lease failover from replicated shadows, fencing-token
   split-brain protection, and replication-under-churn properties. *)

open Dataplane
module Replica = Controller.Replica

let fast_resilience =
  { Controller.Runtime.echo_period = 0.05; echo_miss_limit = 3;
    retx_timeout = 0.01; retx_backoff = 2.0; retx_cap = 0.1;
    selective_resync = true }

(* for chaos runs: loss must not fake a switch outage (a spurious
   keepalive verdict would make the routing app reroute and change
   tables mid-measurement) *)
let sturdy_resilience = { fast_resilience with echo_miss_limit = 8 }

let mk_routing_apps () =
  [ Controller.Routing.app (Controller.Routing.create ()) ]

let rule_key (r : Flow.Table.rule) = (r.priority, r.pattern, r.actions, r.cookie)
let keys rules = List.sort compare (List.map rule_key rules)

let check_replica_converged r =
  Alcotest.(check (list int)) "tables equal surviving leader's intended" []
    (Replica.diverged r)

(* ------------------------------------------------------------------ *)
(* Satellite: adoption is invisible to a chaos-free run *)

(* The same runtime handler, either attached classically or adopted
   per-switch (and re-adopted mid-run), must produce a byte-identical
   network trace and identical counters: adoption re-homes the session
   without touching FIFO clamps, dedup state, or in-flight frames. *)
let run_adoption_scenario ~adopt () =
  let topo = Topo.Gen.linear ~switches:3 ~hosts_per_switch:1 () in
  let net = Network.create topo in
  let lines = ref [] in
  Network.set_tracer net (fun time s ->
    lines := Printf.sprintf "%.6f %s" time s :: !lines);
  let switch_ids = Topo.Topology.switch_ids topo in
  let rt =
    Controller.Runtime.create ~resilience:fast_resilience ~switch_ids
      ~attach:(not adopt) net (mk_routing_apps ())
  in
  let adopt_all () =
    List.iter
      (fun sid ->
        Network.adopt (Network.ctl_channel net sid)
          (Controller.Runtime.handler rt))
      switch_ids
  in
  if adopt then begin
    adopt_all ();
    (* re-adoption mid-run (same handler): also invisible *)
    Sim.schedule_at (Network.sim net) ~time:0.7 adopt_all
  end;
  ignore (Network.run ~until:0.05 net ());
  Traffic.install_responders net;
  let result = Traffic.ping net ~src:1 ~dst:3 ~count:3 ~interval:0.02 in
  ignore (Network.run ~until:2.0 net ());
  Controller.Runtime.shutdown rt;
  ( List.rev !lines,
    Format.asprintf "%a" Network.pp_stats (Network.stats net),
    List.length !(result.rtts) )

let test_adoption_invisible () =
  let trace_a, stats_a, pings_a = run_adoption_scenario ~adopt:false () in
  let trace_b, stats_b, pings_b = run_adoption_scenario ~adopt:true () in
  Alcotest.(check bool) "trace non-trivial" true (List.length trace_a >= 6);
  Alcotest.(check (list string)) "byte-identical trace" trace_a trace_b;
  Alcotest.(check string) "identical counters" stats_a stats_b;
  Alcotest.(check int) "pings answered" pings_a pings_b

(* ------------------------------------------------------------------ *)
(* Fencing and epoch-scoped dedup at the switch *)

let test_fence_rejects_stale_writes () =
  let topo = Topo.Gen.linear ~switches:1 ~hosts_per_switch:1 () in
  let net = Network.create topo in
  let fm priority =
    Openflow.Message.Flow_mod
      (Openflow.Message.add_flow ~priority ~pattern:Flow.Pattern.any
         ~actions:[] ())
  in
  let send msgs =
    Network.controller_send net ~switch_id:1 (Openflow.Wire.encode_batch msgs)
  in
  let table = (Network.switch net 1).table in
  let run () = ignore (Network.run ~until:(Network.now net +. 0.05) net ()) in
  (* epoch 1 applies *)
  send [ (0, Openflow.Message.Fence 1); (10, fm 10) ];
  run ();
  Alcotest.(check int) "epoch-1 write applied" 1 (Flow.Table.size table);
  (* a replay of the same batch dedups on last_fm_xid *)
  let gen = Flow.Table.generation table in
  send [ (0, Openflow.Message.Fence 1); (10, fm 10) ];
  run ();
  Alcotest.(check int) "replay deduped (generation unchanged)" gen
    (Flow.Table.generation table);
  (* epoch 2 with a LOWER xid: the higher fence resets the dedup
     watermark, so the new leader's unrelated xid sequence applies *)
  send [ (0, Openflow.Message.Fence 2); (3, fm 20) ];
  run ();
  Alcotest.(check int) "epoch-2 write applied despite lower xid" 2
    (Flow.Table.size table);
  (* the deposed epoch-1 leader keeps writing: rejected, counted *)
  send [ (0, Openflow.Message.Fence 1); (11, fm 30) ];
  run ();
  Alcotest.(check int) "stale write rejected" 2 (Flow.Table.size table);
  Alcotest.(check int) "fenced_writes counted" 1
    (Network.stats net).fenced_writes;
  (* the fence gates only flow-mods: the stale stream's barrier still
     acks delivery (its retransmit machinery advances into the void) *)
  send [ (0, Openflow.Message.Fence 1); (12, fm 40);
         (13, Openflow.Message.Barrier_request) ];
  run ();
  Alcotest.(check int) "still rejected" 2 (Flow.Table.size table);
  Alcotest.(check int) "fence token survives at highest" 2
    (Network.channel_fence_token (Network.ctl_channel net 1))

let test_fence_token_survives_reboot () =
  let topo = Topo.Gen.linear ~switches:1 ~hosts_per_switch:1 () in
  let net = Network.create topo in
  let send msgs =
    Network.controller_send net ~switch_id:1 (Openflow.Wire.encode_batch msgs)
  in
  send [ (0, Openflow.Message.Fence 3) ];
  ignore (Network.run ~until:0.1 net ());
  Network.crash_switch net 1;
  Network.restart_switch net 1;
  Alcotest.(check int) "fence epoch is durable across reboot" 3
    (Network.channel_fence_token (Network.ctl_channel net 1));
  (* ...so a deposed leader cannot launder stale writes through a
     freshly rebooted switch *)
  send
    [ (0, Openflow.Message.Fence 1);
      ( 1,
        Openflow.Message.Flow_mod
          (Openflow.Message.add_flow ~priority:5 ~pattern:Flow.Pattern.any
             ~actions:[] ()) ) ];
  ignore (Network.run ~until:(Network.now net +. 0.05) net ());
  Alcotest.(check int) "stale write rejected after reboot" 0
    (Flow.Table.size (Network.switch net 1).table)

(* ------------------------------------------------------------------ *)
(* Leader-lease failover *)

let test_failover_reconverges () =
  let topo = Topo.Gen.ring ~switches:4 ~hosts_per_switch:1 () in
  let net = Zen.create topo in
  let r =
    Zen.with_replicas ~resilience:fast_resilience ~replicas:2 ~lease:0.15 net
      mk_routing_apps
  in
  ignore (Zen.run ~until:0.5 net);
  Alcotest.(check (option int)) "member 0 leads" (Some 0) (Replica.leader r);
  check_replica_converged r;
  let installed_before =
    keys (Flow.Table.rules (Network.switch (Zen.network net) 2).table)
  in
  Alcotest.(check bool) "switch 2 programmed" true (installed_before <> []);
  Network.inject (Zen.network net)
    [ Fault.Controller_outage { controller_id = 0; at = 0.6; duration = 60.0 } ];
  ignore (Zen.run ~until:3.0 net);
  Alcotest.(check (option int)) "member 1 took over" (Some 1)
    (Replica.leader r);
  Alcotest.(check int) "epoch bumped" 2 (Replica.epoch r);
  let s = Replica.stats r in
  Alcotest.(check int) "one failover" 1 s.failovers;
  Alcotest.(check int) "takeover completed" 1 s.takeovers_completed;
  Alcotest.(check bool) "heartbeats and deltas replicated" true
    (s.hb_sent > 0 && s.deltas_sent > 0);
  check_replica_converged r;
  (* chaos-free failover completes within a few heartbeat intervals of
     lease-expiry detection *)
  (match Replica.failover_samples r with
   | [ d ] ->
     Alcotest.(check bool)
       (Printf.sprintf "failover %.3fs within 10 heartbeats" d)
       true
       (d > 0.0 && d <= 10.0 *. (Replica.config r).hb_period)
   | l ->
     Alcotest.failf "expected one failover sample, got %d" (List.length l));
  (* a warm switch resyncs by diff, not clear+reload: the new leader's
     selective resync touched nothing on converged tables *)
  Alcotest.(check bool) "warm tables preserved across handoff" true
    (installed_before
    = keys (Flow.Table.rules (Network.switch (Zen.network net) 2).table));
  (* dataplane still works under the new leader *)
  let rtts = Zen.ping ~count:3 net ~src:1 ~dst:3 in
  Alcotest.(check int) "pings answered after failover" 3 (List.length rtts);
  Replica.shutdown r

let test_crashed_leader_rejoins_as_standby () =
  let topo = Topo.Gen.linear ~switches:3 ~hosts_per_switch:1 () in
  let net = Zen.create topo in
  let r =
    Zen.with_replicas ~resilience:fast_resilience ~replicas:2 ~lease:0.12 net
      mk_routing_apps
  in
  Network.inject (Zen.network net)
    [ Fault.Controller_outage { controller_id = 0; at = 0.4; duration = 1.0 } ];
  ignore (Zen.run ~until:4.0 net);
  Alcotest.(check (option int)) "member 1 leads" (Some 1) (Replica.leader r);
  Alcotest.(check bool) "member 0 back as standby" true
    (Replica.role_of r ~controller_id:0 = Replica.Standby);
  Alcotest.(check bool) "rejoin used a full state transfer" true
    ((Replica.stats r).syncs >= 1);
  check_replica_converged r;
  Replica.shutdown r

(* ------------------------------------------------------------------ *)
(* Satellite: failover mid-retransmit applies no duplicate rules *)

let test_failover_mid_retransmit_no_duplicates () =
  let topo = Topo.Gen.linear ~switches:3 ~hosts_per_switch:1 () in
  let fault = Fault.create ~seed:42 ~drop:0.25 ~dup:0.2 ~jitter:1e-3 () in
  let net = Network.create ~fault topo in
  let r =
    Replica.create ~resilience:sturdy_resilience ~replicas:2 ~lease:0.15 net
      mk_routing_apps
  in
  (* crash the leader early: initial rule pushes are still being
     retransmitted under 25% loss when member 1 adopts the sessions *)
  Network.inject net
    [ Fault.Controller_outage { controller_id = 0; at = 0.05; duration = 60.0 } ];
  ignore (Network.run ~until:4.0 net ());
  Alcotest.(check int) "failover happened" 1 (Replica.stats r).failovers;
  Alcotest.(check bool) "chaos actually hit the channel" true
    (Fault.drops fault > 0 && Fault.dups fault > 0);
  (match Replica.runtime_of r ~controller_id:1 with
   | Some rt ->
     Alcotest.(check bool) "new leader retransmitted" true
       ((Controller.Runtime.resilience_stats rt).retransmits > 0)
   | None -> Alcotest.fail "member 1 has no runtime");
  check_replica_converged r;
  (* quiet period: the workload is settled, so every late duplicate and
     straggling retransmit must dedup switch-side — a single duplicate
     application would bump a table generation *)
  let ids = List.map (fun (sw : Network.switch) -> sw.sw_id)
      (Network.switch_list net)
  in
  let gens () =
    List.map (fun sid -> Flow.Table.generation (Network.switch net sid).table)
      ids
  in
  let frozen = gens () in
  ignore (Network.run ~until:6.0 net ());
  Alcotest.(check (list int)) "no duplicate rule application" frozen (gens ());
  check_replica_converged r;
  Replica.shutdown r

(* ------------------------------------------------------------------ *)
(* Split brain: both controllers alive, only the leaseholder's writes land *)

let test_split_brain_fenced () =
  let topo = Topo.Gen.linear ~switches:3 ~hosts_per_switch:1 () in
  let net = Network.create topo in
  let incarnation = ref 0 in
  let mk_apps () =
    incr incarnation;
    (* each leader incarnation schedules a distinct marker rule well
       after the partition: the stale leader's must never land *)
    let cookie = if !incarnation = 1 then 0xdead else 0xbeef in
    let marker =
      { (Controller.Api.default_app "marker") with
        switch_up =
          (fun ctx ~switch_id ~ports:_ ->
            if switch_id = 1 then
              Controller.Api.schedule ctx ~delay:1.5 (fun () ->
                Controller.Api.install ctx ~switch_id:1 ~priority:99 ~cookie
                  Flow.Pattern.any [])) }
    in
    [ Controller.Routing.app (Controller.Routing.create ()); marker ]
  in
  (* a huge echo-miss limit keeps the deposed leader fully confident:
     without it, the silence of its adopted sessions (echo replies now
     route to the new owner) would make it mark every switch down and
     queue the marker write instead of transmitting it — the fence must
     be what stops the write, not the keepalive *)
  let r =
    Replica.create
      ~resilience:{ fast_resilience with echo_miss_limit = 10_000 }
      ~replicas:2 ~lease:0.15 net mk_apps
  in
  (* cut the leader off the inter-controller channel only: it stays
     alive, believes it holds the lease, and keeps writing *)
  Sim.schedule_at (Network.sim net) ~time:0.5 (fun () ->
    Replica.partition r ~controller_id:0);
  ignore (Network.run ~until:4.0 net ());
  Alcotest.(check (option int)) "standby took over" (Some 1)
    (Replica.leader r);
  Alcotest.(check bool) "stale leader still believes it leads" true
    (Replica.role_of r ~controller_id:0 = Replica.Leader);
  Alcotest.(check bool) "stale writes were fenced" true
    ((Network.stats net).fenced_writes > 0);
  let cookies =
    List.map
      (fun (ru : Flow.Table.rule) -> ru.cookie)
      (Flow.Table.rules (Network.switch net 1).table)
  in
  Alcotest.(check bool) "zero stale-leader rules installed" false
    (List.mem 0xdead cookies);
  Alcotest.(check bool) "new leader's writes land" true
    (List.mem 0xbeef cookies);
  check_replica_converged r;
  (* heal: the deposed leader sees the higher-epoch heartbeat and steps
     down instead of dueling *)
  Replica.heal r ~controller_id:0;
  ignore (Network.run ~until:5.0 net ());
  Alcotest.(check int) "deposed leader stepped down" 1
    (Replica.stats r).step_downs;
  Alcotest.(check bool) "now a standby" true
    (Replica.role_of r ~controller_id:0 = Replica.Standby);
  Alcotest.(check (option int)) "one leader remains" (Some 1)
    (Replica.leader r);
  Replica.shutdown r

(* ------------------------------------------------------------------ *)
(* replicas=1 degenerate path is byte-identical to a plain controller *)

let run_single_controller ~replicated () =
  let topo = Topo.Gen.linear ~switches:3 ~hosts_per_switch:1 () in
  let net = Zen.create topo in
  let lines = ref [] in
  Network.set_tracer (Zen.network net) (fun time s ->
    lines := Printf.sprintf "%.6f %s" time s :: !lines);
  if replicated then
    ignore
      (Zen.with_replicas ~resilience:fast_resilience ~replicas:1 net
         mk_routing_apps)
  else
    ignore
      (Zen.with_controller ~resilience:fast_resilience net (mk_routing_apps ()));
  let rtts = Zen.ping ~count:3 net ~src:1 ~dst:3 in
  ignore (Zen.run ~until:2.0 net);
  ( List.rev !lines,
    Format.asprintf "%a" Network.pp_stats
      (Network.stats (Zen.network net)),
    List.length rtts )

let test_replicas_one_byte_identical () =
  let trace_a, stats_a, pings_a = run_single_controller ~replicated:false () in
  let trace_b, stats_b, pings_b = run_single_controller ~replicated:true () in
  Alcotest.(check (list string)) "byte-identical trace" trace_a trace_b;
  Alcotest.(check string) "identical counters" stats_a stats_b;
  Alcotest.(check int) "same pings" pings_a pings_b;
  Alcotest.(check bool) "no fence ever sent" false
    (List.exists
       (fun l ->
         let has_sub s sub =
           let n = String.length s and m = String.length sub in
           let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
           go 0
         in
         has_sub l "fence")
       trace_a)

(* ------------------------------------------------------------------ *)
(* App-state replication: the Update app's version counter *)

let test_update_version_replicates () =
  let u = Controller.Update.create () in
  Alcotest.(check string) "fresh export" "0" (Controller.Update.export_state u);
  Controller.Update.import_state u "7";
  Alcotest.(check int) "import adopts a newer version" 7
    (Controller.Update.version u);
  Controller.Update.import_state u "3";
  Alcotest.(check int) "stale import ignored (never rewinds)" 7
    (Controller.Update.version u);
  Controller.Update.import_state u "bogus";
  Alcotest.(check int) "garbage import ignored" 7
    (Controller.Update.version u)

(* ------------------------------------------------------------------ *)
(* QCheck: replication under churn (policy edits + crashes + failovers) *)

(* Random cumulative policy edits stream through whichever member
   currently holds the lease (compiled incrementally through
   Netkat.Delta, as in test_delta's lockstep harness) while the leader
   crashes and a standby takes over; afterwards every switch's installed
   table must equal the surviving leader's intended shadow.  Edits that
   fall into the leaderless window are dropped entirely — the property
   is installed ≡ intended, not edit durability. *)
let prop_replica_churn ~domains name =
  QCheck.Test.make ~name ~count:8
    (QCheck.make
       ~print:(fun pols ->
         String.concat " ;; " (List.map Netkat.Syntax.pol_to_string pols))
       (QCheck.Gen.list_size (QCheck.Gen.int_range 2 4)
          Test_netkat.local_pol_gen))
    (fun pols ->
      let pool =
        if domains <= 1 then None else Some (Util.Pool.create ~domains ())
      in
      Fun.protect
        ~finally:(fun () -> Option.iter Util.Pool.shutdown pool)
        (fun () ->
          let topo = Topo.Gen.ring ~switches:4 ~hosts_per_switch:1 () in
          let switches = Topo.Topology.switch_ids topo in
          let net = Network.create topo in
          let r =
            Replica.create ~resilience:fast_resilience ~replicas:2 ~lease:0.1
              net
              (fun () -> [])
          in
          let steps =
            List.fold_left
              (fun acc p ->
                match acc with
                | [] -> [ p ]
                | prev :: _ -> Netkat.Syntax.union prev p :: acc)
              [] pols
            |> List.rev
          in
          let snap = ref None in
          List.iteri
            (fun i pol ->
              Sim.schedule_at (Network.sim net)
                ~time:(0.3 +. (0.4 *. float_of_int i))
                (fun () ->
                  let fdd = Netkat.Fdd.of_policy pol in
                  let result = Netkat.Delta.compile ?pool ~switches !snap fdd in
                  snap := Some result.snapshot;
                  match Replica.leader_runtime r with
                  | None -> ()
                  | Some rt ->
                    let ctx = Controller.Runtime.ctx rt in
                    List.iter
                      (fun (sw, change) ->
                        match (change : Netkat.Delta.change) with
                        | Netkat.Delta.Unchanged -> ()
                        | Netkat.Delta.Changed { rules; _ } ->
                          Controller.Api.install_rules ctx ~switch_id:sw
                            ~cookie:7 ~replace:true
                            (List.map
                               (fun (ru : Netkat.Local.rule) ->
                                 (ru.priority, ru.pattern, ru.actions))
                               rules))
                      result.changes))
            steps;
          (* leader crashes mid-stream and later rejoins as a standby *)
          Network.inject net
            [ Fault.Controller_outage
                { controller_id = 0; at = 0.45; duration = 1.0 } ];
          let horizon = 0.3 +. (0.4 *. float_of_int (List.length steps)) +. 3.0 in
          ignore (Network.run ~until:horizon net ());
          if (Replica.stats r).failovers < 1 then
            QCheck.Test.fail_report "no failover happened";
          let diverged = Replica.diverged r in
          Replica.shutdown r;
          if diverged <> [] then
            QCheck.Test.fail_reportf "diverged switches: %s"
              (String.concat "," (List.map string_of_int diverged))
          else true))

let suites =
  [ ( "replica.channel",
      [ Alcotest.test_case "adoption invisible (byte-identical trace)" `Quick
          test_adoption_invisible;
        Alcotest.test_case "fence rejects stale writes" `Quick
          test_fence_rejects_stale_writes;
        Alcotest.test_case "fence token survives reboot" `Quick
          test_fence_token_survives_reboot ] );
    ( "replica.failover",
      [ Alcotest.test_case "failover reconverges" `Quick
          test_failover_reconverges;
        Alcotest.test_case "crashed leader rejoins as standby" `Quick
          test_crashed_leader_rejoins_as_standby;
        Alcotest.test_case "mid-retransmit failover: no duplicates" `Quick
          test_failover_mid_retransmit_no_duplicates;
        Alcotest.test_case "split brain: stale writes fenced" `Quick
          test_split_brain_fenced;
        Alcotest.test_case "replicas=1 byte-identical to plain" `Quick
          test_replicas_one_byte_identical;
        Alcotest.test_case "update version replicates" `Quick
          test_update_version_replicates ] );
    ( "replica.churn",
      [ QCheck_alcotest.to_alcotest
          (prop_replica_churn ~domains:1 "replica churn converges (1 domain)");
        QCheck_alcotest.to_alcotest
          (prop_replica_churn ~domains:2 "replica churn converges (2 domains)")
      ] ) ]
