(* The sharded simulator (ISSUE 6): conservative-lookahead parallel
   runs must be observably indistinguishable from the single-domain
   engine — same delivery counters, flow tables, port stats, event
   traces and chaos traces on a fixed seed, for 1, 2 and 4 shards,
   with and without injected incidents. *)

open Dataplane

(* sort "<time> <text>" lines by (parsed time, text) so tie order and
   magnitude-crossing float formatting don't leak into comparisons *)
let sort_trace lines =
  let key line =
    match String.index_opt line ' ' with
    | Some i ->
      ( Option.value ~default:0.0
          (float_of_string_opt (String.sub line 0 i)),
        line )
    | None -> (0.0, line)
  in
  List.sort compare (List.map key lines) |> List.map snd

type obs = {
  o_signature : string;
  o_trace : string list;    (* sorted dataplane trace *)
  o_chaos : string list;    (* sorted chaos notes *)
  o_delivered : int;
  o_logical : int;          (* executed events minus sharding overhead *)
}

let mk_topo = function
  | 0 -> Topo.Gen.linear ~switches:4 ~hosts_per_switch:2 ()
  | 1 -> fst (Topo.Gen.fat_tree ~k:4 ())
  | _ -> Topo.Gen.ring ~switches:5 ~hosts_per_switch:1 ()

(* a deterministic little scenario: flap the first switch-switch link,
   crash the highest-id switch *)
let incidents_for topo =
  let flap =
    List.find_map
      (fun (l : Topo.Topology.link) ->
        if Topo.Topology.Node.is_switch l.src
           && Topo.Topology.Node.is_switch l.dst
        then
          Some
            (Fault.Link_flap
               { node = l.src; port = l.src_port; at = 0.002;
                 duration = 0.003 })
        else None)
      (Topo.Topology.links topo)
  in
  let crash =
    match List.rev (Topo.Topology.switch_ids topo) with
    | id :: _ ->
      [ Fault.Switch_outage { switch_id = id; at = 0.004; duration = 0.002 } ]
    | [] -> []
  in
  (match flap with Some f -> [ f ] | None -> []) @ crash

(* control-channel loss + jitter, plus link-level data chaos: the
   per-link verdict streams are keyed on [link_seed] (not the
   shard-perturbed seed), so drops/corruptions/reorders must replay
   byte-identically at any shard count *)
let chaos_cfg seed =
  Fault.make_config ~seed:(seed + 7) ~drop:0.2 ~jitter:1e-3 ~link_drop:0.08
    ~link_corrupt:0.04 ~link_reorder:0.08 ()

(* staggered starts keep the workload free of cross-flow timestamp
   ties — the precondition for exact trace equivalence (see Shard's
   header on the conservative-PDES tie caveat) *)
let specs_for topo ~seed ~flows =
  let prng = Util.Prng.create seed in
  let host_ids = Array.of_list (Topo.Topology.host_ids topo) in
  Traffic.random_pair_specs ~stagger:0.0004 ~prng ~host_ids ~flows
    ~rate_pps:2000.0 ~pkt_size:400 ~stop:0.008 ()

let until = 0.02

let run_single ~topo_id ~seed ~flows ~chaos ~with_incidents =
  let topo = mk_topo topo_id in
  let fault = if chaos then Some (Fault.of_config (chaos_cfg seed)) else None in
  let net = Network.create ?fault topo in
  let lines = ref [] in
  Network.set_tracer net (fun time s ->
    lines := Printf.sprintf "%.9f %s" time s :: !lines);
  let rules =
    Netkat.Local.compile_all
      ~switches:(Topo.Topology.switch_ids topo)
      (Netkat.Builder.routing_policy topo)
  in
  List.iter
    (fun (switch_id, rs) ->
      let table = (Network.switch net switch_id).table in
      List.iter
        (fun (r : Netkat.Local.rule) ->
          Flow.Table.add table
            (Flow.Table.make_rule ~priority:r.priority ~pattern:r.pattern
               ~actions:r.actions ()))
        rs)
    rules;
  List.iter
    (fun (s : Traffic.flow_spec) -> ignore (Traffic.cbr net s))
    (specs_for topo ~seed ~flows);
  if with_incidents then Network.inject net (incidents_for topo);
  let executed = Network.run ~until net () in
  { o_signature = Shard.net_signature topo [ net ];
    o_trace = sort_trace !lines;
    o_chaos =
      (match Network.fault net with
       | Some f -> sort_trace (Fault.events f)
       | None -> []);
    o_delivered = (Network.stats net).delivered;
    o_logical = executed }

let run_sharded ~topo_id ~seed ~flows ~chaos ~with_incidents ~shards =
  let topo = mk_topo topo_id in
  let fault_config = if chaos then Some (chaos_cfg seed) else None in
  let t = Shard.create ?fault_config ~shards topo in
  let per_shard = Array.map (fun _ -> ref []) (Shard.nets t) in
  Array.iteri
    (fun i net ->
      let r = per_shard.(i) in
      Network.set_tracer net (fun time s ->
        r := Printf.sprintf "%.9f %s" time s :: !r))
    (Shard.nets t);
  let rules =
    Netkat.Local.compile_all
      ~switches:(Topo.Topology.switch_ids topo)
      (Netkat.Builder.routing_policy topo)
  in
  List.iter
    (fun (switch_id, rs) ->
      let net = Shard.net_of_switch t switch_id in
      let table = (Network.switch net switch_id).table in
      List.iter
        (fun (r : Netkat.Local.rule) ->
          Flow.Table.add table
            (Flow.Table.make_rule ~priority:r.priority ~pattern:r.pattern
               ~actions:r.actions ()))
        rs)
    rules;
  List.iter
    (fun (s : Traffic.flow_spec) ->
      ignore (Traffic.cbr (Shard.net_of_host t s.src) s))
    (specs_for topo ~seed ~flows);
  let incidents = if with_incidents then incidents_for topo else [] in
  if with_incidents then Shard.inject t incidents;
  let executed = Shard.run ~until t in
  (* sharding overhead events: one queue-release per cross-shard handoff,
     plus the silent clone link flips on every non-owning shard.  A
     reordered cross-shard packet is the exception: its late delivery is
     a separate event in the single-domain run too, so that handoff
     costs no extra event — subtract those back out. *)
  let flaps =
    List.length
      (List.filter
         (function Fault.Link_flap _ -> true | _ -> false)
         incidents)
  in
  let cross_reorders =
    Array.fold_left
      (fun acc net -> acc + Network.remote_reorders net)
      0 (Shard.nets t)
  in
  let overhead =
    Shard.handoffs t + (2 * flaps * (shards - 1)) - cross_reorders
  in
  { o_signature = Shard.signature t;
    o_trace =
      sort_trace
        (Array.to_list per_shard |> List.concat_map (fun r -> !r));
    o_chaos = sort_trace (Shard.chaos_events t);
    o_delivered = (Shard.stats t).delivered;
    o_logical = executed - overhead }

let check_equiv ~topo_id ~seed ~flows ~chaos ~with_incidents ~shards =
  let s = run_single ~topo_id ~seed ~flows ~chaos ~with_incidents in
  let p = run_sharded ~topo_id ~seed ~flows ~chaos ~with_incidents ~shards in
  let label what =
    Printf.sprintf "%s (topo=%d seed=%d flows=%d chaos=%b inc=%b shards=%d)"
      what topo_id seed flows chaos with_incidents shards
  in
  Alcotest.(check string) (label "signature") s.o_signature p.o_signature;
  Alcotest.(check (list string)) (label "trace") s.o_trace p.o_trace;
  Alcotest.(check (list string)) (label "chaos trace") s.o_chaos p.o_chaos;
  Alcotest.(check int) (label "logical events") s.o_logical p.o_logical;
  s.o_delivered

(* ------------------------------------------------------------------ *)
(* Deterministic unit tests *)

let test_two_shard_fattree () =
  let delivered =
    check_equiv ~topo_id:1 ~seed:42 ~flows:30 ~chaos:false
      ~with_incidents:false ~shards:2
  in
  Alcotest.(check bool) "traffic actually flowed" true (delivered > 0)

let test_four_shard_fattree_chaos () =
  ignore
    (check_equiv ~topo_id:1 ~seed:7 ~flows:20 ~chaos:true ~with_incidents:true
       ~shards:4)

let test_one_shard_linear () =
  ignore
    (check_equiv ~topo_id:0 ~seed:3 ~flows:10 ~chaos:true ~with_incidents:true
       ~shards:1)

let test_handoffs_counted () =
  let topo_id = 1 and seed = 42 and flows = 30 in
  let topo = mk_topo topo_id in
  let t = Shard.create ~shards:2 topo in
  let rules =
    Netkat.Local.compile_all
      ~switches:(Topo.Topology.switch_ids topo)
      (Netkat.Builder.routing_policy topo)
  in
  List.iter
    (fun (switch_id, rs) ->
      let net = Shard.net_of_switch t switch_id in
      let table = (Network.switch net switch_id).table in
      List.iter
        (fun (r : Netkat.Local.rule) ->
          Flow.Table.add table
            (Flow.Table.make_rule ~priority:r.priority ~pattern:r.pattern
               ~actions:r.actions ()))
        rs)
    rules;
  List.iter
    (fun (s : Traffic.flow_spec) ->
      ignore (Traffic.cbr (Shard.net_of_host t s.src) s))
    (specs_for topo ~seed ~flows);
  ignore (Shard.run ~until t);
  Alcotest.(check bool) "cross-shard handoffs happened" true
    (Shard.handoffs t > 0);
  Alcotest.(check int) "per-shard handoffs sum to total" (Shard.handoffs t)
    (Shard.handoffs_of t 0 + Shard.handoffs_of t 1);
  Alcotest.(check bool) "rounds advanced" true (Shard.rounds t > 0);
  Alcotest.(check bool) "no backpressure on this workload" true
    (Shard.backpressure t = 0)

let test_lookahead_is_min_cross_delay () =
  let topo = fst (Topo.Gen.fat_tree ~k:4 ()) in
  let t = Shard.create ~shards:2 topo in
  Alcotest.(check bool) "lookahead equals the generator default delay" true
    (Shard.lookahead t = Topo.Gen.default_delay);
  let one = Shard.create ~shards:1 topo in
  Alcotest.(check bool) "1 shard has no cross links: infinite lookahead" true
    (Shard.lookahead one = infinity)

let test_partition_of_string () =
  Alcotest.(check bool) "block parses" true
    (Shard.partition_of_string "block" <> None);
  Alcotest.(check bool) "pod:4 parses" true
    (Shard.partition_of_string "pod:4" <> None);
  Alcotest.(check bool) "garbage rejected" true
    (Shard.partition_of_string "hash" = None)

let test_pod_partition_no_intra_pod_crossing () =
  let topo, info = Topo.Gen.fat_tree ~k:4 () in
  let t = Shard.create ~partition:(Shard.pod_partition ~k:4) ~shards:4 topo in
  (* every agg<->edge link stays inside one shard *)
  List.iter
    (fun (l : Topo.Topology.link) ->
      match (l.src, l.dst) with
      | Topo.Topology.Node.Switch a, Topo.Topology.Node.Switch b
        when List.mem a info.aggregation && List.mem b info.edge ->
        Alcotest.(check int)
          (Printf.sprintf "s%d-s%d same shard" a b)
          (Shard.shard_of t l.src) (Shard.shard_of t l.dst)
      | _ -> ())
    (Topo.Topology.links topo)

(* ------------------------------------------------------------------ *)
(* Adaptive windows: sparse fabrics fast-forward, heterogeneous
   distances widen windows, and observables never change *)

(* [sites] 2-spine/2-leaf fat-tree cells (10 us links, 2 hosts per
   leaf), spines joined site-to-site: sites 0-1 by a 20 us metro link,
   every other pair long-haul at 1 ms.  Switch ids are contiguous per
   site, so the block partition with [shards = sites] is one site per
   shard and the shard quotient distances are heterogeneous — the
   adaptive bound's home turf. *)
let multi_site_topo ~sites () =
  let topo = Topo.Topology.create () in
  let sw s i = Topo.Topology.Node.Switch ((s * 4) + i + 1) in
  for s = 0 to sites - 1 do
    for spine = 0 to 1 do
      for leaf = 2 to 3 do
        Topo.Gen.connect topo (sw s spine) (sw s leaf)
      done
    done
  done;
  let next_host = ref 1 in
  for s = 0 to sites - 1 do
    for leaf = 2 to 3 do
      for _ = 1 to 2 do
        let h = Topo.Topology.Node.Host !next_host in
        incr next_host;
        Topo.Gen.connect topo (sw s leaf) h
      done
    done
  done;
  for a = 0 to sites - 1 do
    for b = a + 1 to sites - 1 do
      let delay = if a = 0 && b = 1 then 20e-6 else 1e-3 in
      Topo.Gen.connect ~delay topo (sw a 0) (sw b 0)
    done
  done;
  topo

(* intra-site flow mix: [flows] pairs inside site [s] (hosts 4s+1..4s+4),
   staggered by a 37 us lattice so no two flows' event chains ever share
   a timestamp *)
let site_flows ~site ~flows ~rate_pps ~start ~stop =
  let h i = (site * 4) + i + 1 in
  let pairs = [| (0, 2); (1, 3); (2, 0); (3, 1); (0, 3); (1, 2) |] in
  List.init flows (fun i ->
    let a, b = pairs.(i mod Array.length pairs) in
    { (Traffic.default_flow ~src:(h a) ~dst:(h b)) with
      rate_pps; pkt_size = 200;
      start = start +. (float_of_int i *. 37e-6);
      stop })

let run_sites ~sites ~specs ~until how =
  let topo = multi_site_topo ~sites () in
  match how with
  | `Single ->
    let net = Network.create topo in
    let rules =
      Netkat.Local.compile_all
        ~switches:(Topo.Topology.switch_ids topo)
        (Netkat.Builder.routing_policy topo)
    in
    List.iter
      (fun (switch_id, rs) ->
        let table = (Network.switch net switch_id).table in
        List.iter
          (fun (r : Netkat.Local.rule) ->
            Flow.Table.add table
              (Flow.Table.make_rule ~priority:r.priority ~pattern:r.pattern
                 ~actions:r.actions ()))
          rs)
      rules;
    List.iter (fun s -> ignore (Traffic.cbr net s)) specs;
    ignore (Network.run ~until net ());
    (Shard.net_signature topo [ net ], 0, 0)
  | `Sharded (window, pool) ->
    let t = Shard.create ~shards:sites topo in
    let rules =
      Netkat.Local.compile_all
        ~switches:(Topo.Topology.switch_ids topo)
        (Netkat.Builder.routing_policy topo)
    in
    List.iter
      (fun (switch_id, rs) ->
        let net = Shard.net_of_switch t switch_id in
        let table = (Network.switch net switch_id).table in
        List.iter
          (fun (r : Netkat.Local.rule) ->
            Flow.Table.add table
              (Flow.Table.make_rule ~priority:r.priority ~pattern:r.pattern
                 ~actions:r.actions ()))
          rs)
      rules;
    List.iter
      (fun (s : Traffic.flow_spec) ->
        ignore (Traffic.cbr (Shard.net_of_host t s.src) s))
      specs;
    ignore (Shard.run ~until ~window ?pool t);
    (Shard.signature t, Shard.rounds t, Shard.stalls t)

(* dense traffic in site 0, a trickle in site 1: the fixed 20 us window
   (the metro-link lookahead) barrier-steps the dense chains two events
   at a time while shard 1 mostly stalls; the adaptive echo bound packs
   twice the span per round, halving both rounds and stalls *)
let test_adaptive_vs_fixed_two_sites () =
  let specs =
    site_flows ~site:0 ~flows:6 ~rate_pps:5000.0 ~start:0.0107 ~stop:0.05
    @ site_flows ~site:1 ~flows:2 ~rate_pps:500.0 ~start:0.0131 ~stop:0.05
  in
  let run how = run_sites ~sites:2 ~specs ~until:0.06 how in
  let sig_single, _, _ = run `Single in
  let sig_fixed, rounds_fixed, stalls_fixed =
    run (`Sharded (Util.Shard_sync.Fixed, None))
  in
  let sig_adaptive, rounds_adaptive, stalls_adaptive =
    run (`Sharded (Util.Shard_sync.Adaptive, None))
  in
  Alcotest.(check string) "fixed == single" sig_single sig_fixed;
  Alcotest.(check string) "adaptive == single" sig_single sig_adaptive;
  Alcotest.(check bool)
    (Printf.sprintf "adaptive rounds %d <= 0.6 * fixed rounds %d"
       rounds_adaptive rounds_fixed)
    true
    (float_of_int rounds_adaptive <= 0.6 *. float_of_int rounds_fixed);
  Alcotest.(check bool)
    (Printf.sprintf "adaptive stalls %d < fixed stalls %d" stalls_adaptive
       stalls_fixed)
    true
    (stalls_adaptive < stalls_fixed);
  (* work stealing with a real multi-worker pool moves windows between
     domains without changing a byte *)
  let pool = Util.Pool.create ~domains:2 () in
  let sig_steal, _, _ = run (`Sharded (Util.Shard_sync.Adaptive, Some pool)) in
  Util.Pool.shutdown pool;
  Alcotest.(check string) "stealing pool == single" sig_single sig_steal

(* a sparse-event fabric fast-forwards: the window loop must jump from
   event cluster to event cluster instead of barrier-stepping every
   20 us lookahead window across the idle span *)
let test_sparse_fast_forward () =
  let specs =
    site_flows ~site:0 ~flows:1 ~rate_pps:50.0 ~start:0.0107 ~stop:0.4
    @ site_flows ~site:1 ~flows:1 ~rate_pps:50.0 ~start:0.0131 ~stop:0.4
  in
  let until = 0.5 in
  let sig_single, _, _ = run_sites ~sites:2 ~specs ~until `Single in
  let sig_sharded, rounds, _ =
    run_sites ~sites:2 ~specs ~until (`Sharded (Util.Shard_sync.Adaptive, None))
  in
  Alcotest.(check string) "sparse sharded == single" sig_single sig_sharded;
  let naive_windows = int_of_float (until /. 20e-6) in
  Alcotest.(check bool)
    (Printf.sprintf "rounds %d << %d naive lookahead windows" rounds
       naive_windows)
    true
    (rounds * 20 < naive_windows)

(* ------------------------------------------------------------------ *)
(* Controller-attached sharded runs *)

let rule_key (r : Flow.Table.rule) = (r.priority, r.pattern, r.actions)

let ctl_flap topo =
  List.find_map
    (fun (l : Topo.Topology.link) ->
      if Topo.Topology.Node.is_switch l.src
         && Topo.Topology.Node.is_switch l.dst
      then
        Some
          (Fault.Link_flap
             { node = l.src; port = l.src_port; at = 0.057; duration = 0.043 })
      else None)
    (Topo.Topology.links topo)
  |> Option.to_list

let ctl_specs topo =
  let host_ids = Array.of_list (Topo.Topology.host_ids topo) in
  let n = Array.length host_ids in
  List.init (n / 2) (fun i ->
    { (Traffic.default_flow ~src:host_ids.(i) ~dst:host_ids.(n - 1 - i)) with
      rate_pps = 1000.0; pkt_size = 200;
      start = 0.0307 +. (float_of_int i *. 37e-6);
      stop = 0.15 })

let ctl_until = 0.25

(* single-domain reference: routing app over the control channel *)
let run_ctl_single () =
  let topo = fst (Topo.Gen.fat_tree ~k:4 ()) in
  let net = Network.create topo in
  let lines = ref [] in
  Network.set_tracer net (fun time s ->
    lines := Printf.sprintf "%.9f %s" time s :: !lines);
  let routing = Controller.Routing.create () in
  let rt =
    Controller.Runtime.create_and_handshake net
      [ Controller.Routing.app routing ]
  in
  List.iter (fun s -> ignore (Traffic.cbr net s)) (ctl_specs topo);
  Network.inject net (ctl_flap topo);
  ignore (Network.run ~until:ctl_until net ());
  let intended sw_id =
    List.map rule_key (Controller.Runtime.intended_rules rt ~switch_id:sw_id)
  in
  let installed sw_id =
    List.map rule_key (Flow.Table.rules (Network.switch net sw_id).table)
  in
  ( Shard.net_signature topo [ net ],
    sort_trace !lines,
    List.map
      (fun id -> (id, intended id, installed id))
      (Topo.Topology.switch_ids topo),
    (Network.stats net).delivered )

let run_ctl_sharded ~shards () =
  let topo = fst (Topo.Gen.fat_tree ~k:4 ()) in
  let t = Shard.create ~shards topo in
  let per_shard = Array.map (fun _ -> ref []) (Shard.nets t) in
  Array.iteri
    (fun i net ->
      let r = per_shard.(i) in
      Network.set_tracer net (fun time s ->
        r := Printf.sprintf "%.9f %s" time s :: !r))
    (Shard.nets t);
  let routing = Controller.Routing.create () in
  let rt = Zen.with_controller_sharded t [ Controller.Routing.app routing ] in
  List.iter
    (fun (s : Traffic.flow_spec) ->
      ignore (Traffic.cbr (Shard.net_of_host t s.src) s))
    (ctl_specs topo);
  Shard.inject t (ctl_flap topo);
  ignore (Shard.run ~until:ctl_until t);
  let intended sw_id =
    List.map rule_key (Controller.Runtime.intended_rules rt ~switch_id:sw_id)
  in
  let installed sw_id =
    List.map rule_key
      (Flow.Table.rules (Network.switch (Shard.net_of_switch t sw_id) sw_id).table)
  in
  ( Shard.signature t,
    sort_trace (Array.to_list per_shard |> List.concat_map (fun r -> !r)),
    List.map
      (fun id -> (id, intended id, installed id))
      (Topo.Topology.switch_ids topo),
    (Shard.stats t).delivered )

let test_controller_sharded_equiv () =
  let sig_s, trace_s, tables_s, delivered_s = run_ctl_single () in
  let sig_p, trace_p, tables_p, delivered_p = run_ctl_sharded ~shards:2 () in
  Alcotest.(check bool) "controller traffic flowed" true (delivered_s > 0);
  Alcotest.(check int) "delivered equal" delivered_s delivered_p;
  Alcotest.(check string) "controller signature equal" sig_s sig_p;
  Alcotest.(check (list string)) "controller trace equal" trace_s trace_p;
  List.iter2
    (fun (id, intended_s, installed_s) (id', intended_p, installed_p) ->
      Alcotest.(check int) "same switch" id id';
      Alcotest.(check bool)
        (Printf.sprintf "s%d sharded installed == intended" id)
        true
        (List.sort compare installed_p = List.sort compare intended_p);
      Alcotest.(check bool)
        (Printf.sprintf "s%d intended matches single-domain" id)
        true
        (List.sort compare intended_p = List.sort compare intended_s
         && List.sort compare installed_p = List.sort compare installed_s))
    tables_s tables_p

(* ------------------------------------------------------------------ *)
(* Shard_sync mailbox backpressure *)

let test_sync_backpressure () =
  let sync : int Util.Shard_sync.t =
    Util.Shard_sync.create ~capacity:4 ~shards:2 ()
  in
  for i = 1 to 10 do
    Util.Shard_sync.post sync ~src:1 ~dst:0 ~time:(float_of_int i) i
  done;
  Alcotest.(check int) "posts beyond capacity counted" 6
    (Util.Shard_sync.backpressure sync);
  Alcotest.(check int) "high-water tracks the burst" 10
    (Util.Shard_sync.high_water sync);
  Alcotest.(check int) "all envelopes survive (soft bound)" 10
    (List.length (Util.Shard_sync.drain sync 0));
  (* drained: the next burst within capacity adds no backpressure *)
  for i = 1 to 4 do
    Util.Shard_sync.post sync ~src:1 ~dst:0 ~time:(float_of_int i) i
  done;
  Alcotest.(check int) "within capacity after drain" 6
    (Util.Shard_sync.backpressure sync);
  Alcotest.(check int) "high-water is a high-water mark" 10
    (Util.Shard_sync.high_water sync)

(* ------------------------------------------------------------------ *)
(* Shard_sync determinism *)

let test_sync_drain_order () =
  let sync : int Util.Shard_sync.t = Util.Shard_sync.create ~shards:3 () in
  Util.Shard_sync.post sync ~src:2 ~dst:0 ~time:2.0 20;
  Util.Shard_sync.post sync ~src:1 ~dst:0 ~time:1.0 10;
  Util.Shard_sync.post sync ~src:1 ~dst:0 ~time:1.0 11;
  Util.Shard_sync.post sync ~src:0 ~dst:0 ~time:1.0 0;
  let order =
    List.map
      (fun (e : int Util.Shard_sync.envelope) -> e.env_load)
      (Util.Shard_sync.drain sync 0)
  in
  (* (time, src shard, per-source seq) ordering *)
  Alcotest.(check (list int)) "deterministic envelope order" [ 0; 10; 11; 20 ]
    order;
  Alcotest.(check bool) "drain empties the box" true
    (Util.Shard_sync.drain sync 0 = []);
  Alcotest.(check int) "handoffs counted at the source" 2
    (Util.Shard_sync.handoffs_of sync 1)

(* bursty posting with deliberate timestamp ties: drain order is the
   total (time, src, seq) order, so per-source sequences stay monotone
   no matter how the burst interleaves *)
let drain_order_prop =
  QCheck.Test.make ~count:100 ~name:"bursty mailbox drain order"
    QCheck.(list_of_size (Gen.int_range 0 40) (pair (int_range 0 3) (int_range 0 5)))
    (fun posts ->
      let sync : int Util.Shard_sync.t =
        Util.Shard_sync.create ~shards:4 ()
      in
      (* each source posts at non-decreasing times (like a shard
         draining its queue); tick = 0 manufactures cross-source ties *)
      let clock = Array.make 4 0.0 in
      List.iteri
        (fun i (src, tick) ->
          clock.(src) <- clock.(src) +. float_of_int tick;
          Util.Shard_sync.post sync ~src ~dst:0 ~time:clock.(src) i)
        posts;
      let drained = Util.Shard_sync.drain sync 0 in
      let sorted =
        List.sort
          (fun (a : int Util.Shard_sync.envelope) b ->
            compare (a.env_time, a.env_src, a.env_seq)
              (b.env_time, b.env_src, b.env_seq))
          drained
      in
      let monotone_per_src =
        List.for_all
          (fun src ->
            let seqs =
              List.filter_map
                (fun (e : int Util.Shard_sync.envelope) ->
                  if e.env_src = src then Some e.env_seq else None)
                drained
            in
            List.sort compare seqs = seqs)
          [ 0; 1; 2; 3 ]
      in
      List.length drained = List.length posts
      && drained = sorted && monotone_per_src)

(* ------------------------------------------------------------------ *)
(* QCheck: sharded == single-domain over random scenarios *)

let equiv_prop =
  QCheck.Test.make ~count:12 ~name:"sharded run == single-domain run"
    QCheck.(
      quad (int_range 0 2) (int_range 1 1000) (int_range 2 25)
        (pair bool bool))
    (fun (topo_id, seed, flows, (chaos, with_incidents)) ->
      List.for_all
        (fun shards ->
          ignore
            (check_equiv ~topo_id ~seed ~flows ~chaos ~with_incidents ~shards);
          true)
        [ 1; 2; 4 ])

let suites =
  [ ( "shard",
      [ Alcotest.test_case "2-shard fat-tree == single" `Quick
          test_two_shard_fattree;
        Alcotest.test_case "4-shard fat-tree + chaos == single" `Quick
          test_four_shard_fattree_chaos;
        Alcotest.test_case "1-shard linear + chaos == single" `Quick
          test_one_shard_linear;
        Alcotest.test_case "handoff/round/stall counters" `Quick
          test_handoffs_counted;
        Alcotest.test_case "lookahead = min cross-shard delay" `Quick
          test_lookahead_is_min_cross_delay;
        Alcotest.test_case "partition_of_string" `Quick
          test_partition_of_string;
        Alcotest.test_case "pod partition keeps pods whole" `Quick
          test_pod_partition_no_intra_pod_crossing;
        Alcotest.test_case "Shard_sync drain order" `Quick
          test_sync_drain_order;
        Alcotest.test_case "Shard_sync mailbox backpressure" `Quick
          test_sync_backpressure;
        Alcotest.test_case "adaptive windows vs fixed (2-site)" `Quick
          test_adaptive_vs_fixed_two_sites;
        Alcotest.test_case "sparse fabric fast-forward" `Quick
          test_sparse_fast_forward;
        Alcotest.test_case "controller-attached sharded == single" `Quick
          test_controller_sharded_equiv;
        QCheck_alcotest.to_alcotest drain_order_prop;
        QCheck_alcotest.to_alcotest equiv_prop ] ) ]
