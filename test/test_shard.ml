(* The sharded simulator (ISSUE 6): conservative-lookahead parallel
   runs must be observably indistinguishable from the single-domain
   engine — same delivery counters, flow tables, port stats, event
   traces and chaos traces on a fixed seed, for 1, 2 and 4 shards,
   with and without injected incidents. *)

open Dataplane

(* sort "<time> <text>" lines by (parsed time, text) so tie order and
   magnitude-crossing float formatting don't leak into comparisons *)
let sort_trace lines =
  let key line =
    match String.index_opt line ' ' with
    | Some i ->
      ( Option.value ~default:0.0
          (float_of_string_opt (String.sub line 0 i)),
        line )
    | None -> (0.0, line)
  in
  List.sort compare (List.map key lines) |> List.map snd

type obs = {
  o_signature : string;
  o_trace : string list;    (* sorted dataplane trace *)
  o_chaos : string list;    (* sorted chaos notes *)
  o_delivered : int;
  o_logical : int;          (* executed events minus sharding overhead *)
}

let mk_topo = function
  | 0 -> Topo.Gen.linear ~switches:4 ~hosts_per_switch:2 ()
  | 1 -> fst (Topo.Gen.fat_tree ~k:4 ())
  | _ -> Topo.Gen.ring ~switches:5 ~hosts_per_switch:1 ()

(* a deterministic little scenario: flap the first switch-switch link,
   crash the highest-id switch *)
let incidents_for topo =
  let flap =
    List.find_map
      (fun (l : Topo.Topology.link) ->
        if Topo.Topology.Node.is_switch l.src
           && Topo.Topology.Node.is_switch l.dst
        then
          Some
            (Fault.Link_flap
               { node = l.src; port = l.src_port; at = 0.002;
                 duration = 0.003 })
        else None)
      (Topo.Topology.links topo)
  in
  let crash =
    match List.rev (Topo.Topology.switch_ids topo) with
    | id :: _ ->
      [ Fault.Switch_outage { switch_id = id; at = 0.004; duration = 0.002 } ]
    | [] -> []
  in
  (match flap with Some f -> [ f ] | None -> []) @ crash

(* control-channel loss + jitter, plus link-level data chaos: the
   per-link verdict streams are keyed on [link_seed] (not the
   shard-perturbed seed), so drops/corruptions/reorders must replay
   byte-identically at any shard count *)
let chaos_cfg seed =
  Fault.make_config ~seed:(seed + 7) ~drop:0.2 ~jitter:1e-3 ~link_drop:0.08
    ~link_corrupt:0.04 ~link_reorder:0.08 ()

(* staggered starts keep the workload free of cross-flow timestamp
   ties — the precondition for exact trace equivalence (see Shard's
   header on the conservative-PDES tie caveat) *)
let specs_for topo ~seed ~flows =
  let prng = Util.Prng.create seed in
  let host_ids = Array.of_list (Topo.Topology.host_ids topo) in
  Traffic.random_pair_specs ~stagger:0.0004 ~prng ~host_ids ~flows
    ~rate_pps:2000.0 ~pkt_size:400 ~stop:0.008 ()

let until = 0.02

let run_single ~topo_id ~seed ~flows ~chaos ~with_incidents =
  let topo = mk_topo topo_id in
  let fault = if chaos then Some (Fault.of_config (chaos_cfg seed)) else None in
  let net = Network.create ?fault topo in
  let lines = ref [] in
  Network.set_tracer net (fun time s ->
    lines := Printf.sprintf "%.9f %s" time s :: !lines);
  let rules =
    Netkat.Local.compile_all
      ~switches:(Topo.Topology.switch_ids topo)
      (Netkat.Builder.routing_policy topo)
  in
  List.iter
    (fun (switch_id, rs) ->
      let table = (Network.switch net switch_id).table in
      List.iter
        (fun (r : Netkat.Local.rule) ->
          Flow.Table.add table
            (Flow.Table.make_rule ~priority:r.priority ~pattern:r.pattern
               ~actions:r.actions ()))
        rs)
    rules;
  List.iter
    (fun (s : Traffic.flow_spec) -> ignore (Traffic.cbr net s))
    (specs_for topo ~seed ~flows);
  if with_incidents then Network.inject net (incidents_for topo);
  let executed = Network.run ~until net () in
  { o_signature = Shard.net_signature topo [ net ];
    o_trace = sort_trace !lines;
    o_chaos =
      (match Network.fault net with
       | Some f -> sort_trace (Fault.events f)
       | None -> []);
    o_delivered = (Network.stats net).delivered;
    o_logical = executed }

let run_sharded ~topo_id ~seed ~flows ~chaos ~with_incidents ~shards =
  let topo = mk_topo topo_id in
  let fault_config = if chaos then Some (chaos_cfg seed) else None in
  let t = Shard.create ?fault_config ~shards topo in
  let per_shard = Array.map (fun _ -> ref []) (Shard.nets t) in
  Array.iteri
    (fun i net ->
      let r = per_shard.(i) in
      Network.set_tracer net (fun time s ->
        r := Printf.sprintf "%.9f %s" time s :: !r))
    (Shard.nets t);
  let rules =
    Netkat.Local.compile_all
      ~switches:(Topo.Topology.switch_ids topo)
      (Netkat.Builder.routing_policy topo)
  in
  List.iter
    (fun (switch_id, rs) ->
      let net = Shard.net_of_switch t switch_id in
      let table = (Network.switch net switch_id).table in
      List.iter
        (fun (r : Netkat.Local.rule) ->
          Flow.Table.add table
            (Flow.Table.make_rule ~priority:r.priority ~pattern:r.pattern
               ~actions:r.actions ()))
        rs)
    rules;
  List.iter
    (fun (s : Traffic.flow_spec) ->
      ignore (Traffic.cbr (Shard.net_of_host t s.src) s))
    (specs_for topo ~seed ~flows);
  let incidents = if with_incidents then incidents_for topo else [] in
  if with_incidents then Shard.inject t incidents;
  let executed = Shard.run ~until t in
  (* sharding overhead events: one queue-release per cross-shard handoff,
     plus the silent clone link flips on every non-owning shard.  A
     reordered cross-shard packet is the exception: its late delivery is
     a separate event in the single-domain run too, so that handoff
     costs no extra event — subtract those back out. *)
  let flaps =
    List.length
      (List.filter
         (function Fault.Link_flap _ -> true | _ -> false)
         incidents)
  in
  let cross_reorders =
    Array.fold_left
      (fun acc net -> acc + Network.remote_reorders net)
      0 (Shard.nets t)
  in
  let overhead =
    Shard.handoffs t + (2 * flaps * (shards - 1)) - cross_reorders
  in
  { o_signature = Shard.signature t;
    o_trace =
      sort_trace
        (Array.to_list per_shard |> List.concat_map (fun r -> !r));
    o_chaos = sort_trace (Shard.chaos_events t);
    o_delivered = (Shard.stats t).delivered;
    o_logical = executed - overhead }

let check_equiv ~topo_id ~seed ~flows ~chaos ~with_incidents ~shards =
  let s = run_single ~topo_id ~seed ~flows ~chaos ~with_incidents in
  let p = run_sharded ~topo_id ~seed ~flows ~chaos ~with_incidents ~shards in
  let label what =
    Printf.sprintf "%s (topo=%d seed=%d flows=%d chaos=%b inc=%b shards=%d)"
      what topo_id seed flows chaos with_incidents shards
  in
  Alcotest.(check string) (label "signature") s.o_signature p.o_signature;
  Alcotest.(check (list string)) (label "trace") s.o_trace p.o_trace;
  Alcotest.(check (list string)) (label "chaos trace") s.o_chaos p.o_chaos;
  Alcotest.(check int) (label "logical events") s.o_logical p.o_logical;
  s.o_delivered

(* ------------------------------------------------------------------ *)
(* Deterministic unit tests *)

let test_two_shard_fattree () =
  let delivered =
    check_equiv ~topo_id:1 ~seed:42 ~flows:30 ~chaos:false
      ~with_incidents:false ~shards:2
  in
  Alcotest.(check bool) "traffic actually flowed" true (delivered > 0)

let test_four_shard_fattree_chaos () =
  ignore
    (check_equiv ~topo_id:1 ~seed:7 ~flows:20 ~chaos:true ~with_incidents:true
       ~shards:4)

let test_one_shard_linear () =
  ignore
    (check_equiv ~topo_id:0 ~seed:3 ~flows:10 ~chaos:true ~with_incidents:true
       ~shards:1)

let test_handoffs_counted () =
  let topo_id = 1 and seed = 42 and flows = 30 in
  let topo = mk_topo topo_id in
  let t = Shard.create ~shards:2 topo in
  let rules =
    Netkat.Local.compile_all
      ~switches:(Topo.Topology.switch_ids topo)
      (Netkat.Builder.routing_policy topo)
  in
  List.iter
    (fun (switch_id, rs) ->
      let net = Shard.net_of_switch t switch_id in
      let table = (Network.switch net switch_id).table in
      List.iter
        (fun (r : Netkat.Local.rule) ->
          Flow.Table.add table
            (Flow.Table.make_rule ~priority:r.priority ~pattern:r.pattern
               ~actions:r.actions ()))
        rs)
    rules;
  List.iter
    (fun (s : Traffic.flow_spec) ->
      ignore (Traffic.cbr (Shard.net_of_host t s.src) s))
    (specs_for topo ~seed ~flows);
  ignore (Shard.run ~until t);
  Alcotest.(check bool) "cross-shard handoffs happened" true
    (Shard.handoffs t > 0);
  Alcotest.(check int) "per-shard handoffs sum to total" (Shard.handoffs t)
    (Shard.handoffs_of t 0 + Shard.handoffs_of t 1);
  Alcotest.(check bool) "rounds advanced" true (Shard.rounds t > 0);
  Alcotest.(check bool) "no backpressure on this workload" true
    (Shard.backpressure t = 0)

let test_lookahead_is_min_cross_delay () =
  let topo = fst (Topo.Gen.fat_tree ~k:4 ()) in
  let t = Shard.create ~shards:2 topo in
  Alcotest.(check bool) "lookahead equals the generator default delay" true
    (Shard.lookahead t = Topo.Gen.default_delay);
  let one = Shard.create ~shards:1 topo in
  Alcotest.(check bool) "1 shard has no cross links: infinite lookahead" true
    (Shard.lookahead one = infinity)

let test_partition_of_string () =
  Alcotest.(check bool) "block parses" true
    (Shard.partition_of_string "block" <> None);
  Alcotest.(check bool) "pod:4 parses" true
    (Shard.partition_of_string "pod:4" <> None);
  Alcotest.(check bool) "garbage rejected" true
    (Shard.partition_of_string "hash" = None)

let test_pod_partition_no_intra_pod_crossing () =
  let topo, info = Topo.Gen.fat_tree ~k:4 () in
  let t = Shard.create ~partition:(Shard.pod_partition ~k:4) ~shards:4 topo in
  (* every agg<->edge link stays inside one shard *)
  List.iter
    (fun (l : Topo.Topology.link) ->
      match (l.src, l.dst) with
      | Topo.Topology.Node.Switch a, Topo.Topology.Node.Switch b
        when List.mem a info.aggregation && List.mem b info.edge ->
        Alcotest.(check int)
          (Printf.sprintf "s%d-s%d same shard" a b)
          (Shard.shard_of t l.src) (Shard.shard_of t l.dst)
      | _ -> ())
    (Topo.Topology.links topo)

(* ------------------------------------------------------------------ *)
(* Shard_sync determinism *)

let test_sync_drain_order () =
  let sync : int Util.Shard_sync.t = Util.Shard_sync.create ~shards:3 () in
  Util.Shard_sync.post sync ~src:2 ~dst:0 ~time:2.0 20;
  Util.Shard_sync.post sync ~src:1 ~dst:0 ~time:1.0 10;
  Util.Shard_sync.post sync ~src:1 ~dst:0 ~time:1.0 11;
  Util.Shard_sync.post sync ~src:0 ~dst:0 ~time:1.0 0;
  let order =
    List.map
      (fun (e : int Util.Shard_sync.envelope) -> e.env_load)
      (Util.Shard_sync.drain sync 0)
  in
  (* (time, src shard, per-source seq) ordering *)
  Alcotest.(check (list int)) "deterministic envelope order" [ 0; 10; 11; 20 ]
    order;
  Alcotest.(check bool) "drain empties the box" true
    (Util.Shard_sync.drain sync 0 = []);
  Alcotest.(check int) "handoffs counted at the source" 2
    (Util.Shard_sync.handoffs_of sync 1)

(* ------------------------------------------------------------------ *)
(* QCheck: sharded == single-domain over random scenarios *)

let equiv_prop =
  QCheck.Test.make ~count:12 ~name:"sharded run == single-domain run"
    QCheck.(
      quad (int_range 0 2) (int_range 1 1000) (int_range 2 25)
        (pair bool bool))
    (fun (topo_id, seed, flows, (chaos, with_incidents)) ->
      List.for_all
        (fun shards ->
          ignore
            (check_equiv ~topo_id ~seed ~flows ~chaos ~with_incidents ~shards);
          true)
        [ 1; 2; 4 ])

let suites =
  [ ( "shard",
      [ Alcotest.test_case "2-shard fat-tree == single" `Quick
          test_two_shard_fattree;
        Alcotest.test_case "4-shard fat-tree + chaos == single" `Quick
          test_four_shard_fattree_chaos;
        Alcotest.test_case "1-shard linear + chaos == single" `Quick
          test_one_shard_linear;
        Alcotest.test_case "handoff/round/stall counters" `Quick
          test_handoffs_counted;
        Alcotest.test_case "lookahead = min cross-shard delay" `Quick
          test_lookahead_is_min_cross_delay;
        Alcotest.test_case "partition_of_string" `Quick
          test_partition_of_string;
        Alcotest.test_case "pod partition keeps pods whole" `Quick
          test_pod_partition_no_intra_pod_crossing;
        Alcotest.test_case "Shard_sync drain order" `Quick
          test_sync_drain_order;
        QCheck_alcotest.to_alcotest equiv_prop ] ) ]
