(* Tests for match patterns, actions and the priority flow table. *)

open Packet
open Flow

let hdr = Headers.tcp ~switch:1 ~in_port:2 ~src_host:5 ~dst_host:9
    ~tp_src:1234 ~tp_dst:80

(* ------------------------------------------------------------------ *)
(* Pattern *)

let test_any_matches () =
  Alcotest.(check bool) "any" true (Pattern.matches Pattern.any hdr);
  Alcotest.(check bool) "is_any" true (Pattern.is_any Pattern.any)

let test_exact_fields () =
  List.iter
    (fun f ->
      let v = Headers.get hdr f in
      let p = Pattern.of_field f v in
      Alcotest.(check bool) (Fields.to_string f ^ " matches") true
        (Pattern.matches p hdr);
      let p' = Pattern.of_field f (v + 1) in
      Alcotest.(check bool) (Fields.to_string f ^ " mismatch") false
        (Pattern.matches p' hdr))
    [ Fields.In_port; Fields.Eth_src; Fields.Eth_dst; Fields.Eth_type;
      Fields.Vlan; Fields.Ip_proto; Fields.Ip4_src; Fields.Ip4_dst;
      Fields.Tp_src; Fields.Tp_dst ]

let test_switch_not_matchable () =
  Alcotest.(check bool) "switch rejected" true
    (match Pattern.of_field Fields.Switch 1 with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_prefix_pattern () =
  let p =
    { Pattern.any with ip4_dst = Some (Ipv4.Prefix.of_string "10.0.0.0/16") }
  in
  Alcotest.(check bool) "inside /16" true (Pattern.matches p hdr);
  let p' =
    { Pattern.any with ip4_dst = Some (Ipv4.Prefix.of_string "10.1.0.0/16") }
  in
  Alcotest.(check bool) "outside /16" false (Pattern.matches p' hdr)

let test_conj () =
  let a = Pattern.of_field Fields.Tp_dst 80 in
  let b = Pattern.of_field Fields.In_port 2 in
  (match Pattern.conj a b with
   | None -> Alcotest.fail "conj should exist"
   | Some c ->
     Alcotest.(check bool) "conj matches" true (Pattern.matches c hdr);
     Alcotest.(check int) "weight 2" 2 (Pattern.weight c));
  Alcotest.(check bool) "contradiction" true
    (Pattern.conj a (Pattern.of_field Fields.Tp_dst 81) = None)

let test_conj_prefixes () =
  let wide = { Pattern.any with ip4_src = Some (Ipv4.Prefix.of_string "10.0.0.0/8") } in
  let narrow = { Pattern.any with ip4_src = Some (Ipv4.Prefix.of_string "10.1.0.0/16") } in
  (match Pattern.conj wide narrow with
   | Some c ->
     Alcotest.(check bool) "narrower wins" true
       (c.ip4_src = narrow.ip4_src)
   | None -> Alcotest.fail "nested prefixes conj");
  let disjoint = { Pattern.any with ip4_src = Some (Ipv4.Prefix.of_string "11.0.0.0/8") } in
  Alcotest.(check bool) "disjoint prefixes" true
    (Pattern.conj wide disjoint = None)

let test_subsumes () =
  let gen = Pattern.of_field Fields.Tp_dst 80 in
  let spec = Option.get (Pattern.conj gen (Pattern.of_field Fields.In_port 2)) in
  Alcotest.(check bool) "general subsumes specific" true
    (Pattern.subsumes ~general:gen spec);
  Alcotest.(check bool) "specific does not subsume general" false
    (Pattern.subsumes ~general:spec gen);
  Alcotest.(check bool) "any subsumes all" true
    (Pattern.subsumes ~general:Pattern.any spec)

let test_overlap () =
  let a = Pattern.of_field Fields.Tp_dst 80 in
  let b = Pattern.of_field Fields.In_port 2 in
  Alcotest.(check bool) "cross fields overlap" true (Pattern.overlap a b);
  Alcotest.(check bool) "same field differs" false
    (Pattern.overlap a (Pattern.of_field Fields.Tp_dst 81))

(* ------------------------------------------------------------------ *)
(* Action *)

let test_apply_seq () =
  let s : Action.seq =
    [ Set_field (Fields.Vlan, 100); Output (Physical 7) ]
  in
  let h, outs = Action.apply_seq hdr s in
  Alcotest.(check int) "vlan set" 100 h.vlan;
  Alcotest.(check bool) "one output" true (outs = [ Action.Physical 7 ])

let test_apply_group_multicast () =
  let g : Action.group =
    [ [ Output (Physical 1) ];
      [ Set_field (Fields.Vlan, 5); Output (Physical 2) ] ]
  in
  let outs = Action.apply_group hdr g in
  Alcotest.(check int) "two copies" 2 (List.length outs);
  (match outs with
   | [ (h1, Action.Physical 1); (h2, Action.Physical 2) ] ->
     Alcotest.(check int) "copy 1 untouched" hdr.vlan h1.vlan;
     Alcotest.(check int) "copy 2 tagged" 5 h2.vlan
   | _ -> Alcotest.fail "unexpected outputs")

let test_mods_before_output_only () =
  (* a Set_field after the Output must not affect the emitted copy *)
  let g : Action.group =
    [ [ Output (Physical 1); Set_field (Fields.Vlan, 9) ] ]
  in
  match Action.apply_group hdr g with
  | [ (h, Action.Physical 1) ] ->
    Alcotest.(check int) "late mod not visible" hdr.vlan h.vlan
  | _ -> Alcotest.fail "unexpected"

let test_drop_group () =
  Alcotest.(check int) "drop emits nothing" 0
    (List.length (Action.apply_group hdr Action.drop))

(* ------------------------------------------------------------------ *)
(* Table *)

let mk ?(priority = 0) ?(idle = None) ?(hard = None) pattern actions =
  Table.make_rule ~priority ~idle_timeout:idle ~hard_timeout:hard ~pattern
    ~actions ()

let test_priority_order () =
  let t = Table.create () in
  Table.add t (mk ~priority:1 Pattern.any (Action.forward 1));
  Table.add t
    (mk ~priority:10 (Pattern.of_field Fields.Tp_dst 80) (Action.forward 2));
  (match Table.lookup t hdr with
   | Some r -> Alcotest.(check int) "high priority wins" 10 r.priority
   | None -> Alcotest.fail "no match");
  let other = Headers.set hdr Fields.Tp_dst 443 in
  match Table.lookup t other with
  | Some r -> Alcotest.(check int) "fallback" 1 r.priority
  | None -> Alcotest.fail "no fallback match"

let test_tie_break_first_installed () =
  let t = Table.create () in
  Table.add t (mk ~priority:5 (Pattern.of_field Fields.Tp_dst 80) (Action.forward 1));
  Table.add t (mk ~priority:5 (Pattern.of_field Fields.In_port 2) (Action.forward 2));
  match Table.lookup t hdr with
  | Some r ->
    Alcotest.(check bool) "first installed wins" true
      (r.actions = Action.forward 1)
  | None -> Alcotest.fail "no match"

let test_modify_semantics () =
  let t = Table.create () in
  Table.add t (mk ~priority:5 Pattern.any (Action.forward 1));
  Table.add t (mk ~priority:5 Pattern.any (Action.forward 9));
  Alcotest.(check int) "replaced, not duplicated" 1 (Table.size t);
  match Table.lookup t hdr with
  | Some r -> Alcotest.(check bool) "new actions" true (r.actions = Action.forward 9)
  | None -> Alcotest.fail "no match"

(* regression: modify used to install the replacement with zeroed
   counters and a fresh install time, losing the flow's history *)
let test_modify_preserves_counters () =
  let t = Table.create () in
  Table.add t
    (Table.make_rule ~priority:5 ~now:1.0 ~pattern:Pattern.any
       ~actions:(Action.forward 1) ());
  ignore (Table.apply t ~now:2.0 ~size:100 hdr);
  ignore (Table.apply t ~now:3.0 ~size:150 hdr);
  Table.add t
    (Table.make_rule ~priority:5 ~now:9.0 ~pattern:Pattern.any
       ~actions:(Action.forward 7) ());
  match Table.rules t with
  | [ r ] ->
    Alcotest.(check bool) "actions updated" true (r.actions = Action.forward 7);
    Alcotest.(check int) "packets survive modify" 2 r.packets;
    Alcotest.(check int) "bytes survive modify" 250 r.bytes;
    Alcotest.(check (float 1e-9)) "install time survives modify" 1.0
      r.installed_at;
    Alcotest.(check (float 1e-9)) "last hit survives modify" 3.0 r.last_hit
  | _ -> Alcotest.fail "one rule expected"

(* regression: deletes that removed nothing used to flush the whole
   exact-match cache anyway *)
let test_noop_delete_keeps_cache () =
  let t = Table.create () in
  Table.add t (mk ~priority:5 (Pattern.of_field Fields.Tp_dst 80) (Action.forward 1));
  Table.add t
    (Table.make_rule ~priority:1 ~cookie:7 ~pattern:Pattern.any
       ~actions:(Action.forward 2) ());
  ignore (Table.lookup t hdr);  (* populate *)
  ignore (Table.lookup t hdr);  (* warm *)
  Alcotest.(check int) "cache warm" 1 (Table.cache_hits t);
  let inv = Table.invalidations t in
  (* nothing is subsumed by tp_dst=9999; nothing carries cookie 99;
     no strict (priority, pattern) rule matches; nothing is expired *)
  Table.remove t ~pattern:(Pattern.of_field Fields.Tp_dst 9999);
  Table.remove ~cookie:99 t ~pattern:Pattern.any;
  Table.remove_strict t ~priority:3 ~pattern:Pattern.any;
  ignore (Table.expire t ~now:100.0);
  Alcotest.(check int) "no-op deletes do not invalidate" inv
    (Table.invalidations t);
  ignore (Table.lookup t hdr);
  Alcotest.(check int) "cache still warm" 2 (Table.cache_hits t);
  (* a delete that really removes must still invalidate *)
  Table.remove ~cookie:7 t ~pattern:Pattern.any;
  Alcotest.(check int) "real delete invalidates" (inv + 1)
    (Table.invalidations t);
  ignore (Table.lookup t hdr);
  Alcotest.(check int) "cache cold after real delete" 2 (Table.cache_hits t)

let test_counters () =
  let t = Table.create () in
  Table.add t (mk Pattern.any (Action.forward 1));
  ignore (Table.apply t ~now:0.0 ~size:100 hdr);
  ignore (Table.apply t ~now:0.1 ~size:200 hdr);
  Alcotest.(check int) "hits" 2 (Table.hits t);
  Alcotest.(check int) "misses" 0 (Table.misses t);
  match Table.rules t with
  | [ r ] ->
    Alcotest.(check int) "packets" 2 r.packets;
    Alcotest.(check int) "bytes" 300 r.bytes
  | _ -> Alcotest.fail "one rule expected"

let test_miss_counted () =
  let t = Table.create () in
  Table.add t (mk (Pattern.of_field Fields.Tp_dst 443) (Action.forward 1));
  Alcotest.(check bool) "miss" true (Table.apply t ~now:0.0 ~size:1 hdr = None);
  Alcotest.(check int) "miss count" 1 (Table.misses t)

let test_capacity () =
  let t = Table.create ~capacity:2 () in
  Table.add t (mk ~priority:1 (Pattern.of_field Fields.Tp_dst 1) (Action.forward 1));
  Table.add t (mk ~priority:2 (Pattern.of_field Fields.Tp_dst 2) (Action.forward 1));
  Alcotest.check_raises "full" Table.Table_full (fun () ->
    Table.add t (mk ~priority:3 (Pattern.of_field Fields.Tp_dst 3) (Action.forward 1)))

let test_remove_subsumed () =
  let t = Table.create () in
  Table.add t (mk ~priority:1 (Pattern.of_field Fields.Tp_dst 80) (Action.forward 1));
  Table.add t (mk ~priority:2 (Pattern.of_field Fields.Tp_dst 443) (Action.forward 1));
  Table.add t (mk ~priority:3 (Pattern.of_field Fields.In_port 9) (Action.forward 1));
  (* delete everything matching tp_dst=80 only *)
  Table.remove t ~pattern:(Pattern.of_field Fields.Tp_dst 80);
  Alcotest.(check int) "one gone" 2 (Table.size t);
  Table.remove t ~pattern:Pattern.any;
  Alcotest.(check int) "all gone" 0 (Table.size t)

let test_remove_by_cookie () =
  let t = Table.create () in
  Table.add t
    (Table.make_rule ~priority:1 ~cookie:7 ~pattern:(Pattern.of_field Fields.Tp_dst 80)
       ~actions:(Action.forward 1) ());
  Table.add t
    (Table.make_rule ~priority:2 ~cookie:8 ~pattern:(Pattern.of_field Fields.Tp_dst 443)
       ~actions:(Action.forward 1) ());
  Table.remove ~cookie:7 t ~pattern:Pattern.any;
  Alcotest.(check int) "only cookie 7 gone" 1 (Table.size t);
  match Table.rules t with
  | [ r ] -> Alcotest.(check int) "survivor" 8 r.cookie
  | _ -> Alcotest.fail "one rule"

let test_idle_timeout () =
  let t = Table.create () in
  Table.add t (mk ~idle:(Some 1.0) Pattern.any (Action.forward 1));
  ignore (Table.apply t ~now:0.5 ~size:1 hdr);
  Alcotest.(check int) "kept while active" 0
    (List.length (Table.expire t ~now:1.2));
  Alcotest.(check int) "evicted when idle" 1
    (List.length (Table.expire t ~now:1.6));
  Alcotest.(check int) "table empty" 0 (Table.size t)

let test_hard_timeout () =
  let t = Table.create () in
  Table.add t (mk ~hard:(Some 2.0) Pattern.any (Action.forward 1));
  (* traffic does not save it *)
  ignore (Table.apply t ~now:1.9 ~size:1 hdr);
  Alcotest.(check int) "evicted at hard deadline" 1
    (List.length (Table.expire t ~now:2.0))

let test_overlaps_detection () =
  let t = Table.create () in
  Table.add t (mk ~priority:5 (Pattern.of_field Fields.Tp_dst 80) (Action.forward 1));
  Table.add t (mk ~priority:5 (Pattern.of_field Fields.In_port 2) (Action.forward 2));
  Table.add t (mk ~priority:4 (Pattern.of_field Fields.Tp_src 1) (Action.forward 3));
  Alcotest.(check int) "one overlapping pair" 1 (List.length (Table.overlaps t))

let test_shadowed_detection () =
  let t = Table.create () in
  Table.add t (mk ~priority:10 Pattern.any (Action.forward 1));
  Table.add t (mk ~priority:5 (Pattern.of_field Fields.Tp_dst 80) (Action.forward 2));
  Alcotest.(check int) "shadowed rule found" 1 (List.length (Table.shadowed t));
  match Table.shadowed t with
  | [ r ] -> Alcotest.(check int) "the low one" 5 r.priority
  | _ -> Alcotest.fail "expected one"

(* property: lookup returns the max-priority matching rule *)
let prop_lookup_max_priority =
  let gen =
    QCheck.Gen.(
      list_size (1 -- 20)
        (pair (int_bound 10)
           (oneof [ return None; map Option.some (int_bound 3) ])))
  in
  QCheck.Test.make ~name:"lookup returns max-priority matching rule" ~count:200
    (QCheck.make gen)
    (fun specs ->
      let t = Table.create () in
      List.iteri
        (fun i (prio, port_test) ->
          let pattern =
            match port_test with
            | None -> Pattern.any
            | Some p -> Pattern.of_field Fields.In_port p
          in
          Table.add t
            (Table.make_rule ~priority:prio ~cookie:i ~pattern
               ~actions:(Action.forward 1) ()))
        specs;
      let probe = Headers.set hdr Fields.In_port 1 in
      let matching =
        List.filter (fun (r : Table.rule) -> Pattern.matches r.pattern probe)
          (Table.rules t)
      in
      match Table.lookup t probe with
      | None -> matching = []
      | Some r ->
        List.for_all (fun (r' : Table.rule) -> r'.priority <= r.priority)
          matching)

(* directed checks of the exact-match cache counters *)
let test_cache_counters () =
  let t = Table.create () in
  Table.add t (mk ~priority:1 Pattern.any (Action.forward 1));
  Alcotest.(check bool) "add invalidates" true (Table.invalidations t > 0);
  ignore (Table.lookup t hdr);
  Alcotest.(check int) "first probe misses" 1 (Table.cache_misses t);
  ignore (Table.lookup t hdr);
  Alcotest.(check int) "second probe hits" 1 (Table.cache_hits t);
  Table.add t
    (mk ~priority:2 (Pattern.of_field Fields.Tp_dst 80) (Action.forward 2));
  ignore (Table.lookup t hdr);
  Alcotest.(check int) "stale after add -> miss" 2 (Table.cache_misses t);
  (match Table.lookup t hdr with
   | Some r -> Alcotest.(check int) "refresh sees new winner" 2 r.priority
   | None -> Alcotest.fail "expected a match");
  Alcotest.(check int) "hit after refresh" 2 (Table.cache_hits t)

(* property: the flow cache never changes lookup results — after every
   mutating operation (add / remove / remove_strict / expire / apply /
   clear, each of which must invalidate), cached lookup agrees with a
   raw linear scan on a battery of probe headers *)
let prop_cache_consistent =
  let gen_op =
    QCheck.Gen.(
      let port = oneof [ return None; map Option.some (int_bound 3) ] in
      oneof
        [ map3
            (fun prio p idle -> `Add (prio, p, idle))
            (int_bound 10) port
            (oneof [ return None; map Option.some (1 -- 3) ]);
          map (fun p -> `Remove p) port;
          map2 (fun prio p -> `Remove_strict (prio, p)) (int_bound 10) port;
          return `Expire;
          map2 (fun p dst -> `Apply (p, dst)) (int_bound 4) (int_bound 4);
          return `Clear ])
  in
  QCheck.Test.make ~name:"flow cache: cached lookup == linear under churn"
    ~count:1200
    (QCheck.make QCheck.Gen.(list_size (5 -- 40) gen_op))
    (fun ops ->
      let t = Table.create () in
      let cookie = ref 0 in
      let now = ref 0.0 in
      let pat = function
        | None -> Pattern.any
        | Some p -> Pattern.of_field Fields.In_port p
      in
      let probes =
        List.map (fun port -> Headers.set hdr Fields.In_port port)
          [ 0; 1; 2; 3; 4 ]
      in
      (* compare winners by cookie: every added rule gets a fresh one *)
      let agree () =
        List.for_all
          (fun h ->
            let key = Option.map (fun (r : Table.rule) -> r.cookie) in
            let reference = key (Table.lookup_linear t h) in
            key (Table.lookup t h) = reference
            && key (Table.lookup_tuple t h) = reference)
          probes
      in
      List.for_all
        (fun op ->
          now := !now +. 1.0;
          (match op with
           | `Add (priority, p, idle) ->
             incr cookie;
             Table.add t
               (Table.make_rule ~priority ~cookie:!cookie ~pattern:(pat p)
                  ~idle_timeout:(Option.map float_of_int idle) ~now:!now
                  ~actions:(Action.forward 1) ())
           | `Remove p -> Table.remove t ~pattern:(pat p)
           | `Remove_strict (priority, p) ->
             Table.remove_strict t ~priority ~pattern:(pat p)
           | `Expire -> ignore (Table.expire t ~now:!now)
           | `Apply (p, dst) ->
             let h =
               Headers.set (Headers.set hdr Fields.In_port p) Fields.Tp_dst dst
             in
             ignore (Table.apply t ~now:!now ~size:100 h)
           | `Clear -> Table.clear t);
          agree ())
        ops)

(* ------------------------------------------------------------------ *)
(* Tuple-space classifier *)

(* shape tables must track add/remove/expire incrementally *)
let test_shape_table_maintenance () =
  let t = Table.create () in
  let dst len s =
    { Pattern.any with
      ip4_dst = Some (Ipv4.Prefix.make (Ipv4.of_string s) len) }
  in
  Table.add t (mk ~priority:1 Pattern.any (Action.forward 1));
  Table.add t (mk ~priority:2 (Pattern.of_field Fields.Tp_dst 80) (Action.forward 2));
  Table.add t (mk ~priority:3 (dst 8 "10.0.0.0") (Action.forward 3));
  Table.add t (mk ~priority:4 (dst 24 "10.0.0.0") (Action.forward 4));
  (* a second rule of an existing shape must not add a shape *)
  Table.add t (mk ~priority:5 (dst 24 "11.2.3.0") (Action.forward 5));
  Alcotest.(check int) "four distinct shapes" 4 (Table.shape_count t);
  Alcotest.(check int) "five rules" 5 (Table.size t);
  (* the /24 shape survives while one of its two rules remains *)
  Table.remove_strict t ~priority:5 ~pattern:(dst 24 "11.2.3.0");
  Alcotest.(check int) "shape kept while populated" 4 (Table.shape_count t);
  Table.remove_strict t ~priority:4 ~pattern:(dst 24 "10.0.0.0");
  Alcotest.(check int) "empty shape dropped" 3 (Table.shape_count t);
  (* expire-driven eviction unfiles rules too *)
  Table.add t (mk ~priority:9 ~hard:(Some 1.0) (Pattern.of_field Fields.In_port 7)
                 (Action.forward 6));
  Alcotest.(check int) "new shape on add" 4 (Table.shape_count t);
  ignore (Table.expire t ~now:5.0);
  Alcotest.(check int) "shape dropped on expiry" 3 (Table.shape_count t);
  Table.clear t;
  Alcotest.(check int) "clear empties shapes" 0 (Table.shape_count t)

(* shapes are probed in descending max-priority order with early exit:
   a hit in the top shape costs one probe regardless of rule or shape
   count; only a miss there falls through to lower-ceiling shapes *)
let test_classifier_probe_cost () =
  let t = Table.create () in
  for i = 1 to 100 do
    Table.add t
      (mk ~priority:i
         { Pattern.any with eth_dst = Some (Mac.of_host_id i) }
         (Action.forward 1))
  done;
  Table.add t (mk ~priority:0 Pattern.any (Action.forward 2));
  Alcotest.(check int) "two shapes for 101 rules" 2 (Table.shape_count t);
  (* hdr's dst_host is 9, matching the eth_dst shape (ceiling 100): that
     shape is probed first and prio 9 > ceiling 0 of the catch-all, so
     the search stops after a single probe *)
  let before = Table.classifier_probes t in
  (match Table.lookup_tuple t hdr with
   | Some r -> Alcotest.(check int) "winner found" 9 r.priority
   | None -> Alcotest.fail "expected a match");
  Alcotest.(check int) "early exit after top shape" 1
    (Table.classifier_probes t - before);
  (* a header outside the eth_dst rules misses the top shape and falls
     through to the catch-all: two probes *)
  let stranger = Headers.set hdr Fields.Eth_dst (Mac.of_host_id 999) in
  let before = Table.classifier_probes t in
  (match Table.lookup_tuple t stranger with
   | Some r -> Alcotest.(check int) "catch-all wins" 0 r.priority
   | None -> Alcotest.fail "expected the catch-all to match");
  Alcotest.(check int) "fallthrough probes both shapes" 2
    (Table.classifier_probes t - before);
  (* removing the ceiling rule of the top shape recomputes its ceiling
     (100 -> 99) without disturbing lookups *)
  Table.remove_strict t ~priority:100
    ~pattern:{ Pattern.any with eth_dst = Some (Mac.of_host_id 100) };
  (match Table.lookup_tuple t hdr with
   | Some r -> Alcotest.(check int) "winner after ceiling removal" 9 r.priority
   | None -> Alcotest.fail "expected a match after removal")

(* longest-prefix-style stacks resolve by priority across shapes *)
let test_classifier_prefix_priorities () =
  let t = Table.create () in
  let dst len s prio out =
    Table.add t
      (mk ~priority:prio
         { Pattern.any with
           ip4_dst = Some (Ipv4.Prefix.make (Ipv4.of_string s) len) }
         (Action.forward out))
  in
  dst 8 "10.0.0.0" 8 1;
  dst 16 "10.0.0.0" 16 2;
  dst 24 "10.0.9.0" 24 3;
  let probe dst_ip =
    let h = Headers.set hdr Fields.Ip4_dst (Ipv4.of_string dst_ip) in
    match Table.lookup_tuple t h with
    | Some r -> r.priority
    | None -> -1
  in
  Alcotest.(check int) "/24 wins" 24 (probe "10.0.9.7");
  Alcotest.(check int) "/16 wins" 16 (probe "10.0.77.1");
  Alcotest.(check int) "/8 wins" 8 (probe "10.200.0.1");
  Alcotest.(check int) "no match" (-1) (probe "11.0.0.1")

(* property: the staged classifier is indistinguishable from the linear
   scan under randomized rules (incl. CIDR prefixes of mixed length),
   headers and churn — same harness as the PR 1 cache test *)
let prop_tuple_space_consistent =
  let gen_pat =
    QCheck.Gen.(
      oneof
        [ return `Any;
          map (fun p -> `Port p) (int_bound 3);
          map (fun d -> `Tp d) (int_bound 3);
          map2 (fun h len -> `Dst (h, len)) (1 -- 4) (oneofl [ 8; 16; 24; 32 ]);
          map2 (fun p h -> `PortDst (p, h)) (int_bound 3) (1 -- 4) ])
  in
  let gen_op =
    QCheck.Gen.(
      oneof
        [ map3
            (fun prio p idle -> `Add (prio, p, idle))
            (int_bound 10) gen_pat
            (oneof [ return None; map Option.some (1 -- 3) ]);
          map (fun p -> `Remove p) gen_pat;
          map2 (fun prio p -> `Remove_strict (prio, p)) (int_bound 10) gen_pat;
          return `Expire;
          map2 (fun p dst -> `Apply (p, dst)) (int_bound 4) (1 -- 5);
          return `Clear ])
  in
  let pat = function
    | `Any -> Pattern.any
    | `Port p -> Pattern.of_field Fields.In_port p
    | `Tp d -> Pattern.of_field Fields.Tp_dst d
    | `Dst (h, len) ->
      { Pattern.any with
        ip4_dst = Some (Ipv4.Prefix.make (Ipv4.of_host_id h) len) }
    | `PortDst (p, h) ->
      { Pattern.any with
        in_port = Some p;
        ip4_dst = Some (Ipv4.Prefix.host (Ipv4.of_host_id h)) }
  in
  QCheck.Test.make ~name:"tuple-space lookup == linear scan under churn"
    ~count:1200
    (QCheck.make QCheck.Gen.(list_size (5 -- 40) gen_op))
    (fun ops ->
      let t = Table.create () in
      let cookie = ref 0 in
      let now = ref 0.0 in
      let probes =
        List.concat_map
          (fun port ->
            List.map
              (fun dst ->
                Headers.set
                  (Headers.set hdr Fields.In_port port)
                  Fields.Ip4_dst (Ipv4.of_host_id dst))
              [ 1; 2; 3; 4; 5 ])
          [ 0; 1; 2 ]
      in
      let agree () =
        List.for_all
          (fun h ->
            let key = Option.map (fun (r : Table.rule) -> r.cookie) in
            let reference = key (Table.lookup_linear t h) in
            key (Table.lookup_tuple t h) = reference
            && key (Table.lookup t h) = reference)
          probes
      in
      List.for_all
        (fun op ->
          now := !now +. 1.0;
          (match op with
           | `Add (priority, p, idle) ->
             incr cookie;
             Table.add t
               (Table.make_rule ~priority ~cookie:!cookie ~pattern:(pat p)
                  ~idle_timeout:(Option.map float_of_int idle) ~now:!now
                  ~actions:(Action.forward 1) ())
           | `Remove p -> Table.remove t ~pattern:(pat p)
           | `Remove_strict (priority, p) ->
             Table.remove_strict t ~priority ~pattern:(pat p)
           | `Expire -> ignore (Table.expire t ~now:!now)
           | `Apply (p, dst) ->
             let h =
               Headers.set
                 (Headers.set hdr Fields.In_port p)
                 Fields.Ip4_dst (Ipv4.of_host_id dst)
             in
             ignore (Table.apply t ~now:!now ~size:100 h)
           | `Clear -> Table.clear t);
          agree ())
        ops)

(* ------------------------------------------------------------------ *)
(* cache overflow policies *)

(* one hot header re-probed between a stream of cold ones — the access
   pattern where wholesale reset loses and per-entry eviction wins *)
let churn_cache policy =
  let t = Table.create ~cache_policy:policy ~cache_entries:8 () in
  Table.add t (mk Pattern.any (Action.forward 1));
  let h i = Headers.set hdr Fields.Tp_dst i in
  let hot = h 1 in
  ignore (Table.lookup t hot);
  for i = 2 to 200 do
    ignore (Table.lookup t (h i));
    ignore (Table.lookup t hot)
  done;
  t

let test_clock_eviction_bounds () =
  let t = churn_cache Table.Clock in
  Alcotest.(check bool) "cache bounded" true (Table.cache_size t <= 8);
  Alcotest.(check bool) "evicts per entry" true (Table.cache_evictions t > 0);
  Alcotest.(check int) "never resets" 0 (Table.cache_resets t);
  (* the hot entry must be resident after all that churn *)
  let hits = Table.cache_hits t in
  (match Table.lookup t (Headers.set hdr Fields.Tp_dst 1) with
   | Some r -> Alcotest.(check int) "still correct" 0 r.priority
   | None -> Alcotest.fail "hot header must match");
  Alcotest.(check int) "hot entry survives churn" (hits + 1)
    (Table.cache_hits t)

let test_reset_policy_still_available () =
  let t = churn_cache Table.Reset in
  Alcotest.(check bool) "cache bounded" true (Table.cache_size t <= 8);
  Alcotest.(check bool) "resets wholesale" true (Table.cache_resets t > 0);
  Alcotest.(check int) "no per-entry evictions" 0 (Table.cache_evictions t)

let test_clock_beats_reset_hit_rate () =
  (* E2's overflow row in miniature: same access pattern, second-chance
     keeps the hot entry where reset relearns it after every drop *)
  let clock = churn_cache Table.Clock and reset = churn_cache Table.Reset in
  Alcotest.(check bool) "clock hit rate > reset hit rate" true
    (Table.cache_hits clock > Table.cache_hits reset)

let test_clock_consistent_under_eviction () =
  (* a tiny cache forces constant eviction; verdicts must still agree
     with the linear reference, mutations included *)
  let t = Table.create ~cache_entries:2 () in
  let h i = Headers.set hdr Fields.Tp_dst i in
  Table.add t (mk ~priority:1 Pattern.any (Action.forward 1));
  Table.add t
    (mk ~priority:5 (Pattern.of_field Fields.Tp_dst 3) (Action.forward 2));
  for round = 0 to 2 do
    if round = 1 then
      Table.add t
        (mk ~priority:9 (Pattern.of_field Fields.Tp_dst 5) (Action.forward 3));
    if round = 2 then
      Table.remove t ~pattern:(Pattern.of_field Fields.Tp_dst 3);
    for i = 0 to 40 do
      let probe = h (i mod 7) in
      let key = Option.map (fun (r : Table.rule) -> r.priority) in
      Alcotest.(check (option int))
        (Printf.sprintf "round %d probe %d" round i)
        (key (Table.lookup_linear t probe))
        (key (Table.lookup t probe))
    done
  done

let suites =
  [ ( "flow.pattern",
      [ Alcotest.test_case "any" `Quick test_any_matches;
        Alcotest.test_case "exact fields" `Quick test_exact_fields;
        Alcotest.test_case "switch not matchable" `Quick
          test_switch_not_matchable;
        Alcotest.test_case "prefix matching" `Quick test_prefix_pattern;
        Alcotest.test_case "conjunction" `Quick test_conj;
        Alcotest.test_case "prefix conjunction" `Quick test_conj_prefixes;
        Alcotest.test_case "subsumption" `Quick test_subsumes;
        Alcotest.test_case "overlap" `Quick test_overlap ] );
    ( "flow.action",
      [ Alcotest.test_case "sequence semantics" `Quick test_apply_seq;
        Alcotest.test_case "multicast group" `Quick test_apply_group_multicast;
        Alcotest.test_case "mods after output ignored" `Quick
          test_mods_before_output_only;
        Alcotest.test_case "drop" `Quick test_drop_group ] );
    ( "flow.table",
      [ Alcotest.test_case "priority order" `Quick test_priority_order;
        Alcotest.test_case "tie break" `Quick test_tie_break_first_installed;
        Alcotest.test_case "modify replaces" `Quick test_modify_semantics;
        Alcotest.test_case "modify preserves counters" `Quick
          test_modify_preserves_counters;
        Alcotest.test_case "no-op delete keeps cache" `Quick
          test_noop_delete_keeps_cache;
        Alcotest.test_case "counters" `Quick test_counters;
        Alcotest.test_case "miss counted" `Quick test_miss_counted;
        Alcotest.test_case "capacity" `Quick test_capacity;
        Alcotest.test_case "delete subsumed" `Quick test_remove_subsumed;
        Alcotest.test_case "delete by cookie" `Quick test_remove_by_cookie;
        Alcotest.test_case "idle timeout" `Quick test_idle_timeout;
        Alcotest.test_case "hard timeout" `Quick test_hard_timeout;
        Alcotest.test_case "overlap detection" `Quick test_overlaps_detection;
        Alcotest.test_case "shadow detection" `Quick test_shadowed_detection;
        Alcotest.test_case "cache counters" `Quick test_cache_counters;
        Alcotest.test_case "clock eviction bounds cache" `Quick
          test_clock_eviction_bounds;
        Alcotest.test_case "reset policy still available" `Quick
          test_reset_policy_still_available;
        Alcotest.test_case "clock beats reset hit rate" `Quick
          test_clock_beats_reset_hit_rate;
        Alcotest.test_case "consistent under eviction" `Quick
          test_clock_consistent_under_eviction;
        QCheck_alcotest.to_alcotest prop_lookup_max_priority;
        QCheck_alcotest.to_alcotest prop_cache_consistent ] );
    ( "flow.classifier",
      [ Alcotest.test_case "shape table maintenance" `Quick
          test_shape_table_maintenance;
        Alcotest.test_case "probe cost is per-shape" `Quick
          test_classifier_probe_cost;
        Alcotest.test_case "prefix stacks resolve by priority" `Quick
          test_classifier_prefix_priorities;
        QCheck_alcotest.to_alcotest prop_tuple_space_consistent ] ) ]
