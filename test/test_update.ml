(* Tests for consistent updates (two-phase versioning), incremental
   routing deltas, strict deletes and the flow-table optimizer. *)

open Packet

(* ------------------------------------------------------------------ *)
(* Strict delete (table + wire) *)

let test_strict_delete_table () =
  let t = Flow.Table.create () in
  let gen = Flow.Pattern.of_field Fields.Tp_dst 80 in
  let spec =
    Option.get (Flow.Pattern.conj gen (Flow.Pattern.of_field Fields.In_port 2))
  in
  Flow.Table.add t
    (Flow.Table.make_rule ~priority:5 ~pattern:gen ~actions:(Flow.Action.forward 1) ());
  Flow.Table.add t
    (Flow.Table.make_rule ~priority:3 ~pattern:spec ~actions:(Flow.Action.forward 2) ());
  (* non-strict delete by the general pattern would remove both *)
  Flow.Table.remove_strict t ~priority:5 ~pattern:gen;
  Alcotest.(check int) "only the exact rule gone" 1 (Flow.Table.size t);
  (* wrong priority: no-op *)
  Flow.Table.remove_strict t ~priority:99 ~pattern:spec;
  Alcotest.(check int) "priority must match" 1 (Flow.Table.size t)

let test_strict_delete_wire () =
  let pattern = Flow.Pattern.of_field Fields.Tp_dst 80 in
  let m =
    Openflow.Message.Flow_mod
      (Openflow.Message.delete_strict_flow ~priority:7 ~pattern ())
  in
  Alcotest.(check bool) "roundtrips" true
    (snd (Openflow.Wire.decode (Openflow.Wire.encode ~xid:3 m)) = m)

(* ------------------------------------------------------------------ *)
(* Versioned policies *)

let ring_with_policies () =
  let topo = Topo.Gen.ring ~switches:4 ~hosts_per_switch:1 () in
  let port_toward sw nbr =
    Topo.Topology.ports topo (Topo.Topology.Node.Switch sw)
    |> List.find (fun p ->
      match Topo.Topology.link_via topo (Topo.Topology.Node.Switch sw) p with
      | Some l -> l.dst = Topo.Topology.Node.Switch nbr
      | None -> false)
  in
  let path_policy () =
    let path =
      Option.get
        (Topo.Path.shortest_path topo ~src:(Topo.Topology.Node.Host 1)
           ~dst:(Topo.Topology.Node.Host 3))
    in
    Netkat.Syntax.big_union
      (List.filter_map
         (fun (h : Topo.Path.hop) ->
           match h.node with
           | Topo.Topology.Node.Host _ -> None
           | Topo.Topology.Node.Switch sw ->
             Some
               (Netkat.Syntax.big_seq
                  [ Netkat.Syntax.at ~switch:sw;
                    Netkat.Syntax.filter
                      (Netkat.Syntax.test Fields.Eth_dst (Mac.of_host_id 3));
                    Netkat.Syntax.forward h.Topo.Path.out_port ]))
         path)
  in
  let block sw nbr f =
    let p = port_toward sw nbr in
    Topo.Topology.fail_link topo (Topo.Topology.Node.Switch sw, p);
    let r = f () in
    Topo.Topology.restore_link topo (Topo.Topology.Node.Switch sw, p);
    r
  in
  let old_pol = block 1 4 path_policy in
  let new_pol = block 1 2 path_policy in
  (topo, old_pol, new_pol)

let test_versioned_install_forwards () =
  let topo, old_pol, _ = ring_with_policies () in
  let net = Zen.create topo in
  let rt = Zen.with_controller net [] in
  let updater = Controller.Update.create () in
  Controller.Update.install updater (Controller.Runtime.ctx rt) old_pol;
  ignore (Zen.run ~until:(Zen.now net +. 0.1) net);
  Dataplane.Network.send_from (Zen.network net) ~host:1
    (Dataplane.Network.make_pkt ~src:1 ~dst:3 ());
  ignore (Zen.run ~until:(Zen.now net +. 0.5) net);
  Alcotest.(check int) "delivered through versioned tables" 1
    (Dataplane.Network.host (Zen.network net) 3).received

let test_versioned_pops_tag () =
  (* the host must never see the version tag *)
  let topo, old_pol, _ = ring_with_policies () in
  let net = Zen.create topo in
  let rt = Zen.with_controller net [] in
  let updater = Controller.Update.create () in
  Controller.Update.install updater (Controller.Runtime.ctx rt) old_pol;
  ignore (Zen.run ~until:(Zen.now net +. 0.1) net);
  let seen_vlan = ref (-1) in
  (Dataplane.Network.host (Zen.network net) 3).on_receive <-
    Some (fun pkt -> seen_vlan := pkt.hdr.vlan);
  Dataplane.Network.send_from (Zen.network net) ~host:1
    (Dataplane.Network.make_pkt ~src:1 ~dst:3 ());
  ignore (Zen.run ~until:(Zen.now net +. 0.5) net);
  Alcotest.(check int) "untagged at delivery" Fields.vlan_none !seen_vlan

let count_received_during net ~host f =
  let before = (Dataplane.Network.host net host).received in
  f ();
  (Dataplane.Network.host net host).received - before

let run_update_scenario ?(naive_seed = 123) ~strategy () =
  let topo, old_pol, new_pol = ring_with_policies () in
  let net = Zen.create topo in
  let rt = Zen.with_controller net [] in
  let ctx = Controller.Runtime.ctx rt in
  let updater = Controller.Update.create ~drain:0.2 () in
  (match strategy with
   | `Two_phase -> Controller.Update.install updater ctx old_pol
   | `Naive -> Controller.Update.install_plain updater ctx old_pol);
  ignore (Zen.run ~until:(Zen.now net +. 0.2) net);
  let sent =
    Dataplane.Traffic.cbr (Zen.network net)
      { (Dataplane.Traffic.default_flow ~src:1 ~dst:3) with
        rate_pps = 1000.0; start = Zen.now net; stop = Zen.now net +. 1.5 }
  in
  Dataplane.Sim.schedule (Dataplane.Network.sim (Zen.network net)) ~delay:0.7
    (fun () ->
      match strategy with
      | `Two_phase -> Controller.Update.two_phase updater ctx new_pol
      | `Naive ->
        Controller.Update.naive updater ctx ~prng:(Util.Prng.create naive_seed)
          ~max_jitter:0.05 new_pol);
  ignore (Zen.run ~until:(Zen.now net +. 3.0) net);
  let received = (Dataplane.Network.host (Zen.network net) 3).received in
  (!sent, received, updater, net)

let test_two_phase_no_loss () =
  let sent, received, updater, _ = run_update_scenario ~strategy:`Two_phase () in
  Alcotest.(check int) "zero loss" sent received;
  Alcotest.(check int) "one update completed" 1
    (Controller.Update.updates_done updater);
  Alcotest.(check int) "now at version 2" 2 (Controller.Update.version updater)

let test_naive_loses_packets () =
  (* whether a given jitter draw loses packets depends on the order the
     switches happen to apply the update; over several seeds the
     inconsistency must show (two-phase loses zero for EVERY seed — see
     test_two_phase_no_loss) *)
  let total_lost =
    List.fold_left
      (fun acc seed ->
        let sent, received, _, _ =
          run_update_scenario ~naive_seed:seed ~strategy:`Naive ()
        in
        acc + (sent - received))
      0 [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check bool)
    (Printf.sprintf "transient loss across seeds (%d)" total_lost)
    true (total_lost > 0)

let test_two_phase_table_occupancy () =
  let _, _, updater, net = run_update_scenario ~strategy:`Two_phase () in
  (* during the transition both versions were installed *)
  let final =
    List.fold_left
      (fun acc (sw : Dataplane.Network.switch) -> acc + Flow.Table.size sw.table)
      0
      (Dataplane.Network.switch_list (Zen.network net))
  in
  Alcotest.(check bool)
    (Printf.sprintf "peak %d > final %d" (Controller.Update.peak_rules updater) final)
    true
    (Controller.Update.peak_rules updater > final);
  (* old version's rules are gone after the drain *)
  let stale =
    List.exists
      (fun (sw : Dataplane.Network.switch) ->
        List.exists
          (fun (r : Flow.Table.rule) -> r.cookie = 1)
          (Flow.Table.rules sw.table))
      (Dataplane.Network.switch_list (Zen.network net))
  in
  Alcotest.(check bool) "old version garbage-collected" false stale

let test_vlan_policy_rejected () =
  let topo = Topo.Gen.linear ~switches:2 ~hosts_per_switch:1 () in
  let net = Zen.create topo in
  let rt = Zen.with_controller net [] in
  let updater = Controller.Update.create () in
  Alcotest.(check bool) "vlan-using policy rejected" true
    (match
       Controller.Update.install updater (Controller.Runtime.ctx rt)
         (Netkat.Syntax.modify Fields.Vlan 5)
     with
     | exception Controller.Update.Policy_uses_vlan -> true
     | () -> false)

(* ------------------------------------------------------------------ *)
(* Incremental routing *)

let test_incremental_routing_equivalent () =
  let run incremental =
    let topo, info = Topo.Gen.fat_tree ~k:4 () in
    let net = Zen.create topo in
    let routing = Controller.Routing.create ~incremental () in
    let _rt = Zen.with_controller net [ Controller.Routing.app routing ] in
    let core = List.hd info.core in
    Dataplane.Network.fail_link (Zen.network net)
      (Topo.Topology.Node.Switch core) 1;
    ignore (Zen.run ~until:(Zen.now net +. 0.5) net);
    let tables =
      List.map
        (fun (sw : Dataplane.Network.switch) ->
          ( sw.sw_id,
            List.map
              (fun (r : Flow.Table.rule) -> (r.priority, r.pattern, r.actions))
              (Flow.Table.rules sw.table)
            |> List.sort compare ))
        (Dataplane.Network.switch_list (Zen.network net))
    in
    (Controller.Routing.last_churn routing, tables)
  in
  let full_churn, full_tables = run false in
  let inc_churn, inc_tables = run true in
  Alcotest.(check bool)
    (Printf.sprintf "delta churn %d << full %d" inc_churn full_churn)
    true
    (inc_churn * 3 < full_churn);
  Alcotest.(check bool) "identical resulting tables" true
    (full_tables = inc_tables)

let test_incremental_noop_on_no_change () =
  let topo = Topo.Gen.ring ~switches:4 ~hosts_per_switch:1 () in
  let net = Zen.create topo in
  let routing = Controller.Routing.create ~incremental:true () in
  let _rt = Zen.with_controller net [ Controller.Routing.app routing ] in
  (* failing and restoring a link the routing never used (host links are
     used; pick a ring link, routes change, restore brings them back) *)
  Dataplane.Network.fail_link (Zen.network net) (Topo.Topology.Node.Switch 1) 1;
  ignore (Zen.run ~until:(Zen.now net +. 0.5) net);
  let churn_fail = Controller.Routing.last_churn routing in
  Dataplane.Network.restore_link (Zen.network net) (Topo.Topology.Node.Switch 1) 1;
  ignore (Zen.run ~until:(Zen.now net +. 0.5) net);
  let churn_restore = Controller.Routing.last_churn routing in
  Alcotest.(check bool) "some churn on failure" true (churn_fail > 0);
  (* restoring reverts to the original routes: same magnitude of churn *)
  Alcotest.(check bool) "restore churn bounded by fail churn" true
    (churn_restore <= churn_fail + 2)

(* ------------------------------------------------------------------ *)
(* Incremental installs (Netkat.Delta through Update) *)

let table_marks net =
  List.map
    (fun (sw : Dataplane.Network.switch) ->
      ( sw.sw_id, Flow.Table.generation sw.table,
        Flow.Table.invalidations sw.table ))
    (Dataplane.Network.switch_list net)

(* no-op churn: reinstalling the same policy incrementally must not send
   a single flow-mod — every switch's cache generation stays put *)
let test_incremental_reinstall_noop () =
  let topo, old_pol, _ = ring_with_policies () in
  let net = Zen.create topo in
  let rt = Zen.with_controller net [] in
  let ctx = Controller.Runtime.ctx rt in
  let updater = Controller.Update.create ~incremental:true () in
  Controller.Update.install updater ctx old_pol;
  ignore (Zen.run ~until:(Zen.now net +. 0.2) net);
  let before = table_marks (Zen.network net) in
  let mods_before = Controller.Update.delta_mods updater in
  Controller.Update.install updater ctx old_pol;
  ignore (Zen.run ~until:(Zen.now net +. 0.2) net);
  Alcotest.(check bool) "no table generation/invalidation moved" true
    (table_marks (Zen.network net) = before);
  Alcotest.(check int) "version stays stable" 1
    (Controller.Update.version updater);
  Alcotest.(check int) "no delta flow-mods" mods_before
    (Controller.Update.delta_mods updater);
  Alcotest.(check bool) "switches certified unchanged" true
    (Controller.Update.skipped_switches updater > 0)

(* a small incremental edit touches only the edited switch's table *)
let test_incremental_edit_targets_one_switch () =
  let topo, old_pol, new_pol = ring_with_policies () in
  let net = Zen.create topo in
  let rt = Zen.with_controller net [] in
  let ctx = Controller.Runtime.ctx rt in
  let updater = Controller.Update.create ~incremental:true () in
  Controller.Update.install updater ctx old_pol;
  ignore (Zen.run ~until:(Zen.now net +. 0.2) net);
  let before = table_marks (Zen.network net) in
  Controller.Update.install updater ctx new_pol;
  ignore (Zen.run ~until:(Zen.now net +. 0.2) net);
  let after = table_marks (Zen.network net) in
  let touched =
    List.filter (fun (m_b, m_a) -> m_b <> m_a) (List.combine before after)
    |> List.length
  in
  Alcotest.(check bool)
    (Printf.sprintf "some but not all switches touched (%d/4)" touched)
    true
    (touched > 0 && touched < 4);
  Alcotest.(check bool) "delta flow-mods issued" true
    (Controller.Update.delta_mods updater > 0);
  (* the resulting tables are what a fresh non-incremental install of
     new_pol would produce *)
  let tables net =
    List.map
      (fun (sw : Dataplane.Network.switch) ->
        ( sw.sw_id,
          List.map
            (fun (r : Flow.Table.rule) -> (r.priority, r.pattern, r.actions))
            (Flow.Table.rules sw.table)
          |> List.sort compare ))
      (Dataplane.Network.switch_list net)
  in
  let fresh =
    let net' = Zen.create (let t, _, _ = ring_with_policies () in t) in
    let rt' = Zen.with_controller net' [] in
    let updater' = Controller.Update.create () in
    Controller.Update.install updater' (Controller.Runtime.ctx rt') new_pol;
    ignore (Zen.run ~until:(Zen.now net' +. 0.2) net');
    tables (Zen.network net')
  in
  Alcotest.(check bool) "tables equal a from-scratch install" true
    (tables (Zen.network net) = fresh)

(* delete_version only messages switches that received rules under the
   cookie: a switch whose compiled table was pure drops (not installed
   by the global path) must not see the delete — its flow cache stays
   warm *)
let test_delete_version_skips_untouched () =
  let topo = Topo.Gen.linear ~switches:2 ~hosts_per_switch:1 () in
  let net = Zen.create topo in
  let rt = Zen.with_controller net [] in
  let ctx = Controller.Runtime.ctx rt in
  let updater = Controller.Update.create () in
  (* forwards only at switch 1; switch 2 compiles to fall-through drops,
     which the global path leaves uninstalled *)
  let host_port sw =
    snd (List.hd (Topo.Topology.hosts_of_switch topo sw))
  in
  let pol =
    Netkat.Syntax.big_seq
      [ Netkat.Syntax.at ~switch:1;
        Netkat.Syntax.filter
          (Netkat.Syntax.test Fields.Eth_dst (Mac.of_host_id 1));
        Netkat.Syntax.forward (host_port 1) ]
  in
  Controller.Update.global_install updater ctx pol;
  ignore (Zen.run ~until:(Zen.now net +. 0.2) net);
  let sw2 = Dataplane.Network.switch (Zen.network net) 2 in
  Alcotest.(check int) "switch 2 never received rules" 0
    (Flow.Table.size sw2.table);
  let marks = (Flow.Table.generation sw2.table, Flow.Table.invalidations sw2.table) in
  Controller.Update.delete_version updater ctx ~cookie:1;
  ignore (Zen.run ~until:(Zen.now net +. 0.2) net);
  Alcotest.(check int) "delete messaged only the pushed switch" 1
    (Controller.Update.delete_msgs updater);
  Alcotest.(check bool) "untouched switch's flow cache stays warm" true
    ((Flow.Table.generation sw2.table, Flow.Table.invalidations sw2.table)
     = marks)

(* ------------------------------------------------------------------ *)
(* Optimizer *)

let opt_rule priority pattern actions =
  { Flow.Optimize.priority; pattern; actions }

let test_optimize_removes_shadowed () =
  let rules =
    [ opt_rule 10 Flow.Pattern.any (Flow.Action.forward 1);
      opt_rule 5 (Flow.Pattern.of_field Fields.Tp_dst 80) (Flow.Action.forward 2) ]
  in
  let out = Flow.Optimize.minimize rules in
  Alcotest.(check int) "shadowed removed" 1 (List.length out);
  Alcotest.(check bool) "the any rule survives" true
    ((List.hd out).pattern = Flow.Pattern.any)

let test_optimize_removes_redundant () =
  (* specific rule with same action as the catch-all below it *)
  let rules =
    [ opt_rule 10 (Flow.Pattern.of_field Fields.Tp_dst 80) (Flow.Action.forward 1);
      opt_rule 1 Flow.Pattern.any (Flow.Action.forward 1) ]
  in
  Alcotest.(check int) "redundant removed" 1
    (List.length (Flow.Optimize.minimize rules))

let test_optimize_keeps_blocked_redundancy () =
  (* same-action pair separated by a conflicting overlapping rule: the
     top rule is NOT redundant (removing it would expose tp80+port1
     packets to the drop rule) *)
  let rules =
    [ opt_rule 10 (Flow.Pattern.of_field Fields.Tp_dst 80) (Flow.Action.forward 1);
      opt_rule 5 (Flow.Pattern.of_field Fields.In_port 1) Flow.Action.drop;
      opt_rule 1 Flow.Pattern.any (Flow.Action.forward 1) ]
  in
  Alcotest.(check int) "nothing removed" 3
    (List.length (Flow.Optimize.minimize rules))

let probe_headers =
  List.concat_map
    (fun port ->
      List.map
        (fun tp ->
          { Headers.default with in_port = port; tp_dst = tp; eth_type = 1 })
        [ 0; 1; 2; 3; 80 ])
    [ 0; 1; 2; 3 ]

let prop_optimize_preserves_semantics =
  QCheck.Test.make ~name:"minimize preserves lookup semantics" ~count:300
    (QCheck.make
       QCheck.Gen.(
         list_size (0 -- 25)
           (triple (int_bound 10)
              (oneof
                 [ return Flow.Pattern.any;
                   map (Flow.Pattern.of_field Fields.Tp_dst) (int_bound 3);
                   map (Flow.Pattern.of_field Fields.In_port) (int_bound 3);
                   map2
                     (fun a b ->
                       match
                         Flow.Pattern.conj
                           (Flow.Pattern.of_field Fields.Tp_dst a)
                           (Flow.Pattern.of_field Fields.In_port b)
                       with
                       | Some p -> p
                       | None -> Flow.Pattern.any)
                     (int_bound 3) (int_bound 3) ])
              (int_bound 2))))
    (fun specs ->
      let rules =
        List.map
          (fun (priority, pattern, act) ->
            opt_rule priority pattern
              (if act = 0 then Flow.Action.drop else Flow.Action.forward act))
          specs
      in
      let out = Flow.Optimize.minimize rules in
      List.length out <= List.length rules
      && List.for_all
           (fun h ->
             Flow.Optimize.lookup rules h = Flow.Optimize.lookup out h)
           probe_headers)

let test_optimize_table_in_place () =
  let table = Flow.Table.create () in
  for i = 1 to 10 do
    Flow.Table.add table
      (Flow.Table.make_rule ~priority:i
         ~pattern:(Flow.Pattern.of_field Fields.Tp_dst 80)
         ~actions:(Flow.Action.forward 1) ())
  done;
  let before, after = Flow.Optimize.minimize_table table in
  Alcotest.(check int) "before" 10 before;
  Alcotest.(check int) "after" 1 after;
  Alcotest.(check int) "table shrunk" 1 (Flow.Table.size table)

let suites =
  [ ( "flow.strict_delete",
      [ Alcotest.test_case "table semantics" `Quick test_strict_delete_table;
        Alcotest.test_case "wire roundtrip" `Quick test_strict_delete_wire ] );
    ( "controller.update",
      [ Alcotest.test_case "versioned install forwards" `Quick
          test_versioned_install_forwards;
        Alcotest.test_case "version tag popped at egress" `Quick
          test_versioned_pops_tag;
        Alcotest.test_case "two-phase: zero loss" `Quick test_two_phase_no_loss;
        Alcotest.test_case "naive: transient loss" `Quick
          test_naive_loses_packets;
        Alcotest.test_case "occupancy peak and GC" `Quick
          test_two_phase_table_occupancy;
        Alcotest.test_case "vlan policies rejected" `Quick
          test_vlan_policy_rejected ] );
    ( "controller.incremental",
      [ Alcotest.test_case "delta equals full result" `Quick
          test_incremental_routing_equivalent;
        Alcotest.test_case "restore churn bounded" `Quick
          test_incremental_noop_on_no_change;
        Alcotest.test_case "no-op reinstall leaves caches warm" `Quick
          test_incremental_reinstall_noop;
        Alcotest.test_case "edit touches only changed switches" `Quick
          test_incremental_edit_targets_one_switch;
        Alcotest.test_case "delete_version skips unpushed switches" `Quick
          test_delete_version_skips_untouched ] );
    ( "flow.optimize",
      [ Alcotest.test_case "removes shadowed" `Quick
          test_optimize_removes_shadowed;
        Alcotest.test_case "removes redundant" `Quick
          test_optimize_removes_redundant;
        Alcotest.test_case "keeps blocked redundancy" `Quick
          test_optimize_keeps_blocked_redundancy;
        Alcotest.test_case "minimize_table in place" `Quick
          test_optimize_table_in_place;
        QCheck_alcotest.to_alcotest prop_optimize_preserves_semantics ] ) ]
