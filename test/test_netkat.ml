(* Tests for the policy language: syntax, semantics, parser, the FDD
   compiler (including the central compiler-correctness properties) and
   the naive baseline. *)

open Netkat
open Packet

let h0 = Headers.tcp ~switch:1 ~in_port:2 ~src_host:5 ~dst_host:9
    ~tp_src:1234 ~tp_dst:80

let hset_to_list s = Semantics.HSet.elements s

let headers_list = Alcotest.testable
    (Fmt.Dump.list Headers.pp) (fun a b -> a = b)

let eval_pol p h = hset_to_list (Semantics.eval p h)

(* ------------------------------------------------------------------ *)
(* Syntax smart constructors *)

let test_smart_constructors () =
  let open Syntax in
  Alcotest.(check bool) "seq id" true (seq id (Mod (Fields.Vlan, 1)) = Mod (Fields.Vlan, 1));
  Alcotest.(check bool) "seq drop" true (seq drop (Mod (Fields.Vlan, 1)) = drop);
  Alcotest.(check bool) "union drop" true (union drop (Mod (Fields.Vlan, 1)) = Mod (Fields.Vlan, 1));
  Alcotest.(check bool) "conj true" true (conj True (Test (Fields.Vlan, 1)) = Test (Fields.Vlan, 1));
  Alcotest.(check bool) "conj false" true (conj False (Test (Fields.Vlan, 1)) = False);
  Alcotest.(check bool) "neg neg" true (neg (neg (Test (Fields.Vlan, 1))) = Test (Fields.Vlan, 1));
  Alcotest.(check bool) "star of id" true (star id = id);
  Alcotest.(check bool) "big_union empty" true (big_union [] = drop);
  Alcotest.(check bool) "big_seq empty" true (big_seq [] = id)

let test_size () =
  let open Syntax in
  Alcotest.(check int) "size" 6
    (size (Union (Seq (id, Mod (Fields.Vlan, 1)), Filter (Not True))))

let test_uses_links () =
  let open Syntax in
  Alcotest.(check bool) "plain" false (uses_links (Filter True));
  Alcotest.(check bool) "link" true (uses_links (link (1, 1) (2, 2)))

(* ------------------------------------------------------------------ *)
(* Semantics *)

let test_sem_filter () =
  Alcotest.check headers_list "pass" [ h0 ]
    (eval_pol (Syntax.filter (Syntax.test Fields.Tp_dst 80)) h0);
  Alcotest.check headers_list "block" []
    (eval_pol (Syntax.filter (Syntax.test Fields.Tp_dst 81)) h0)

let test_sem_mod () =
  Alcotest.check headers_list "mod" [ Headers.set h0 Fields.Vlan 7 ]
    (eval_pol (Syntax.modify Fields.Vlan 7) h0)

let test_sem_union_dedup () =
  (* both branches produce the same packet: the output is a set *)
  let p = Syntax.union Syntax.id Syntax.id in
  Alcotest.check headers_list "set semantics" [ h0 ] (eval_pol p h0)

let test_sem_seq () =
  let p =
    Syntax.seq (Syntax.modify Fields.Vlan 7)
      (Syntax.filter (Syntax.test Fields.Vlan 7))
  in
  Alcotest.check headers_list "mod then test" [ Headers.set h0 Fields.Vlan 7 ]
    (eval_pol p h0)

let test_sem_star_fixpoint () =
  (* (vlan=none; vlan:=1 + vlan=1; vlan:=2)* reaches 3 packets *)
  let open Syntax in
  let p =
    star
      (union
         (seq (filter (test Fields.Vlan Fields.vlan_none)) (modify Fields.Vlan 1))
         (seq (filter (test Fields.Vlan 1)) (modify Fields.Vlan 2)))
  in
  Alcotest.(check int) "closure size" 3 (List.length (eval_pol p h0))

let test_sem_neg_demorgan () =
  let open Syntax in
  let a = test Fields.Tp_dst 80 and b = test Fields.In_port 3 in
  let lhs = filter (neg (disj a b)) in
  let rhs = filter (conj (neg a) (neg b)) in
  List.iter
    (fun h ->
      Alcotest.(check bool) "de morgan" true (Semantics.equiv_on lhs rhs h))
    [ h0; Headers.set h0 Fields.Tp_dst 81;
      Headers.set (Headers.set h0 Fields.Tp_dst 81) Fields.In_port 3 ]

let test_link_policy () =
  let p = Syntax.link (1, 2) (7, 3) in
  (match eval_pol p h0 with
   | [ h ] ->
     Alcotest.(check int) "moved switch" 7 h.switch;
     Alcotest.(check int) "moved port" 3 h.in_port
   | _ -> Alcotest.fail "link should produce one packet");
  (* packet not at (1,2) is dropped by the link *)
  Alcotest.check headers_list "elsewhere dropped" []
    (eval_pol p (Headers.set h0 Fields.In_port 9))

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parse_basic () =
  let cases =
    [ ("id", Syntax.id); ("drop", Syntax.drop);
      ("port := 2", Syntax.forward 2);
      ("filter tpDst = 80", Syntax.filter (Syntax.test Fields.Tp_dst 80));
      ("filter true", Syntax.id);
      ("(id)", Syntax.id) ]
  in
  List.iter
    (fun (s, expected) ->
      Alcotest.(check bool) s true (Parser.pol_of_string s = expected))
    cases

let test_parse_precedence () =
  (* ; binds tighter than +, * tighter than ; *)
  let p = Parser.pol_of_string "vlan := 1; vlan := 2 + vlan := 3" in
  let expected =
    Syntax.union
      (Syntax.seq (Syntax.modify Fields.Vlan 1) (Syntax.modify Fields.Vlan 2))
      (Syntax.modify Fields.Vlan 3)
  in
  Alcotest.(check bool) "seq over union" true (p = expected);
  let q = Parser.pol_of_string "vlan := 1; vlan := 2*" in
  let expected_q =
    Syntax.seq (Syntax.modify Fields.Vlan 1)
      (Syntax.star (Syntax.modify Fields.Vlan 2))
  in
  Alcotest.(check bool) "star over seq" true (q = expected_q)

let test_parse_pred_precedence () =
  let p = Parser.pred_of_string "vlan = 1 or vlan = 2 and port = 3" in
  let expected =
    Syntax.disj (Syntax.test Fields.Vlan 1)
      (Syntax.conj (Syntax.test Fields.Vlan 2) (Syntax.test Fields.In_port 3))
  in
  Alcotest.(check bool) "and over or" true (p = expected)

let test_parse_values () =
  let p = Parser.pol_of_string "filter ip4Dst = 10.0.0.9; ethDst := 02:00:00:00:00:09" in
  let expected =
    Syntax.seq
      (Syntax.filter (Syntax.test Fields.Ip4_dst (Ipv4.of_string "10.0.0.9")))
      (Syntax.modify Fields.Eth_dst (Mac.of_string "02:00:00:00:00:09"))
  in
  Alcotest.(check bool) "ip and mac literals" true (p = expected);
  Alcotest.(check bool) "hex" true
    (Parser.pol_of_string "filter ethType = 0x800"
     = Syntax.filter (Syntax.test Fields.Eth_type 0x800))

let test_parse_if () =
  let p = Parser.pol_of_string "if port = 1 then port := 2 else drop" in
  let expected = Syntax.ite (Syntax.test Fields.In_port 1) (Syntax.forward 2) Syntax.drop in
  Alcotest.(check bool) "if-then-else" true (p = expected)

let test_parse_errors () =
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "reject %S" s) true
        (match Parser.pol_of_string s with
         | exception Parser.Parse_error _ -> true
         | _ -> false))
    [ ""; "filter"; "port ="; "port := "; "id id"; "(id"; "vlan = 1";
      "filter port := 1"; "id +"; "@#!" ]

let test_pp_parse_roundtrip_examples () =
  List.iter
    (fun s ->
      let p = Parser.pol_of_string s in
      let p' = Parser.pol_of_string (Syntax.pol_to_string p) in
      Alcotest.(check bool) s true (p = p'))
    [ "id + drop; vlan := 2*";
      "filter (port = 1 and not vlan = 3); port := 9";
      "if tpDst = 80 then port := 1 else (port := 2 + port := 3)";
      "filter not (port = 1 or port = 2)" ]

(* ------------------------------------------------------------------ *)
(* FDD compiler: directed tests *)

let eval_fdd_sorted p h =
  Fdd.eval (Fdd.of_policy p) h |> List.sort_uniq Headers.compare

let check_equiv name p h =
  Alcotest.check headers_list name (eval_pol p h) (eval_fdd_sorted p h)

let test_fdd_basics () =
  let open Syntax in
  List.iter
    (fun (name, p) ->
      check_equiv name p h0;
      check_equiv (name ^ "/other") p (Headers.set h0 Fields.Tp_dst 443))
    [ ("id", id); ("drop", drop);
      ("test", filter (test Fields.Tp_dst 80));
      ("neg", filter (neg (test Fields.Tp_dst 80)));
      ("mod", modify Fields.Vlan 3);
      ("union", union (forward 1) (forward 2));
      ("seq", seq (modify Fields.Tp_dst 443) (filter (test Fields.Tp_dst 443)));
      ("mod-shadow", seq (modify Fields.Vlan 1) (modify Fields.Vlan 2));
      ("ite", ite (test Fields.Tp_dst 80) (forward 1) (forward 2)) ]

let test_fdd_hash_consing () =
  let open Syntax in
  let p = union (forward 1) (forward 2) in
  Alcotest.(check bool) "same policy, same node" true
    (Fdd.equal (Fdd.of_policy p) (Fdd.of_policy p));
  Alcotest.(check bool) "union commutes physically" true
    (Fdd.equal
       (Fdd.of_policy (union (forward 1) (forward 2)))
       (Fdd.of_policy (union (forward 2) (forward 1))))

let test_fdd_star_convergence () =
  let open Syntax in
  let p = star (union (modify Fields.Vlan 1) (modify Fields.Vlan 2)) in
  check_equiv "star" p h0;
  (* star of id is id *)
  Alcotest.(check bool) "star id" true
    (Fdd.equal (Fdd.of_policy (star id)) (Fdd.of_policy id))

let test_fdd_node_count_sharing () =
  let open Syntax in
  (* a union of k disjoint dst tests with the same action shares leaves *)
  let p =
    big_union
      (List.init 10 (fun i ->
         seq (filter (test Fields.Tp_dst (i + 1))) (forward 9)))
  in
  let d = Fdd.of_policy p in
  (* 10 branch nodes + 2 leaves (fwd 9, drop) *)
  Alcotest.(check int) "shared structure" 12 (Fdd.node_count d)

let test_fdd_restrict () =
  let open Syntax in
  let p =
    union
      (seq (at ~switch:1) (forward 1))
      (seq (at ~switch:2) (forward 2))
  in
  let d = Fdd.restrict (Fields.Switch, 1) (Fdd.of_policy p) in
  Alcotest.(check bool) "restricted to sw1" true
    (Fdd.eval d h0 = [ Headers.set h0 Fields.In_port 1 ]);
  (* the switch dimension is gone: evaluating with switch=2 behaves as 1 *)
  let h2 = Headers.set h0 Fields.Switch 2 in
  Alcotest.(check bool) "switch tests erased" true
    (Fdd.eval d h2 = [ Headers.set h2 Fields.In_port 1 ])

let test_act_compose () =
  let a = Fdd.Act.of_list [ (Fields.Vlan, 1); (Fields.Tp_dst, 8) ] in
  let b = Fdd.Act.of_list [ (Fields.Vlan, 2) ] in
  let ab = Fdd.Act.compose a b in
  Alcotest.(check bool) "b wins on vlan" true
    (Fdd.Act.get ab Fields.Vlan = Some 2);
  Alcotest.(check bool) "a kept on tp" true
    (Fdd.Act.get ab Fields.Tp_dst = Some 8);
  Alcotest.(check bool) "duplicate rejected" true
    (match Fdd.Act.of_list [ (Fields.Vlan, 1); (Fields.Vlan, 2) ] with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* ------------------------------------------------------------------ *)
(* FDD compiler: the property — random policies, random packets *)

let fields_for_gen =
  [| Fields.Switch; Fields.In_port; Fields.Eth_dst; Fields.Vlan;
     Fields.Tp_dst |]

let gen_pred =
  let open QCheck.Gen in
  sized (fun n ->
    fix
      (fun self n ->
        let leaf =
          oneof
            [ return Syntax.True; return Syntax.False;
              map2 (fun f v -> Syntax.Test (f, v))
                (oneofa fields_for_gen) (int_bound 3) ]
        in
        if n <= 1 then leaf
        else
          frequency
            [ (2, leaf);
              (2, map2 Syntax.conj (self (n / 2)) (self (n / 2)));
              (2, map2 Syntax.disj (self (n / 2)) (self (n / 2)));
              (1, map Syntax.neg (self (n - 1))) ])
      (min n 12))

let gen_pol =
  let open QCheck.Gen in
  sized (fun n ->
    fix
      (fun self n ->
        let leaf =
          oneof
            [ map Syntax.filter gen_pred;
              map2 (fun f v -> Syntax.Mod (f, v))
                (oneofa fields_for_gen) (int_bound 3) ]
        in
        if n <= 1 then leaf
        else
          frequency
            [ (3, leaf);
              (3, map2 Syntax.union (self (n / 2)) (self (n / 2)));
              (3, map2 Syntax.seq (self (n / 2)) (self (n / 2)));
              (1, map Syntax.star (self (min 4 (n / 2)))) ])
      (min n 20))

let gen_headers =
  let open QCheck.Gen in
  let small = int_bound 3 in
  map2
    (fun (sw, pt) ((dst, vlan), tp) ->
      { Headers.default with
        switch = sw; in_port = pt; eth_dst = dst; vlan; tp_dst = tp })
    (pair small small)
    (pair (pair small small) small)

let prop_fdd_equals_semantics =
  QCheck.Test.make ~name:"FDD compilation preserves semantics" ~count:1500
    (QCheck.make
       ~print:(fun (p, _) -> Syntax.pol_to_string p)
       (QCheck.Gen.pair gen_pol gen_headers))
    (fun (p, h) ->
      let sem = hset_to_list (Semantics.eval p h) in
      let fdd = Fdd.eval (Fdd.of_policy p) h |> List.sort_uniq Headers.compare in
      sem = fdd)

(* table-level: compiled rules behave like the FDD restricted to a switch *)
let table_eval rules (h : Headers.t) =
  let winner =
    List.fold_left
      (fun best (r : Local.rule) ->
        match best with
        | Some (bp, _) when bp >= r.priority -> best
        | _ ->
          if Flow.Pattern.matches r.pattern h then Some (r.priority, r.actions)
          else best)
      None rules
  in
  match winner with
  | None -> []
  | Some (_, group) ->
    Flow.Action.apply_group h group
    |> List.filter_map (fun (h', port) ->
      match (port : Flow.Action.port) with
      | Physical p -> Some (Headers.set h' Fields.In_port p)
      | In_port_out -> Some h'
      | Flood | Controller -> None)
    |> List.sort_uniq Headers.compare

let local_pol_gen =
  (* local policies: no Mod Switch (tests on Switch are fine) *)
  let open QCheck.Gen in
  let rec fix_mod p =
    match (p : Syntax.pol) with
    | Mod (f, v) ->
      if Fields.equal f Fields.Switch then Syntax.Mod (Fields.Vlan, v) else p
    | Filter _ -> p
    | Union (a, b) -> Syntax.Union (fix_mod a, fix_mod b)
    | Seq (a, b) -> Syntax.Seq (fix_mod a, fix_mod b)
    | Star a -> Syntax.Star (fix_mod a)
  in
  map fix_mod gen_pol

let prop_table_equals_semantics =
  QCheck.Test.make
    ~name:"compiled flow table behaves like the policy at its switch"
    ~count:800
    (QCheck.make
       ~print:(fun (p, _) -> Syntax.pol_to_string p)
       (QCheck.Gen.pair local_pol_gen gen_headers))
    (fun (p, h) ->
      let rules = Local.compile ~switch:h.switch p in
      let sem =
        hset_to_list (Semantics.eval p h)
        (* keep only packets that stay at this switch: local policies
           cannot move packets, so that is all of them *)
      in
      table_eval rules h = sem)

(* ------------------------------------------------------------------ *)
(* Local compilation: directed *)

let test_local_routing_rules () =
  let topo = Topo.Gen.linear ~switches:3 ~hosts_per_switch:1 () in
  let pol = Builder.routing_policy topo in
  let rules = Local.compile ~switch:2 pol in
  (* 3 destinations + final drop *)
  Alcotest.(check int) "rule count" 4 (List.length rules);
  (* middle switch: h1 via port 1 (to s1), h3 via port 2? ports: s2 has
     port1->s1, port2->s3, port3->h2 *)
  let probe dst =
    let h =
      Headers.tcp ~switch:2 ~in_port:1 ~src_host:1 ~dst_host:dst ~tp_src:1
        ~tp_dst:2
    in
    table_eval rules h
  in
  (match probe 3 with
   | [ h ] -> Alcotest.(check int) "toward s3" 2 h.in_port
   | _ -> Alcotest.fail "expected one output");
  match probe 2 with
  | [ h ] -> Alcotest.(check int) "local host" 3 h.in_port
  | _ -> Alcotest.fail "expected one output"

let test_local_rejects_links () =
  Alcotest.(check bool) "link rejected" true
    (match Local.compile ~switch:1 (Syntax.link (1, 1) (2, 2)) with
     | exception Local.Not_local _ -> true
     | _ -> false)

let test_local_negation_via_shadowing () =
  (* filter not tpDst=80; port:=9 — needs priority shadowing *)
  let open Syntax in
  let p = seq (filter (neg (test Fields.Tp_dst 80))) (forward 9) in
  let rules = Local.compile ~switch:1 p in
  Alcotest.(check bool) "80 dropped" true (table_eval rules h0 = []);
  let h443 = Headers.set h0 Fields.Tp_dst 443 in
  Alcotest.(check bool) "443 forwarded" true
    (table_eval rules h443 = [ Headers.set h443 Fields.In_port 9 ])

let test_local_table_loading () =
  let open Syntax in
  let table =
    Local.compile_table ~switch:1 (seq (filter (test Fields.Tp_dst 80)) (forward 3))
  in
  Alcotest.(check bool) "loaded" true (Flow.Table.size table >= 1);
  match Flow.Table.apply table ~now:0.0 ~size:10 h0 with
  | Some actions ->
    Alcotest.(check bool) "forwards" true (actions = Flow.Action.forward 3)
  | None -> Alcotest.fail "should match"

(* ------------------------------------------------------------------ *)
(* Naive baseline *)

let test_naive_agrees_on_routing () =
  let topo = Topo.Gen.linear ~switches:3 ~hosts_per_switch:2 () in
  let pol = Builder.routing_policy topo in
  List.iter
    (fun sw ->
      let naive = Naive.compile ~switch:sw pol in
      List.iter
        (fun dst ->
          let h =
            Headers.tcp ~switch:sw ~in_port:1 ~src_host:1 ~dst_host:dst
              ~tp_src:1 ~tp_dst:2
          in
          let fdd_rules = Local.compile ~switch:sw pol in
          Alcotest.check headers_list
            (Printf.sprintf "sw%d dst h%d" sw dst)
            (table_eval fdd_rules h) (table_eval naive h))
        [ 1; 2; 3; 4; 5; 6 ])
    [ 1; 2; 3 ]

let test_naive_redundancy () =
  (* redundant union branches: the naive compiler keeps every duplicate
     (shadowed dead rules), the FDD collapses them *)
  let open Syntax in
  let p =
    big_union
      (List.init 4 (fun _ ->
         seq (filter (test Fields.Tp_dst 80)) (forward 1)))
  in
  let naive = Naive.compile ~switch:1 p in
  let fdd = Local.compile ~switch:1 p in
  Alcotest.(check int) "naive keeps duplicates" 4 (List.length naive);
  Alcotest.(check int) "fdd collapses (match + fall-through drop)" 2
    (List.length fdd);
  (* load both into tables and count dead entries *)
  let load rules =
    let t = Flow.Table.create () in
    List.iter
      (fun (r : Local.rule) ->
        Flow.Table.add t
          (Flow.Table.make_rule ~priority:r.priority ~pattern:r.pattern
             ~actions:r.actions ()))
      rules;
    t
  in
  Alcotest.(check int) "naive has shadowed rules" 3
    (List.length (Flow.Table.shadowed (load naive)));
  Alcotest.(check int) "fdd has none" 0
    (List.length (Flow.Table.shadowed (load fdd)))

let test_fdd_negation_linear () =
  (* a denylist firewall needs negation: the FDD compiles it to a linear
     number of rules (k drops + default), which the naive baseline cannot
     express at all *)
  let open Syntax in
  let deny k =
    let bad =
      List.fold_left
        (fun acc i -> disj acc (test Fields.Tp_dst i))
        False
        (List.init k (fun i -> i + 1))
    in
    seq (filter (neg bad)) (forward 9)
  in
  List.iter
    (fun k ->
      let rules = Local.compile ~switch:1 (deny k) in
      Alcotest.(check int)
        (Printf.sprintf "denylist k=%d is linear" k)
        (k + 1) (List.length rules))
    [ 1; 4; 16 ]

let test_naive_unsupported () =
  Alcotest.(check bool) "negation" true
    (match Naive.compile ~switch:1 (Syntax.Filter (Syntax.Not Syntax.True)) with
     | exception Naive.Unsupported _ -> true
     | _ -> false);
  Alcotest.(check bool) "star" true
    (match Naive.compile ~switch:1 (Syntax.Star (Syntax.Mod (Fields.Vlan, 1))) with
     | exception Naive.Unsupported _ -> true
     | _ -> false)

(* ------------------------------------------------------------------ *)
(* Parallel compilation *)

(* compile_all must be bit-for-bit the sequential per-switch result —
   same switches in the same order, same rules, same priorities — for
   every pool size, including the inline size-1 path *)
let test_compile_all_equals_sequential () =
  let switches = [ 1; 2; 3; 4 ] in
  let rand = Random.State.make [| 0xC0FFEE |] in
  let pols = QCheck.Gen.generate ~n:60 ~rand local_pol_gen in
  List.iter
    (fun domains ->
      let pool = Util.Pool.create ~domains () in
      Fun.protect ~finally:(fun () -> Util.Pool.shutdown pool) @@ fun () ->
      List.iter
        (fun pol ->
          let sequential =
            List.map (fun sw -> (sw, Local.compile ~switch:sw pol)) switches
          in
          let parallel = Local.compile_all ~pool ~switches pol in
          if parallel <> sequential then
            Alcotest.failf "compile_all diverges at %d domains on %s" domains
              (Syntax.pol_to_string pol);
          let expected_total =
            List.fold_left
              (fun acc (_, rules) -> acc + List.length rules)
              0 sequential
          in
          Alcotest.(check int) "total_rules agrees" expected_total
            (Local.total_rules ~pool ~switches pol))
        pols)
    [ 1; 2; 4 ]

(* hammer the shared intern / hash-cons / memo tables from four domains
   at once inside a parallel_region: every domain compiles the same
   policies concurrently and must come back with the canonical
   (physically equal) diagrams, and evaluation must match the
   single-domain compile *)
let test_fdd_multidomain_stress () =
  let rand = Random.State.make [| 17 |] in
  let pols = QCheck.Gen.generate ~n:30 ~rand local_pol_gen in
  let preds = QCheck.Gen.generate ~n:30 ~rand gen_pred in
  let work () =
    List.map2
      (fun pol pred ->
        let d = Fdd.of_policy pol in
        let p = Fdd.of_pred pred in
        let combined = Fdd.seq p (Fdd.union d (Fdd.restrict (Fields.Switch, 1) d)) in
        (d, combined))
      pols preds
  in
  let results =
    Fdd.parallel_region (fun () ->
      List.init 4 (fun _ -> Domain.spawn work) |> List.map Domain.join)
  in
  let reference = work () in
  List.iteri
    (fun i per_domain ->
      List.iter2
        (fun (d, c) (d', c') ->
          if not (d == d' && c == c') then
            Alcotest.failf "domain %d produced a non-canonical FDD" i)
        reference per_domain)
    results;
  (* spot-check semantics survived the concurrent construction *)
  let h = Headers.default in
  List.iter2
    (fun pol (d, _) ->
      Alcotest.check headers_list "eval matches semantics"
        (hset_to_list (Semantics.eval pol h))
        (Fdd.eval d h |> List.sort_uniq Headers.compare))
    pols reference

let suites =
  [ ( "netkat.syntax",
      [ Alcotest.test_case "smart constructors" `Quick test_smart_constructors;
        Alcotest.test_case "size" `Quick test_size;
        Alcotest.test_case "uses_links" `Quick test_uses_links ] );
    ( "netkat.semantics",
      [ Alcotest.test_case "filter" `Quick test_sem_filter;
        Alcotest.test_case "mod" `Quick test_sem_mod;
        Alcotest.test_case "union dedups" `Quick test_sem_union_dedup;
        Alcotest.test_case "seq" `Quick test_sem_seq;
        Alcotest.test_case "star fixpoint" `Quick test_sem_star_fixpoint;
        Alcotest.test_case "de morgan" `Quick test_sem_neg_demorgan;
        Alcotest.test_case "link" `Quick test_link_policy ] );
    ( "netkat.parser",
      [ Alcotest.test_case "basic" `Quick test_parse_basic;
        Alcotest.test_case "policy precedence" `Quick test_parse_precedence;
        Alcotest.test_case "predicate precedence" `Quick
          test_parse_pred_precedence;
        Alcotest.test_case "value literals" `Quick test_parse_values;
        Alcotest.test_case "if-then-else" `Quick test_parse_if;
        Alcotest.test_case "errors" `Quick test_parse_errors;
        Alcotest.test_case "pp/parse roundtrip" `Quick
          test_pp_parse_roundtrip_examples ] );
    ( "netkat.fdd",
      [ Alcotest.test_case "basic equivalences" `Quick test_fdd_basics;
        Alcotest.test_case "hash consing" `Quick test_fdd_hash_consing;
        Alcotest.test_case "star converges" `Quick test_fdd_star_convergence;
        Alcotest.test_case "node sharing" `Quick test_fdd_node_count_sharing;
        Alcotest.test_case "restrict" `Quick test_fdd_restrict;
        Alcotest.test_case "action composition" `Quick test_act_compose;
        QCheck_alcotest.to_alcotest prop_fdd_equals_semantics ] );
    ( "netkat.local",
      [ Alcotest.test_case "routing rules" `Quick test_local_routing_rules;
        Alcotest.test_case "rejects links" `Quick test_local_rejects_links;
        Alcotest.test_case "negation via shadowing" `Quick
          test_local_negation_via_shadowing;
        Alcotest.test_case "table loading" `Quick test_local_table_loading;
        QCheck_alcotest.to_alcotest prop_table_equals_semantics ] );
    ( "netkat.parallel",
      [ Alcotest.test_case "compile_all = sequential (1/2/4 domains)" `Quick
          test_compile_all_equals_sequential;
        Alcotest.test_case "multi-domain fdd stress" `Quick
          test_fdd_multidomain_stress ] );
    ( "netkat.naive",
      [ Alcotest.test_case "agrees on routing" `Quick
          test_naive_agrees_on_routing;
        Alcotest.test_case "keeps redundant rules" `Quick
          test_naive_redundancy;
        Alcotest.test_case "fdd compiles denylists linearly" `Quick
          test_fdd_negation_linear;
        Alcotest.test_case "unsupported fragments" `Quick
          test_naive_unsupported ] ) ]
