(* Integration tests for the controller runtime and the app suite: the
   control channel speaks the wire protocol end to end over the
   simulated network. *)

open Dataplane

let ping_pair net ~src ~dst =
  Traffic.install_responders net;
  let result = Traffic.ping net ~src ~dst ~count:3 ~interval:0.02 in
  ignore (Network.run ~until:(Network.now net +. 2.0) net ());
  (List.length !(result.rtts), result.lost ())

(* ------------------------------------------------------------------ *)
(* Runtime *)

let test_handshake () =
  let topo = Topo.Gen.linear ~switches:3 ~hosts_per_switch:1 () in
  let net = Network.create topo in
  let ups = ref [] in
  let app =
    { (Controller.Api.default_app "probe") with
      switch_up =
        (fun _ ~switch_id ~ports -> ups := (switch_id, List.length ports) :: !ups) }
  in
  let rt = Controller.Runtime.create_and_handshake net [ app ] in
  Alcotest.(check int) "all switches up" 3 (Controller.Runtime.ready_switches rt);
  Alcotest.(check int) "callbacks" 3 (List.length !ups);
  (* middle switch has 3 ports (two neighbors + host) *)
  Alcotest.(check bool) "port lists" true (List.mem (2, 3) !ups)

let test_packet_in_dispatch () =
  let topo = Topo.Gen.linear ~switches:1 ~hosts_per_switch:2 () in
  let net = Network.create topo in
  let seen = ref [] in
  let app =
    { (Controller.Api.default_app "probe") with
      packet_in =
        (fun _ ~switch_id ~port ~reason:_ payload ->
          seen := (switch_id, port, payload.headers.tp_dst) :: !seen) }
  in
  let _rt = Controller.Runtime.create_and_handshake net [ app ] in
  Network.send_from net ~host:1 (Network.make_pkt ~tp_dst:8080 ~src:1 ~dst:2 ());
  ignore (Network.run net ());
  Alcotest.(check (list (triple int int int))) "packet-in" [ (1, 1, 8080) ] !seen

let test_install_via_wire () =
  let topo = Topo.Gen.linear ~switches:1 ~hosts_per_switch:2 () in
  let net = Network.create topo in
  let app =
    { (Controller.Api.default_app "installer") with
      switch_up =
        (fun ctx ~switch_id ~ports:_ ->
          Controller.Api.install ctx ~switch_id ~priority:5 Flow.Pattern.any
            (Flow.Action.forward 2)) }
  in
  let _rt = Controller.Runtime.create_and_handshake net [ app ] in
  Alcotest.(check int) "rule landed" 1
    (Flow.Table.size (Network.switch net 1).table);
  Network.send_from net ~host:1 (Network.make_pkt ~src:1 ~dst:2 ());
  ignore (Network.run net ());
  Alcotest.(check int) "forwards" 1 (Network.host net 2).received

let test_packet_out_and_stats () =
  let topo = Topo.Gen.linear ~switches:1 ~hosts_per_switch:2 () in
  let net = Network.create topo in
  let table_stats = ref None in
  let app =
    { (Controller.Api.default_app "stats") with
      packet_in =
        (fun ctx ~switch_id ~port ~reason:_ payload ->
          (* bounce the packet out port 2 and poll table stats *)
          Controller.Api.packet_out ctx ~switch_id ~in_port:port
            [ Flow.Action.Output (Physical 2) ] payload;
          Controller.Api.request_stats ctx ~switch_id
            Openflow.Message.Table_stats_request (fun reply ->
              match reply with
              | Openflow.Message.Table_stats_reply ts -> table_stats := Some ts
              | _ -> ())) }
  in
  let _rt = Controller.Runtime.create_and_handshake net [ app ] in
  Network.send_from net ~host:1 (Network.make_pkt ~src:1 ~dst:2 ());
  ignore (Network.run net ());
  Alcotest.(check int) "packet-out delivered" 1 (Network.host net 2).received;
  match !table_stats with
  | Some ts ->
    Alcotest.(check int) "misses counted" 1 ts.table_misses;
    Alcotest.(check int) "no rules" 0 ts.active_rules
  | None -> Alcotest.fail "no stats reply"

let test_control_channel_counted () =
  let topo = Topo.Gen.linear ~switches:2 ~hosts_per_switch:0 () in
  let net = Network.create topo in
  let _rt = Controller.Runtime.create_and_handshake net [] in
  (* hello + features_request down, features_reply up, per switch >= 6 *)
  Alcotest.(check bool) "control messages counted" true
    ((Network.stats net).control_msgs >= 6);
  Alcotest.(check bool) "control bytes counted" true
    ((Network.stats net).control_bytes > 0)

(* ------------------------------------------------------------------ *)
(* Learning switch *)

let test_learning_connectivity () =
  let topo = Topo.Gen.linear ~switches:3 ~hosts_per_switch:1 () in
  let net = Network.create topo in
  let learning = Controller.Learning.create () in
  let _rt =
    Controller.Runtime.create_and_handshake net [ Controller.Learning.app learning ]
  in
  let got, lost = ping_pair net ~src:1 ~dst:3 in
  Alcotest.(check int) "all pings answered" 3 got;
  Alcotest.(check int) "none lost" 0 lost;
  Alcotest.(check bool) "learned locations" true
    (Controller.Learning.lookup learning ~switch_id:2 (Packet.Mac.of_host_id 1)
     <> None)

let test_learning_uses_rules_when_warm () =
  let topo = Topo.Gen.linear ~switches:2 ~hosts_per_switch:1 () in
  let net = Network.create topo in
  let learning = Controller.Learning.create () in
  let _rt =
    Controller.Runtime.create_and_handshake net [ Controller.Learning.app learning ]
  in
  ignore (ping_pair net ~src:1 ~dst:2);
  let sw1 = Network.switch net 1 in
  let before = sw1.packet_ins in
  (* warm path: more traffic must not generate packet-ins *)
  Network.send_from net ~host:1 (Network.make_pkt ~src:1 ~dst:2 ());
  ignore (Network.run ~until:(Network.now net +. 1.0) net ());
  Alcotest.(check int) "no new packet-ins" before sw1.packet_ins;
  Alcotest.(check bool) "rules installed" true (Flow.Table.size sw1.table > 0)

let test_learning_no_storm_in_ring () =
  (* loops in the topology must not melt down thanks to spanning-tree
     flood ports *)
  let topo = Topo.Gen.ring ~switches:4 ~hosts_per_switch:1 () in
  let net = Network.create topo in
  let learning = Controller.Learning.create () in
  let _rt =
    Controller.Runtime.create_and_handshake net [ Controller.Learning.app learning ]
  in
  Network.send_from net ~host:1
    (Network.make_pkt ~src:1 ~dst:3 ());
  let events = Network.run ~until:(Network.now net +. 1.0) ~max_events:50_000 net () in
  Alcotest.(check bool) "bounded event count (no storm)" true (events < 10_000)

(* ------------------------------------------------------------------ *)
(* Proactive routing + failover *)

let test_routing_proactive_no_packet_ins () =
  let topo, _ = Topo.Gen.fat_tree ~k:2 () in
  let net = Network.create topo in
  let routing = Controller.Routing.create () in
  let _rt =
    Controller.Runtime.create_and_handshake net [ Controller.Routing.app routing ]
  in
  let got, _ = ping_pair net ~src:1 ~dst:2 in
  Alcotest.(check int) "pings ok" 3 got;
  let total_packet_ins =
    List.fold_left (fun acc (sw : Network.switch) -> acc + sw.packet_ins) 0
      (Network.switch_list net)
  in
  Alcotest.(check int) "zero packet-ins" 0 total_packet_ins

let test_routing_failover () =
  (* ring gives an alternate path; kill the primary and ping again *)
  let topo = Topo.Gen.ring ~switches:4 ~hosts_per_switch:1 () in
  let net = Network.create topo in
  let routing = Controller.Routing.create () in
  let _rt =
    Controller.Runtime.create_and_handshake net [ Controller.Routing.app routing ]
  in
  let got1, _ = ping_pair net ~src:1 ~dst:2 in
  Alcotest.(check int) "before failure" 3 got1;
  let reinstalls_before = Controller.Routing.reinstalls routing in
  (* s1 port 1 is the s1-s2 link *)
  Network.fail_link net (Topo.Topology.Node.Switch 1) 1;
  ignore (Network.run ~until:(Network.now net +. 1.0) net ());
  Alcotest.(check int) "recomputed once" (reinstalls_before + 1)
    (Controller.Routing.reinstalls routing);
  let got2, lost2 = ping_pair net ~src:1 ~dst:2 in
  Alcotest.(check int) "after failure" 3 got2;
  Alcotest.(check int) "no loss after reroute" 0 lost2

let test_routing_churn_counted () =
  let topo = Topo.Gen.ring ~switches:4 ~hosts_per_switch:1 () in
  let net = Network.create topo in
  let routing = Controller.Routing.create () in
  let _rt =
    Controller.Runtime.create_and_handshake net [ Controller.Routing.app routing ]
  in
  let initial = Controller.Routing.last_churn routing in
  Alcotest.(check bool) "initial rules pushed" true (initial > 0);
  Network.fail_link net (Topo.Topology.Node.Switch 1) 1;
  ignore (Network.run ~until:(Network.now net +. 1.0) net ());
  Alcotest.(check bool) "failover churn counted" true
    (Controller.Routing.last_churn routing > 0)

(* Two distinct links failing at the same simulated instant must yield
   tables computed over the final topology (both links gone), not a
   stale graph that still contains the second link.  The old debounce
   compared event time against the last recompute time, which dropped
   the second failure when it landed after a recompute within the same
   instant — the nested scheduling below reproduces exactly that
   interleaving (a zero-latency control channel makes port-status
   delivery and link mutation share the instant). *)
let test_routing_same_instant_failures () =
  let tables_for fail_scenario =
    let topo = Topo.Gen.ring ~switches:5 ~hosts_per_switch:1 () in
    let net = Network.create topo in
    let routing = Controller.Routing.create () in
    let _rt =
      Controller.Runtime.create ~latency:0.0 net
        [ Controller.Routing.app routing ]
    in
    ignore (Network.run ~until:0.2 net ());
    fail_scenario net;
    ignore (Network.run ~until:(Network.now net +. 1.0) net ());
    ( routing,
      List.map
        (fun (sw : Network.switch) ->
          ( sw.sw_id,
            List.sort compare
              (List.map
                 (fun (r : Flow.Table.rule) -> (r.priority, r.pattern, r.actions))
                 (Flow.Table.rules sw.table)) ))
        (Network.switch_list net) )
  in
  (* reference: the same two failures, well separated in time *)
  let _, reference =
    tables_for (fun net ->
      Network.fail_link net (Topo.Topology.Node.Switch 1) 1;
      ignore (Network.run ~until:(Network.now net +. 0.5) net ());
      Network.fail_link net (Topo.Topology.Node.Switch 3) 2)
  in
  (* same-instant: s3-s4 fails between s1-s2's port-status delivery and
     any recompute scheduled for the instant *)
  let routing, same_instant =
    tables_for (fun net ->
      let sim = Network.sim net in
      let at = Network.now net +. 0.1 in
      Sim.schedule_at sim ~time:at (fun () ->
        Network.fail_link net (Topo.Topology.Node.Switch 1) 1;
        Sim.schedule sim ~delay:0.0 (fun () ->
          Sim.schedule sim ~delay:0.0 (fun () ->
            Network.fail_link net (Topo.Topology.Node.Switch 3) 2))))
  in
  Alcotest.(check bool) "recomputed at least once" true
    (Controller.Routing.reinstalls routing >= 2);
  List.iter2
    (fun (sw_a, rules_a) (sw_b, rules_b) ->
      Alcotest.(check int) "same switch" sw_a sw_b;
      Alcotest.(check bool)
        (Printf.sprintf "s%d tables reflect both failures" sw_a)
        true (rules_a = rules_b))
    reference same_instant

(* After a crash, the keepalive verdict marks the switch dead and
   routing recomputes around it; the re-handshake clears the dead mark
   and a fresh recompute (not a stale single-switch repush) restores the
   crashed switch's rules. *)
let test_routing_repush_on_rehandshake () =
  let resilience =
    { Controller.Runtime.default_resilience with
      echo_period = 0.05; retx_timeout = 0.01 }
  in
  let topo = Topo.Gen.linear ~switches:3 ~hosts_per_switch:1 () in
  let net = Network.create topo in
  let routing = Controller.Routing.create () in
  let _rt =
    Controller.Runtime.create_and_handshake ~resilience net
      [ Controller.Routing.app routing ]
  in
  let before = Flow.Table.size (Network.switch net 2).table in
  Alcotest.(check bool) "rules installed" true (before > 0);
  Alcotest.(check int) "no reroute yet" 0 (Controller.Routing.reroutes routing);
  Network.crash_switch net 2;
  ignore (Network.run ~until:(Network.now net +. 0.5) net ());
  Alcotest.(check (list int)) "crashed switch marked dead" [ 2 ]
    (Controller.Routing.dead_switches routing);
  Alcotest.(check int) "one reroute" 1 (Controller.Routing.reroutes routing);
  Network.restart_switch net 2;
  ignore (Network.run ~until:(Network.now net +. 1.0) net ());
  Alcotest.(check (list int)) "dead mark cleared on re-handshake" []
    (Controller.Routing.dead_switches routing);
  Alcotest.(check int) "recovery recomputes, not a stale repush" 0
    (Controller.Routing.repushes routing);
  Alcotest.(check int) "rules restored" before
    (Flow.Table.size (Network.switch net 2).table);
  let got, _ = ping_pair net ~src:1 ~dst:3 in
  Alcotest.(check int) "connectivity through the restarted switch" 3 got

(* ------------------------------------------------------------------ *)
(* Firewall app *)

let test_firewall_blocks () =
  let topo = Topo.Gen.linear ~switches:2 ~hosts_per_switch:1 () in
  let net = Network.create topo in
  let entries =
    [ { Netkat.Builder.allow = false;
        src_ip = Some (Packet.Ipv4.of_host_id 1);
        dst_ip = Some (Packet.Ipv4.of_host_id 2);
        proto = None; dst_port = Some 22 } ]
  in
  let fw = Controller.Firewall.create entries in
  let _rt =
    Controller.Runtime.create_and_handshake net [ Controller.Firewall.app fw ]
  in
  (* blocked: h1 -> h2 port 22 *)
  Network.send_from net ~host:1 (Network.make_pkt ~tp_dst:22 ~src:1 ~dst:2 ());
  (* allowed: h1 -> h2 port 80 *)
  Network.send_from net ~host:1 (Network.make_pkt ~tp_dst:80 ~src:1 ~dst:2 ());
  ignore (Network.run ~until:(Network.now net +. 1.0) net ());
  Alcotest.(check int) "only port 80 arrives" 1 (Network.host net 2).received;
  Alcotest.(check int) "port 22 dropped by policy" 1
    (Network.stats net).dropped_policy

(* ------------------------------------------------------------------ *)
(* Load balancer *)

let test_lb_spreads_and_rewrites () =
  (* hosts 1..4 on one switch; host 1 is the client, 2..4 the backends *)
  let topo = Topo.Gen.linear ~switches:1 ~hosts_per_switch:4 () in
  let net = Network.create topo in
  let vip = Packet.Ipv4.of_string "10.99.0.1" in
  let lb = Controller.Lb.create ~vip ~backends:[ 2; 3; 4 ] () in
  let routing = Controller.Routing.create ~use_ip:true () in
  let _rt =
    Controller.Runtime.create_and_handshake net
      [ Controller.Lb.app lb; Controller.Routing.app routing ]
  in
  (* 30 flows from distinct source ports toward the VIP *)
  for i = 1 to 30 do
    let pkt = Network.make_pkt ~tp_src:(20000 + i) ~src:1 ~dst:1 () in
    let pkt =
      { pkt with hdr = { pkt.hdr with ip4_dst = vip; eth_dst = 0xffffffffff } }
    in
    Network.send_from net ~host:1 pkt
  done;
  ignore (Network.run ~until:(Network.now net +. 2.0) net ());
  Alcotest.(check int) "all flows balanced" 30 (Controller.Lb.flows lb);
  let dist = Controller.Lb.distribution lb in
  Alcotest.(check int) "three backends" 3 (List.length dist);
  List.iter
    (fun (b, n) ->
      Alcotest.(check bool)
        (Printf.sprintf "backend %d got some (n=%d)" b n)
        true (n > 0))
    dist;
  (* backends actually received the traffic *)
  let total_rx =
    List.fold_left (fun acc h -> acc + (Network.host net h).received) 0 [ 2; 3; 4 ]
  in
  Alcotest.(check int) "backends received" 30 total_rx

let test_lb_flow_affinity () =
  (* the same 5-tuple always lands on the same backend *)
  let topo = Topo.Gen.linear ~switches:1 ~hosts_per_switch:3 () in
  let vip = Packet.Ipv4.of_string "10.99.0.1" in
  let lb = Controller.Lb.create ~vip ~backends:[ 2; 3 ] () in
  let net = Network.create topo in
  let _rt =
    Controller.Runtime.create_and_handshake net [ Controller.Lb.app lb ]
  in
  let send () =
    let pkt = Network.make_pkt ~tp_src:12345 ~src:1 ~dst:1 () in
    Network.send_from net ~host:1
      { pkt with hdr = { pkt.hdr with ip4_dst = vip } }
  in
  send ();
  ignore (Network.run ~until:(Network.now net +. 1.0) net ());
  let first_rx = ((Network.host net 2).received, (Network.host net 3).received) in
  send ();
  send ();
  ignore (Network.run ~until:(Network.now net +. 1.0) net ());
  let second_rx = ((Network.host net 2).received, (Network.host net 3).received) in
  (* all packets went to whichever backend got the first one *)
  let d2 = fst second_rx - fst first_rx and d3 = snd second_rx - snd first_rx in
  Alcotest.(check bool) "affinity" true
    ((d2 = 2 && d3 = 0 && fst first_rx = 1 && snd first_rx = 0)
     || (d3 = 2 && d2 = 0 && snd first_rx = 1 && fst first_rx = 0))

(* ------------------------------------------------------------------ *)
(* Monitor *)

let test_monitor_observes_traffic () =
  let topo = Topo.Gen.linear ~switches:1 ~hosts_per_switch:2 () in
  let net = Network.create topo in
  let monitor = Controller.Monitor.create ~period:0.1 () in
  let routing = Controller.Routing.create () in
  let _rt =
    Controller.Runtime.create_and_handshake net
      [ Controller.Routing.app routing; Controller.Monitor.app monitor ]
  in
  ignore
    (Traffic.cbr net
       { (Traffic.default_flow ~src:1 ~dst:2) with
         rate_pps = 1000.0; pkt_size = 1000; stop = 1.0 });
  ignore (Network.run ~until:(Network.now net +. 1.5) net ());
  Alcotest.(check bool) "polled" true (Controller.Monitor.polls monitor > 5);
  (* 1000 pps * 1000 B = 8 Mb/s on a 1 Gb/s link toward h2 (port 2) *)
  let u = Controller.Monitor.utilization monitor net ~switch_id:1 ~port:2 in
  Alcotest.(check bool)
    (Printf.sprintf "utilization plausible (%f)" u)
    true
    (u > 0.004 && u < 0.02)

let suites =
  [ ( "controller.runtime",
      [ Alcotest.test_case "handshake" `Quick test_handshake;
        Alcotest.test_case "packet-in dispatch" `Quick test_packet_in_dispatch;
        Alcotest.test_case "install via wire" `Quick test_install_via_wire;
        Alcotest.test_case "packet-out and stats" `Quick
          test_packet_out_and_stats;
        Alcotest.test_case "control channel counted" `Quick
          test_control_channel_counted ] );
    ( "controller.learning",
      [ Alcotest.test_case "connectivity" `Quick test_learning_connectivity;
        Alcotest.test_case "warm path uses rules" `Quick
          test_learning_uses_rules_when_warm;
        Alcotest.test_case "no broadcast storm in ring" `Quick
          test_learning_no_storm_in_ring ] );
    ( "controller.routing",
      [ Alcotest.test_case "proactive, zero packet-ins" `Quick
          test_routing_proactive_no_packet_ins;
        Alcotest.test_case "failover" `Quick test_routing_failover;
        Alcotest.test_case "churn counted" `Quick test_routing_churn_counted;
        Alcotest.test_case "same-instant failures coalesce" `Quick
          test_routing_same_instant_failures;
        Alcotest.test_case "repush on re-handshake" `Quick
          test_routing_repush_on_rehandshake ] );
    ( "controller.firewall",
      [ Alcotest.test_case "blocks matching traffic" `Quick test_firewall_blocks ] );
    ( "controller.lb",
      [ Alcotest.test_case "spreads and rewrites" `Quick
          test_lb_spreads_and_rewrites;
        Alcotest.test_case "flow affinity" `Quick test_lb_flow_affinity ] );
    ( "controller.monitor",
      [ Alcotest.test_case "observes traffic" `Quick
          test_monitor_observes_traffic ] ) ]
