(* Robustness (fuzz) properties: parsers and decoders must never crash
   with anything but their declared exceptions, and pretty-printed
   policies must parse back to themselves. *)

(* ------------------------------------------------------------------ *)
(* Wire decoder on arbitrary bytes *)

let prop_wire_decoder_total =
  QCheck.Test.make ~name:"openflow decoder: error or value, never a crash"
    ~count:2000
    QCheck.(string_of_size (QCheck.Gen.int_bound 120))
    (fun s ->
      match Openflow.Wire.decode (Bytes.of_string s) with
      | _ -> true
      | exception Openflow.Wire.Wire_error _ -> true)

(* flipping bytes of a valid message must also be handled *)
let prop_wire_decoder_mutation =
  let base =
    Openflow.Wire.encode ~xid:7
      (Openflow.Message.Flow_mod
         (Openflow.Message.add_flow ~priority:9
            ~pattern:(Flow.Pattern.of_field Packet.Fields.Tp_dst 80)
            ~actions:(Flow.Action.forward 1) ()))
  in
  QCheck.Test.make ~name:"openflow decoder survives bit flips" ~count:1000
    QCheck.(pair (int_bound (Bytes.length base - 1)) (int_bound 255))
    (fun (pos, v) ->
      let b = Bytes.copy base in
      Bytes.set b pos (Char.chr v);
      match Openflow.Wire.decode b with
      | _ -> true
      | exception Openflow.Wire.Wire_error _ -> true)

(* several random byte flips at once — the shape of a chaos-corrupted
   frame (see Dataplane.Fault link_corrupt), which real receivers see as
   a CRC failure; the decoders must report their declared error or a
   value, never garbage or an unrelated exception *)
let gen_flips len =
  QCheck.Gen.(list_size (1 -- 8) (pair (int_bound (len - 1)) (int_bound 255)))

let flip_all base flips =
  let b = Bytes.copy base in
  List.iter (fun (pos, v) -> Bytes.set b pos (Char.chr v)) flips;
  b

let prop_wire_decoder_multiflip =
  let base =
    Openflow.Wire.encode ~xid:7
      (Openflow.Message.Flow_mod
         (Openflow.Message.add_flow ~priority:9
            ~pattern:(Flow.Pattern.of_field Packet.Fields.Tp_dst 80)
            ~actions:(Flow.Action.forward 1) ()))
  in
  QCheck.Test.make ~name:"openflow decoder survives multi-byte corruption"
    ~count:2000
    (QCheck.make (gen_flips (Bytes.length base)))
    (fun flips ->
      match Openflow.Wire.decode (flip_all base flips) with
      | _ -> true
      | exception Openflow.Wire.Wire_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Packet decoder on arbitrary bytes *)

let prop_packet_decoder_total =
  QCheck.Test.make ~name:"packet decoder: error or value, never a crash"
    ~count:2000
    QCheck.(string_of_size (QCheck.Gen.int_bound 100))
    (fun s ->
      match Packet.Codec.decode (Bytes.of_string s) with
      | _ -> true
      | exception Packet.Codec.Parse_error _ -> true)

let prop_packet_decoder_mutation =
  let base =
    Packet.Codec.encode
      (Packet.Frame.tcp_packet
         ~eth_src:(Packet.Mac.of_host_id 1) ~eth_dst:(Packet.Mac.of_host_id 2)
         ~ip_src:(Packet.Ipv4.of_host_id 1) ~ip_dst:(Packet.Ipv4.of_host_id 2)
         ~tp_src:1 ~tp_dst:2 ~payload:(Bytes.make 32 'x') ())
  in
  QCheck.Test.make ~name:"packet decoder survives bit flips" ~count:1000
    QCheck.(pair (int_bound (Bytes.length base - 1)) (int_bound 255))
    (fun (pos, v) ->
      let b = Bytes.copy base in
      Bytes.set b pos (Char.chr v);
      match Packet.Codec.decode b with
      | _ -> true
      | exception Packet.Codec.Parse_error _ -> true)

let packet_base =
  Packet.Codec.encode
    (Packet.Frame.tcp_packet
       ~eth_src:(Packet.Mac.of_host_id 1) ~eth_dst:(Packet.Mac.of_host_id 2)
       ~ip_src:(Packet.Ipv4.of_host_id 1) ~ip_dst:(Packet.Ipv4.of_host_id 2)
       ~tp_src:1 ~tp_dst:2 ~payload:(Bytes.make 32 'x') ())

let prop_packet_decoder_multiflip =
  QCheck.Test.make ~name:"packet decoder survives multi-byte corruption"
    ~count:2000
    (QCheck.make (gen_flips (Bytes.length packet_base)))
    (fun flips ->
      match Packet.Codec.decode (flip_all packet_base flips) with
      | _ -> true
      | exception Packet.Codec.Parse_error _ -> true)

(* corruption and truncation together: flip bytes, then cut the frame *)
let prop_packet_decoder_flip_truncate =
  QCheck.Test.make
    ~name:"packet decoder survives corruption plus truncation" ~count:2000
    (QCheck.make
       QCheck.Gen.(
         pair (gen_flips (Bytes.length packet_base))
           (0 -- Bytes.length packet_base)))
    (fun (flips, cut) ->
      let b = flip_all packet_base flips in
      match Packet.Codec.decode (Bytes.sub b 0 cut) with
      | _ -> true
      | exception Packet.Codec.Parse_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Liveness messages inside batched transmissions.  The resilient
   runtime rides keepalives and port events in [encode_batch] frames;
   round-trip must be exact, and a truncated transmission must either
   decode to an unmodified prefix of complete frames or raise — never
   crash, never deliver a mangled message. *)

let gen_ctl_msg =
  QCheck.Gen.(
    oneof
      [ map (fun s -> Openflow.Message.Echo_request s) (string_size (0 -- 12));
        map (fun s -> Openflow.Message.Echo_reply s) (string_size (0 -- 12));
        map2
          (fun port up ->
            Openflow.Message.Port_status
              { ps_port = port;
                ps_reason = (if up then Openflow.Message.Port_up
                             else Openflow.Message.Port_down) })
          (0 -- 48) bool;
        return Openflow.Message.Hello;
        return Openflow.Message.Barrier_request;
        return Openflow.Message.Barrier_reply ])

let gen_ctl_batch =
  QCheck.Gen.(list_size (1 -- 8) (pair (1 -- 0xFFFF) gen_ctl_msg))

let prop_batch_roundtrip_liveness =
  QCheck.Test.make
    ~name:"encode_batch/decode_all roundtrip (echo, port-status)" ~count:1000
    (QCheck.make gen_ctl_batch)
    (fun batch ->
      Openflow.Wire.decode_all (Openflow.Wire.encode_batch batch) = batch)

let prop_batch_truncation =
  QCheck.Test.make ~name:"decode_all on truncated batches: prefix or error"
    ~count:1000
    (QCheck.make QCheck.Gen.(pair gen_ctl_batch (0 -- 200)))
    (fun (batch, cut) ->
      let full = Openflow.Wire.encode_batch batch in
      let cut = min cut (Bytes.length full) in
      match Openflow.Wire.decode_all (Bytes.sub full 0 cut) with
      | msgs ->
        List.length msgs <= List.length batch
        && msgs = List.filteri (fun i _ -> i < List.length msgs) batch
      | exception Openflow.Wire.Wire_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Policy parser on arbitrary strings *)

let printable =
  QCheck.Gen.(map Char.chr (int_range 32 126))

let prop_parser_total =
  QCheck.Test.make ~name:"policy parser: error or value, never a crash"
    ~count:2000
    (QCheck.make QCheck.Gen.(string_size ~gen:printable (0 -- 60)))
    (fun s ->
      match Netkat.Parser.pol_of_string s with
      | _ -> true
      | exception Netkat.Parser.Parse_error _ -> true
      | exception Invalid_argument _ -> true (* bad literal values *))

(* token-soup fuzz: well-formed tokens in random order *)
let token_soup =
  QCheck.Gen.(
    map (String.concat " ")
      (list_size (0 -- 15)
         (oneofl
            [ "id"; "drop"; "filter"; "port"; "tpDst"; ":="; "="; "+"; ";";
              "*"; "("; ")"; "1"; "80"; "true"; "false"; "and"; "or"; "not";
              "if"; "then"; "else"; "vlan"; "10.0.0.1"; "0x800" ])))

let prop_parser_token_soup =
  QCheck.Test.make ~name:"policy parser survives token soup" ~count:2000
    (QCheck.make token_soup)
    (fun s ->
      match Netkat.Parser.pol_of_string s with
      | _ -> true
      | exception Netkat.Parser.Parse_error _ -> true)

(* pretty-print / parse roundtrip on random policies (reuses the policy
   generator from the compiler property tests) *)
let prop_pp_parse_roundtrip =
  QCheck.Test.make ~name:"pp/parse roundtrip on random policies" ~count:1000
    (QCheck.make
       ~print:(fun p -> Netkat.Syntax.pol_to_string p)
       Test_netkat.gen_pol)
    (fun p ->
      Netkat.Parser.pol_of_string (Netkat.Syntax.pol_to_string p) = p)

let prop_pp_parse_pred_roundtrip =
  QCheck.Test.make ~name:"pp/parse roundtrip on random predicates" ~count:1000
    (QCheck.make
       ~print:(fun p -> Netkat.Syntax.pred_to_string p)
       Test_netkat.gen_pred)
    (fun p ->
      Netkat.Parser.pred_of_string (Netkat.Syntax.pred_to_string p) = p)

(* ------------------------------------------------------------------ *)
(* Interned FDD compiler vs the reference semantics, with the global
   operation caches cleared at random points between compilations — a
   stale or wrongly-keyed cache entry (or a broken action-intern table)
   would show up as a semantics divergence here. *)

let prop_fdd_semantics_across_cache_clears =
  QCheck.Test.make
    ~name:"interned FDD == reference semantics across cache clears"
    ~count:1200
    (QCheck.make
       ~print:(fun ((p, _), _) -> Netkat.Syntax.pol_to_string p)
       QCheck.Gen.(pair (pair Test_netkat.gen_pol Test_netkat.gen_headers) bool))
    (fun ((p, h), clear) ->
      if clear then Netkat.Fdd.clear_cache ();
      let sem =
        Netkat.Semantics.HSet.elements (Netkat.Semantics.eval p h)
      in
      let fdd =
        Netkat.Fdd.eval (Netkat.Fdd.of_policy p) h
        |> List.sort_uniq Packet.Headers.compare
      in
      (* recompiling the same policy against warm caches must agree too *)
      let fdd2 =
        Netkat.Fdd.eval (Netkat.Fdd.of_policy p) h
        |> List.sort_uniq Packet.Headers.compare
      in
      sem = fdd && sem = fdd2)

(* ------------------------------------------------------------------ *)
(* DOT output is well-formed-ish *)

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_dot_output () =
  let topo = Topo.Gen.ring ~switches:4 ~hosts_per_switch:1 () in
  let dot = Topo.Topology.to_dot topo in
  Alcotest.(check bool) "header" true
    (String.length dot > 20 && String.sub dot 0 5 = "graph");
  let edges =
    String.split_on_char '\n' dot
    |> List.filter (fun l -> contains_substring l " -- ")
  in
  Alcotest.(check int) "one edge per link" 8 (List.length edges);
  Alcotest.(check bool) "nodes typed" true
    (contains_substring dot "shape=box" && contains_substring dot "shape=ellipse");
  (* failed links render dashed *)
  Topo.Topology.fail_link topo (Topo.Topology.Node.Switch 1, 1);
  Alcotest.(check bool) "dashed when down" true
    (contains_substring (Topo.Topology.to_dot topo) "style=dashed")

let suites =
  [ ( "fuzz",
      [ QCheck_alcotest.to_alcotest prop_wire_decoder_total;
        QCheck_alcotest.to_alcotest prop_wire_decoder_mutation;
        QCheck_alcotest.to_alcotest prop_wire_decoder_multiflip;
        QCheck_alcotest.to_alcotest prop_packet_decoder_total;
        QCheck_alcotest.to_alcotest prop_packet_decoder_mutation;
        QCheck_alcotest.to_alcotest prop_packet_decoder_multiflip;
        QCheck_alcotest.to_alcotest prop_packet_decoder_flip_truncate;
        QCheck_alcotest.to_alcotest prop_batch_roundtrip_liveness;
        QCheck_alcotest.to_alcotest prop_batch_truncation;
        QCheck_alcotest.to_alcotest prop_parser_total;
        QCheck_alcotest.to_alcotest prop_parser_token_soup;
        QCheck_alcotest.to_alcotest prop_pp_parse_roundtrip;
        QCheck_alcotest.to_alcotest prop_pp_parse_pred_roundtrip;
        QCheck_alcotest.to_alcotest prop_fdd_semantics_across_cache_clears;
        Alcotest.test_case "dot export" `Quick test_dot_output ] ) ]
