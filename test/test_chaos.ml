(* The chaos layer and the resilient control plane, end to end: seeded
   fault determinism, keepalive liveness, reliable (retransmitted,
   deduplicated) flow-mod delivery, crash resync, and the ISSUE 5
   acceptance scenario — 20% control-channel loss plus a switch
   crash/restart plus two link flaps reconverging to intended state with
   a byte-identical event trace per seed. *)

open Dataplane

let fast_resilience =
  { Controller.Runtime.echo_period = 0.05; echo_miss_limit = 3;
    retx_timeout = 0.01; retx_backoff = 2.0; retx_cap = 0.1;
    selective_resync = false }

let rule_key (r : Flow.Table.rule) = (r.priority, r.pattern, r.actions, r.cookie)

let keys rules = List.sort compare (List.map rule_key rules)

(* every switch's installed table equals the runtime's intended state *)
let diverged_switches net rt =
  List.filter
    (fun (sw : Network.switch) ->
      keys (Flow.Table.rules sw.table)
      <> keys (Controller.Runtime.intended_rules rt ~switch_id:sw.sw_id))
    (Network.switch_list net)
  |> List.map (fun (sw : Network.switch) -> sw.sw_id)

let check_converged net rt =
  Alcotest.(check (list int)) "tables equal intended state" []
    (diverged_switches net rt)

(* ------------------------------------------------------------------ *)
(* Fault module *)

let verdicts seed n =
  let f = Fault.create ~seed ~drop:0.2 ~dup:0.1 ~jitter:1e-3 () in
  List.init n (fun _ ->
    let v = Fault.decide f in
    (v.v_drop, v.v_dup, v.v_delay, v.v_dup_delay))

let test_fault_deterministic () =
  Alcotest.(check bool) "same seed, same verdicts" true
    (verdicts 42 500 = verdicts 42 500);
  Alcotest.(check bool) "different seed, different verdicts" false
    (verdicts 42 500 = verdicts 43 500)

let test_fault_env () =
  Alcotest.(check bool) "no knobs, no fault" true (Fault.from_env () = None)

(* the ZEN_CHAOS_* matrix: any knob alone activates the fault — a bare
   seed included (zero-rate, for deterministic scenario generation) *)
let test_fault_env_matrix () =
  let knobs =
    [ "ZEN_CHAOS_DROP"; "ZEN_CHAOS_DUP"; "ZEN_CHAOS_JITTER";
      "ZEN_CHAOS_LINK_DROP"; "ZEN_CHAOS_LINK_CORRUPT";
      "ZEN_CHAOS_LINK_REORDER"; "ZEN_CHAOS_SEED" ]
  in
  let clear () = List.iter (fun k -> Unix.putenv k "") knobs in
  Fun.protect ~finally:clear (fun () ->
    clear ();
    Alcotest.(check bool) "all empty -> no fault" true
      (Fault.from_env () = None);
    (* each rate knob alone activates exactly its own rate *)
    List.iter
      (fun (knob, rate_of) ->
        clear ();
        Unix.putenv knob "0.25";
        (match Fault.from_env () with
         | None -> Alcotest.failf "%s alone did not activate chaos" knob
         | Some f ->
           Alcotest.(check (float 0.0))
             (knob ^ " rate honored") 0.25 (rate_of (Fault.config f))))
      [ ("ZEN_CHAOS_DROP", fun (c : Fault.config) -> c.drop);
        ("ZEN_CHAOS_DUP", fun c -> c.dup);
        ("ZEN_CHAOS_JITTER", fun c -> c.jitter);
        ("ZEN_CHAOS_LINK_DROP", fun c -> c.link_drop);
        ("ZEN_CHAOS_LINK_CORRUPT", fun c -> c.link_corrupt);
        ("ZEN_CHAOS_LINK_REORDER", fun c -> c.link_reorder) ];
    (* a seed alone yields a zero-rate fault under that seed *)
    clear ();
    Unix.putenv "ZEN_CHAOS_SEED" "99";
    (match Fault.from_env () with
     | None -> Alcotest.fail "ZEN_CHAOS_SEED alone did not activate chaos"
     | Some f ->
       let c = Fault.config f in
       Alcotest.(check int) "seed honored" 99 c.seed;
       Alcotest.(check (float 0.0)) "zero drop" 0.0 c.drop;
       Alcotest.(check (float 0.0)) "zero link drop" 0.0 c.link_drop;
       Alcotest.(check (float 0.0)) "zero link corrupt" 0.0 c.link_corrupt;
       Alcotest.(check (float 0.0)) "zero link reorder" 0.0 c.link_reorder);
    (* seed + rate compose *)
    Unix.putenv "ZEN_CHAOS_LINK_DROP" "0.1";
    match Fault.from_env () with
    | None -> Alcotest.fail "seed+rate did not activate chaos"
    | Some f ->
      let c = Fault.config f in
      Alcotest.(check (pair int (float 0.0))) "seed and rate both honored"
        (99, 0.1) (c.seed, c.link_drop))

(* the ZEN_CHAOS_CTL_* knobs: a scheduled controller outage, for the
   replicated control plane (see Controller.Replica) *)
let test_ctl_outage_env_knobs () =
  let knobs =
    [ "ZEN_CHAOS_CTL_CRASH"; "ZEN_CHAOS_CTL_AT"; "ZEN_CHAOS_CTL_DURATION" ]
  in
  let clear () = List.iter (fun k -> Unix.putenv k "") knobs in
  Fun.protect ~finally:clear (fun () ->
    clear ();
    Alcotest.(check int) "all empty -> no incident" 0
      (List.length (Fault.ctl_incidents_from_env ()));
    Unix.putenv "ZEN_CHAOS_CTL_CRASH" "0";
    (match Fault.ctl_incidents_from_env () with
     | [ Fault.Controller_outage { controller_id; at; duration } ] ->
       Alcotest.(check int) "controller id" 0 controller_id;
       Alcotest.(check (float 0.0)) "default at" 1.0 at;
       Alcotest.(check (float 0.0)) "default duration" 1.0 duration
     | _ -> Alcotest.fail "ZEN_CHAOS_CTL_CRASH alone did not schedule");
    Unix.putenv "ZEN_CHAOS_CTL_AT" "0.4";
    Unix.putenv "ZEN_CHAOS_CTL_DURATION" "2.5";
    match Fault.ctl_incidents_from_env () with
    | [ Fault.Controller_outage { controller_id; at; duration } ] ->
      Alcotest.(check int) "controller id" 0 controller_id;
      Alcotest.(check (float 0.0)) "at honored" 0.4 at;
      Alcotest.(check (float 0.0)) "duration honored" 2.5 duration
    | _ -> Alcotest.fail "knob combination did not schedule")

(* a Controller_outage against a replicated control plane is part of the
   seeded fault stream: same seed, byte-identical chaos trace (crash,
   lease expiry, takeover, restart notes included) and counters *)
let test_ctl_outage_deterministic () =
  let run seed =
    let topo = Topo.Gen.ring ~switches:4 ~hosts_per_switch:1 () in
    let fault = Fault.create ~seed ~drop:0.1 ~jitter:1e-3 () in
    let net = Network.create ~fault topo in
    let r =
      Controller.Replica.create
        ~resilience:{ fast_resilience with echo_miss_limit = 8 }
        ~replicas:2 ~lease:0.15 net
        (fun () -> [ Controller.Routing.app (Controller.Routing.create ()) ])
    in
    Network.inject net
      [ Fault.Controller_outage { controller_id = 0; at = 0.5; duration = 2.0 } ];
    ignore (Network.run ~until:4.0 net ());
    let s = Network.stats net in
    let rs = Controller.Replica.stats r in
    Controller.Replica.shutdown r;
    ( Fault.events fault,
      (s.control_msgs, s.control_bytes, s.delivered),
      (rs.failovers, rs.hb_sent, rs.repl_msgs) )
  in
  let trace_a, counts_a, repl_a = run 77 in
  let trace_b, counts_b, repl_b = run 77 in
  Alcotest.(check (list string)) "identical chaos traces" trace_a trace_b;
  let has_sub sub l =
    let n = String.length l and m = String.length sub in
    let rec go i = i + m <= n && (String.sub l i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "trace includes crash, takeover, restart" true
    (List.exists (has_sub "ctl-crash c0") trace_a
    && List.exists (has_sub "takeover c1") trace_a
    && List.exists (has_sub "ctl-restart c0") trace_a);
  Alcotest.(check (triple int int int)) "identical counters" counts_a counts_b;
  Alcotest.(check (triple int int int)) "identical replication stats" repl_a
    repl_b;
  Alcotest.(check int) "exactly one failover" 1
    (let f, _, _ = repl_a in
     f);
  let trace_c, _, _ = run 78 in
  Alcotest.(check bool) "different seed, different trace" false
    (trace_a = trace_c)

(* ------------------------------------------------------------------ *)
(* Link-level data chaos *)

(* a routed linear network with CBR crossing every hop *)
let link_chaos_run ?(link_drop = 0.0) ?(link_corrupt = 0.0)
    ?(link_reorder = 0.0) ~seed () =
  let topo = Topo.Gen.linear ~switches:3 ~hosts_per_switch:1 () in
  let fault = Fault.create ~seed ~link_drop ~link_corrupt ~link_reorder () in
  let net = Network.create ~fault topo in
  let routing = Controller.Routing.create () in
  let _rt =
    Controller.Runtime.create_and_handshake net
      [ Controller.Routing.app routing ]
  in
  List.iter
    (fun (src, dst) ->
      ignore
        (Traffic.cbr net
           { (Traffic.default_flow ~src ~dst) with
             rate_pps = 400.0; pkt_size = 200; start = 0.05; stop = 1.0 }))
    [ (1, 3); (3, 1) ];
  ignore (Network.run ~until:2.0 net ());
  let s = Network.stats net in
  ( Fault.events fault,
    (s.delivered, s.dropped_chaos, s.corrupted, s.reordered),
    Fault.link_decisions fault )

let test_link_chaos_deterministic () =
  let run () =
    link_chaos_run ~link_drop:0.1 ~link_corrupt:0.05 ~link_reorder:0.1
      ~seed:21 ()
  in
  let trace_a, counts_a, decisions_a = run () in
  let trace_b, counts_b, _ = run () in
  Alcotest.(check (list string)) "identical link-chaos traces" trace_a trace_b;
  Alcotest.(check bool) "trace non-trivial" true (List.length trace_a > 10);
  let delivered, drops, corrupts, reorders = counts_a in
  Alcotest.(check bool) "every verdict kind fired" true
    (drops > 0 && corrupts > 0 && reorders > 0);
  Alcotest.(check bool) "loss actually bites" true
    (delivered > 0 && drops + corrupts > 0);
  Alcotest.(check bool) "every data transmission consulted" true
    (decisions_a >= delivered + drops + corrupts);
  let split (a, b, c, d) = ((a, b), (c, d)) in
  Alcotest.(check (pair (pair int int) (pair int int)))
    "identical counters" (split counts_a) (split counts_b);
  let trace_c, _, _ =
    link_chaos_run ~link_drop:0.1 ~link_corrupt:0.05 ~link_reorder:0.1
      ~seed:22 ()
  in
  Alcotest.(check bool) "different seed, different trace" false
    (trace_a = trace_c)

let test_link_chaos_zero_rate_transparent () =
  let _, clean, decisions = link_chaos_run ~seed:21 () in
  let delivered, drops, corrupts, reorders = clean in
  Alcotest.(check int) "no chaos drops" 0 drops;
  Alcotest.(check int) "no corruption" 0 corrupts;
  Alcotest.(check int) "no reorders" 0 reorders;
  Alcotest.(check int) "transmit path never consults the fault" 0 decisions;
  Alcotest.(check bool) "traffic flowed" true (delivered > 0)

(* ------------------------------------------------------------------ *)
(* Selective resync (control-channel partition keeps the table warm) *)

let test_selective_resync_warm_table () =
  let run selective =
    let topo = Topo.Gen.linear ~switches:3 ~hosts_per_switch:1 () in
    let net = Network.create topo in
    let routing = Controller.Routing.create () in
    let rt =
      Controller.Runtime.create_and_handshake
        ~resilience:{ fast_resilience with selective_resync = selective } net
        [ Controller.Routing.app routing ]
    in
    (* bulk up switch 2's table so the full-repush baseline is heavy *)
    let ctx = Controller.Runtime.ctx rt in
    for i = 0 to 199 do
      ctx.Controller.Api.send ~switch_id:2
        (Openflow.Message.Flow_mod
           (Openflow.Message.add_flow ~priority:(10 + i)
              ~pattern:(Flow.Pattern.of_field Packet.Fields.Tp_dst (1000 + i))
              ~actions:(Flow.Action.forward 1) ()))
    done;
    ignore (Network.run ~until:(Network.now net +. 0.5) net ());
    check_converged net rt;
    (* partition s2's control channel: the switch stays alive, keeps its
       table, gets declared down, then heals and re-handshakes *)
    Network.inject net
      [ Fault.Ctl_outage { switch_id = 2; at = 1.0; duration = 0.8 } ];
    ignore (Network.run ~until:4.0 net ());
    let rs = Controller.Runtime.resilience_stats rt in
    Alcotest.(check bool) "outage was detected" true (rs.switch_downs >= 1);
    check_converged net rt;
    rt
  in
  (* default path: full delete-all + re-push *)
  let rt_full = run false in
  let full = Controller.Runtime.resilience_stats rt_full in
  Alcotest.(check bool) "full resync ran" true (full.resyncs >= 1);
  Alcotest.(check int) "no selective resync by default" 0
    full.selective_resyncs;
  (* selective path: snapshot-diff finds the warm table intact *)
  let rt_sel = run true in
  let sel = Controller.Runtime.resilience_stats rt_sel in
  Alcotest.(check bool) "selective resync ran" true
    (sel.selective_resyncs >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "selective bytes (%d) < full-repush baseline (%d)"
       sel.resync_bytes_selective sel.resync_bytes_full)
    true
    (sel.resync_bytes_selective > 0
     && sel.resync_bytes_selective < sel.resync_bytes_full)

(* a cold table (crash wipes it) must still reconverge under selective
   resync: the diff degenerates to the full add set *)
let test_selective_resync_cold_table () =
  let topo = Topo.Gen.linear ~switches:3 ~hosts_per_switch:1 () in
  let net = Network.create topo in
  let routing = Controller.Routing.create () in
  let rt =
    Controller.Runtime.create_and_handshake
      ~resilience:{ fast_resilience with selective_resync = true } net
      [ Controller.Routing.app routing ]
  in
  check_converged net rt;
  Network.crash_switch net 2;
  ignore (Network.run ~until:(Network.now net +. 0.5) net ());
  Network.restart_switch net 2;
  ignore (Network.run ~until:(Network.now net +. 2.0) net ());
  let rs = Controller.Runtime.resilience_stats rt in
  Alcotest.(check bool) "selective resync ran" true
    (rs.selective_resyncs >= 1);
  check_converged net rt;
  Traffic.install_responders net;
  let result = Traffic.ping net ~src:1 ~dst:3 ~count:3 ~interval:0.02 in
  ignore (Network.run ~until:(Network.now net +. 1.0) net ());
  Alcotest.(check int) "pings answered" 3 (List.length !(result.rtts))

(* ------------------------------------------------------------------ *)
(* Liveness: crash detection and recovery *)

let test_crash_detection_and_resync () =
  let topo = Topo.Gen.linear ~switches:3 ~hosts_per_switch:1 () in
  let net = Network.create topo in
  let downs = ref [] and ups = ref [] in
  let probe =
    { (Controller.Api.default_app "probe") with
      switch_down = (fun _ ~switch_id -> downs := switch_id :: !downs);
      switch_up = (fun _ ~switch_id ~ports:_ -> ups := switch_id :: !ups) }
  in
  let routing = Controller.Routing.create () in
  let monitor = Controller.Monitor.create ~period:0.1 () in
  let rt =
    Controller.Runtime.create_and_handshake ~resilience:fast_resilience net
      [ Controller.Routing.app routing; Controller.Monitor.app monitor; probe ]
  in
  check_converged net rt;
  let rules_before = Flow.Table.size (Network.switch net 2).table in
  Alcotest.(check bool) "switch 2 has rules" true (rules_before > 0);
  (* crash switch 2 at 0.5 s; the keepalive loop must notice *)
  Sim.schedule_at (Network.sim net) ~time:0.5 (fun () ->
    Network.crash_switch net 2);
  ignore (Network.run ~until:1.0 net ());
  Alcotest.(check (list int)) "switch_down fired for s2" [ 2 ] !downs;
  Alcotest.(check bool) "runtime sees s2 down" false
    (Controller.Runtime.switch_up rt ~switch_id:2);
  Alcotest.(check int) "table wiped by the crash" 0
    (Flow.Table.size (Network.switch net 2).table);
  (* restart: fresh handshake, switch_up again, intended rules resynced *)
  Network.restart_switch net 2;
  ignore (Network.run ~until:2.0 net ());
  Alcotest.(check bool) "switch_up re-fired for s2" true (List.mem 2 !ups);
  Alcotest.(check bool) "runtime sees s2 up" true
    (Controller.Runtime.switch_up rt ~switch_id:2);
  let rs = Controller.Runtime.resilience_stats rt in
  Alcotest.(check bool) "resync counted" true (rs.resyncs >= 1);
  Alcotest.(check bool) "recovery time sampled" true
    (Controller.Runtime.recovery_times rt <> []);
  Alcotest.(check bool) "monitor observed the outage" true
    (Controller.Monitor.down_events monitor >= 1
     && Controller.Monitor.recoveries monitor <> []);
  check_converged net rt;
  Alcotest.(check int) "rules restored" rules_before
    (Flow.Table.size (Network.switch net 2).table);
  (* connectivity is back through s2 *)
  Traffic.install_responders net;
  let result = Traffic.ping net ~src:1 ~dst:3 ~count:3 ~interval:0.02 in
  ignore (Network.run ~until:(Network.now net +. 1.0) net ());
  Alcotest.(check int) "pings answered" 3 (List.length !(result.rtts))

(* ------------------------------------------------------------------ *)
(* Reliable delivery: loss and duplication *)

let test_retransmit_under_loss () =
  let topo = Topo.Gen.linear ~switches:4 ~hosts_per_switch:1 () in
  let fault = Fault.create ~seed:7 ~drop:0.3 () in
  let net = Network.create ~fault topo in
  let routing = Controller.Routing.create () in
  let rt =
    Controller.Runtime.create ~resilience:fast_resilience net
      [ Controller.Routing.app routing ]
  in
  ignore (Network.run ~until:3.0 net ());
  let rs = Controller.Runtime.resilience_stats rt in
  Alcotest.(check bool)
    (Printf.sprintf "channel lossy (%d drops)" (Fault.drops fault))
    true (Fault.drops fault > 0);
  Alcotest.(check bool)
    (Printf.sprintf "batches retransmitted (%d)" rs.retransmits)
    true (rs.retransmits > 0);
  check_converged net rt;
  Traffic.install_responders net;
  let result = Traffic.ping net ~src:1 ~dst:4 ~count:3 ~interval:0.02 in
  ignore (Network.run ~until:(Network.now net +. 1.0) net ());
  Alcotest.(check int) "pings answered over converged tables" 3
    (List.length !(result.rtts))

let test_duplicates_idempotent () =
  let topo = Topo.Gen.linear ~switches:3 ~hosts_per_switch:1 () in
  let fault = Fault.create ~seed:11 ~dup:0.5 ~jitter:2e-3 () in
  let net = Network.create ~fault topo in
  let routing = Controller.Routing.create () in
  let rt =
    Controller.Runtime.create ~resilience:fast_resilience net
      [ Controller.Routing.app routing ]
  in
  ignore (Network.run ~until:2.0 net ());
  Alcotest.(check bool) "duplicates injected" true (Fault.dups fault > 0);
  check_converged net rt

(* ------------------------------------------------------------------ *)
(* Acceptance: loss + crash + flaps, deterministic per seed *)

type scenario_result = {
  sr_trace : string list;
  sr_diverged : int list;
  sr_sent : int;
  sr_delivered : int;
  sr_retransmits : int;
  sr_resyncs : int;
  sr_recoveries : int;
}

(* ring of 6 switches, one host each; 20% control-channel loss with
   jitter, switch 3 crashes and restarts, two distinct links flap; CBR
   flows cross the ring throughout *)
let run_acceptance_scenario seed =
  let topo = Topo.Gen.ring ~switches:6 ~hosts_per_switch:1 () in
  let fault = Fault.create ~seed ~drop:0.2 ~dup:0.05 ~jitter:1e-3 () in
  let net = Network.create ~fault topo in
  let routing = Controller.Routing.create () in
  let rt =
    Controller.Runtime.create ~resilience:fast_resilience net
      [ Controller.Routing.app routing ]
  in
  Network.inject net
    [ Fault.Switch_outage { switch_id = 3; at = 0.6; duration = 0.8 };
      Fault.Link_flap
        { node = Topo.Topology.Node.Switch 1; port = 1; at = 0.9;
          duration = 0.5 };
      Fault.Link_flap
        { node = Topo.Topology.Node.Switch 4; port = 2; at = 1.2;
          duration = 0.4 } ];
  let senders =
    List.map
      (fun (src, dst) ->
        Traffic.cbr net
          { (Traffic.default_flow ~src ~dst) with
            rate_pps = 200.0; pkt_size = 200; start = 0.1; stop = 2.5;
            tp_src = Some 9000 })
      [ (1, 4); (2, 5); (6, 3) ]
  in
  ignore (Network.run ~until:5.0 net ());
  let rs = Controller.Runtime.resilience_stats rt in
  { sr_trace = Fault.events fault;
    sr_diverged = diverged_switches net rt;
    sr_sent = List.fold_left (fun acc s -> acc + !s) 0 senders;
    sr_delivered = (Network.stats net).delivered;
    sr_retransmits = rs.retransmits;
    sr_resyncs = rs.resyncs;
    sr_recoveries = List.length (Controller.Runtime.recovery_times rt) }

let test_acceptance_reconverges () =
  let r = run_acceptance_scenario 1005 in
  Alcotest.(check (list int)) "all tables equal intended state" []
    r.sr_diverged;
  Alcotest.(check bool) "chaos actually hit the run" true
    (r.sr_retransmits > 0 && r.sr_resyncs >= 1 && r.sr_recoveries >= 1);
  let ratio = float_of_int r.sr_delivered /. float_of_int r.sr_sent in
  Alcotest.(check bool)
    (Printf.sprintf "delivery ratio %.3f within (0.5, 1.0]" ratio)
    true
    (ratio > 0.5 && ratio <= 1.0)

let test_acceptance_deterministic () =
  let a = run_acceptance_scenario 1005 in
  let b = run_acceptance_scenario 1005 in
  Alcotest.(check (list string)) "identical chaos event traces" a.sr_trace
    b.sr_trace;
  Alcotest.(check bool) "trace non-trivial" true (List.length a.sr_trace > 10);
  Alcotest.(check (pair int int)) "identical delivery counts"
    (a.sr_sent, a.sr_delivered) (b.sr_sent, b.sr_delivered);
  Alcotest.(check (pair int int)) "identical protocol counters"
    (a.sr_retransmits, a.sr_resyncs) (b.sr_retransmits, b.sr_resyncs);
  let c = run_acceptance_scenario 1006 in
  Alcotest.(check bool) "different seed, different trace" false
    (a.sr_trace = c.sr_trace)

(* zero-chaos sanity: attaching a fault record with all knobs at zero
   changes nothing observable vs no fault at all *)
let test_zero_chaos_transparent () =
  let run fault =
    let topo = Topo.Gen.linear ~switches:3 ~hosts_per_switch:1 () in
    let net = Network.create ?fault topo in
    let routing = Controller.Routing.create () in
    let _rt =
      Controller.Runtime.create_and_handshake net
        [ Controller.Routing.app routing ]
    in
    Traffic.install_responders net;
    let result = Traffic.ping net ~src:1 ~dst:3 ~count:3 ~interval:0.02 in
    ignore (Network.run ~until:(Network.now net +. 1.0) net ());
    let s = Network.stats net in
    (List.length !(result.rtts), s.delivered, s.control_msgs, s.control_bytes)
  in
  Alcotest.(check (pair (pair int int) (pair int int)))
    "identical runs"
    (let a, b, c, d = run None in
     ((a, b), (c, d)))
    (let a, b, c, d = run (Some (Fault.create ~seed:1 ())) in
     ((a, b), (c, d)))

(* ------------------------------------------------------------------ *)
(* QCheck: routing routes around a crashed agg/core switch *)

(* Crash a random aggregation or core switch of a k=4 fat-tree; after
   the keepalive verdict and the reroute convergence, fresh traffic
   between random host pairs must avoid the dead switch entirely
   ([dropped_down] stays flat once the keepalive probes are silenced)
   and be fully delivered over the surviving paths. *)
let prop_fattree_routes_around_crash =
  QCheck.Test.make ~count:6
    ~name:"fat-tree reroutes around a crashed agg/core switch"
    QCheck.(pair (int_range 0 1000) (int_range 1 1000))
    (fun (victim_ix, seed) ->
      let topo, info = Topo.Gen.fat_tree ~k:4 () in
      let candidates = info.aggregation @ info.core in
      let victim = List.nth candidates (victim_ix mod List.length candidates) in
      let net = Network.create topo in
      let routing = Controller.Routing.create () in
      let rt =
        Controller.Runtime.create_and_handshake ~resilience:fast_resilience net
          [ Controller.Routing.app routing ]
      in
      ignore (Network.run ~until:0.3 net ());
      Network.crash_switch net victim;
      ignore (Network.run ~until:(Network.now net +. 1.0) net ());
      let rerouted =
        Controller.Routing.dead_switches routing = [ victim ]
        && Controller.Routing.reroutes routing >= 1
      in
      (* silence the keepalive probes (they count against [dropped_down]
         while the switch is dead) so the delta below sees only data *)
      Controller.Runtime.shutdown rt;
      let down_before = (Network.stats net).dropped_down in
      Traffic.install_responders net;
      let hosts = Array.of_list (Topo.Topology.host_ids topo) in
      let prng = Util.Prng.create seed in
      let pairs =
        List.init 6 (fun _ ->
          let a = Util.Prng.pick prng hosts in
          let rec other () =
            let b = Util.Prng.pick prng hosts in
            if b = a then other () else b
          in
          (a, other ()))
      in
      let results =
        List.map
          (fun (src, dst) ->
            Traffic.ping net ~src ~dst ~count:2 ~interval:0.03)
          pairs
      in
      ignore (Network.run ~until:(Network.now net +. 2.0) net ());
      let answered =
        List.fold_left (fun acc r -> acc + List.length !(r.Traffic.rtts)) 0
          results
      in
      let down_delta = (Network.stats net).dropped_down - down_before in
      if not rerouted then
        QCheck.Test.fail_reportf "s%d not rerouted around" victim
      else if down_delta <> 0 then
        QCheck.Test.fail_reportf
          "%d packets hit the dead switch s%d post-convergence" down_delta
          victim
      else if answered <> 2 * List.length pairs then
        QCheck.Test.fail_reportf
          "delivery did not recover: %d/%d pings answered" answered
          (2 * List.length pairs)
      else true)

let suites =
  [ ( "chaos.fault",
      [ Alcotest.test_case "seeded verdicts deterministic" `Quick
          test_fault_deterministic;
        Alcotest.test_case "env knobs absent -> no fault" `Quick
          test_fault_env;
        Alcotest.test_case "env knob matrix" `Quick test_fault_env_matrix;
        Alcotest.test_case "controller-outage env knobs" `Quick
          test_ctl_outage_env_knobs;
        Alcotest.test_case "controller outage deterministic per seed" `Quick
          test_ctl_outage_deterministic;
        Alcotest.test_case "zero chaos transparent" `Quick
          test_zero_chaos_transparent;
        Alcotest.test_case "link chaos deterministic per seed" `Quick
          test_link_chaos_deterministic;
        Alcotest.test_case "zero-rate link chaos transparent" `Quick
          test_link_chaos_zero_rate_transparent ] );
    ( "chaos.resilience",
      [ Alcotest.test_case "crash detection and resync" `Quick
          test_crash_detection_and_resync;
        Alcotest.test_case "retransmit under loss" `Quick
          test_retransmit_under_loss;
        Alcotest.test_case "duplicates idempotent" `Quick
          test_duplicates_idempotent;
        Alcotest.test_case "selective resync on a warm table" `Quick
          test_selective_resync_warm_table;
        Alcotest.test_case "selective resync on a cold table" `Quick
          test_selective_resync_cold_table;
        QCheck_alcotest.to_alcotest prop_fattree_routes_around_crash ] );
    ( "chaos.acceptance",
      [ Alcotest.test_case "loss+crash+flaps reconverges" `Quick
          test_acceptance_reconverges;
        Alcotest.test_case "same seed, same trace" `Quick
          test_acceptance_deterministic ] ) ]
