(* Tests for the control-protocol messages and their wire codec. *)

open Openflow

let payload : Message.payload =
  { headers =
      Packet.Headers.tcp ~switch:3 ~in_port:2 ~src_host:5 ~dst_host:9
        ~tp_src:1234 ~tp_dst:80;
    size = 1000; tag = 42 }

let pattern =
  { Flow.Pattern.any with
    eth_dst = Some (Packet.Mac.of_host_id 9);
    ip4_dst = Some (Packet.Ipv4.Prefix.of_string "10.0.0.0/8");
    tp_dst = Some 80 }

let group : Flow.Action.group =
  [ [ Set_field (Packet.Fields.Vlan, 100); Output (Physical 4) ];
    [ Output Flood ]; [ Output Controller ]; [ Output In_port_out ] ]

let msg_eq = Alcotest.testable
    (fun fmt (m : Message.t) -> Message.pp fmt m) ( = )

let roundtrip ?(xid = 77) name msg =
  let got_xid, got = Wire.decode (Wire.encode ~xid msg) in
  Alcotest.(check int) (name ^ " xid") xid got_xid;
  Alcotest.check msg_eq name msg got

let test_simple_messages () =
  List.iter
    (fun (name, m) -> roundtrip name m)
    [ ("hello", Message.Hello);
      ("features_request", Message.Features_request);
      ("barrier_request", Message.Barrier_request);
      ("barrier_reply", Message.Barrier_reply);
      ("echo_request", Message.Echo_request "ping!");
      ("echo_reply", Message.Echo_reply "") ]

let test_features_reply () =
  roundtrip "features_reply"
    (Message.Features_reply { datapath_id = 12; port_list = [ 1; 2; 5 ] })

let test_packet_in_out () =
  roundtrip "packet_in"
    (Message.Packet_in { in_port = 2; reason = No_match; packet = payload });
  roundtrip "packet_in explicit"
    (Message.Packet_in { in_port = 7; reason = Explicit_send; packet = payload });
  roundtrip "packet_out"
    (Message.Packet_out
       { out_in_port = 3;
         out_actions = [ Set_field (Packet.Fields.Tp_dst, 443); Output Flood ];
         out_packet = payload })

let test_flow_mod () =
  roundtrip "flow_mod add"
    (Message.Flow_mod
       (Message.add_flow ~priority:1000 ~idle_timeout:(Some 12.5)
          ~hard_timeout:(Some 60.0) ~cookie:99 ~notify_when_removed:true
          ~pattern ~actions:group ()));
  roundtrip "flow_mod delete"
    (Message.Flow_mod (Message.delete_flow ~pattern ()));
  roundtrip "flow_mod delete by cookie"
    (Message.Flow_mod (Message.delete_flow ~cookie:(Some 3) ~pattern ()))

let test_port_status_flow_removed () =
  roundtrip "port down"
    (Message.Port_status { ps_port = 4; ps_reason = Port_down });
  roundtrip "port up"
    (Message.Port_status { ps_port = 4; ps_reason = Port_up });
  roundtrip "flow_removed"
    (Message.Flow_removed
       { fr_pattern = pattern; fr_priority = 5; fr_cookie = -1;
         fr_reason = Hard_timeout_expired; fr_packets = 1234567;
         fr_bytes = 987654321 })

let test_stats () =
  roundtrip "flow stats request"
    (Message.Stats_request (Flow_stats_request pattern));
  roundtrip "port stats request all"
    (Message.Stats_request (Port_stats_request None));
  roundtrip "port stats request one"
    (Message.Stats_request (Port_stats_request (Some 3)));
  roundtrip "table stats request"
    (Message.Stats_request Table_stats_request);
  roundtrip "flow stats reply"
    (Message.Stats_reply
       (Flow_stats_reply
          [ { fs_pattern = pattern; fs_priority = 10; fs_cookie = 1;
              fs_actions = Flow.Action.forward 2; fs_packets = 5;
              fs_bytes = 5000 };
            { fs_pattern = Flow.Pattern.any; fs_priority = 0; fs_cookie = 0;
              fs_actions = Flow.Action.drop; fs_packets = 0;
              fs_bytes = 0 } ]));
  roundtrip "port stats reply"
    (Message.Stats_reply
       (Port_stats_reply
          [ { pstat_port = 1; rx_packets = 1; tx_packets = 2; rx_bytes = 3;
              tx_bytes = 4; drops = 5 } ]));
  roundtrip "table stats reply"
    (Message.Stats_reply
       (Table_stats_reply
          { active_rules = 7; table_hits = 8; table_misses = 9;
            cache_hits = 10; cache_misses = 11; cache_invalidations = 12;
            classifier_probes = 13; classifier_shapes = 14 }))

(* regression: values that do not fit their wire field must raise
   Wire_error instead of silently truncating the frame (a >64 KiB echo
   body used to encode a corrupt length prefix) *)
let test_encode_rejects_oversize () =
  let rejects name msg =
    Alcotest.(check bool) name true
      (match Wire.encode ~xid:1 msg with
       | exception Wire.Wire_error _ -> true
       | _ -> false)
  in
  rejects "echo body over 64 KiB"
    (Message.Echo_request (String.make 0x10000 'x'));
  rejects "payload size over u16"
    (Message.Packet_in
       { in_port = 1; reason = No_match;
         packet = { payload with size = 0x10000 } });
  rejects "negative u16" (Message.Port_status { ps_port = -1; ps_reason = Port_up });
  (* a 64 KiB - 1 body still exceeds the 16-bit *frame* length with the
     header; the largest encodable echo is 0xffff - 8 - 2 bytes *)
  let fits = Message.Echo_request (String.make (0xffff - 10) 'x') in
  Alcotest.(check bool) "largest frame still encodes" true
    (match Wire.encode ~xid:1 fits with _ -> true
     | exception Wire.Wire_error _ -> false)

let test_rejects_garbage () =
  let check name b =
    Alcotest.(check bool) name true
      (match Wire.decode b with
       | exception Wire.Wire_error _ -> true
       | _ -> false)
  in
  check "empty" Bytes.empty;
  check "short header" (Bytes.make 4 '\000');
  let good = Wire.encode ~xid:1 Message.Hello in
  let bad_version = Bytes.copy good in
  Bytes.set bad_version 0 '\002';
  check "bad version" bad_version;
  let bad_len = Bytes.copy good in
  Bytes.set bad_len 3 '\099';
  check "bad length" bad_len;
  let trailing = Bytes.cat good (Bytes.make 1 '\000') in
  check "trailing bytes" trailing

let test_length_field () =
  let b = Wire.encode ~xid:5 (Message.Echo_request "abc") in
  Alcotest.(check int) "length field equals buffer"
    (Bytes.length b) (Util.Bits.get_u16 b 2)

let test_timeout_encoding_precision () =
  (* timeouts are carried in integer milliseconds *)
  let fm =
    Message.add_flow ~idle_timeout:(Some 0.0305) ~pattern:Flow.Pattern.any
      ~actions:[] ()
  in
  match Wire.decode (Wire.encode ~xid:0 (Message.Flow_mod fm)) with
  | _, Message.Flow_mod fm' ->
    Alcotest.(check (option (float 1e-9))) "30ms survives" (Some 0.030)
      fm'.idle_timeout
  | _ -> Alcotest.fail "wrong message"

(* property: random flow_mods roundtrip *)
let gen_pattern =
  let open QCheck.Gen in
  let field =
    oneofl
      [ Packet.Fields.In_port; Packet.Fields.Eth_src; Packet.Fields.Eth_dst;
        Packet.Fields.Eth_type; Packet.Fields.Vlan; Packet.Fields.Ip_proto;
        Packet.Fields.Ip4_src; Packet.Fields.Ip4_dst; Packet.Fields.Tp_src;
        Packet.Fields.Tp_dst ]
  in
  list_size (0 -- 4) (pair field (int_bound 0xffff)) >|= fun tests ->
  List.fold_left
    (fun pat (f, v) ->
      match Flow.Pattern.conj pat (Flow.Pattern.of_field f v) with
      | Some p -> p
      | None -> pat)
    Flow.Pattern.any tests

let gen_group =
  let open QCheck.Gen in
  let atom =
    oneof
      [ map (fun p -> Flow.Action.Output (Physical p)) (int_bound 100);
        return (Flow.Action.Output Flood);
        return (Flow.Action.Output In_port_out);
        return (Flow.Action.Output Controller);
        map (fun v -> Flow.Action.Set_field (Packet.Fields.Vlan, v))
          (int_bound 4094) ]
  in
  list_size (0 -- 3) (list_size (0 -- 4) atom)

let prop_flow_mod_roundtrip =
  QCheck.Test.make ~name:"random flow_mods roundtrip" ~count:300
    (QCheck.make
       QCheck.Gen.(
         triple gen_pattern gen_group (pair (int_bound 0xffff) (int_bound 1000))))
    (fun (pattern, actions, (priority, cookie)) ->
      let m =
        Message.Flow_mod
          (Message.add_flow ~priority ~cookie ~pattern ~actions ())
      in
      snd (Wire.decode (Wire.encode ~xid:1 m)) = m)

(* ------------------------------------------------------------------ *)
(* batched framing *)

let test_batch_roundtrip () =
  let msgs =
    [ (1, Message.Hello);
      (2,
       Message.Flow_mod
         (Message.add_flow ~priority:7 ~cookie:3 ~pattern ~actions:group ()));
      (3, Message.Echo_request "ping");
      (4, Message.Barrier_request) ]
  in
  let b = Wire.encode_batch msgs in
  Alcotest.(check int) "frame_count" 4 (Wire.frame_count b);
  Alcotest.(check bool) "decode_all roundtrips" true (Wire.decode_all b = msgs);
  (* a batch is one transmission but not one frame: the single-frame
     decoder must reject it rather than drop the tail *)
  Alcotest.(check bool) "single decode rejects batch" true
    (match Wire.decode b with
     | exception Wire.Wire_error _ -> true
     | _ -> false)

let test_batch_singleton_equals_encode () =
  let m =
    Message.Flow_mod (Message.add_flow ~priority:1 ~pattern ~actions:group ())
  in
  Alcotest.(check bytes) "one-message batch == encode"
    (Wire.encode ~xid:9 m)
    (Wire.encode_batch [ (9, m) ]);
  Alcotest.(check bytes) "empty batch is empty" Bytes.empty
    (Wire.encode_batch []);
  Alcotest.(check int) "empty frame_count" 0 (Wire.frame_count Bytes.empty)

let test_batch_rejects_bad_length () =
  let b = Wire.encode_batch [ (1, Message.Hello); (2, Message.Hello) ] in
  (* corrupt the second frame's length so it claims bytes past the end *)
  Util.Bits.set_u16 b 10 64;
  Alcotest.(check bool) "bad inner length rejected" true
    (match Wire.decode_all b with
     | exception Wire.Wire_error _ -> true
     | _ -> false);
  let truncated = Bytes.sub b 0 12 in
  Alcotest.(check bool) "truncated tail rejected" true
    (match Wire.decode_all truncated with
     | exception Wire.Wire_error _ -> true
     | _ -> false)

let prop_batch_roundtrip =
  QCheck.Test.make ~name:"random message batches roundtrip" ~count:200
    (QCheck.make
       QCheck.Gen.(
         list_size (0 -- 12)
           (oneof
              [ return Message.Hello;
                return Message.Barrier_request;
                map (fun s -> Message.Echo_request s) (string_size (0 -- 64));
                map2
                  (fun pattern (actions, priority) ->
                    Message.Flow_mod
                      (Message.add_flow ~priority ~pattern ~actions ()))
                  gen_pattern (pair gen_group (int_bound 0xffff)) ])))
    (fun msgs ->
      let framed = List.mapi (fun i m -> (i + 1, m)) msgs in
      let b = Wire.encode_batch framed in
      Wire.frame_count b = List.length msgs && Wire.decode_all b = framed)

let suites =
  [ ( "openflow.wire",
      [ Alcotest.test_case "simple messages" `Quick test_simple_messages;
        Alcotest.test_case "features reply" `Quick test_features_reply;
        Alcotest.test_case "packet in/out" `Quick test_packet_in_out;
        Alcotest.test_case "flow mod" `Quick test_flow_mod;
        Alcotest.test_case "port status / flow removed" `Quick
          test_port_status_flow_removed;
        Alcotest.test_case "stats" `Quick test_stats;
        Alcotest.test_case "rejects garbage" `Quick test_rejects_garbage;
        Alcotest.test_case "rejects oversize values" `Quick
          test_encode_rejects_oversize;
        Alcotest.test_case "length field" `Quick test_length_field;
        Alcotest.test_case "timeout precision" `Quick
          test_timeout_encoding_precision;
        Alcotest.test_case "batch roundtrip" `Quick test_batch_roundtrip;
        Alcotest.test_case "batch singleton/empty" `Quick
          test_batch_singleton_equals_encode;
        Alcotest.test_case "batch rejects bad lengths" `Quick
          test_batch_rejects_bad_length;
        QCheck_alcotest.to_alcotest prop_flow_mod_roundtrip;
        QCheck_alcotest.to_alcotest prop_batch_roundtrip ] ) ]
