(* Aggregates every library's suites into one alcotest binary. *)

let () =
  Alcotest.run "zen"
    (Test_util.suites @ Test_packet.suites @ Test_topo.suites
    @ Test_flow.suites @ Test_openflow.suites @ Test_netkat.suites
    @ Test_dataplane.suites @ Test_controller.suites @ Test_verify.suites
    @ Test_te.suites @ Test_zen.suites @ Test_update.suites
    @ Test_analysis.suites @ Test_wan.suites @ Test_fuzz.suites
    @ Test_apps.suites @ Test_global.suites @ Test_transport.suites
    @ Test_chaos.suites @ Test_replica.suites @ Test_shard.suites @ Test_delta.suites)
