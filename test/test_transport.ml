(* Tests for the reliable transport over the lossy dataplane. *)

let routed_pair ?(queue_depth = 64) ?fault () =
  let topo = Topo.Gen.linear ~switches:2 ~hosts_per_switch:1 () in
  let net = Dataplane.Network.create ~queue_depth ?fault topo in
  let fdd = Netkat.Fdd.of_policy (Netkat.Builder.routing_policy topo) in
  List.iter
    (fun sw ->
      let id = Topo.Topology.Node.id sw in
      let table = (Dataplane.Network.switch net id).table in
      List.iter
        (fun (r : Netkat.Local.rule) ->
          Flow.Table.add table
            (Flow.Table.make_rule ~priority:r.priority ~pattern:r.pattern
               ~actions:r.actions ()))
        (Netkat.Local.rules_of_fdd ~switch:id fdd))
    (Topo.Topology.switches topo);
  net

let test_lossless_transfer () =
  let net = routed_pair () in
  let c = Dataplane.Transport.start net ~src:1 ~dst:2 ~total:200 ~window:8 () in
  ignore (Dataplane.Network.run ~until:20.0 net ());
  Alcotest.(check bool) "complete" true (Dataplane.Transport.is_complete c);
  Alcotest.(check int) "all delivered in order" 200
    (Dataplane.Transport.delivered c);
  Alcotest.(check int) "no retransmissions on a clean path" 0
    (Dataplane.Transport.stats c).retransmissions;
  Alcotest.(check bool) "positive goodput" true
    (Dataplane.Transport.goodput c > 0.0)

let test_recovers_from_queue_loss () =
  (* a window far larger than the queue forces drop-tail loss; the
     transfer must still complete, with retransmissions *)
  let net = routed_pair ~queue_depth:8 () in
  let c =
    Dataplane.Transport.start net ~src:1 ~dst:2 ~total:300 ~window:32
      ~rto:0.02 ~max_retx:500 ()
  in
  ignore (Dataplane.Network.run ~until:120.0 net ());
  Alcotest.(check bool) "queue actually dropped" true
    ((Dataplane.Network.stats net).dropped_queue > 0);
  Alcotest.(check bool) "complete despite loss" true
    (Dataplane.Transport.is_complete c);
  Alcotest.(check int) "all delivered exactly once, in order" 300
    (Dataplane.Transport.delivered c);
  Alcotest.(check bool) "retransmissions happened" true
    ((Dataplane.Transport.stats c).retransmissions > 0)

let test_recovers_from_outage () =
  (* kill the path mid-transfer, restore it: ARQ rides through *)
  let net = routed_pair () in
  let c =
    Dataplane.Transport.start net ~src:1 ~dst:2 ~total:500 ~window:4
      ~rto:0.02 ()
  in
  Dataplane.Sim.schedule (Dataplane.Network.sim net) ~delay:0.05 (fun () ->
    Topo.Topology.fail_link (Dataplane.Network.topology net)
      (Topo.Topology.Node.Switch 1, 1));
  Dataplane.Sim.schedule (Dataplane.Network.sim net) ~delay:0.3 (fun () ->
    Topo.Topology.restore_link (Dataplane.Network.topology net)
      (Topo.Topology.Node.Switch 1, 1));
  ignore (Dataplane.Network.run ~until:60.0 net ());
  Alcotest.(check bool) "complete across the outage" true
    (Dataplane.Transport.is_complete c);
  Alcotest.(check int) "nothing lost at the application" 500
    (Dataplane.Transport.delivered c)

let test_aborts_when_unreachable () =
  let net = routed_pair () in
  Topo.Topology.fail_link (Dataplane.Network.topology net)
    (Topo.Topology.Node.Switch 1, 1);
  let c =
    Dataplane.Transport.start net ~src:1 ~dst:2 ~total:10 ~window:2 ~rto:0.01
      ~max_retx:5 ()
  in
  ignore (Dataplane.Network.run ~until:10.0 net ());
  Alcotest.(check bool) "aborted" true (Dataplane.Transport.is_aborted c);
  Alcotest.(check bool) "not complete" false (Dataplane.Transport.is_complete c)

(* Exponential backoff vs the legacy fixed RTO on a 20%-lossy link,
   with the initial RTO set below the loaded RTT: the fixed timer keeps
   spuriously re-offering whole windows while ACKs are still in flight
   (further inflating queueing delay), where backing off quickly grows
   past the real RTT.  Both must complete; backoff must retransmit
   strictly less. *)
let test_backoff_beats_fixed_rto_under_loss () =
  let retx_with backoff =
    let fault = Dataplane.Fault.create ~seed:77 ~link_drop:0.2 () in
    let net = routed_pair ~fault () in
    let c =
      Dataplane.Transport.start net ~src:1 ~dst:2 ~total:300 ~window:32
        ~rto:1e-4 ~backoff ~max_retx:5000 ()
    in
    ignore (Dataplane.Network.run ~until:120.0 net ());
    Alcotest.(check bool) "link chaos bit" true
      ((Dataplane.Network.stats net).dropped_chaos > 0);
    Alcotest.(check bool) "complete despite loss" true
      (Dataplane.Transport.is_complete c);
    Alcotest.(check int) "all delivered" 300 (Dataplane.Transport.delivered c);
    (Dataplane.Transport.stats c).retransmissions
  in
  let fixed = retx_with 1.0 in
  let backed_off = retx_with 2.0 in
  Alcotest.(check bool)
    (Printf.sprintf "backoff retransmits less (%d < %d)" backed_off fixed)
    true
    (backed_off > 0 && backed_off < fixed)

let test_window_increases_goodput () =
  let goodput_for window =
    let net = routed_pair () in
    let c = Dataplane.Transport.start net ~src:1 ~dst:2 ~total:400 ~window () in
    ignore (Dataplane.Network.run ~until:120.0 net ());
    Alcotest.(check bool) "complete" true (Dataplane.Transport.is_complete c);
    Dataplane.Transport.goodput c
  in
  let g1 = goodput_for 1 and g8 = goodput_for 8 in
  Alcotest.(check bool)
    (Printf.sprintf "window 8 (%.0f bps) beats stop-and-wait (%.0f bps)" g8 g1)
    true
    (g8 > g1 *. 2.0)

let suites =
  [ ( "dataplane.transport",
      [ Alcotest.test_case "lossless transfer" `Quick test_lossless_transfer;
        Alcotest.test_case "recovers from queue loss" `Quick
          test_recovers_from_queue_loss;
        Alcotest.test_case "recovers from an outage" `Quick
          test_recovers_from_outage;
        Alcotest.test_case "aborts when unreachable" `Quick
          test_aborts_when_unreachable;
        Alcotest.test_case "backoff beats fixed RTO under loss" `Quick
          test_backoff_beats_fixed_rto_under_loss;
        Alcotest.test_case "window scales goodput" `Quick
          test_window_increases_goodput ] ) ]
